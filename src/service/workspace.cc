#include "workspace.hh"

#include <sstream>

#include "isa/assembler.hh"
#include "isa/benchmarks.hh"
#include "util/logging.hh"

namespace davf::service {

namespace {

uint64_t
fnv1a(const void *data, size_t size, uint64_t hash)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

uint64_t
fnv1aText(const std::string &text, uint64_t hash)
{
    return fnv1a(text.data(), text.size(), hash);
}

uint64_t
fnv1aWord(uint64_t value, uint64_t hash)
{
    return fnv1a(&value, sizeof value, hash);
}

} // namespace

std::string
serializeWorkspaceSpec(const WorkspaceSpec &spec)
{
    std::ostringstream os;
    os << spec.benchmark << ' ' << (spec.ecc ? 1 : 0) << ' '
       << (spec.staPeriod ? 1 : 0);
    return os.str();
}

Result<WorkspaceSpec>
parseWorkspaceSpec(const std::string &text)
{
    using R = Result<WorkspaceSpec>;
    std::istringstream is(text);
    WorkspaceSpec spec;
    int ecc = 0;
    int sta = 0;
    if (!(is >> spec.benchmark >> ecc >> sta) || (ecc != 0 && ecc != 1)
        || (sta != 0 && sta != 1)) {
        return R::Err(ErrorKind::BadInput,
                      "workspace spec: bad fields: " + text);
    }
    std::string trailing;
    if (is >> trailing) {
        return R::Err(ErrorKind::BadInput,
                      "workspace spec: trailing tokens: " + text);
    }
    spec.ecc = ecc == 1;
    spec.staPeriod = sta == 1;
    return R::Ok(std::move(spec));
}

uint64_t
netlistHash(const Netlist &netlist)
{
    davf_assert(netlist.finalized(),
                "netlistHash needs a finalized netlist");
    uint64_t hash = 0xcbf29ce484222325ull;
    hash = fnv1aWord(netlist.numCells(), hash);
    hash = fnv1aWord(netlist.numNets(), hash);
    hash = fnv1aWord(netlist.numWires(), hash);
    hash = fnv1aWord(netlist.numStateElems(), hash);
    for (CellId id = 0; id < netlist.numCells(); ++id) {
        const Cell &cell = netlist.cell(id);
        hash = fnv1aWord(static_cast<uint64_t>(cell.type), hash);
        hash = fnv1aWord(cell.resetValue ? 1 : 0, hash);
        hash = fnv1aText(cell.name, hash);
        for (NetId net : cell.inputs)
            hash = fnv1aWord(net, hash);
        for (NetId net : cell.outputs)
            hash = fnv1aWord(net, hash);
    }
    return hash;
}

Workspace::Workspace(const WorkspaceSpec &spec) : wsSpec(spec)
{
    const BenchmarkProgram &program = beebsBenchmark(spec.benchmark);
    IbexMiniConfig config;
    config.eccRegfile = spec.ecc;
    const std::vector<uint32_t> image = assemble(program.source);
    socPtr = std::make_unique<IbexMini>(config, image);
    workloadPtr = std::make_unique<SocWorkload>(*socPtr);

    EngineOptions options;
    if (!spec.staPeriod) {
        // Timing-closure emulation (see EngineOptions): the observed
        // critical activity sets the clock, as in an optimized core.
        options.periodMode =
            EngineOptions::PeriodMode::ObservedMaxPlusMargin;
    }
    enginePtr = std::make_unique<VulnerabilityEngine>(
        socPtr->netlist(), CellLibrary::defaultLibrary(), *workloadPtr,
        options);
    davf_assert(enginePtr->goldenOutput() == program.expectedOutput,
                "golden run of ", spec.benchmark,
                " produced wrong output");

    attrPtr = std::make_unique<analysis::SocAttribution>(
        *socPtr, *workloadPtr, image);
    enginePtr->setAttributionTap(attrPtr.get());

    // The build fingerprint: netlist structure + engine options +
    // workload identity. Golden length and an output hash pin the
    // workload beyond its name, so a changed benchmark source changes
    // the fingerprint even if the name stays the same.
    uint64_t workload_hash = 0xcbf29ce484222325ull;
    workload_hash = fnv1aWord(enginePtr->goldenCycles(), workload_hash);
    for (uint32_t word : enginePtr->goldenOutput())
        workload_hash = fnv1aWord(word, workload_hash);
    std::ostringstream os;
    os << std::hex << netlistHash(socPtr->netlist()) << '-'
       << workload_hash << '-' << std::dec
       << serializeWorkspaceSpec(spec);
    fp = os.str();
    // Fingerprints embed in space-separated store keys and protocol
    // frames; keep them a single token.
    for (char &c : fp) {
        if (c == ' ')
            c = ':';
    }
}

const Structure &
Workspace::structure(const std::string &name) const
{
    const Structure *found = socPtr->structures().find(name);
    if (!found)
        davf_throw(ErrorKind::NotFound, "unknown structure '", name, "'");
    return *found;
}

} // namespace davf::service
