/**
 * @file
 * Ablation bench (beyond the paper's tables): process / layout corner
 * sensitivity. The paper's timing model is pre-layout and notes that
 * DelayAVF "could be (re)calculated when more accurate timing
 * information is available" and across operating corners (§IV-A,
 * §VI-A). This bench recomputes the headline metrics under three
 * libraries:
 *
 *   typical          — the NanGate-45-like default;
 *   slow (uniform)   — everything 1.3x: DelayAVF is expressed relative
 *                      to the clock period, so a uniform slowdown
 *                      should leave the results (nearly) unchanged;
 *   wire-dominated   — interconnect terms 2.5x (post-layout-like):
 *                      path rankings shift, so statically reachable
 *                      sets and DelayAVF genuinely move.
 */

#include <cstdio>

#include "bench/common.hh"
#include "isa/assembler.hh"
#include "isa/benchmarks.hh"

using namespace davf;
using namespace davf::bench;

namespace {

void
evaluate(const char *label, const CellLibrary &library)
{
    const BenchmarkProgram &program = beebsBenchmark("libstrstr");
    IbexMini soc({}, assemble(program.source));
    SocWorkload workload(soc);
    EngineOptions options;
    options.periodMode =
        EngineOptions::PeriodMode::ObservedMaxPlusMargin;
    VulnerabilityEngine engine(soc.netlist(), library, workload,
                               options);

    SamplingConfig config = BenchLab::sampling();
    std::printf("%-16s period %7.1f ps:", label, engine.clockPeriod());
    for (const char *structure : {"ALU", "Regfile"}) {
        const DelayAvfResult result = engine.delayAvf(
            *soc.structures().find(structure), 0.6, config);
        std::printf("  %s DelayAVF %.5f (static %.2f)", structure,
                    result.delayAvf, result.staticWireFraction);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("Ablation: timing-library corners (libstrstr, "
                "d = 60%%)\n\n");
    evaluate("typical", CellLibrary::defaultLibrary());
    evaluate("slow (uniform)", CellLibrary::slowCorner());
    evaluate("wire-dominated", CellLibrary::wireDominatedCorner());
    std::printf("\nExpected: the uniform corner tracks typical exactly "
                "(everything scales with the\nperiod). The "
                "wire-dominated corner stretches the closure period "
                "(~1.6x here, not\n2.5x — gate delays do not scale) "
                "but, because every path on this core mixes gate\nand "
                "wire delay in similar proportions, the *relative* "
                "path structure and hence\nDelayAVF at matched d "
                "fractions barely move: what drives DelayAVF is path\n"
                "topology and masking, not the gate/wire delay split — "
                "supporting the paper's\nclaim that pre-layout timing "
                "suffices for this analysis (§VI-A).\n");
    return 0;
}
