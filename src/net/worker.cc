#include "worker.hh"

#include <signal.h>
#include <sys/resource.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "campaign/checkpoint.hh"
#include "core/shard.hh"
#include "net/frame.hh"
#include "net/netfault.hh"
#include "util/logging.hh"

namespace davf::net {

namespace {

constexpr double kHeartbeatIntervalMs = 200.0;

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Sends "hb" frames while a shard computes (the pipe worker's
 * Heartbeat, pointed at the socket). Shares the connection write mutex
 * with the reply path: frames must never interleave.
 */
class Heartbeat
{
  public:
    Heartbeat(FrameConn &the_conn, std::mutex &the_mutex)
        : conn(the_conn), writeMutex(the_mutex)
    {
        thread = std::thread([this] { run(); });
    }

    ~Heartbeat()
    {
        done.store(true, std::memory_order_relaxed);
        thread.join();
    }

  private:
    void
    run()
    {
        double last_beat = nowMs();
        while (!done.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            if (nowMs() - last_beat < kHeartbeatIntervalMs)
                continue;
            last_beat = nowMs();
            try {
                const std::lock_guard<std::mutex> lock(writeMutex);
                conn.send("hb");
            } catch (const DavfError &) {
                return; // The coordinator hung up; stop beating.
            }
        }
    }

    FrameConn &conn;
    std::mutex &writeMutex;
    std::atomic<bool> done{false};
    std::thread thread;
};

std::string
selfRusageSuffix()
{
    struct rusage ru = {};
    ::getrusage(RUSAGE_SELF, &ru);
    char buffer[96];
    std::snprintf(buffer, sizeof buffer, " rss %ld %.3f %.3f",
                  ru.ru_maxrss,
                  static_cast<double>(ru.ru_utime.tv_sec)
                      + static_cast<double>(ru.ru_utime.tv_usec) * 1e-6,
                  static_cast<double>(ru.ru_stime.tv_sec)
                      + static_cast<double>(ru.ru_stime.tv_usec) * 1e-6);
    return buffer;
}

/** Keep heartbeating forever: the armed "stall" netfault. Ends when
 *  the coordinator gives up and closes the connection. */
[[noreturn]] void
stallForever(FrameConn &conn, std::mutex &write_mutex)
{
    for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        try {
            const std::lock_guard<std::mutex> lock(write_mutex);
            conn.send("hb");
        } catch (const DavfError &) {
            std::_Exit(1); // Quarantined by the coordinator; done.
        }
    }
}

} // namespace

int
runNetWorker(VulnerabilityEngine &engine,
             const StructureRegistry &registry,
             const NetWorkerOptions &options)
{
    // A vanished coordinator surfaces as EPIPE on write, not a
    // process-fatal SIGPIPE.
    ::signal(SIGPIPE, SIG_IGN);

    const std::string node = options.nodeName.empty()
        ? "node-" + std::to_string(::getpid())
        : options.nodeName;

    FrameConn conn(connectTcpRetry(options.host, options.port,
                                   options.connectTimeoutMs,
                                   options.connectRetries,
                                   options.backoffBaseMs));
    std::mutex write_mutex;
    auto send = [&](const std::string &payload) {
        const std::lock_guard<std::mutex> lock(write_mutex);
        conn.send(payload);
    };

    try {
        send(makeHello(node, options.fingerprint));
        std::string payload;
        const FrameConn::ReadStatus hs = conn.read(payload, 30000.0);
        if (hs != FrameConn::ReadStatus::Frame) {
            std::fprintf(stderr,
                         "net worker %s: no handshake reply\n",
                         node.c_str());
            return 1;
        }
        std::string reason;
        Result<bool> welcome = parseHandshakeReply(payload, reason);
        if (!welcome)
            throw welcome.error();
        if (!welcome.value()) {
            std::fprintf(stderr, "net worker %s: rejected: %s\n",
                         node.c_str(), reason.c_str());
            return 2;
        }

        for (;;) {
            std::string frame;
            const FrameConn::ReadStatus st = conn.read(frame, 1000.0);
            if (st == FrameConn::ReadStatus::Timeout)
                continue; // Idle between cells.
            if (st == FrameConn::ReadStatus::Eof) {
                std::fprintf(stderr,
                             "net worker %s: coordinator vanished\n",
                             node.c_str());
                return 1;
            }
            if (frame == "quit")
                return 0;
            if (frame.rfind("shard ", 0) != 0) {
                send("err bad-input unknown frame");
                continue;
            }
            Result<ShardSpec> parsed = parseShardSpec(frame.substr(6));
            if (!parsed) {
                send(std::string("err bad-input ")
                     + parsed.error().what());
                continue;
            }
            const ShardSpec &spec = parsed.value();
            const Structure *structure = registry.find(spec.structure);
            if (!structure) {
                send("err not-found unknown structure '" + spec.structure
                     + "'");
                continue;
            }

            const bool fault = netFaultFires(node, spec.cycle);
            if (fault
                && armedNetFault().kind == NetFaultKind::Disconnect) {
                std::fprintf(stderr,
                             "net worker %s: netfault disconnect\n",
                             node.c_str());
                conn.close();
                return 1;
            }
            if (fault && armedNetFault().kind == NetFaultKind::Stall) {
                std::fprintf(stderr, "net worker %s: netfault stall\n",
                             node.c_str());
                stallForever(conn, write_mutex);
            }

            // One shard at a time; inner threading would multiply
            // nodes times threads (same rule as pipe workers).
            SamplingConfig sampling = spec.sampling;
            sampling.threads = 1;

            std::string reply;
            try {
                const Heartbeat heartbeat(conn, write_mutex);
                if (spec.kind == ShardSpec::Kind::Cycle) {
                    const InjectionCycleOutcome out =
                        engine.delayAvfCycle(*structure,
                                             spec.delayFraction,
                                             spec.cycle, sampling,
                                             spec.wireBegin, spec.wireEnd,
                                             spec.quarantined);
                    reply = "ok davf " + serializeOutcomeFields(out);
                } else {
                    const SavfResult out =
                        engine.savf(*structure, sampling);
                    reply = "ok savf " + serializeSavfFields(out);
                }
                reply += selfRusageSuffix();
            } catch (const std::bad_alloc &) {
                ::_exit(86); // The pipe workers' OOM convention.
            } catch (const DavfError &error) {
                reply = std::string("err ")
                    + std::string(errorKindName(error.kind())) + " "
                    + error.what();
            } catch (const std::exception &error) {
                reply = std::string("err exception ") + error.what();
            }

            if (fault && armedNetFault().kind == NetFaultKind::Drop) {
                std::fprintf(stderr, "net worker %s: netfault drop\n",
                             node.c_str());
                continue; // Computed, never sent; go silent.
            }
            if (fault && armedNetFault().kind == NetFaultKind::Garble)
                reply = "ok davf !garbled-by-netfault!";

            send(reply);
        }
    } catch (const DavfError &error) {
        std::fprintf(stderr, "net worker %s: fatal: %s\n", node.c_str(),
                     error.what());
        return 1;
    }
}

} // namespace davf::net
