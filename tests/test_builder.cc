/**
 * @file
 * Tests for the structural builder DSL: every datapath block is compared
 * against a C++ reference over exhaustive or randomized operand sweeps
 * using the cycle simulator.
 */

#include <gtest/gtest.h>

#include "src/builder/builder.hh"
#include "src/sim/cycle_sim.hh"
#include "src/util/rng.hh"

namespace davf {
namespace {

/** Fixture: a netlist with two 32-bit input buses and helpers. */
class BuilderDatapath : public ::testing::Test
{
  protected:
    Netlist nl;
    ModuleBuilder b{nl};
    Bus in_a, in_b;

    void
    SetUp() override
    {
        in_a = b.inputBus("a", 32);
        in_b = b.inputBus("b", 32);
    }

    std::unique_ptr<CycleSimulator> sim;

    void
    finish()
    {
        nl.finalize();
        sim = std::make_unique<CycleSimulator>(nl);
    }

    void
    drive(uint32_t a, uint32_t b_val)
    {
        for (unsigned i = 0; i < 32; ++i) {
            sim->setInput(in_a[i], (a >> i) & 1);
            sim->setInput(in_b[i], (b_val >> i) & 1);
        }
    }

    uint32_t
    read(const Bus &bus)
    {
        uint32_t value = 0;
        for (size_t i = 0; i < bus.size(); ++i)
            value |= uint32_t{sim->value(bus[i])} << i;
        return value;
    }
};

TEST_F(BuilderDatapath, AdderMatchesReference)
{
    NetId cout = kInvalidId;
    const Bus sum = b.adder(in_a, in_b, b.constant(false), &cout);
    finish();
    Rng rng(1);
    for (int trial = 0; trial < 200; ++trial) {
        const uint32_t a = rng.next32();
        const uint32_t c = rng.next32();
        drive(a, c);
        EXPECT_EQ(read(sum), a + c);
        EXPECT_EQ(sim->value(cout),
                  (uint64_t{a} + uint64_t{c}) >> 32 != 0);
    }
}

TEST_F(BuilderDatapath, SubtractorMatchesReference)
{
    const Bus diff = b.subtractor(in_a, in_b);
    finish();
    Rng rng(2);
    for (int trial = 0; trial < 200; ++trial) {
        const uint32_t a = rng.next32();
        const uint32_t c = rng.next32();
        drive(a, c);
        EXPECT_EQ(read(diff), a - c);
    }
}

TEST_F(BuilderDatapath, BitwiseOps)
{
    const Bus and_out = b.andB(in_a, in_b);
    const Bus or_out = b.orB(in_a, in_b);
    const Bus xor_out = b.xorB(in_a, in_b);
    const Bus not_out = b.notB(in_a);
    finish();
    Rng rng(3);
    for (int trial = 0; trial < 100; ++trial) {
        const uint32_t a = rng.next32();
        const uint32_t c = rng.next32();
        drive(a, c);
        EXPECT_EQ(read(and_out), a & c);
        EXPECT_EQ(read(or_out), a | c);
        EXPECT_EQ(read(xor_out), a ^ c);
        EXPECT_EQ(read(not_out), ~a);
    }
}

TEST_F(BuilderDatapath, Comparators)
{
    const NetId eq = b.equal(in_a, in_b);
    const NetId ltu = b.lessThanUnsigned(in_a, in_b);
    const NetId lts = b.lessThanSigned(in_a, in_b);
    finish();
    Rng rng(4);
    for (int trial = 0; trial < 300; ++trial) {
        // Mix full-random with near-equal operands.
        uint32_t a = rng.next32();
        uint32_t c = rng.chance(0.3) ? a + rng.below(3) - 1 : rng.next32();
        drive(a, c);
        EXPECT_EQ(sim->value(eq), a == c) << a << " vs " << c;
        EXPECT_EQ(sim->value(ltu), a < c) << a << " vs " << c;
        EXPECT_EQ(sim->value(lts),
                  static_cast<int32_t>(a) < static_cast<int32_t>(c))
            << a << " vs " << c;
    }
}

class BuilderShift : public BuilderDatapath,
                     public ::testing::WithParamInterface<int>
{};

TEST_P(BuilderShift, AllAmounts)
{
    const Bus amount = b.inputBus("sh", 5);
    const Bus sll = b.barrelShift(in_a, amount, false, false);
    const Bus srl = b.barrelShift(in_a, amount, true, false);
    const Bus sra = b.barrelShift(in_a, amount, true, true);
    finish();

    const unsigned shamt = GetParam();
    Rng rng(100 + shamt);
    for (int trial = 0; trial < 20; ++trial) {
        const uint32_t a = rng.next32();
        drive(a, 0);
        for (unsigned i = 0; i < 5; ++i)
            sim->setInput(amount[i], (shamt >> i) & 1);
        EXPECT_EQ(read(sll), a << shamt);
        EXPECT_EQ(read(srl), a >> shamt);
        EXPECT_EQ(read(sra),
                  static_cast<uint32_t>(static_cast<int32_t>(a)
                                        >> shamt));
    }
}

INSTANTIATE_TEST_SUITE_P(Amounts, BuilderShift, ::testing::Range(0, 32));

TEST_F(BuilderDatapath, DynamicFillShifter)
{
    const Bus amount = b.inputBus("sh", 5);
    const NetId fill = b.input("fill");
    const Bus out = b.barrelShiftRightFill(in_a, amount, fill);
    finish();
    Rng rng(5);
    for (int trial = 0; trial < 100; ++trial) {
        const uint32_t a = rng.next32();
        const unsigned shamt = rng.below(32);
        const bool f = rng.chance(0.5);
        drive(a, 0);
        for (unsigned i = 0; i < 5; ++i)
            sim->setInput(amount[i], (shamt >> i) & 1);
        sim->setInput(fill, f);
        uint32_t want = a >> shamt;
        if (f && shamt > 0)
            want |= ~0u << (32 - shamt);
        EXPECT_EQ(read(out), want);
    }
}

TEST_F(BuilderDatapath, DecoderOneHot)
{
    const Bus sel = b.inputBus("sel", 4);
    const Bus dec = b.decode(sel);
    finish();
    for (unsigned value = 0; value < 16; ++value) {
        for (unsigned i = 0; i < 4; ++i)
            sim->setInput(sel[i], (value >> i) & 1);
        EXPECT_EQ(read(dec), 1u << value);
    }
}

TEST_F(BuilderDatapath, MuxTreeSelects)
{
    const Bus sel = b.inputBus("sel", 2);
    std::vector<Bus> choices;
    for (unsigned i = 0; i < 4; ++i)
        choices.push_back(b.constantBus(8, 0x11 * (i + 1)));
    const Bus out = b.muxTree(sel, choices);
    finish();
    for (unsigned value = 0; value < 4; ++value) {
        sim->setInput(sel[0], value & 1);
        sim->setInput(sel[1], (value >> 1) & 1);
        EXPECT_EQ(read(out), 0x11u * (value + 1));
    }
}

TEST_F(BuilderDatapath, OnehotMuxSelects)
{
    const Bus sels = b.inputBus("sel", 3);
    std::vector<Bus> choices = {b.constantBus(8, 0xaa),
                                b.constantBus(8, 0x55),
                                b.constantBus(8, 0x0f)};
    const Bus out = b.onehotMux(sels, choices);
    finish();
    const uint32_t want[3] = {0xaa, 0x55, 0x0f};
    for (unsigned hot = 0; hot < 3; ++hot) {
        for (unsigned i = 0; i < 3; ++i)
            sim->setInput(sels[i], i == hot);
        EXPECT_EQ(read(out), want[hot]);
    }
    // Nothing selected -> zero.
    for (unsigned i = 0; i < 3; ++i)
        sim->setInput(sels[i], false);
    EXPECT_EQ(read(out), 0u);
}

TEST_F(BuilderDatapath, Reductions)
{
    const NetId all = b.reduceAnd(in_a);
    const NetId any = b.reduceOr(in_a);
    const NetId par = b.reduceXor(in_a);
    finish();
    const uint32_t cases[] = {0u, ~0u, 1u, 0x80000000u, 0x0f0f0f0fu};
    for (uint32_t a : cases) {
        drive(a, 0);
        EXPECT_EQ(sim->value(all), a == ~0u);
        EXPECT_EQ(sim->value(any), a != 0);
        unsigned bits_set = __builtin_popcount(a);
        EXPECT_EQ(sim->value(par), bits_set % 2 == 1);
    }
}

TEST_F(BuilderDatapath, PopcountTree)
{
    const Bus count = b.popcountTree(in_a);
    finish();
    Rng rng(6);
    const uint32_t cases[] = {0u, 1u, ~0u, 0x80000000u, 0xa5a5a5a5u,
                              rng.next32(), rng.next32(), rng.next32()};
    for (uint32_t a : cases) {
        drive(a, 0);
        EXPECT_EQ(read(count),
                  static_cast<uint32_t>(__builtin_popcount(a)))
            << a;
    }
    EXPECT_EQ(count.size(), 6u); // clog2(32) + 1.
}

TEST_F(BuilderDatapath, PopcountTreeOddWidths)
{
    for (unsigned width : {1u, 3u, 7u, 13u}) {
        Netlist nl;
        ModuleBuilder builder(nl);
        const Bus in = builder.inputBus("x", width);
        const Bus count = builder.popcountTree(in);
        nl.finalize();
        CycleSimulator sim(nl);
        Rng rng(width);
        for (int trial = 0; trial < 20; ++trial) {
            const uint32_t value =
                rng.next32() & ((1u << width) - 1);
            for (unsigned i = 0; i < width; ++i)
                sim.setInput(in[i], (value >> i) & 1);
            uint32_t got = 0;
            for (size_t i = 0; i < count.size(); ++i)
                got |= uint32_t{sim.value(count[i])} << i;
            EXPECT_EQ(got,
                      static_cast<uint32_t>(__builtin_popcount(value)));
        }
    }
}

TEST_F(BuilderDatapath, PriorityEncoder)
{
    NetId any = kInvalidId;
    const Bus index = b.priorityEncode(in_a, &any);
    finish();
    ASSERT_EQ(index.size(), 5u);
    Rng rng(7);
    for (int trial = 0; trial < 100; ++trial) {
        uint32_t a = rng.next32();
        if (trial == 0)
            a = 0;
        drive(a, 0);
        EXPECT_EQ(sim->value(any), a != 0);
        if (a != 0) {
            EXPECT_EQ(read(index),
                      static_cast<uint32_t>(__builtin_ctz(a)))
                << a;
        }
    }
    // Every single-bit input maps to its own index.
    for (unsigned bit = 0; bit < 32; ++bit) {
        drive(1u << bit, 0);
        EXPECT_EQ(read(index), bit);
    }
}

TEST(Builder, ScopesPrefixNames)
{
    Netlist nl;
    ModuleBuilder b(nl);
    b.pushScope("top");
    b.pushScope("alu");
    EXPECT_EQ(b.scopePrefix(), "top/alu/");
    const NetId x = b.constant(true);
    const NetId y = b.inv(x);
    b.popScope();
    b.popScope();
    b.output("o", y);
    nl.finalize();
    EXPECT_FALSE(nl.cellsByPrefix("top/alu/").empty());
}

TEST(Builder, ConstantsAreCached)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId a = b.constant(true);
    const NetId c = b.constant(true);
    const NetId z = b.constant(false);
    EXPECT_EQ(a, c);
    EXPECT_NE(a, z);
}

/** Kogge-Stone vs ripple equivalence at every small width. */
class AdderWidths : public ::testing::TestWithParam<unsigned>
{};

TEST_P(AdderWidths, KoggeStoneMatchesRipple)
{
    const unsigned width = GetParam();
    Netlist nl;
    ModuleBuilder b(nl);
    const Bus a = b.inputBus("a", width);
    const Bus c = b.inputBus("b", width);
    const NetId cin = b.input("cin");
    NetId ks_cout = kInvalidId;
    NetId rc_cout = kInvalidId;
    const Bus ks = b.koggeStoneAdder(a, c, cin, &ks_cout);
    const Bus rc = b.rippleAdder(a, c, cin, &rc_cout);
    nl.finalize();
    CycleSimulator sim(nl);

    Rng rng(width);
    const uint64_t mask = (uint64_t{1} << width) - 1;
    for (int trial = 0; trial < 64; ++trial) {
        const uint64_t av = rng.next() & mask;
        const uint64_t cv = rng.next() & mask;
        const bool carry = rng.chance(0.5);
        for (unsigned i = 0; i < width; ++i) {
            sim.setInput(a[i], (av >> i) & 1);
            sim.setInput(c[i], (cv >> i) & 1);
        }
        sim.setInput(cin, carry);
        uint64_t ks_value = 0;
        uint64_t rc_value = 0;
        for (unsigned i = 0; i < width; ++i) {
            ks_value |= uint64_t{sim.value(ks[i])} << i;
            rc_value |= uint64_t{sim.value(rc[i])} << i;
        }
        const uint64_t want = (av + cv + (carry ? 1 : 0)) & mask;
        EXPECT_EQ(ks_value, want);
        EXPECT_EQ(rc_value, want);
        EXPECT_EQ(sim.value(ks_cout), sim.value(rc_cout));
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidths,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16,
                                           24, 32));

TEST(Builder, KoggeStoneIsShallowerThanRipple)
{
    auto depth = [](bool kogge_stone) {
        Netlist nl;
        ModuleBuilder b(nl);
        const Bus a = b.inputBus("a", 32);
        const Bus c = b.inputBus("b", 32);
        const Bus sum = kogge_stone
            ? b.koggeStoneAdder(a, c, b.constant(false))
            : b.rippleAdder(a, c, b.constant(false));
        nl.finalize();
        unsigned worst = 0;
        for (NetId net : sum)
            worst = std::max(worst, nl.level(nl.net(net).driver));
        return worst;
    };
    EXPECT_LT(depth(true), depth(false) / 3);
}

TEST(Builder, RegisterResetValues)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const Bus d = b.constantBus(8, 0);
    const Bus q = b.regB(d, 0xa5);
    nl.finalize();
    CycleSimulator sim(nl);
    uint32_t value = 0;
    for (size_t i = 0; i < q.size(); ++i)
        value |= uint32_t{sim.value(q[i])} << i;
    EXPECT_EQ(value, 0xa5u);
    sim.step();
    value = 0;
    for (size_t i = 0; i < q.size(); ++i)
        value |= uint32_t{sim.value(q[i])} << i;
    EXPECT_EQ(value, 0u);
}

} // namespace
} // namespace davf
