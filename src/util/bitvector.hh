/**
 * @file
 * A compact dynamically-sized bit vector.
 *
 * Used for simulator state snapshots, toggle maps, and ACE bookkeeping.
 * The storage is word-packed; words beyond the logical size are kept
 * zeroed so that whole-word operations (popcount, equality) are exact.
 */

#ifndef DAVF_UTIL_BITVECTOR_HH
#define DAVF_UTIL_BITVECTOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace davf {

/** A packed vector of bits with word-level bulk operations. */
class BitVector
{
  public:
    BitVector() = default;

    /** Construct with @p size bits, all initialized to @p value. */
    explicit BitVector(size_t size, bool value = false);

    /** Number of bits held. */
    size_t size() const { return numBits; }

    /** Resize to @p size bits; new bits are set to @p value. */
    void resize(size_t size, bool value = false);

    /** Read the bit at @p index. */
    bool
    get(size_t index) const
    {
        return (words[index >> 6] >> (index & 63)) & 1u;
    }

    /** Set the bit at @p index to @p value. */
    void
    set(size_t index, bool value)
    {
        const uint64_t mask = uint64_t{1} << (index & 63);
        if (value)
            words[index >> 6] |= mask;
        else
            words[index >> 6] &= ~mask;
    }

    /** Flip the bit at @p index. */
    void flip(size_t index) { words[index >> 6] ^= uint64_t{1} << (index & 63); }

    /** Set every bit to @p value. */
    void fill(bool value);

    /** Number of set bits. */
    size_t popcount() const;

    /** True iff no bit is set. */
    bool none() const;

    /** XOR with @p other (sizes must match); returns *this. */
    BitVector &operator^=(const BitVector &other);

    /** OR with @p other (sizes must match); returns *this. */
    BitVector &operator|=(const BitVector &other);

    /** AND with @p other (sizes must match); returns *this. */
    BitVector &operator&=(const BitVector &other);

    bool operator==(const BitVector &other) const = default;

    /** Indices of all set bits, in increasing order. */
    std::vector<size_t> setBits() const;

  private:
    /** Clear any bits stored above the logical size. */
    void clearTail();

    size_t numBits = 0;
    std::vector<uint64_t> words;
};

} // namespace davf

#endif // DAVF_UTIL_BITVECTOR_HH
