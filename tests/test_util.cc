/**
 * @file
 * Unit tests for src/util: bit helpers, BitVector, Rng, stats, and the
 * thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>
#include <thread>

#include "src/util/bits.hh"
#include "src/util/bitvector.hh"
#include "src/util/error.hh"
#include "src/util/parse.hh"
#include "src/util/rng.hh"
#include "src/util/stats.hh"
#include "src/util/thread_pool.hh"

namespace davf {
namespace {

TEST(Bits, Extract)
{
    EXPECT_EQ(bits(0xdeadbeef, 31, 28), 0xdu);
    EXPECT_EQ(bits(0xdeadbeef, 7, 0), 0xefu);
    EXPECT_EQ(bits(0xdeadbeef, 31, 0), 0xdeadbeefu);
    EXPECT_EQ(bit(0x80000000, 31), 1u);
    EXPECT_EQ(bit(0x80000000, 30), 0u);
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(signExtend(0xfff, 12), -1);
    EXPECT_EQ(signExtend(0x7ff, 12), 2047);
    EXPECT_EQ(signExtend(0x800, 12), -2048);
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(42, 8), 42);
}

TEST(Bits, Parity)
{
    EXPECT_EQ(parity32(0), 0u);
    EXPECT_EQ(parity32(1), 1u);
    EXPECT_EQ(parity32(0b1011), 1u);
    EXPECT_EQ(parity32(0xffffffff), 0u);
}

TEST(Bits, Clog2)
{
    EXPECT_EQ(clog2(1), 0u);
    EXPECT_EQ(clog2(2), 1u);
    EXPECT_EQ(clog2(3), 2u);
    EXPECT_EQ(clog2(32), 5u);
    EXPECT_EQ(clog2(33), 6u);
}

TEST(Bits, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(96));
}

TEST(BitVector, SetGetFlip)
{
    BitVector bv(130);
    EXPECT_EQ(bv.size(), 130u);
    EXPECT_TRUE(bv.none());
    bv.set(0, true);
    bv.set(64, true);
    bv.set(129, true);
    EXPECT_TRUE(bv.get(0));
    EXPECT_TRUE(bv.get(64));
    EXPECT_TRUE(bv.get(129));
    EXPECT_FALSE(bv.get(1));
    EXPECT_EQ(bv.popcount(), 3u);
    bv.flip(64);
    EXPECT_FALSE(bv.get(64));
    EXPECT_EQ(bv.popcount(), 2u);
}

TEST(BitVector, FillAndTailMasking)
{
    BitVector bv(70, true);
    EXPECT_EQ(bv.popcount(), 70u);
    bv.fill(false);
    EXPECT_TRUE(bv.none());
    bv.fill(true);
    EXPECT_EQ(bv.popcount(), 70u);
}

TEST(BitVector, ResizeGrowWithValue)
{
    BitVector bv(10, false);
    bv.resize(20, true);
    EXPECT_EQ(bv.popcount(), 10u);
    for (size_t i = 10; i < 20; ++i)
        EXPECT_TRUE(bv.get(i));
}

TEST(BitVector, BitwiseOps)
{
    BitVector a(100);
    BitVector b(100);
    a.set(3, true);
    a.set(70, true);
    b.set(70, true);
    b.set(99, true);

    BitVector x = a;
    x ^= b;
    EXPECT_TRUE(x.get(3));
    EXPECT_FALSE(x.get(70));
    EXPECT_TRUE(x.get(99));

    BitVector o = a;
    o |= b;
    EXPECT_EQ(o.popcount(), 3u);

    BitVector n = a;
    n &= b;
    EXPECT_EQ(n.popcount(), 1u);
    EXPECT_TRUE(n.get(70));
}

TEST(BitVector, SetBitsEnumeration)
{
    BitVector bv(200);
    const std::vector<size_t> want = {0, 63, 64, 127, 128, 199};
    for (size_t i : want)
        bv.set(i, true);
    EXPECT_EQ(bv.setBits(), want);
}

TEST(BitVector, Equality)
{
    BitVector a(50);
    BitVector b(50);
    EXPECT_EQ(a, b);
    a.set(20, true);
    EXPECT_NE(a, b);
    b.set(20, true);
    EXPECT_EQ(a, b);
}

TEST(Rng, Deterministic)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const uint64_t value = rng.below(10);
        EXPECT_LT(value, 10u);
        seen.insert(value);
    }
    EXPECT_EQ(seen.size(), 10u); // All buckets hit.
}

TEST(Rng, UniformRange)
{
    Rng rng(9);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Stats, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
    // Zero entries are floored, not fatal.
    EXPECT_GT(geomean({0.0, 1.0}), 0.0);
    EXPECT_DOUBLE_EQ(maxOf({1.0, 5.0, 2.0}), 5.0);
}

TEST(Stats, Histogram)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    EXPECT_EQ(h.count(), 10u);
    for (size_t i = 0; i < 10; ++i) {
        EXPECT_EQ(h.bins()[i], 1u);
        EXPECT_NEAR(h.fraction(i), 0.1, 1e-12);
    }
    // Clamping at the edges.
    h.add(-5.0);
    h.add(50.0);
    EXPECT_EQ(h.bins()[0], 2u);
    EXPECT_EQ(h.bins()[9], 2u);
    EXPECT_FALSE(h.render("label").empty());
}

TEST(Stats, HistogramNonFiniteAndHugeSamples)
{
    // Regression: the bin index used to be computed by casting an
    // unclamped double to size_t — UB for NaN and for values far
    // outside the range. Now the clamp happens in the double domain
    // and NaN is routed to a dedicated invalid count.
    Histogram h(0.0, 10.0, 10);
    h.add(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.invalidCount(), 1u);

    h.add(std::numeric_limits<double>::infinity());
    h.add(-std::numeric_limits<double>::infinity());
    h.add(1e300);
    h.add(-1e300);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.invalidCount(), 1u);
    EXPECT_EQ(h.bins()[0], 2u);
    EXPECT_EQ(h.bins()[9], 2u);
}

TEST(Stats, MaxOfAllNegativeInputs)
{
    // Regression: maxOf folded from 0.0, so any all-negative input
    // reported a spurious maximum of zero.
    EXPECT_DOUBLE_EQ(maxOf({-3.0, -1.0, -2.0}), -1.0);
    EXPECT_DOUBLE_EQ(maxOf({-7.5}), -7.5);
    EXPECT_DOUBLE_EQ(maxOf({}), 0.0);
    EXPECT_DOUBLE_EQ(maxOf({-1.0, 0.0, -2.0}), 0.0);
}

TEST(ThreadPool, CoversAllIndices)
{
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, SingleThreadFallback)
{
    std::vector<int> hits(100, 0);
    parallelFor(100, [&](size_t i) { hits[i] += 1; }, 1);
    for (int hit : hits)
        EXPECT_EQ(hit, 1);
}

TEST(ThreadPool, EmptyRange)
{
    bool ran = false;
    parallelFor(0, [&](size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, RethrowsWorkerException)
{
    // A worker exception must surface on the calling thread, not
    // std::terminate the process.
    EXPECT_THROW(
        parallelFor(64,
                    [&](size_t i) {
                        if (i == 13)
                            throw std::runtime_error("boom");
                    },
                    4),
        std::runtime_error);
}

TEST(ThreadPool, RethrowsFirstExceptionAndStopsScheduling)
{
    // Every scheduled index either runs or is skipped after the
    // failure; none runs twice, and exactly one exception escapes.
    std::vector<std::atomic<int>> hits(5000);
    bool caught = false;
    try {
        parallelFor(5000, [&](size_t i) {
            hits[i].fetch_add(1);
            if (i == 100)
                throw std::runtime_error("first failure");
        });
    } catch (const std::runtime_error &error) {
        caught = true;
        EXPECT_STREQ(error.what(), "first failure");
    }
    EXPECT_TRUE(caught);
    for (const auto &hit : hits)
        EXPECT_LE(hit.load(), 1);
}

TEST(ThreadPool, FirstIndexThrowsWhileLaterWorkIsQueued)
{
    // Index 0 is the first index handed out, so its exception is the
    // chronologically first failure; it must be the one rethrown, and
    // scheduling must stop long before the queue drains — the workers
    // still in flight only finish their current body.
    const size_t count = 100000;
    std::atomic<size_t> executed{0};
    bool caught = false;
    try {
        parallelFor(count,
                    [&](size_t i) {
                        executed.fetch_add(1);
                        if (i == 0)
                            throw std::runtime_error("index zero");
                        // Keep later bodies slow enough that the
                        // failure flag is observed mid-queue.
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(50));
                    },
                    4);
    } catch (const std::runtime_error &error) {
        caught = true;
        EXPECT_STREQ(error.what(), "index zero");
    }
    EXPECT_TRUE(caught);
    EXPECT_GE(executed.load(), 1u);
    EXPECT_LT(executed.load(), count / 2)
        << "scheduling did not stop after the first failure";
}

TEST(ThreadPool, RethrowsOnSingleThread)
{
    std::vector<int> hits(100, 0);
    EXPECT_THROW(parallelFor(100,
                             [&](size_t i) {
                                 hits[i] += 1;
                                 if (i == 10)
                                     throw std::runtime_error("stop");
                             },
                             1),
                 std::runtime_error);
    // The single-thread path runs in order and stops at the throw.
    EXPECT_EQ(hits[10], 1);
    EXPECT_EQ(hits[11], 0);
}

TEST(Parse, U64StrictAcceptsPlainDecimal)
{
    EXPECT_EQ(parseU64Strict("0", "--n"), 0u);
    EXPECT_EQ(parseU64Strict("42", "--n"), 42u);
    EXPECT_EQ(parseU64Strict("18446744073709551615", "--n"),
              std::numeric_limits<uint64_t>::max());
}

TEST(Parse, U64StrictRejectsGarbageAndOverflow)
{
    // The libc behaviors these guard against: strtoull("4x") returns 4,
    // and an over-wide literal saturates to ULLONG_MAX — both silently.
    EXPECT_THROW(parseU64Strict("4x", "--workers"), DavfError);
    EXPECT_THROW(parseU64Strict("", "--workers"), DavfError);
    EXPECT_THROW(parseU64Strict(" 4", "--workers"), DavfError);
    EXPECT_THROW(parseU64Strict("-1", "--workers"), DavfError);
    EXPECT_THROW(parseU64Strict("+4", "--workers"), DavfError);
    EXPECT_THROW(parseU64Strict("0x10", "--workers"), DavfError);
    EXPECT_THROW(parseU64Strict("99999999999999999999", "--workers"),
                 DavfError);
    EXPECT_THROW(parseU64Strict("18446744073709551616", "--workers"),
                 DavfError);
    try {
        parseU64Strict("4x", "--workers");
        FAIL() << "expected a throw";
    } catch (const DavfError &error) {
        EXPECT_EQ(error.kind(), ErrorKind::BadArgument);
        EXPECT_NE(std::string(error.what()).find("--workers"),
                  std::string::npos);
    }
}

TEST(Parse, U64InRange)
{
    EXPECT_EQ(parseU64InRange("8", "--lanes", 2, 64), 8u);
    EXPECT_THROW(parseU64InRange("1", "--lanes", 2, 64), DavfError);
    EXPECT_THROW(parseU64InRange("65", "--lanes", 2, 64), DavfError);
}

TEST(Parse, DoubleStrict)
{
    EXPECT_DOUBLE_EQ(parseDoubleStrict("0.5", "--d"), 0.5);
    EXPECT_DOUBLE_EQ(parseDoubleStrict("-1e3", "--d"), -1000.0);
    // Whole-token and finiteness rules.
    EXPECT_THROW(parseDoubleStrict("0.5x", "--d"), DavfError);
    EXPECT_THROW(parseDoubleStrict("", "--d"), DavfError);
    EXPECT_THROW(parseDoubleStrict("nan", "--d"), DavfError);
    EXPECT_THROW(parseDoubleStrict("inf", "--d"), DavfError);
    EXPECT_THROW(parseDoubleStrict("1e99999", "--d"), DavfError);
    // A very wide integer literal is fine as a double (it rounds); the
    // u64 parser is the one that must reject it.
    EXPECT_DOUBLE_EQ(parseDoubleStrict("99999999999999999999", "--d"),
                     1e20);
}

} // namespace
} // namespace davf
