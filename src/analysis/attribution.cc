#include "attribution.hh"

#include <algorithm>

#include "analysis/disasm.hh"
#include "isa/iss.hh"
#include "util/logging.hh"

namespace davf::analysis {

SocAttribution::SocAttribution(const IbexMini &the_soc,
                               const SocWorkload &the_workload,
                               std::vector<uint32_t> the_image)
    : soc(&the_soc), workload(&the_workload), image(std::move(the_image))
{
}

void
SocAttribution::prepared()
{
    std::call_once(once, [this] { prepare(); });
}

void
SocAttribution::prepare()
{
    // 1. ISS trajectory. The instruction count is bounded by the gate
    // run's cycle budget (every instruction takes >= 1 gate cycle).
    const uint32_t mem_bytes = 4u << soc->config().memWordsLog2;
    Iss iss(image, mem_bytes);
    const uint64_t limit = workload->maxGoldenCycles();

    auto record_state = [&] {
        ArchState state;
        for (unsigned i = 1; i < 32; ++i)
            state.regs[i] = iss.reg(i);
        state.memHash = MemoryModel::imageHash(iss.memWords());
        state.outLen =
            static_cast<uint32_t>(iss.outputTrace().size());
        states.push_back(state);
    };

    record_state();
    while (!iss.halted()) {
        davf_assert(iss.instructionsExecuted() < limit,
                    "ISS run did not halt within ", limit,
                    " instructions");
        instrPc.push_back(iss.pc());
        instrText.push_back(disassemble(iss.memWord(iss.pc())));
        iss.step();
        record_state();
    }
    issOut = iss.outputTrace();
    davf_assert(!instrPc.empty(), "empty ISS trajectory");

    // 2. Golden gate replay -> per-cycle alignment. The eager-advance
    // rule walks past signature-invisible instructions; any state
    // matching neither trajectory neighbor means the gate core and the
    // ISS disagree on the *golden* run, which is a broken lockstep.
    CycleSimulator sim(soc->netlist());
    GateView view;
    size_t cursor = 0;
    for (;;) {
        readGate(sim, view);
        while (cursor < instrPc.size() && matches(view, cursor + 1))
            ++cursor;
        if (!matches(view, cursor)) {
            davf_throw(ErrorKind::Internal,
                       "ISS/gate lockstep broken at golden cycle ",
                       sim.cycle(), " (trajectory position ", cursor,
                       ")");
        }
        align.push_back(cursor);
        if (workload->done(sim))
            break;
        davf_assert(sim.cycle() < limit,
                    "golden gate run did not halt within ", limit,
                    " cycles");
        sim.step();
    }
    davf_assert(cursor == instrPc.size(),
                "golden gate run halted at trajectory position ", cursor,
                " of ", instrPc.size());
}

void
SocAttribution::readGate(const CycleSimulator &sim, GateView &view) const
{
    for (unsigned i = 1; i < 32; ++i)
        view.regs[i] = soc->readRegister(sim, i);
    const MemoryModel &mem = workload->memory(sim);
    view.memHash = mem.contentHash();
    view.out = &mem.outputTrace();
}

bool
SocAttribution::matches(const GateView &view, size_t state) const
{
    const ArchState &arch = states[state];
    if (view.memHash != arch.memHash
        || view.out->size() != arch.outLen || view.regs != arch.regs) {
        return false;
    }
    // Same length is not enough off the golden path: a faulty run can
    // emit as many — but wrong — words.
    return std::equal(view.out->begin(), view.out->end(),
                      issOut.begin());
}

uint64_t
SocAttribution::trajectoryLength()
{
    prepared();
    return instrPc.size();
}

AttributionTap::InFlight
SocAttribution::inFlight(uint64_t cycle)
{
    prepared();
    davf_assert(cycle < align.size(), "attribution cycle ", cycle,
                " beyond the golden run");
    const uint64_t k =
        std::min<uint64_t>(align[cycle], instrPc.size() - 1);
    return {instrPc[k], instrText[k]};
}

AttributionTap::Walk
SocAttribution::beginWalk(uint64_t cycle)
{
    prepared();
    davf_assert(cycle < align.size(), "attribution cycle ", cycle,
                " beyond the golden run");
    Walk walk;
    walk.cursor = align[cycle];
    return walk;
}

CycleAttribution::Event
SocAttribution::deviationEvent(const GateView &view,
                               uint64_t cursor) const
{
    const uint64_t n = instrPc.size();
    const uint64_t k = std::min(cursor, n - 1);
    CycleAttribution::Event event;
    event.pc = instrPc[k];
    event.mnemonic = instrText[k];

    const ArchState &cur = states[cursor];
    const ArchState &nxt = states[std::min(cursor + 1, n)];
    for (unsigned i = 1; i < 32; ++i) {
        if (view.regs[i] != cur.regs[i] && view.regs[i] != nxt.regs[i]) {
            event.dest = "x" + std::to_string(i);
            return event;
        }
    }
    if (view.memHash != cur.memHash && view.memHash != nxt.memHash) {
        event.dest = "mem";
        return event;
    }
    auto out_matches = [&](const ArchState &arch) {
        return view.out->size() == arch.outLen
            && std::equal(view.out->begin(), view.out->end(),
                          issOut.begin());
    };
    if (!out_matches(cur) && !out_matches(nxt)) {
        event.dest = "out";
        return event;
    }
    // Each component matches one neighbor but the combination matches
    // neither — a torn mixture of the two states.
    event.dest = "state";
    return event;
}

bool
SocAttribution::observe(Walk &walk, const CycleSimulator &sim)
{
    GateView view;
    readGate(sim, view);
    while (walk.cursor < instrPc.size() && matches(view, walk.cursor + 1))
        ++walk.cursor;
    if (matches(view, walk.cursor))
        return false;
    walk.found = true;
    walk.event = deviationEvent(view, walk.cursor);
    return true;
}

CycleAttribution::Event
SocAttribution::finish(Walk &walk, WalkEnd end)
{
    if (walk.found) {
        davf_assert(end == WalkEnd::Deviated,
                    "found walk finished as non-deviated");
        return walk.event;
    }
    // The walk tracked the golden trajectory to its end (completion or
    // watchdog) without an architectural deviation; the damage stayed
    // microarchitectural ("uarch") unless the run halted mid-program,
    // where the lost remainder of the output is the corruption.
    const uint64_t n = instrPc.size();
    const uint64_t k = std::min<uint64_t>(walk.cursor, n - 1);
    CycleAttribution::Event event;
    event.pc = instrPc[k];
    event.mnemonic = instrText[k];
    event.dest = end == WalkEnd::Done && walk.cursor < n ? "out"
                                                         : "uarch";
    return event;
}

} // namespace davf::analysis
