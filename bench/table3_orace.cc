/**
 * @file
 * Table III reproduction: ACE interference and ACE compounding rates
 * (as a percentage of all dynamically reachable sets observed), and the
 * resulting relative change between DelayAVF and its ORACE-based
 * approximation OrDelayAVF, at d = 90% of the clock period.
 *
 * Paper reference values (max / avg %): ALU interference 0.98/0.58,
 * compounding 0.17/0.09, rel change 3.00/1.73; Decoder 13.03/6.73,
 * 2.47/1.14, 21.80/10.45; Regfile 0.13/0.07, 0.17/0.07, 0.69/0.30;
 * Regfile (ECC) 0.13/0.07, 21.95/11.57, 92.45/50.38.
 *
 * Expected shape (paper Observation 6): the decoder shows elevated ACE
 * *interference* (multi-bit control errors can cancel architecturally),
 * and the ECC register file shows massive ACE *compounding* (multi-bit
 * errors defeat SEC correction while no single error is ACE), making
 * OrDelayAVF a severe under-approximation there.
 */

#include <cmath>
#include <cstdio>

#include "bench/common.hh"

using namespace davf;
using namespace davf::bench;

int
main()
{
    std::printf("Table III: ACE interference / compounding and "
                "DelayAVF vs OrDelayAVF (d = 90%%)\n\n");

    BenchLab lab;
    AvfTable table(lab);

    const std::vector<std::string> structures = {"ALU", "Decoder",
                                                 "Regfile",
                                                 "Regfile (ECC)"};

    printHeader("Structure",
                {"MaxInt%", "AvgInt%", "MaxComp%", "AvgComp%",
                 "MaxRel%", "AvgRel%"});

    for (const std::string &structure : structures) {
        const bool ecc = structure == "Regfile (ECC)";
        double max_int = 0, sum_int = 0;
        double max_comp = 0, sum_comp = 0;
        double max_rel = 0, sum_rel = 0;
        unsigned counted = 0;
        for (const std::string &benchmark : kBenchmarks) {
            const DelayAvfResult &result =
                table.delayAvf(benchmark, ecc, structure, 0.9);
            if (result.errorInjections == 0)
                continue;
            ++counted;
            const auto sets =
                static_cast<double>(result.errorInjections);
            const double interference =
                100.0 * static_cast<double>(result.aceInterference)
                / sets;
            const double compounding =
                100.0 * static_cast<double>(result.aceCompounding)
                / sets;
            const double relative = result.delayAvf > 0
                ? 100.0
                    * std::fabs(result.orDelayAvf - result.delayAvf)
                    / result.delayAvf
                : (result.orDelayAvf > 0 ? 100.0 : 0.0);
            max_int = std::max(max_int, interference);
            sum_int += interference;
            max_comp = std::max(max_comp, compounding);
            sum_comp += compounding;
            max_rel = std::max(max_rel, relative);
            sum_rel += relative;
        }
        const double n = counted ? counted : 1;
        printRow(structure,
                 {max_int, sum_int / n, max_comp, sum_comp / n, max_rel,
                  sum_rel / n},
                 2);
    }

    std::printf("\n(Rates are %% of dynamically reachable sets; "
                "max/avg over benchmarks with >= 1 set.)\n");
    return 0;
}
