/**
 * @file
 * Crash-safe file replacement: write to a temporary sibling, fsync,
 * rename over the target. A reader (or a resumed campaign) therefore
 * only ever sees either the complete old contents or the complete new
 * contents — never a truncated checkpoint or a half CSV row.
 */

#ifndef DAVF_UTIL_ATOMIC_FILE_HH
#define DAVF_UTIL_ATOMIC_FILE_HH

#include <string>
#include <string_view>

namespace davf {

/**
 * Atomically replace @p path with @p contents (tmp file + rename).
 * Throws DavfError{Io} on any filesystem failure; the target is left
 * untouched in that case.
 */
void writeFileAtomic(const std::string &path, std::string_view contents);

} // namespace davf

#endif // DAVF_UTIL_ATOMIC_FILE_HH
