#include "netfault.hh"

#include <cerrno>
#include <cstdlib>

#include "util/logging.hh"

namespace davf::net {

bool
NetFault::matches(const std::string &node_name,
                  uint64_t shard_cycle) const
{
    if (kind == NetFaultKind::None)
        return false;
    if (node != "*" && node != node_name)
        return false;
    return anyCycle || cycle == shard_cycle;
}

NetFault
parseNetFault(const char *text)
{
    NetFault fault;
    if (text == nullptr || *text == '\0')
        return fault;
    const std::string spec = text;

    auto malformed = [&]() {
        davf_warn("ignoring malformed DAVF_TEST_NETFAULT '", spec,
                  "' (expected "
                  "<drop|stall|garble|disconnect>@<node>[:<cycle>])");
        fault.kind = NetFaultKind::None;
        return fault;
    };

    const size_t at = spec.find('@');
    if (at == std::string::npos || at + 1 >= spec.size())
        return malformed();
    const std::string kind = spec.substr(0, at);
    if (kind == "drop")
        fault.kind = NetFaultKind::Drop;
    else if (kind == "stall")
        fault.kind = NetFaultKind::Stall;
    else if (kind == "garble")
        fault.kind = NetFaultKind::Garble;
    else if (kind == "disconnect")
        fault.kind = NetFaultKind::Disconnect;
    else
        return malformed();

    std::string rest = spec.substr(at + 1);
    const size_t colon = rest.find(':');
    if (colon != std::string::npos) {
        const std::string cycle_text = rest.substr(colon + 1);
        rest.erase(colon);
        if (cycle_text == "*") {
            fault.anyCycle = true;
        } else {
            errno = 0;
            char *end = nullptr;
            const unsigned long long value =
                std::strtoull(cycle_text.c_str(), &end, 10);
            if (errno != 0 || end == cycle_text.c_str() || *end != '\0')
                return malformed();
            fault.anyCycle = false;
            fault.cycle = value;
        }
    }
    if (rest.empty())
        return malformed();
    fault.node = std::move(rest);
    return fault;
}

const NetFault &
armedNetFault()
{
    static const NetFault fault =
        parseNetFault(std::getenv("DAVF_TEST_NETFAULT"));
    return fault;
}

bool
netFaultFires(const std::string &node_name, uint64_t shard_cycle)
{
    static bool fired = false;
    if (fired || !armedNetFault().matches(node_name, shard_cycle))
        return false;
    fired = true;
    return true;
}

} // namespace davf::net
