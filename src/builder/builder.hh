/**
 * @file
 * A structural RTL builder DSL over the netlist graph.
 *
 * ModuleBuilder lets designs be described as C++ expressions over nets
 * and buses (vectors of nets) instead of raw addCell() calls: primitive
 * gates, registers, and the datapath blocks the IbexMini core and the
 * test circuits need (adders, barrel shifters, decoders, mux trees,
 * popcount/priority trees, comparators). Every emitted cell carries a
 * hierarchical '/'-separated name under the current scope, which is what
 * associates it with a microarchitectural structure (see
 * netlist/structure.hh).
 *
 * Forward references (feedback paths, cross-module signals) use
 * freshNet()/freshBus() to create undriven nets and connect() to attach
 * their driver later; connect() emits a BUF cell, mirroring how a
 * synthesis netlist stitches hierarchy boundaries.
 */

#ifndef DAVF_BUILDER_BUILDER_HH
#define DAVF_BUILDER_BUILDER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hh"

namespace davf {

/** A bus: an ordered vector of nets, LSB first. */
using Bus = std::vector<NetId>;

/** Structural builder over one (not yet finalized) netlist. */
class ModuleBuilder
{
  public:
    explicit ModuleBuilder(Netlist &netlist) : nl(&netlist) {}

    Netlist &netlist() { return *nl; }

    /** @name Hierarchical scopes */
    /// @{

    /** Enter scope @p name; cells created inside are prefixed. */
    void pushScope(const std::string &name);

    /** Leave the innermost scope. */
    void popScope();

    /** Current prefix, e.g. "top/alu/" (empty at top level). */
    const std::string &scopePrefix() const { return prefix; }

    /// @}
    /** @name Nets, ports, and constants */
    /// @{

    /** A fresh, yet-undriven net (connect its driver later). */
    NetId freshNet(const std::string &hint = "n");

    /** A bus of @p width fresh undriven nets. */
    Bus freshBus(unsigned width, const std::string &hint = "b");

    /** A primary input. */
    NetId input(const std::string &name);

    /** A bus of @p width primary inputs (name + bit index). */
    Bus inputBus(const std::string &name, unsigned width);

    /** Mark @p net as a primary output named @p name. */
    void output(const std::string &name, NetId net);

    /** Constant 0/1 driver (cached: one cell per value per builder). */
    NetId constant(bool value);

    /** Bus of constant bits spelling @p value (LSB first). */
    Bus constantBus(unsigned width, uint64_t value);

    /** Drive the fresh net @p dst from @p src (emits a BUF). */
    void connect(NetId dst, NetId src);

    /** Element-wise connect(); widths must match. */
    void connectBus(const Bus &dst, const Bus &src);

    /// @}
    /** @name Primitive gates */
    /// @{

    NetId buf(NetId a);
    NetId inv(NetId a);
    NetId and2(NetId a, NetId b);
    NetId or2(NetId a, NetId b);
    NetId nand2(NetId a, NetId b);
    NetId nor2(NetId a, NetId b);
    NetId xor2(NetId a, NetId b);
    NetId xnor2(NetId a, NetId b);

    /** 2:1 mux: @p sel ? @p b : @p a. */
    NetId mux(NetId sel, NetId a, NetId b);

    NetId and3(NetId a, NetId b, NetId c) { return and2(and2(a, b), c); }
    NetId or3(NetId a, NetId b, NetId c) { return or2(or2(a, b), c); }

    /// @}
    /** @name Registers */
    /// @{

    /** D flip-flop; returns the Q net. */
    NetId dff(NetId d, bool reset_value = false,
              const std::string &hint = "ff");

    /** D flip-flop with enable; returns the Q net. */
    NetId dffe(NetId d, NetId en, bool reset_value = false,
               const std::string &hint = "ffe");

    /** Register bus: one DFF per bit of @p d, reset to @p reset_value. */
    Bus regB(const Bus &d, uint64_t reset_value = 0,
             const std::string &hint = "reg");

    /** Enabled register bus: one DFFE per bit, shared enable. */
    Bus regE(const Bus &d, NetId en, uint64_t reset_value = 0,
             const std::string &hint = "reg");

    /// @}
    /** @name Bus logic */
    /// @{

    Bus andB(const Bus &a, const Bus &b);
    Bus orB(const Bus &a, const Bus &b);
    Bus xorB(const Bus &a, const Bus &b);
    Bus notB(const Bus &a);

    /** Element-wise 2:1 mux: @p sel ? @p b : @p a. */
    Bus muxB(NetId sel, const Bus &a, const Bus &b);

    /// @}
    /** @name Arithmetic and comparison */
    /// @{

    /** The default adder (Kogge-Stone). */
    Bus adder(const Bus &a, const Bus &b, NetId cin,
              NetId *cout = nullptr);

    /** Ripple-carry adder: minimal area, O(n) depth. */
    Bus rippleAdder(const Bus &a, const Bus &b, NetId cin,
                    NetId *cout = nullptr);

    /** Kogge-Stone parallel-prefix adder: O(log n) depth. */
    Bus koggeStoneAdder(const Bus &a, const Bus &b, NetId cin,
                        NetId *cout = nullptr);

    /** a - b (two's complement). */
    Bus subtractor(const Bus &a, const Bus &b);

    NetId equal(const Bus &a, const Bus &b);
    NetId lessThanUnsigned(const Bus &a, const Bus &b);
    NetId lessThanSigned(const Bus &a, const Bus &b);

    /// @}
    /** @name Shifters, decoders, and selection trees */
    /// @{

    /**
     * Logarithmic barrel shifter.
     *
     * @param value  the shifted operand.
     * @param amount shift amount bus (LSB first).
     * @param right  shift right if true, else left.
     * @param arith  right shifts fill with value's MSB instead of 0.
     */
    Bus barrelShift(const Bus &value, const Bus &amount, bool right,
                    bool arith);

    /** Right shifter whose fill bit is the (dynamic) net @p fill. */
    Bus barrelShiftRightFill(const Bus &value, const Bus &amount,
                             NetId fill);

    /** Binary-to-one-hot decoder: 1 << sel.size() outputs. */
    Bus decode(const Bus &sel);

    /** Binary-select mux tree over equal-width choices. */
    Bus muxTree(const Bus &sel, const std::vector<Bus> &choices);

    /** One-hot mux (AND-OR): zero when no select is hot. */
    Bus onehotMux(const Bus &sels, const std::vector<Bus> &choices);

    NetId reduceAnd(const Bus &a);
    NetId reduceOr(const Bus &a);
    NetId reduceXor(const Bus &a);

    /** Population count: clog2(n)+1 output bits for n input bits. */
    Bus popcountTree(const Bus &a);

    /**
     * Index of the lowest set bit (clog2(n) bits); @p any (optional)
     * is the OR of all inputs. The index is 0 when nothing is set.
     */
    Bus priorityEncode(const Bus &a, NetId *any = nullptr);

    /// @}

  private:
    /** Unique cell name under the current scope. */
    std::string cellName(const std::string &hint);

    /** Unique net name under the current scope. */
    std::string netName(const std::string &hint);

    /** Emit a gate cell with a fresh output net. */
    NetId gate(CellType type, std::initializer_list<NetId> inputs);

    /** Balanced binary reduction with @p combine. */
    template <typename Combine>
    NetId reduceTree(const Bus &a, Combine &&combine);

    Netlist *nl;
    std::string prefix;
    std::vector<size_t> prefixLengths;
    uint64_t nameCounter = 0;
    NetId constNets[2] = {kInvalidId, kInvalidId};
};

/** RAII scope helper: pushScope on construction, popScope on exit. */
class BuilderScope
{
  public:
    BuilderScope(ModuleBuilder &builder, const std::string &name)
        : b(&builder)
    {
        b->pushScope(name);
    }

    ~BuilderScope() { b->popScope(); }

    BuilderScope(const BuilderScope &) = delete;
    BuilderScope &operator=(const BuilderScope &) = delete;

  private:
    ModuleBuilder *b;
};

} // namespace davf

#endif // DAVF_BUILDER_BUILDER_HH
