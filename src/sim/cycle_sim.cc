#include "cycle_sim.hh"

#include "util/logging.hh"

namespace davf {

CycleSimulator::CycleSimulator(const Netlist &netlist) : nl(&netlist)
{
    davf_assert(netlist.finalized(), "simulator requires finalize()");
    netValues.assign(netlist.numNets(), 0);
    sampledScratch.assign(netlist.numStateElems(), 0);

    for (CellId id : netlist.seqCells()) {
        if (netlist.cell(id).type == CellType::Behav)
            models.emplace(id, netlist.behavModel(id)->clone());
    }

    // Compile the topologically ordered combinational cells into a flat
    // evaluation program (the simulator's hot loop).
    combProgram.reserve(netlist.topoOrder().size());
    for (CellId id : netlist.topoOrder()) {
        const Cell &cell = netlist.cell(id);
        CombOp op;
        op.type = cell.type;
        op.in0 = cell.inputs[0];
        op.in1 = cell.inputs.size() > 1 ? cell.inputs[1] : cell.inputs[0];
        op.in2 = cell.inputs.size() > 2 ? cell.inputs[2] : cell.inputs[0];
        op.out = cell.outputs[0];
        combProgram.push_back(op);
    }

    reset();
}

void
CycleSimulator::reset()
{
    const Netlist &netlist = *nl;
    std::fill(netValues.begin(), netValues.end(), 0);

    for (CellId id = 0; id < netlist.numCells(); ++id) {
        const Cell &cell = netlist.cell(id);
        switch (cell.type) {
          case CellType::Const1:
            netValues[cell.outputs[0]] = 1;
            break;
          case CellType::Dff:
          case CellType::Dffe:
            netValues[cell.outputs[0]] = cell.resetValue ? 1 : 0;
            break;
          case CellType::Behav: {
            behavOut.assign(cell.outputs.size(), false);
            models.at(id)->reset(behavOut);
            for (size_t pin = 0; pin < cell.outputs.size(); ++pin)
                netValues[cell.outputs[pin]] = behavOut[pin] ? 1 : 0;
            break;
          }
          default:
            break;
        }
    }

    cycleCount = 0;
    evalComb();
}

void
CycleSimulator::setInput(NetId id, bool value)
{
    const Netlist &netlist = *nl;
    davf_assert(netlist.cell(netlist.net(id).driver).type
                    == CellType::Input,
                "setInput on non-input net ", netlist.net(id).name);
    netValues[id] = value ? 1 : 0;
    evalComb();
}

void
CycleSimulator::step(std::span<const Force> forces,
                     std::vector<uint8_t> *sampled)
{
    const Netlist &netlist = *nl;

    // Phase 1: sample every state element from the settled values.
    for (StateElemId id = 0; id < netlist.numStateElems(); ++id) {
        const StateElem &elem = netlist.stateElem(id);
        const Cell &cell = netlist.cell(elem.cell);
        uint8_t value = 0;
        switch (elem.kind) {
          case StateElemKind::Flop:
            if (cell.type == CellType::Dff) {
                value = netValues[cell.inputs[0]];
            } else { // Dffe: Q' = EN ? D : Q.
                value = netValues[cell.inputs[1]]
                    ? netValues[cell.inputs[0]]
                    : netValues[cell.outputs[0]];
            }
            break;
          case StateElemKind::BehavInput:
            value = netValues[cell.inputs[elem.pin]];
            break;
          case StateElemKind::OutputPort:
            value = netValues[cell.inputs[0]];
            break;
        }
        sampledScratch[id] = value;
    }

    // Phase 2: apply forced sampled values (fault injection).
    for (const Force &force : forces)
        sampledScratch[force.first] = force.second ? 1 : 0;

    if (sampled)
        *sampled = sampledScratch;

    // Phase 3: commit. Flops take their sampled value; behavioral blocks
    // consume their (possibly forced) sampled inputs.
    for (CellId id : netlist.seqCells()) {
        const Cell &cell = netlist.cell(id);
        if (cell.type == CellType::Behav) {
            behavIn.assign(cell.inputs.size(), false);
            for (uint16_t pin = 0; pin < cell.inputs.size(); ++pin)
                behavIn[pin] =
                    sampledScratch[netlist.pinStateElem(id, pin)] != 0;
            behavOut.assign(cell.outputs.size(), false);
            models.at(id)->clockEdge(behavIn, behavOut);
            for (size_t pin = 0; pin < cell.outputs.size(); ++pin)
                netValues[cell.outputs[pin]] = behavOut[pin] ? 1 : 0;
        } else {
            netValues[cell.outputs[0]] =
                sampledScratch[netlist.flopStateElem(id)];
        }
    }

    evalComb();
    ++cycleCount;
}

void
CycleSimulator::flipFlop(StateElemId id)
{
    const Netlist &netlist = *nl;
    const StateElem &elem = netlist.stateElem(id);
    davf_assert(elem.kind == StateElemKind::Flop,
                "flipFlop on non-flop state element");
    const NetId q = netlist.cell(elem.cell).outputs[0];
    netValues[q] ^= 1;
    evalComb();
}

BehavioralModel &
CycleSimulator::behavModel(CellId id) const
{
    return *models.at(id);
}

CycleSimulator::Snapshot
CycleSimulator::snapshot() const
{
    Snapshot snap;
    snap.netValues = netValues;
    snap.cycle = cycleCount;
    for (CellId id : nl->seqCells()) {
        if (nl->cell(id).type == CellType::Behav)
            snap.behavState.push_back(models.at(id)->snapshot());
    }
    return snap;
}

void
CycleSimulator::restore(const Snapshot &snap)
{
    davf_assert(snap.netValues.size() == netValues.size(),
                "snapshot from a different netlist");
    netValues = snap.netValues;
    cycleCount = snap.cycle;
    size_t behav_index = 0;
    for (CellId id : nl->seqCells()) {
        if (nl->cell(id).type == CellType::Behav)
            models.at(id)->restore(snap.behavState[behav_index++]);
    }
}

void
CycleSimulator::evalComb()
{
    uint8_t *values = netValues.data();
    for (const CombOp &op : combProgram) {
        uint8_t result;
        switch (op.type) {
          case CellType::Buf:
            result = values[op.in0];
            break;
          case CellType::Inv:
            result = values[op.in0] ^ 1;
            break;
          case CellType::And2:
            result = values[op.in0] & values[op.in1];
            break;
          case CellType::Or2:
            result = values[op.in0] | values[op.in1];
            break;
          case CellType::Nand2:
            result = (values[op.in0] & values[op.in1]) ^ 1;
            break;
          case CellType::Nor2:
            result = (values[op.in0] | values[op.in1]) ^ 1;
            break;
          case CellType::Xor2:
            result = values[op.in0] ^ values[op.in1];
            break;
          case CellType::Xnor2:
            result = (values[op.in0] ^ values[op.in1]) ^ 1;
            break;
          case CellType::Mux2:
            result = values[op.in2] ? values[op.in1] : values[op.in0];
            break;
          default:
            result = 0;
            davf_panic("non-combinational cell in topo order");
        }
        values[op.out] = result;
    }
}

} // namespace davf
