#include "builder.hh"

#include <algorithm>
#include <cctype>

#include "util/logging.hh"

namespace davf {

void
ModuleBuilder::pushScope(const std::string &name)
{
    prefixLengths.push_back(prefix.size());
    prefix += name;
    prefix += '/';
}

void
ModuleBuilder::popScope()
{
    davf_assert(!prefixLengths.empty(), "popScope with no open scope");
    prefix.resize(prefixLengths.back());
    prefixLengths.pop_back();
}

std::string
ModuleBuilder::cellName(const std::string &hint)
{
    return prefix + hint + "#" + std::to_string(nameCounter++);
}

std::string
ModuleBuilder::netName(const std::string &hint)
{
    return prefix + hint + "." + std::to_string(nameCounter++);
}

NetId
ModuleBuilder::freshNet(const std::string &hint)
{
    return nl->addNet(netName(hint));
}

Bus
ModuleBuilder::freshBus(unsigned width, const std::string &hint)
{
    Bus bus(width);
    for (unsigned i = 0; i < width; ++i)
        bus[i] = freshNet(hint + std::to_string(i));
    return bus;
}

NetId
ModuleBuilder::input(const std::string &name)
{
    // The net carries the bare port name so findNet(name) works.
    const NetId net = nl->addNet(prefix + name);
    nl->addCell(CellType::Input, prefix + name + ".in", {}, {{net}});
    return net;
}

Bus
ModuleBuilder::inputBus(const std::string &name, unsigned width)
{
    Bus bus(width);
    for (unsigned i = 0; i < width; ++i)
        bus[i] = input(name + std::to_string(i));
    return bus;
}

void
ModuleBuilder::output(const std::string &name, NetId net)
{
    nl->addCell(CellType::Output, prefix + name + ".out", {{net}}, {});
}

NetId
ModuleBuilder::constant(bool value)
{
    NetId &cached = constNets[value ? 1 : 0];
    if (cached == kInvalidId) {
        cached = nl->addNet(netName(value ? "const1" : "const0"));
        nl->addCell(value ? CellType::Const1 : CellType::Const0,
                    cellName(value ? "const1" : "const0"), {},
                    {{cached}});
    }
    return cached;
}

Bus
ModuleBuilder::constantBus(unsigned width, uint64_t value)
{
    Bus bus(width);
    for (unsigned i = 0; i < width; ++i)
        bus[i] = constant((value >> i) & 1);
    return bus;
}

void
ModuleBuilder::connect(NetId dst, NetId src)
{
    nl->addCell(CellType::Buf, cellName("conn"), {{src}}, {{dst}});
}

void
ModuleBuilder::connectBus(const Bus &dst, const Bus &src)
{
    davf_assert(dst.size() == src.size(),
                "connectBus width mismatch: ", dst.size(), " vs ",
                src.size());
    for (size_t i = 0; i < dst.size(); ++i)
        connect(dst[i], src[i]);
}

NetId
ModuleBuilder::gate(CellType type, std::initializer_list<NetId> inputs)
{
    std::string hint{cellTypeName(type)};
    for (char &c : hint)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    const NetId out = nl->addNet(netName(hint));
    nl->addCell(type, cellName(hint),
                {inputs.begin(), inputs.size()}, {{out}});
    return out;
}

NetId
ModuleBuilder::buf(NetId a)
{
    return gate(CellType::Buf, {a});
}

NetId
ModuleBuilder::inv(NetId a)
{
    return gate(CellType::Inv, {a});
}

NetId
ModuleBuilder::and2(NetId a, NetId b)
{
    return gate(CellType::And2, {a, b});
}

NetId
ModuleBuilder::or2(NetId a, NetId b)
{
    return gate(CellType::Or2, {a, b});
}

NetId
ModuleBuilder::nand2(NetId a, NetId b)
{
    return gate(CellType::Nand2, {a, b});
}

NetId
ModuleBuilder::nor2(NetId a, NetId b)
{
    return gate(CellType::Nor2, {a, b});
}

NetId
ModuleBuilder::xor2(NetId a, NetId b)
{
    return gate(CellType::Xor2, {a, b});
}

NetId
ModuleBuilder::xnor2(NetId a, NetId b)
{
    return gate(CellType::Xnor2, {a, b});
}

NetId
ModuleBuilder::mux(NetId sel, NetId a, NetId b)
{
    return gate(CellType::Mux2, {a, b, sel});
}

NetId
ModuleBuilder::dff(NetId d, bool reset_value, const std::string &hint)
{
    const NetId q = nl->addNet(netName(hint + "_q"));
    nl->addCell(CellType::Dff, cellName(hint), {{d}}, {{q}},
                reset_value);
    return q;
}

NetId
ModuleBuilder::dffe(NetId d, NetId en, bool reset_value,
                    const std::string &hint)
{
    const NetId q = nl->addNet(netName(hint + "_q"));
    nl->addCell(CellType::Dffe, cellName(hint), {{d, en}}, {{q}},
                reset_value);
    return q;
}

Bus
ModuleBuilder::regB(const Bus &d, uint64_t reset_value,
                    const std::string &hint)
{
    Bus q(d.size());
    for (size_t i = 0; i < d.size(); ++i) {
        q[i] = dff(d[i], (reset_value >> i) & 1,
                   hint + std::to_string(i));
    }
    return q;
}

Bus
ModuleBuilder::regE(const Bus &d, NetId en, uint64_t reset_value,
                    const std::string &hint)
{
    Bus q(d.size());
    for (size_t i = 0; i < d.size(); ++i) {
        q[i] = dffe(d[i], en, (reset_value >> i) & 1,
                    hint + std::to_string(i));
    }
    return q;
}

Bus
ModuleBuilder::andB(const Bus &a, const Bus &b)
{
    davf_assert(a.size() == b.size(), "andB width mismatch");
    Bus out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = and2(a[i], b[i]);
    return out;
}

Bus
ModuleBuilder::orB(const Bus &a, const Bus &b)
{
    davf_assert(a.size() == b.size(), "orB width mismatch");
    Bus out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = or2(a[i], b[i]);
    return out;
}

Bus
ModuleBuilder::xorB(const Bus &a, const Bus &b)
{
    davf_assert(a.size() == b.size(), "xorB width mismatch");
    Bus out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = xor2(a[i], b[i]);
    return out;
}

Bus
ModuleBuilder::notB(const Bus &a)
{
    Bus out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = inv(a[i]);
    return out;
}

Bus
ModuleBuilder::muxB(NetId sel, const Bus &a, const Bus &b)
{
    davf_assert(a.size() == b.size(), "muxB width mismatch: ", a.size(),
                " vs ", b.size());
    Bus out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = mux(sel, a[i], b[i]);
    return out;
}

Bus
ModuleBuilder::adder(const Bus &a, const Bus &b, NetId cin, NetId *cout)
{
    return koggeStoneAdder(a, b, cin, cout);
}

Bus
ModuleBuilder::rippleAdder(const Bus &a, const Bus &b, NetId cin,
                           NetId *cout)
{
    davf_assert(a.size() == b.size(), "adder width mismatch");
    Bus sum(a.size());
    NetId carry = cin;
    for (size_t i = 0; i < a.size(); ++i) {
        const NetId p = xor2(a[i], b[i]);
        sum[i] = xor2(p, carry);
        carry = or2(and2(a[i], b[i]), and2(p, carry));
    }
    if (cout)
        *cout = carry;
    return sum;
}

Bus
ModuleBuilder::koggeStoneAdder(const Bus &a, const Bus &b, NetId cin,
                               NetId *cout)
{
    davf_assert(a.size() == b.size(), "adder width mismatch");
    const size_t n = a.size();

    // Bit-level generate/propagate, then the parallel-prefix combine:
    // after the sweep, g[i]/p[i] describe the span [0..i].
    Bus g(n), p(n), p0(n);
    for (size_t i = 0; i < n; ++i) {
        g[i] = and2(a[i], b[i]);
        p[i] = xor2(a[i], b[i]);
        p0[i] = p[i];
    }
    for (size_t dist = 1; dist < n; dist *= 2) {
        Bus g_next = g, p_next = p;
        for (size_t i = dist; i < n; ++i) {
            g_next[i] = or2(g[i], and2(p[i], g[i - dist]));
            p_next[i] = and2(p[i], p[i - dist]);
        }
        g = std::move(g_next);
        p = std::move(p_next);
    }

    // carry into bit i = G[i-1:0] | (P[i-1:0] & cin); bit 0 gets cin.
    Bus sum(n);
    for (size_t i = 0; i < n; ++i) {
        const NetId carry_in = i == 0
            ? cin
            : or2(g[i - 1], and2(p[i - 1], cin));
        sum[i] = xor2(p0[i], carry_in);
    }
    if (cout)
        *cout = or2(g[n - 1], and2(p[n - 1], cin));
    return sum;
}

Bus
ModuleBuilder::subtractor(const Bus &a, const Bus &b)
{
    return adder(a, notB(b), constant(true));
}

NetId
ModuleBuilder::equal(const Bus &a, const Bus &b)
{
    davf_assert(a.size() == b.size(), "equal width mismatch");
    Bus bits(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        bits[i] = xnor2(a[i], b[i]);
    return reduceAnd(bits);
}

NetId
ModuleBuilder::lessThanUnsigned(const Bus &a, const Bus &b)
{
    // a < b iff a - b borrows, i.e. a + ~b + 1 has no carry out.
    NetId carry = kInvalidId;
    koggeStoneAdder(a, notB(b), constant(true), &carry);
    return inv(carry);
}

NetId
ModuleBuilder::lessThanSigned(const Bus &a, const Bus &b)
{
    davf_assert(!a.empty() && a.size() == b.size(),
                "lessThanSigned width mismatch");
    const NetId sa = a.back();
    const NetId sb = b.back();
    const NetId ltu = lessThanUnsigned(a, b);
    // Same signs: unsigned compare is correct. Different signs: a < b
    // iff a is the negative one.
    return mux(xor2(sa, sb), ltu, sa);
}

Bus
ModuleBuilder::barrelShift(const Bus &value, const Bus &amount,
                           bool right, bool arith)
{
    if (right) {
        const NetId fill =
            arith ? value.back() : constant(false);
        return barrelShiftRightFill(value, amount, fill);
    }
    const size_t n = value.size();
    Bus cur = value;
    for (size_t k = 0; k < amount.size(); ++k) {
        const size_t step = size_t{1} << k;
        Bus next(n);
        for (size_t i = 0; i < n; ++i) {
            const NetId shifted =
                i >= step ? cur[i - step] : constant(false);
            next[i] = mux(amount[k], cur[i], shifted);
        }
        cur = std::move(next);
    }
    return cur;
}

Bus
ModuleBuilder::barrelShiftRightFill(const Bus &value, const Bus &amount,
                                    NetId fill)
{
    const size_t n = value.size();
    Bus cur = value;
    for (size_t k = 0; k < amount.size(); ++k) {
        const size_t step = size_t{1} << k;
        Bus next(n);
        for (size_t i = 0; i < n; ++i) {
            const NetId shifted = i + step < n ? cur[i + step] : fill;
            next[i] = mux(amount[k], cur[i], shifted);
        }
        cur = std::move(next);
    }
    return cur;
}

Bus
ModuleBuilder::decode(const Bus &sel)
{
    davf_assert(sel.size() <= 16, "decode too wide");
    Bus inv_sel(sel.size());
    for (size_t i = 0; i < sel.size(); ++i)
        inv_sel[i] = inv(sel[i]);

    const size_t count = size_t{1} << sel.size();
    Bus out(count);
    for (size_t value = 0; value < count; ++value) {
        Bus literals(sel.size());
        for (size_t i = 0; i < sel.size(); ++i)
            literals[i] = (value >> i) & 1 ? sel[i] : inv_sel[i];
        out[value] = reduceAnd(literals);
    }
    return out;
}

Bus
ModuleBuilder::muxTree(const Bus &sel, const std::vector<Bus> &choices)
{
    davf_assert(!choices.empty(), "muxTree with no choices");
    davf_assert(choices.size() <= (size_t{1} << sel.size()),
                "muxTree: too many choices for ", sel.size(),
                " select bits");
    std::vector<Bus> level = choices;
    for (size_t k = 0; k < sel.size() && level.size() > 1; ++k) {
        std::vector<Bus> next;
        next.reserve((level.size() + 1) / 2);
        for (size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(muxB(sel[k], level[i], level[i + 1]));
        if (level.size() % 2 != 0)
            next.push_back(level.back());
        level = std::move(next);
    }
    return level.front();
}

Bus
ModuleBuilder::onehotMux(const Bus &sels, const std::vector<Bus> &choices)
{
    davf_assert(sels.size() == choices.size(),
                "onehotMux select/choice count mismatch");
    davf_assert(!choices.empty(), "onehotMux with no choices");
    const size_t width = choices.front().size();
    Bus out(width);
    Bus terms(choices.size());
    for (size_t bit = 0; bit < width; ++bit) {
        for (size_t j = 0; j < choices.size(); ++j) {
            davf_assert(choices[j].size() == width,
                        "onehotMux choice width mismatch");
            terms[j] = and2(sels[j], choices[j][bit]);
        }
        out[bit] = reduceOr(terms);
    }
    return out;
}

template <typename Combine>
NetId
ModuleBuilder::reduceTree(const Bus &a, Combine &&combine)
{
    davf_assert(!a.empty(), "reduction over an empty bus");
    Bus level = a;
    while (level.size() > 1) {
        Bus next;
        next.reserve((level.size() + 1) / 2);
        for (size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(combine(level[i], level[i + 1]));
        if (level.size() % 2 != 0)
            next.push_back(level.back());
        level = std::move(next);
    }
    return level.front();
}

NetId
ModuleBuilder::reduceAnd(const Bus &a)
{
    return reduceTree(a,
                      [&](NetId x, NetId y) { return and2(x, y); });
}

NetId
ModuleBuilder::reduceOr(const Bus &a)
{
    return reduceTree(a, [&](NetId x, NetId y) { return or2(x, y); });
}

NetId
ModuleBuilder::reduceXor(const Bus &a)
{
    return reduceTree(a,
                      [&](NetId x, NetId y) { return xor2(x, y); });
}

Bus
ModuleBuilder::popcountTree(const Bus &a)
{
    davf_assert(!a.empty(), "popcount over an empty bus");
    std::vector<Bus> level;
    level.reserve(a.size());
    for (NetId bit : a)
        level.push_back(Bus{bit});

    while (level.size() > 1) {
        std::vector<Bus> next;
        next.reserve((level.size() + 1) / 2);
        for (size_t i = 0; i + 1 < level.size(); i += 2) {
            Bus lhs = level[i];
            Bus rhs = level[i + 1];
            const size_t width = std::max(lhs.size(), rhs.size());
            lhs.resize(width, constant(false));
            rhs.resize(width, constant(false));
            NetId carry = kInvalidId;
            Bus sum = rippleAdder(lhs, rhs, constant(false), &carry);
            sum.push_back(carry);
            next.push_back(std::move(sum));
        }
        if (level.size() % 2 != 0)
            next.push_back(level.back());
        level = std::move(next);
    }
    return level.front();
}

Bus
ModuleBuilder::priorityEncode(const Bus &a, NetId *any)
{
    davf_assert(!a.empty(), "priorityEncode over an empty bus");
    const size_t n = a.size();

    // first[j] = a[j] & no lower bit set.
    Bus first(n);
    NetId lower_any = kInvalidId;
    for (size_t j = 0; j < n; ++j) {
        first[j] = j == 0 ? a[0] : and2(a[j], inv(lower_any));
        lower_any = j == 0 ? a[0] : or2(lower_any, a[j]);
    }
    if (any)
        *any = lower_any;

    unsigned bits = 0;
    while ((size_t{1} << bits) < n)
        ++bits;
    Bus index(bits);
    Bus terms;
    for (unsigned k = 0; k < bits; ++k) {
        terms.clear();
        for (size_t j = 0; j < n; ++j) {
            if ((j >> k) & 1)
                terms.push_back(first[j]);
        }
        index[k] = terms.empty() ? constant(false) : reduceOr(terms);
    }
    return index;
}

} // namespace davf
