/**
 * @file
 * Ablation bench (extension): vulnerability of a hardware multiplier.
 *
 * With IbexMiniConfig::enableMul the core gains an Ibex-style iterative
 * shift-and-add multiplier ("MUL" structure). This bench runs a
 * mul-heavy dot-product kernel and compares the multiplier's DelayAVF
 * against the classic five structures. Interesting dynamics: the MUL
 * datapath is busy for 33 consecutive cycles per instruction (high
 * toggle rates while active), but its result is architecturally live
 * only on the final cycle — injection timing matters enormously.
 */

#include <cstdio>
#include <sstream>

#include "bench/common.hh"
#include "isa/assembler.hh"
#include "isa/iss.hh"

using namespace davf;
using namespace davf::bench;

namespace {

/** Dot product of two 8-element vectors using hardware MUL. */
std::string
dotProductProgram()
{
    std::ostringstream out;
    out << R"(
main:
  la a1, vec_a
  la a2, vec_b
  li a3, 8
  li a0, 0
loop:
  lw t0, 0(a1)
  lw t1, 0(a2)
  mul t2, t0, t1
  add a0, a0, t2
  addi a1, a1, 4
  addi a2, a2, 4
  addi a3, a3, -1
  bnez a3, loop
  li t6, 0x10000
  sw a0, 0(t6)
  sw x0, 4(t6)
hang:
  j hang
vec_a: .word 12, 7, 33, 91, 4, 58, 20, 3
vec_b: .word 9, 41, 6, 2, 77, 13, 25, 64
)";
    return out.str();
}

} // namespace

int
main()
{
    std::printf("Ablation: hardware multiplier vulnerability "
                "(dot-product kernel, d = 60%%)\n\n");

    const std::string source = dotProductProgram();

    // Sanity: ISS result.
    Iss iss(assemble(source));
    if (!iss.run(20000) || iss.outputTrace().size() != 1) {
        std::fprintf(stderr, "kernel failed on the ISS\n");
        return 1;
    }
    std::printf("dot product = %u\n", iss.outputTrace()[0]);

    IbexMiniConfig config;
    config.enableMul = true;
    IbexMini soc(config, assemble(source));
    SocWorkload workload(soc);
    EngineOptions options;
    options.periodMode =
        EngineOptions::PeriodMode::ObservedMaxPlusMargin;
    VulnerabilityEngine engine(soc.netlist(),
                               CellLibrary::defaultLibrary(), workload,
                               options);
    std::printf("golden: %llu cycles (33-cycle muls dominate), "
                "period %.0f ps\n\n",
                static_cast<unsigned long long>(engine.goldenCycles()),
                engine.clockPeriod());

    SamplingConfig sampling = BenchLab::sampling();
    sampling.maxInjectionCycles = 16; // Short kernel: sample densely.

    printHeader("Structure", {"wires", "AVF@60%", "AVF@75%", "AVF@90%",
                              "Dyn@90%"});
    for (const char *name :
         {"MUL", "ALU", "Decoder", "Regfile", "LSU", "Prefetch"}) {
        const Structure &structure = *soc.structures().find(name);
        std::vector<double> row = {
            static_cast<double>(structure.wires.size())};
        DelayAvfResult last;
        for (double d : {0.6, 0.75, 0.9}) {
            last = engine.delayAvf(structure, d, sampling);
            row.push_back(last.delayAvf);
        }
        row.push_back(last.dynamicWireFraction);
        printRow(name, row, 4);
    }
    std::printf("\nExpected: the iterative multiplier's short "
                "single-stage paths give it large slack —\nits "
                "vulnerability only appears at large d, while "
                "fetch/decode paths fail earlier.\n");
    return 0;
}
