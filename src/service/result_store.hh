/**
 * @file
 * The persistent content-addressed result store behind davf_serve.
 *
 * A record maps a **store key** — the workspace build fingerprint plus
 * the serialized shard spec (structure, d, cycle, wire range, sampling
 * knobs) — to the shard's outcome payload in the exact hexfloat token
 * grammar the campaign journal uses, so a served result aggregates
 * bit-identically to a freshly computed one.
 *
 * Tiers:
 *  - an in-memory LRU map (bounded entry count) absorbs the hot set;
 *  - a persistent disk tier in one of two formats:
 *      - **Index** (the default for new directories): one append-only
 *        segment data file plus a persistent extendible-hash index
 *        (store/index_store.hh) — O(1) lookups with lock-free readers;
 *      - **Legacy**: one versioned file per record, written with the
 *        atomic tmp+rename discipline (util/atomic_file).
 *    StoreFormat::Auto picks whatever the directory already holds
 *    (an `index.davf` wins; existing `r-*.rec` directories stay legacy
 *    until `davf_store migrate` absorbs them; empty directories start
 *    indexed). Both formats store byte-identical v2 record text, and
 *    an indexed store still *reads* stray legacy record files —
 *    written by a process that lost the index lock, or left by an
 *    interrupted migration — absorbing them into the index on sight.
 *
 * Loads are corruption-tolerant in the same spirit as the lenient
 * checkpoint loader: a truncated, wrong-version, or otherwise
 * unparseable record — and a hash-collision record whose embedded key
 * disagrees — is reported as a miss (tallied in StoreStats), so the
 * caller recomputes and the rewrite repairs the store; a damaged (but
 * not collision) legacy record file is additionally unlinked on sight,
 * and a damaged indexed record drops its index slot. Nothing in this
 * class ever throws on a damaged record, and a failed record *publish*
 * (full disk, I/O error) is likewise swallowed after counting — the
 * memory tier still serves the result. Only an uncreatable store
 * directory surfaces as DavfError{Io}.
 *
 * The publish and repair paths carry the `store.publish` and
 * `store.repair_unlink` crash points (util/crashpoint.hh); the indexed
 * tier adds the `index.*` family. Offline checking lives in
 * service/store_fsck.hh (legacy) and store/index_fsck.hh (indexed),
 * both behind the `davf_store` CLI.
 */

#ifndef DAVF_SERVICE_RESULT_STORE_HH
#define DAVF_SERVICE_RESULT_STORE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "store/index_store.hh"
#include "util/error.hh"

namespace davf::service {

/** Disk-tier format selection (see file comment). */
enum class StoreFormat : uint8_t {
    Auto,   ///< Follow what the directory holds; index when empty.
    Legacy, ///< One file per record.
    Index,  ///< Segment file + extendible-hash index.
};

/** Parse a `--store-format` value; nullopt if unrecognized. */
std::optional<StoreFormat> parseStoreFormat(const std::string &text);

/** Monotonic counters (and two gauges) describing one store. */
struct StoreStats
{
    uint64_t memoryHits = 0;     ///< Served from the LRU tier.
    uint64_t diskHits = 0;       ///< Served from the disk tier.
    uint64_t misses = 0;         ///< No (usable) record existed.
    uint64_t evictions = 0;      ///< LRU entries displaced.
    uint64_t corruptRecords = 0; ///< Unreadable records treated as misses.
    uint64_t futureRecords = 0;  ///< Newer-grammar records; miss, kept.
    uint64_t writes = 0;         ///< Records persisted.
    uint64_t writeFailures = 0;  ///< Publishes that failed (non-fatal).
    uint64_t repairUnlinks = 0;  ///< Damaged record files deleted.

    uint64_t lruEntries = 0;     ///< Gauge: entries in the LRU tier now.
    uint64_t lruBytes = 0;       ///< Gauge: key+payload bytes held now.

    bool operator==(const StoreStats &) const = default;
};

/** The two-tier persistent result store (see file comment). */
class ResultStore
{
  public:
    static constexpr uint32_t kVersion = 2;

    struct Options
    {
        /** Record directory; empty keeps the store memory-only. */
        std::string dir;

        /** LRU tier capacity in entries (0 disables the tier). */
        size_t memCapacity = 4096;

        /** Disk-tier format (Auto follows the directory contents). */
        StoreFormat format = StoreFormat::Auto;
    };

    explicit ResultStore(Options options);

    /**
     * The payload stored under @p key, or nullopt (a miss — including
     * a corrupt or mismatched record, which the next store() repairs).
     * Keys and payloads must be single-line strings.
     */
    std::optional<std::string> lookup(const std::string &key);

    /**
     * Persist @p payload under @p key (memory tier + disk tier).
     * @p text_version picks the record grammar revision on disk: 2 for
     * plain payloads (byte-identical to every earlier release), 3 for
     * payloads carrying an attribution section, so old binaries see a
     * clean future-version miss instead of a checksum surprise.
     */
    void store(const std::string &key, const std::string &payload,
               uint32_t text_version = 2);

    StoreStats stats() const;

    /** Is the disk tier the indexed format? */
    bool indexed() const { return index != nullptr; }

    /** Indexed-tier counters; nullopt for legacy/memory-only stores. */
    std::optional<davf::store::IndexStoreStats> indexStats() const;

    /** Path of the legacy record file that would hold @p key; "" if
     * memory-only. In index format this is where a *fallback* legacy
     * record would sit (lookup absorbs such files on sight). */
    std::string recordPath(const std::string &key) const;

    /**
     * The canonical file name ("r-<hash>.rec") a record for @p key
     * lives under, independent of any store instance — shared with the
     * offline fsck/compact tooling so "misplaced record" means the
     * same thing everywhere.
     */
    static std::string recordFileName(const std::string &key);

    /**
     * @name Record text form (exposed for tests and fuzzing)
     * A record is "davf-store v2\nkey <key>\npayload <payload>\n"
     * "sum <fnv1a of key\\npayload>\nend\n". parseRecord returns the
     * (key, payload) pair or an Err for any damage: bad magic, unknown
     * version, missing fields, checksum mismatch (a garbled byte),
     * missing end sentinel (a torn write), trailing garbage. Both
     * delegate to store/layout.hh so every tier shares one grammar.
     */
    /// @{
    static std::string serializeRecord(const std::string &key,
                                       const std::string &payload,
                                       uint32_t text_version = 2);
    static Result<std::pair<std::string, std::string>>
    parseRecord(const std::string &text);
    /// @}

  private:
    /** Insert into the LRU tier, evicting beyond capacity. */
    void remember(const std::string &key, const std::string &payload);

    /** Legacy-format disk lookup (also the index-miss fallback). */
    std::optional<std::string> lookupLegacyFile(const std::string &key);

    Options options;
    std::unique_ptr<davf::store::IndexStore> index;

    mutable std::mutex mutex;
    /** Most recent at the front. */
    std::list<std::pair<std::string, std::string>> lru;
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string, std::string>>::iterator>
        lruIndex;
    uint64_t lruBytes = 0; ///< Sum of key+payload sizes in `lru`.
    StoreStats counters;
};

} // namespace davf::service

#endif // DAVF_SERVICE_RESULT_STORE_HH
