#include "coordinator.hh"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <sstream>

#include "campaign/checkpoint.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/crashpoint.hh"
#include "util/logging.hh"

namespace davf::net {

namespace {

/** Grace window for draining a node's stream at shutdown. */
constexpr double kQuitGraceMs = 2000.0;

/** Handshake read budget per connecting node. */
constexpr double kHelloTimeoutMs = 5000.0;

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

uint64_t
fnv1a(const std::string &text, uint64_t hash = 0xcbf29ce484222325ull)
{
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/**
 * Coordinator metric handles (docs/OBSERVABILITY.md). The compute
 * counters live in the worker processes; these cover the fleet's view
 * of node lifecycle, dispatch churn, and recovery.
 */
struct NetMetrics
{
    obs::Counter nodesConnected{"net.nodes_connected"};
    obs::Counter nodesRejected{"net.nodes_rejected"};
    obs::Counter nodesLost{"net.nodes_lost"};
    obs::Counter nodesQuarantined{"net.nodes_quarantined"};
    obs::Counter dispatches{"net.dispatches"};
    obs::Counter redispatches{"net.redispatches"};
    obs::Counter heartbeats{"net.heartbeats"};
    obs::Counter backoffWaits{"net.backoff_waits"};
    obs::Counter localFallbacks{"net.local_fallbacks"};
    obs::Counter storeHits{"net.store_hits"};
    obs::Counter storeWrites{"net.store_writes"};
    obs::Counter storeWriteFailures{"net.store_write_failures"};
    obs::Counter dispatchNs{"net.time.dispatch_ns"};
    obs::Counter backoffNs{"net.time.backoff_ns"};
    obs::ValueHistogram shardWallUs{"net.shard_wall_us"};
};

NetMetrics &
netMetrics()
{
    static NetMetrics *const metrics = new NetMetrics();
    return *metrics;
}

/** One dispatch attempt's outcome, in the coordinator's taxonomy. */
struct Attempt
{
    enum class Outcome : uint8_t {
        Ok,        ///< Parsed result in cycleOutcome/savfOutcome.
        NodeLost,  ///< Connection died (EOF, send failure, torn frame).
        Timeout,   ///< Heartbeat silence or shard budget exceeded.
        BadOutput, ///< Intact frame, unparseable reply.
        Error,     ///< Deterministic worker-reported "err".
    };

    Outcome outcome = Outcome::NodeLost;
    std::string detail;
    InjectionCycleOutcome cycleOutcome;
    SavfResult savfOutcome;

    /** The connection is unusable after this attempt. */
    bool
    lostNode() const
    {
        return outcome == Outcome::NodeLost
            || outcome == Outcome::Timeout;
    }
};

} // namespace

/** One connected worker node. */
struct Coordinator::Node
{
    uint64_t id = 0;
    std::string name;
    FrameConn conn;
    unsigned failures = 0; ///< Retryable failures, toward quarantine.
    std::atomic<bool> dead{false};
};

/** One shard of a cell in flight. */
struct Coordinator::Job
{
    ShardSpec spec;
    unsigned attempts = 0;
    bool fromCache = false;
    InjectionCycleOutcome cycleOutcome;
    SavfResult savfOutcome;
};

/** Shared state of one cell's dispatch. */
struct Coordinator::CellCtx
{
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<Job> jobs;
    std::deque<size_t> queue;      ///< Dispatchable job indices.
    std::deque<size_t> localQueue; ///< Jobs demoted to local compute.
    size_t outstanding = 0;        ///< Jobs not yet delivered.
    size_t activeDispatchers = 0;
    bool failed = false;
    std::string failReason;
    bool stopped = false;

    /** Serializes delivery (on_cycle_done journals). */
    std::mutex deliverMutex;
    std::function<void(Job &)> deliver;

    bool
    finished() const
    {
        return outstanding == 0 || failed || stopped;
    }
};

Coordinator::Coordinator(ListenSocket listener,
                         CoordinatorOptions the_options)
    : options(std::move(the_options)), listenFd(listener.fd),
      listenPort(listener.port)
{
    acceptor = std::thread([this] { acceptLoop(); });
}

Coordinator::~Coordinator()
{
    shutdown();
}

bool
Coordinator::stopRequested() const
{
    return options.stopFlag
        && options.stopFlag->load(std::memory_order_relaxed);
}

void
Coordinator::acceptLoop()
{
    while (!shuttingDown.load(std::memory_order_relaxed)) {
        struct pollfd pfd = {};
        pfd.fd = listenFd;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 200);
        if (ready <= 0)
            continue;

        int fd = -1;
        try {
            fd = acceptTcp(listenFd);
        } catch (const DavfError &) {
            if (shuttingDown.load(std::memory_order_relaxed))
                return;
            continue;
        }

        // Handshake inline: hellos are tiny and the accept rate is a
        // handful of nodes, not a request stream.
        FrameConn conn(fd);
        try {
            std::string payload;
            const FrameConn::ReadStatus st =
                conn.read(payload, kHelloTimeoutMs);
            if (st != FrameConn::ReadStatus::Frame)
                continue; // Dropped or silent dialer; conn closes.
            Result<Hello> hello = parseHello(payload);
            if (!hello) {
                netMetrics().nodesRejected.add(1);
                conn.send(makeReject(hello.error().what()));
                continue;
            }
            if (!options.fingerprint.empty()
                && hello.value().fingerprint != options.fingerprint) {
                netMetrics().nodesRejected.add(1);
                conn.send(makeReject(
                    "workspace fingerprint mismatch: coordinator has "
                    + options.fingerprint + ", node sent "
                    + hello.value().fingerprint));
                continue;
            }
            conn.send(makeWelcome());

            auto node = std::make_shared<Node>();
            node->name = hello.value().node;
            node->conn = std::move(conn);
            {
                const std::lock_guard<std::mutex> lock(fleetMutex);
                node->id = nextNodeId++;
                fleet.push_back(node);
            }
            netMetrics().nodesConnected.add(1);
            fleetCv.notify_all();
        } catch (const DavfError &) {
            // A peer that garbles or tears its hello is not a node.
            netMetrics().nodesRejected.add(1);
        }
    }
}

size_t
Coordinator::waitForNodes(size_t count, double timeout_ms)
{
    std::unique_lock<std::mutex> lock(fleetMutex);
    fleetCv.wait_for(
        lock, std::chrono::duration<double, std::milli>(timeout_ms),
        [&] { return fleet.size() >= count || stopRequested(); });
    return fleet.size();
}

size_t
Coordinator::nodeCount() const
{
    const std::lock_guard<std::mutex> lock(fleetMutex);
    return fleet.size();
}

std::vector<std::shared_ptr<Coordinator::Node>>
Coordinator::fleetSnapshot() const
{
    const std::lock_guard<std::mutex> lock(fleetMutex);
    return fleet;
}

void
Coordinator::backoff(const ShardSpec &spec, unsigned attempt) const
{
    if (options.backoffBaseMs <= 0.0)
        return;
    double delay_ms = options.backoffBaseMs
        * static_cast<double>(1u << std::min(attempt, 10u));
    // Deterministic jitter, as in the supervisor: no shared RNG state,
    // yet distinct shards desynchronize their retries.
    const uint64_t jitter_seed = fnv1a(
        spec.structure + ':' + std::to_string(spec.cycle) + ':'
        + std::to_string(attempt) + ':' + std::to_string(options.seed));
    delay_ms += static_cast<double>(jitter_seed % 1000) / 1000.0
        * options.backoffBaseMs;
    NetMetrics &nm = netMetrics();
    nm.backoffWaits.add(1);
    const obs::Span span("net.backoff", &nm.backoffNs);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
}

namespace {

/**
 * Ship one shard to one node and wait out the reply, translating every
 * way the exchange can die into the coordinator's taxonomy. Mirrors
 * the supervisor's dispatchOnce, with a connection where the child
 * process used to be.
 */
Attempt
dispatchOnce(FrameConn &conn, const ShardSpec &spec,
             const CoordinatorOptions &options)
{
    const obs::Span span("net.dispatch", &netMetrics().dispatchNs);
    netMetrics().dispatches.add(1);

    Attempt attempt;
    const double started = nowMs();
    auto finish = [&](Attempt::Outcome outcome, std::string detail) {
        attempt.outcome = outcome;
        attempt.detail = std::move(detail);
        netMetrics().shardWallUs.observe(
            static_cast<uint64_t>((nowMs() - started) * 1000.0));
        return attempt;
    };

    try {
        conn.send("shard " + serializeShardSpec(spec));
    } catch (const DavfError &error) {
        return finish(Attempt::Outcome::NodeLost,
                      std::string("send failed: ") + error.what());
    }

    const double shard_deadline = options.shardTimeoutMs > 0.0
        ? started + options.shardTimeoutMs
        : 0.0;
    std::string frame;
    for (;;) {
        double budget = options.heartbeatTimeoutMs;
        if (shard_deadline > 0.0) {
            const double remaining = shard_deadline - nowMs();
            if (remaining <= 0.0)
                return finish(Attempt::Outcome::Timeout,
                              "shard exceeded its "
                                  + std::to_string(options.shardTimeoutMs)
                                  + " ms budget");
            budget = std::min(budget, remaining);
        }

        FrameConn::ReadStatus st;
        try {
            st = conn.read(frame, budget);
        } catch (const DavfError &error) {
            // Torn or hostile stream: no frame boundary to recover to.
            return finish(Attempt::Outcome::NodeLost, error.what());
        }

        if (st == FrameConn::ReadStatus::Eof)
            return finish(Attempt::Outcome::NodeLost,
                          "node closed the connection mid-shard");
        if (st == FrameConn::ReadStatus::Timeout) {
            if (shard_deadline > 0.0 && nowMs() < shard_deadline)
                continue; // Heartbeat window rearmed per frame.
            return finish(
                Attempt::Outcome::Timeout,
                shard_deadline > 0.0
                    ? "shard exceeded its "
                        + std::to_string(options.shardTimeoutMs)
                        + " ms budget"
                    : "no heartbeat within "
                        + std::to_string(options.heartbeatTimeoutMs)
                        + " ms");
        }

        if (frame == "hb") {
            netMetrics().heartbeats.add(1);
            continue;
        }

        std::istringstream is(frame);
        std::string tag;
        is >> tag;
        if (tag == "err") {
            std::string kind;
            is >> kind;
            std::string message;
            std::getline(is, message);
            if (!message.empty() && message.front() == ' ')
                message.erase(0, 1);
            return finish(Attempt::Outcome::Error, kind + ": " + message);
        }
        if (tag == "ok") {
            std::string what;
            is >> what;
            bool ok = false;
            if (what == "davf" && spec.kind == ShardSpec::Kind::Cycle)
                ok = parseOutcomeFields(is, attempt.cycleOutcome);
            else if (what == "savf" && spec.kind == ShardSpec::Kind::Savf)
                ok = parseSavfFields(is, attempt.savfOutcome);
            if (ok)
                return finish(Attempt::Outcome::Ok, "");
        }
        // The frame arrived intact, so the stream is still in sync;
        // the payload is garbage (e.g. an injected garble fault).
        return finish(Attempt::Outcome::BadOutput,
                      "unparseable reply: " + frame.substr(0, 120));
    }
}

} // namespace

void
Coordinator::finishJob(CellCtx &ctx, Job &job)
{
    {
        const std::lock_guard<std::mutex> lock(ctx.deliverMutex);
        ctx.deliver(job);
        if (options.cacheStore && !job.fromCache) {
            const std::string payload =
                job.spec.kind == ShardSpec::Kind::Cycle
                ? serializeOutcomeFields(job.cycleOutcome)
                : serializeSavfFields(job.savfOutcome);
            // The shared store is a cache tier: the shard's result is
            // already delivered to the journal above, so a store that
            // cannot accept the write (full disk, armed crash point)
            // costs a future hit, never the campaign.
            try {
                static const crashpoint::CrashPoint store_point(
                    "net.store_write");
                store_point.fire();
                options.cacheStore(job.spec, payload);
                netMetrics().storeWrites.add(1);
            } catch (const DavfError &error) {
                netMetrics().storeWriteFailures.add(1);
                davf_warn("shared-store write failed (campaign "
                          "continues): ",
                          error.what());
            }
        }
    }
    const std::lock_guard<std::mutex> lock(ctx.mutex);
    --ctx.outstanding;
    ctx.cv.notify_all();
}

void
Coordinator::computeLocally(CellCtx &ctx, Job &job)
{
    try {
        const std::lock_guard<std::mutex> lock(localMutex);
        if (job.spec.kind == ShardSpec::Kind::Cycle) {
            davf_assert(static_cast<bool>(options.localCycle),
                        "net coordinator has no local cycle fallback");
            job.cycleOutcome = options.localCycle(job.spec);
        } else {
            davf_assert(static_cast<bool>(options.localSavf),
                        "net coordinator has no local savf fallback");
            job.savfOutcome = options.localSavf(job.spec);
        }
    } catch (const DavfError &error) {
        // Local compute is the path of last resort; its failure is
        // deterministic for the cell, exactly as in thread mode.
        const std::lock_guard<std::mutex> lock(ctx.mutex);
        if (!ctx.failed) {
            ctx.failed = true;
            ctx.failReason = std::string("local fallback: ")
                + error.what();
        }
        ctx.cv.notify_all();
        return;
    }
    finishJob(ctx, job);
}

void
Coordinator::drainNode(const std::shared_ptr<Node> &node, CellCtx &ctx)
{
    auto retire = [&](const std::string &why, bool quarantine) {
        node->dead.store(true, std::memory_order_relaxed);
        node->conn.close();
        {
            const std::lock_guard<std::mutex> lock(fleetMutex);
            fleet.erase(std::remove(fleet.begin(), fleet.end(), node),
                        fleet.end());
        }
        if (quarantine)
            netMetrics().nodesQuarantined.add(1);
        else
            netMetrics().nodesLost.add(1);
        davf_warn("net: node '", node->name, "' ",
                  quarantine ? "quarantined" : "lost", " (", why, ")");
    };

    for (;;) {
        size_t index = 0;
        {
            std::unique_lock<std::mutex> lock(ctx.mutex);
            ctx.cv.wait(lock, [&] {
                return !ctx.queue.empty() || ctx.finished()
                    || node->dead.load(std::memory_order_relaxed);
            });
            if (ctx.finished()
                || node->dead.load(std::memory_order_relaxed))
                break;
            index = ctx.queue.front();
            ctx.queue.pop_front();
        }
        Job &job = ctx.jobs[index];
        ++job.attempts;

        const Attempt attempt =
            dispatchOnce(node->conn, job.spec, options);

        if (attempt.outcome == Attempt::Outcome::Ok) {
            node->failures = 0;
            job.cycleOutcome = attempt.cycleOutcome;
            job.savfOutcome = attempt.savfOutcome;
            finishJob(ctx, job);
            continue;
        }

        if (attempt.outcome == Attempt::Outcome::Error) {
            // Deterministic worker error: re-dispatching cannot fix
            // it, so the cell fails (same policy as the supervisor).
            const std::lock_guard<std::mutex> lock(ctx.mutex);
            if (!ctx.failed) {
                ctx.failed = true;
                ctx.failReason = "node '" + node->name
                    + "': " + attempt.detail;
            }
            ctx.cv.notify_all();
            break;
        }

        // Retryable: lost node, timeout, or garbled reply.
        ++node->failures;
        const bool lost = attempt.lostNode();
        const bool quarantined =
            !lost && node->failures > options.maxNodeFailures;
        if (lost || quarantined)
            retire(attempt.detail, quarantined);

        const bool fallback = job.attempts
            > options.maxRetries + 1; // First try + maxRetries more.
        {
            const std::lock_guard<std::mutex> lock(ctx.mutex);
            if (ctx.finished()) {
                // Stopped/failed while we were dispatching; the job's
                // outcome no longer matters.
                ctx.cv.notify_all();
                break;
            }
            if (fallback) {
                netMetrics().localFallbacks.add(1);
                ctx.localQueue.push_back(index);
            } else {
                netMetrics().redispatches.add(1);
                ctx.queue.push_back(index);
            }
            ctx.cv.notify_all();
        }
        davf_warn("net: shard (", job.spec.structure, ", cycle ",
                  job.spec.cycle, ") attempt ", job.attempts,
                  " failed on node '", node->name, "': ",
                  attempt.detail,
                  fallback ? "; falling back to local compute"
                           : "; re-dispatching");

        if (node->dead.load(std::memory_order_relaxed))
            break;
        if (!fallback)
            backoff(job.spec, job.attempts);
    }

    const std::lock_guard<std::mutex> lock(ctx.mutex);
    --ctx.activeDispatchers;
    ctx.cv.notify_all();
}

Coordinator::CellResult
Coordinator::runCell(std::vector<Job> jobs,
                     const std::function<void(Job &)> &deliver)
{
    CellCtx ctx;
    ctx.jobs = std::move(jobs);
    ctx.deliver = deliver;
    ctx.outstanding = ctx.jobs.size();

    // Resolve shards against the shared store tier first: a shard any
    // node (or any earlier run) already computed is a hit, not work.
    if (options.cacheLookup) {
        for (Job &job : ctx.jobs) {
            const std::optional<std::string> hit =
                options.cacheLookup(job.spec);
            if (!hit)
                continue;
            std::istringstream is(*hit);
            const bool ok = job.spec.kind == ShardSpec::Kind::Cycle
                ? parseOutcomeFields(is, job.cycleOutcome)
                : parseSavfFields(is, job.savfOutcome);
            if (!ok)
                continue; // Corrupt payload is a miss, not an error.
            job.fromCache = true;
            netMetrics().storeHits.add(1);
            finishJob(ctx, job);
        }
    }
    for (size_t i = 0; i < ctx.jobs.size(); ++i) {
        if (!ctx.jobs[i].fromCache)
            ctx.queue.push_back(i);
    }

    std::vector<std::thread> dispatchers;
    std::set<uint64_t> seen;

    std::unique_lock<std::mutex> lock(ctx.mutex);
    for (;;) {
        // Late joiners get a dispatcher mid-cell; lock order is
        // ctx.mutex -> fleetMutex throughout.
        for (const std::shared_ptr<Node> &node : fleetSnapshot()) {
            if (node->dead.load(std::memory_order_relaxed)
                || !seen.insert(node->id).second)
                continue;
            ++ctx.activeDispatchers;
            dispatchers.emplace_back(
                [this, node, &ctx] { drainNode(node, ctx); });
        }

        if (ctx.finished())
            break;
        if (stopRequested()) {
            ctx.stopped = true;
            ctx.cv.notify_all();
            break;
        }

        if (!ctx.localQueue.empty()) {
            const size_t index = ctx.localQueue.front();
            ctx.localQueue.pop_front();
            lock.unlock();
            computeLocally(ctx, ctx.jobs[index]);
            lock.lock();
            continue;
        }
        if (ctx.activeDispatchers == 0 && !ctx.queue.empty()
            && nodeCount() == 0) {
            // The fleet drained to zero: degrade gracefully to local
            // in-process execution for everything still queued.
            davf_warn("net: no nodes left; computing ",
                      ctx.queue.size(), " remaining shard(s) locally");
            while (!ctx.queue.empty()) {
                netMetrics().localFallbacks.add(1);
                ctx.localQueue.push_back(ctx.queue.front());
                ctx.queue.pop_front();
            }
            continue;
        }

        ctx.cv.wait_for(lock, std::chrono::milliseconds(200));
    }
    lock.unlock();

    ctx.cv.notify_all();
    for (std::thread &thread : dispatchers)
        thread.join();

    CellResult result;
    result.failed = ctx.failed;
    result.failReason = ctx.failReason;
    result.stopped = ctx.stopped;
    return result;
}

Coordinator::CellResult
Coordinator::runDavfCell(
    const std::string &structure, double delay_fraction,
    const std::vector<uint64_t> &cycles, const SamplingConfig &sampling,
    const std::function<void(const InjectionCycleOutcome &)>
        &on_cycle_done)
{
    std::vector<Job> jobs;
    jobs.reserve(cycles.size());
    for (uint64_t cycle : cycles) {
        Job job;
        job.spec.kind = ShardSpec::Kind::Cycle;
        job.spec.structure = structure;
        job.spec.delayFraction = delay_fraction;
        job.spec.cycle = cycle;
        job.spec.sampling = sampling;
        jobs.push_back(std::move(job));
    }
    return runCell(std::move(jobs),
                   [&](Job &job) { on_cycle_done(job.cycleOutcome); });
}

Coordinator::CellResult
Coordinator::runSavfCell(const std::string &structure,
                         const SamplingConfig &sampling, SavfResult &out)
{
    Job job;
    job.spec.kind = ShardSpec::Kind::Savf;
    job.spec.structure = structure;
    job.spec.sampling = sampling;
    return runCell({std::move(job)},
                   [&](Job &done) { out = done.savfOutcome; });
}

void
Coordinator::shutdown()
{
    if (shuttingDown.exchange(true))
        return;
    if (acceptor.joinable())
        acceptor.join();
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }

    std::vector<std::shared_ptr<Node>> nodes;
    {
        const std::lock_guard<std::mutex> lock(fleetMutex);
        nodes.swap(fleet);
    }
    for (const std::shared_ptr<Node> &node : nodes) {
        if (!node->conn.open())
            continue;
        try {
            node->conn.send("quit");
        } catch (const DavfError &) {
            continue; // Already gone; nothing to drain.
        }
        // Drain until the worker's EOF (within a grace window) before
        // closing: a result frame racing the quit is consumed here,
        // not misread as a node failure — and the worker only exits
        // after its last reply is on the wire.
        const double deadline = nowMs() + kQuitGraceMs;
        try {
            for (;;) {
                const double remaining = deadline - nowMs();
                if (remaining <= 0.0)
                    break;
                std::string frame;
                if (node->conn.read(frame, remaining)
                    == FrameConn::ReadStatus::Eof)
                    break;
            }
        } catch (const DavfError &) {
            // A torn tail at shutdown is not worth reporting.
        }
        node->conn.close();
    }
}

} // namespace davf::net
