/**
 * @file
 * Workload abstraction: what "program-visible behaviour" means.
 *
 * DelayAVF's GroupACE step (§V-B) declares a set of state element errors
 * ACE when the program's *output* deviates from the fault-free run. A
 * Workload tells the vulnerability engine how to observe a running
 * simulation: when the program is done, what it has output so far, and a
 * cheap hash of any architectural state held inside behavioral blocks
 * (used for the engine's exact early-exit convergence check).
 *
 * Two implementations ship with the library: SocWorkload (soc/ — MMIO
 * output trace + halt flag of the IbexMini memory) and TraceWorkload
 * (below — a generic trace-sink block for bare test circuits).
 */

#ifndef DAVF_CORE_WORKLOAD_HH
#define DAVF_CORE_WORKLOAD_HH

#include <cstdint>
#include <vector>

#include "netlist/behavioral.hh"
#include "sim/cycle_sim.hh"
#include "sim/vec_sim.hh"

namespace davf {

/** How the engine observes program-visible behaviour. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** True when the program has finished (e.g. wrote the halt port). */
    virtual bool done(const CycleSimulator &sim) const = 0;

    /** The program output emitted so far, in order. */
    virtual std::vector<uint32_t>
    outputTrace(const CycleSimulator &sim) const = 0;

    /**
     * Hash of architectural state stored inside behavioral blocks (e.g.
     * memory contents). Net-level state is compared separately by the
     * engine; return 0 if all state is in flops.
     */
    virtual uint64_t archHash(const CycleSimulator &) const { return 0; }

    /** Upper bound on golden-run length (fatal if exceeded). */
    virtual uint64_t maxGoldenCycles() const { return 1u << 20; }

    /**
     * @name Per-lane observation (the engine's bit-parallel path)
     *
     * The same three observations, applied to one lane of a
     * VecSimulator (via the lane's private behavioral clones). A
     * workload that cannot observe individual lanes keeps the default
     * vectorizable() == false, and the engine runs every faulty
     * continuation on the scalar path instead.
     */
    /// @{

    /** Whether the per-lane observation overloads are implemented. */
    virtual bool vectorizable() const { return false; }

    /** Per-lane done(); panics unless vectorizable(). */
    virtual bool done(const VecSimulator &sim, unsigned lane) const;

    /** Per-lane outputTrace(); panics unless vectorizable(). */
    virtual std::vector<uint32_t>
    outputTrace(const VecSimulator &sim, unsigned lane) const;

    /** Per-lane archHash(); 0 if all state is in flops. */
    virtual uint64_t archHash(const VecSimulator &, unsigned) const
    {
        return 0;
    }

    /// @}
};

/**
 * A generic trace-recording behavioral block for test circuits: every
 * cycle in which `valid` (the last input pin) is high, the other input
 * pins are recorded as one little-endian word. No outputs.
 */
class TraceSinkModel : public BehavioralModel
{
  public:
    /** @param data_bits number of recorded data pins (<= 32). */
    explicit TraceSinkModel(unsigned data_bits);

    std::shared_ptr<BehavioralModel> clone() const override
    {
        return std::make_shared<TraceSinkModel>(*this);
    }

    unsigned numInputs() const override { return dataBits + 1; }
    unsigned numOutputs() const override { return 0; }
    void reset(std::vector<bool> &outputs) override;
    void clockEdge(const std::vector<bool> &inputs,
                   std::vector<bool> &outputs) override;
    std::vector<uint64_t> snapshot() const override;
    void restore(const std::vector<uint64_t> &data) override;

    const std::vector<uint32_t> &trace() const { return log; }

  private:
    unsigned dataBits;
    std::vector<uint32_t> log;
};

/**
 * Workload over a circuit whose output is a TraceSinkModel: the program
 * "output" is the recorded trace and the run is done after a fixed
 * number of cycles.
 */
class TraceWorkload : public Workload
{
  public:
    /**
     * @param sink_cell  the TraceSinkModel's cell in the netlist.
     * @param num_cycles fixed run length.
     */
    TraceWorkload(CellId sink_cell, uint64_t num_cycles)
        : sinkCell(sink_cell), numCycles(num_cycles)
    {}

    bool
    done(const CycleSimulator &sim) const override
    {
        return sim.cycle() >= numCycles;
    }

    std::vector<uint32_t>
    outputTrace(const CycleSimulator &sim) const override;

    uint64_t maxGoldenCycles() const override { return numCycles + 1; }

    bool vectorizable() const override { return true; }

    bool
    done(const VecSimulator &sim, unsigned) const override
    {
        return sim.cycle() >= numCycles;
    }

    std::vector<uint32_t>
    outputTrace(const VecSimulator &sim, unsigned lane) const override;

  private:
    CellId sinkCell;
    uint64_t numCycles;
};

} // namespace davf

#endif // DAVF_CORE_WORKLOAD_HH
