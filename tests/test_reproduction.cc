/**
 * @file
 * Reproduction regression tests: the paper's qualitative claims, pinned
 * as assertions on the real core with small (fast) sampling so CI
 * catches any change that breaks the science, not just the code.
 *
 * These use reduced sampling compared to the bench harnesses, so they
 * assert *orderings and zeros*, never absolute magnitudes.
 */

#include <gtest/gtest.h>

#include "src/core/vulnerability.hh"
#include "src/isa/assembler.hh"
#include "src/isa/benchmarks.hh"
#include "src/soc/ibex_mini.hh"
#include "src/soc/soc_workload.hh"

namespace davf {
namespace {

/** Shared engine over libstrstr (built once for the whole suite). */
class Reproduction : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        const BenchmarkProgram &program = beebsBenchmark("libstrstr");
        soc = new IbexMini({}, assemble(program.source));
        workload = new SocWorkload(*soc);
        EngineOptions options;
        options.periodMode =
            EngineOptions::PeriodMode::ObservedMaxPlusMargin;
        engine = new VulnerabilityEngine(soc->netlist(),
                                         CellLibrary::defaultLibrary(),
                                         *workload, options);
    }

    static void
    TearDownTestSuite()
    {
        delete engine;
        delete workload;
        delete soc;
        engine = nullptr;
        workload = nullptr;
        soc = nullptr;
    }

    static SamplingConfig
    sampling()
    {
        SamplingConfig config;
        config.maxInjectionCycles = 4;
        config.maxWires = 200;
        config.maxFlops = 64;
        config.seed = 7;
        return config;
    }

    static IbexMini *soc;
    static SocWorkload *workload;
    static VulnerabilityEngine *engine;
};

IbexMini *Reproduction::soc = nullptr;
SocWorkload *Reproduction::workload = nullptr;
VulnerabilityEngine *Reproduction::engine = nullptr;

TEST_F(Reproduction, ComponentsAreOrdered)
{
    // Fig. 8 structure: static >= dynamic >= GroupACE, per structure.
    for (const char *name : {"ALU", "Regfile", "Decoder"}) {
        const DelayAvfResult result = engine->delayAvf(
            *soc->structures().find(name), 0.6, sampling());
        EXPECT_GE(result.staticWireFraction,
                  result.dynamicWireFraction)
            << name;
        EXPECT_GE(result.dynamicWireFraction,
                  result.groupAceWireFraction)
            << name;
    }
}

TEST_F(Reproduction, StaticReachGrowsWithDelay)
{
    const Structure &alu = *soc->structures().find("ALU");
    double previous = -1.0;
    for (double d : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        const DelayAvfResult result =
            engine->delayAvf(alu, d, sampling());
        EXPECT_GE(result.staticWireFraction, previous) << "d=" << d;
        previous = result.staticWireFraction;
    }
}

TEST_F(Reproduction, AluAtLeastAsVulnerableAsRegfile)
{
    // Observation 1 (at the sampled resolution: >=, typically >).
    // This ordering needs a denser sample than the other assertions:
    // at 4 cycles / 200 wires the dynamic counts are 1-3 wires and the
    // comparison is sampling noise.
    SamplingConfig config = sampling();
    config.maxInjectionCycles = 12;
    config.maxWires = 500;
    const DelayAvfResult alu = engine->delayAvf(
        *soc->structures().find("ALU"), 0.6, config);
    const DelayAvfResult regfile = engine->delayAvf(
        *soc->structures().find("Regfile"), 0.6, config);
    EXPECT_GE(alu.delayAvf, regfile.delayAvf);
    EXPECT_GE(alu.dynamicWireFraction, regfile.dynamicWireFraction);
}

TEST_F(Reproduction, ZeroDelayIsHarmless)
{
    // Under timing-closure emulation the clock sits below the STA worst
    // path, so *statically* reachable sets are non-empty even at d = 0
    // (that gap is exactly the never-sensitized pessimism); what must
    // be zero is the dynamic outcome: the fault-free design never
    // latches a wrong value.
    const DelayAvfResult result = engine->delayAvf(
        *soc->structures().find("ALU"), 0.0, sampling());
    EXPECT_EQ(result.errorInjections, 0u);
    EXPECT_DOUBLE_EQ(result.delayAvf, 0.0);
    EXPECT_DOUBLE_EQ(result.orDelayAvf, 0.0);
}

TEST(ReproductionEcc, EccZeroesSavfButNotDelayAvf)
{
    // Observations 4/5 on the ECC build.
    IbexMiniConfig config;
    config.eccRegfile = true;
    const BenchmarkProgram &program = beebsBenchmark("libstrstr");
    IbexMini soc(config, assemble(program.source));
    SocWorkload workload(soc);
    EngineOptions options;
    options.periodMode =
        EngineOptions::PeriodMode::ObservedMaxPlusMargin;
    VulnerabilityEngine engine(soc.netlist(),
                               CellLibrary::defaultLibrary(), workload,
                               options);

    SamplingConfig sampling;
    sampling.maxInjectionCycles = 4;
    sampling.maxWires = 300;
    sampling.maxFlops = 96;
    const Structure &regfile = *soc.structures().find("Regfile");

    const SavfResult savf = engine.savf(regfile, sampling);
    EXPECT_EQ(savf.aceInjections, 0u); // Every strike corrected.
    EXPECT_GT(savf.injections, 0u);
}

} // namespace
} // namespace davf
