/**
 * @file
 * Tests for the cycle-accurate simulator: flop semantics, enables,
 * behavioral blocks, fault forcing, flop flipping, snapshots, and the
 * trace sink.
 */

#include <gtest/gtest.h>

#include "src/builder/builder.hh"
#include "src/core/workload.hh"
#include "src/sim/cycle_sim.hh"

namespace davf {
namespace {

TEST(CycleSim, DffPipelineShifts)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId in = b.input("in");
    const NetId q1 = b.dff(in);
    const NetId q2 = b.dff(q1);
    const NetId q3 = b.dff(q2);
    nl.finalize();

    CycleSimulator sim(nl);
    sim.setInput(in, true);
    EXPECT_FALSE(sim.value(q1));
    sim.step();
    EXPECT_TRUE(sim.value(q1));
    EXPECT_FALSE(sim.value(q2));
    sim.step();
    EXPECT_TRUE(sim.value(q2));
    EXPECT_FALSE(sim.value(q3));
    sim.setInput(in, false);
    sim.step();
    EXPECT_FALSE(sim.value(q1));
    EXPECT_TRUE(sim.value(q3));
    EXPECT_EQ(sim.cycle(), 3u);
}

TEST(CycleSim, DffeHoldsWithoutEnable)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId d = b.input("d");
    const NetId en = b.input("en");
    const NetId q = b.dffe(d, en, true);
    nl.finalize();

    CycleSimulator sim(nl);
    EXPECT_TRUE(sim.value(q)); // Reset value 1.
    sim.setInput(d, false);
    sim.setInput(en, false);
    sim.step();
    EXPECT_TRUE(sim.value(q)); // Held.
    sim.setInput(en, true);
    sim.step();
    EXPECT_FALSE(sim.value(q)); // Captured.
    sim.setInput(d, true);
    sim.setInput(en, false);
    sim.step();
    EXPECT_FALSE(sim.value(q)); // Held again.
}

TEST(CycleSim, CombEvaluatesThroughLevels)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId a = b.input("a");
    const NetId c = b.input("c");
    const NetId out = b.xor2(b.and2(a, c), b.or2(a, c));
    nl.finalize();

    CycleSimulator sim(nl);
    for (int av = 0; av < 2; ++av) {
        for (int cv = 0; cv < 2; ++cv) {
            sim.setInput(a, av);
            sim.setInput(c, cv);
            EXPECT_EQ(sim.value(out),
                      ((av && cv) != (av || cv)));
        }
    }
}

TEST(CycleSim, ForcingOverridesSampledValue)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId in = b.input("in");
    const NetId q = b.dff(in);
    nl.finalize();

    CycleSimulator sim(nl);
    const StateElemId elem = nl.flopStateElem(nl.net(q).driver);
    sim.setInput(in, false);
    const CycleSimulator::Force forces[] = {{elem, true}};
    sim.step(forces);
    EXPECT_TRUE(sim.value(q)); // Forced despite D = 0.
    sim.step();
    EXPECT_FALSE(sim.value(q)); // Transient: next edge samples D again.
}

TEST(CycleSim, StepReportsSampledValues)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId in = b.input("in");
    const NetId q = b.dff(in);
    (void)q;
    nl.finalize();

    CycleSimulator sim(nl);
    sim.setInput(in, true);
    std::vector<uint8_t> sampled;
    sim.step({}, &sampled);
    ASSERT_EQ(sampled.size(), nl.numStateElems());
    EXPECT_EQ(sampled[0], 1);
}

TEST(CycleSim, FlipFlopInvertsStateAndPropagates)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId in = b.input("in");
    const NetId q = b.dff(in);
    const NetId derived = b.inv(q);
    nl.finalize();

    CycleSimulator sim(nl);
    EXPECT_FALSE(sim.value(q));
    EXPECT_TRUE(sim.value(derived));
    sim.flipFlop(nl.flopStateElem(nl.net(q).driver));
    EXPECT_TRUE(sim.value(q));
    EXPECT_FALSE(sim.value(derived)); // Combinational logic re-settled.
}

TEST(CycleSim, SnapshotRestoreRoundTrip)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId in = b.input("in");
    NetId q = b.dff(in);
    for (int i = 0; i < 3; ++i)
        q = b.dff(q);
    nl.finalize();

    CycleSimulator sim(nl);
    sim.setInput(in, true);
    sim.step();
    sim.step();
    const auto snap = sim.snapshot();
    const auto values_at_snap = sim.netValues_();

    sim.step();
    sim.step();
    EXPECT_NE(sim.netValues_(), values_at_snap);

    sim.restore(snap);
    EXPECT_EQ(sim.netValues_(), values_at_snap);
    EXPECT_EQ(sim.cycle(), 2u);
}

TEST(CycleSim, ResetIsDeterministic)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId in = b.input("in");
    const NetId q = b.dff(in, true);
    nl.finalize();

    CycleSimulator sim(nl);
    EXPECT_TRUE(sim.value(q));
    sim.setInput(in, false);
    sim.step();
    EXPECT_FALSE(sim.value(q));
    sim.reset();
    EXPECT_TRUE(sim.value(q));
    EXPECT_EQ(sim.cycle(), 0u);
    EXPECT_FALSE(sim.value(in)); // Inputs cleared by reset.
}

TEST(TraceSink, RecordsWhenValid)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const Bus data = b.inputBus("d", 4);
    const NetId valid = b.input("v");
    Bus sink_in = data;
    sink_in.push_back(valid);
    const CellId sink = nl.addBehavioral(
        "sink", std::make_shared<TraceSinkModel>(4), sink_in, {});
    nl.finalize();

    CycleSimulator sim(nl);
    auto &model = static_cast<TraceSinkModel &>(sim.behavModel(sink));

    for (unsigned i = 0; i < 4; ++i)
        sim.setInput(data[i], (0x9 >> i) & 1);
    sim.setInput(valid, true);
    sim.step();
    sim.setInput(valid, false);
    sim.step();
    for (unsigned i = 0; i < 4; ++i)
        sim.setInput(data[i], (0x5 >> i) & 1);
    sim.setInput(valid, true);
    sim.step();

    ASSERT_EQ(model.trace().size(), 2u);
    EXPECT_EQ(model.trace()[0], 0x9u);
    EXPECT_EQ(model.trace()[1], 0x5u);
}

TEST(TraceSink, ForcingBehavInputCorruptsRecord)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const Bus data = b.inputBus("d", 4);
    const NetId valid = b.input("v");
    Bus sink_in = data;
    sink_in.push_back(valid);
    const CellId sink = nl.addBehavioral(
        "sink", std::make_shared<TraceSinkModel>(4), sink_in, {});
    nl.finalize();

    CycleSimulator sim(nl);
    for (unsigned i = 0; i < 4; ++i)
        sim.setInput(data[i], 0);
    sim.setInput(valid, true);

    // Force the bit-1 input pin of the sink at the edge.
    const StateElemId elem = nl.pinStateElem(sink, 1);
    const CycleSimulator::Force forces[] = {{elem, true}};
    sim.step(forces);

    const auto &model =
        static_cast<const TraceSinkModel &>(sim.behavModel(sink));
    ASSERT_EQ(model.trace().size(), 1u);
    EXPECT_EQ(model.trace()[0], 0x2u);
}

TEST(TraceSink, SimulatorsOwnIndependentModelClones)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const Bus data = b.inputBus("d", 4);
    Bus sink_in = data;
    sink_in.push_back(b.constant(true));
    const CellId sink = nl.addBehavioral(
        "sink", std::make_shared<TraceSinkModel>(4), sink_in, {});
    nl.finalize();

    CycleSimulator sim_a(nl);
    CycleSimulator sim_b(nl);
    sim_a.step();
    sim_a.step();
    sim_b.step();

    const auto &model_a =
        static_cast<const TraceSinkModel &>(sim_a.behavModel(sink));
    const auto &model_b =
        static_cast<const TraceSinkModel &>(sim_b.behavModel(sink));
    EXPECT_EQ(model_a.trace().size(), 2u);
    EXPECT_EQ(model_b.trace().size(), 1u);
}

TEST(CycleSim, SnapshotCarriesBehavioralState)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const Bus data = b.inputBus("d", 4);
    Bus sink_in = data;
    sink_in.push_back(b.constant(true));
    const CellId sink = nl.addBehavioral(
        "sink", std::make_shared<TraceSinkModel>(4), sink_in, {});
    nl.finalize();

    CycleSimulator sim(nl);
    sim.step();
    const auto snap = sim.snapshot();
    sim.step();
    sim.step();
    sim.restore(snap);
    const auto &model =
        static_cast<const TraceSinkModel &>(sim.behavModel(sink));
    EXPECT_EQ(model.trace().size(), 1u);
}

} // namespace
} // namespace davf
