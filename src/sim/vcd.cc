#include "vcd.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace davf {

VcdWriter::VcdWriter(const Netlist &netlist, std::vector<NetId> nets)
    : nl(&netlist), tracked(std::move(nets))
{
    davf_assert(!tracked.empty(), "no nets to track");
    changes.resize(tracked.size());
}

VcdWriter
VcdWriter::allNets(const Netlist &netlist)
{
    std::vector<NetId> nets(netlist.numNets());
    for (NetId id = 0; id < netlist.numNets(); ++id)
        nets[id] = id;
    return VcdWriter(netlist, std::move(nets));
}

void
VcdWriter::sample(const CycleSimulator &sim)
{
    const uint64_t cycle = sim.cycle();
    for (size_t i = 0; i < tracked.size(); ++i) {
        const bool value = sim.value(tracked[i]);
        if (changes[i].empty() || changes[i].back().second != value)
            changes[i].emplace_back(cycle, value);
    }
    ++samples;
}

std::string
VcdWriter::identifier(size_t index)
{
    // Printable VCD identifier alphabet: '!' (33) .. '~' (126).
    std::string id;
    do {
        id += static_cast<char>(33 + index % 94);
        index /= 94;
    } while (index != 0);
    return id;
}

std::string
VcdWriter::render(const std::string &design_name) const
{
    std::ostringstream out;
    out << "$date today $end\n";
    out << "$version davf VcdWriter $end\n";
    out << "$timescale 1 ns $end\n";
    out << "$scope module " << design_name << " $end\n";
    for (size_t i = 0; i < tracked.size(); ++i) {
        std::string name = nl->net(tracked[i]).name;
        for (char &c : name) {
            if (c == '/' || c == ' ')
                c = '.';
        }
        out << "$var wire 1 " << identifier(i) << " " << name
            << " $end\n";
    }
    out << "$upscope $end\n$enddefinitions $end\n";

    // Merge the per-net change lists into time order.
    std::vector<size_t> cursor(tracked.size(), 0);
    uint64_t last_emitted = ~uint64_t{0};
    for (;;) {
        uint64_t next = ~uint64_t{0};
        for (size_t i = 0; i < tracked.size(); ++i) {
            if (cursor[i] < changes[i].size())
                next = std::min(next, changes[i][cursor[i]].first);
        }
        if (next == ~uint64_t{0})
            break;
        if (next != last_emitted) {
            out << "#" << next << "\n";
            last_emitted = next;
        }
        for (size_t i = 0; i < tracked.size(); ++i) {
            if (cursor[i] < changes[i].size()
                && changes[i][cursor[i]].first == next) {
                out << (changes[i][cursor[i]].second ? '1' : '0')
                    << identifier(i) << "\n";
                ++cursor[i];
            }
        }
    }
    return out.str();
}

void
VcdWriter::writeTo(const std::string &path,
                   const std::string &design_name) const
{
    std::ofstream file(path);
    if (!file)
        davf_throw(ErrorKind::Io, "cannot open '", path,
                   "' for writing");
    file << render(design_name);
    if (!file)
        davf_throw(ErrorKind::Io, "write to ", path, " failed");
}

} // namespace davf
