#include "atomic_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "util/crashpoint.hh"
#include "util/logging.hh"

namespace davf {

namespace {

/**
 * fsync the directory holding @p path, making a just-renamed entry
 * durable. Without this a post-rename power cut can roll the
 * directory back and silently lose a "committed" record even though
 * the data blocks were fsynced. EINVAL/ENOTSUP (filesystems that
 * cannot sync directories) are tolerated; real I/O errors throw.
 */
void
fsyncParentDir(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
        davf_throw(ErrorKind::Io, "cannot open directory '", dir,
                   "' to sync '", path, "': ", std::strerror(errno));
    }
    if (::fsync(fd) != 0 && errno != EINVAL && errno != ENOTSUP) {
        const int saved = errno;
        ::close(fd);
        davf_throw(ErrorKind::Io, "cannot fsync directory '", dir,
                   "': ", std::strerror(saved));
    }
    ::close(fd);
}

} // namespace

void
writeFileAtomic(const std::string &path, std::string_view contents)
{
    static const crashpoint::CrashPoint pre_tmp(
        "atomic_file.pre_tmp_write");
    static const crashpoint::CrashPoint write_point("atomic_file.write");
    static const crashpoint::CrashPoint pre_fsync(
        "atomic_file.pre_fsync");
    static const crashpoint::CrashPoint pre_rename(
        "atomic_file.pre_rename");
    static const crashpoint::CrashPoint post_rename(
        "atomic_file.post_rename");

    pre_tmp.fire();

    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());

    std::FILE *file = std::fopen(tmp.c_str(), "wb");
    if (!file) {
        davf_throw(ErrorKind::Io, "cannot open '", tmp,
                   "' for writing: ", std::strerror(errno));
    }

    // An armed payload action rewrites what actually reaches the disk:
    // `torn` and `garble` publish damaged bytes and die after the
    // rename (simulating rename metadata surviving a power cut that
    // the data blocks did not), `enospc` stops the write mid-stream
    // and fails like a full disk.
    std::string_view payload = contents;
    std::string garbled;
    bool fail_enospc = false;
    bool kill_after_publish = false;
    switch (write_point.firePayload(contents.size())) {
      case crashpoint::Action::Torn:
        payload = contents.substr(
            0, crashpoint::damageOffset(contents.size()));
        kill_after_publish = true;
        break;
      case crashpoint::Action::Garble:
        garbled = std::string(contents);
        garbled[crashpoint::damageOffset(garbled.size())] ^= 0x40;
        payload = garbled;
        kill_after_publish = true;
        break;
      case crashpoint::Action::Enospc:
        payload = contents.substr(
            0, crashpoint::damageOffset(contents.size()));
        fail_enospc = true;
        break;
      default:
        break;
    }

    bool ok = payload.empty()
        || std::fwrite(payload.data(), 1, payload.size(), file)
            == payload.size();
    if (fail_enospc) {
        std::fclose(file);
        std::remove(tmp.c_str());
        davf_throw(ErrorKind::Io, "short write to '", tmp,
                   "': no space left on device (injected)");
    }
    ok = std::fflush(file) == 0 && ok;
    pre_fsync.fire();
    // Persist the data before the rename publishes it.
    ok = ::fsync(::fileno(file)) == 0 && ok;
    // fclose can surface the final deferred write error; an unchecked
    // failure here would publish a record the kernel never accepted.
    ok = std::fclose(file) == 0 && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        davf_throw(ErrorKind::Io, "short write to '", tmp,
                   "': ", std::strerror(errno));
    }

    pre_rename.fire();
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int saved = errno;
        std::remove(tmp.c_str());
        davf_throw(ErrorKind::Io, "cannot rename '", tmp, "' to '", path,
                   "': ", std::strerror(saved));
    }
    if (kill_after_publish)
        crashpoint::killProcess("atomic_file.write");
    post_rename.fire();
    // Make the rename itself durable (see fsyncParentDir).
    fsyncParentDir(path);
}

} // namespace davf
