/**
 * @file
 * Quickstart: the complete DelayAVF workflow on a 20-line circuit.
 *
 * Builds a tiny clocked design (the paper's Figure 2 divider-flag
 * example), runs the two-step DelayACE analysis on every wire, and
 * prints the structure's DelayAVF — demonstrating every layer of the
 * library: ModuleBuilder -> Netlist -> STA -> timed/untimed simulation
 * -> VulnerabilityEngine.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>
#include <memory>

#include "builder/builder.hh"
#include "core/vulnerability.hh"
#include "core/workload.hh"
#include "netlist/structure.hh"

using namespace davf;

int
main()
{
    // ------------------------------------------------------------------
    // 1. Describe the hardware structurally (the paper's Fig. 2 shape):
    //    a toggling signal x, a gating signal y, AND(x, y) feeding flop
    //    A, and x alone feeding flop B; both flops observed by a trace
    //    sink (the "program output").
    // ------------------------------------------------------------------
    Netlist netlist;
    ModuleBuilder b(netlist);
    b.pushScope("div");

    const NetId xd = b.freshNet("xd");
    const NetId x = b.dff(xd, false, "ffx");
    b.connect(xd, b.inv(x)); // x toggles every cycle.

    const NetId yd = b.freshNet("yd");
    const NetId y = b.dff(yd, true, "ffy"); // Trap-enable: held at 1.
    b.connect(yd, b.buf(y));

    const NetId a = b.dff(b.and2(x, y), false, "ffa");
    const NetId bq = b.dff(b.buf(x), false, "ffb");

    const CellId sink = netlist.addBehavioral(
        "div/sink", std::make_shared<TraceSinkModel>(2),
        {{a, bq, b.constant(true)}}, {});
    b.popScope();
    netlist.finalize();

    // ------------------------------------------------------------------
    // 2. Define the workload (program-visible behaviour = the sink's
    //    trace over 16 cycles) and build the engine. Construction runs
    //    the golden execution and the timing analysis.
    // ------------------------------------------------------------------
    TraceWorkload workload(sink, 16);
    VulnerabilityEngine engine(netlist, CellLibrary::defaultLibrary(),
                               workload);

    std::printf("clock period (longest path): %.1f ps\n",
                engine.clockPeriod());
    std::printf("golden run: %llu cycles, %zu output words\n\n",
                static_cast<unsigned long long>(engine.goldenCycles()),
                engine.goldenOutput().size());

    // ------------------------------------------------------------------
    // 3. Probe a single wire by hand: dynamically reachable set and
    //    DelayACE verdict (Eq. 4) for an SDF of half a clock period.
    // ------------------------------------------------------------------
    const double d = 0.5 * engine.clockPeriod();
    std::printf("per-wire DelayACE at cycle 5, d = 50%% of the period:\n");
    for (WireId wire = 0; wire < netlist.numWires(); ++wire) {
        const auto errors = engine.dynamicErrors(wire, 5, d);
        const bool ace = !errors.empty()
            && engine.groupVerdict(errors, 5) != FailureKind::None;
        std::printf("  %-34s errors=%zu  DelayACE=%s\n",
                    netlist.wireName(wire).c_str(), errors.size(),
                    ace ? "yes" : "no");
    }

    // ------------------------------------------------------------------
    // 4. The headline metric: DelayAVF of the whole structure (Eq. 3),
    //    sweeping the SDF duration.
    // ------------------------------------------------------------------
    StructureRegistry registry(netlist);
    const Structure &divider = registry.add("Divider", "div/");

    SamplingConfig config;
    config.maxInjectionCycles = 8;

    std::printf("\nDelayAVF of the divider structure:\n");
    for (double fraction : {0.25, 0.5, 0.75}) {
        const DelayAvfResult result =
            engine.delayAvf(divider, fraction, config);
        std::printf("  d = %2.0f%%: DelayAVF = %.4f  (static %.2f, "
                    "dynamic %.2f of wires)\n",
                    100 * fraction, result.delayAvf,
                    result.staticWireFraction,
                    result.dynamicWireFraction);
    }
    return 0;
}
