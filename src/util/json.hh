/**
 * @file
 * A minimal RFC 8259 JSON validator. The library *emits* JSON in several
 * places (reports, metrics snapshots, traces, service stats) but never
 * needs to build a DOM from it — tests and the `davf_jsonlint` CI helper
 * only need to know "is this well-formed?", and an error position when
 * it is not. No third-party dependency, by design (ROADMAP.md).
 */

#ifndef DAVF_UTIL_JSON_HH
#define DAVF_UTIL_JSON_HH

#include <cstddef>
#include <string>
#include <string_view>

namespace davf {

/** Outcome of jsonValidate(): ok(), or a message with a byte offset. */
struct JsonCheck {
    bool valid = false;
    size_t offset = 0;   ///< Byte position of the first error.
    std::string message; ///< Empty when valid.

    explicit operator bool() const { return valid; }
};

/**
 * Validate that @p text is exactly one well-formed JSON value (object,
 * array, string, number, true/false/null) with nothing but whitespace
 * after it. Rejects the non-standard NaN/Infinity tokens some printf
 * paths can produce — that is the bug class this guards against.
 */
JsonCheck jsonValidate(std::string_view text);

/**
 * Re-indent one JSON value for human eyes (`davf_client stats`): two
 * spaces per nesting level, one member/element per line, ": " after
 * keys. Purely lexical — no DOM, key order and number spellings are
 * untouched. @p text is validated first; anything malformed is
 * returned unchanged (the caller is printing a server reply either
 * way, and garbage is more debuggable unreformatted).
 */
std::string jsonPretty(std::string_view text);

} // namespace davf

#endif // DAVF_UTIL_JSON_HH
