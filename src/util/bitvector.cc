#include "bitvector.hh"

#include <bit>

#include "logging.hh"

namespace davf {

BitVector::BitVector(size_t size, bool value)
{
    resize(size, value);
}

void
BitVector::resize(size_t size, bool value)
{
    const size_t old_bits = numBits;
    numBits = size;
    words.resize((size + 63) / 64, value ? ~uint64_t{0} : 0);
    if (value && size > old_bits && old_bits % 64 != 0) {
        // The word holding old_bits..: set the freshly exposed bits.
        const size_t word = old_bits >> 6;
        const uint64_t mask = ~uint64_t{0} << (old_bits & 63);
        words[word] |= mask;
    }
    clearTail();
}

void
BitVector::fill(bool value)
{
    for (auto &word : words)
        word = value ? ~uint64_t{0} : 0;
    clearTail();
}

size_t
BitVector::popcount() const
{
    size_t total = 0;
    for (uint64_t word : words)
        total += std::popcount(word);
    return total;
}

bool
BitVector::none() const
{
    for (uint64_t word : words) {
        if (word != 0)
            return false;
    }
    return true;
}

BitVector &
BitVector::operator^=(const BitVector &other)
{
    davf_assert(numBits == other.numBits);
    for (size_t i = 0; i < words.size(); ++i)
        words[i] ^= other.words[i];
    return *this;
}

BitVector &
BitVector::operator|=(const BitVector &other)
{
    davf_assert(numBits == other.numBits);
    for (size_t i = 0; i < words.size(); ++i)
        words[i] |= other.words[i];
    return *this;
}

BitVector &
BitVector::operator&=(const BitVector &other)
{
    davf_assert(numBits == other.numBits);
    for (size_t i = 0; i < words.size(); ++i)
        words[i] &= other.words[i];
    return *this;
}

std::vector<size_t>
BitVector::setBits() const
{
    std::vector<size_t> result;
    for (size_t w = 0; w < words.size(); ++w) {
        uint64_t word = words[w];
        while (word) {
            const int lowest = std::countr_zero(word);
            result.push_back(w * 64 + lowest);
            word &= word - 1;
        }
    }
    return result;
}

void
BitVector::clearTail()
{
    if (numBits % 64 != 0 && !words.empty())
        words.back() &= (uint64_t{1} << (numBits & 63)) - 1;
}

} // namespace davf
