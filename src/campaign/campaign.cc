#include "campaign.hh"

#include <cstdlib>
#include <sstream>

#include "core/report.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/atomic_file.hh"
#include "util/logging.hh"

namespace davf {

namespace {

/** Campaign metric handles (docs/OBSERVABILITY.md). */
struct CampaignMetrics
{
    obs::Counter cellsComputed{"campaign.cells_computed"};
    obs::Counter cellsFromCheckpoint{"campaign.cells_from_checkpoint"};
    obs::Counter cellsFailed{"campaign.cells_failed"};
    obs::Counter checkpointSaves{"campaign.checkpoint_saves"};
    obs::Counter checkpointWriteFailures{
        "campaign.checkpoint_write_failures"};
    obs::Counter csvFlushes{"campaign.csv_flushes"};
    obs::Counter cellNs{"campaign.time.cell_ns"};
    obs::Counter checkpointNs{"campaign.time.checkpoint_ns"};
};

CampaignMetrics &
campaignMetrics()
{
    static CampaignMetrics *const metrics = new CampaignMetrics();
    return *metrics;
}

/** FNV-1a 64, printed as hex: the journal's config fingerprint. */
std::string
fnv1aHex(const std::string &text)
{
    uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    std::ostringstream os;
    os << std::hex << hash;
    return os.str();
}

double
delayFromKey(const CheckpointKey &key)
{
    return std::strtod(key.delay.c_str(), nullptr);
}

} // namespace

std::string
campaignConfigHash(const CampaignOptions &options)
{
    std::ostringstream os;
    os << "benchmark=" << options.benchmark << ";structures=";
    for (const std::string &name : options.structures)
        os << name << ',';
    os << ";delays=";
    for (double d : options.delays)
        os << canonicalDelay(d) << ',';
    os << ";savf=" << (options.runSavf ? 1 : 0)
       << ";cycleFraction=" << canonicalDelay(options.sampling.cycleFraction)
       << ";maxInjectionCycles=" << options.sampling.maxInjectionCycles
       << ";maxWires=" << options.sampling.maxWires
       << ";maxFlops=" << options.sampling.maxFlops
       << ";seed=" << options.sampling.seed
       << ";watchdogSlack=" << options.sampling.watchdogSlack;
    // Appended only when enabled: attribution-off hashes must match
    // journals written before the flag existed so they stay resumable.
    if (options.sampling.attribution)
        os << ";attr=1";
    return fnv1aHex(os.str());
}

Campaign::Campaign(VulnerabilityEngine &the_engine,
                   const StructureRegistry &structures,
                   CampaignOptions the_options)
    : engine(&the_engine), registry(&structures),
      options(std::move(the_options))
{
    journal.configHash = campaignConfigHash(options);
}

void
Campaign::save() const
{
    if (options.checkpointPath.empty())
        return;
    const obs::Span span("campaign.checkpoint",
                         &campaignMetrics().checkpointNs);
    // A checkpoint is a convenience, not a result: if the disk fills
    // (or an armed crash point throws) mid-sweep, losing checkpoint
    // freshness must not lose the sweep. The atomic write discipline
    // guarantees the previous journal survives the failed save, so a
    // later resume still works from the last good state.
    try {
        saveCheckpoint(options.checkpointPath, journal);
    } catch (const DavfError &error) {
        if (error.kind() != ErrorKind::Io)
            throw;
        campaignMetrics().checkpointWriteFailures.add(1);
        davf_warn("checkpoint save to '", options.checkpointPath,
                  "' failed (campaign continues): ", error.what());
        return;
    }
    campaignMetrics().checkpointSaves.add(1);
    if (options.onCheckpointSaved)
        options.onCheckpointSaved();
}

void
Campaign::flushCsv(const CampaignSummary &summary) const
{
    if (options.csvPath.empty())
        return;
    campaignMetrics().csvFlushes.add(1);
    std::ostringstream os;
    std::ostringstream attr_os;
    os << delayAvfCsvHeader() << '\n';
    for (const CampaignCellResult &cell : summary.cells) {
        if (cell.key.kind != "davf" || cell.failed)
            continue;
        const std::string label =
            cell.key.structure + options.structureLabel;
        os << delayAvfCsvRow(cell.key.benchmark, label, cell.delay,
                             cell.davf)
           << '\n';
        attr_os << attributionCsvRows(cell.key.benchmark, label,
                                      cell.delay, cell.davf);
    }
    writeFileAtomic(options.csvPath, os.str());
    // The per-instruction attribution table is a differently-shaped
    // relation, so it goes to a sibling file rather than a second
    // header block that would break naive CSV readers.
    if (!attr_os.str().empty()) {
        writeFileAtomic(options.csvPath + ".attr",
                        attributionCsvHeader() + "\n" + attr_os.str());
    }
}

CampaignSummary
Campaign::run()
{
    // Continuation batching is an engine-level switch; results are
    // bit-identical either way, so this cannot invalidate a journal.
    engine->setVectorMode(options.vectorize, options.vectorLanes);
    engine->setTsimVectorMode(options.vectorTsim, options.tsimLanes);

    // Resolve structures up front: an unknown name is a user error that
    // should fail the campaign before any simulation time is spent.
    std::vector<const Structure *> resolved;
    for (const std::string &name : options.structures) {
        const Structure *structure = registry->find(name);
        if (!structure) {
            davf_throw(ErrorKind::NotFound, "unknown structure '", name,
                       "'");
        }
        resolved.push_back(structure);
    }

    if (options.resume) {
        if (options.checkpointPath.empty()) {
            davf_throw(ErrorKind::BadArgument,
                       "resume requested without a checkpoint path");
        }
        // Lenient about a torn final line only: the journal is written
        // atomically, so a damaged tail means the file was copied or
        // the filesystem crashed mid-write — losing that one record
        // (it is re-simulated) beats refusing to resume.
        CheckpointLoadStats stats;
        Result<Checkpoint> loaded =
            loadCheckpoint(options.checkpointPath, &stats);
        if (!loaded)
            throw loaded.error();
        if (stats.truncatedTail) {
            davf_warn("checkpoint '", options.checkpointPath,
                      "': dropped torn final line \"",
                      stats.droppedLine.substr(0, 80),
                      "\"; its record will be recomputed");
        } else if (stats.missingEnd) {
            davf_warn("checkpoint '", options.checkpointPath,
                      "': missing end record (truncated write?); "
                      "resuming from the readable prefix");
        }
        if (loaded.value().configHash != journal.configHash) {
            davf_throw(ErrorKind::BadArgument,
                       "checkpoint '", options.checkpointPath,
                       "' was written by a different campaign "
                       "configuration (hash ",
                       loaded.value().configHash, ", expected ",
                       journal.configHash, ")");
        }
        journal = std::move(loaded.value());
    }

    // The cell schedule, in deterministic order.
    struct PlannedCell
    {
        CheckpointKey key;
        const Structure *structure;
        double delay;
    };
    std::vector<PlannedCell> plan;
    for (size_t s = 0; s < resolved.size(); ++s) {
        for (double d : options.delays) {
            plan.push_back({{"davf", options.benchmark,
                             options.structures[s], canonicalDelay(d)},
                            resolved[s], d});
        }
        if (options.runSavf) {
            plan.push_back({{"savf", options.benchmark,
                             options.structures[s],
                             canonicalDelay(0.0)},
                            resolved[s], 0.0});
        }
    }

    auto stop_requested = [&]() {
        return options.stopFlag
            && options.stopFlag->load(std::memory_order_relaxed);
    };

    // Process isolation: known-bad injections from earlier runs keep
    // their exclusions, so a resumed campaign converges instead of
    // re-crashing on the same cell. Records from other configurations
    // are ignored (their sampled-wire indices mean something else).
    const bool process_mode = options.isolate == IsolationMode::Process;
    const bool net_mode = options.isolate == IsolationMode::Net;
    if (net_mode) {
        davf_assert(options.dispatcher != nullptr,
                    "IsolationMode::Net needs a ShardDispatcher");
    }
    std::vector<QuarantineRecord> knownQuarantine;
    if (process_mode && !options.supervisor.quarantineDir.empty()) {
        for (QuarantineRecord &record :
             loadQuarantineRecords(options.supervisor.quarantineDir)) {
            if (record.configHash == journal.configHash)
                knownQuarantine.push_back(std::move(record));
        }
    }
    auto ensure_supervisor = [&]() {
        if (supervisor)
            return;
        SupervisorOptions sup = options.supervisor;
        sup.configHash = journal.configHash;
        sup.benchmark = options.benchmark;
        sup.seed = options.sampling.seed;
        sup.stopFlag = options.stopFlag;
        supervisor = std::make_unique<Supervisor>(std::move(sup));
    };

    // A campaign sweeps every structure across the same delay list, so
    // the engine can reuse per-cycle golden context and verdicts across
    // adjacent delay values (docs/PERFORMANCE.md). Bit-identical by
    // construction; the guard keeps the caches from outliving the run.
    engine->beginDelaySweep(options.delays);
    struct SweepGuard {
        VulnerabilityEngine *engine;
        ~SweepGuard() { engine->endDelaySweep(); }
    } sweep_guard{engine};

    CampaignSummary summary;
    for (const PlannedCell &planned : plan) {
        // Adopt journaled cells verbatim: this is what makes a resumed
        // campaign bit-identical to an uninterrupted one.
        if (const CheckpointCell *cached = journal.find(planned.key)) {
            CampaignCellResult cell;
            cell.key = cached->key;
            cell.delay = delayFromKey(cached->key);
            cell.fromCheckpoint = true;
            cell.failed = cached->failed;
            cell.failReason = cached->failReason;
            cell.davf = cached->davf;
            cell.savf = cached->savf;
            summary.cells.push_back(std::move(cell));
            ++summary.cellsFromCheckpoint;
            campaignMetrics().cellsFromCheckpoint.add(1);
            if (cached->failed)
                ++summary.cellsFailed;
            continue;
        }

        if (stop_requested()) {
            summary.interrupted = true;
            save();
            break;
        }

        const obs::Span cell_span("campaign.cell",
                                  &campaignMetrics().cellNs);

        SamplingConfig config = options.sampling;
        config.stopFlag = options.stopFlag;
        config.injectionTimeoutMs = options.injectionTimeoutMs;
        config.maxFailureRate = options.maxFailureRate;

        CampaignCellResult cell;
        cell.key = planned.key;
        cell.delay = planned.delay;

        if (planned.key.kind == "savf") {
            if (net_mode) {
                ShardDispatcher::CellResult shard =
                    options.dispatcher->runSavfCell(
                        planned.key.structure, config, cell.savf);
                if (shard.stopped) {
                    summary.interrupted = true;
                    save();
                    break;
                }
                cell.failed = shard.failed;
                cell.failReason = shard.failReason;
            } else if (process_mode) {
                ensure_supervisor();
                Supervisor::SavfCellResult shard =
                    supervisor->runSavfCell(planned.key.structure,
                                            config);
                if (shard.stopped) {
                    summary.interrupted = true;
                    save();
                    break;
                }
                cell.savf = shard.savf;
                cell.failed = shard.failed;
                cell.failReason = shard.failReason;
            } else {
                cell.savf = engine->savf(*planned.structure, config);
                if (cell.savf.stopped) {
                    summary.interrupted = true;
                    save();
                    break;
                }
            }
        } else {
            DelayAvfProgress progress;
            if (journal.hasPartial
                && journal.partialKey == planned.key) {
                progress.completed = journal.partialCycles;
            }
            // Journal every completed injection cycle: an interruption
            // (even SIGKILL) loses at most one cycle of work. Calls are
            // serialized by the engine.
            progress.onCycleDone =
                [&](const InjectionCycleOutcome &outcome) {
                    if (!journal.hasPartial
                        || !(journal.partialKey == planned.key)) {
                        journal.hasPartial = true;
                        journal.partialKey = planned.key;
                        journal.partialCycles.clear();
                    }
                    for (const InjectionCycleOutcome &have :
                         journal.partialCycles) {
                        if (have.cycle == outcome.cycle)
                            return;
                    }
                    journal.partialCycles.push_back(outcome);
                    save();
                };

            // Aggregation from completed outcomes is shared by both
            // isolation modes; catching ExcessiveFailures (the cell is
            // untrustworthy) records why and moves on.
            auto aggregate = [&](DelayAvfProgress *with) {
                try {
                    cell.davf = engine->delayAvf(*planned.structure,
                                                 planned.delay, config,
                                                 with);
                } catch (const DavfError &error) {
                    if (error.kind() != ErrorKind::ExcessiveFailures)
                        throw;
                    cell.failed = true;
                    cell.failReason = error.what();
                }
            };

            if (process_mode || net_mode) {
                // Dispatch only the cycles the journal does not already
                // have; workers compute, the supervisor/coordinator
                // retries and quarantines, and every completed outcome
                // is journaled through the same onCycleDone as thread
                // mode.
                std::vector<uint64_t> todo;
                for (uint64_t cycle : engine->injectionCycles(config)) {
                    bool have = false;
                    for (const InjectionCycleOutcome &out :
                         progress.completed) {
                        if (out.cycle == cycle) {
                            have = true;
                            break;
                        }
                    }
                    if (!have)
                        todo.push_back(cycle);
                }

                bool shard_failed = false;
                std::string shard_fail_reason;
                bool shard_stopped = false;
                if (net_mode) {
                    ShardDispatcher::CellResult shard =
                        options.dispatcher->runDavfCell(
                            planned.key.structure, planned.delay, todo,
                            config, progress.onCycleDone);
                    shard_failed = shard.failed;
                    shard_fail_reason = std::move(shard.failReason);
                    shard_stopped = shard.stopped;
                } else {
                    ensure_supervisor();
                    const std::vector<WireId> wires =
                        engine->sampledWires(*planned.structure, config);

                    Supervisor::DavfCellResult shard =
                        supervisor->runDavfCell(
                            planned.key.structure, planned.delay, todo,
                            wires, config, knownQuarantine,
                            progress.onCycleDone);
                    for (QuarantineRecord &record : shard.quarantined) {
                        knownQuarantine.push_back(record);
                        summary.quarantined.push_back(std::move(record));
                    }
                    shard_failed = shard.failed;
                    shard_fail_reason = std::move(shard.failReason);
                    shard_stopped = shard.stopped;
                }

                if (shard_stopped) {
                    summary.interrupted = true;
                    save();
                    flushCsv(summary);
                    break;
                }
                if (shard_failed) {
                    cell.failed = true;
                    cell.failReason = shard_fail_reason;
                } else {
                    // Every outcome is in the journal now; the engine
                    // call only aggregates (no cycle is re-simulated),
                    // which keeps process mode bit-identical to thread
                    // mode at any worker count.
                    DelayAvfProgress completed;
                    if (journal.hasPartial
                        && journal.partialKey == planned.key) {
                        completed.completed = journal.partialCycles;
                    }
                    aggregate(&completed);
                }
            } else {
                aggregate(&progress);

                if (!cell.failed && cell.davf.stopped) {
                    // Partial cycles are already journaled via
                    // onCycleDone; flush once more for good measure and
                    // stop cleanly.
                    summary.interrupted = true;
                    save();
                    flushCsv(summary);
                    break;
                }
            }
        }

        // The cell is final (completed or failed): promote it to the
        // journal and drop any partial progress it had.
        CheckpointCell record;
        record.key = planned.key;
        record.failed = cell.failed;
        record.failReason = cell.failReason;
        record.davf = cell.davf;
        record.savf = cell.savf;
        journal.cells.push_back(std::move(record));
        if (journal.hasPartial && journal.partialKey == planned.key) {
            journal.hasPartial = false;
            journal.partialCycles.clear();
        }

        if (cell.failed) {
            ++summary.cellsFailed;
            campaignMetrics().cellsFailed.add(1);
        }
        ++summary.cellsComputed;
        campaignMetrics().cellsComputed.add(1);
        summary.cells.push_back(std::move(cell));

        save();
        flushCsv(summary);
    }

    flushCsv(summary);
    return summary;
}

} // namespace davf
