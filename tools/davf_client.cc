/**
 * @file
 * Client for the davf_serve query service (see docs/SERVICE.md).
 *
 * Sends one query (or one stats request) over the server's Unix-domain
 * socket and prints the reply body — a single line of report JSON that
 * is byte-identical to what `davf_run --json` prints for the same
 * query when the server computes (or has cached) the same workspace.
 *
 * Usage:
 *   davf_client --socket PATH [options]
 *     --socket PATH        server socket (required)
 *     --stats              request server statistics instead of a query
 *                          (pretty-printed; --raw keeps one line)
 *     --raw                print the reply body exactly as received
 *     --benchmark NAME     workload (default libstrstr)
 *     --ecc                query the ECC-regfile workspace
 *     --sta-period         query the STA-clock workspace
 *     --structure NAME     structure (default ALU)
 *     --delays LO:HI:STEP  delay fractions (default 0.1:0.9:0.2)
 *     --savf               also request particle-strike sAVF
 *     --attribution        request per-instruction root-cause
 *                          attribution; davf rows in the reply gain an
 *                          "attribution" array (docs/ANALYSIS.md)
 *     --cycles N           injection cycles (default 8)
 *     --wires N            wire sample, 0 = all (default 400)
 *     --flops N            flop sample for sAVF, 0 = all (default 96)
 *     --seed N             sampling seed (default 1)
 *     --timeout-ms X       per-injection wall-clock budget (0 = none)
 *     --max-failure-rate X abandon a cell past this failure fraction
 *                          (default 0.05)
 *     --connect-retries N  extra connect attempts with exponential
 *                          backoff (default 0) — rides out a server
 *                          that is still building its workspace
 *     --backoff-ms X       base of the connect backoff (default 200)
 *     --connect-timeout-ms X  overall budget for establishing the
 *                          connection across all attempts, 0 = none
 *                          (default 0)
 *
 * Exit status: 0 on an ok reply, 1 on a server-reported error. The
 * round-trip wall time is printed to stderr.
 */

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "service/protocol.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/parse.hh"
#include "util/subprocess.hh"

using namespace davf;
using namespace davf::service;

namespace {

struct Options
{
    std::string socket_path;
    bool stats = false;
    bool raw = false;
    QuerySpec query;
    double delay_lo = 0.1;
    double delay_hi = 0.9;
    double delay_step = 0.2;
    unsigned connect_retries = 0;
    double backoff_ms = 200.0;
    double connect_timeout_ms = 0.0;
};

[[noreturn]] void
usageError(const char *argv0, const std::string &detail)
{
    std::fprintf(stderr,
                 "usage: %s --socket PATH [--stats] [--raw] "
                 "[--benchmark N] [--ecc]\n"
                 "          [--sta-period] [--structure N] "
                 "[--delays LO:HI:STEP] [--savf]\n"
                 "          [--attribution]\n"
                 "          [--cycles N] [--wires N] [--flops N] "
                 "[--seed N]\n"
                 "          [--timeout-ms X] [--max-failure-rate X]\n"
                 "          [--connect-retries N] [--backoff-ms X] "
                 "[--connect-timeout-ms X]\n",
                 argv0);
    std::fprintf(stderr, "error: %s\n", detail.c_str());
    std::exit(2);
}

uint64_t
parseU64(const char *argv0, const std::string &flag, const char *text)
{
    try {
        return parseU64Strict(text, flag);
    } catch (const DavfError &error) {
        usageError(argv0, error.what());
    }
}

double
parseDouble(const char *argv0, const std::string &flag, const char *text)
{
    try {
        return parseDoubleStrict(text, flag);
    } catch (const DavfError &error) {
        usageError(argv0, error.what());
    }
}

void
parseDelays(const char *argv0, const char *spec, Options &opts)
{
    const std::string text = spec;
    const size_t first = text.find(':');
    const size_t second =
        first == std::string::npos ? first : text.find(':', first + 1);
    if (first == std::string::npos || second == std::string::npos
        || text.find(':', second + 1) != std::string::npos) {
        usageError(argv0, "--delays expects LO:HI:STEP, got '" + text
                              + "'");
    }
    opts.delay_lo = parseDouble(argv0, "--delays LO",
                                text.substr(0, first).c_str());
    opts.delay_hi = parseDouble(
        argv0, "--delays HI",
        text.substr(first + 1, second - first - 1).c_str());
    opts.delay_step = parseDouble(argv0, "--delays STEP",
                                  text.substr(second + 1).c_str());
    if (opts.delay_lo > opts.delay_hi)
        usageError(argv0, "--delays range is inverted: " + text);
    if (opts.delay_lo < 0.0 || opts.delay_hi > 1.0)
        usageError(argv0, "--delays fractions must lie in [0, 1]: " + text);
    if (!(opts.delay_step > 0.0))
        usageError(argv0, "--delays STEP must be > 0: " + text);
}

Options
parse(int argc, char **argv)
{
    Options opts;
    opts.query.sampling.maxInjectionCycles = 8;
    opts.query.sampling.maxWires = 400;
    opts.query.sampling.maxFlops = 96;
    opts.query.sampling.maxFailureRate = 0.05;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usageError(argv[0], std::string(argv[i]) + " expects a value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket") {
            opts.socket_path = need(i);
        } else if (arg == "--stats") {
            opts.stats = true;
        } else if (arg == "--raw") {
            opts.raw = true;
        } else if (arg == "--benchmark") {
            opts.query.workspace.benchmark = need(i);
        } else if (arg == "--ecc") {
            opts.query.workspace.ecc = true;
        } else if (arg == "--sta-period") {
            opts.query.workspace.staPeriod = true;
        } else if (arg == "--structure") {
            opts.query.structure = need(i);
        } else if (arg == "--delays") {
            parseDelays(argv[0], need(i), opts);
        } else if (arg == "--savf") {
            opts.query.runSavf = true;
        } else if (arg == "--attribution") {
            opts.query.sampling.attribution = true;
        } else if (arg == "--cycles") {
            opts.query.sampling.maxInjectionCycles =
                static_cast<unsigned>(parseU64(argv[0], arg, need(i)));
        } else if (arg == "--wires") {
            opts.query.sampling.maxWires =
                static_cast<size_t>(parseU64(argv[0], arg, need(i)));
        } else if (arg == "--flops") {
            opts.query.sampling.maxFlops =
                static_cast<size_t>(parseU64(argv[0], arg, need(i)));
        } else if (arg == "--seed") {
            opts.query.sampling.seed = parseU64(argv[0], arg, need(i));
        } else if (arg == "--timeout-ms") {
            opts.query.sampling.injectionTimeoutMs =
                parseDouble(argv[0], arg, need(i));
            if (opts.query.sampling.injectionTimeoutMs < 0.0)
                usageError(argv[0], "--timeout-ms must be >= 0");
        } else if (arg == "--max-failure-rate") {
            opts.query.sampling.maxFailureRate =
                parseDouble(argv[0], arg, need(i));
            if (opts.query.sampling.maxFailureRate < 0.0
                || opts.query.sampling.maxFailureRate > 1.0) {
                usageError(argv[0],
                           "--max-failure-rate must lie in [0, 1]");
            }
        } else if (arg == "--connect-retries") {
            opts.connect_retries =
                static_cast<unsigned>(parseU64(argv[0], arg, need(i)));
        } else if (arg == "--backoff-ms") {
            opts.backoff_ms = parseDouble(argv[0], arg, need(i));
            if (opts.backoff_ms < 0.0)
                usageError(argv[0], "--backoff-ms must be >= 0");
        } else if (arg == "--connect-timeout-ms") {
            opts.connect_timeout_ms = parseDouble(argv[0], arg, need(i));
            if (opts.connect_timeout_ms < 0.0)
                usageError(argv[0], "--connect-timeout-ms must be >= 0");
        } else {
            usageError(argv[0], "unknown flag '" + arg + "'");
        }
    }
    if (opts.socket_path.empty())
        usageError(argv[0], "--socket is required");

    // The same range expansion davf_run uses, so a query names the
    // exact delay values a CLI sweep would evaluate.
    for (double d = opts.delay_lo; d <= opts.delay_hi + 1e-9;
         d += opts.delay_step) {
        opts.query.delays.push_back(d);
    }
    return opts;
}

/**
 * connectUnix with up to @p retries extra attempts, backing off
 * exponentially, under one overall deadline. A client launched while
 * the server is still building its workspace (the socket file does not
 * exist yet) waits for it instead of failing on the first attempt.
 */
int
connectWithRetry(const Options &opts)
{
    const auto start = std::chrono::steady_clock::now();
    auto elapsed_ms = [&] {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };
    for (unsigned attempt = 0;; ++attempt) {
        try {
            return connectUnix(opts.socket_path);
        } catch (const DavfError &error) {
            if (attempt >= opts.connect_retries)
                throw;
            double delay_ms = opts.backoff_ms
                * static_cast<double>(1u << std::min(attempt, 10u));
            if (opts.connect_timeout_ms > 0.0) {
                const double remaining =
                    opts.connect_timeout_ms - elapsed_ms();
                if (remaining <= 0.0) {
                    davf_throw(ErrorKind::Timeout,
                               "could not connect to '",
                               opts.socket_path, "' within ",
                               opts.connect_timeout_ms,
                               " ms: ", error.what());
                }
                delay_ms = std::min(delay_ms, remaining);
            }
            std::fprintf(stderr,
                         "connect attempt %u failed (%s); retrying in "
                         "%.0f ms\n",
                         attempt + 1, error.what(), delay_ms);
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(delay_ms));
        }
    }
}

int
runTool(int argc, char **argv)
{
    const Options opts = parse(argc, argv);

    // A server that dies mid-exchange must surface as EPIPE on our
    // write, not a process-killing SIGPIPE.
    ::signal(SIGPIPE, SIG_IGN);

    const int fd = connectWithRetry(opts);
    const auto start = std::chrono::steady_clock::now();
    writeFrameFd(fd, opts.stats ? std::string("stats")
                                : makeQueryFrame(opts.query));

    std::string payload;
    if (!readFrameFd(fd, payload)) {
        ::close(fd);
        davf_throw(ErrorKind::Io,
                   "server closed the connection before replying");
    }
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    ::close(fd);

    Result<ServerReply> reply = parseServerReply(payload);
    if (!reply)
        throw reply.error();
    std::fprintf(stderr, "reply in %.1f ms\n", elapsed_ms);
    if (!reply.value().ok) {
        std::fprintf(stderr, "server error [%s]: %s\n",
                     reply.value().errorKind.c_str(),
                     reply.value().message.c_str());
        return 1;
    }
    if (opts.stats && !opts.raw) {
        // Stats replies are for human eyes by default; --raw restores
        // the single-line reply for scripts. Query replies are never
        // reformatted — their byte-identity to `davf_run --json` is a
        // service guarantee.
        std::printf("%s\n", jsonPretty(reply.value().body).c_str());
    } else {
        std::printf("%s\n", reply.value().body.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return guardedMain([&] { return runTool(argc, argv); });
}
