/**
 * @file
 * Command-line front end for DelayAVF analyses — the equivalent of the
 * paper artifact's `run_all.sh` + configuration-json workflow (paper
 * appendix E): pick a benchmark/payload, a structure, a delay range,
 * sampling rates, and the ECC switch, and get DelayAVF / OrDelayAVF /
 * sAVF rows on stdout or as CSV.
 *
 * Sweeps run through the resilient campaign layer (src/campaign/):
 * SIGINT/SIGTERM stop cooperatively between injections after flushing
 * the journal and CSV, `--checkpoint` journals progress after every
 * injection cycle, and `--resume` continues an interrupted sweep with
 * bit-identical aggregate results (see docs/ROBUSTNESS.md).
 *
 * Usage:
 *   davf_run [options]
 *     --benchmark NAME     md5|bubblesort|libstrstr|libfibcall|matmult|
 *                          crc32|popcount              (default libstrstr)
 *     --structure NAME     ALU|Decoder|Regfile|LSU|Prefetch (default ALU)
 *     --delays LO:HI:STEP  delay fractions of the period, 0 <= LO <= HI
 *                          <= 1, STEP > 0 (default 0.1:0.9:0.2)
 *     --ecc                protect the register file with SEC ECC
 *     --cycles N           injection cycles (default 8)
 *     --wires N            wire sample per structure, 0 = all (default 400)
 *     --flops N            flop sample for sAVF, 0 = all (default 96)
 *     --seed N             sampling seed (default 1)
 *     --threads N          worker threads, 0 = all cores (default 0)
 *     --no-vector          run faulty continuations one at a time on the
 *                          scalar simulator instead of the 64-lane
 *                          bit-parallel path (results are bit-identical;
 *                          see docs/PERFORMANCE.md)
 *     --vector-lanes N     lanes per vector batch, 2..64 (default 64)
 *     --no-vector-tsim     re-simulate faulted cones one wire at a time
 *                          instead of in lane-parallel batches
 *     --tsim-lanes N       lanes per timed-simulator batch, 1..64
 *                          (default 64; 1 forces scalar)
 *     --savf               also run particle-strike sAVF on the structure
 *     --attribution        per-instruction root-cause attribution: tag
 *                          every injection with the in-flight
 *                          instruction and walk each ACE outcome
 *                          forward to the first architecturally-
 *                          corrupted instruction (docs/ANALYSIS.md);
 *                          adds an attribution table to the text
 *                          report, an "attribution" array to --json
 *                          rows, and a FILE.attr sibling to --csv
 *     --sta-period         use the STA longest path as the clock (default:
 *                          observed-max timing-closure emulation)
 *     --json               print the structured report (core/report
 *                          reportJson) instead of the human tables; the
 *                          line is byte-identical to a davf_serve reply
 *                          for the same query
 *     --csv FILE           write results as CSV (atomic rewrite)
 *     --checkpoint FILE    journal campaign progress to FILE
 *     --resume FILE        resume the campaign journaled in FILE
 *     --timeout-ms X       wall-clock budget per injection (0 = none)
 *     --max-failure-rate X abandon a cell if > X of injections fail
 *                          (default 0.05)
 *     --isolate MODE       thread (default), process, or net:
 *                            process — run injection cycles in
 *                          supervised worker processes that are
 *                          respawned on crash/hang/OOM, with retry,
 *                          crash bisection, and quarantine (see
 *                          docs/ROBUSTNESS.md);
 *                            net — dispatch shards to davf_worker
 *                          nodes over TCP with heartbeats, retry,
 *                          node quarantine, and graceful local
 *                          fallback (see docs/DISTRIBUTED.md)
 *     --workers N          worker processes for --isolate process
 *                          (default 1)
 *     --listen HOST:PORT   coordinator bind address for --isolate net
 *                          (default 127.0.0.1:0 — an ephemeral port)
 *     --port-file FILE     write the resolved listen port to FILE
 *                          (atomic), so scripts can start workers
 *     --min-nodes N        wait for N connected nodes before starting
 *                          the sweep (default 1; 0 starts immediately)
 *     --node-wait-ms X     how long to wait for --min-nodes before
 *                          proceeding with whatever connected
 *                          (default 30000)
 *     --store-dir D        content-addressed result store shared as a
 *                          cache tier: shards found there are not
 *                          recomputed, fresh ones are written back
 *     --max-retries N      re-dispatches per shard after a failure
 *                          (default 2)
 *     --backoff-ms X       base of the exponential retry backoff
 *                          (default 50)
 *     --worker-mem-mb N    RLIMIT_AS cap per worker in MiB, 0 = none
 *                          (default 0; incompatible with ASan)
 *     --shard-timeout-ms X wall-clock budget per shard attempt, 0 = none
 *     --quarantine-dir D   persist quarantine records (one file per
 *                          isolated injection) under D
 *     --shard-metrics-csv F  append per-attempt wall/RSS/CPU metrics
 *     --metrics-json FILE  enable metric collection and write the
 *                          registry snapshot (davf-metrics v1 JSON) to
 *                          FILE after the run (see docs/OBSERVABILITY.md)
 *     --trace-json FILE    enable span tracing and write a Chrome
 *                          trace_event JSON to FILE after the run (open
 *                          in chrome://tracing or ui.perfetto.dev)
 *     --list               list benchmarks and structures, then exit
 *
 * The hidden --worker-shard flag turns the process into a campaign
 * worker serving shards over stdin/stdout; it is appended automatically
 * when the supervisor re-executes this binary.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <memory>

#include "campaign/campaign.hh"
#include "campaign/stop.hh"
#include "campaign/supervisor.hh"
#include "core/report.hh"
#include "core/vulnerability.hh"
#include "isa/benchmarks.hh"
#include "net/coordinator.hh"
#include "net/frame.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "service/result_store.hh"
#include "service/scheduler.hh"
#include "service/workspace.hh"
#include "util/atomic_file.hh"
#include "util/logging.hh"
#include "util/parse.hh"

using namespace davf;

namespace {

struct Options
{
    std::string benchmark = "libstrstr";
    std::string structure = "ALU";
    double delay_lo = 0.1;
    double delay_hi = 0.9;
    double delay_step = 0.2;
    bool ecc = false;
    bool run_savf = false;
    bool sta_period = false;
    bool json = false;
    SamplingConfig sampling;
    bool no_vector = false;
    unsigned vector_lanes = 64;
    bool no_vector_tsim = false;
    unsigned tsim_lanes = 64;
    double timeout_ms = 0.0;
    double max_failure_rate = 0.05;
    std::string csv_path;
    std::string checkpoint_path;
    bool resume = false;

    bool isolate_process = false;
    bool isolate_net = false;
    std::string listen = "127.0.0.1:0";
    std::string port_file;
    size_t min_nodes = 1;
    double node_wait_ms = 30000.0;
    std::string store_dir;
    service::StoreFormat store_format = service::StoreFormat::Auto;
    unsigned workers = 1;
    unsigned max_retries = 2;
    double backoff_ms = 50.0;
    uint64_t worker_mem_mb = 0;
    double shard_timeout_ms = 0.0;
    std::string quarantine_dir;
    std::string shard_metrics_csv;
    std::string metrics_json_path;
    std::string trace_json_path;
    bool worker_shard = false; ///< Hidden: serve shards over stdio.
};

void
printUsage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--benchmark N] [--structure N] "
                 "[--delays LO:HI:STEP]\n"
                 "          [--ecc] [--cycles N] [--wires N] [--flops N]"
                 " [--seed N]\n"
                 "          [--threads N] [--no-vector] "
                 "[--vector-lanes N] [--savf]\n"
                 "          [--no-vector-tsim] [--tsim-lanes N] "
                 "[--attribution]\n"
                 "          [--sta-period] "
                 "[--json] [--csv FILE]\n"
                 "          [--checkpoint FILE] [--resume FILE] "
                 "[--timeout-ms X]\n"
                 "          [--max-failure-rate X] "
                 "[--isolate thread|process|net] [--workers N]\n"
                 "          [--listen HOST:PORT] [--port-file FILE] "
                 "[--min-nodes N]\n"
                 "          [--node-wait-ms X] [--store-dir D] "
                 "[--store-format auto|legacy|index]\n"
                 "          [--max-retries N] [--backoff-ms X] "
                 "[--worker-mem-mb N]\n"
                 "          [--shard-timeout-ms X] [--quarantine-dir D]\n"
                 "          [--shard-metrics-csv FILE]\n"
                 "          [--metrics-json FILE] [--trace-json FILE] "
                 "[--list]\n",
                 argv0);
}

/** Reject the run: usage + the offending flag/value, exit nonzero. */
[[noreturn]] void
usageError(const char *argv0, const std::string &detail)
{
    printUsage(argv0);
    std::fprintf(stderr, "error: %s\n", detail.c_str());
    std::exit(2);
}

uint64_t
parseU64(const char *argv0, const std::string &flag, const char *text)
{
    try {
        return parseU64Strict(text, flag);
    } catch (const DavfError &error) {
        usageError(argv0, error.what());
    }
}

double
parseDouble(const char *argv0, const std::string &flag, const char *text)
{
    try {
        return parseDoubleStrict(text, flag);
    } catch (const DavfError &error) {
        usageError(argv0, error.what());
    }
}

void
parseDelays(const char *argv0, const char *spec, Options &opts)
{
    const std::string text = spec;
    const size_t first = text.find(':');
    const size_t second =
        first == std::string::npos ? first : text.find(':', first + 1);
    if (first == std::string::npos || second == std::string::npos
        || text.find(':', second + 1) != std::string::npos) {
        usageError(argv0, "--delays expects LO:HI:STEP, got '" + text
                              + "'");
    }
    opts.delay_lo = parseDouble(argv0, "--delays LO",
                                text.substr(0, first).c_str());
    opts.delay_hi = parseDouble(
        argv0, "--delays HI",
        text.substr(first + 1, second - first - 1).c_str());
    opts.delay_step =
        parseDouble(argv0, "--delays STEP",
                    text.substr(second + 1).c_str());
    if (opts.delay_lo > opts.delay_hi) {
        usageError(argv0, "--delays range is inverted: " + text);
    }
    if (opts.delay_lo < 0.0 || opts.delay_hi > 1.0) {
        usageError(argv0,
                   "--delays fractions must lie in [0, 1]: " + text);
    }
    if (!(opts.delay_step > 0.0)) {
        usageError(argv0, "--delays STEP must be > 0: " + text);
    }
}

bool
knownBenchmark(const std::string &name)
{
    for (const auto &program : beebsBenchmarks()) {
        if (program.name == name)
            return true;
    }
    for (const auto &program : extraBenchmarks()) {
        if (program.name == name)
            return true;
    }
    return false;
}

Options
parse(int argc, char **argv)
{
    Options opts;
    opts.sampling.maxInjectionCycles = 8;
    opts.sampling.maxWires = 400;
    opts.sampling.maxFlops = 96;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            usageError(argv[0], std::string(argv[i])
                                    + " expects a value");
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--benchmark") {
            opts.benchmark = need(i);
        } else if (arg == "--structure") {
            opts.structure = need(i);
        } else if (arg == "--delays") {
            parseDelays(argv[0], need(i), opts);
        } else if (arg == "--ecc") {
            opts.ecc = true;
        } else if (arg == "--savf") {
            opts.run_savf = true;
        } else if (arg == "--attribution") {
            opts.sampling.attribution = true;
        } else if (arg == "--sta-period") {
            opts.sta_period = true;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--cycles") {
            opts.sampling.maxInjectionCycles =
                static_cast<unsigned>(parseU64(argv[0], arg, need(i)));
        } else if (arg == "--wires") {
            opts.sampling.maxWires =
                static_cast<size_t>(parseU64(argv[0], arg, need(i)));
        } else if (arg == "--flops") {
            opts.sampling.maxFlops =
                static_cast<size_t>(parseU64(argv[0], arg, need(i)));
        } else if (arg == "--seed") {
            opts.sampling.seed = parseU64(argv[0], arg, need(i));
        } else if (arg == "--threads") {
            opts.sampling.threads =
                static_cast<unsigned>(parseU64(argv[0], arg, need(i)));
        } else if (arg == "--no-vector") {
            opts.no_vector = true;
        } else if (arg == "--no-vector-tsim") {
            opts.no_vector_tsim = true;
        } else if (arg == "--tsim-lanes") {
            opts.tsim_lanes =
                static_cast<unsigned>(parseU64(argv[0], arg, need(i)));
            if (opts.tsim_lanes < 1 || opts.tsim_lanes > 64)
                usageError(argv[0], "--tsim-lanes must lie in [1, 64]");
        } else if (arg == "--vector-lanes") {
            opts.vector_lanes =
                static_cast<unsigned>(parseU64(argv[0], arg, need(i)));
            if (opts.vector_lanes < 2 || opts.vector_lanes > 64)
                usageError(argv[0], "--vector-lanes must lie in [2, 64]");
        } else if (arg == "--csv") {
            opts.csv_path = need(i);
        } else if (arg == "--checkpoint") {
            opts.checkpoint_path = need(i);
        } else if (arg == "--resume") {
            opts.checkpoint_path = need(i);
            opts.resume = true;
        } else if (arg == "--timeout-ms") {
            opts.timeout_ms = parseDouble(argv[0], arg, need(i));
            if (opts.timeout_ms < 0.0)
                usageError(argv[0], "--timeout-ms must be >= 0");
        } else if (arg == "--max-failure-rate") {
            opts.max_failure_rate =
                parseDouble(argv[0], arg, need(i));
            if (opts.max_failure_rate < 0.0
                || opts.max_failure_rate > 1.0) {
                usageError(argv[0],
                           "--max-failure-rate must lie in [0, 1]");
            }
        } else if (arg == "--isolate") {
            const std::string mode = need(i);
            opts.isolate_process = mode == "process";
            opts.isolate_net = mode == "net";
            if (!opts.isolate_process && !opts.isolate_net
                && mode != "thread") {
                usageError(argv[0],
                           "--isolate expects 'thread', 'process', or "
                           "'net', got '" + mode + "'");
            }
        } else if (arg == "--listen") {
            opts.listen = need(i);
        } else if (arg == "--port-file") {
            opts.port_file = need(i);
        } else if (arg == "--min-nodes") {
            opts.min_nodes =
                static_cast<size_t>(parseU64(argv[0], arg, need(i)));
        } else if (arg == "--node-wait-ms") {
            opts.node_wait_ms = parseDouble(argv[0], arg, need(i));
            if (opts.node_wait_ms < 0.0)
                usageError(argv[0], "--node-wait-ms must be >= 0");
        } else if (arg == "--store-dir") {
            opts.store_dir = need(i);
        } else if (arg == "--store-format") {
            const std::string value = need(i);
            const auto format = service::parseStoreFormat(value);
            if (!format) {
                usageError(argv[0],
                           "--store-format expects auto, legacy, or "
                           "index, got '" + value + "'");
            }
            opts.store_format = *format;
        } else if (arg == "--workers") {
            opts.workers =
                static_cast<unsigned>(parseU64(argv[0], arg, need(i)));
            if (opts.workers == 0)
                usageError(argv[0], "--workers must be >= 1");
        } else if (arg == "--max-retries") {
            opts.max_retries =
                static_cast<unsigned>(parseU64(argv[0], arg, need(i)));
        } else if (arg == "--backoff-ms") {
            opts.backoff_ms = parseDouble(argv[0], arg, need(i));
            if (opts.backoff_ms < 0.0)
                usageError(argv[0], "--backoff-ms must be >= 0");
        } else if (arg == "--worker-mem-mb") {
            opts.worker_mem_mb = parseU64(argv[0], arg, need(i));
        } else if (arg == "--shard-timeout-ms") {
            opts.shard_timeout_ms = parseDouble(argv[0], arg, need(i));
            if (opts.shard_timeout_ms < 0.0)
                usageError(argv[0], "--shard-timeout-ms must be >= 0");
        } else if (arg == "--quarantine-dir") {
            opts.quarantine_dir = need(i);
        } else if (arg == "--shard-metrics-csv") {
            opts.shard_metrics_csv = need(i);
        } else if (arg == "--metrics-json") {
            opts.metrics_json_path = need(i);
        } else if (arg == "--trace-json") {
            opts.trace_json_path = need(i);
        } else if (arg == "--worker-shard") {
            opts.worker_shard = true;
        } else if (arg == "--list") {
            std::printf("benchmarks:");
            for (const auto &program : beebsBenchmarks())
                std::printf(" %s", program.name.c_str());
            for (const auto &program : extraBenchmarks())
                std::printf(" %s", program.name.c_str());
            std::printf("\nstructures: ALU Decoder Regfile LSU "
                        "Prefetch\n");
            std::exit(0);
        } else {
            usageError(argv[0], "unknown flag '" + arg + "'");
        }
    }

    if (!knownBenchmark(opts.benchmark)) {
        usageError(argv[0],
                   "--benchmark: unknown benchmark '" + opts.benchmark
                       + "' (try --list)");
    }
    return opts;
}

/**
 * Export the metric snapshot / Chrome trace requested on the command
 * line. Called once, after the campaign completes (on every exit path,
 * including interrupted and partially-failed runs — a cancelled sweep's
 * phase profile is exactly when you want the numbers).
 */
void
exportObservability(const Options &opts)
{
    if (!opts.metrics_json_path.empty()) {
        writeFileAtomic(opts.metrics_json_path,
                        obs::MetricsRegistry::instance().snapshot()
                                .toJson()
                            + "\n");
        std::fprintf(stderr, "metrics snapshot written to '%s'\n",
                     opts.metrics_json_path.c_str());
    }
    if (!opts.trace_json_path.empty()) {
        writeFileAtomic(opts.trace_json_path,
                        obs::Trace::toChromeJson() + "\n");
        std::fprintf(stderr, "chrome trace written to '%s'\n",
                     opts.trace_json_path.c_str());
    }
}

int
runTool(int argc, char **argv)
{
    const Options opts = parse(argc, argv);

    // Observability is opt-in per run: metric collection (cheap striped
    // counters) whenever either export is requested, span tracing only
    // when a trace file is. Worker-shard processes inherit the flags
    // via the forwarded argv but exit before the export — under
    // --isolate process the engine-phase counters live in the workers
    // (docs/OBSERVABILITY.md).
    if (!opts.metrics_json_path.empty() || !opts.trace_json_path.empty())
        obs::MetricsRegistry::setEnabled(true);
    if (!opts.trace_json_path.empty())
        obs::Trace::setEnabled(true);

    // The shared Workspace loader performs the whole expensive setup —
    // assemble, SoC build, golden capture — identically to davf_serve
    // and the bench harnesses (see src/service/workspace.hh).
    service::WorkspaceSpec ws_spec;
    ws_spec.benchmark = opts.benchmark;
    ws_spec.ecc = opts.ecc;
    ws_spec.staPeriod = opts.sta_period;
    std::fprintf(stderr, "building IbexMini (%s regfile), assembling "
                 "%s, running golden capture...\n",
                 opts.ecc ? "ECC" : "plain", opts.benchmark.c_str());
    service::Workspace workspace(ws_spec);

    if (!workspace.structures().find(opts.structure)) {
        usageError(argv[0], "--structure: unknown structure '"
                                + opts.structure + "' (try --list)");
    }

    VulnerabilityEngine &engine = workspace.engine();
    std::fprintf(stderr,
                 "golden: %llu cycles, clock period %.1f ps\n\n",
                 static_cast<unsigned long long>(engine.goldenCycles()),
                 engine.clockPeriod());

    // The vector/scalar switch applies to every execution mode,
    // including worker shards (the supervisor forwards our argv, so
    // workers parse the same flags).
    engine.setVectorMode(!opts.no_vector, opts.vector_lanes);
    engine.setTsimVectorMode(!opts.no_vector_tsim, opts.tsim_lanes);

    // Hidden worker mode: same engine build as above, then serve shard
    // requests from the supervising campaign over stdin/stdout.
    if (opts.worker_shard)
        return runCampaignWorker(engine, workspace.structures());

    CampaignOptions campaign_options;
    campaign_options.benchmark = opts.benchmark;
    campaign_options.structures = {opts.structure};
    for (double d = opts.delay_lo; d <= opts.delay_hi + 1e-9;
         d += opts.delay_step) {
        campaign_options.delays.push_back(d);
    }
    campaign_options.runSavf = opts.run_savf;
    campaign_options.sampling = opts.sampling;
    campaign_options.vectorize = !opts.no_vector;
    campaign_options.vectorLanes = opts.vector_lanes;
    campaign_options.vectorTsim = !opts.no_vector_tsim;
    campaign_options.tsimLanes = opts.tsim_lanes;
    campaign_options.injectionTimeoutMs = opts.timeout_ms;
    campaign_options.maxFailureRate = opts.max_failure_rate;
    campaign_options.checkpointPath = opts.checkpoint_path;
    campaign_options.resume = opts.resume;
    campaign_options.csvPath = opts.csv_path;
    campaign_options.structureLabel = opts.ecc ? " (ECC)" : "";
    campaign_options.stopFlag = &installStopHandlers();

    // Net mode: bind the coordinator, publish the port, give the fleet
    // a chance to assemble, and hand the dispatcher to the campaign.
    // Aggregation still runs through the same journal path, so the
    // report is byte-identical to a thread-mode run.
    std::unique_ptr<net::Coordinator> coordinator;
    std::unique_ptr<service::ResultStore> net_store;
    if (opts.isolate_net) {
        campaign_options.isolate = IsolationMode::Net;

        std::string host;
        uint16_t port = 0;
        net::parseHostPort(opts.listen, host, port);
        net::ListenSocket listener = net::listenTcp(host, port);
        if (!opts.port_file.empty()) {
            writeFileAtomic(opts.port_file,
                            std::to_string(listener.port) + "\n");
        }
        std::fprintf(stderr, "coordinator listening on %s:%u\n",
                     host.c_str(), listener.port);

        net::CoordinatorOptions net_options;
        net_options.fingerprint = workspace.fingerprint();
        net_options.maxRetries = opts.max_retries;
        net_options.backoffBaseMs = opts.backoff_ms;
        net_options.shardTimeoutMs = opts.shard_timeout_ms;
        net_options.seed = opts.sampling.seed;
        net_options.stopFlag = campaign_options.stopFlag;
        net_options.localCycle =
            [&workspace, &engine](const ShardSpec &spec) {
                const Structure *structure =
                    workspace.structures().find(spec.structure);
                davf_assert(structure != nullptr,
                            "local fallback: unknown structure");
                return engine.delayAvfCycle(
                    *structure, spec.delayFraction, spec.cycle,
                    spec.sampling, spec.wireBegin, spec.wireEnd,
                    spec.quarantined);
            };
        net_options.localSavf =
            [&workspace, &engine](const ShardSpec &spec) {
                const Structure *structure =
                    workspace.structures().find(spec.structure);
                davf_assert(structure != nullptr,
                            "local fallback: unknown structure");
                return engine.savf(*structure, spec.sampling);
            };
        if (!opts.store_dir.empty()) {
            service::ResultStore::Options store_options;
            store_options.dir = opts.store_dir;
            store_options.format = opts.store_format;
            net_store = std::make_unique<service::ResultStore>(
                store_options);
            const std::string fingerprint = workspace.fingerprint();
            net_options.cacheLookup =
                [&store = *net_store, fingerprint](const ShardSpec &spec)
                -> std::optional<std::string> {
                return store.lookup(
                    service::shardStoreKey(fingerprint, spec));
            };
            net_options.cacheStore =
                [&store = *net_store, fingerprint](
                    const ShardSpec &spec, const std::string &payload) {
                    store.store(
                        service::shardStoreKey(fingerprint, spec),
                        payload);
                };
        }

        coordinator = std::make_unique<net::Coordinator>(
            listener, std::move(net_options));
        if (opts.min_nodes > 0) {
            const size_t nodes = coordinator->waitForNodes(
                opts.min_nodes, opts.node_wait_ms);
            std::fprintf(stderr, "%zu node(s) connected\n", nodes);
            if (nodes < opts.min_nodes) {
                std::fprintf(stderr,
                             "proceeding anyway; missing shards run "
                             "locally\n");
            }
        }
        campaign_options.dispatcher = coordinator.get();
    }

    if (opts.isolate_process) {
        campaign_options.isolate = IsolationMode::Process;
        SupervisorOptions &sup = campaign_options.supervisor;
        // Workers re-execute this binary with the same arguments (so
        // they build the same engine) plus the hidden worker flag.
        sup.workerArgv.push_back(Subprocess::selfExePath());
        for (int i = 1; i < argc; ++i)
            sup.workerArgv.push_back(argv[i]);
        sup.workerArgv.push_back("--worker-shard");
        sup.workers = opts.workers;
        sup.maxRetries = opts.max_retries;
        sup.backoffBaseMs = opts.backoff_ms;
        sup.workerMemMb = opts.worker_mem_mb;
        sup.shardTimeoutMs = opts.shard_timeout_ms;
        sup.quarantineDir = opts.quarantine_dir;
        sup.metricsCsvPath = opts.shard_metrics_csv;
    }

    Campaign campaign(engine, workspace.structures(), campaign_options);
    const CampaignSummary summary = campaign.run();

    // Release the fleet before exporting metrics, so the shutdown
    // drain (and its counters) land in the snapshot.
    if (coordinator)
        coordinator->shutdown();

    exportObservability(opts);

    if (opts.json) {
        // The structured report: the same rows, in the same order, as a
        // davf_serve reply for this query (davf rows per delay, then
        // the sAVF row), so the two outputs compare byte-for-byte.
        std::vector<ReportRow> rows;
        for (const CampaignCellResult &cell : summary.cells) {
            if (cell.key.kind != "davf" || cell.failed)
                continue;
            ReportRow row;
            row.kind = "davf";
            row.benchmark = opts.benchmark;
            row.structure =
                opts.structure + campaign_options.structureLabel;
            row.delayFraction = cell.delay;
            row.davf = cell.davf;
            rows.push_back(std::move(row));
        }
        for (const CampaignCellResult &cell : summary.cells) {
            if (cell.key.kind != "savf" || cell.failed)
                continue;
            ReportRow row;
            row.kind = "savf";
            row.benchmark = opts.benchmark;
            row.structure =
                opts.structure + campaign_options.structureLabel;
            row.savf = cell.savf;
            rows.push_back(std::move(row));
        }
        std::printf("%s\n", reportJson(rows).c_str());
        if (summary.interrupted)
            return 130;
        return summary.cellsFailed > 0 ? 3 : 0;
    }

    std::printf("%-8s%12s%12s%10s%10s%8s%8s%9s\n", "d", "DelayAVF",
                "OrDelayAVF", "static", "dynamic", "SDC", "DUE",
                "skipped");
    for (const CampaignCellResult &cell : summary.cells) {
        if (cell.key.kind != "davf")
            continue;
        if (cell.failed) {
            std::printf("%-8.2f  [failed: %s]\n", cell.delay,
                        cell.failReason.c_str());
            continue;
        }
        const DelayAvfResult &result = cell.davf;
        std::printf("%-8.2f%12.5f%12.5f%10.3f%10.3f%8llu%8llu%9llu%s\n",
                    cell.delay, result.delayAvf, result.orDelayAvf,
                    result.staticWireFraction,
                    result.dynamicWireFraction,
                    static_cast<unsigned long long>(result.sdc),
                    static_cast<unsigned long long>(result.due),
                    static_cast<unsigned long long>(
                        result.skippedErrors),
                    cell.fromCheckpoint ? "  (resumed)" : "");
    }

    for (const CampaignCellResult &cell : summary.cells) {
        if (cell.key.kind != "davf" || cell.failed
            || !cell.davf.attrValid) {
            continue;
        }
        std::printf("\nattribution (d=%.2f): injection site -> first "
                    "corruption\n", cell.delay);
        std::printf("%-12s%-22s%12s%12s%12s\n", "pc", "instruction",
                    "injections", "delay-ace", "corrupted");
        for (const DelayAvfResult::AttrRow &row : cell.davf.attribution) {
            std::printf("0x%08llx  %-22s%12llu%12llu%12llu\n",
                        static_cast<unsigned long long>(row.pc),
                        row.mnemonic.c_str(),
                        static_cast<unsigned long long>(row.injections),
                        static_cast<unsigned long long>(row.delayAce),
                        static_cast<unsigned long long>(
                            row.firstCorruptions));
            for (const auto &[dest, count] : row.destinations) {
                std::printf("%-12s  -> %s: %llu\n", "",
                            dest.c_str(),
                            static_cast<unsigned long long>(count));
            }
        }
    }

    for (const CampaignCellResult &cell : summary.cells) {
        if (cell.key.kind != "savf" || cell.failed)
            continue;
        const SavfResult &savf = cell.savf;
        if (savf.injections == 0) {
            std::printf("\nsAVF: structure has no flops\n");
            continue;
        }
        std::printf("\nsAVF = %.5f (%llu/%llu ACE; SDC %llu, "
                    "DUE %llu)%s\n",
                    savf.savf,
                    static_cast<unsigned long long>(savf.aceInjections),
                    static_cast<unsigned long long>(savf.injections),
                    static_cast<unsigned long long>(savf.sdc),
                    static_cast<unsigned long long>(savf.due),
                    cell.fromCheckpoint ? "  (resumed)" : "");
    }

    if (!summary.quarantined.empty()) {
        std::fprintf(stderr, "\n%zu injection(s) quarantined this run:\n",
                     summary.quarantined.size());
        for (const QuarantineRecord &record : summary.quarantined) {
            std::fprintf(stderr, "  %s\n",
                         serializeQuarantineRecord(record).c_str());
        }
    }

    if (summary.interrupted) {
        std::fprintf(stderr,
                     "\ninterrupted: progress %s; rerun with --resume "
                     "to continue\n",
                     opts.checkpoint_path.empty()
                         ? "not journaled (no --checkpoint)"
                         : ("saved to '" + opts.checkpoint_path + "'")
                               .c_str());
        return 130;
    }
    return summary.cellsFailed > 0 ? 3 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return guardedMain([&] { return runTool(argc, argv); });
}
