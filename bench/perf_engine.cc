/**
 * @file
 * google-benchmark microbenchmarks for the analysis engine itself:
 * cycle-simulation throughput on the full core, single-cycle
 * timing-aware simulation, per-wire cone re-simulation, STA
 * statically-reachable queries, and snapshot/restore — the primitives
 * whose costs the two-step method (§V-B/V-C) is designed around.
 */

#include <benchmark/benchmark.h>

#include "isa/assembler.hh"
#include "isa/benchmarks.hh"
#include "soc/ibex_mini.hh"
#include "soc/soc_workload.hh"
#include "core/vulnerability.hh"

using namespace davf;

namespace {

/** Shared fixture: the core running libstrstr. */
struct Rig
{
    IbexMini soc;
    DelayModel delays;
    Sta sta;
    TimedSimulator tsim;

    Rig()
        : soc({}, assemble(beebsBenchmark("libstrstr").source)),
          delays(soc.netlist(), CellLibrary::defaultLibrary()),
          sta(delays), tsim(delays)
    {}

    static Rig &
    instance()
    {
        static Rig rig;
        return rig;
    }
};

void
BM_CycleSimStep(benchmark::State &state)
{
    Rig &rig = Rig::instance();
    CycleSimulator sim(rig.soc.netlist());
    for (auto _ : state) {
        sim.step();
        if (sim.cycle() > 1200)
            sim.reset();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(
                                rig.soc.netlist().numCells()));
}
BENCHMARK(BM_CycleSimStep);

void
BM_TimedSimFullCycle(benchmark::State &state)
{
    Rig &rig = Rig::instance();
    CycleSimulator sim(rig.soc.netlist());
    for (int i = 0; i < 500; ++i)
        sim.step();
    const auto pre = sim.netValues_();
    sim.step();
    const auto post = sim.netValues_();
    const double period = rig.sta.maxPath();
    CycleWaveforms wf;
    for (auto _ : state)
        rig.tsim.simulateCycle(pre, post, period, wf);
}
BENCHMARK(BM_TimedSimFullCycle);

void
BM_ConeResim(benchmark::State &state)
{
    Rig &rig = Rig::instance();
    CycleSimulator sim(rig.soc.netlist());
    for (int i = 0; i < 500; ++i)
        sim.step();
    const auto pre = sim.netValues_();
    sim.step();
    const auto post = sim.netValues_();
    const double period = rig.sta.maxPath();
    CycleWaveforms wf;
    rig.tsim.simulateCycle(pre, post, period, wf);

    const auto &wires = rig.soc.structures().find("ALU")->wires;
    std::vector<LatchedPin> latched;
    size_t index = 0;
    for (auto _ : state) {
        rig.tsim.simulateCone(wf, wires[index % wires.size()],
                              0.5 * period, period, latched);
        ++index;
    }
}
BENCHMARK(BM_ConeResim);

void
BM_StaticallyReachable(benchmark::State &state)
{
    Rig &rig = Rig::instance();
    const auto &wires = rig.soc.structures().find("ALU")->wires;
    const double period = rig.sta.maxPath();
    std::vector<StateElemId> reachable;
    size_t index = 0;
    for (auto _ : state) {
        rig.sta.staticallyReachable(wires[index % wires.size()],
                                    0.5 * period, period, reachable);
        ++index;
    }
}
BENCHMARK(BM_StaticallyReachable);

void
BM_SnapshotRestore(benchmark::State &state)
{
    Rig &rig = Rig::instance();
    CycleSimulator sim(rig.soc.netlist());
    for (int i = 0; i < 100; ++i)
        sim.step();
    const auto snap = sim.snapshot();
    for (auto _ : state) {
        sim.restore(snap);
        sim.step();
    }
}
BENCHMARK(BM_SnapshotRestore);

void
BM_SoCBuild(benchmark::State &state)
{
    const auto image = assemble(beebsBenchmark("libstrstr").source);
    for (auto _ : state) {
        IbexMini soc({}, image);
        benchmark::DoNotOptimize(soc.netlist().numCells());
    }
}
BENCHMARK(BM_SoCBuild);

} // namespace

BENCHMARK_MAIN();
