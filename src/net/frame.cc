#include "frame.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "util/logging.hh"
#include "util/subprocess.hh"

namespace davf::net {

namespace {

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Resolve a numeric-or-name IPv4 host (throws DavfError{Io}). */
sockaddr_in
tcpAddress(const std::string &host, uint16_t port)
{
    addrinfo hints = {};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *info = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &info);
    if (rc != 0 || info == nullptr) {
        davf_throw(ErrorKind::Io, "cannot resolve host '", host,
                   "': ", ::gai_strerror(rc));
    }
    sockaddr_in addr = {};
    std::memcpy(&addr, info->ai_addr,
                std::min(sizeof addr, size_t(info->ai_addrlen)));
    ::freeaddrinfo(info);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    return addr;
}

} // namespace

void
parseHostPort(const std::string &text, std::string &host, uint16_t &port)
{
    const size_t colon = text.rfind(':');
    if (colon == std::string::npos || colon == 0
        || colon + 1 >= text.size()) {
        davf_throw(ErrorKind::BadArgument, "expected HOST:PORT, got '",
                   text, "'");
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long value =
        std::strtoul(text.c_str() + colon + 1, &end, 10);
    if (errno != 0 || *end != '\0' || value > 65535) {
        davf_throw(ErrorKind::BadArgument, "bad port in '", text, "'");
    }
    host = text.substr(0, colon);
    port = static_cast<uint16_t>(value);
}

ListenSocket
listenTcp(const std::string &host, uint16_t port)
{
    const sockaddr_in addr = tcpAddress(host, port);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        davf_throw(ErrorKind::Io, "socket: ", std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr), sizeof addr)
        != 0) {
        const int saved = errno;
        ::close(fd);
        davf_throw(ErrorKind::Io, "bind('", host, ":", port,
                   "'): ", std::strerror(saved));
    }
    if (::listen(fd, 64) != 0) {
        const int saved = errno;
        ::close(fd);
        davf_throw(ErrorKind::Io, "listen('", host, ":", port,
                   "'): ", std::strerror(saved));
    }
    ListenSocket sock;
    sock.fd = fd;
    sockaddr_in bound = {};
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len)
        == 0) {
        sock.port = ntohs(bound.sin_port);
    } else {
        sock.port = port;
    }
    return sock;
}

int
acceptTcp(int listen_fd)
{
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        if (errno == EINTR || errno == ECONNABORTED)
            continue;
        davf_throw(ErrorKind::Io, "accept: ", std::strerror(errno));
    }
}

int
connectTcp(const std::string &host, uint16_t port, double timeout_ms)
{
    const sockaddr_in addr = tcpAddress(host, port);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        davf_throw(ErrorKind::Io, "socket: ", std::strerror(errno));

    auto fail = [&](const std::string &detail) {
        const int saved = errno;
        ::close(fd);
        davf_throw(ErrorKind::Io, "connect('", host, ":", port, "'): ",
                   detail.empty() ? std::strerror(saved) : detail);
    };

    if (timeout_ms <= 0.0) {
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof addr)
            != 0) {
            fail("");
        }
        return fd;
    }

    // Deadline connect: non-blocking connect(2), poll for writability,
    // then read the final verdict out of SO_ERROR.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr)
        != 0) {
        if (errno != EINPROGRESS)
            fail("");
        pollfd pfd = {fd, POLLOUT, 0};
        const int rc =
            ::poll(&pfd, 1, static_cast<int>(timeout_ms + 0.5));
        if (rc == 0) {
            errno = ETIMEDOUT;
            fail("no connection within "
                 + std::to_string(static_cast<long>(timeout_ms))
                 + " ms");
        }
        if (rc < 0)
            fail("");
        int soerr = 0;
        socklen_t len = sizeof soerr;
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
        if (soerr != 0) {
            errno = soerr;
            fail("");
        }
    }
    ::fcntl(fd, F_SETFL, flags);
    return fd;
}

int
connectTcpRetry(const std::string &host, uint16_t port, double timeout_ms,
                unsigned retries, double backoff_base_ms)
{
    for (unsigned attempt = 0;; ++attempt) {
        try {
            return connectTcp(host, port, timeout_ms);
        } catch (const DavfError &error) {
            if (attempt >= retries)
                throw;
            const double delay_ms = backoff_base_ms
                * static_cast<double>(1u << std::min(attempt, 10u));
            davf_warn("connect to ", host, ":", port, " failed (",
                      error.what(), "); retry ", attempt + 1, "/",
                      retries, " in ", static_cast<long>(delay_ms),
                      " ms");
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(delay_ms));
        }
    }
}

void
FrameConn::send(std::string_view payload)
{
    if (fd < 0)
        davf_throw(ErrorKind::Io, "send on a closed connection");
    writeFrameFd(fd, payload);
}

FrameConn::ReadStatus
FrameConn::read(std::string &out, double timeout_ms)
{
    if (fd < 0)
        davf_throw(ErrorKind::Io, "read on a closed connection");

    const double deadline = nowMs() + std::max(timeout_ms, 0.0);
    for (;;) {
        // Frame the buffered bytes first: the length prefix is checked
        // against kMaxFrameBytes before any payload allocation, so a
        // hostile prefix cannot balloon memory.
        if (rxBuffer.size() >= 4) {
            uint32_t length = 0;
            std::memcpy(&length, rxBuffer.data(), 4);
            if (length > kMaxFrameBytes) {
                davf_throw(ErrorKind::BadInput, "frame length ", length,
                           " exceeds the ", kMaxFrameBytes,
                           "-byte ceiling (corrupt or hostile peer)");
            }
            if (rxBuffer.size() >= 4 + size_t(length)) {
                out.assign(rxBuffer, 4, length);
                rxBuffer.erase(0, 4 + size_t(length));
                return ReadStatus::Frame;
            }
        }

        const double remaining = deadline - nowMs();
        if (remaining <= 0.0 && timeout_ms > 0.0)
            return ReadStatus::Timeout;

        pollfd pfd = {fd, POLLIN, 0};
        const int rc = ::poll(
            &pfd, 1,
            timeout_ms <= 0.0
                ? 0
                : static_cast<int>(std::max(remaining, 1.0)));
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            davf_throw(ErrorKind::Io, "poll: ", std::strerror(errno));
        }
        if (rc == 0)
            return ReadStatus::Timeout;

        char chunk[65536];
        const ssize_t got = ::read(fd, chunk, sizeof chunk);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            davf_throw(ErrorKind::Io, "read: ", std::strerror(errno));
        }
        if (got == 0) {
            if (!rxBuffer.empty()) {
                davf_throw(ErrorKind::BadInput,
                           "peer closed the connection mid-frame (",
                           rxBuffer.size(), " stray bytes)");
            }
            return ReadStatus::Eof;
        }
        rxBuffer.append(chunk, static_cast<size_t>(got));
    }
}

void
FrameConn::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
    rxBuffer.clear();
}

std::string
makeHello(const std::string &node, const std::string &fingerprint)
{
    std::ostringstream os;
    os << kNetMagic << ' ' << kNetVersion << " hello " << node << ' '
       << fingerprint;
    return os.str();
}

Result<Hello>
parseHello(const std::string &payload)
{
    using R = Result<Hello>;
    std::istringstream is(payload);
    std::string magic, version, verb;
    Hello hello;
    if (!(is >> magic >> version >> verb) || magic != kNetMagic) {
        return R::Err(ErrorKind::BadInput,
                      "handshake: not a davf-net frame: "
                          + payload.substr(0, 60));
    }
    if (version != kNetVersion) {
        return R::Err(ErrorKind::BadInput,
                      "handshake: unsupported protocol version '"
                          + version + "' (this side speaks "
                          + std::string(kNetVersion) + ")");
    }
    if (verb != "hello" || !(is >> hello.node >> hello.fingerprint)) {
        return R::Err(ErrorKind::BadInput,
                      "handshake: malformed hello: "
                          + payload.substr(0, 60));
    }
    std::string trailing;
    if (is >> trailing) {
        return R::Err(ErrorKind::BadInput,
                      "handshake: trailing tokens: "
                          + payload.substr(0, 60));
    }
    return R::Ok(std::move(hello));
}

std::string
makeWelcome()
{
    return std::string(kNetMagic) + ' ' + std::string(kNetVersion)
        + " welcome";
}

std::string
makeReject(const std::string &reason)
{
    return std::string(kNetMagic) + ' ' + std::string(kNetVersion)
        + " reject " + reason;
}

Result<bool>
parseHandshakeReply(const std::string &payload, std::string &reason)
{
    using R = Result<bool>;
    std::istringstream is(payload);
    std::string magic, version, verb;
    if (!(is >> magic >> version >> verb) || magic != kNetMagic
        || version != kNetVersion) {
        return R::Err(ErrorKind::BadInput,
                      "handshake: bad reply: " + payload.substr(0, 60));
    }
    if (verb == "welcome")
        return R::Ok(true);
    if (verb == "reject") {
        std::getline(is, reason);
        if (!reason.empty() && reason.front() == ' ')
            reason.erase(0, 1);
        return R::Ok(false);
    }
    return R::Err(ErrorKind::BadInput,
                  "handshake: unknown verb '" + verb + "'");
}

} // namespace davf::net
