/**
 * @file
 * Phase tracing: RAII Span scopes that record wall-time intervals into
 * per-thread buffers, exportable as Chrome `trace_event` JSON
 * (docs/OBSERVABILITY.md). Load the export at chrome://tracing or
 * https://ui.perfetto.dev to see the per-phase timeline.
 *
 * Tracing is independent of metric collection: a Span can both feed a
 * `*_ns` phase counter (when metrics are enabled) and emit a trace
 * event (when tracing is enabled). With both off a Span costs two
 * relaxed atomic loads and no clock reads.
 *
 * Span names must be string literals (or otherwise outlive the trace):
 * buffers store the pointer, not a copy.
 */

#ifndef DAVF_OBS_TRACE_HH
#define DAVF_OBS_TRACE_HH

#include <cstdint>
#include <string>

#include "metrics.hh"

namespace davf::obs {

/** One completed span: a half-open wall-time interval on one thread. */
struct TraceEvent {
    const char *name;
    uint64_t start_ns; ///< ScopedTimeNs::nowNs() timebase.
    uint64_t dur_ns;
    uint32_t tid; ///< Small stable per-thread id (0 = first thread seen).
};

/** Process-wide trace buffer control. All methods are thread-safe. */
class Trace
{
  public:
    /** Whether span recording is on. One relaxed load. */
    static bool
    enabled()
    {
        return tracing.load(std::memory_order_relaxed);
    }

    /**
     * Turn recording on or off. Enabling captures the timeline origin;
     * events recorded while disabled are dropped silently.
     */
    static void setEnabled(bool on);

    /** Append one completed event for the calling thread. */
    static void record(const char *name, uint64_t start_ns, uint64_t dur_ns);

    /**
     * Serialise every buffered event as Chrome trace JSON:
     * `{"traceEvents":[{"name",...,"ph":"X","ts":...,"dur":...},...]}`.
     * Timestamps are microseconds since the last setEnabled(true).
     */
    static std::string toChromeJson();

    /** Drop all buffered events (dropped-event tally included). */
    static void clear();

    /** Events discarded because the buffer cap was reached. */
    static uint64_t dropped();

  private:
    static std::atomic<bool> tracing;
};

/**
 * RAII span: times its scope, optionally accumulating into a `_ns`
 * phase counter (metrics) and always recording a trace event when
 * tracing is enabled. Keep spans coarse — per cycle, per shard, per
 * query — not per wire.
 */
class Span
{
  public:
    explicit Span(const char *name, const Counter *phase_ns = nullptr)
        : name(name), phase_ns(phase_ns),
          metering(phase_ns && MetricsRegistry::enabled()),
          tracing(Trace::enabled()),
          start_ns(metering || tracing ? ScopedTimeNs::nowNs() : 0)
    {}

    ~Span()
    {
        if (!metering && !tracing)
            return;
        const uint64_t dur_ns = ScopedTimeNs::nowNs() - start_ns;
        if (metering)
            phase_ns->add(dur_ns);
        if (tracing)
            Trace::record(name, start_ns, dur_ns);
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *name;
    const Counter *phase_ns;
    bool metering;
    bool tracing;
    uint64_t start_ns;
};

} // namespace davf::obs

#endif // DAVF_OBS_TRACE_HH
