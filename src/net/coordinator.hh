/**
 * @file
 * The distributed campaign coordinator: the supervisor's resilience
 * stack (campaign/supervisor.hh) applied to a fleet of remote TCP
 * worker nodes instead of local child processes.
 *
 * Topology: the coordinator owns a listening socket; davf_worker
 * processes connect, handshake (versioned hello carrying the node
 * name and workspace fingerprint — a mismatch is rejected), and join
 * the fleet. Each campaign cell becomes a queue of shard jobs; one
 * dispatcher thread per node pulls jobs work-stealing style, so fast
 * nodes naturally take more shards and a slow node never gates the
 * queue.
 *
 * Failure policy, mirroring the PR-2 supervisor:
 *  - "hb" heartbeats while a shard computes; a node silent past the
 *    heartbeat timeout — or past the shard deadline while still
 *    heartbeating — is presumed dead/hung, its connection closed, and
 *    its shard re-dispatched;
 *  - retryable failures (lost node, timeout, unparseable reply) are
 *    re-queued with deterministic-jitter exponential backoff, up to
 *    maxRetries per shard; past that the shard falls back to **local
 *    in-process execution**, so infrastructure failures never fail a
 *    cell;
 *  - a node that keeps failing shards (maxNodeFailures) is
 *    quarantined: disconnected and removed from the fleet;
 *  - when the fleet drains to zero mid-cell, the remaining jobs run
 *    locally — a campaign with no (surviving) workers degrades to
 *    exactly a thread-mode run;
 *  - a deterministic worker-reported error ("err <kind> ...") fails
 *    the cell, as in the other modes — re-dispatching cannot fix it.
 *
 * The optional cache callbacks let the content-addressed result store
 * act as a shared tier: a shard any node (or any earlier run) already
 *computed is a store hit, not a recompute, and fresh outcomes are
 * written back as they arrive.
 *
 * Replies carry the exact journal token grammar, and aggregation runs
 * through the checkpoint-resume path, so results are byte-identical
 * to thread/process mode at any node count (docs/DISTRIBUTED.md).
 */

#ifndef DAVF_NET_COORDINATOR_HH
#define DAVF_NET_COORDINATOR_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hh"
#include "core/shard.hh"
#include "core/vulnerability.hh"
#include "net/frame.hh"

namespace davf::net {

/** Fleet and failure policy for one Coordinator. */
struct CoordinatorOptions
{
    /** Expected workspace fingerprint; a hello naming another one is
     *  rejected (empty accepts anything — tests only). */
    std::string fingerprint;

    /** Re-dispatch attempts per shard beyond the first; past this the
     *  shard runs locally. */
    unsigned maxRetries = 2;

    /** Base of the exponential re-dispatch backoff (with jitter). */
    double backoffBaseMs = 50.0;

    /** A busy node silent for this long is presumed dead. */
    double heartbeatTimeoutMs = 10000.0;

    /** Per-attempt wall-clock budget for one shard; 0 = unlimited.
     *  Catches stalled nodes that keep heartbeating. */
    double shardTimeoutMs = 0.0;

    /** Retryable failures before a node is quarantined. */
    unsigned maxNodeFailures = 3;

    /** Deterministic backoff jitter seed. */
    uint64_t seed = 1;

    /** Cooperative stop flag; checked between dispatches. */
    const std::atomic<bool> *stopFlag = nullptr;

    /**
     * @name Local execution + shared cache tier
     * localCycle/localSavf compute one shard in-process (the graceful
     * degradation path; engine calls are serialized internally by the
     * coordinator). cacheLookup/cacheStore, when set, resolve shards
     * against the content-addressed result store before dispatching
     * and persist fresh outcomes (payloads are the journal token
     * grammar).
     */
    /// @{
    std::function<InjectionCycleOutcome(const ShardSpec &)> localCycle;
    std::function<SavfResult(const ShardSpec &)> localSavf;
    std::function<std::optional<std::string>(const ShardSpec &)>
        cacheLookup;
    std::function<void(const ShardSpec &, const std::string &)>
        cacheStore;
    /// @}
};

/** The node fleet + dispatch policy (see file comment). */
class Coordinator : public ShardDispatcher
{
  public:
    /** Takes ownership of @p listener and starts accepting nodes. */
    Coordinator(ListenSocket listener, CoordinatorOptions options);
    ~Coordinator() override;

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    /** The bound port (for --listen HOST:0). */
    uint16_t port() const { return listenPort; }

    /**
     * Block until @p count nodes are connected or @p timeout_ms
     * passes; returns the connected-node count either way.
     */
    size_t waitForNodes(size_t count, double timeout_ms);

    /** Currently connected (non-quarantined) nodes. */
    size_t nodeCount() const;

    CellResult runDavfCell(
        const std::string &structure, double delay_fraction,
        const std::vector<uint64_t> &cycles,
        const SamplingConfig &sampling,
        const std::function<void(const InjectionCycleOutcome &)>
            &on_cycle_done) override;

    CellResult runSavfCell(const std::string &structure,
                           const SamplingConfig &sampling,
                           SavfResult &out) override;

    /**
     * Send quit to every node and **drain** each connection until EOF
     * (within a grace window) before closing, so a quit frame racing
     * an in-flight result is consumed, not reported as a node failure.
     * Called by the destructor; idempotent.
     */
    void shutdown();

  private:
    struct Node;
    struct Job;
    struct CellCtx;

    bool stopRequested() const;
    void acceptLoop();
    void drainNode(const std::shared_ptr<Node> &node, CellCtx &ctx);
    void backoff(const ShardSpec &spec, unsigned attempt) const;
    void computeLocally(CellCtx &ctx, Job &job);
    void finishJob(CellCtx &ctx, Job &job);
    CellResult runCell(std::vector<Job> jobs,
                       const std::function<void(Job &)> &deliver);

    /** Healthy-fleet snapshot (for spawning cell dispatchers). */
    std::vector<std::shared_ptr<Node>> fleetSnapshot() const;

    CoordinatorOptions options;
    int listenFd = -1;
    uint16_t listenPort = 0;

    mutable std::mutex fleetMutex;
    std::condition_variable fleetCv;
    std::vector<std::shared_ptr<Node>> fleet;
    uint64_t nextNodeId = 1;

    /** Serializes localCycle/localSavf (one engine, one computation). */
    std::mutex localMutex;

    std::atomic<bool> shuttingDown{false};
    std::thread acceptor;
};

} // namespace davf::net

#endif // DAVF_NET_COORDINATOR_HH
