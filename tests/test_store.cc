/**
 * @file
 * Tests for the persistent extendible-hash index subsystem
 * (src/store/): on-disk layout codecs (including a deterministic fuzz
 * pass over every parser), the append-only segment file's damage
 * resynchronisation, hash-index splits/doubling/persistence, lock-free
 * readers racing a splitting writer, the IndexStore crash model
 * (replay, rebuild, torn-tail quarantine, corrupt-degrades-to-miss),
 * legacy absorption and migration, index fsck/compact, and the
 * kill-anywhere recovery matrix over every `index.*` crash point.
 *
 * Kill-action cases re-execute this binary (--crash-child=...) so the
 * SIGKILL lands in a scratch process, which is why this test has its
 * own main() instead of linking gtest_main.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <unistd.h>

#include "src/service/result_store.hh"
#include "src/store/hash_index.hh"
#include "src/store/index_fsck.hh"
#include "src/store/index_store.hh"
#include "src/store/layout.hh"
#include "src/store/migrate.hh"
#include "src/store/segment_file.hh"
#include "src/util/crashpoint.hh"
#include "src/util/error.hh"
#include "src/util/subprocess.hh"

namespace davf::store {
namespace {

namespace fs = std::filesystem;

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "davf_store_"
        + std::to_string(::getpid()) + "_" + name;
}

std::string
matrixKey(size_t i)
{
    return "mk " + std::to_string(i);
}

std::string
matrixPayload(size_t i)
{
    return "0x1.8p-1 payload " + std::to_string(i);
}

/** Arms a spec for the enclosing scope; disarms on exit. */
struct ArmGuard
{
    explicit ArmGuard(const std::string &spec)
    {
        crashpoint::arm(crashpoint::parseSpec(spec.c_str()));
    }
    ~ArmGuard() { crashpoint::disarm(); }
};

/** Flip one byte of @p path at @p offset (crafting garble damage). */
void
flipByte(const std::string &path, uint64_t offset)
{
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(static_cast<bool>(file)) << path;
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(static_cast<std::streamoff>(offset));
    file.write(&byte, 1);
    ASSERT_TRUE(static_cast<bool>(file)) << path;
}

// ------------------------------------------------------------------ layout

TEST(StoreLayout, RecordTextRoundTripsAndMatchesLegacyGrammar)
{
    const std::string text = serializeRecordText("k one", "v 1");
    EXPECT_EQ(text, service::ResultStore::serializeRecord("k one", "v 1"));

    const auto parsed = parseRecordText(text);
    ASSERT_TRUE(static_cast<bool>(parsed));
    EXPECT_EQ(parsed.value().first, "k one");
    EXPECT_EQ(parsed.value().second, "v 1");

    std::string_view key, payload;
    ASSERT_TRUE(splitCanonicalRecord(text, key, payload));
    EXPECT_EQ(key, "k one");
    EXPECT_EQ(payload, "v 1");
}

TEST(StoreLayout, RecordParsersRejectEveryDamageClass)
{
    const std::string text = serializeRecordText("k", "v");
    std::string_view key, payload;

    // Torn: every strict prefix fails the canonical splitter; the
    // line-lenient parser may tolerate a lost final newline but must
    // never produce a *different* record than the intact bytes.
    for (size_t len = 0; len < text.size(); ++len) {
        const std::string torn = text.substr(0, len);
        const auto lenient = parseRecordText(torn);
        if (lenient) {
            EXPECT_EQ(lenient.value().first, "k") << len;
            EXPECT_EQ(lenient.value().second, "v") << len;
        }
        EXPECT_FALSE(splitCanonicalRecord(torn, key, payload)) << len;
    }
    // Garble: any single flipped byte fails the sum (or the grammar).
    for (size_t i = 0; i < text.size(); ++i) {
        std::string garbled = text;
        garbled[i] = static_cast<char>(garbled[i] ^ 0x40);
        EXPECT_FALSE(static_cast<bool>(parseRecordText(garbled))) << i;
        EXPECT_FALSE(splitCanonicalRecord(garbled, key, payload)) << i;
    }
    // Trailing garbage after the end sentinel.
    EXPECT_FALSE(static_cast<bool>(parseRecordText(text + "x")));
    EXPECT_FALSE(splitCanonicalRecord(text + "x", key, payload));
}

TEST(StoreLayout, V3SkipsUnknownExtensionLines)
{
    // Forward compatibility (docs/ANALYSIS.md): a v3 reader skips
    // unknown lines between the payload and the sum, so a future
    // grammar that appends fields degrades old binaries to a recompute
    // instead of a quarantine.
    const std::string v3 = serializeRecordText("k", "v", 3);
    const size_t sum_at = v3.find("\nsum ");
    ASSERT_NE(sum_at, std::string::npos);
    std::string extended = v3;
    extended.insert(sum_at, "\nattrdigest 00ff\nprovenance node7");
    const auto parsed = parseRecordText(extended);
    ASSERT_TRUE(static_cast<bool>(parsed)) << parsed.error().what();
    EXPECT_EQ(parsed.value().first, "k");
    EXPECT_EQ(parsed.value().second, "v");

    // The v2 grammar stays strict: the same extension lines are fatal.
    const std::string v2 = serializeRecordText("k", "v", 2);
    std::string v2ext = v2;
    v2ext.insert(v2ext.find("\nsum "), "\nattrdigest 00ff");
    EXPECT_FALSE(static_cast<bool>(parseRecordText(v2ext)));

    // An extension line can never impersonate the end sentinel: a
    // record whose "extensions" run into `end` without a sum is torn.
    std::string no_sum = "davf-store v3\nkey k\npayload v\n"
                         "newfield x\nend\n";
    EXPECT_FALSE(static_cast<bool>(parseRecordText(no_sum)));

    // Future headers are a distinct class from damage.
    const std::string v4 = serializeRecordText("k", "v", 4);
    EXPECT_FALSE(static_cast<bool>(parseRecordText(v4)));
    EXPECT_TRUE(recordTextFutureVersion(v4));
    EXPECT_FALSE(recordTextFutureVersion(v2));
    EXPECT_FALSE(recordTextFutureVersion(v3));
    EXPECT_FALSE(recordTextFutureVersion("garbage\n"));
}

TEST(StoreLayout, HeaderAndBucketPagesRoundTrip)
{
    IndexHeader header;
    header.slotsPerBucket = kSlotsPerBucket;
    header.globalDepth = 3;
    header.bucketPages = 8;
    header.keyCount = 123;
    header.dataCommitted = 4096;
    header.clean = true;
    const std::string page = serializeIndexHeader(header);
    ASSERT_EQ(page.size(), kPageSize);
    const auto reparsed = parseIndexHeader(page);
    ASSERT_TRUE(static_cast<bool>(reparsed));
    EXPECT_EQ(reparsed.value(), header);

    BucketImage bucket;
    bucket.prefix = 5;
    bucket.localDepth = 3;
    bucket.count = 2;
    bucket.slots[0] = {0x1234567890abcdefull, 64, 80, 0};
    bucket.slots[1] = {0xfeedfacecafef00dull, 160, 33, 0};
    const std::string bpage = serializeBucketPage(bucket);
    ASSERT_EQ(bpage.size(), kPageSize);
    const auto bparsed = parseBucketPage(bpage);
    ASSERT_TRUE(static_cast<bool>(bparsed));
    EXPECT_EQ(bparsed.value().prefix, bucket.prefix);
    EXPECT_EQ(bparsed.value().count, 2u);
    EXPECT_EQ(bparsed.value().slots[0], bucket.slots[0]);
    EXPECT_EQ(bparsed.value().slots[1], bucket.slots[1]);
}

TEST(StoreLayout, FrameHeaderRoundTripsAndChecksums)
{
    FrameHeader header;
    header.size = 77;
    header.keyHash = fnv1a64("some key");
    header.bodySum = fnv1a64("some body");
    const std::string bytes = serializeFrameHeader(header);
    ASSERT_EQ(bytes.size(), kFrameHeaderBytes);
    const auto reparsed = parseFrameHeader(bytes);
    ASSERT_TRUE(static_cast<bool>(reparsed));
    EXPECT_EQ(reparsed.value(), header);

    for (size_t i = 0; i < bytes.size(); ++i) {
        std::string garbled = bytes;
        garbled[i] = static_cast<char>(garbled[i] ^ 0x01);
        EXPECT_FALSE(static_cast<bool>(parseFrameHeader(garbled))) << i;
    }
}

TEST(StoreLayoutFuzz, ParsersNeverAcceptMutatedOrRandomInput)
{
    // Deterministic fuzz corpus over every layout parser: random
    // pages, truncations of valid pages, and single-byte mutations.
    // The parsers must reject without crashing; accepting any mutation
    // of a checksummed page would mean the checksum is not covering
    // those bytes.
    std::mt19937_64 rng(0xda5f5eedull);
    std::uniform_int_distribution<int> byte(0, 255);

    IndexHeader valid_header;
    valid_header.slotsPerBucket = kSlotsPerBucket;
    const std::string header_page = serializeIndexHeader(valid_header);
    BucketImage bucket;
    bucket.count = 1;
    bucket.slots[0] = {42, 0, 16, 0};
    const std::string bucket_page = serializeBucketPage(bucket);
    FrameHeader frame;
    frame.size = 16;
    const std::string frame_bytes = serializeFrameHeader(frame);

    for (int round = 0; round < 200; ++round) {
        // Pure noise at assorted sizes.
        std::string noise(static_cast<size_t>(rng() % (2 * kPageSize)),
                          '\0');
        for (char &c : noise)
            c = static_cast<char>(byte(rng));
        (void)parseIndexHeader(noise);
        (void)parseBucketPage(noise);
        (void)parseFrameHeader(noise);
        (void)parseRecordText(noise);
        std::string_view k, p;
        (void)splitCanonicalRecord(noise, k, p);

        // A valid page with one mutated checksummed byte must be
        // rejected. (The index header's checksum covers its 64
        // meaningful bytes; the page padding is free.)
        auto mutate = [&](const std::string &valid, size_t covered) {
            std::string damaged = valid;
            const size_t at = rng() % covered;
            const char old = damaged[at];
            do {
                damaged[at] = static_cast<char>(byte(rng));
            } while (damaged[at] == old);
            return damaged;
        };
        EXPECT_FALSE(static_cast<bool>(
            parseIndexHeader(mutate(header_page, 64))));
        EXPECT_FALSE(static_cast<bool>(
            parseBucketPage(mutate(bucket_page, kPageSize))));
        EXPECT_FALSE(static_cast<bool>(
            parseFrameHeader(mutate(frame_bytes, kFrameHeaderBytes))));

        // Truncations of valid inputs.
        const size_t cut = rng() % kPageSize;
        (void)parseIndexHeader(std::string_view(header_page).substr(0, cut));
        (void)parseBucketPage(std::string_view(bucket_page).substr(0, cut));
        (void)parseFrameHeader(
            std::string_view(frame_bytes)
                .substr(0, cut % kFrameHeaderBytes));

        // A v3 record padded with random "future grammar" extension
        // lines: the lenient parser must either reject it or return
        // exactly the embedded key/payload — never a record distorted
        // by the unknown lines (satellite of the attribution grammar).
        std::string v3ext = "davf-store v3\nkey k\npayload v\n";
        const int extras = static_cast<int>(rng() % 4);
        for (int i = 0; i < extras; ++i) {
            std::string extension(1 + rng() % 24, '\0');
            for (char &c : extension) {
                do {
                    c = static_cast<char>(byte(rng));
                } while (c == '\n');
            }
            v3ext += extension + "\n";
        }
        v3ext += "sum " + fnv1a64Hex("k\nv") + "\nend\n";
        const auto lenient = parseRecordText(v3ext);
        if (lenient) {
            EXPECT_EQ(lenient.value().first, "k");
            EXPECT_EQ(lenient.value().second, "v");
        }
        (void)parseRecordText(v3ext.substr(0, rng() % v3ext.size()));
    }
}

// ------------------------------------------------------------ segment file

TEST(SegmentFileT, AppendReadScanRoundTrip)
{
    const std::string dir = tempPath("seg_roundtrip");
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string path = dir + "/" + kDataFileName;

    SegmentFile file;
    file.open(path);
    std::vector<uint64_t> offsets;
    std::vector<std::string> records;
    for (int i = 0; i < 20; ++i) {
        records.push_back(serializeRecordText(matrixKey(i),
                                              matrixPayload(i)));
        offsets.push_back(
            file.append(records.back(), fnv1a64(matrixKey(i))));
        EXPECT_EQ(offsets.back() % kFrameAlign, 0u);
    }
    for (int i = 0; i < 20; ++i) {
        const auto read = file.read(
            offsets[i], static_cast<uint32_t>(records[i].size()));
        ASSERT_TRUE(static_cast<bool>(read)) << i;
        EXPECT_EQ(read.value(), records[i]);
    }
    uint64_t seen = 0;
    const SegmentFile::ScanStats stats = file.scan(
        0, [&](uint64_t, const FrameHeader &, bool bodyValid) {
            EXPECT_TRUE(bodyValid);
            ++seen;
        });
    EXPECT_EQ(seen, 20u);
    EXPECT_EQ(stats.valid, 20u);
    EXPECT_EQ(stats.garbled, 0u);
    EXPECT_EQ(stats.tailOffset, file.size());
    EXPECT_FALSE(stats.tornTail);
    file.close();
    fs::remove_all(dir);
}

TEST(SegmentFileT, ScanResynchronisesOverMidFileDamage)
{
    const std::string dir = tempPath("seg_resync");
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string path = dir + "/" + kDataFileName;

    std::vector<uint64_t> offsets;
    {
        SegmentFile file;
        file.open(path);
        for (int i = 0; i < 5; ++i) {
            offsets.push_back(file.append(
                serializeRecordText(matrixKey(i), matrixPayload(i)),
                fnv1a64(matrixKey(i))));
        }
        file.close();
    }
    // Garble the *body* of frame 2: its header still parses, the body
    // checksum fails, and the scan walks on to frames 3 and 4.
    flipByte(path, offsets[2] + kFrameHeaderBytes + 4);
    // Smash the *header* of frame 1: unframeable bytes the scan must
    // resync over without losing frame 2..4 (all on the 16-byte grid).
    for (uint64_t at = 0; at < kFrameHeaderBytes; ++at)
        flipByte(path, offsets[1] + at);

    SegmentFile file;
    file.open(path);
    uint64_t valid_seen = 0, garbled_seen = 0;
    const SegmentFile::ScanStats stats = file.scan(
        0, [&](uint64_t, const FrameHeader &, bool bodyValid) {
            bodyValid ? ++valid_seen : ++garbled_seen;
        });
    EXPECT_EQ(valid_seen, 3u);   // frames 0, 3, 4
    EXPECT_EQ(garbled_seen, 1u); // frame 2
    EXPECT_EQ(stats.garbled, 1u);
    EXPECT_GT(stats.skippedBytes, 0u); // frame 1's smashed header
    EXPECT_FALSE(stats.tornTail);
    file.close();
    fs::remove_all(dir);
}

TEST(SegmentFileT, TruncatedFinalFrameIsATornTail)
{
    const std::string dir = tempPath("seg_torn");
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string path = dir + "/" + kDataFileName;

    uint64_t last = 0;
    {
        SegmentFile file;
        file.open(path);
        file.append(serializeRecordText("a", "1"), fnv1a64("a"));
        last = file.append(serializeRecordText("b", "2"), fnv1a64("b"));
        file.close();
    }
    fs::resize_file(path, last + kFrameHeaderBytes / 2);

    SegmentFile file;
    file.open(path);
    const SegmentFile::ScanStats stats =
        file.scan(0, [](uint64_t, const FrameHeader &, bool) {});
    EXPECT_EQ(stats.valid, 1u);
    EXPECT_TRUE(stats.tornTail);
    EXPECT_EQ(stats.tailOffset, last);
    file.close();
    fs::remove_all(dir);
}

// -------------------------------------------------------------- hash index

TEST(HashIndexT, InsertLookupReplaceRemove)
{
    const std::string dir = tempPath("hidx_basic");
    fs::remove_all(dir);
    fs::create_directories(dir);

    HashIndex index;
    index.create(dir, dir + "/" + kIndexFileName);
    EXPECT_FALSE(index.lookup(42).has_value());

    index.insert(42, 64, 10);
    auto hit = index.lookup(42);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->offset, 64u);
    EXPECT_EQ(hit->size, 10u);

    // Same hash replaces in place (newest frame wins).
    index.insert(42, 128, 12);
    hit = index.lookup(42);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->offset, 128u);
    EXPECT_EQ(index.keyCount(), 1u);

    // remove() is offset-guarded: a stale repair can't drop the
    // replacement slot.
    EXPECT_FALSE(index.remove(42, 64));
    EXPECT_TRUE(index.remove(42, 128));
    EXPECT_FALSE(index.lookup(42).has_value());
    EXPECT_EQ(index.keyCount(), 0u);
    index.close();
    fs::remove_all(dir);
}

TEST(HashIndexT, SplitsAndDirectoryDoublingKeepEveryKey)
{
    const std::string dir = tempPath("hidx_split");
    fs::remove_all(dir);
    fs::create_directories(dir);

    constexpr size_t kKeys = 4 * kSlotsPerBucket; // forces doublings
    HashIndex index;
    index.create(dir, dir + "/" + kIndexFileName);
    for (size_t i = 0; i < kKeys; ++i)
        index.insert(fnv1a64(matrixKey(i)), i * 16, 16);
    EXPECT_GT(index.splits(), 0u);
    EXPECT_GT(index.globalDepth(), 0u);
    EXPECT_EQ(index.keyCount(), kKeys);
    for (size_t i = 0; i < kKeys; ++i) {
        const auto hit = index.lookup(fnv1a64(matrixKey(i)));
        ASSERT_TRUE(hit.has_value()) << i;
        EXPECT_EQ(hit->offset, i * 16) << i;
    }
    index.checkpoint(kKeys * 16);
    index.close();

    // Reload: everything persisted, the checkpoint watermark held.
    HashIndex reloaded;
    const auto info =
        reloaded.load(dir, dir + "/" + kIndexFileName);
    ASSERT_TRUE(static_cast<bool>(info));
    EXPECT_TRUE(info.value().clean);
    EXPECT_EQ(info.value().dataCommitted, kKeys * 16);
    EXPECT_EQ(reloaded.keyCount(), kKeys);
    for (size_t i = 0; i < kKeys; ++i) {
        const auto hit = reloaded.lookup(fnv1a64(matrixKey(i)));
        ASSERT_TRUE(hit.has_value()) << i;
        EXPECT_EQ(hit->offset, i * 16) << i;
    }
    reloaded.close();
    fs::remove_all(dir);
}

TEST(HashIndexT, DamagedPageFailsLoadInsteadOfServingWrongSlots)
{
    const std::string dir = tempPath("hidx_damage");
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string path = dir + "/" + kIndexFileName;

    {
        HashIndex index;
        index.create(dir, path);
        for (size_t i = 0; i < 10; ++i)
            index.insert(fnv1a64(matrixKey(i)), i * 16, 16);
        index.checkpoint(160);
        index.close();
    }
    flipByte(path, kPageSize + 100); // first bucket page

    HashIndex index;
    EXPECT_FALSE(static_cast<bool>(index.load(dir, path)));
    index.close();
    fs::remove_all(dir);
}

TEST(HashIndexT, LeftoverSplitJournalFailsLoad)
{
    const std::string dir = tempPath("hidx_journal");
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string path = dir + "/" + kIndexFileName;

    {
        HashIndex index;
        index.create(dir, path);
        index.insert(1, 0, 16);
        index.checkpoint(16);
        index.close();
    }
    std::ofstream(dir + "/" + kSplitJournalName) << "torn split\n";

    HashIndex index;
    EXPECT_FALSE(static_cast<bool>(index.load(dir, path)));
    index.close();
    fs::remove_all(dir);
}

TEST(HashIndexT, LockFreeReadersSurviveConcurrentSplits)
{
    const std::string dir = tempPath("hidx_race");
    fs::remove_all(dir);
    fs::create_directories(dir);

    constexpr size_t kKeys = 6 * kSlotsPerBucket;
    HashIndex index;
    index.create(dir, dir + "/" + kIndexFileName);

    std::atomic<size_t> published{0};
    std::atomic<bool> failed{false};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&, t] {
            std::mt19937_64 rng(static_cast<uint64_t>(t) + 1);
            while (published.load(std::memory_order_acquire) < kKeys) {
                const size_t limit =
                    published.load(std::memory_order_acquire);
                if (limit == 0)
                    continue;
                const size_t i = rng() % limit;
                const auto hit = index.lookup(fnv1a64(matrixKey(i)));
                // A published key must always be found, mid-split or
                // not, and must carry its own offset — never a
                // neighbour's (seqlock + ownership re-check).
                if (!hit.has_value() || hit->offset != i * 16) {
                    failed.store(true);
                    return;
                }
            }
        });
    }
    for (size_t i = 0; i < kKeys; ++i) {
        index.insert(fnv1a64(matrixKey(i)), i * 16, 16);
        published.store(i + 1, std::memory_order_release);
    }
    for (std::thread &reader : readers)
        reader.join();
    EXPECT_FALSE(failed.load());
    EXPECT_GT(index.splits(), 0u);
    index.close();
    fs::remove_all(dir);
}

// ------------------------------------------------------------- index store

TEST(IndexStoreT, RoundTripPersistsAcrossReopen)
{
    const std::string dir = tempPath("istore_roundtrip");
    fs::remove_all(dir);
    {
        IndexStore store({.dir = dir});
        for (size_t i = 0; i < 50; ++i)
            store.put(matrixKey(i), matrixPayload(i));
        for (size_t i = 0; i < 50; ++i) {
            const auto result = store.lookup(matrixKey(i));
            ASSERT_EQ(result.status, IndexStore::LookupStatus::Hit) << i;
            EXPECT_EQ(result.payload, matrixPayload(i)) << i;
        }
        EXPECT_EQ(store.lookup("absent").status,
                  IndexStore::LookupStatus::Miss);
    }
    {
        IndexStore store({.dir = dir});
        for (size_t i = 0; i < 50; ++i) {
            const auto result = store.lookup(matrixKey(i));
            ASSERT_EQ(result.status, IndexStore::LookupStatus::Hit) << i;
            EXPECT_EQ(result.payload, matrixPayload(i)) << i;
        }
        EXPECT_EQ(store.stats().rebuilds, 0u)
            << "a cleanly closed store reopens from its checkpoint";
    }
    fs::remove_all(dir);
}

TEST(IndexStoreT, UncheckpointedTailIsReplayedOnReopen)
{
    const std::string dir = tempPath("istore_replay");
    fs::remove_all(dir);
    {
        IndexStore store({.dir = dir});
        store.put(matrixKey(0), matrixPayload(0));
        store.checkpoint();
        store.put(matrixKey(1), matrixPayload(1));
        store.put(matrixKey(2), matrixPayload(2));
        // Simulate a crash: drop the index so the reopen cannot have
        // seen the last two appends through it.
        fs::remove(dir + "/" + kIndexFileName);
        // The destructor would checkpoint; condemn that by releasing
        // without one. (close path still best-effort checkpoints, but
        // with index.davf gone it recreates — the point is the data
        // file alone must carry all three records.)
    }
    IndexStore store({.dir = dir});
    for (size_t i = 0; i < 3; ++i) {
        const auto result = store.lookup(matrixKey(i));
        ASSERT_EQ(result.status, IndexStore::LookupStatus::Hit) << i;
        EXPECT_EQ(result.payload, matrixPayload(i)) << i;
    }
    EXPECT_EQ(store.stats().rebuilds, 1u);
    fs::remove_all(dir);
}

TEST(IndexStoreT, GarbledRecordDegradesToAMissAndDropsItsSlot)
{
    const std::string dir = tempPath("istore_garble");
    fs::remove_all(dir);
    uint64_t offset = 0;
    {
        IndexStore store({.dir = dir});
        store.put(matrixKey(0), matrixPayload(0));
        store.put(matrixKey(1), matrixPayload(1));
        store.forEachSlot([&](const BucketSlot &slot) {
            if (slot.hash == fnv1a64(matrixKey(1)))
                offset = slot.offset;
        });
    }
    flipByte(dir + "/" + kDataFileName,
             offset + kFrameHeaderBytes + 8);

    IndexStore store({.dir = dir});
    const auto damaged = store.lookup(matrixKey(1));
    EXPECT_EQ(damaged.status, IndexStore::LookupStatus::Corrupt);
    EXPECT_EQ(store.lookup(matrixKey(1)).status,
              IndexStore::LookupStatus::Miss)
        << "the corrupt slot is dropped on sight";
    const auto intact = store.lookup(matrixKey(0));
    ASSERT_EQ(intact.status, IndexStore::LookupStatus::Hit);
    EXPECT_EQ(intact.payload, matrixPayload(0));
    EXPECT_EQ(store.stats().corrupt, 1u);

    // The recompute-and-store path repairs, like the legacy tier.
    store.put(matrixKey(1), matrixPayload(1));
    EXPECT_EQ(store.lookup(matrixKey(1)).status,
              IndexStore::LookupStatus::Hit);
    fs::remove_all(dir);
}

TEST(IndexStoreT, TornTailIsQuarantinedNotDeleted)
{
    const std::string dir = tempPath("istore_torntail");
    fs::remove_all(dir);
    uint64_t tail = 0;
    {
        IndexStore store({.dir = dir});
        store.put(matrixKey(0), matrixPayload(0));
        store.put(matrixKey(1), matrixPayload(1));
        store.forEachSlot([&](const BucketSlot &slot) {
            if (slot.hash == fnv1a64(matrixKey(1)))
                tail = slot.offset;
        });
        // Forget the index: the reopen must discover the torn tail
        // from the data file alone.
        fs::remove(dir + "/" + kIndexFileName);
    }
    fs::resize_file(dir + "/" + kDataFileName,
                    tail + kFrameHeaderBytes + 3);

    IndexStore store({.dir = dir});
    EXPECT_EQ(store.stats().tailRepairs, 1u);
    EXPECT_EQ(store.lookup(matrixKey(0)).status,
              IndexStore::LookupStatus::Hit);
    EXPECT_EQ(store.lookup(matrixKey(1)).status,
              IndexStore::LookupStatus::Miss);
    // The torn bytes were preserved as evidence, never deleted.
    bool quarantined = false;
    if (fs::exists(dir + "/quarantine")) {
        for (const auto &entry :
             fs::directory_iterator(dir + "/quarantine"))
            quarantined |= entry.is_regular_file();
    }
    EXPECT_TRUE(quarantined);
    // And the store keeps working past the repair.
    store.put(matrixKey(2), matrixPayload(2));
    EXPECT_EQ(store.lookup(matrixKey(2)).status,
              IndexStore::LookupStatus::Hit);
    fs::remove_all(dir);
}

TEST(IndexStoreT, SecondOpenerIsLockedOut)
{
    const std::string dir = tempPath("istore_lock");
    fs::remove_all(dir);
    IndexStore store({.dir = dir});
    store.put(matrixKey(0), matrixPayload(0));
    EXPECT_THROW(IndexStore({.dir = dir}), DavfError);
    // ... and ResultStore degrades to legacy per-file records instead
    // of failing the open.
    service::ResultStore fallback(
        {.dir = dir, .memCapacity = 4,
         .format = service::StoreFormat::Index});
    EXPECT_FALSE(fallback.indexed());
    fallback.store("fallback key", "fallback payload");
    EXPECT_EQ(fallback.lookup("fallback key").value_or(""),
              "fallback payload");
    fs::remove_all(dir);
}

TEST(IndexStoreT, CompactDropsSupersededFramesAndKeepsPayloads)
{
    const std::string dir = tempPath("istore_compact");
    fs::remove_all(dir);
    IndexStore store({.dir = dir});
    for (size_t i = 0; i < 30; ++i)
        store.put(matrixKey(i), matrixPayload(i));
    // Rewrite half the keys: the old frames become superseded space.
    for (size_t i = 0; i < 15; ++i)
        store.put(matrixKey(i), matrixPayload(i));
    const uint64_t reclaimed = store.compact();
    EXPECT_GT(reclaimed, 0u);
    for (size_t i = 0; i < 30; ++i) {
        const auto result = store.lookup(matrixKey(i));
        ASSERT_EQ(result.status, IndexStore::LookupStatus::Hit) << i;
        EXPECT_EQ(result.payload, matrixPayload(i)) << i;
    }
    EXPECT_EQ(store.compact(), 0u) << "compaction converges";
    fs::remove_all(dir);
}

// --------------------------------------------- ResultStore integration

TEST(StoreIntegration, AutoFormatFollowsTheDirectory)
{
    const std::string legacy_dir = tempPath("auto_legacy");
    const std::string fresh_dir = tempPath("auto_fresh");
    fs::remove_all(legacy_dir);
    fs::remove_all(fresh_dir);
    {
        service::ResultStore store({.dir = legacy_dir,
                                    .memCapacity = 0,
                                    .format =
                                        service::StoreFormat::Legacy});
        store.store("k", "v");
    }
    // Auto keeps an existing legacy directory legacy...
    service::ResultStore legacy({.dir = legacy_dir, .memCapacity = 0});
    EXPECT_FALSE(legacy.indexed());
    EXPECT_EQ(legacy.lookup("k").value_or(""), "v");
    // ...and starts an empty directory indexed.
    service::ResultStore fresh({.dir = fresh_dir, .memCapacity = 0});
    EXPECT_TRUE(fresh.indexed());
    fresh.store("k", "v");
    EXPECT_TRUE(IndexStore::present(fresh_dir));
    EXPECT_FALSE(fs::exists(
        fresh_dir + "/" + legacyRecordFileName("k")));
    fs::remove_all(legacy_dir);
    fs::remove_all(fresh_dir);
}

TEST(StoreIntegration, IndexedStoreServesByteIdenticalPayloads)
{
    const std::string dir = tempPath("integ_bytes");
    fs::remove_all(dir);
    {
        service::ResultStore store(
            {.dir = dir, .memCapacity = 0,
             .format = service::StoreFormat::Index});
        for (size_t i = 0; i < 40; ++i)
            store.store(matrixKey(i), matrixPayload(i));
    }
    service::ResultStore store({.dir = dir, .memCapacity = 0});
    ASSERT_TRUE(store.indexed());
    for (size_t i = 0; i < 40; ++i)
        EXPECT_EQ(store.lookup(matrixKey(i)).value_or(""),
                  matrixPayload(i))
            << i;
    EXPECT_EQ(store.stats().diskHits, 40u);
    ASSERT_TRUE(store.indexStats().has_value());
    EXPECT_EQ(store.indexStats()->keys, 40u);
    fs::remove_all(dir);
}

TEST(StoreIntegration, IndexedStoreAbsorbsLegacyStraysOnLookup)
{
    const std::string dir = tempPath("integ_absorb");
    fs::remove_all(dir);
    fs::create_directories(dir);
    // A stray legacy record (as a locked-out fallback writer or an
    // interrupted migration would leave).
    const std::string stray = dir + "/" + legacyRecordFileName("stray");
    std::ofstream(stray, std::ios::binary)
        << serializeRecordText("stray", "stray payload");

    service::ResultStore store({.dir = dir, .memCapacity = 0,
                                .format = service::StoreFormat::Index});
    ASSERT_TRUE(store.indexed());
    EXPECT_EQ(store.lookup("stray").value_or(""), "stray payload");
    EXPECT_FALSE(fs::exists(stray))
        << "absorbed into the index, legacy file retired";
    EXPECT_EQ(store.lookup("stray").value_or(""), "stray payload")
        << "second lookup is served by the index";
    fs::remove_all(dir);
}

TEST(StoreIntegration, LruGaugesTrackEntriesAndBytes)
{
    service::ResultStore store({.dir = "", .memCapacity = 2});
    EXPECT_EQ(store.stats().lruEntries, 0u);
    EXPECT_EQ(store.stats().lruBytes, 0u);

    store.store("a", "11");
    store.store("b", "22");
    service::StoreStats stats = store.stats();
    EXPECT_EQ(stats.lruEntries, 2u);
    EXPECT_EQ(stats.lruBytes, 6u); // ("a"+"11") + ("b"+"22")

    store.store("c", "333"); // evicts "a"
    stats = store.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.lruEntries, 2u);
    EXPECT_EQ(stats.lruBytes, 7u); // ("b"+"22") + ("c"+"333")

    store.store("c", "4"); // replace shrinks the byte gauge
    stats = store.stats();
    EXPECT_EQ(stats.lruEntries, 2u);
    EXPECT_EQ(stats.lruBytes, 5u); // ("b"+"22") + ("c"+"4")
}

// --------------------------------------------------------------- migration

TEST(StoreMigrate, LegacyDirectoryMigratesByteIdentically)
{
    const std::string dir = tempPath("migrate_basic");
    fs::remove_all(dir);
    {
        service::ResultStore store({.dir = dir, .memCapacity = 0,
                                    .format =
                                        service::StoreFormat::Legacy});
        for (size_t i = 0; i < 25; ++i)
            store.store(matrixKey(i), matrixPayload(i));
    }
    // One damaged legacy record rides along; it must be quarantined,
    // never deleted, and never absorbed.
    const std::string damaged =
        dir + "/" + legacyRecordFileName("damaged");
    std::ofstream(damaged, std::ios::binary) << "davf-store v2\nkey d";

    const MigrateReport report = migrateStore(dir);
    EXPECT_EQ(report.migrated, 25u);
    EXPECT_EQ(report.quarantined, 1u);
    EXPECT_FALSE(fs::exists(damaged));
    EXPECT_TRUE(IndexStore::present(dir));
    for (const auto &entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        EXPECT_FALSE(name.rfind("r-", 0) == 0
                     && name.find(".rec") != std::string::npos)
            << "legacy record left behind: " << name;
    }

    // Idempotent: a second pass finds nothing to do.
    const MigrateReport again = migrateStore(dir);
    EXPECT_EQ(again.migrated, 0u);
    EXPECT_EQ(again.quarantined, 0u);

    service::ResultStore store({.dir = dir, .memCapacity = 0});
    ASSERT_TRUE(store.indexed());
    for (size_t i = 0; i < 25; ++i)
        EXPECT_EQ(store.lookup(matrixKey(i)).value_or(""),
                  matrixPayload(i))
            << i;
    fs::remove_all(dir);
}

// -------------------------------------------------------------- index fsck

TEST(IndexFsck, CleanStoreIsClean)
{
    const std::string dir = tempPath("ifsck_clean");
    fs::remove_all(dir);
    {
        IndexStore store({.dir = dir});
        for (size_t i = 0; i < 10; ++i)
            store.put(matrixKey(i), matrixPayload(i));
    }
    const IndexFsckReport report = fsckIndexStore(dir);
    EXPECT_TRUE(report.clean())
        << (report.notes.empty() ? "" : report.notes.front());
    EXPECT_EQ(report.validFrames, 10u);
    fs::remove_all(dir);
}

TEST(IndexFsck, ClassifiesAndRepairsEveryDamageKind)
{
    const std::string dir = tempPath("ifsck_damage");
    fs::remove_all(dir);
    uint64_t victim = 0;
    {
        IndexStore store({.dir = dir});
        for (size_t i = 0; i < 12; ++i)
            store.put(matrixKey(i), matrixPayload(i));
        store.put(matrixKey(3), matrixPayload(3)); // superseded frame
        store.forEachSlot([&](const BucketSlot &slot) {
            if (slot.hash == fnv1a64(matrixKey(7)))
                victim = slot.offset;
        });
    }
    // Garble one record body: its frame is damage, and the slot that
    // pointed at it becomes a stale entry.
    flipByte(dir + "/" + kDataFileName,
             victim + kFrameHeaderBytes + 2);
    const IndexFsckReport garbled = fsckIndexStore(dir);
    EXPECT_FALSE(garbled.clean());
    EXPECT_EQ(garbled.garbledFrames, 1u);
    EXPECT_EQ(garbled.staleEntries, 1u);
    EXPECT_EQ(garbled.superseded, 1u);
    EXPECT_FALSE(garbled.notes.empty());

    // A leftover split journal condemns the index outright (it is not
    // loaded at all, so cross-checks stop mattering).
    std::ofstream(dir + "/" + kSplitJournalName) << "torn split\n";
    const IndexFsckReport report = fsckIndexStore(dir);
    EXPECT_FALSE(report.clean());
    EXPECT_TRUE(report.tornSplit);
    EXPECT_EQ(report.garbledFrames, 1u);

    const IndexFsckReport repaired =
        fsckIndexStore(dir, {.repair = true});
    EXPECT_TRUE(repaired.rebuilt);
    EXPECT_GT(repaired.quarantined, 0u);
    EXPECT_TRUE(fsckIndexStore(dir).clean())
        << "repair converges to a clean store";

    // Every undamaged record is still served byte-identically; the
    // garbled one is a miss, not an error.
    service::ResultStore store({.dir = dir, .memCapacity = 0});
    for (size_t i = 0; i < 12; ++i) {
        if (i == 7) {
            EXPECT_FALSE(store.lookup(matrixKey(i)).has_value());
        } else {
            EXPECT_EQ(store.lookup(matrixKey(i)).value_or(""),
                      matrixPayload(i))
                << i;
        }
    }
    fs::remove_all(dir);
}

TEST(IndexFsck, MissingIndexIsStaleAndRepairRebuilds)
{
    const std::string dir = tempPath("ifsck_stale");
    fs::remove_all(dir);
    {
        IndexStore store({.dir = dir});
        for (size_t i = 0; i < 8; ++i)
            store.put(matrixKey(i), matrixPayload(i));
    }
    fs::remove(dir + "/" + kIndexFileName);

    const IndexFsckReport report = fsckIndexStore(dir);
    EXPECT_TRUE(report.staleIndex);
    const IndexFsckReport repaired =
        fsckIndexStore(dir, {.repair = true});
    EXPECT_TRUE(repaired.rebuilt);
    EXPECT_TRUE(fsckIndexStore(dir).clean());
    service::ResultStore store({.dir = dir, .memCapacity = 0});
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(store.lookup(matrixKey(i)).value_or(""),
                  matrixPayload(i))
            << i;
    fs::remove_all(dir);
}

TEST(IndexFsck, CompactAbsorbsStraysQuarantinesDamageAndReclaims)
{
    const std::string dir = tempPath("ifsck_compact");
    fs::remove_all(dir);
    {
        IndexStore store({.dir = dir});
        for (size_t i = 0; i < 10; ++i)
            store.put(matrixKey(i), matrixPayload(i));
        for (size_t i = 0; i < 10; ++i) // superseded space
            store.put(matrixKey(i), matrixPayload(i));
    }
    std::ofstream(dir + "/" + legacyRecordFileName("stray"),
                  std::ios::binary)
        << serializeRecordText("stray", "stray payload");

    const IndexFsckReport report = compactIndexStoreDir(dir);
    EXPECT_EQ(report.migrated, 1u);
    EXPECT_GT(report.reclaimedBytes, 0u);
    EXPECT_TRUE(fsckIndexStore(dir).clean());

    service::ResultStore store({.dir = dir, .memCapacity = 0});
    EXPECT_EQ(store.lookup("stray").value_or(""), "stray payload");
    for (size_t i = 0; i < 10; ++i)
        EXPECT_EQ(store.lookup(matrixKey(i)).value_or(""),
                  matrixPayload(i))
            << i;
    fs::remove_all(dir);
}

// --------------------------------------------------- crash recovery matrix

constexpr size_t kMatrixRecords = 220; // > kSlotsPerBucket: splits fire

/**
 * After a child died mid-write at some index.* point: repair, rerun
 * the child to completion, and require every record to come back
 * byte-identical through a fresh ResultStore.
 */
void
recoverAndVerify(const std::string &dir)
{
    const IndexFsckReport repaired =
        fsckIndexStore(dir, {.repair = true});
    (void)repaired; // any damage classified here is quarantined
    EXPECT_TRUE(fsckIndexStore(dir).clean());

    Subprocess rerun;
    rerun.spawn({Subprocess::selfExePath(), "--crash-child=istore",
                 "--dir=" + dir});
    rerun.closeWrite();
    const ExitStatus rerun_status = rerun.wait();
    EXPECT_TRUE(rerun_status.exited && rerun_status.code == 0)
        << rerun_status.describe();

    service::ResultStore store({.dir = dir, .memCapacity = 0});
    ASSERT_TRUE(store.indexed());
    for (size_t i = 0; i < kMatrixRecords; ++i)
        EXPECT_EQ(store.lookup(matrixKey(i)).value_or(""),
                  matrixPayload(i))
            << i;
    EXPECT_EQ(store.stats().corruptRecords, 0u);
}

TEST(IndexCrashMatrix, KillAtEveryMutationPointRecoversByteIdentically)
{
    // Every index.* mutation point, killed mid-flight (plus the two
    // payload-damage actions the append point supports). Hit counts
    // land the fault mid-stream — after enough inserts that splits and
    // bucket rewrites have state to tear.
    const char *specs[] = {
        "index.append:100=kill",
        "index.append:100=torn",
        "index.append:100=garble",
        "index.bucket_write:150=kill",
        "index.checkpoint=kill",
        "index.split_journal=kill",
        "index.split_apply=kill",
    };
    for (const char *spec : specs) {
        SCOPED_TRACE(spec);
        const std::string dir =
            tempPath(std::string("matrix_") + spec);
        fs::remove_all(dir);

        Subprocess child;
        child.spawn({Subprocess::selfExePath(), "--crash-child=istore",
                     "--dir=" + dir, "--spec=" + std::string(spec)});
        child.closeWrite();
        const ExitStatus status = child.wait();
        EXPECT_TRUE(status.signaled && status.signal == SIGKILL)
            << status.describe();

        recoverAndVerify(dir);
        fs::remove_all(dir);
    }
}

TEST(IndexCrashMatrix, EnospcAppendIsNonFatalAndSelfHealing)
{
    const std::string dir = tempPath("matrix_enospc");
    fs::remove_all(dir);
    IndexStore store({.dir = dir});
    store.put(matrixKey(0), matrixPayload(0));
    {
        ArmGuard armed("index.append=enospc");
        EXPECT_THROW(store.put(matrixKey(1), matrixPayload(1)),
                     DavfError);
    }
    // The failed append's partial frame is overwritten by the next
    // one: no torn garbage lands between frames.
    store.put(matrixKey(1), matrixPayload(1));
    EXPECT_EQ(store.lookup(matrixKey(0)).payload, matrixPayload(0));
    EXPECT_EQ(store.lookup(matrixKey(1)).payload, matrixPayload(1));
    EXPECT_TRUE(fsckIndexStore(dir).clean());
    fs::remove_all(dir);
}

TEST(IndexCrashMatrix, KillMidMigrationIsRerunnable)
{
    const std::string dir = tempPath("matrix_migrate");
    fs::remove_all(dir);
    {
        service::ResultStore store({.dir = dir, .memCapacity = 0,
                                    .format =
                                        service::StoreFormat::Legacy});
        for (size_t i = 0; i < 20; ++i)
            store.store(matrixKey(i), matrixPayload(i));
    }
    Subprocess child;
    child.spawn({Subprocess::selfExePath(), "--crash-child=imigrate",
                 "--dir=" + dir, "--spec=index.migrate:10=kill"});
    child.closeWrite();
    const ExitStatus status = child.wait();
    EXPECT_TRUE(status.signaled && status.signal == SIGKILL)
        << status.describe();

    // Mid-migration, *every* record is still served: index first,
    // legacy fallback second.
    {
        service::ResultStore store({.dir = dir, .memCapacity = 0});
        for (size_t i = 0; i < 20; ++i)
            EXPECT_EQ(store.lookup(matrixKey(i)).value_or(""),
                      matrixPayload(i))
                << i;
    }
    // The rerun finishes the job and retires every legacy file.
    const MigrateReport report = migrateStore(dir);
    EXPECT_EQ(report.quarantined, 0u);
    service::ResultStore store({.dir = dir, .memCapacity = 0});
    ASSERT_TRUE(store.indexed());
    for (size_t i = 0; i < 20; ++i)
        EXPECT_EQ(store.lookup(matrixKey(i)).value_or(""),
                  matrixPayload(i))
            << i;
    for (const auto &entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        EXPECT_FALSE(name.rfind("r-", 0) == 0
                     && name.find(".rec") != std::string::npos)
            << name;
    }
    fs::remove_all(dir);
}

TEST(IndexCrashMatrix, KillMidTailRepairIsRerunnable)
{
    const std::string dir = tempPath("matrix_tailrepair");
    fs::remove_all(dir);
    // A torn tail, crafted by the append point's torn action.
    {
        Subprocess child;
        child.spawn({Subprocess::selfExePath(), "--crash-child=istore",
                     "--dir=" + dir, "--spec=index.append:50=torn"});
        child.closeWrite();
        const ExitStatus status = child.wait();
        ASSERT_TRUE(status.signaled && status.signal == SIGKILL)
            << status.describe();
    }
    // Force the reopen to *discover* the tail via a rebuild scan, then
    // die mid-quarantine.
    fs::remove(dir + "/" + kIndexFileName);
    {
        Subprocess child;
        child.spawn({Subprocess::selfExePath(), "--crash-child=iopen",
                     "--dir=" + dir, "--spec=index.tail_repair=kill"});
        child.closeWrite();
        const ExitStatus status = child.wait();
        ASSERT_TRUE(status.signaled && status.signal == SIGKILL)
            << status.describe();
    }
    recoverAndVerify(dir);
    fs::remove_all(dir);
}

TEST(IndexCrashMatrix, KillMidCompactLosesNoRecords)
{
    const std::string dir = tempPath("matrix_compact");
    fs::remove_all(dir);
    {
        IndexStore store({.dir = dir});
        for (size_t i = 0; i < 30; ++i)
            store.put(matrixKey(i), matrixPayload(i));
        for (size_t i = 0; i < 30; ++i)
            store.put(matrixKey(i), matrixPayload(i));
    }
    Subprocess child;
    child.spawn({Subprocess::selfExePath(), "--crash-child=icompact",
                 "--dir=" + dir, "--spec=compact.rewrite=kill"});
    child.closeWrite();
    const ExitStatus status = child.wait();
    EXPECT_TRUE(status.signaled && status.signal == SIGKILL)
        << status.describe();

    // The interrupted compaction left either the old data file or the
    // finished rename — both rebuild into every record being served.
    const IndexFsckReport report = compactIndexStoreDir(dir);
    EXPECT_TRUE(fsckIndexStore(dir).clean());
    (void)report;
    service::ResultStore store({.dir = dir, .memCapacity = 0});
    for (size_t i = 0; i < 30; ++i)
        EXPECT_EQ(store.lookup(matrixKey(i)).value_or(""),
                  matrixPayload(i))
            << i;
    fs::remove_all(dir);
}

// --------------------------------------------------------------- children

/** Child options parsed from --spec= / --dir=. */
struct ChildArgs
{
    std::string spec;
    std::string dir;
};

int
istoreChild(const ChildArgs &args)
{
    IndexStore store({.dir = args.dir});
    for (size_t i = 0; i < kMatrixRecords; ++i)
        store.put(matrixKey(i), matrixPayload(i));
    return 0;
}

int
iopenChild(const ChildArgs &args)
{
    IndexStore store({.dir = args.dir});
    return 0;
}

int
imigrateChild(const ChildArgs &args)
{
    (void)migrateStore(args.dir);
    return 0;
}

int
icompactChild(const ChildArgs &args)
{
    IndexStore store({.dir = args.dir});
    (void)store.compact();
    return 0;
}

int
crashChildMain(const std::string &mode, const ChildArgs &args)
{
    try {
        if (!args.spec.empty())
            crashpoint::arm(crashpoint::parseSpec(args.spec.c_str()));
        if (mode == "istore")
            return istoreChild(args);
        if (mode == "iopen")
            return iopenChild(args);
        if (mode == "imigrate")
            return imigrateChild(args);
        if (mode == "icompact")
            return icompactChild(args);
        std::fprintf(stderr, "unknown crash-child mode '%s'\n",
                     mode.c_str());
        return 125;
    } catch (const DavfError &error) {
        std::fprintf(stderr, "crash-child: %s\n", error.what());
        return 3;
    }
}

} // namespace
} // namespace davf::store

int
main(int argc, char **argv)
{
    std::string child_mode;
    davf::store::ChildArgs child_args;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto take = [&](std::string_view prefix, std::string &out) {
            if (arg.substr(0, prefix.size()) != prefix)
                return false;
            out = std::string(arg.substr(prefix.size()));
            return true;
        };
        if (take("--crash-child=", child_mode)
            || take("--spec=", child_args.spec)
            || take("--dir=", child_args.dir)) {
            continue;
        }
    }
    if (!child_mode.empty())
        return davf::store::crashChildMain(child_mode, child_args);

    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
