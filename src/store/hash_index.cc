#include "hash_index.hh"

#include <cerrno>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/atomic_file.hh"
#include "util/crashpoint.hh"
#include "util/logging.hh"

namespace davf::store {

namespace {

/**
 * Relaxed atomic load/store over plainly-declared bucket fields. The
 * seqlock makes torn reads harmless (the version re-check discards
 * them); atomic_ref makes them defined behaviour.
 */
template <typename T>
T
relaxedLoad(const T &value)
{
    return std::atomic_ref<T>(const_cast<T &>(value))
        .load(std::memory_order_relaxed);
}

template <typename T>
void
relaxedStore(T &value, T next)
{
    std::atomic_ref<T>(value).store(next, std::memory_order_relaxed);
}

bool
pwriteAll(int fd, std::string_view bytes, uint64_t offset)
{
    size_t done = 0;
    while (done < bytes.size()) {
        const ssize_t n = ::pwrite(fd, bytes.data() + done,
                                   bytes.size() - done,
                                   static_cast<off_t>(offset + done));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<size_t>(n);
    }
    return true;
}

bool
preadAll(int fd, char *out, size_t size, uint64_t offset)
{
    size_t done = 0;
    while (done < size) {
        const ssize_t n = ::pread(fd, out + done, size - done,
                                  static_cast<off_t>(offset + done));
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<size_t>(n);
    }
    return true;
}

/** Depth cap: the directory never exceeds 2^31 entries. */
constexpr uint32_t kMaxDepth = 31;

constexpr uint64_t
depthMask(uint32_t localDepth)
{
    return localDepth >= 64 ? ~0ull : ((1ull << localDepth) - 1ull);
}

} // namespace

HashIndex::~HashIndex()
{
    close();
}

void
HashIndex::close()
{
    if (fd >= 0)
        ::close(fd);
    fd = -1;
    buckets.clear();
    tables.clear();
    table.store(nullptr, std::memory_order_relaxed);
    depth = 0;
    liveKeys = 0;
    committedWatermark = 0;
    dirtyOnDisk = false;
}

HashIndex::Bucket &
HashIndex::newBucket(uint32_t localDepth, uint64_t prefix)
{
    Bucket &bucket = buckets.emplace_back();
    bucket.id = static_cast<uint32_t>(buckets.size() - 1);
    bucket.localDepth = localDepth;
    bucket.prefix = prefix;
    return bucket;
}

HashIndex::DirTable &
HashIndex::growTable(uint32_t newDepth)
{
    auto &next = tables.emplace_back(
        std::make_unique<DirTable>(size_t(1) << newDepth));
    return *next;
}

void
HashIndex::create(const std::string &dir, const std::string &path)
{
    close();
    filePath = path;
    journalPath = dir + "/" + kSplitJournalName;
    // A leftover journal belongs to the index file being replaced.
    ::unlink(journalPath.c_str());
    fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
                0644);
    if (fd < 0) {
        davf_throw(ErrorKind::Io, "cannot create index file '", path,
                   "': ", std::strerror(errno));
    }
    Bucket &root = newBucket(0, 0);
    DirTable &t = growTable(0);
    t.entries[0].store(&root, std::memory_order_relaxed);
    table.store(&t, std::memory_order_release);
    depth = 0;
    dirtyOnDisk = true;
    persistHeader(false, 0);
    persistBucket(root);
}

Result<HashIndex::LoadInfo>
HashIndex::load(const std::string &dir, const std::string &path)
{
    using R = Result<LoadInfo>;
    close();
    filePath = path;
    journalPath = dir + "/" + kSplitJournalName;

    struct stat journalStat{};
    if (::stat(journalPath.c_str(), &journalStat) == 0) {
        return R::Err(ErrorKind::BadInput,
                      "index: split journal present (torn split)");
    }

    fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
    if (fd < 0) {
        const int saved = errno;
        if (saved == ENOENT)
            return R::Err(ErrorKind::BadInput, "index: no index file");
        davf_throw(ErrorKind::Io, "cannot open index file '", path,
                   "': ", std::strerror(saved));
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        const int saved = errno;
        close();
        davf_throw(ErrorKind::Io, "cannot stat index file '", path,
                   "': ", std::strerror(saved));
    }
    const uint64_t fileSize = static_cast<uint64_t>(st.st_size);
    if (fileSize < kPageSize) {
        close();
        return R::Err(ErrorKind::BadInput, "index: short file");
    }

    std::string page(kPageSize, '\0');
    if (!preadAll(fd, page.data(), page.size(), 0)) {
        close();
        return R::Err(ErrorKind::BadInput, "index: unreadable header");
    }
    auto header = parseIndexHeader(page);
    if (!header) {
        close();
        return R::Err(header.error());
    }

    // Every full page after the header is a bucket; a torn trailing
    // partial page (or any page that fails its checksum) fails the
    // load — the owner rebuilds from the data file.
    const uint64_t pageCount = fileSize / kPageSize - 1;
    if (pageCount == 0 || pageCount < header.value().bucketPages) {
        close();
        return R::Err(ErrorKind::BadInput,
                      "index: fewer bucket pages than header claims");
    }
    uint32_t maxDepth = header.value().globalDepth;
    for (uint64_t id = 0; id < pageCount; ++id) {
        if (!preadAll(fd, page.data(), page.size(),
                      (id + 1) * kPageSize)) {
            close();
            return R::Err(ErrorKind::BadInput,
                          "index: unreadable bucket page");
        }
        auto image = parseBucketPage(page);
        if (!image) {
            close();
            return R::Err(image.error());
        }
        Bucket &bucket = newBucket(image.value().localDepth,
                                   image.value().prefix);
        bucket.count = image.value().count;
        std::memcpy(bucket.slots, image.value().slots,
                    sizeof(bucket.slots));
        if (bucket.localDepth > maxDepth)
            maxDepth = bucket.localDepth;
        liveKeys += bucket.count;
    }
    if (maxDepth > kMaxDepth) {
        close();
        return R::Err(ErrorKind::BadInput, "index: insane depth");
    }

    // Rebuild the directory purely from bucket (prefix, localDepth)
    // pairs and require exact coverage: every directory entry owned by
    // exactly one bucket. Anything else is a stale directory.
    DirTable &t = growTable(maxDepth);
    for (Bucket &bucket : buckets) {
        if (bucket.localDepth > maxDepth
            || (bucket.prefix & ~depthMask(bucket.localDepth)) != 0) {
            close();
            return R::Err(ErrorKind::BadInput,
                          "index: bucket shape out of range");
        }
        const uint64_t step = 1ull << bucket.localDepth;
        for (uint64_t i = bucket.prefix; i < t.entries.size();
             i += step) {
            if (t.entries[i].load(std::memory_order_relaxed)
                != nullptr) {
                close();
                return R::Err(ErrorKind::BadInput,
                              "index: overlapping directory coverage");
            }
            t.entries[i].store(&bucket, std::memory_order_relaxed);
        }
    }
    for (const auto &entry : t.entries) {
        if (entry.load(std::memory_order_relaxed) == nullptr) {
            close();
            return R::Err(ErrorKind::BadInput,
                          "index: directory hole (stale directory)");
        }
    }
    table.store(&t, std::memory_order_release);
    depth = maxDepth;
    committedWatermark = header.value().dataCommitted;
    dirtyOnDisk = !header.value().clean;
    return R::Ok(LoadInfo{header.value().clean,
                          header.value().dataCommitted});
}

std::optional<HashIndex::Candidate>
HashIndex::lookup(uint64_t hash, uint32_t *probes) const
{
    const uint16_t fp = fingerprint(hash);
    uint32_t probed = 0;
    for (int attempt = 0; attempt < 2048; ++attempt) {
        DirTable *t = table.load(std::memory_order_acquire);
        if (t == nullptr)
            return std::nullopt;
        Bucket *bucket = t->entries[hash & (t->entries.size() - 1)]
                             .load(std::memory_order_acquire);
        if (bucket == nullptr)
            return std::nullopt;

        const uint64_t v1 =
            bucket->version.load(std::memory_order_acquire);
        if (v1 & 1) {
            std::this_thread::yield();
            continue;
        }
        uint32_t count = relaxedLoad(bucket->count);
        if (count > kSlotsPerBucket)
            count = kSlotsPerBucket;
        const uint32_t localDepth = relaxedLoad(bucket->localDepth);
        const uint64_t prefix = relaxedLoad(bucket->prefix);
        Candidate candidate;
        bool found = false;
        for (uint32_t i = 0; i < count; ++i) {
            const uint64_t slotHash =
                relaxedLoad(bucket->slots[i].hash);
            ++probed;
            // The 16-bit fingerprint probe: reject most non-matching
            // slots on the top bits before the full compare.
            if (fingerprint(slotHash) != fp || slotHash != hash)
                continue;
            candidate.offset = relaxedLoad(bucket->slots[i].offset);
            candidate.size = relaxedLoad(bucket->slots[i].size);
            found = true;
            break;
        }
        std::atomic_thread_fence(std::memory_order_acquire);
        if (bucket->version.load(std::memory_order_relaxed) != v1)
            continue; // A writer touched the bucket; retry.
        if (localDepth > kMaxDepth + 1
            || (hash & depthMask(localDepth)) != prefix) {
            // Stable read, but of a bucket that no longer owns this
            // hash (a split migrated it). Reload the directory.
            std::this_thread::yield();
            continue;
        }
        if (probes != nullptr)
            *probes = probed;
        return found ? std::optional<Candidate>(candidate)
                     : std::nullopt;
    }
    if (probes != nullptr)
        *probes = probed;

    // Pathological contention: fall back to an exclusive read.
    const std::lock_guard<std::mutex> lock(writerMutex);
    DirTable *t = table.load(std::memory_order_acquire);
    if (t == nullptr)
        return std::nullopt;
    Bucket *bucket = t->entries[hash & (t->entries.size() - 1)]
                         .load(std::memory_order_acquire);
    for (uint32_t i = 0; i < bucket->count; ++i) {
        if (bucket->slots[i].hash == hash)
            return Candidate{bucket->slots[i].offset,
                             bucket->slots[i].size};
    }
    return std::nullopt;
}

void
HashIndex::insert(uint64_t hash, uint64_t offset, uint32_t size)
{
    const std::lock_guard<std::mutex> lock(writerMutex);
    davf_assert(fd >= 0, "insert into a closed index");
    markDirty();
    for (;;) {
        DirTable *t = table.load(std::memory_order_relaxed);
        Bucket &bucket =
            *t->entries[hash & (t->entries.size() - 1)].load(
                std::memory_order_relaxed);

        // Replace in place when the hash is already present (a
        // re-stored key, a tail replay, or a 64-bit hash collision —
        // the latter keeps legacy last-write-wins semantics).
        for (uint32_t i = 0; i < bucket.count; ++i) {
            if (bucket.slots[i].hash != hash)
                continue;
            bucket.version.fetch_add(1, std::memory_order_acq_rel);
            relaxedStore(bucket.slots[i].offset, offset);
            relaxedStore(bucket.slots[i].size, size);
            bucket.version.fetch_add(1, std::memory_order_release);
            persistBucket(bucket);
            return;
        }

        if (bucket.count < kSlotsPerBucket) {
            bucket.version.fetch_add(1, std::memory_order_acq_rel);
            relaxedStore(bucket.slots[bucket.count].hash, hash);
            relaxedStore(bucket.slots[bucket.count].offset, offset);
            relaxedStore(bucket.slots[bucket.count].size, size);
            relaxedStore(bucket.slots[bucket.count].reserved, 0u);
            relaxedStore(bucket.count, bucket.count + 1);
            bucket.version.fetch_add(1, std::memory_order_release);
            ++liveKeys;
            persistBucket(bucket);
            return;
        }

        if (bucket.localDepth >= kMaxDepth) {
            // 169 distinct 64-bit hashes sharing 31 low bits: not a
            // real workload. Sacrifice the oldest slot rather than
            // grow without bound; the evicted key degrades to a miss.
            davf_warn("hash index bucket overflow at depth cap; "
                      "evicting a slot");
            bucket.version.fetch_add(1, std::memory_order_acq_rel);
            relaxedStore(bucket.slots[0].hash, hash);
            relaxedStore(bucket.slots[0].offset, offset);
            relaxedStore(bucket.slots[0].size, size);
            bucket.version.fetch_add(1, std::memory_order_release);
            persistBucket(bucket);
            return;
        }

        split(bucket);
    }
}

void
HashIndex::split(Bucket &bucket)
{
    static const crashpoint::CrashPoint journal_point(
        "index.split_journal");
    static const crashpoint::CrashPoint apply_point(
        "index.split_apply");

    const uint32_t oldDepth = bucket.localDepth;

    // Journal first, through the atomic tmp+rename discipline: from
    // here until both bucket pages are durable, a crash leaves the
    // journal behind and the next open (or fsck) classifies a torn
    // split and rebuilds instead of trusting half-applied pages.
    journal_point.fire();
    writeFileAtomic(journalPath,
                    "split page=" + std::to_string(bucket.id)
                        + " new=" + std::to_string(buckets.size())
                        + " depth=" + std::to_string(oldDepth + 1)
                        + "\n");

    Bucket &sibling =
        newBucket(oldDepth + 1, bucket.prefix | (1ull << oldDepth));

    // Partition the slots under the seqlock. The sibling is invisible
    // to readers until the directory publishes it below.
    bucket.version.fetch_add(1, std::memory_order_acq_rel);
    uint32_t keep = 0;
    for (uint32_t i = 0; i < bucket.count; ++i) {
        const BucketSlot slot = bucket.slots[i];
        if ((slot.hash >> oldDepth) & 1) {
            sibling.slots[sibling.count++] = slot;
        } else {
            relaxedStore(bucket.slots[keep].hash, slot.hash);
            relaxedStore(bucket.slots[keep].offset, slot.offset);
            relaxedStore(bucket.slots[keep].size, slot.size);
            ++keep;
        }
    }
    relaxedStore(bucket.count, keep);
    relaxedStore(bucket.localDepth, oldDepth + 1);
    bucket.version.fetch_add(1, std::memory_order_release);

    // Publish the sibling in the directory: in place for a plain
    // split, or via a doubled table swapped in RCU-style.
    DirTable *t = table.load(std::memory_order_relaxed);
    if (oldDepth == depth) {
        DirTable &next = growTable(depth + 1);
        for (size_t i = 0; i < next.entries.size(); ++i) {
            next.entries[i].store(
                t->entries[i & (t->entries.size() - 1)].load(
                    std::memory_order_relaxed),
                std::memory_order_relaxed);
        }
        ++depth;
        t = &next;
    }
    const uint64_t step = 1ull << (oldDepth + 1);
    for (uint64_t i = sibling.prefix; i < t->entries.size();
         i += step) {
        t->entries[i].store(&sibling, std::memory_order_release);
    }
    table.store(t, std::memory_order_release);

    apply_point.fire();
    persistBucket(sibling);
    persistBucket(bucket);
    // Both pages must be durable before the journal is retired —
    // otherwise a crash could lose one page with no journal left to
    // flag the tear.
    if (::fdatasync(fd) != 0 && errno != EINVAL && errno != ENOTSUP) {
        davf_throw(ErrorKind::Io, "cannot fdatasync index '", filePath,
                   "': ", std::strerror(errno));
    }
    if (::unlink(journalPath.c_str()) != 0) {
        davf_warn("cannot retire split journal '", journalPath,
                  "': ", std::strerror(errno),
                  " (next open will rebuild)");
    }
    ++splitCount;
}

bool
HashIndex::remove(uint64_t hash, uint64_t offset)
{
    const std::lock_guard<std::mutex> lock(writerMutex);
    if (fd < 0)
        return false;
    DirTable *t = table.load(std::memory_order_relaxed);
    Bucket &bucket = *t->entries[hash & (t->entries.size() - 1)].load(
        std::memory_order_relaxed);
    for (uint32_t i = 0; i < bucket.count; ++i) {
        if (bucket.slots[i].hash != hash
            || bucket.slots[i].offset != offset) {
            continue;
        }
        markDirty();
        const BucketSlot last = bucket.slots[bucket.count - 1];
        bucket.version.fetch_add(1, std::memory_order_acq_rel);
        relaxedStore(bucket.slots[i].hash, last.hash);
        relaxedStore(bucket.slots[i].offset, last.offset);
        relaxedStore(bucket.slots[i].size, last.size);
        relaxedStore(bucket.count, bucket.count - 1);
        bucket.version.fetch_add(1, std::memory_order_release);
        --liveKeys;
        persistBucket(bucket);
        return true;
    }
    return false;
}

void
HashIndex::persistBucket(const Bucket &bucket)
{
    static const crashpoint::CrashPoint write_point(
        "index.bucket_write");
    write_point.fire();

    BucketImage image;
    image.prefix = bucket.prefix;
    image.localDepth = bucket.localDepth;
    image.count = bucket.count;
    std::memcpy(image.slots, bucket.slots, sizeof(image.slots));
    const std::string page = serializeBucketPage(image);
    if (!pwriteAll(fd, page,
                   (uint64_t(bucket.id) + 1) * kPageSize)) {
        davf_throw(ErrorKind::Io, "cannot write bucket page in '",
                   filePath, "': ", std::strerror(errno));
    }
}

void
HashIndex::persistHeader(bool clean, uint64_t dataCommitted)
{
    IndexHeader header;
    header.slotsPerBucket = kSlotsPerBucket;
    header.globalDepth = depth;
    header.bucketPages = buckets.size();
    header.keyCount = liveKeys;
    header.dataCommitted = dataCommitted;
    header.clean = clean;
    if (!pwriteAll(fd, serializeIndexHeader(header), 0)) {
        davf_throw(ErrorKind::Io, "cannot write index header in '",
                   filePath, "': ", std::strerror(errno));
    }
}

void
HashIndex::markDirty()
{
    if (dirtyOnDisk)
        return;
    // The dirty mark must be durable before any page mutation can be:
    // a clean header promises the pages cover dataCommitted.
    persistHeader(false, committedWatermark);
    if (::fdatasync(fd) != 0 && errno != EINVAL && errno != ENOTSUP) {
        davf_throw(ErrorKind::Io, "cannot fdatasync index '", filePath,
                   "': ", std::strerror(errno));
    }
    dirtyOnDisk = true;
}

void
HashIndex::checkpoint(uint64_t dataCommitted)
{
    static const crashpoint::CrashPoint checkpoint_point(
        "index.checkpoint");

    const std::lock_guard<std::mutex> lock(writerMutex);
    davf_assert(fd >= 0, "checkpoint on a closed index");
    checkpoint_point.fire();
    // Pages first, then the clean header that vouches for them.
    if (::fdatasync(fd) != 0 && errno != EINVAL && errno != ENOTSUP) {
        davf_throw(ErrorKind::Io, "cannot fdatasync index '", filePath,
                   "': ", std::strerror(errno));
    }
    persistHeader(true, dataCommitted);
    if (::fdatasync(fd) != 0 && errno != EINVAL && errno != ENOTSUP) {
        davf_throw(ErrorKind::Io, "cannot fdatasync index '", filePath,
                   "': ", std::strerror(errno));
    }
    committedWatermark = dataCommitted;
    dirtyOnDisk = false;
}

uint32_t
HashIndex::globalDepth() const
{
    const std::lock_guard<std::mutex> lock(writerMutex);
    return depth;
}

uint64_t
HashIndex::bucketCount() const
{
    const std::lock_guard<std::mutex> lock(writerMutex);
    return buckets.size();
}

uint64_t
HashIndex::keyCount() const
{
    const std::lock_guard<std::mutex> lock(writerMutex);
    return liveKeys;
}

void
HashIndex::forEachSlot(
    const std::function<void(const BucketSlot &)> &fn) const
{
    const std::lock_guard<std::mutex> lock(writerMutex);
    for (const Bucket &bucket : buckets) {
        for (uint32_t i = 0; i < bucket.count; ++i)
            fn(bucket.slots[i]);
    }
}

} // namespace davf::store
