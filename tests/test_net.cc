/**
 * @file
 * Tests for the distributed campaign fabric (src/net/):
 *
 *  - the TCP frame transport: round-trips, hostile length prefixes
 *    rejected at kMaxFrameBytes before allocating, truncated payloads
 *    and mid-frame disconnects surfacing as torn-stream errors, partial
 *    frames surviving read timeouts;
 *  - the versioned hello handshake: wrong magic/version/shape rejected,
 *    a truncation corpus over every prefix of a valid hello, workspace
 *    fingerprint mismatches refused at the coordinator;
 *  - the DAVF_TEST_NETFAULT grammar;
 *  - coordinator + worker end to end: bit-identity with thread mode at
 *    any node count, recovery from garbled replies, dropped replies,
 *    stalled nodes, and mid-campaign disconnects, graceful degradation
 *    to local compute with an empty fleet, and the shutdown drain that
 *    keeps a quit frame from racing an in-flight result.
 *
 * The binary re-executes itself as a worker node when invoked with
 * --net-worker=PORT:NODE:FINGERPRINT (rebuilding the same fixture
 * engine), so it has its own main() instead of linking gtest_main.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/campaign/campaign.hh"
#include "src/core/shard.hh"
#include "src/core/vulnerability.hh"
#include "src/net/coordinator.hh"
#include "src/net/frame.hh"
#include "src/net/netfault.hh"
#include "src/net/worker.hh"
#include "src/util/error.hh"
#include "src/util/subprocess.hh"
#include "tests/helpers.hh"

namespace davf {
namespace {

/** The fixture "workspace fingerprint" both ends present. */
constexpr const char *kTestFingerprint = "test-net-fixture";

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "davf_net_test_"
        + std::to_string(::getpid()) + "_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(file)) << path;
    std::ostringstream os;
    os << file.rdbuf();
    return os.str();
}

/** Sets an environment variable for the enclosing scope. */
struct EnvGuard
{
    const char *name;
    EnvGuard(const char *the_name, const std::string &value)
        : name(the_name)
    {
        ::setenv(name, value.c_str(), 1);
    }
    ~EnvGuard() { ::unsetenv(name); }
};

/** The deterministic circuit both the tests and worker children build
 *  (identical to test_campaign's fixture, including the seed). */
struct NetFixture
{
    test::RandomCircuit circuit;
    std::unique_ptr<VulnerabilityEngine> engine;
    std::unique_ptr<StructureRegistry> registry;

    NetFixture() : circuit(test::makeRandomCircuit(11, 8, 40, 12))
    {
        engine = std::make_unique<VulnerabilityEngine>(
            *circuit.netlist, CellLibrary::defaultLibrary(),
            *circuit.workload);
        registry = std::make_unique<StructureRegistry>(*circuit.netlist);
        registry->add("Rnd", "rnd/");
    }

    CampaignOptions options() const
    {
        CampaignOptions opts;
        opts.benchmark = "rndtrace";
        opts.structures = {"Rnd"};
        opts.delays = {0.3, 0.6, 0.9};
        opts.runSavf = true;
        opts.sampling.maxInjectionCycles = 4;
        opts.sampling.maxWires = 30;
        opts.sampling.maxFlops = 8;
        opts.sampling.seed = 5;
        return opts;
    }
};

// ------------------------------------------------------------- transport

/** A listener plus one raw (unframed) sender connection, so tests can
 *  push hostile bytes at a FrameConn reader. */
struct RawSender
{
    net::ListenSocket listener;
    int sender = -1;

    RawSender()
    {
        listener = net::listenTcp("127.0.0.1", 0);
        sender = net::connectTcp("127.0.0.1", listener.port, 2000.0);
    }

    ~RawSender()
    {
        closeSender();
        ::close(listener.fd);
    }

    net::FrameConn
    accept()
    {
        return net::FrameConn(net::acceptTcp(listener.fd));
    }

    void
    raw(std::string_view bytes)
    {
        ASSERT_EQ(::write(sender, bytes.data(), bytes.size()),
                  static_cast<ssize_t>(bytes.size()));
    }

    void
    closeSender()
    {
        if (sender >= 0)
            ::close(sender);
        sender = -1;
    }
};

TEST(TcpFrame, RoundTripsBinaryPayloads)
{
    net::ListenSocket listener = net::listenTcp("127.0.0.1", 0);
    net::FrameConn client(
        net::connectTcp("127.0.0.1", listener.port, 2000.0));
    net::FrameConn server(net::acceptTcp(listener.fd));
    ::close(listener.fd);

    const std::string binary{"\x00\xff\x7f\n frame", 8};
    client.send("hello");
    client.send("");
    client.send(binary);

    std::string payload;
    ASSERT_EQ(server.read(payload, 2000.0),
              net::FrameConn::ReadStatus::Frame);
    EXPECT_EQ(payload, "hello");
    ASSERT_EQ(server.read(payload, 2000.0),
              net::FrameConn::ReadStatus::Frame);
    EXPECT_EQ(payload, "");
    ASSERT_EQ(server.read(payload, 2000.0),
              net::FrameConn::ReadStatus::Frame);
    EXPECT_EQ(payload, binary);

    // Replies flow the other way on the same connection.
    server.send("pong");
    ASSERT_EQ(client.read(payload, 2000.0),
              net::FrameConn::ReadStatus::Frame);
    EXPECT_EQ(payload, "pong");

    // A clean close is EOF, not an error.
    client.close();
    EXPECT_EQ(server.read(payload, 2000.0),
              net::FrameConn::ReadStatus::Eof);
}

TEST(TcpFrame, OversizedPrefixIsRejectedBeforeAllocating)
{
    RawSender wire;
    net::FrameConn victim = wire.accept();
    // A 4 GiB length prefix: honouring it would allocate unbounded
    // attacker-controlled memory, so the reader must throw BadInput on
    // the prefix alone, before any payload arrives.
    wire.raw(std::string(4, '\xff'));

    std::string payload;
    try {
        victim.read(payload, 2000.0);
        FAIL() << "expected DavfError";
    } catch (const DavfError &error) {
        EXPECT_EQ(error.kind(), ErrorKind::BadInput);
    }
}

TEST(TcpFrame, TruncatedPayloadIsTornStream)
{
    RawSender wire;
    net::FrameConn victim = wire.accept();
    // Announce 64 bytes, deliver 10, vanish.
    wire.raw(std::string("\x40\x00\x00\x00", 4));
    wire.raw("only10byte");
    wire.closeSender();

    std::string payload;
    try {
        victim.read(payload, 2000.0);
        FAIL() << "expected DavfError";
    } catch (const DavfError &error) {
        EXPECT_EQ(error.kind(), ErrorKind::BadInput);
    }
}

TEST(TcpFrame, MidPrefixDisconnectIsTornStream)
{
    RawSender wire;
    net::FrameConn victim = wire.accept();
    wire.raw(std::string("\x10\x00", 2)); // Half a length prefix.
    wire.closeSender();

    std::string payload;
    try {
        victim.read(payload, 2000.0);
        FAIL() << "expected DavfError";
    } catch (const DavfError &error) {
        EXPECT_EQ(error.kind(), ErrorKind::BadInput);
    }
}

TEST(TcpFrame, PartialFrameSurvivesReadTimeout)
{
    RawSender wire;
    net::FrameConn victim = wire.accept();
    wire.raw(std::string("\x05\x00\x00\x00", 4));
    wire.raw("he");

    std::string payload;
    EXPECT_EQ(victim.read(payload, 50.0),
              net::FrameConn::ReadStatus::Timeout);
    wire.raw("llo");
    ASSERT_EQ(victim.read(payload, 2000.0),
              net::FrameConn::ReadStatus::Frame);
    EXPECT_EQ(payload, "hello");
}

TEST(TcpFrame, ParseHostPort)
{
    std::string host;
    uint16_t port = 0;
    net::parseHostPort("127.0.0.1:8080", host, port);
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 8080);
    net::parseHostPort("localhost:0", host, port);
    EXPECT_EQ(host, "localhost");
    EXPECT_EQ(port, 0);

    for (const char *bad :
         {"", ":", "host", "host:", ":123", "host:x", "host:12x",
          "host:65536", "host:123456"}) {
        EXPECT_THROW(net::parseHostPort(bad, host, port), DavfError)
            << '"' << bad << '"';
    }
}

TEST(TcpFrame, ConnectToDeadPortThrowsIo)
{
    // Bind an ephemeral port, close it again, and dial the corpse.
    net::ListenSocket doomed = net::listenTcp("127.0.0.1", 0);
    const uint16_t port = doomed.port;
    ::close(doomed.fd);
    try {
        net::connectTcp("127.0.0.1", port, 1000.0);
        FAIL() << "expected DavfError";
    } catch (const DavfError &error) {
        EXPECT_EQ(error.kind(), ErrorKind::Io);
    }
}

// ------------------------------------------------------------- handshake

TEST(Handshake, HelloRoundTrips)
{
    const std::string payload = net::makeHello("node-7", "fp-abc");
    const Result<net::Hello> hello = net::parseHello(payload);
    ASSERT_TRUE(hello.ok()) << hello.error().what();
    EXPECT_EQ(hello.value().node, "node-7");
    EXPECT_EQ(hello.value().fingerprint, "fp-abc");
}

TEST(Handshake, RejectsGarbageAndTruncations)
{
    for (const char *bad :
         {"", "hello", "davf-net", "davf-net v1", "davf-net v1 hello",
          "davf-net v1 hello node", "davf-net v2 hello node fp",
          "davf-nit v1 hello node fp", "davf-net v1 hEllo node fp",
          "GET / HTTP/1.1"}) {
        EXPECT_FALSE(net::parseHello(bad).ok()) << '"' << bad << '"';
    }

    // Every truncation that cuts into or before the fingerprint's
    // first character must be rejected, never crash or mis-parse. (A
    // merely *shortened* fingerprint still parses — the fingerprint
    // gate refuses it, not the grammar.)
    const std::string valid = net::makeHello("n", "fp");
    const size_t fp_start = valid.rfind(' ') + 1;
    for (size_t len = 0; len <= fp_start; ++len)
        EXPECT_FALSE(net::parseHello(valid.substr(0, len)).ok()) << len;
    EXPECT_TRUE(net::parseHello(valid).ok());
}

TEST(Handshake, ReplyClassification)
{
    std::string reason;
    Result<bool> ok = net::parseHandshakeReply(net::makeWelcome(), reason);
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(ok.value());

    ok = net::parseHandshakeReply(net::makeReject("fingerprint clash"),
                                  reason);
    ASSERT_TRUE(ok.ok());
    EXPECT_FALSE(ok.value());
    EXPECT_EQ(reason, "fingerprint clash");

    for (const char *bad :
         {"", "welcome", "davf-net v2 welcome", "davf-net v1 wlcome"}) {
        EXPECT_FALSE(net::parseHandshakeReply(bad, reason).ok())
            << '"' << bad << '"';
    }
}

// -------------------------------------------------------------- netfault

TEST(NetFault, ParsesKindsAndTargets)
{
    net::NetFault fault = net::parseNetFault("garble@w1");
    EXPECT_EQ(fault.kind, net::NetFaultKind::Garble);
    EXPECT_TRUE(fault.matches("w1", 123));
    EXPECT_FALSE(fault.matches("w2", 123));

    fault = net::parseNetFault("drop@*");
    EXPECT_EQ(fault.kind, net::NetFaultKind::Drop);
    EXPECT_TRUE(fault.matches("anything", 0));

    fault = net::parseNetFault("stall@node-3:42");
    EXPECT_EQ(fault.kind, net::NetFaultKind::Stall);
    EXPECT_TRUE(fault.matches("node-3", 42));
    EXPECT_FALSE(fault.matches("node-3", 43));

    fault = net::parseNetFault("disconnect@*:7");
    EXPECT_EQ(fault.kind, net::NetFaultKind::Disconnect);
    EXPECT_TRUE(fault.matches("any", 7));
    EXPECT_FALSE(fault.matches("any", 8));

    for (const char *bad :
         {"", "garble", "garble@", "melt@w1", "stall@w1:x", "@w1"}) {
        EXPECT_EQ(net::parseNetFault(bad).kind, net::NetFaultKind::None)
            << '"' << bad << '"';
    }
    EXPECT_EQ(net::parseNetFault(nullptr).kind, net::NetFaultKind::None);
}

// ------------------------------------------------------------ end to end

/** A coordinator over the fixture engine plus spawned worker children. */
struct NetHarness
{
    NetFixture &fixture;
    std::unique_ptr<net::Coordinator> coordinator;
    std::vector<std::unique_ptr<Subprocess>> workers;
    uint16_t port = 0;

    explicit NetHarness(NetFixture &the_fixture,
                        net::CoordinatorOptions options = {})
        : fixture(the_fixture)
    {
        net::ListenSocket listener = net::listenTcp("127.0.0.1", 0);
        port = listener.port;
        options.fingerprint = kTestFingerprint;
        options.backoffBaseMs = 1.0; // Tests retry fast.
        options.localCycle = [this](const ShardSpec &spec) {
            const Structure *structure =
                fixture.registry->find(spec.structure);
            EXPECT_NE(structure, nullptr);
            return fixture.engine->delayAvfCycle(
                *structure, spec.delayFraction, spec.cycle,
                spec.sampling, spec.wireBegin, spec.wireEnd,
                spec.quarantined);
        };
        options.localSavf = [this](const ShardSpec &spec) {
            const Structure *structure =
                fixture.registry->find(spec.structure);
            EXPECT_NE(structure, nullptr);
            return fixture.engine->savf(*structure, spec.sampling);
        };
        coordinator = std::make_unique<net::Coordinator>(
            listener, std::move(options));
    }

    ~NetHarness()
    {
        coordinator->shutdown();
        for (const std::unique_ptr<Subprocess> &worker : workers) {
            if (worker->running())
                worker->terminate(2000.0);
        }
    }

    /** Spawn one worker child named @p node; it connects with retries. */
    void
    spawnWorker(const std::string &node,
                const std::string &fingerprint = kTestFingerprint)
    {
        auto proc = std::make_unique<Subprocess>();
        proc->spawn({Subprocess::selfExePath(),
                     "--net-worker=" + std::to_string(port) + ":" + node
                         + ":" + fingerprint},
                    {});
        workers.push_back(std::move(proc));
    }

    CampaignOptions
    netOptions() const
    {
        CampaignOptions opts = fixture.options();
        opts.isolate = IsolationMode::Net;
        opts.dispatcher = coordinator.get();
        return opts;
    }
};

/** Thread-mode reference journal + CSV for the fixture campaign,
 *  computed once and shared by every bit-identity test below. */
struct Reference
{
    std::string journal;
    std::string csv;
};

const Reference &
threadModeReference()
{
    static const Reference ref = [] {
        const std::string ckpt = tempPath("thread_ref.ckpt");
        const std::string csv = tempPath("thread_ref.csv");
        NetFixture fixture;
        CampaignOptions opts = fixture.options();
        opts.checkpointPath = ckpt;
        opts.csvPath = csv;
        Campaign campaign(*fixture.engine, *fixture.registry, opts);
        const CampaignSummary summary = campaign.run();
        EXPECT_FALSE(summary.interrupted);
        EXPECT_EQ(summary.cellsFailed, 0u);
        Reference result{slurp(ckpt), slurp(csv)};
        std::remove(ckpt.c_str());
        std::remove(csv.c_str());
        return result;
    }();
    return ref;
}

/** Run the fixture campaign through @p harness and require the journal
 *  and CSV to be byte-identical to the thread-mode reference. */
void
expectNetRunMatchesReference(NetHarness &harness, const std::string &tag)
{
    const Reference &ref = threadModeReference();
    const std::string ckpt = tempPath(tag + ".ckpt");
    const std::string csv = tempPath(tag + ".csv");
    CampaignOptions opts = harness.netOptions();
    opts.checkpointPath = ckpt;
    opts.csvPath = csv;
    Campaign campaign(*harness.fixture.engine, *harness.fixture.registry,
                      opts);
    const CampaignSummary summary = campaign.run();
    EXPECT_FALSE(summary.interrupted) << tag;
    EXPECT_EQ(summary.cellsFailed, 0u) << tag;
    EXPECT_EQ(slurp(ckpt), ref.journal) << tag;
    EXPECT_EQ(slurp(csv), ref.csv) << tag;
    std::remove(ckpt.c_str());
    std::remove(csv.c_str());
}

TEST(NetCampaign, BitIdenticalToThreadModeAtAnyNodeCount)
{
    for (unsigned nodes : {1u, 3u}) {
        NetFixture fixture;
        NetHarness harness(fixture);
        for (unsigned i = 0; i < nodes; ++i)
            harness.spawnWorker("w" + std::to_string(i));
        ASSERT_EQ(harness.coordinator->waitForNodes(nodes, 30000.0),
                  nodes);
        expectNetRunMatchesReference(harness,
                                     "ident" + std::to_string(nodes));

        // A clean quit ends every worker with exit 0 — the shutdown
        // drain consumes any frame racing the quit instead of
        // reporting the node as failed or killing it mid-write.
        harness.coordinator->shutdown();
        for (const std::unique_ptr<Subprocess> &worker :
             harness.workers) {
            const ExitStatus status = worker->wait();
            EXPECT_TRUE(status.exited) << status.describe();
            EXPECT_EQ(status.code, 0) << status.describe();
        }
    }
}

TEST(NetCampaign, ScalarTsimCoordinatorMatchesReference)
{
    // The coordinator's local engine runs with lane batching and sweep
    // reuse disabled while the remote workers keep their defaults: the
    // tsim knobs are engine-local speed switches, so the mixed fleet
    // still reproduces the thread-mode reference byte for byte.
    NetFixture fixture;
    NetHarness harness(fixture);
    harness.spawnWorker("w0");
    ASSERT_EQ(harness.coordinator->waitForNodes(1, 30000.0), 1u);

    const Reference &ref = threadModeReference();
    const std::string ckpt = tempPath("tsim_net.ckpt");
    const std::string csv = tempPath("tsim_net.csv");
    CampaignOptions opts = harness.netOptions();
    opts.vectorTsim = false;
    opts.tsimLanes = 1;
    opts.checkpointPath = ckpt;
    opts.csvPath = csv;
    Campaign campaign(*harness.fixture.engine, *harness.fixture.registry,
                      opts);
    const CampaignSummary summary = campaign.run();
    EXPECT_FALSE(summary.interrupted);
    EXPECT_EQ(summary.cellsFailed, 0u);
    EXPECT_EQ(slurp(ckpt), ref.journal);
    EXPECT_EQ(slurp(csv), ref.csv);
    std::remove(ckpt.c_str());
    std::remove(csv.c_str());
}

// The fault-injection tests below run the faulted node as the *only*
// node, so the fault deterministically fires on its first shard (with
// a second node present, work stealing may hand the faulted node no
// work at all on a fast machine). Multi-node redispatch is covered by
// BitIdenticalToThreadModeAtAnyNodeCount and the CI net_smoke.

TEST(NetCampaign, GarbledReplyIsRedispatched)
{
    const EnvGuard fault("DAVF_TEST_NETFAULT", "garble@w0");
    NetFixture fixture;
    NetHarness harness(fixture);
    harness.spawnWorker("w0");
    ASSERT_EQ(harness.coordinator->waitForNodes(1, 30000.0), 1u);
    // The garbled reply is BadOutput: the connection stays usable and
    // the shard is re-dispatched to the same node, which answers
    // correctly the second time (the fault fires once per process).
    expectNetRunMatchesReference(harness, "garble");
}

TEST(NetCampaign, DisconnectingNodeIsSurvived)
{
    const EnvGuard fault("DAVF_TEST_NETFAULT", "disconnect@w0");
    NetFixture fixture;
    NetHarness harness(fixture);
    harness.spawnWorker("w0");
    ASSERT_EQ(harness.coordinator->waitForNodes(1, 30000.0), 1u);
    // The only node dies mid-campaign: its shard and everything after
    // it degrade to local compute, still bit-identical.
    expectNetRunMatchesReference(harness, "disconnect");

    // The faulted node died mid-campaign (exit 1, lost coordinator);
    // its shard was re-dispatched, not lost.
    const ExitStatus status = harness.workers[0]->wait();
    EXPECT_TRUE(status.exited) << status.describe();
    EXPECT_EQ(status.code, 1) << status.describe();
}

TEST(NetCampaign, DroppedReplyIsCaughtByHeartbeatSilence)
{
    const EnvGuard fault("DAVF_TEST_NETFAULT", "drop@w0");
    NetFixture fixture;
    net::CoordinatorOptions options;
    // The dropped reply leaves the node connected but silent; only the
    // heartbeat window notices (kept short so the test stays fast).
    options.heartbeatTimeoutMs = 1200.0;
    NetHarness harness(fixture, options);
    harness.spawnWorker("w0");
    ASSERT_EQ(harness.coordinator->waitForNodes(1, 30000.0), 1u);
    expectNetRunMatchesReference(harness, "drop");
}

TEST(NetCampaign, StalledNodeIsCaughtByShardDeadline)
{
    const EnvGuard fault("DAVF_TEST_NETFAULT", "stall@w0");
    NetFixture fixture;
    net::CoordinatorOptions options;
    // A stalled node keeps heartbeating, so only the per-shard budget
    // can catch it.
    options.shardTimeoutMs = 1200.0;
    NetHarness harness(fixture, options);
    harness.spawnWorker("w0");
    ASSERT_EQ(harness.coordinator->waitForNodes(1, 30000.0), 1u);
    expectNetRunMatchesReference(harness, "stall");
}

TEST(NetCampaign, EmptyFleetDegradesToLocalCompute)
{
    NetFixture fixture;
    NetHarness harness(fixture);
    // No workers at all: every shard must run on the local fallback
    // path and the results must still match thread mode exactly.
    expectNetRunMatchesReference(harness, "local");
}

TEST(NetCampaign, FingerprintMismatchIsRejected)
{
    NetFixture fixture;
    NetHarness harness(fixture);
    harness.spawnWorker("impostor", "some-other-workspace");
    // The worker exits 2 (rejected) without ever joining the fleet.
    const ExitStatus status = harness.workers[0]->wait();
    EXPECT_TRUE(status.exited) << status.describe();
    EXPECT_EQ(status.code, 2) << status.describe();
    EXPECT_EQ(harness.coordinator->nodeCount(), 0u);
}

TEST(NetCampaign, WrongVersionHelloIsRejected)
{
    NetFixture fixture;
    NetHarness harness(fixture);

    net::FrameConn conn(
        net::connectTcp("127.0.0.1", harness.port, 2000.0));
    conn.send("davf-net v999 hello n " + std::string(kTestFingerprint));
    std::string payload;
    ASSERT_EQ(conn.read(payload, 5000.0),
              net::FrameConn::ReadStatus::Frame);
    std::string reason;
    const Result<bool> reply = net::parseHandshakeReply(payload, reason);
    ASSERT_TRUE(reply.ok()) << payload;
    EXPECT_FALSE(reply.value());
    EXPECT_EQ(harness.coordinator->nodeCount(), 0u);
}

TEST(NetCampaign, ShutdownDrainsReplyRacingQuit)
{
    NetFixture fixture;
    NetHarness harness(fixture);

    // A hand-rolled node that answers the quit with one last frame
    // before closing — the race from the issue: its final bytes must
    // be consumed by the shutdown drain, not misread as a node failure
    // or abandoned mid-write.
    std::thread fake([port = harness.port] {
        net::FrameConn conn(net::connectTcp("127.0.0.1", port, 5000.0));
        conn.send(net::makeHello("fake", kTestFingerprint));
        std::string payload;
        ASSERT_EQ(conn.read(payload, 5000.0),
                  net::FrameConn::ReadStatus::Frame); // welcome
        for (;;) {
            ASSERT_EQ(conn.read(payload, 10000.0),
                      net::FrameConn::ReadStatus::Frame);
            if (payload == "quit")
                break;
        }
        conn.send("ok davf result-racing-the-quit");
        conn.close();
    });

    ASSERT_EQ(harness.coordinator->waitForNodes(1, 10000.0), 1u);
    harness.coordinator->shutdown(); // Must drain and return cleanly.
    fake.join();
}

// ----------------------------------------------------------- worker main

/** Child process entry: serve shards over TCP against the same fixture
 *  engine. Must match NetFixture exactly, or the bit-identity tests
 *  above would (correctly) fail. */
int
netWorkerMain(const std::string &spec)
{
    const size_t first = spec.find(':');
    const size_t second =
        first == std::string::npos ? first : spec.find(':', first + 1);
    if (first == std::string::npos || second == std::string::npos) {
        std::fprintf(stderr, "bad --net-worker spec '%s'\n",
                     spec.c_str());
        return 3;
    }
    NetFixture fixture;
    net::NetWorkerOptions options;
    options.host = "127.0.0.1";
    options.port =
        static_cast<uint16_t>(std::stoul(spec.substr(0, first)));
    options.nodeName = spec.substr(first + 1, second - first - 1);
    options.fingerprint = spec.substr(second + 1);
    options.connectRetries = 50;
    options.backoffBaseMs = 20.0;
    return net::runNetWorker(*fixture.engine, *fixture.registry,
                             options);
}

} // namespace
} // namespace davf

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        constexpr std::string_view kFlag = "--net-worker=";
        const std::string_view arg(argv[i]);
        if (arg.rfind(kFlag, 0) == 0) {
            return davf::netWorkerMain(
                std::string(arg.substr(kFlag.size())));
        }
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
