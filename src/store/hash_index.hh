/**
 * @file
 * The persistent extendible-hash index over the segment data file
 * (`index.davf`, layout in store/layout.hh).
 *
 * Structure: a directory of 2^globalDepth entries (low hash bits)
 * pointing at fixed-size buckets; each bucket owns the hashes whose
 * low `localDepth` bits equal its `prefix` and holds up to
 * kSlotsPerBucket {hash, offset, size} slots. A full bucket splits
 * (doubling the directory when localDepth == globalDepth); the split
 * is journaled through util/atomic_file (`split.journal`) so a crash
 * mid-split is classified — never silently half-applied.
 *
 * Concurrency: **lock-free readers, one writer.**
 *  - Every bucket carries a version stamp (seqlock): writers make it
 *    odd, mutate, make it even; readers retry until they see a stable
 *    even version, then re-validate that the bucket still owns the
 *    hash (a split may have migrated it) against a freshly loaded
 *    directory.
 *  - The directory is an immutable vector published RCU-style through
 *    an atomic shared_ptr; doubling builds a new vector and swaps it.
 *  - Writers are serialized by an internal mutex.
 *
 * Persistence: buckets live in stable heap memory and are mirrored to
 * their disk pages on every mutation (write-through, no per-write
 * fsync); the header's `dataCommitted` watermark advances only at
 * checkpoint() after an fsync barrier. On load, anything suspicious —
 * bad header, bad bucket checksum, inconsistent directory coverage, a
 * leftover split journal — fails the load and the owner (IndexStore)
 * rebuilds from the data file. The index can therefore lose recent
 * entries across a crash (the owner replays the data tail) but can
 * never serve a wrong offset undetected: lookups verify the record
 * bytes and key independently.
 *
 * Lookup probes compare the slot's 16-bit fingerprint (top hash bits)
 * first, then the full hash; the full-*key* compare happens at the
 * caller after reading the record. Two distinct keys with equal
 * 64-bit hashes keep legacy-collision semantics: one entry wins, the
 * other key reads it, fails the key compare, and degrades to a miss.
 */

#ifndef DAVF_STORE_HASH_INDEX_HH
#define DAVF_STORE_HASH_INDEX_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "store/layout.hh"
#include "util/error.hh"

namespace davf::store {

/** The in-memory + write-through persistent hash index. */
class HashIndex
{
  public:
    /** Where a key's record frame lives (from a slot). */
    struct Candidate
    {
        uint64_t offset = 0;
        uint32_t size = 0;
    };

    /** What load() learned from a well-formed index file. */
    struct LoadInfo
    {
        bool clean = false;
        uint64_t dataCommitted = 0;
    };

    HashIndex() = default;
    ~HashIndex();

    HashIndex(const HashIndex &) = delete;
    HashIndex &operator=(const HashIndex &) = delete;

    /**
     * Create a fresh single-bucket index at @p path (truncating any
     * existing file) inside store directory @p dir (which holds the
     * split journal). Throws DavfError{Io} on filesystem failure.
     */
    void create(const std::string &dir, const std::string &path);

    /**
     * Load an existing index file. Err{BadInput} for *any* structural
     * doubt (damaged header/page, bad directory coverage, leftover
     * split journal) — the caller falls back to create() + rebuild.
     * Throws DavfError{Io} only if the file cannot be read at all.
     */
    Result<LoadInfo> load(const std::string &dir,
                          const std::string &path);

    /**
     * The slot for @p hash, if present. Lock-free: safe concurrently
     * with one writer in insert()/remove()/split. When @p probes is
     * non-null it receives the number of slot fingerprints examined
     * (the store.index.probes_per_lookup histogram).
     */
    std::optional<Candidate> lookup(uint64_t hash,
                                    uint32_t *probes = nullptr) const;

    /**
     * Insert (or replace, when a slot with the same hash exists) the
     * mapping hash -> (offset, size), splitting buckets as needed.
     * Marks the on-disk header dirty before the first mutation after
     * a load/checkpoint. Throws DavfError{Io} on persistence failure.
     */
    void insert(uint64_t hash, uint64_t offset, uint32_t size);

    /** Drop the slot for @p hash if it points at @p offset (corrupt
     * record repair). Returns true if a slot was removed. */
    bool remove(uint64_t hash, uint64_t offset);

    /**
     * Durability barrier: fsync the mirrored pages and publish a
     * clean header carrying @p dataCommitted. After this, load()
     * trusts the pages and the owner only replays data past the
     * watermark. Fires the `index.checkpoint` crash point.
     */
    void checkpoint(uint64_t dataCommitted);

    /// @name Shape and traffic (gauges / fsck)
    /// @{
    uint32_t globalDepth() const;
    uint64_t bucketCount() const;
    uint64_t keyCount() const;
    uint64_t splits() const { return splitCount; }
    uint64_t dataCommitted() const { return committedWatermark; }
    /// @}

    /** Enumerate every live slot (fsck cross-checks, tests). */
    void forEachSlot(
        const std::function<void(const BucketSlot &)> &fn) const;

    void close();

  private:
    struct Bucket
    {
        std::atomic<uint64_t> version{0};
        uint32_t id = 0; ///< Page index (page 1 + id in the file).
        uint32_t localDepth = 0;
        uint64_t prefix = 0;
        uint32_t count = 0;
        BucketSlot slots[kSlotsPerBucket] = {};
    };

    /**
     * One directory table: 2^depth atomic bucket pointers. Entries
     * mutate in place (release stores) for non-doubling splits; a
     * doubling builds a bigger table and swaps the `table` pointer.
     * Superseded tables are retired, not freed, until close() — a
     * reader holding an old table only ever reaches a stale bucket,
     * which the seqlock + ownership re-check turns into a retry.
     */
    struct DirTable
    {
        explicit DirTable(size_t size) : entries(size) {}
        std::vector<std::atomic<Bucket *>> entries;
    };

    Bucket &newBucket(uint32_t localDepth, uint64_t prefix);
    void split(Bucket &bucket);
    void persistBucket(const Bucket &bucket);
    void persistHeader(bool clean, uint64_t dataCommitted);
    void markDirty();
    DirTable &growTable(uint32_t newDepth);

    int fd = -1;
    std::string filePath;
    std::string journalPath;

    mutable std::mutex writerMutex;
    std::deque<Bucket> buckets; ///< Stable addresses; grows only.
    std::deque<std::unique_ptr<DirTable>> tables; ///< All ever built.
    std::atomic<DirTable *> table{nullptr};       ///< Current one.
    uint32_t depth = 0;
    uint64_t liveKeys = 0;
    uint64_t splitCount = 0;
    uint64_t committedWatermark = 0;
    bool dirtyOnDisk = false;
};

} // namespace davf::store

#endif // DAVF_STORE_HASH_INDEX_HH
