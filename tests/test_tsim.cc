/**
 * @file
 * Tests for the timing-aware single-cycle simulator:
 *
 *  - fault-free timed latching equals timing-agnostic latching (the
 *    design meets timing at the nominal period, so the two simulators
 *    must agree — this is what makes the two-step method exact);
 *  - every transition respects the STA arrival bound;
 *  - the four Figure-2 scenarios: a small delay is absorbed by slack, a
 *    large delay mis-latches, logical masking suppresses the error, and
 *    a non-toggling wire cannot err.
 */

#include <gtest/gtest.h>

#include "src/builder/builder.hh"
#include "src/sim/cycle_sim.hh"
#include "src/tsim/timed_sim.hh"
#include "tests/helpers.hh"

namespace davf {
namespace {

/** Run an untimed sim to cycle k-1 and build the timed-sim operands. */
struct CyclePrep
{
    std::vector<uint8_t> preEdge;
    std::vector<uint8_t> postEdge;
    std::vector<uint8_t> goldenSampled;
};

CyclePrep
prepCycle(const Netlist &nl, uint64_t cycle)
{
    CycleSimulator sim(nl);
    for (uint64_t i = 0; i + 1 < cycle; ++i)
        sim.step();
    CyclePrep prep;
    prep.preEdge = sim.netValues_();
    sim.step();
    prep.postEdge = sim.netValues_();
    sim.step({}, &prep.goldenSampled);
    return prep;
}

TEST(TimedSim, FaultFreeLatchingMatchesUntimed)
{
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        const auto circuit = test::makeRandomCircuit(seed, 12, 90);
        const Netlist &nl = *circuit.netlist;
        DelayModel delays(nl, CellLibrary::defaultLibrary());
        Sta sta(delays);
        TimedSimulator tsim(delays);
        const double period = sta.maxPath();

        for (uint64_t cycle : {1, 3, 7}) {
            const CyclePrep prep = prepCycle(nl, cycle);
            CycleWaveforms wf;
            tsim.simulateCycle(prep.preEdge, prep.postEdge, period, wf);

            // Every sampled pin must latch exactly the value the
            // untimed simulator settles on.
            for (CellId id = 0; id < nl.numCells(); ++id) {
                const Cell &cell = nl.cell(id);
                const bool endpoint = cell.type == CellType::Dff
                    || cell.type == CellType::Dffe
                    || cell.type == CellType::Behav
                    || cell.type == CellType::Output;
                if (!endpoint)
                    continue;
                for (uint16_t pin = 0; pin < cell.inputs.size(); ++pin) {
                    const bool timed = goldenPinValueAtEdge(
                        delays, wf, id, pin, period);
                    const bool untimed =
                        prep.postEdge[cell.inputs[pin]] != 0;
                    EXPECT_EQ(timed, untimed)
                        << "seed " << seed << " cycle " << cycle
                        << " cell " << cell.name << " pin " << pin;
                }
            }
        }
    }
}

TEST(TimedSim, EventsRespectStaArrivalBound)
{
    const auto circuit = test::makeRandomCircuit(42, 14, 110);
    const Netlist &nl = *circuit.netlist;
    DelayModel delays(nl, CellLibrary::defaultLibrary());
    Sta sta(delays);
    TimedSimulator tsim(delays);
    const double period = sta.maxPath();

    const CyclePrep prep = prepCycle(nl, 4);
    CycleWaveforms wf;
    tsim.simulateCycle(prep.preEdge, prep.postEdge, period, wf);

    for (NetId net = 0; net < nl.numNets(); ++net) {
        for (const NetEvent &event : wf.netEvents[net]) {
            EXPECT_LE(event.time, sta.arrival(net) + 1e-9)
                << "net " << nl.net(net).name;
        }
    }
}

TEST(TimedSim, WaveformEndsAtSettledValue)
{
    const auto circuit = test::makeRandomCircuit(43, 12, 80);
    const Netlist &nl = *circuit.netlist;
    DelayModel delays(nl, CellLibrary::defaultLibrary());
    Sta sta(delays);
    TimedSimulator tsim(delays);

    const CyclePrep prep = prepCycle(nl, 3);
    CycleWaveforms wf;
    tsim.simulateCycle(prep.preEdge, prep.postEdge, sta.maxPath(), wf);

    for (NetId net = 0; net < nl.numNets(); ++net) {
        const bool last = wf.netEvents[net].empty()
            ? wf.preEdge[net] != 0
            : wf.netEvents[net].back().value;
        EXPECT_EQ(last, prep.postEdge[net] != 0)
            << "net " << nl.net(net).name;
    }
}

/**
 * Figure 2 fixture: a toggling flop x, a holder flop y, AND(x, y) -> A.
 * Also an INV arm off x with timing slack.
 */
class Fig2Timing : public ::testing::Test
{
  protected:
    Netlist nl;
    NetId x_q = kInvalidId, y_q = kInvalidId;
    CellId ff_a = kInvalidId, ff_inv = kInvalidId;
    WireId w_x_and = kInvalidId, w_x_inv = kInvalidId;
    bool y_value = true;

    std::unique_ptr<DelayModel> delays;
    std::unique_ptr<Sta> sta;
    std::unique_ptr<TimedSimulator> tsim;
    double period = 0.0;

    void
    buildWith(bool y_reset)
    {
        y_value = y_reset;
        ModuleBuilder b(nl);
        // x toggles every cycle.
        const NetId xd = b.freshNet("xd");
        x_q = b.dff(xd, false, "ffx");
        b.connect(xd, b.inv(x_q));
        // y holds its reset value forever.
        const NetId yd = b.freshNet("yd");
        y_q = b.dff(yd, y_reset, "ffy");
        b.connect(yd, b.buf(y_q));

        const NetId and_out = b.and2(x_q, y_q);
        const NetId qa = b.dff(and_out, false, "ffa");
        (void)qa;
        ff_a = nl.net(qa).driver;

        // Slack arm: x -> INV -> flop (shorter than the AND path).
        const NetId inv_out = b.inv(x_q);
        const NetId qi = b.dff(inv_out, false, "ffi");
        ff_inv = nl.net(qi).driver;
        nl.finalize();

        // Locate the wires from x to the AND and to the slack INV.
        const Net &xnet = nl.net(x_q);
        for (uint32_t s = 0; s < xnet.sinks.size(); ++s) {
            const CellType type = nl.cell(xnet.sinks[s].cell).type;
            if (type == CellType::And2)
                w_x_and = xnet.firstWire + s;
        }
        ASSERT_NE(w_x_and, kInvalidId);

        delays = std::make_unique<DelayModel>(
            nl, CellLibrary::defaultLibrary());
        sta = std::make_unique<Sta>(*delays);
        tsim = std::make_unique<TimedSimulator>(*delays);
        period = sta->maxPath();
    }

    /** Latched value of ff_a's D pin with delay d on x->AND, cycle 2. */
    std::optional<bool>
    faultyLatchA(double d)
    {
        const CyclePrep prep = prepCycle(nl, 2);
        CycleWaveforms wf;
        tsim->simulateCycle(prep.preEdge, prep.postEdge, period, wf);
        std::vector<LatchedPin> latched;
        tsim->simulateCone(wf, w_x_and, d, period, latched);
        for (const LatchedPin &pin : latched) {
            if (pin.cell == ff_a && pin.pin == 0)
                return pin.value;
        }
        return std::nullopt;
    }

    bool
    goldenLatchA()
    {
        const CyclePrep prep = prepCycle(nl, 2);
        return prep.goldenSampled[nl.flopStateElem(ff_a)] != 0;
    }
};

TEST_F(Fig2Timing, LargeDelayMislatches)
{
    buildWith(true); // y = 1: no masking.
    const auto faulty = faultyLatchA(0.5 * period);
    ASSERT_TRUE(faulty.has_value());
    EXPECT_NE(*faulty, goldenLatchA()); // Fig. 2b: state element error.
}

TEST_F(Fig2Timing, SmallDelayAbsorbed)
{
    buildWith(true);
    // x -> AND -> A is the critical path (period == its length); the
    // *slack* on it is zero, so use the slack arm instead: delay on
    // x -> AND small enough... here "small" must be ~0.
    const auto faulty = faultyLatchA(0.0);
    ASSERT_TRUE(faulty.has_value());
    EXPECT_EQ(*faulty, goldenLatchA()); // Fig. 2a: arrives in time.
}

TEST_F(Fig2Timing, SlackArmAbsorbsSmallDelay)
{
    buildWith(true);
    // The INV arm has real slack: its path is shorter than the period.
    const Net &xnet = nl.net(x_q);
    for (uint32_t s = 0; s < xnet.sinks.size(); ++s) {
        const Cell &sink_cell = nl.cell(xnet.sinks[s].cell);
        if (sink_cell.type == CellType::Inv
            && sink_cell.name.find("inv") != std::string::npos) {
            w_x_inv = xnet.firstWire + s;
        }
    }
    // Fall back: any INV sink of x (the toggler feedback INV also
    // qualifies; both have slack).
    ASSERT_NE(w_x_inv, kInvalidId);

    std::vector<StateElemId> reachable;
    const double slack_probe = 1.0; // 1 ps: below the arm's slack.
    sta->staticallyReachable(w_x_inv, slack_probe, period, reachable);
    EXPECT_TRUE(reachable.empty()); // Fig. 2a by STA.
}

TEST_F(Fig2Timing, LogicalMaskingSuppressesError)
{
    buildWith(false); // y = 0: AND output pinned at 0.
    // Statically the endpoint is reachable...
    std::vector<StateElemId> reachable;
    sta->staticallyReachable(w_x_and, 0.5 * period, period, reachable);
    EXPECT_FALSE(reachable.empty());
    // ...but dynamically the latched value is correct (Fig. 2c).
    const auto faulty = faultyLatchA(0.5 * period);
    if (faulty.has_value())
        EXPECT_EQ(*faulty, goldenLatchA());
}

TEST_F(Fig2Timing, NonTogglingWireCannotErr)
{
    buildWith(true);
    // The y -> AND wire never toggles (Fig. 2d): the golden waveform of
    // y's net is empty, so the delay shifts nothing.
    const CyclePrep prep = prepCycle(nl, 2);
    CycleWaveforms wf;
    tsim->simulateCycle(prep.preEdge, prep.postEdge, period, wf);
    EXPECT_TRUE(wf.netEvents[y_q].empty());

    const Net &ynet = nl.net(y_q);
    WireId w_y_and = kInvalidId;
    for (uint32_t s = 0; s < ynet.sinks.size(); ++s) {
        if (nl.cell(ynet.sinks[s].cell).type == CellType::And2)
            w_y_and = ynet.firstWire + s;
    }
    ASSERT_NE(w_y_and, kInvalidId);

    std::vector<LatchedPin> latched;
    tsim->simulateCone(wf, w_y_and, 0.9 * period, period, latched);
    const bool golden = goldenLatchA();
    for (const LatchedPin &pin : latched) {
        if (pin.cell == ff_a)
            EXPECT_EQ(pin.value, golden);
    }
}

TEST(TimedSim, DelayedEnableCorruptsDffe)
{
    // A DFFE whose *enable* path carries the SDF: if the enable's
    // rising edge arrives after the clock edge, the flop holds its old
    // value instead of capturing D — an error mechanism unique to
    // enable-gated state (write ports, FIFO pushes).
    Netlist nl;
    ModuleBuilder b(nl);
    // A 2-bit counter: c0 = the enable (toggles every cycle), c1 = the
    // data (toggles every two cycles). In cycle 3 (c = 11) the enable
    // rises 0 -> 1 and the flop captures D = 1 over its old value 0.
    const NetId c0_d = b.freshNet("c0_d");
    const NetId c0 = b.dff(c0_d, false, "c0");
    b.connect(c0_d, b.inv(c0));
    const NetId c1_d = b.freshNet("c1_d");
    const NetId c1 = b.dff(c1_d, false, "c1");
    b.connect(c1_d, b.xor2(c1, c0));

    const NetId en_buffered = b.buf(c0);
    const NetId q = b.dffe(c1, en_buffered, false, "victim");
    b.output("o", q);
    nl.finalize();

    DelayModel delays(nl, CellLibrary::defaultLibrary());
    Sta sta(delays);
    TimedSimulator tsim(delays);
    const double period = sta.maxPath();

    const CyclePrep prep = prepCycle(nl, 3);
    CellId victim_cell = kInvalidId;
    for (CellId id = 0; id < nl.numCells(); ++id) {
        if (nl.cell(id).name.starts_with("victim"))
            victim_cell = id;
    }
    ASSERT_NE(victim_cell, kInvalidId);
    const StateElemId elem = nl.flopStateElem(victim_cell);
    // Golden: enable high, captures D = 1; the old Q was 0.
    ASSERT_EQ(prep.goldenSampled[elem], 1);
    ASSERT_EQ(prep.postEdge[nl.cell(victim_cell).outputs[0]], 0);

    // Delay the buf -> EN wire: the enable's rising edge misses the
    // clock, the stale 0 is sampled, and the flop holds its old 0.
    const WireId en_wire = nl.inputWire(victim_cell, 1);
    CycleWaveforms wf;
    tsim.simulateCycle(prep.preEdge, prep.postEdge, period, wf);
    std::vector<LatchedPin> latched;
    tsim.simulateCone(wf, en_wire, 0.9 * period, period, latched);

    bool found = false;
    for (const LatchedPin &pin : latched) {
        if (pin.cell == victim_cell && pin.pin == 1) {
            EXPECT_FALSE(pin.value); // EN arrives late: stale 0.
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(TimedSim, SortEventsRestoresReplayInvariant)
{
    // Replay consumers stop scanning a net's events at the first
    // arrival past the clock edge, which is only sound because
    // CycleWaveforms keeps per-net events sorted by time. A hand-built
    // waveform with deliberately scrambled events must, after
    // sortEvents(), replay exactly like the simulator-produced one.
    for (uint64_t seed = 61; seed <= 63; ++seed) {
        const auto circuit = test::makeRandomCircuit(seed, 12, 90);
        const Netlist &nl = *circuit.netlist;
        DelayModel delays(nl, CellLibrary::defaultLibrary());
        Sta sta(delays);
        TimedSimulator tsim(delays);
        const double period = sta.maxPath();
        const CyclePrep prep = prepCycle(nl, 3);
        CycleWaveforms wf;
        tsim.simulateCycle(prep.preEdge, prep.postEdge, period, wf);

        // Scramble: reverse every multi-event net and rotate the odd
        // ones, so most lists violate the sorted invariant.
        CycleWaveforms scrambled = wf;
        for (NetId net = 0; net < nl.numNets(); ++net) {
            auto &events = scrambled.netEvents[net];
            std::reverse(events.begin(), events.end());
            if (net % 2 == 1 && events.size() > 2)
                std::rotate(events.begin(), events.begin() + 1,
                            events.end());
        }
        scrambled.sortEvents();

        Rng rng(seed);
        std::vector<LatchedPin> expect, got;
        for (int trial = 0; trial < 12; ++trial) {
            const WireId wire = rng.below(nl.numWires());
            const double d = rng.uniform() * period;
            tsim.simulateCone(wf, wire, d, period, expect);
            tsim.simulateCone(scrambled, wire, d, period, got);
            ASSERT_EQ(expect.size(), got.size());
            for (size_t p = 0; p < expect.size(); ++p) {
                EXPECT_EQ(expect[p].cell, got[p].cell);
                EXPECT_EQ(expect[p].pin, got[p].pin);
                EXPECT_EQ(expect[p].value, got[p].value)
                    << "seed " << seed << " wire " << wire << " d "
                    << d;
            }
        }
        for (CellId id = 0; id < nl.numCells(); ++id) {
            const Cell &cell = nl.cell(id);
            if (cell.type != CellType::Dff
                && cell.type != CellType::Dffe) {
                continue;
            }
            for (uint16_t pin = 0; pin < cell.inputs.size(); ++pin) {
                EXPECT_EQ(goldenPinValueAtEdge(delays, wf, id, pin,
                                               period),
                          goldenPinValueAtEdge(delays, scrambled, id,
                                               pin, period));
            }
        }
    }
}

TEST(TimedSim, ConeAgreesWithFullSimUnderFault)
{
    // Cross-check simulateCone against a full-netlist timed simulation
    // with the fault baked into a modified delay model.
    for (uint64_t seed = 21; seed <= 24; ++seed) {
        const auto circuit = test::makeRandomCircuit(seed, 10, 70);
        const Netlist &nl = *circuit.netlist;
        DelayModel delays(nl, CellLibrary::defaultLibrary());
        Sta sta(delays);
        TimedSimulator tsim(delays);
        const double period = sta.maxPath();
        const CyclePrep prep = prepCycle(nl, 3);
        CycleWaveforms wf;
        tsim.simulateCycle(prep.preEdge, prep.postEdge, period, wf);

        Rng rng(seed);
        for (int trial = 0; trial < 10; ++trial) {
            const WireId wire = rng.below(nl.numWires());
            const double d = (0.1 + 0.8 * rng.uniform()) * period;

            std::vector<LatchedPin> cone_latched;
            tsim.simulateCone(wf, wire, d, period, cone_latched);

            DelayModel faulty = delays;
            faulty.addExtraWireDelay(wire, d);
            TimedSimulator full(faulty);
            CycleWaveforms faulty_wf;
            full.simulateCycle(prep.preEdge, prep.postEdge, period,
                               faulty_wf);

            for (const LatchedPin &pin : cone_latched) {
                const bool full_value = goldenPinValueAtEdge(
                    faulty, faulty_wf, pin.cell, pin.pin, period);
                EXPECT_EQ(pin.value, full_value)
                    << "seed " << seed << " wire " << wire << " d " << d;
            }
        }
    }
}

} // namespace
} // namespace davf
