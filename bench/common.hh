/**
 * @file
 * Shared support for the paper-reproduction bench harnesses: builds the
 * IbexMini SoC + vulnerability engine per benchmark (with and without the
 * ECC register file), applies the case study's sampling configuration,
 * and provides table formatting helpers.
 *
 * Every binary in bench/ regenerates one table or figure of the paper
 * (see DESIGN.md §4 for the index). Absolute values differ from the
 * paper — the substrate is IbexMini on a NanGate-like library rather
 * than Ibex on the authors' flow — but the *shapes* (rank orderings,
 * trends over d, ECC behaviour) are the reproduction targets; see
 * EXPERIMENTS.md.
 */

#ifndef DAVF_BENCH_COMMON_HH
#define DAVF_BENCH_COMMON_HH

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/report.hh"
#include "core/vulnerability.hh"
#include "service/workspace.hh"
#include "soc/ibex_mini.hh"

namespace davf::bench {

/** The SDF durations evaluated throughout the case study (Fig. 7-9). */
inline const std::vector<double> kDelayFractions = {
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};

/** The benchmarks, in the paper's order. */
inline const std::vector<std::string> kBenchmarks = {
    "md5", "bubblesort", "libstrstr", "libfibcall", "matmult"};

/** The three logic/array structures of Fig. 7. */
inline const std::vector<std::string> kFig7Structures = {"ALU", "Decoder",
                                                         "Regfile"};

/** The stateful structures of Fig. 10. */
inline const std::vector<std::string> kStatefulStructures = {
    "Regfile", "Regfile (ECC)", "LSU", "Prefetch"};

/**
 * One built SoC + engine for a (benchmark, ecc) pair, loaded through
 * the shared service::Workspace (the same setup davf_run and
 * davf_serve use). Construction runs the golden execution. The raw
 * pointers alias the workspace's objects for harness convenience.
 */
struct BenchContext
{
    std::unique_ptr<service::Workspace> workspace;
    IbexMini *soc = nullptr;
    VulnerabilityEngine *engine = nullptr;

    const Structure &structure(const std::string &name) const;
};

/** Lazily constructs and caches BenchContexts. */
class BenchLab
{
  public:
    /** The context for @p benchmark (ECC regfile iff @p ecc). */
    BenchContext &context(const std::string &benchmark, bool ecc = false);

    /**
     * Sampling configuration used by all harnesses. Scaled down from
     * the paper's 24-hour 48-core runs to minutes on a laptop: a capped
     * number of equally spaced injection cycles and a statistical wire
     * sample per structure (the paper itself samples 4% of cycles;
     * §V-C explicitly endorses temporal and structural sampling).
     * Override the wire cap with the DAVF_BENCH_WIRES environment
     * variable (0 = all wires) and the cycle cap with
     * DAVF_BENCH_CYCLES.
     */
    static SamplingConfig sampling();

  private:
    void buildContext(const std::string &benchmark, bool ecc);

    std::map<std::pair<std::string, bool>, std::unique_ptr<BenchContext>>
        cache;
    bool flavorReady[2] = {false, false};
};

/**
 * DelayAVF with result caching, keyed (benchmark, ecc, structure, d).
 *
 * Every computed result is also recorded as a core/report ReportRow;
 * when the DAVF_BENCH_JSON environment variable names a file, the
 * destructor writes the whole report there as one reportJson() line,
 * so a harness run doubles as a machine-readable regression artifact.
 */
class AvfTable
{
  public:
    explicit AvfTable(BenchLab &lab) : lab(&lab) {}
    ~AvfTable();

    const DelayAvfResult &delayAvf(const std::string &benchmark,
                                   bool ecc,
                                   const std::string &structure,
                                   double delay_fraction);

    const SavfResult &savf(const std::string &benchmark, bool ecc,
                           const std::string &structure);

  private:
    BenchLab *lab;
    std::map<std::string, DelayAvfResult> delayCache;
    std::map<std::string, SavfResult> savfCache;
    std::vector<ReportRow> rows;
};

/** Print a rule line sized for @p width columns of 12 chars. */
void printRule(size_t width);

/** Print a header cell row: first column 22 wide, rest 12. */
void printHeader(const std::string &first,
                 const std::vector<std::string> &columns);

/** Print a data row: label then fixed-point values. */
void printRow(const std::string &label, const std::vector<double> &values,
              int precision = 4);

} // namespace davf::bench

#endif // DAVF_BENCH_COMMON_HH
