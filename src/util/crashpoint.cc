#include "crashpoint.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include <unistd.h>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace davf::crashpoint {

namespace {

/**
 * Every crash point compiled into this binary, sorted. The CrashPoint
 * constructor asserts membership, so this table cannot drift from the
 * call sites: adding a site without listing it here aborts the first
 * test that executes it, and the recovery matrix (tests/ci) iterates
 * this list to prove each point is actually reachable and survivable.
 */
const char *const kKnownPoints[] = {
    "atomic_file.post_rename",
    "atomic_file.pre_fsync",
    "atomic_file.pre_rename",
    "atomic_file.pre_tmp_write",
    "atomic_file.write",
    "checkpoint.save",
    "compact.rewrite",
    "fsck.repair",
    "index.append",
    "index.bucket_write",
    "index.checkpoint",
    "index.migrate",
    "index.split_apply",
    "index.split_journal",
    "index.tail_repair",
    "net.store_write",
    "quarantine.save",
    "store.publish",
    "store.repair_unlink",
};

/** One relaxed load: the entire cost of a crash point when unarmed. */
std::atomic<bool> g_armed{false};

std::mutex g_mutex;          ///< Guards g_spec/g_hits mutation.
Spec g_spec;                 ///< The armed spec (g_mutex).
std::atomic<uint64_t> g_hits{0}; ///< Hits on the armed point so far.
std::atomic<bool> g_envChecked{false};

obs::Counter &
firesCounter()
{
    static obs::Counter *const counter =
        new obs::Counter("crashpoint.fires");
    return *counter;
}

[[noreturn]] void
die(const char *name)
{
    // SIGKILL, exactly like an external kill -9: no unwinding, no
    // atexit, no stream flushes — stderr is unbuffered so the note
    // below still lands, which the soak scripts grep for.
    std::fprintf(stderr, "crashpoint: killing at '%s'\n", name);
    ::raise(SIGKILL);
    ::_exit(137); // Unreachable; placates [[noreturn]].
}

[[noreturn]] void
throwAt(const char *name, bool enospc)
{
    davf_throw(ErrorKind::Io, "crashpoint '", name, "' fired: ",
               enospc ? "no space left on device (injected)"
                      : "injected I/O failure");
}

/**
 * The armed action for this hit of @p name, or None. Counts the hit
 * and latches the fire so a point fires at most once per process.
 */
Action
decide(const char *name)
{
    const std::lock_guard<std::mutex> lock(g_mutex);
    if (g_spec.action == Action::None || g_spec.point != name)
        return Action::None;
    const uint64_t hit =
        g_hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (hit != g_spec.hitCount)
        return Action::None;
    firesCounter().add(1);
    return g_spec.action;
}

/**
 * Arm from the environment during static initialization: the fast
 * path (`!g_armed` -> return) must stay a single relaxed load, so it
 * can never be the place that discovers DAVF_TEST_CRASHPOINT. The
 * env is fixed before main() anyway.
 */
const bool g_envInit = (armFromEnvironment(), true);

} // namespace

void
killProcess(const char *point)
{
    die(point);
}

const char *
actionName(Action action)
{
    switch (action) {
      case Action::None:
        return "none";
      case Action::Kill:
        return "kill";
      case Action::Throw:
        return "throw";
      case Action::Enospc:
        return "enospc";
      case Action::Torn:
        return "torn";
      case Action::Garble:
        return "garble";
    }
    return "none";
}

Spec
parseSpec(const char *text)
{
    Spec spec;
    if (text == nullptr || *text == '\0')
        return spec;
    const std::string raw = text;

    auto malformed = [&]() {
        davf_warn("ignoring malformed DAVF_TEST_CRASHPOINT '", raw,
                  "' (expected <name>[:<hit-count>]="
                  "<kill|throw|enospc|torn|garble>)");
        return Spec{};
    };

    const size_t eq = raw.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= raw.size())
        return malformed();
    std::string target = raw.substr(0, eq);
    const std::string action = raw.substr(eq + 1);

    if (action == "kill")
        spec.action = Action::Kill;
    else if (action == "throw")
        spec.action = Action::Throw;
    else if (action == "enospc")
        spec.action = Action::Enospc;
    else if (action == "torn")
        spec.action = Action::Torn;
    else if (action == "garble")
        spec.action = Action::Garble;
    else
        return malformed();

    const size_t colon = target.find(':');
    if (colon != std::string::npos) {
        const std::string count = target.substr(colon + 1);
        target.erase(colon);
        errno = 0;
        char *end = nullptr;
        const unsigned long long value =
            std::strtoull(count.c_str(), &end, 10);
        if (errno != 0 || end == count.c_str() || *end != '\0'
            || value == 0) {
            return malformed();
        }
        spec.hitCount = value;
    }

    const auto &known = knownPoints();
    if (!std::binary_search(known.begin(), known.end(), target)) {
        davf_warn("DAVF_TEST_CRASHPOINT names unknown point '", target,
                  "'; nothing armed");
        return Spec{};
    }
    spec.point = std::move(target);
    return spec;
}

void
arm(const Spec &spec)
{
    const std::lock_guard<std::mutex> lock(g_mutex);
    g_spec = spec;
    g_hits.store(0, std::memory_order_relaxed);
    g_envChecked.store(true, std::memory_order_release);
    g_armed.store(spec.action != Action::None,
                  std::memory_order_release);
}

void
disarm()
{
    arm(Spec{});
}

void
armFromEnvironment()
{
    if (g_envChecked.exchange(true, std::memory_order_acq_rel))
        return;
    const char *env = std::getenv("DAVF_TEST_CRASHPOINT");
    if (env != nullptr && *env != '\0')
        arm(parseSpec(env));
}

const std::vector<std::string> &
knownPoints()
{
    static const std::vector<std::string> *const points = [] {
        auto *list = new std::vector<std::string>(
            std::begin(kKnownPoints), std::end(kKnownPoints));
        return list;
    }();
    return *points;
}

size_t
damageOffset(size_t size)
{
    if (size < 2)
        return 0;
    return size / 2;
}

CrashPoint::CrashPoint(const char *the_name) : name(the_name)
{
    const auto &known = knownPoints();
    davf_assert(std::binary_search(known.begin(), known.end(),
                                   std::string(name)),
                "crash point '", name, "' missing from kKnownPoints");
}

void
CrashPoint::fire() const
{
    if (!g_armed.load(std::memory_order_relaxed))
        return;
    switch (decide(name)) {
      case Action::None:
        return;
      case Action::Kill:
      case Action::Torn:
      case Action::Garble:
        // With no payload to damage, dying on the spot is the
        // strongest thing a torn/garble spec can mean here.
        die(name);
      case Action::Throw:
        throwAt(name, false);
      case Action::Enospc:
        throwAt(name, true);
    }
}

Action
CrashPoint::firePayload(size_t size) const
{
    if (!g_armed.load(std::memory_order_relaxed))
        return Action::None;
    const Action action = decide(name);
    switch (action) {
      case Action::None:
        return Action::None;
      case Action::Kill:
        die(name);
      case Action::Throw:
        throwAt(name, false);
      case Action::Enospc:
      case Action::Torn:
      case Action::Garble:
        if (size == 0) {
            // Nothing to damage: degrade to the action's terminal
            // behaviour so the spec still "happens".
            if (action == Action::Enospc)
                throwAt(name, true);
            die(name);
        }
        return action;
    }
    return Action::None;
}

} // namespace davf::crashpoint
