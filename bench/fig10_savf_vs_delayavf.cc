/**
 * @file
 * Figure 10 reproduction: normalized geomean particle-strike AVF (sAVF)
 * versus DelayAVF for the core's stateful structures — register file
 * with and without SEC ECC, LSU, and prefetch buffer.
 *
 * Expected shape (paper Observations 4/5): the two metrics rank
 * structures differently; in particular, adding single-error-correcting
 * ECC drives the register file's sAVF to (near) zero while its DelayAVF
 * does *not* see an equivalent reduction — particle-strike protections
 * do not transfer to small delay faults. The prefetch buffer is
 * vulnerable under both metrics.
 *
 * DelayAVF is evaluated at d = 50% of the clock period and geomeans are
 * taken over the Beebs benchmarks; each metric is normalized to its own
 * maximum, as in the paper's figure.
 */

#include <cstdio>

#include "bench/common.hh"
#include "util/stats.hh"

using namespace davf;
using namespace davf::bench;

int
main()
{
    std::printf("Figure 10: normalized geomean sAVF vs DelayAVF for "
                "stateful structures\n");
    std::printf("(DelayAVF at d = 50%%; each metric normalized to its "
                "own maximum)\n\n");

    BenchLab lab;
    AvfTable table(lab);

    std::map<std::string, double> savf_geo;
    std::map<std::string, double> delay_geo;
    for (const std::string &structure : kStatefulStructures) {
        const bool ecc = structure == "Regfile (ECC)";
        std::vector<double> savf_values;
        std::vector<double> delay_values;
        for (const std::string &benchmark : kBenchmarks) {
            savf_values.push_back(
                table.savf(benchmark, ecc, structure).savf);
            delay_values.push_back(
                table.delayAvf(benchmark, ecc, structure, 0.5)
                    .delayAvf);
        }
        savf_geo[structure] = geomean(savf_values, 1e-6);
        delay_geo[structure] = geomean(delay_values, 1e-6);
    }

    double savf_max = 0.0;
    double delay_max = 0.0;
    for (const std::string &structure : kStatefulStructures) {
        savf_max = std::max(savf_max, savf_geo[structure]);
        delay_max = std::max(delay_max, delay_geo[structure]);
    }

    printHeader("Structure", {"sAVF(norm)", "DelayAVF(n)", "sAVF(raw)",
                              "DelayAVF"});
    for (const std::string &structure : kStatefulStructures) {
        printRow(structure,
                 {savf_max > 0 ? savf_geo[structure] / savf_max : 0.0,
                  delay_max > 0 ? delay_geo[structure] / delay_max : 0.0,
                  savf_geo[structure], delay_geo[structure]},
                 4);
    }

    std::printf("\nECC effect on the register file "
                "(paper Observation 5):\n");
    const double savf_drop = savf_geo["Regfile"] > 0
        ? savf_geo["Regfile (ECC)"] / savf_geo["Regfile"]
        : 0.0;
    const double delay_drop = delay_geo["Regfile"] > 0
        ? delay_geo["Regfile (ECC)"] / delay_geo["Regfile"]
        : 0.0;
    std::printf("  sAVF   (ECC / plain): %.4f  <- should approach 0\n",
                savf_drop);
    std::printf("  DelayAVF(ECC / plain): %.4f  <- should NOT approach "
                "0\n",
                delay_drop);
    return 0;
}
