/**
 * @file
 * Microarchitectural structures: named subsets of a netlist.
 *
 * The paper evaluates DelayAVF per structure H, "a set of circuit elements
 * which are associated with the examined chip functionality", injecting
 * delays "solely ... on the wires E in the microarchitectural structure H"
 * (§VI-A). Hierarchical cell names ('/'-separated) define membership: a
 * structure is a name prefix, a wire belongs to the structure that contains
 * its *driving* cell, and a flop belongs to the structure that contains it.
 */

#ifndef DAVF_NETLIST_STRUCTURE_HH
#define DAVF_NETLIST_STRUCTURE_HH

#include <string>
#include <vector>

#include "netlist/netlist.hh"

namespace davf {

/** A named microarchitectural structure of a netlist. */
struct Structure
{
    std::string name;      ///< Display name, e.g. "ALU".
    std::string prefix;    ///< Hierarchical cell-name prefix, e.g. "alu/".
    std::vector<WireId> wires;          ///< SDF injection sites (E).
    std::vector<CellId> cells;          ///< Member cells.
    std::vector<StateElemId> flops;     ///< Member flops (sAVF targets).
};

/** Builds and stores the structures of a design. */
class StructureRegistry
{
  public:
    explicit StructureRegistry(const Netlist &netlist)
        : netlist(&netlist)
    {}

    /**
     * Register a structure covering all cells whose name starts with
     * @p prefix. Fails if the prefix matches nothing.
     */
    const Structure &add(std::string name, const std::string &prefix);

    /** All registered structures, in registration order. */
    const std::vector<Structure> &all() const { return structures; }

    /** Find a structure by display name; nullptr if absent. */
    const Structure *find(const std::string &name) const;

  private:
    const Netlist *netlist;
    std::vector<Structure> structures;
};

} // namespace davf

#endif // DAVF_NETLIST_STRUCTURE_HH
