/**
 * @file
 * Tests for the vulnerability engine:
 *
 *  - the headline exactness claim: the two-step DelayACE computation
 *    (Eq. 4) equals brute-force full-circuit timed simulation;
 *  - DynamicReachable is a subset of the statically reachable set;
 *  - GroupACE verdict semantics (no-op forces, direct SDC, hangs);
 *  - sAVF ground truths on hand-built circuits;
 *  - ACE compounding through a real SEC-ECC register (the Table III /
 *    Fig. 10 mechanism): single-bit strikes are masked, double errors
 *    escape;
 *  - aggregate result consistency of delayAvf().
 */

#include <gtest/gtest.h>

#include <map>

#include "src/builder/ecc.hh"
#include "src/campaign/checkpoint.hh"
#include "src/core/report.hh"
#include "src/core/vulnerability.hh"
#include "src/obs/metrics.hh"
#include "src/obs/trace.hh"
#include "src/soc/ibex_mini.hh"
#include "src/soc/soc_workload.hh"
#include "src/isa/assembler.hh"
#include "src/isa/benchmarks.hh"
#include "src/util/rng.hh"
#include "tests/helpers.hh"

namespace davf {
namespace {

class EngineRandom : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(EngineRandom, TwoStepMatchesBruteForce)
{
    const auto circuit = test::makeRandomCircuit(GetParam(), 10, 70, 16);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    const double period = engine.clockPeriod();

    Rng rng(GetParam() * 7919);
    for (int trial = 0; trial < 24; ++trial) {
        const WireId wire = rng.below(circuit.netlist->numWires());
        const uint64_t cycle = 1 + rng.below(engine.goldenCycles() - 1);
        const double d = (0.1 + 0.8 * rng.uniform()) * period;
        EXPECT_EQ(engine.delayAce(wire, cycle, d),
                  engine.delayAceBruteForce(wire, cycle, d))
            << "seed " << GetParam() << " wire " << wire << " cycle "
            << cycle << " d " << d;
    }
}

TEST_P(EngineRandom, DynamicReachableSubsetOfStatic)
{
    const auto circuit = test::makeRandomCircuit(GetParam() + 40, 10, 70,
                                                 16);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    const double period = engine.clockPeriod();

    Rng rng(GetParam() * 104729);
    std::vector<StateElemId> static_set;
    for (int trial = 0; trial < 24; ++trial) {
        const WireId wire = rng.below(circuit.netlist->numWires());
        const uint64_t cycle = 1 + rng.below(engine.goldenCycles() - 1);
        const double d = (0.1 + 0.8 * rng.uniform()) * period;

        engine.sta().staticallyReachable(wire, d, period, static_set);
        const auto errors = engine.dynamicErrors(wire, cycle, d);
        for (const auto &[elem, value] : errors) {
            EXPECT_TRUE(std::binary_search(static_set.begin(),
                                           static_set.end(), elem));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineRandom,
                         ::testing::Range<uint64_t>(1, 9));

TEST(Engine, ForcingGoldenValuesIsNotAce)
{
    const auto circuit = test::makeRandomCircuit(5, 8, 40, 12);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    // Empty force set: nothing changes, so no failure.
    EXPECT_EQ(engine.groupVerdict({}, 3), FailureKind::None);
}

/**
 * A circuit whose sink directly observes one flop: a wrong value forced
 * into that flop is immediately program visible.
 */
struct ObservedFlop
{
    std::unique_ptr<Netlist> nl = std::make_unique<Netlist>();
    StateElemId flop;
    std::unique_ptr<TraceWorkload> workload;

    ObservedFlop()
    {
        ModuleBuilder b(*nl);
        b.pushScope("obs");
        // Toggler flop observed by the sink every cycle.
        const NetId d = b.freshNet("d");
        const NetId q = b.dff(d);
        b.connect(d, b.inv(q));
        const CellId sink = nl->addBehavioral(
            "obs/sink", std::make_shared<TraceSinkModel>(1),
            {{q, b.constant(true)}}, {});
        b.popScope();
        nl->finalize();
        flop = nl->flopStateElem(nl->net(q).driver);
        workload = std::make_unique<TraceWorkload>(sink, 10);
    }
};

TEST(Engine, WrongForcedValueIsSdc)
{
    ObservedFlop c;
    VulnerabilityEngine engine(*c.nl, CellLibrary::defaultLibrary(),
                               *c.workload);
    // Golden sampled value at the edge of cycle 2: flop toggles 0,1,0...
    // at cycle 2 it holds 0 and will latch 1. Force the opposite.
    CycleSimulator probe(*c.nl);
    probe.step();
    probe.step();
    std::vector<uint8_t> sampled;
    probe.step({}, &sampled);
    const bool golden = sampled[c.flop] != 0;

    const CycleSimulator::Force wrong[] = {{c.flop, !golden}};
    EXPECT_EQ(engine.groupVerdict(wrong, 2), FailureKind::Sdc);

    const CycleSimulator::Force same[] = {{c.flop, golden}};
    EXPECT_EQ(engine.groupVerdict(same, 2), FailureKind::None);
}

TEST(Engine, SavfOfObservedFlopIsOne)
{
    ObservedFlop c;
    VulnerabilityEngine engine(*c.nl, CellLibrary::defaultLibrary(),
                               *c.workload);
    StructureRegistry registry(*c.nl);
    const Structure &structure = registry.add("Obs", "obs/");

    SamplingConfig config;
    config.maxInjectionCycles = 4;
    config.threads = 1;
    const SavfResult result = engine.savf(structure, config);
    EXPECT_GT(result.injections, 0u);
    EXPECT_DOUBLE_EQ(result.savf, 1.0);
    EXPECT_EQ(result.sdc, result.aceInjections);
}

TEST(Engine, SavfOfDeadFlopIsZero)
{
    // A flop that feeds nothing observable.
    Netlist nl;
    ModuleBuilder b(nl);
    b.pushScope("dead");
    const NetId d = b.freshNet("d");
    const NetId q = b.dff(d);
    b.connect(d, b.inv(q));
    b.output("unused", b.buf(q)); // An output port... but see below.
    // Observable part: a constant streamed to the sink.
    const CellId sink = nl.addBehavioral(
        "dead/sink", std::make_shared<TraceSinkModel>(1),
        {{b.constant(false), b.constant(true)}}, {});
    b.popScope();
    nl.finalize();
    TraceWorkload workload(sink, 10);

    VulnerabilityEngine engine(nl, CellLibrary::defaultLibrary(),
                               workload);
    StructureRegistry registry(nl);
    // Restrict to the flop only (prefix matches the dff cell name).
    Structure structure;
    structure.name = "flop";
    structure.flops = {nl.flopStateElem(nl.net(q).driver)};

    SamplingConfig config;
    config.maxInjectionCycles = 4;
    config.threads = 1;
    const SavfResult result = engine.savf(structure, config);
    EXPECT_EQ(result.aceInjections, 0u);
    EXPECT_DOUBLE_EQ(result.savf, 0.0);
}

/**
 * SEC-ECC-protected register observed through a corrector — the
 * mechanism behind Fig. 10/11 and the Regfile (ECC) row of Table III.
 */
struct EccRegister
{
    std::unique_ptr<Netlist> nl = std::make_unique<Netlist>();
    std::vector<StateElemId> codeFlops;
    std::unique_ptr<TraceWorkload> workload;

    EccRegister()
    {
        ModuleBuilder b(*nl);
        b.pushScope("eccreg");
        // 4-bit counter as the data source.
        Bus count;
        {
            Bus d = b.freshBus(4, "cnt_d");
            count = b.regB(d, 0, "cnt");
            const Bus plus1 = b.adder(count, b.constantBus(4, 1),
                                      b.constant(false));
            b.connectBus(d, plus1);
        }
        // Encode, register the codeword, correct, observe.
        const Bus code = eccEncode(b, count);
        const Bus code_q = b.regB(code, 0, "code");
        const Bus corrected = eccCorrect(b, code_q, 4);
        Bus sink_in = corrected;
        sink_in.push_back(b.constant(true));
        const CellId sink = nl->addBehavioral(
            "eccreg/sink", std::make_shared<TraceSinkModel>(4), sink_in,
            {});
        b.popScope();
        nl->finalize();
        for (NetId q : code_q)
            codeFlops.push_back(nl->flopStateElem(nl->net(q).driver));
        workload = std::make_unique<TraceWorkload>(sink, 12);
    }
};

TEST(Engine, EccMasksEverySingleBitStrike)
{
    EccRegister c;
    VulnerabilityEngine engine(*c.nl, CellLibrary::defaultLibrary(),
                               *c.workload);
    Structure structure;
    structure.name = "code";
    structure.flops = c.codeFlops;

    SamplingConfig config;
    config.maxInjectionCycles = 3;
    config.threads = 1;
    const SavfResult result = engine.savf(structure, config);
    // Paper §VI-C: "adding a single-error correcting ECC to the
    // register file reduces its sAVF to zero".
    EXPECT_EQ(result.aceInjections, 0u);
    EXPECT_GT(result.injections, 0u);
}

TEST(Engine, EccDoubleErrorCompounds)
{
    EccRegister c;
    VulnerabilityEngine engine(*c.nl, CellLibrary::defaultLibrary(),
                               *c.workload);

    // Golden sampled values at the edge of cycle 4.
    CycleSimulator probe(*c.nl);
    for (int i = 0; i < 4; ++i)
        probe.step();
    std::vector<uint8_t> sampled;
    probe.step({}, &sampled);

    // Each single wrong codeword bit: corrected, not ACE.
    const StateElemId f0 = c.codeFlops[0];
    const StateElemId f1 = c.codeFlops[1];
    const CycleSimulator::Force single0[] = {
        {f0, sampled[f0] == 0}};
    const CycleSimulator::Force single1[] = {
        {f1, sampled[f1] == 0}};
    EXPECT_EQ(engine.groupVerdict(single0, 4), FailureKind::None);
    EXPECT_EQ(engine.groupVerdict(single1, 4), FailureKind::None);

    // Both together: SEC mis-corrects and the wrong value is observed
    // (ACE compounding: GroupACE without any individually ACE element).
    const CycleSimulator::Force both[] = {{f0, sampled[f0] == 0},
                                          {f1, sampled[f1] == 0}};
    EXPECT_EQ(engine.groupVerdict(both, 4), FailureKind::Sdc);
}

TEST(Engine, DelayAvfAggregatesAreConsistent)
{
    const auto circuit = test::makeRandomCircuit(77, 12, 90, 20);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");

    SamplingConfig config;
    config.maxInjectionCycles = 6;
    config.threads = 2;
    const DelayAvfResult result = engine.delayAvf(structure, 0.6, config);

    EXPECT_EQ(result.injections,
              uint64_t{result.wiresInjected} * result.cyclesInjected);
    EXPECT_LE(result.delayAceInjections, result.errorInjections);
    EXPECT_LE(result.errorInjections, result.staticInjections);
    EXPECT_LE(result.staticInjections, result.injections);
    EXPECT_LE(result.multiBitInjections, result.errorInjections);
    EXPECT_EQ(result.sdc + result.due, result.delayAceInjections);
    EXPECT_GE(result.delayAvf, 0.0);
    EXPECT_LE(result.delayAvf, 1.0);
    EXPECT_LE(result.groupAceWireFraction, result.dynamicWireFraction);
    EXPECT_LE(result.dynamicWireFraction, result.staticWireFraction);
    // ORACE bookkeeping: interference + compounding are consistent.
    EXPECT_LE(result.aceInterference, result.orAceInjections);
    EXPECT_LE(result.aceCompounding, result.delayAceInjections);
}

TEST(Engine, DelayAvfIsDeterministicAcrossThreadCounts)
{
    const auto circuit = test::makeRandomCircuit(78, 10, 60, 16);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");

    SamplingConfig config;
    config.maxInjectionCycles = 5;
    config.threads = 1;
    const DelayAvfResult serial = engine.delayAvf(structure, 0.5, config);
    config.threads = 4;
    const DelayAvfResult parallel =
        engine.delayAvf(structure, 0.5, config);

    EXPECT_EQ(serial.delayAceInjections, parallel.delayAceInjections);
    EXPECT_EQ(serial.errorInjections, parallel.errorInjections);
    EXPECT_EQ(serial.orAceInjections, parallel.orAceInjections);
    EXPECT_DOUBLE_EQ(serial.delayAvf, parallel.delayAvf);
}

TEST(Engine, ZeroDelayHasZeroDelayAvf)
{
    const auto circuit = test::makeRandomCircuit(79, 10, 60, 16);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");

    SamplingConfig config;
    config.maxInjectionCycles = 4;
    config.threads = 1;
    // d = 0: the design meets timing; nothing is statically reachable.
    const DelayAvfResult result = engine.delayAvf(structure, 0.0, config);
    EXPECT_EQ(result.staticInjections, 0u);
    EXPECT_DOUBLE_EQ(result.delayAvf, 0.0);
}

TEST(Engine, ObservedPeriodModeTightensTheClock)
{
    const auto circuit = test::makeRandomCircuit(90, 12, 90, 20);
    TraceWorkload &workload = *circuit.workload;

    VulnerabilityEngine sta_engine(*circuit.netlist,
                                   CellLibrary::defaultLibrary(),
                                   workload);
    EngineOptions options;
    options.periodMode =
        EngineOptions::PeriodMode::ObservedMaxPlusMargin;
    VulnerabilityEngine observed_engine(*circuit.netlist,
                                        CellLibrary::defaultLibrary(),
                                        workload, options);

    // The observed period can never exceed the STA bound (plus margin)
    // and both engines must agree on golden behaviour.
    EXPECT_LE(observed_engine.clockPeriod(),
              sta_engine.clockPeriod() * (1.0 + options.periodMargin)
                  + 1e-9);
    EXPECT_GT(observed_engine.clockPeriod(), 0.0);
    EXPECT_EQ(observed_engine.goldenCycles(),
              sta_engine.goldenCycles());
    EXPECT_EQ(observed_engine.goldenOutput(),
              sta_engine.goldenOutput());
}

TEST(Engine, TwoStepMatchesBruteForceUnderObservedPeriod)
{
    // The exactness property must hold at any valid clock period.
    const auto circuit = test::makeRandomCircuit(91, 10, 70, 16);
    EngineOptions options;
    options.periodMode =
        EngineOptions::PeriodMode::ObservedMaxPlusMargin;
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload, options);
    Rng rng(9177);
    for (int trial = 0; trial < 20; ++trial) {
        const WireId wire = rng.below(circuit.netlist->numWires());
        const uint64_t cycle = 1 + rng.below(engine.goldenCycles() - 1);
        const double d =
            (0.1 + 0.8 * rng.uniform()) * engine.clockPeriod();
        EXPECT_EQ(engine.delayAce(wire, cycle, d),
                  engine.delayAceBruteForce(wire, cycle, d))
            << "wire " << wire << " cycle " << cycle << " d " << d;
    }
}

TEST(Engine, PerWireRecordingIsConsistent)
{
    const auto circuit = test::makeRandomCircuit(92, 10, 70, 16);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");

    SamplingConfig config;
    config.maxInjectionCycles = 5;
    config.threads = 1;
    config.recordPerWire = true;
    const DelayAvfResult result = engine.delayAvf(structure, 0.7, config);

    ASSERT_EQ(result.injectedWires.size(), result.wiresInjected);
    ASSERT_EQ(result.perWireAce.size(), result.wiresInjected);
    uint64_t total = 0;
    for (uint32_t count : result.perWireAce) {
        EXPECT_LE(count, result.cyclesInjected);
        total += count;
    }
    EXPECT_EQ(total, result.delayAceInjections);
}

TEST(Engine, HangIsClassifiedAsDue)
{
    // A circuit whose done-signal is a flop: forcing it to never fire
    // makes the run overshoot the watchdog -> DUE. Build: a counter
    // reaching 12 raises "done"; the workload watches that.
    Netlist nl;
    ModuleBuilder b(nl);
    b.pushScope("ctr");
    Bus d = b.freshBus(5, "cnt_d");
    const Bus count = b.regB(d, 0, "cnt");
    b.connectBus(d, b.adder(count, b.constantBus(5, 1),
                            b.constant(false)));
    const NetId done = b.equal(count, b.constantBus(5, 12));
    const CellId sink = nl.addBehavioral(
        "ctr/sink", std::make_shared<TraceSinkModel>(1),
        {{done, b.constant(true)}}, {});
    b.popScope();
    nl.finalize();

    /** Workload: done when the sink last recorded a 1. */
    class DoneWorkload : public TraceWorkload
    {
      public:
        using TraceWorkload::TraceWorkload;
        bool
        done(const CycleSimulator &sim) const override
        {
            const auto trace = outputTrace(sim);
            return !trace.empty() && trace.back() == 1;
        }
    };
    DoneWorkload workload(sink, 1u << 20);

    VulnerabilityEngine engine(nl, CellLibrary::defaultLibrary(),
                               workload);
    EXPECT_EQ(engine.goldenCycles(), 13u);

    // Force the counter's MSB flop at an edge so the count skips past
    // 12 and wraps forever short of it... flipping bit 4 at cycle 10
    // (count = 10 -> latches 27 instead of 11; the counter then wraps
    // and *will* eventually pass 12 again, so pick the force that
    // stalls: force bit0 low every... simpler: verify the verdict is a
    // failure of some kind and the watchdog terminates.
    const StateElemId msb = nl.flopsByPrefix("ctr/cnt4")[0];
    const CycleSimulator::Force wrong[] = {{msb, true}};
    const FailureKind verdict = engine.groupVerdict(wrong, 10, 64);
    // count jumps to 16+11=27, wraps 28..31 -> 0..12: it reaches 12
    // later than golden but with the same (empty-until-1) trace: the
    // output history is 0s then 1, but the golden trace has exactly 13
    // entries while the faulty has more -> SDC; either failure kind is
    // acceptable, what matters is that it IS a failure and terminates.
    EXPECT_NE(verdict, FailureKind::None);
}

TEST(Engine, SamplingEdgeCases)
{
    const auto circuit = test::makeRandomCircuit(93, 8, 40, 6);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");

    // Wire cap larger than the structure: everything injected once.
    SamplingConfig config;
    config.maxInjectionCycles = 3;
    config.maxWires = structure.wires.size() * 10;
    config.threads = 1;
    const DelayAvfResult all_wires =
        engine.delayAvf(structure, 0.5, config);
    EXPECT_EQ(all_wires.wiresInjected, structure.wires.size());

    // cycleFraction = 1 with a large cap: every usable cycle sampled.
    config.cycleFraction = 1.0;
    config.maxInjectionCycles = 1000;
    const DelayAvfResult all_cycles =
        engine.delayAvf(structure, 0.5, config);
    EXPECT_EQ(all_cycles.cyclesInjected, engine.goldenCycles() - 1);

    // Counters stay coherent in the exhaustive case too.
    EXPECT_LE(all_cycles.skippedNoToggle, all_cycles.staticInjections);
    EXPECT_EQ(all_cycles.sdc + all_cycles.due,
              all_cycles.delayAceInjections);
}

TEST(Engine, WireSamplingIsSeedStableAndDeterministic)
{
    const auto circuit = test::makeRandomCircuit(94, 10, 60, 12);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");

    SamplingConfig config;
    config.maxInjectionCycles = 4;
    config.maxWires = structure.wires.size() / 2;
    config.recordPerWire = true;
    config.threads = 2;

    const DelayAvfResult first = engine.delayAvf(structure, 0.6, config);
    const DelayAvfResult second =
        engine.delayAvf(structure, 0.6, config);
    EXPECT_EQ(first.injectedWires, second.injectedWires);
    EXPECT_EQ(first.perWireAce, second.perWireAce);

    config.seed = 99;
    const DelayAvfResult other = engine.delayAvf(structure, 0.6, config);
    EXPECT_NE(first.injectedWires, other.injectedWires);
}

TEST(Engine, SavfDeterministicAcrossThreads)
{
    const auto circuit = test::makeRandomCircuit(95, 10, 60, 12);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");

    SamplingConfig config;
    config.maxInjectionCycles = 4;
    config.threads = 1;
    const SavfResult serial = engine.savf(structure, config);
    config.threads = 4;
    const SavfResult parallel = engine.savf(structure, config);
    EXPECT_EQ(serial.aceInjections, parallel.aceInjections);
    EXPECT_EQ(serial.sdc, parallel.sdc);
    EXPECT_EQ(serial.due, parallel.due);
}

/**
 * @name Vector-vs-scalar differential suite
 *
 * The engine's bit-parallel path (EngineOptions::vectorize) must be a
 * pure speed knob: byte-identical InjectionCycleOutcomes, aggregates,
 * and JSON reports against the scalar reference, at any lane width,
 * thread count, shard range, and across checkpoint/resume — that is
 * what keeps davf_serve's persistent store valid regardless of which
 * path computed a record.
 */
/// @{

class VectorDifferential : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(VectorDifferential, DelayAvfCycleOutcomesBitIdentical)
{
    const auto circuit = test::makeRandomCircuit(GetParam() + 300, 10,
                                                 70, 16);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");

    SamplingConfig config;
    config.cycleFraction = 0.3;
    config.maxInjectionCycles = 3;
    config.threads = 1;
    for (uint64_t cycle : engine.injectionCycles(config)) {
        engine.setVectorMode(false);
        const InjectionCycleOutcome scalar =
            engine.delayAvfCycle(structure, 0.6, cycle, config);
        // A narrow lane width exercises multi-batch resolution; the
        // full width exercises the common case.
        engine.setVectorMode(true, 4);
        const InjectionCycleOutcome vec4 =
            engine.delayAvfCycle(structure, 0.6, cycle, config);
        engine.setVectorMode(true, 64);
        const InjectionCycleOutcome vec64 =
            engine.delayAvfCycle(structure, 0.6, cycle, config);
        EXPECT_TRUE(scalar == vec4) << "cycle " << cycle;
        EXPECT_TRUE(scalar == vec64) << "cycle " << cycle;
        EXPECT_GT(scalar.injections, 0u);
    }
}

TEST_P(VectorDifferential, ShardRangesAndQuarantineBitIdentical)
{
    // The process-isolation worker primitive: partial wire ranges and
    // quarantined injection indices must not disturb bit-identity, so a
    // supervised campaign may mix vector and scalar workers freely.
    const auto circuit = test::makeRandomCircuit(GetParam() + 320, 10,
                                                 60, 16);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");

    SamplingConfig config;
    config.cycleFraction = 0.2;
    config.maxInjectionCycles = 2;
    config.threads = 1;
    const std::vector<WireId> wires =
        engine.sampledWires(structure, config);
    ASSERT_GT(wires.size(), 4u);
    const size_t mid = wires.size() / 2;
    const std::vector<size_t> quarantined = {1, mid, wires.size() - 1};

    for (uint64_t cycle : engine.injectionCycles(config)) {
        engine.setVectorMode(false);
        const InjectionCycleOutcome lo_s = engine.delayAvfCycle(
            structure, 0.7, cycle, config, 0, mid, quarantined);
        const InjectionCycleOutcome hi_s = engine.delayAvfCycle(
            structure, 0.7, cycle, config, mid, SIZE_MAX, quarantined);
        engine.setVectorMode(true, 64);
        const InjectionCycleOutcome lo_v = engine.delayAvfCycle(
            structure, 0.7, cycle, config, 0, mid, quarantined);
        const InjectionCycleOutcome hi_v = engine.delayAvfCycle(
            structure, 0.7, cycle, config, mid, SIZE_MAX, quarantined);
        EXPECT_TRUE(lo_s == lo_v) << "low shard, cycle " << cycle;
        EXPECT_TRUE(hi_s == hi_v) << "high shard, cycle " << cycle;
        EXPECT_GT(lo_s.skipReasons.count("quarantined"), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorDifferential,
                         ::testing::Range<uint64_t>(1, 6));

TEST(VectorDifferential, DelayAvfJsonBitIdenticalAcrossThreads)
{
    const auto circuit = test::makeRandomCircuit(330, 12, 90, 20);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");

    SamplingConfig config;
    config.cycleFraction = 0.25;
    config.maxInjectionCycles = 4;
    config.recordPerWire = true;

    auto report = [&](bool vectorize, unsigned threads) {
        engine.setVectorMode(vectorize);
        config.threads = threads;
        ReportRow row;
        row.benchmark = "rnd";
        row.structure = "Rnd";
        row.delayFraction = 0.6;
        row.davf = engine.delayAvf(structure, 0.6, config);
        return reportJson({row});
    };

    const std::string scalar1 = report(false, 1);
    const std::string scalar4 = report(false, 4);
    const std::string vector1 = report(true, 1);
    const std::string vector4 = report(true, 4);
    EXPECT_EQ(scalar1, scalar4);
    EXPECT_EQ(scalar1, vector1);
    EXPECT_EQ(scalar1, vector4);
}

TEST(VectorDifferential, SavfJsonBitIdenticalAcrossThreads)
{
    const auto circuit = test::makeRandomCircuit(331, 12, 70, 16);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");

    SamplingConfig config;
    config.maxInjectionCycles = 4;

    auto report = [&](bool vectorize, unsigned threads) {
        engine.setVectorMode(vectorize);
        config.threads = threads;
        ReportRow row;
        row.kind = "savf";
        row.benchmark = "rnd";
        row.structure = "Rnd";
        row.savf = engine.savf(structure, config);
        return reportJson({row});
    };

    const std::string scalar1 = report(false, 1);
    const std::string scalar4 = report(false, 4);
    const std::string vector1 = report(true, 1);
    const std::string vector4 = report(true, 4);
    EXPECT_EQ(scalar1, scalar4);
    EXPECT_EQ(scalar1, vector1);
    EXPECT_EQ(scalar1, vector4);

    // A narrow lane width forces several batches per task.
    engine.setVectorMode(true, 3);
    config.threads = 2;
    ReportRow row;
    row.kind = "savf";
    row.benchmark = "rnd";
    row.structure = "Rnd";
    row.savf = engine.savf(structure, config);
    EXPECT_EQ(scalar1, reportJson({row}));
}

TEST(VectorDifferential, ResumeMidCellCrossesPaths)
{
    // Half the injection cycles computed (and checkpointed) by the
    // scalar path, the rest by the vector path after a "resume" — the
    // aggregate must equal an uninterrupted run of either path.
    const auto circuit = test::makeRandomCircuit(332, 10, 70, 16);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");

    SamplingConfig config;
    config.cycleFraction = 0.3;
    config.maxInjectionCycles = 4;
    config.threads = 2;
    const std::vector<uint64_t> cycles = engine.injectionCycles(config);
    ASSERT_GE(cycles.size(), 2u);

    engine.setVectorMode(false);
    DelayAvfProgress capture;
    std::vector<InjectionCycleOutcome> outcomes;
    capture.onCycleDone = [&](const InjectionCycleOutcome &outcome) {
        outcomes.push_back(outcome);
    };
    const DelayAvfResult scalar_full =
        engine.delayAvf(structure, 0.6, config, &capture);
    ASSERT_EQ(outcomes.size(), cycles.size());

    // Adopt outcomes for the first half of the schedule, as a resumed
    // campaign would from its journal's partial-cell records.
    DelayAvfProgress resume;
    for (const InjectionCycleOutcome &outcome : outcomes) {
        for (size_t i = 0; i < cycles.size() / 2; ++i) {
            if (outcome.cycle == cycles[i])
                resume.completed.push_back(outcome);
        }
    }
    ASSERT_FALSE(resume.completed.empty());

    engine.setVectorMode(true);
    const DelayAvfResult resumed =
        engine.delayAvf(structure, 0.6, config, &resume);

    auto json = [](const DelayAvfResult &result) {
        ReportRow row;
        row.benchmark = "rnd";
        row.structure = "Rnd";
        row.delayFraction = 0.6;
        row.davf = result;
        return reportJson({row});
    };
    EXPECT_EQ(json(scalar_full), json(resumed));

    // And the mirror image: vector-computed outcomes adopted by a
    // scalar resume.
    engine.setVectorMode(true);
    outcomes.clear();
    const DelayAvfResult vector_full =
        engine.delayAvf(structure, 0.6, config, &capture);
    EXPECT_EQ(json(scalar_full), json(vector_full));

    DelayAvfProgress resume_back;
    for (const InjectionCycleOutcome &outcome : outcomes) {
        for (size_t i = cycles.size() / 2; i < cycles.size(); ++i) {
            if (outcome.cycle == cycles[i])
                resume_back.completed.push_back(outcome);
        }
    }
    engine.setVectorMode(false);
    const DelayAvfResult resumed_back =
        engine.delayAvf(structure, 0.6, config, &resume_back);
    EXPECT_EQ(json(scalar_full), json(resumed_back));
}

/**
 * @name Lane-parallel timed-simulator differential suite
 *
 * EngineOptions::vectorTsim batches the per-wire cone re-simulations of
 * one injection cycle onto the lane-parallel timed simulator. Like the
 * continuation vector path, it must be a pure speed knob: byte-identical
 * outcomes and reports against the scalar cone loop at any lane count,
 * thread count, and across checkpoint/resume.
 */
/// @{

class TsimDifferential : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(TsimDifferential, CycleOutcomesBitIdenticalAcrossLaneCounts)
{
    const auto circuit = test::makeRandomCircuit(GetParam() + 500, 10,
                                                 70, 16);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");

    SamplingConfig config;
    config.cycleFraction = 0.3;
    config.maxInjectionCycles = 3;
    config.threads = 1;
    for (uint64_t cycle : engine.injectionCycles(config)) {
        engine.setTsimVectorMode(false, 1);
        const InjectionCycleOutcome scalar =
            engine.delayAvfCycle(structure, 0.6, cycle, config);
        // Lane count 1 must degrade to the scalar loop; 4 forces many
        // small batches; 64 is the common case.
        for (unsigned lanes : {1u, 4u, 64u}) {
            engine.setTsimVectorMode(true, lanes);
            const InjectionCycleOutcome vec =
                engine.delayAvfCycle(structure, 0.6, cycle, config);
            EXPECT_TRUE(scalar == vec)
                << "cycle " << cycle << " lanes " << lanes;
        }
        EXPECT_GT(scalar.injections, 0u);
    }
    engine.setTsimVectorMode(true, 64);
}

TEST_P(TsimDifferential, BatchedVerdictsMatchBruteForce)
{
    // The exactness claim end to end on the batched path: every
    // per-wire ACE verdict in a lane-batched injection cycle equals a
    // brute-force full-circuit timed simulation of that one fault.
    const auto circuit = test::makeRandomCircuit(GetParam() + 520, 10,
                                                 60, 16);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");

    SamplingConfig config;
    config.cycleFraction = 0.2;
    config.maxInjectionCycles = 2;
    config.maxWires = 20;
    config.threads = 1;
    const std::vector<WireId> wires =
        engine.sampledWires(structure, config);
    const double delay_ps = 0.7 * engine.clockPeriod();

    engine.setTsimVectorMode(true, 64);
    for (uint64_t cycle : engine.injectionCycles(config)) {
        const InjectionCycleOutcome outcome =
            engine.delayAvfCycle(structure, 0.7, cycle, config);
        ASSERT_EQ(outcome.wireAce.size(), wires.size());
        for (size_t i = 0; i < wires.size(); ++i) {
            EXPECT_EQ(outcome.wireAce[i] != 0,
                      engine.delayAceBruteForce(wires[i], cycle,
                                                delay_ps))
                << "seed " << GetParam() << " cycle " << cycle
                << " wire " << wires[i];
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TsimDifferential,
                         ::testing::Range<uint64_t>(1, 5));

TEST(TsimDifferential, DelayAvfJsonBitIdenticalAcrossThreadsAndLanes)
{
    const auto circuit = test::makeRandomCircuit(530, 12, 90, 20);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");

    SamplingConfig config;
    config.cycleFraction = 0.25;
    config.maxInjectionCycles = 4;
    config.recordPerWire = true;

    auto report = [&](bool vector_tsim, unsigned lanes,
                      unsigned threads) {
        engine.setTsimVectorMode(vector_tsim, lanes);
        config.threads = threads;
        ReportRow row;
        row.benchmark = "rnd";
        row.structure = "Rnd";
        row.delayFraction = 0.6;
        row.davf = engine.delayAvf(structure, 0.6, config);
        return reportJson({row});
    };

    const std::string scalar1 = report(false, 1, 1);
    EXPECT_EQ(scalar1, report(false, 1, 4));
    EXPECT_EQ(scalar1, report(true, 4, 1));
    EXPECT_EQ(scalar1, report(true, 64, 1));
    EXPECT_EQ(scalar1, report(true, 64, 4));
    EXPECT_EQ(scalar1, report(true, 4, 4));
    engine.setTsimVectorMode(true, 64);
}

TEST(TsimDifferential, ResumeCrossesTsimPaths)
{
    // Half the injection cycles checkpointed by the scalar cone loop,
    // the rest computed lane-batched after a resume — and the mirror
    // image — must equal an uninterrupted run of either flavor.
    const auto circuit = test::makeRandomCircuit(531, 10, 70, 16);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");

    SamplingConfig config;
    config.cycleFraction = 0.3;
    config.maxInjectionCycles = 4;
    config.threads = 2;
    const std::vector<uint64_t> cycles = engine.injectionCycles(config);
    ASSERT_GE(cycles.size(), 2u);

    auto json = [](const DelayAvfResult &result) {
        ReportRow row;
        row.benchmark = "rnd";
        row.structure = "Rnd";
        row.delayFraction = 0.6;
        row.davf = result;
        return reportJson({row});
    };

    engine.setTsimVectorMode(false, 1);
    DelayAvfProgress capture;
    std::vector<InjectionCycleOutcome> outcomes;
    capture.onCycleDone = [&](const InjectionCycleOutcome &outcome) {
        outcomes.push_back(outcome);
    };
    const DelayAvfResult scalar_full =
        engine.delayAvf(structure, 0.6, config, &capture);
    ASSERT_EQ(outcomes.size(), cycles.size());

    DelayAvfProgress resume;
    for (const InjectionCycleOutcome &outcome : outcomes) {
        for (size_t i = 0; i < cycles.size() / 2; ++i) {
            if (outcome.cycle == cycles[i])
                resume.completed.push_back(outcome);
        }
    }
    ASSERT_FALSE(resume.completed.empty());
    engine.setTsimVectorMode(true, 64);
    const DelayAvfResult resumed =
        engine.delayAvf(structure, 0.6, config, &resume);
    EXPECT_EQ(json(scalar_full), json(resumed));

    engine.setTsimVectorMode(true, 64);
    outcomes.clear();
    const DelayAvfResult vector_full =
        engine.delayAvf(structure, 0.6, config, &capture);
    EXPECT_EQ(json(scalar_full), json(vector_full));

    DelayAvfProgress resume_back;
    for (const InjectionCycleOutcome &outcome : outcomes) {
        for (size_t i = cycles.size() / 2; i < cycles.size(); ++i) {
            if (outcome.cycle == cycles[i])
                resume_back.completed.push_back(outcome);
        }
    }
    engine.setTsimVectorMode(false, 1);
    const DelayAvfResult resumed_back =
        engine.delayAvf(structure, 0.6, config, &resume_back);
    EXPECT_EQ(json(scalar_full), json(resumed_back));
    engine.setTsimVectorMode(true, 64);
}

/// @}
/**
 * @name Cross-delay sweep reuse
 *
 * beginDelaySweep() lets adjacent delay values of one campaign share
 * per-cycle golden contexts, STA filter results, and failure verdicts.
 * Every reuse rule is provably outcome-preserving, so a sweep must be
 * byte-identical to independent per-delay runs — including the derived
 * counters — at any thread count.
 */
/// @{

TEST(SweepReuse, MultiDelaySweepBitIdenticalToIndependentRuns)
{
    const auto circuit = test::makeRandomCircuit(540, 12, 90, 20);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");

    SamplingConfig config;
    config.cycleFraction = 0.25;
    config.maxInjectionCycles = 4;
    config.recordPerWire = true;
    const std::vector<double> fractions = {0.2, 0.45, 0.7, 0.95};

    auto row_json = [&](double d) {
        ReportRow row;
        row.benchmark = "rnd";
        row.structure = "Rnd";
        row.delayFraction = d;
        row.davf = engine.delayAvf(structure, d, config);
        return reportJson({row});
    };

    // Reference: one fresh, sweep-blind run per delay value.
    std::map<double, std::string> independent;
    config.threads = 1;
    for (double d : fractions)
        independent[d] = row_json(d);

    for (unsigned threads : {1u, 4u}) {
        for (bool vector_tsim : {true, false}) {
            config.threads = threads;
            engine.setTsimVectorMode(vector_tsim, 64);
            engine.beginDelaySweep(fractions);
            for (double d : fractions) {
                EXPECT_EQ(independent.at(d), row_json(d))
                    << "d " << d << " threads " << threads
                    << " vectorTsim " << vector_tsim;
            }
            engine.endDelaySweep();
        }
    }

    // Visiting the delay list in descending order must not matter.
    config.threads = 2;
    engine.setTsimVectorMode(true, 64);
    engine.beginDelaySweep(fractions);
    for (auto it = fractions.rbegin(); it != fractions.rend(); ++it)
        EXPECT_EQ(independent.at(*it), row_json(*it)) << "d " << *it;
    engine.endDelaySweep();
}

TEST(SweepReuse, ReuseCountersAreScheduleInvariant)
{
    const auto circuit = test::makeRandomCircuit(541, 10, 70, 16);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");

    SamplingConfig config;
    config.cycleFraction = 0.3;
    config.maxInjectionCycles = 3;
    const std::vector<double> fractions = {0.3, 0.6, 0.9};

    auto countersOf = [&](unsigned threads) {
        obs::MetricsRegistry::instance().reset();
        obs::MetricsRegistry::setEnabled(true);
        config.threads = threads;
        engine.beginDelaySweep(fractions);
        for (double d : fractions)
            engine.delayAvf(structure, d, config);
        engine.endDelaySweep();
        obs::MetricsRegistry::setEnabled(false);
        std::map<std::string, uint64_t> counters =
            obs::MetricsRegistry::instance().snapshot().counters;
        obs::MetricsRegistry::instance().reset();
        for (auto it = counters.begin(); it != counters.end();) {
            const std::string &name = it->first;
            if (name.size() > 3
                && name.compare(name.size() - 3, 3, "_ns") == 0)
                it = counters.erase(it);
            else
                ++it;
        }
        return counters;
    };

    const auto one = countersOf(1);
    EXPECT_EQ(one, countersOf(4));
    // The second and third delay values run entirely out of the shared
    // caches' golden contexts, and verdict reuse must actually fire.
    EXPECT_GT(one.at("engine.tsim.ctx_reuse"), 0u);
    EXPECT_GT(one.at("engine.tsim.sta_reuse"), 0u);
    EXPECT_GT(one.at("engine.tsim.sweep_verdict_reuse"), 0u);
}

/// @}

TEST(Observability, MetricsAndTracingNeverPerturbResults)
{
    // The observability layer's contract: with collection and tracing
    // on, every result byte — report JSON, per-cycle checkpoint/store
    // records — is identical to a run with them off, across thread
    // counts and the vector/scalar switch. Metrics may only *observe*.
    const auto circuit = test::makeRandomCircuit(333, 10, 70, 16);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");

    SamplingConfig config;
    config.cycleFraction = 0.3;
    config.maxInjectionCycles = 4;
    config.recordPerWire = true;

    // One run's complete byte surface: the report JSON plus every
    // serialized per-cycle outcome (the checkpoint-journal / result-
    // store payload), in cycle order.
    auto resultBytes = [&](bool observe, bool vectorize,
                           unsigned threads) {
        obs::MetricsRegistry::instance().reset();
        obs::Trace::clear();
        obs::MetricsRegistry::setEnabled(observe);
        obs::Trace::setEnabled(observe);

        engine.setVectorMode(vectorize);
        config.threads = threads;
        DelayAvfProgress capture;
        std::map<uint64_t, std::string> records;
        capture.onCycleDone = [&](const InjectionCycleOutcome &out) {
            records[out.cycle] = serializeOutcomeFields(out);
        };
        ReportRow row;
        row.benchmark = "rnd";
        row.structure = "Rnd";
        row.delayFraction = 0.6;
        row.davf = engine.delayAvf(structure, 0.6, config, &capture);

        obs::MetricsRegistry::setEnabled(false);
        obs::Trace::setEnabled(false);
        obs::MetricsRegistry::instance().reset();
        obs::Trace::clear();

        std::string bytes = reportJson({row});
        for (const auto &[cycle, record] : records) {
            bytes += '\n';
            bytes += record;
        }
        return bytes;
    };

    const std::string baseline = resultBytes(false, true, 1);
    EXPECT_EQ(baseline, resultBytes(false, false, 4));
    EXPECT_EQ(baseline, resultBytes(true, true, 1));
    EXPECT_EQ(baseline, resultBytes(true, true, 4));
    EXPECT_EQ(baseline, resultBytes(true, false, 1));
    EXPECT_EQ(baseline, resultBytes(true, false, 4));
}

TEST(Observability, EngineCountersAreDeterministicAcrossSchedules)
{
    // The non-timing counters derive from per-cycle outcomes, so the
    // snapshot (with `_ns` entries masked out) must not depend on the
    // thread count or the vector/scalar switch's batching.
    const auto circuit = test::makeRandomCircuit(334, 10, 70, 16);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");

    SamplingConfig config;
    config.cycleFraction = 0.3;
    config.maxInjectionCycles = 4;

    auto countersOf = [&](bool vectorize, unsigned threads) {
        obs::MetricsRegistry::instance().reset();
        obs::MetricsRegistry::setEnabled(true);
        engine.setVectorMode(vectorize, vectorize ? 4 : 64);
        config.threads = threads;
        engine.delayAvf(structure, 0.6, config);
        obs::MetricsRegistry::setEnabled(false);
        std::map<std::string, uint64_t> counters =
            obs::MetricsRegistry::instance().snapshot().counters;
        obs::MetricsRegistry::instance().reset();
        for (auto it = counters.begin(); it != counters.end();) {
            const std::string &name = it->first;
            if (name.size() > 3
                && name.compare(name.size() - 3, 3, "_ns") == 0)
                it = counters.erase(it);
            else
                ++it;
        }
        return counters;
    };

    const auto vector1 = countersOf(true, 1);
    EXPECT_EQ(vector1, countersOf(true, 4));
    EXPECT_GT(vector1.at("engine.cycles_computed"), 0u);
    EXPECT_GT(vector1.at("engine.vector.batches"), 0u);

    const auto scalar1 = countersOf(false, 1);
    EXPECT_EQ(scalar1, countersOf(false, 4));
    EXPECT_EQ(scalar1.at("engine.injections"),
              vector1.at("engine.injections"));
    // The vector path's memo-hit accounting replays the scalar demand
    // order, so the hit counters agree exactly across paths.
    EXPECT_EQ(scalar1.at("engine.memo_hits_group"),
              vector1.at("engine.memo_hits_group"));
    EXPECT_EQ(scalar1.at("engine.memo_hits_orace"),
              vector1.at("engine.memo_hits_orace"));
}

/// @}
/**
 * @name Convergence-pruning correctness
 *
 * The early-exit (a continuation whose full state re-converges with
 * the golden trajectory is settled non-ACE immediately) is exact; these
 * tests pin both directions — a fault that provably re-converges, one
 * that stays architecturally latent for many cycles before corrupting
 * late output — and fuzz the pruned verdict against an unpruned
 * reference continuation.
 */
/// @{

TEST(VectorConvergence, SelfClearingFaultIsNeverAce)
{
    // Flop A reloads constant 0 every edge and its cone is squashed by
    // an AND-0 before reaching anything observable: any flip of A is
    // gone from the full sequential state one edge later, so the
    // convergence early-exit settles it as None — in both paths.
    Netlist nl;
    ModuleBuilder b(nl);
    b.pushScope("sc");
    const NetId zero = b.constant(false);
    const NetId one = b.constant(true);
    const NetId qa = b.dff(zero, false, "a");
    const NetId masked = b.and2(qa, zero);
    const NetId qb = b.dff(masked, false, "b");
    const CellId sink = nl.addBehavioral(
        "sc/sink", std::make_shared<TraceSinkModel>(1), {{qb, one}}, {});
    b.popScope();
    nl.finalize();
    TraceWorkload workload(sink, 12);

    VulnerabilityEngine engine(nl, CellLibrary::defaultLibrary(),
                               workload);
    Structure structure;
    structure.name = "a";
    structure.flops = {nl.flopStateElem(nl.net(qa).driver)};

    SamplingConfig config;
    config.maxInjectionCycles = 4;
    config.threads = 1;

    engine.setVectorMode(false);
    const SavfResult scalar = engine.savf(structure, config);
    engine.setVectorMode(true);
    const SavfResult vec = engine.savf(structure, config);

    EXPECT_GT(scalar.injections, 0u);
    EXPECT_EQ(scalar.aceInjections, 0u);
    EXPECT_DOUBLE_EQ(scalar.savf, 0.0);
    EXPECT_EQ(savfJson("sc", "a", scalar), savfJson("sc", "a", vec));

    // Same through the edge-forcing mechanism.
    const CycleSimulator::Force wrong[] = {
        {nl.flopStateElem(nl.net(qa).driver), true}};
    EXPECT_EQ(engine.groupVerdict(wrong, 3), FailureKind::None);
}

TEST(VectorConvergence, LatentFaultCorruptingLateOutputIsSdc)
{
    // A 4-deep shift register fed constant 0, observed only at the
    // tail: a head flip stays architecturally latent for 4 cycles (the
    // state never re-converges, so early-exit must not fire) and then
    // corrupts the output — silent late SDC, identical in both paths.
    Netlist nl;
    ModuleBuilder b(nl);
    b.pushScope("sh");
    const NetId zero = b.constant(false);
    const NetId one = b.constant(true);
    NetId stage = b.dff(zero, false, "s0");
    const NetId head = stage;
    for (int i = 1; i < 4; ++i)
        stage = b.dff(stage, false, "s" + std::to_string(i));
    const CellId sink = nl.addBehavioral(
        "sh/sink", std::make_shared<TraceSinkModel>(1), {{stage, one}},
        {});
    b.popScope();
    nl.finalize();
    TraceWorkload workload(sink, 16);

    VulnerabilityEngine engine(nl, CellLibrary::defaultLibrary(),
                               workload);
    const StateElemId head_elem = nl.flopStateElem(nl.net(head).driver);
    Structure structure;
    structure.name = "head";
    structure.flops = {head_elem};

    SamplingConfig config;
    config.maxInjectionCycles = 3;
    config.threads = 1;

    engine.setVectorMode(false);
    const SavfResult scalar = engine.savf(structure, config);
    engine.setVectorMode(true);
    const SavfResult vec = engine.savf(structure, config);

    EXPECT_GT(scalar.aceInjections, 0u);
    EXPECT_EQ(scalar.sdc, scalar.aceInjections);
    EXPECT_EQ(savfJson("sh", "head", scalar),
              savfJson("sh", "head", vec));

    // A forced wrong head value early in the run is a guaranteed
    // (delayed) SDC: the trace prefix matches for 4 more cycles first.
    const CycleSimulator::Force wrong[] = {{head_elem, true}};
    EXPECT_EQ(engine.groupVerdict(wrong, 2), FailureKind::Sdc);
}

class ConvergenceFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ConvergenceFuzz, EarlyExitNeverFlipsAVerdict)
{
    // Unpruned reference: run the faulty continuation to workload
    // completion with no convergence check and classify by comparing
    // the final trace — the definitionally correct verdict. The
    // engine's pruned continuation must always agree.
    const auto circuit = test::makeRandomCircuit(GetParam() + 600, 8,
                                                 50, 12);
    const Netlist &nl = *circuit.netlist;
    VulnerabilityEngine engine(nl, CellLibrary::defaultLibrary(),
                               *circuit.workload);
    const uint64_t golden_cycles = engine.goldenCycles();
    const std::vector<uint32_t> &golden_out = engine.goldenOutput();
    const auto &flops = circuit.flops;

    Rng rng(GetParam() * 65537 + 11);
    for (int trial = 0; trial < 16; ++trial) {
        const uint64_t cycle = 1 + rng.below(golden_cycles - 1);
        std::vector<CycleSimulator::Force> forces;
        forces.push_back(
            {flops[rng.below(flops.size())], rng.chance(0.5)});
        if (rng.chance(0.5)) {
            forces.push_back(
                {flops[rng.below(flops.size())], rng.chance(0.5)});
        }

        CycleSimulator sim(nl);
        for (uint64_t i = 0; i < cycle; ++i)
            sim.step();
        sim.step(forces);
        while (!circuit.workload->done(sim))
            sim.step();
        const FailureKind reference =
            circuit.workload->outputTrace(sim) == golden_out
                ? FailureKind::None
                : FailureKind::Sdc;

        EXPECT_EQ(engine.groupVerdict(forces, cycle), reference)
            << "seed " << GetParam() << " cycle " << cycle;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvergenceFuzz,
                         ::testing::Range<uint64_t>(1, 7));

/// @}

TEST(Engine, GoldenFactsOnIbexMini)
{
    const BenchmarkProgram &program = beebsBenchmark("libstrstr");
    IbexMini soc({}, assemble(program.source));
    SocWorkload workload(soc);
    VulnerabilityEngine engine(soc.netlist(),
                               CellLibrary::defaultLibrary(), workload);
    EXPECT_GT(engine.clockPeriod(), 0.0);
    EXPECT_GT(engine.goldenCycles(), 100u);
    EXPECT_EQ(engine.goldenOutput(), program.expectedOutput);
}

} // namespace
} // namespace davf
