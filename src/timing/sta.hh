/**
 * @file
 * Static timing analysis (the paper's OpenSTA role).
 *
 * Provides everything the DelayAVF methodology needs from timing:
 *
 *  - per-wire propagation delays from the technology library's
 *    driver-strength + capacitive-load model (§IV-A);
 *  - settled arrival times per net, and the design-wide longest
 *    register-to-register path, which sets the clock period ("the clock
 *    period of the Ibex core is set to equal the length of the longest
 *    path in the entire design", §VI-A);
 *  - the longest complete path *through* each wire (Fig. 6 path-length
 *    distributions);
 *  - the statically reachable set of an SDF (Definition 2): the state
 *    elements terminating at least one path through the delayed wire whose
 *    length exceeds the clock period once the extra delay d is added.
 *
 * Timing is modeled as in the paper's case study: pre-layout, data
 * independent, wireDelay = base + slope(driver) * fanout, cell pin-to-pin
 * delay = intrinsic(cell type), sequential outputs valid clkToQ after the
 * clock edge.
 */

#ifndef DAVF_TIMING_STA_HH
#define DAVF_TIMING_STA_HH

#include <vector>

#include "netlist/netlist.hh"

namespace davf {

/** Per-wire and per-cell delays derived from the cell library. */
class DelayModel
{
  public:
    DelayModel(const Netlist &netlist, const CellLibrary &library);

    /** Propagation delay of wire @p id (ps). */
    double wireDelay(WireId id) const { return wireDelays[id]; }

    /** Pin-to-pin intrinsic delay of cell @p id (ps). */
    double cellDelay(CellId id) const { return cellDelays[id]; }

    /** Clock-to-Q delay of sequential outputs (ps). */
    double clkToQ() const { return clkToQDelay; }

    /**
     * Permanently add @p extra to one wire's delay. Used on *copies* of
     * the nominal model, e.g. to brute-force-simulate a fault cycle with
     * the SDF baked into the timing (see
     * VulnerabilityEngine::delayAceBruteForce).
     */
    void addExtraWireDelay(WireId id, double extra)
    {
        wireDelays[id] += extra;
    }

    const Netlist &netlist() const { return *nl; }

  private:
    const Netlist *nl;
    std::vector<double> wireDelays;
    std::vector<double> cellDelays;
    double clkToQDelay;
};

/** Static timing analysis over a finalized netlist. */
class Sta
{
  public:
    /** Runs the full-design arrival analysis on construction. */
    explicit Sta(const DelayModel &delays);

    /** Settled (worst-case) transition time of a net within a cycle. */
    double arrival(NetId id) const { return arrivals[id]; }

    /**
     * Longest register-to-register path in the design: the minimum clock
     * period at which the fault-free design meets timing.
     */
    double maxPath() const { return maxPathDelay; }

    /**
     * Longest complete path through wire @p id, from a cycle-start source
     * to a sampled endpoint (Fig. 6 distributions). Wires that reach no
     * endpoint (e.g. dangling) report 0.
     */
    double longestPathThrough(WireId id) const;

    /**
     * Statically reachable set (Definition 2): state elements terminating
     * a path through wire @p id whose length exceeds @p period when the
     * wire's delay is increased by @p extra_delay. Cone-restricted DP;
     * complexity is proportional to the wire's fanout cone.
     *
     * @param id           the faulted wire.
     * @param extra_delay  the SDF duration d (ps).
     * @param period       the clock period (ps).
     * @param reachable    output: the statically reachable set.
     */
    void staticallyReachable(WireId id, double extra_delay, double period,
                             std::vector<StateElemId> &reachable) const;

    const DelayModel &delayModel() const { return *delays; }

  private:
    /** Longest combinational delay from a net transition to any sampled
     *  endpoint pin (0 when the net directly feeds an endpoint). */
    double downstream(NetId id) const { return downstreams[id]; }

    const DelayModel *delays;
    const Netlist *nl;
    std::vector<double> arrivals;     ///< Per net.
    std::vector<double> downstreams;  ///< Per net.
    double maxPathDelay = 0.0;

    /** Scratch for staticallyReachable (per-instance; not thread-safe,
     *  use one Sta clone per thread or external locking). */
    mutable std::vector<double> coneLatest;   ///< Per cell output latest.
    mutable std::vector<uint32_t> coneMark;   ///< Visit stamps per cell.
    mutable uint32_t coneStamp = 0;
};

} // namespace davf

#endif // DAVF_TIMING_STA_HH
