/**
 * @file
 * The unit of work shipped to a process-isolated campaign worker.
 *
 * A shard names one independently computable slice of a campaign cell:
 * either a single DelayAVF injection cycle (optionally restricted to a
 * sampled-wire index range — the supervisor's crash bisection probes
 * use this) or a whole sAVF evaluation. The spec carries the effective
 * engine sampling knobs verbatim, so a worker reproduces the
 * supervisor's configuration exactly instead of re-deriving it;
 * operational fields (threads, stop flag, paths) are deliberately not
 * part of a shard.
 *
 * Serialization is the same space-separated text-token format as the
 * campaign journal, with doubles as C hexfloats for bit-exactness.
 */

#ifndef DAVF_CORE_SHARD_HH
#define DAVF_CORE_SHARD_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/vulnerability.hh"
#include "util/error.hh"

namespace davf {

/** One unit of process-isolated campaign work (see file comment). */
struct ShardSpec
{
    enum class Kind : uint8_t {
        Cycle, ///< One DelayAVF injection cycle of one (structure, d).
        Savf,  ///< A whole particle-strike sAVF evaluation.
    };

    Kind kind = Kind::Cycle;
    std::string structure;

    /** @name Cycle shards only */
    /// @{
    double delayFraction = 0.0;
    uint64_t cycle = 0;

    /** Half-open sampled-wire index range; the default covers all. */
    size_t wireBegin = 0;
    size_t wireEnd = std::numeric_limits<size_t>::max();

    /** Sampled-wire indices to skip as quarantined (tallied, not run). */
    std::vector<size_t> quarantined;
    /// @}

    /** Engine sampling knobs (threads/stopFlag are not serialized). */
    SamplingConfig sampling;
};

/** One-line text form of @p spec. */
std::string serializeShardSpec(const ShardSpec &spec);

/** Parse a serializeShardSpec() line; malformed input is an Err. */
Result<ShardSpec> parseShardSpec(const std::string &text);

} // namespace davf

#endif // DAVF_CORE_SHARD_HH
