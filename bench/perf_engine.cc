/**
 * @file
 * google-benchmark microbenchmarks for the analysis engine itself:
 * cycle-simulation throughput on the full core, single-cycle
 * timing-aware simulation, per-wire cone re-simulation, STA
 * statically-reachable queries, and snapshot/restore — the primitives
 * whose costs the two-step method (§V-B/V-C) is designed around — plus
 * the end-to-end GroupACE sweep comparison between the scalar and the
 * bit-parallel continuation paths (docs/PERFORMANCE.md).
 *
 * When the DAVF_BENCH_JSON environment variable names a file and both
 * BM_GroupAceAluSweep variants ran (e.g.
 * `--benchmark_filter=GroupAceAluSweep`), the measured speedup and the
 * sweep's davf-report/v1 rows are written there as one JSON object —
 * the BENCH_groupace.json artifact tools/ci_check.sh tracks. The two
 * sweeps must serialize to identical bytes; a mismatch fails the run.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "isa/assembler.hh"
#include "isa/benchmarks.hh"
#include "soc/ibex_mini.hh"
#include "soc/soc_workload.hh"
#include "bench/common.hh"
#include "core/report.hh"
#include "core/vulnerability.hh"
#include "util/atomic_file.hh"

using namespace davf;

namespace {

/** Shared fixture: the core running libstrstr. */
struct Rig
{
    IbexMini soc;
    DelayModel delays;
    Sta sta;
    TimedSimulator tsim;

    Rig()
        : soc({}, assemble(beebsBenchmark("libstrstr").source)),
          delays(soc.netlist(), CellLibrary::defaultLibrary()),
          sta(delays), tsim(delays)
    {}

    static Rig &
    instance()
    {
        static Rig rig;
        return rig;
    }
};

void
BM_CycleSimStep(benchmark::State &state)
{
    Rig &rig = Rig::instance();
    CycleSimulator sim(rig.soc.netlist());
    for (auto _ : state) {
        sim.step();
        if (sim.cycle() > 1200)
            sim.reset();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(
                                rig.soc.netlist().numCells()));
}
BENCHMARK(BM_CycleSimStep);

void
BM_TimedSimFullCycle(benchmark::State &state)
{
    Rig &rig = Rig::instance();
    CycleSimulator sim(rig.soc.netlist());
    for (int i = 0; i < 500; ++i)
        sim.step();
    const auto pre = sim.netValues_();
    sim.step();
    const auto post = sim.netValues_();
    const double period = rig.sta.maxPath();
    CycleWaveforms wf;
    for (auto _ : state)
        rig.tsim.simulateCycle(pre, post, period, wf);
}
BENCHMARK(BM_TimedSimFullCycle);

void
BM_ConeResim(benchmark::State &state)
{
    Rig &rig = Rig::instance();
    CycleSimulator sim(rig.soc.netlist());
    for (int i = 0; i < 500; ++i)
        sim.step();
    const auto pre = sim.netValues_();
    sim.step();
    const auto post = sim.netValues_();
    const double period = rig.sta.maxPath();
    CycleWaveforms wf;
    rig.tsim.simulateCycle(pre, post, period, wf);

    const auto &wires = rig.soc.structures().find("ALU")->wires;
    std::vector<LatchedPin> latched;
    size_t index = 0;
    for (auto _ : state) {
        rig.tsim.simulateCone(wf, wires[index % wires.size()],
                              0.5 * period, period, latched);
        ++index;
    }
}
BENCHMARK(BM_ConeResim);

void
BM_StaticallyReachable(benchmark::State &state)
{
    Rig &rig = Rig::instance();
    const auto &wires = rig.soc.structures().find("ALU")->wires;
    const double period = rig.sta.maxPath();
    std::vector<StateElemId> reachable;
    size_t index = 0;
    for (auto _ : state) {
        rig.sta.staticallyReachable(wires[index % wires.size()],
                                    0.5 * period, period, reachable);
        ++index;
    }
}
BENCHMARK(BM_StaticallyReachable);

void
BM_SnapshotRestore(benchmark::State &state)
{
    Rig &rig = Rig::instance();
    CycleSimulator sim(rig.soc.netlist());
    for (int i = 0; i < 100; ++i)
        sim.step();
    const auto snap = sim.snapshot();
    for (auto _ : state) {
        sim.restore(snap);
        sim.step();
    }
}
BENCHMARK(BM_SnapshotRestore);

void
BM_SoCBuild(benchmark::State &state)
{
    const auto image = assemble(beebsBenchmark("libstrstr").source);
    for (auto _ : state) {
        IbexMini soc({}, image);
        benchmark::DoNotOptimize(soc.netlist().numCells());
    }
}
BENCHMARK(BM_SoCBuild);

/** Fixture for the end-to-end sweep: core + engine, built once. */
struct EngineRig
{
    IbexMini soc;
    SocWorkload workload;
    VulnerabilityEngine engine;

    EngineRig()
        : soc({}, assemble(beebsBenchmark("popcount").source)),
          workload(soc),
          engine(soc.netlist(), CellLibrary::defaultLibrary(), workload)
    {}

    static EngineRig &
    instance()
    {
        static EngineRig rig;
        return rig;
    }
};

/** Best time and report bytes of each sweep flavor ([0]=scalar). */
struct SweepCapture
{
    double seconds = 0.0;
    std::string json;
};
SweepCapture g_sweep[2];

/**
 * The paper's dominant cost, end to end: a full ALU DelayAVF sweep over
 * the case study's nine SDF durations on popcount, with the GroupACE
 * continuations on the scalar path (Arg 0) or batched onto the 64-lane
 * vector path (Arg 1). Both must produce byte-identical reports; the
 * ratio of their times is the headline speedup in BENCH_groupace.json.
 */
void
BM_GroupAceAluSweep(benchmark::State &state)
{
    const bool vectorize = state.range(0) != 0;
    EngineRig &rig = EngineRig::instance();
    const Structure *alu = rig.soc.structures().find("ALU");
    const SamplingConfig config = bench::BenchLab::sampling();
    rig.engine.setVectorMode(vectorize);

    for (auto _ : state) {
        std::vector<ReportRow> rows;
        const auto start = std::chrono::steady_clock::now();
        for (double d : bench::kDelayFractions) {
            ReportRow row;
            row.benchmark = "popcount";
            row.structure = "ALU";
            row.delayFraction = d;
            row.davf = rig.engine.delayAvf(*alu, d, config);
            rows.push_back(std::move(row));
        }
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        SweepCapture &capture = g_sweep[vectorize ? 1 : 0];
        if (capture.seconds == 0.0 || seconds < capture.seconds)
            capture.seconds = seconds;
        capture.json = reportJson(rows);
    }

    state.counters["delays"] =
        static_cast<double>(bench::kDelayFractions.size());
    if (g_sweep[0].seconds > 0.0 && g_sweep[1].seconds > 0.0)
        state.counters["speedup"] =
            g_sweep[0].seconds / g_sweep[1].seconds;
}
BENCHMARK(BM_GroupAceAluSweep)
    ->Arg(1)
    ->Arg(0)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

/** Best time and report bytes of each tsim flavor ([0]=scalar). */
SweepCapture g_tsim[2];

/**
 * The Step-1 cost, end to end: the same nine-duration ALU DelayAVF
 * sweep on popcount, with faulted-cone re-simulation either scalar and
 * sweep-blind (Arg 0) or batched onto the lane-parallel timed
 * simulator with cross-delay reuse engaged (Arg 1). The GroupACE
 * continuations stay on the vector path in both flavors so the ratio
 * isolates the timing-aware step. Both must produce byte-identical
 * reports; the ratio of their times is the headline speedup in
 * BENCH_tsim.json.
 */
void
BM_TsimAluSweep(benchmark::State &state)
{
    const bool vector_tsim = state.range(0) != 0;
    EngineRig &rig = EngineRig::instance();
    const Structure *alu = rig.soc.structures().find("ALU");
    const SamplingConfig config = bench::BenchLab::sampling();
    rig.engine.setVectorMode(true);
    rig.engine.setTsimVectorMode(vector_tsim, vector_tsim ? 64 : 1);
    const std::vector<double> fractions(bench::kDelayFractions.begin(),
                                        bench::kDelayFractions.end());

    for (auto _ : state) {
        std::vector<ReportRow> rows;
        const auto start = std::chrono::steady_clock::now();
        if (vector_tsim)
            rig.engine.beginDelaySweep(fractions);
        for (double d : fractions) {
            ReportRow row;
            row.benchmark = "popcount";
            row.structure = "ALU";
            row.delayFraction = d;
            row.davf = rig.engine.delayAvf(*alu, d, config);
            rows.push_back(std::move(row));
        }
        if (vector_tsim)
            rig.engine.endDelaySweep();
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        SweepCapture &capture = g_tsim[vector_tsim ? 1 : 0];
        if (capture.seconds == 0.0 || seconds < capture.seconds)
            capture.seconds = seconds;
        capture.json = reportJson(rows);
    }

    rig.engine.setTsimVectorMode(true, 64);
    state.counters["delays"] = static_cast<double>(fractions.size());
    if (g_tsim[0].seconds > 0.0 && g_tsim[1].seconds > 0.0)
        state.counters["speedup"] =
            g_tsim[0].seconds / g_tsim[1].seconds;
}
BENCHMARK(BM_TsimAluSweep)
    ->Arg(1)
    ->Arg(0)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

/**
 * Write the DAVF_BENCH_JSON artifact once both sweep flavors ran.
 * Returns false (failing the binary) if their reports differ by even
 * one byte — the vector path is only legal while bit-identical.
 */
bool
writeGroupAceArtifact()
{
    if (g_sweep[0].json.empty() || g_sweep[1].json.empty())
        return true; // Sweeps filtered out: nothing to record.
    const bool identical = g_sweep[0].json == g_sweep[1].json;
    if (!identical) {
        std::fprintf(stderr,
                     "GroupACE sweep: vector report differs from "
                     "scalar report (bit-identity violated)\n");
    }
    const double speedup = g_sweep[1].seconds > 0.0
        ? g_sweep[0].seconds / g_sweep[1].seconds
        : 0.0;
    std::fprintf(stderr,
                 "GroupACE ALU sweep: scalar %.2fs, vector %.2fs, "
                 "speedup %.2fx, reports %s\n",
                 g_sweep[0].seconds, g_sweep[1].seconds, speedup,
                 identical ? "bit-identical" : "DIFFER");

    const char *path = std::getenv("DAVF_BENCH_JSON");
    if (path != nullptr && *path != '\0') {
        char head[512];
        std::snprintf(head, sizeof(head),
                      "{\"schema\":\"davf-bench-groupace/v1\","
                      "\"benchmark\":\"popcount\","
                      "\"structure\":\"ALU\","
                      "\"delays\":%zu,"
                      "\"seconds_scalar\":%.3f,"
                      "\"seconds_vector\":%.3f,"
                      "\"speedup\":%.3f,"
                      "\"bit_identical\":%s,"
                      "\"report\":",
                      bench::kDelayFractions.size(), g_sweep[0].seconds,
                      g_sweep[1].seconds, speedup,
                      identical ? "true" : "false");
        try {
            writeFileAtomic(path,
                            std::string(head) + g_sweep[1].json + "}\n");
        } catch (const DavfError &error) {
            std::fprintf(stderr, "DAVF_BENCH_JSON write failed: %s\n",
                         error.what());
            return false;
        }
    }
    return identical;
}

/**
 * Write the DAVF_BENCH_TSIM_JSON artifact once both tsim sweep flavors
 * ran. Returns false (failing the binary) if their reports differ by
 * even one byte — lane batching and cross-delay reuse are only legal
 * while bit-identical.
 */
bool
writeTsimArtifact()
{
    if (g_tsim[0].json.empty() || g_tsim[1].json.empty())
        return true; // Sweeps filtered out: nothing to record.
    const bool identical = g_tsim[0].json == g_tsim[1].json;
    if (!identical) {
        std::fprintf(stderr,
                     "tsim sweep: lane-parallel report differs from "
                     "scalar report (bit-identity violated)\n");
    }
    const double speedup = g_tsim[1].seconds > 0.0
        ? g_tsim[0].seconds / g_tsim[1].seconds
        : 0.0;
    std::fprintf(stderr,
                 "tsim ALU sweep: scalar %.2fs, lane-parallel %.2fs, "
                 "speedup %.2fx, reports %s\n",
                 g_tsim[0].seconds, g_tsim[1].seconds, speedup,
                 identical ? "bit-identical" : "DIFFER");

    const char *path = std::getenv("DAVF_BENCH_TSIM_JSON");
    if (path != nullptr && *path != '\0') {
        char head[512];
        std::snprintf(head, sizeof(head),
                      "{\"schema\":\"davf-bench-tsim/v1\","
                      "\"benchmark\":\"popcount\","
                      "\"structure\":\"ALU\","
                      "\"delays\":%zu,"
                      "\"seconds_scalar\":%.3f,"
                      "\"seconds_vector\":%.3f,"
                      "\"speedup\":%.3f,"
                      "\"bit_identical\":%s,"
                      "\"report\":",
                      bench::kDelayFractions.size(), g_tsim[0].seconds,
                      g_tsim[1].seconds, speedup,
                      identical ? "true" : "false");
        try {
            writeFileAtomic(path,
                            std::string(head) + g_tsim[1].json + "}\n");
        } catch (const DavfError &error) {
            std::fprintf(stderr,
                         "DAVF_BENCH_TSIM_JSON write failed: %s\n",
                         error.what());
            return false;
        }
    }
    return identical;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    const bool groupace_ok = writeGroupAceArtifact();
    const bool tsim_ok = writeTsimArtifact();
    return (groupace_ok && tsim_ok) ? 0 : 1;
}
