/**
 * @file
 * Offline integrity checking and compaction for the *indexed* result
 * store (store/index_store.hh), behind the `davf_store` CLI. The
 * legacy per-file tier keeps its own fsck (service/store_fsck.hh);
 * the CLI dispatches on IndexStore::present().
 *
 * fsckIndexStore() classifies, without mutating anything:
 *
 *  - **torn split**   a leftover `split.journal`: the process died
 *                     between journaling a bucket split and erasing
 *                     the journal — the index may be half-split;
 *  - **stale index**  `index.davf` fails to load (bad header/page
 *                     checksum, directory holes/overlap, geometry);
 *  - **stale entry**  an index slot whose offset does not hold a
 *                     valid frame for its hash (garble damage);
 *  - **unindexed**    a valid segment frame the index cannot reach —
 *                     normally the un-checkpointed tail a reopen
 *                     replays;
 *  - **garbled frame** a frame whose body checksum fails;
 *  - **torn tail**    unframeable bytes reaching segment EOF (a
 *                     half-written append);
 *  - **superseded**   older frames shadowed by a newer write for the
 *                     same hash — not damage, just reclaimable space;
 *  - **legacy strays** `r-*.rec` files alongside the index (written
 *                     by a locked-out fallback ResultStore; absorbed
 *                     by migrate/compact, still served via fallback).
 *
 * With `repair` set, damage evidence is quarantined into
 * `<dir>/quarantine/` — never deleted — and the index is rebuilt from
 * a full segment scan (the data file is the source of truth; the
 * index is derived and safe to regenerate). A repaired store passes a
 * subsequent fsck; repair is idempotent and guarded by the
 * `fsck.repair` crash point like the legacy tier's.
 *
 * compactIndexStoreDir() is repair plus space recovery: absorb legacy
 * strays, quarantine damage, then rewrite the segment file keeping
 * only live records (IndexStore::compact, `compact.rewrite` crash
 * point) and rebuild the index over it.
 */

#ifndef DAVF_STORE_INDEX_FSCK_HH
#define DAVF_STORE_INDEX_FSCK_HH

#include <cstdint>
#include <string>
#include <vector>

namespace davf::store {

/** What an index-store fsck or compact pass found (and did). */
struct IndexFsckReport
{
    uint64_t validFrames = 0;   ///< Valid + reachable via the index.
    uint64_t superseded = 0;    ///< Valid but shadowed by newer frames.
    uint64_t garbledFrames = 0; ///< Body checksum failures.
    uint64_t tornTailBytes = 0; ///< Unframeable bytes at segment EOF.
    bool tornSplit = false;     ///< Leftover split journal.
    bool staleIndex = false;    ///< index.davf failed to load.
    uint64_t staleEntries = 0;  ///< Slots pointing at non-frames.
    uint64_t unindexed = 0;     ///< Valid frames the index misses.
    uint64_t legacyStrays = 0;  ///< r-*.rec files awaiting absorption.
    uint64_t foreign = 0;       ///< Everything else (counted, ignored).

    uint64_t quarantined = 0;   ///< Evidence files written by repair.
    bool rebuilt = false;       ///< Repair rebuilt the index.
    uint64_t migrated = 0;      ///< Strays absorbed (compact).
    uint64_t reclaimedBytes = 0; ///< Segment bytes freed (compact).

    /** Human-readable findings, one line each, deterministic order. */
    std::vector<std::string> notes;

    /**
     * Nothing needs repair. Legacy strays and superseded frames do
     * not block cleanliness: both are valid, reachable data (fallback
     * lookup / index respectively) that only compaction tidies.
     */
    bool clean() const;
};

struct IndexFsckOptions
{
    bool repair = false;
};

/**
 * Check (and with options.repair, repair) the indexed store at
 * @p dir. Classification opens nothing for writing; repair takes the
 * index lock (throws DavfError{Io} if a live server holds it).
 */
IndexFsckReport fsckIndexStore(const std::string &dir,
                               const IndexFsckOptions &options = {});

/**
 * Repair @p dir and recover space: absorb legacy strays, quarantine
 * damage, rewrite the segment file to live records only, rebuild the
 * index. Crash-safe and idempotent. Throws DavfError{Io} if the dir
 * is unusable or locked by a live server.
 */
IndexFsckReport compactIndexStoreDir(const std::string &dir);

} // namespace davf::store

#endif // DAVF_STORE_INDEX_FSCK_HH
