#include "cell.hh"

namespace davf {

std::string_view
cellTypeName(CellType type)
{
    switch (type) {
      case CellType::Input:  return "INPUT";
      case CellType::Output: return "OUTPUT";
      case CellType::Const0: return "CONST0";
      case CellType::Const1: return "CONST1";
      case CellType::Buf:    return "BUF";
      case CellType::Inv:    return "INV";
      case CellType::And2:   return "AND2";
      case CellType::Or2:    return "OR2";
      case CellType::Nand2:  return "NAND2";
      case CellType::Nor2:   return "NOR2";
      case CellType::Xor2:   return "XOR2";
      case CellType::Xnor2:  return "XNOR2";
      case CellType::Mux2:   return "MUX2";
      case CellType::Dff:    return "DFF";
      case CellType::Dffe:   return "DFFE";
      case CellType::Behav:  return "BEHAV";
    }
    return "?";
}

CellLibrary
CellLibrary::defaultLibrary()
{
    CellLibrary lib;
    // NanGate 45 nm-like typical-corner magnitudes, in picoseconds.
    lib.timing(CellType::Buf)   = {14.0, 3.0};
    lib.timing(CellType::Inv)   = { 8.0, 4.0};
    lib.timing(CellType::And2)  = {16.0, 4.0};
    lib.timing(CellType::Or2)   = {18.0, 5.0};
    lib.timing(CellType::Nand2) = {10.0, 4.0};
    lib.timing(CellType::Nor2)  = {12.0, 5.0};
    lib.timing(CellType::Xor2)  = {24.0, 6.0};
    lib.timing(CellType::Xnor2) = {24.0, 6.0};
    lib.timing(CellType::Mux2)  = {26.0, 5.0};
    // Sequential/IO cells have no combinational pin-to-pin arc; their
    // outputs appear clkToQ after the edge. Their loadSlope still shapes
    // the delay of wires they drive.
    lib.timing(CellType::Dff)    = {0.0, 4.0};
    lib.timing(CellType::Dffe)   = {0.0, 4.0};
    lib.timing(CellType::Behav)  = {0.0, 4.0};
    lib.timing(CellType::Input)  = {0.0, 3.0};
    lib.timing(CellType::Const0) = {0.0, 0.0};
    lib.timing(CellType::Const1) = {0.0, 0.0};
    return lib;
}

CellLibrary
CellLibrary::scaled(double gate_factor, double wire_factor) const
{
    CellLibrary lib = *this;
    for (auto &timing : lib.timings) {
        timing.intrinsic *= gate_factor;
        timing.loadSlope *= wire_factor;
    }
    lib.wireBase *= wire_factor;
    lib.clkToQ *= gate_factor;
    return lib;
}

CellLibrary
CellLibrary::slowCorner()
{
    return defaultLibrary().scaled(1.3, 1.3);
}

CellLibrary
CellLibrary::wireDominatedCorner()
{
    return defaultLibrary().scaled(1.0, 2.5);
}

} // namespace davf
