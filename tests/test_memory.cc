/**
 * @file
 * Unit tests for the behavioral memory model: synchronous port
 * semantics, byte enables, MMIO output/halt, the incremental content
 * hash, snapshots, and clone independence.
 */

#include <gtest/gtest.h>

#include "src/soc/memory.hh"

namespace davf {
namespace {

/** Drive helper: builds the input pin vector for one edge. */
class MemoryRig : public ::testing::Test
{
  protected:
    static constexpr unsigned kLog2 = 6; // 64 words.
    MemoryModel mem{kLog2, {0x11111111, 0x22222222, 0x33333333}};
    std::vector<bool> outs;

    void
    SetUp() override
    {
        outs.resize(mem.numOutputs());
        mem.reset(outs);
    }

    void
    edge(uint32_t iaddr, uint32_t daddr_words, uint32_t dwdata,
         bool dwe, uint32_t dben = 0xf)
    {
        std::vector<bool> ins(mem.numInputs(), false);
        size_t pin = 0;
        auto put = [&](uint32_t value, unsigned width) {
            for (unsigned i = 0; i < width; ++i, ++pin)
                ins[pin] = (value >> i) & 1;
        };
        put(iaddr, mem.iaddrBits());
        put(daddr_words, mem.daddrBits());
        put(dwdata, 32);
        put(dwe ? 1 : 0, 1);
        put(dben, 4);
        mem.clockEdge(ins, outs);
    }

    uint32_t
    outWord(unsigned base)
    {
        uint32_t value = 0;
        for (unsigned i = 0; i < 32; ++i)
            value |= uint32_t{outs[base + i]} << i;
        return value;
    }

    uint32_t idata() { return outWord(0); }
    uint32_t drdata() { return outWord(32); }
    bool haltedPin() { return outs[64]; }
};

TEST_F(MemoryRig, ImageLoadsAndReads)
{
    edge(1, 2, 0, false);
    EXPECT_EQ(idata(), 0x22222222u);
    EXPECT_EQ(drdata(), 0x33333333u);
    EXPECT_EQ(mem.word(0), 0x11111111u);
}

TEST_F(MemoryRig, WordWrite)
{
    edge(0, 5, 0xdeadbeef, true);
    EXPECT_EQ(mem.word(20), 0xdeadbeefu);
    edge(0, 5, 0, false);
    EXPECT_EQ(drdata(), 0xdeadbeefu);
}

TEST_F(MemoryRig, ByteEnables)
{
    edge(0, 1, 0xaabbccdd, true, 0b0101);
    // Bytes 0 and 2 replaced; 1 and 3 kept from 0x22222222.
    EXPECT_EQ(mem.word(4), 0x22bb22ddu);
}

TEST_F(MemoryRig, ReadBeforeWriteSemantics)
{
    // drdata reflects the pre-write contents on a simultaneous access.
    edge(0, 2, 0x55555555, true);
    EXPECT_EQ(drdata(), 0x33333333u);
    edge(0, 2, 0, false);
    EXPECT_EQ(drdata(), 0x55555555u);
}

TEST_F(MemoryRig, MmioOutputAndHalt)
{
    const uint32_t mmio = 1u << kLog2; // MMIO page bit.
    edge(0, mmio + 0, 42, true);
    edge(0, mmio + 0, 43, true);
    EXPECT_EQ(mem.outputTrace(), (std::vector<uint32_t>{42, 43}));
    EXPECT_FALSE(mem.halted());
    edge(0, mmio + 1, 0, true);
    EXPECT_TRUE(mem.halted());
    EXPECT_TRUE(haltedPin());
    // MMIO reads return zero.
    edge(0, mmio + 0, 0, false);
    EXPECT_EQ(drdata(), 0u);
}

TEST_F(MemoryRig, ContentHashTracksWrites)
{
    const uint64_t initial = mem.contentHash();
    edge(0, 3, 0x12345678, true);
    EXPECT_NE(mem.contentHash(), initial);
    edge(0, 3, 0, true); // Restore the original zero word.
    EXPECT_EQ(mem.contentHash(), initial);
}

TEST_F(MemoryRig, SnapshotRestoreRoundTrip)
{
    edge(0, 7, 0xcafef00d, true);
    const uint32_t mmio = 1u << kLog2;
    edge(0, mmio, 7, true);
    const auto snap = mem.snapshot();
    const uint64_t hash = mem.contentHash();

    edge(0, 7, 0, true);
    edge(0, mmio + 1, 0, true);
    EXPECT_TRUE(mem.halted());

    mem.restore(snap);
    EXPECT_EQ(mem.word(28), 0xcafef00du);
    EXPECT_EQ(mem.contentHash(), hash);
    EXPECT_FALSE(mem.halted());
    EXPECT_EQ(mem.outputTrace(), (std::vector<uint32_t>{7}));
}

TEST_F(MemoryRig, ResetRestoresImage)
{
    edge(0, 0, 0xffffffff, true);
    const uint32_t mmio = 1u << kLog2;
    edge(0, mmio, 1, true);
    mem.reset(outs);
    EXPECT_EQ(mem.word(0), 0x11111111u);
    EXPECT_TRUE(mem.outputTrace().empty());
    EXPECT_FALSE(mem.halted());
}

TEST_F(MemoryRig, CloneIsIndependent)
{
    auto clone = std::static_pointer_cast<MemoryModel>(mem.clone());
    edge(0, 9, 0xabcdabcd, true);
    EXPECT_EQ(mem.word(36), 0xabcdabcdu);
    EXPECT_EQ(clone->word(36), 0u);
    EXPECT_NE(mem.contentHash(), clone->contentHash());
}

TEST(MemoryModel, PinCounts)
{
    MemoryModel mem(10, {});
    EXPECT_EQ(mem.iaddrBits(), 10u);
    EXPECT_EQ(mem.daddrBits(), 11u);
    EXPECT_EQ(mem.numInputs(), 10u + 11 + 32 + 1 + 4);
    EXPECT_EQ(mem.numOutputs(), 65u);
}

} // namespace
} // namespace davf
