/**
 * @file
 * Tests for the lane-parallel timed cone simulator (vec_tsim.hh):
 *
 *  - per-gate transport-delay truth tables: every primitive gate type,
 *    faulted on each input pin, latches the same endpoint values in its
 *    vector lane as under scalar simulateCone;
 *  - glitch propagation and exactly-at-edge latching behave identically
 *    per lane (a delayed hazard pulse is captured by the edge exactly
 *    when the scalar simulator captures it);
 *  - randomized batches cross-checked against a full-netlist timed
 *    simulation with the fault baked into the delay model;
 *  - a fuzz loop asserting exact LatchedPin-vector equality (cells,
 *    pins, values, and order) between the vectorized and scalar paths
 *    at varying lane counts, plus the shared golden extraction against
 *    goldenPinValueAtEdge.
 */

#include <gtest/gtest.h>

#include "src/builder/builder.hh"
#include "src/sim/cycle_sim.hh"
#include "src/tsim/timed_sim.hh"
#include "src/tsim/vec_tsim.hh"
#include "tests/helpers.hh"

namespace davf {
namespace {

/** Run an untimed sim to cycle k-1 and build the timed-sim operands. */
struct CyclePrep
{
    std::vector<uint8_t> preEdge;
    std::vector<uint8_t> postEdge;
    std::vector<uint8_t> goldenSampled;
};

CyclePrep
prepCycle(const Netlist &nl, uint64_t cycle)
{
    CycleSimulator sim(nl);
    for (uint64_t i = 0; i + 1 < cycle; ++i)
        sim.step();
    CyclePrep prep;
    prep.preEdge = sim.netValues_();
    sim.step();
    prep.postEdge = sim.netValues_();
    sim.step({}, &prep.goldenSampled);
    return prep;
}

bool
operator==(const LatchedPin &a, const LatchedPin &b)
{
    return a.cell == b.cell && a.pin == b.pin && a.value == b.value;
}

/** Batch @p wires through the vector simulator and require every lane
 *  to equal the scalar simulateCone result exactly — same pins, same
 *  values, same registration order. */
void
expectLanesMatchScalar(const DelayModel &delays,
                       const CycleWaveforms &wf,
                       std::span<const WireId> wires, double d,
                       double period, const char *what)
{
    TimedSimulator tsim(delays);
    VecTimedSimulator vtsim(delays);
    std::vector<std::vector<LatchedPin>> lanes;
    std::vector<LatchedPin> golden;
    vtsim.simulateCones(wf, wires, d, period, lanes, &golden);
    ASSERT_EQ(lanes.size(), wires.size());

    std::vector<LatchedPin> scalar;
    for (size_t i = 0; i < wires.size(); ++i) {
        tsim.simulateCone(wf, wires[i], d, period, scalar);
        ASSERT_EQ(lanes[i].size(), scalar.size())
            << what << ": lane " << i << " wire " << wires[i] << " d "
            << d;
        for (size_t p = 0; p < scalar.size(); ++p) {
            EXPECT_TRUE(lanes[i][p] == scalar[p])
                << what << ": lane " << i << " wire " << wires[i]
                << " d " << d << " entry " << p;
        }
    }

    // The shared lane 0 is the fault-free cycle: every registered
    // endpoint must hold its golden latched value.
    for (const LatchedPin &pin : golden) {
        EXPECT_EQ(pin.value,
                  goldenPinValueAtEdge(delays, wf, pin.cell, pin.pin,
                                       period))
            << what << ": golden lane, cell " << pin.cell << " pin "
            << pin.pin;
    }
}

/**
 * One instance of every primitive gate type, inputs drawn from a 3-bit
 * counter (bits toggling at periods 2/4/8), each output latched by its
 * own flop. Faulting each gate-input wire exercises the word-parallel
 * truth table of that gate in a dedicated lane.
 */
TEST(VecTsim, PerGateTruthTablesAcrossLanes)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId c0_d = b.freshNet("c0_d");
    const NetId c0 = b.dff(c0_d, false, "c0");
    b.connect(c0_d, b.inv(c0));
    const NetId c1_d = b.freshNet("c1_d");
    const NetId c1 = b.dff(c1_d, false, "c1");
    b.connect(c1_d, b.xor2(c1, c0));
    const NetId c2_d = b.freshNet("c2_d");
    const NetId c2 = b.dff(c2_d, false, "c2");
    b.connect(c2_d, b.xor2(c2, b.and2(c1, c0)));

    const NetId outs[] = {
        b.buf(c0),          b.inv(c1),          b.and2(c0, c1),
        b.or2(c0, c2),      b.nand2(c1, c2),    b.nor2(c0, c1),
        b.xor2(c0, c2),     b.xnor2(c1, c2),    b.mux(c2, c0, c1),
    };
    int flop = 0;
    for (NetId out : outs)
        b.dff(out, false, "cap" + std::to_string(flop++));
    nl.finalize();

    // Every wire feeding a combinational gate is a fault site.
    std::vector<WireId> sites;
    for (NetId net = 0; net < nl.numNets(); ++net) {
        const Net &n = nl.net(net);
        for (uint32_t s = 0; s < n.sinks.size(); ++s) {
            if (cellIsCombinational(nl.cell(n.sinks[s].cell).type))
                sites.push_back(n.firstWire + s);
        }
    }
    ASSERT_GE(sites.size(), 12u);

    DelayModel delays(nl, CellLibrary::defaultLibrary());
    Sta sta(delays);
    TimedSimulator tsim(delays);
    const double period = sta.maxPath();

    for (uint64_t cycle : {2, 3, 4, 5, 6, 7, 8, 9}) {
        const CyclePrep prep = prepCycle(nl, cycle);
        CycleWaveforms wf;
        tsim.simulateCycle(prep.preEdge, prep.postEdge, period, wf);
        for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
            expectLanesMatchScalar(delays, wf, sites, frac * period,
                                   period, "gate truth tables");
        }
    }
}

/**
 * Static-hazard fixture: AND(x, inv(x)) emits a glitch pulse whenever x
 * rises; the pulse's falling edge is the critical arrival. Delaying the
 * INV arm pushes the fall past the clock edge, so the endpoint latches
 * the glitch high — the vector lane must capture it exactly when the
 * scalar path does, including arrivals exactly at the edge.
 */
TEST(VecTsim, GlitchCaptureAndEdgeLatchingPerLane)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId xd = b.freshNet("xd");
    const NetId x = b.dff(xd, false, "ffx");
    b.connect(xd, b.inv(x));
    const NetId hazard = b.and2(x, b.inv(x));
    b.dff(hazard, false, "cap");
    nl.finalize();

    DelayModel delays(nl, CellLibrary::defaultLibrary());
    Sta sta(delays);
    TimedSimulator tsim(delays);
    const double period = sta.maxPath();

    // The INV -> AND wire: delaying it widens and shifts the pulse.
    WireId w_inv_and = kInvalidId;
    for (NetId net = 0; net < nl.numNets(); ++net) {
        const Net &n = nl.net(net);
        if (nl.cell(n.driver).type != CellType::Inv)
            continue;
        for (uint32_t s = 0; s < n.sinks.size(); ++s) {
            if (nl.cell(n.sinks[s].cell).type == CellType::And2)
                w_inv_and = n.firstWire + s;
        }
    }
    ASSERT_NE(w_inv_and, kInvalidId);

    // Cycle 3: x rises 0 -> 1, so the hazard pulse exists.
    const CyclePrep prep = prepCycle(nl, 3);
    CycleWaveforms wf;
    tsim.simulateCycle(prep.preEdge, prep.postEdge, period, wf);

    const WireId wires[] = {w_inv_and};
    bool glitch_latched = false;
    for (int step = 0; step <= 64; ++step) {
        const double d = (static_cast<double>(step) / 64.0) * period;
        expectLanesMatchScalar(delays, wf, wires, d, period,
                               "hazard pulse");
        std::vector<LatchedPin> scalar;
        tsim.simulateCone(wf, w_inv_and, d, period, scalar);
        for (const LatchedPin &pin : scalar) {
            if (nl.cell(pin.cell).name.find("cap") != std::string::npos
                && pin.value) {
                glitch_latched = true;
            }
        }
    }
    // The sweep must cross the regime where the pulse's falling edge
    // misses the clock and the glitch high is captured (golden settles
    // to 0: AND(x, !x) == 0).
    EXPECT_TRUE(glitch_latched);

    // Bisect the capture boundary and probe both sides: at every probe
    // the lane agrees with the scalar edge rule (arrival exactly at the
    // edge latches; epsilon past it is discarded).
    auto capture = [&](double d) {
        std::vector<LatchedPin> scalar;
        tsim.simulateCone(wf, w_inv_and, d, period, scalar);
        for (const LatchedPin &pin : scalar) {
            if (nl.cell(pin.cell).name.find("cap") != std::string::npos)
                return pin.value;
        }
        return false;
    };
    double lo = 0.0, hi = period;
    ASSERT_FALSE(capture(lo));
    ASSERT_TRUE(capture(hi));
    for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        (capture(mid) ? hi : lo) = mid;
    }
    for (double probe : {lo, hi, 0.5 * (lo + hi)}) {
        expectLanesMatchScalar(delays, wf, wires, probe, period,
                               "edge boundary");
    }
}

TEST(VecTsim, BatchAgreesWithFullSimUnderFault)
{
    // Cross-check every lane of a batch against a full-netlist timed
    // simulation with the fault baked into a modified delay model.
    for (uint64_t seed = 31; seed <= 33; ++seed) {
        const auto circuit = test::makeRandomCircuit(seed, 10, 70);
        const Netlist &nl = *circuit.netlist;
        DelayModel delays(nl, CellLibrary::defaultLibrary());
        Sta sta(delays);
        TimedSimulator tsim(delays);
        VecTimedSimulator vtsim(delays);
        const double period = sta.maxPath();
        const CyclePrep prep = prepCycle(nl, 3);
        CycleWaveforms wf;
        tsim.simulateCycle(prep.preEdge, prep.postEdge, period, wf);

        Rng rng(seed);
        for (int trial = 0; trial < 4; ++trial) {
            std::vector<WireId> wires;
            for (int i = 0; i < 8; ++i)
                wires.push_back(rng.below(nl.numWires()));
            const double d = (0.1 + 0.8 * rng.uniform()) * period;

            std::vector<std::vector<LatchedPin>> lanes;
            vtsim.simulateCones(wf, wires, d, period, lanes);

            for (size_t i = 0; i < wires.size(); ++i) {
                DelayModel faulty = delays;
                faulty.addExtraWireDelay(wires[i], d);
                TimedSimulator full(faulty);
                CycleWaveforms faulty_wf;
                full.simulateCycle(prep.preEdge, prep.postEdge, period,
                                   faulty_wf);
                for (const LatchedPin &pin : lanes[i]) {
                    EXPECT_EQ(pin.value,
                              goldenPinValueAtEdge(faulty, faulty_wf,
                                                   pin.cell, pin.pin,
                                                   period))
                        << "seed " << seed << " lane " << i << " wire "
                        << wires[i] << " d " << d;
                }
            }
        }
    }
}

TEST(VecTsim, FuzzMatchesScalarAtVaryingLaneCounts)
{
    // Random circuits, random batch sizes (including size 1, a full
    // 63-wire batch, and batches with repeated wires), random delays
    // and cycles: the per-lane LatchedPin vectors must equal the scalar
    // ones exactly.
    for (uint64_t seed = 101; seed <= 112; ++seed) {
        const auto circuit = test::makeRandomCircuit(seed, 14, 110);
        const Netlist &nl = *circuit.netlist;
        DelayModel delays(nl, CellLibrary::defaultLibrary());
        Sta sta(delays);
        TimedSimulator tsim(delays);
        const double period = sta.maxPath();

        Rng rng(seed * 977);
        for (int trial = 0; trial < 6; ++trial) {
            const uint64_t cycle = 1 + rng.below(8);
            const CyclePrep prep = prepCycle(nl, cycle);
            CycleWaveforms wf;
            tsim.simulateCycle(prep.preEdge, prep.postEdge, period, wf);

            size_t batch = 1 + rng.below(63);
            if (trial == 0)
                batch = 1;
            if (trial == 1)
                batch = 63;
            std::vector<WireId> wires;
            for (size_t i = 0; i < batch; ++i)
                wires.push_back(rng.below(nl.numWires()));
            if (wires.size() >= 2 && rng.chance(0.5))
                wires[wires.size() - 1] = wires[0]; // Duplicate lane.

            const double d = rng.uniform() * 1.2 * period;
            expectLanesMatchScalar(delays, wf, wires, d, period,
                                   "fuzz");
        }
    }
}

} // namespace
} // namespace davf
