#include "error.hh"

namespace davf {

std::string_view
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::BadArgument:       return "bad-argument";
      case ErrorKind::NotFound:          return "not-found";
      case ErrorKind::BadInput:          return "bad-input";
      case ErrorKind::OutOfRange:        return "out-of-range";
      case ErrorKind::Io:                return "io";
      case ErrorKind::Timeout:           return "timeout";
      case ErrorKind::ExcessiveFailures: return "excessive-failures";
      case ErrorKind::Internal:          return "internal";
    }
    return "?";
}

} // namespace davf
