#include "timed_sim.hh"

#include <algorithm>
#include <queue>

#include "util/logging.hh"

namespace davf {

namespace {

constexpr double kEps = 1e-9;

/** A value arriving at one input pin of a cell. */
struct PinEvent
{
    double time;
    uint64_t sequence;  ///< Tie-break so equal-time processing is stable.
    CellId cell;
    uint16_t pin;
    bool value;
};

struct PinEventLater
{
    bool
    operator()(const PinEvent &a, const PinEvent &b) const
    {
        if (a.time != b.time)
            return a.time > b.time;
        return a.sequence > b.sequence;
    }
};

using EventQueue =
    std::priority_queue<PinEvent, std::vector<PinEvent>, PinEventLater>;

bool
isSourceCell(CellType type)
{
    return cellIsSequential(type) || type == CellType::Input;
}

bool
isEndpointCell(CellType type)
{
    return type == CellType::Dff || type == CellType::Dffe
        || type == CellType::Behav || type == CellType::Output;
}

/** Evaluate a combinational cell from per-pin current values. */
bool
evalFromPins(CellType type, const uint8_t *pins)
{
    return evalCell(type, pins[0] != 0,
                    cellNumInputs(type) > 1 && pins[1] != 0,
                    cellNumInputs(type) > 2 && pins[2] != 0);
}

} // namespace

void
CycleWaveforms::sortEvents()
{
    const auto earlier = [](const NetEvent &a, const NetEvent &b) {
        return a.time < b.time;
    };
    for (std::vector<NetEvent> &events : netEvents) {
        if (!std::is_sorted(events.begin(), events.end(), earlier))
            std::stable_sort(events.begin(), events.end(), earlier);
    }
}

TimedSimulator::TimedSimulator(const DelayModel &delay_model)
    : delays(&delay_model), nl(&delay_model.netlist())
{
}

void
TimedSimulator::simulateCycle(const std::vector<uint8_t> &pre_edge,
                              const std::vector<uint8_t> &post_edge,
                              double period, CycleWaveforms &out) const
{
    const Netlist &netlist = *nl;
    davf_assert(pre_edge.size() == netlist.numNets()
                    && post_edge.size() == netlist.numNets(),
                "net value vector size mismatch");

    out.preEdge = pre_edge;
    out.netEvents.assign(netlist.numNets(), {});

    // Per-pin current values and per-net last scheduled waveform value.
    std::vector<std::vector<uint8_t>> pin_vals(netlist.numCells());
    for (CellId id = 0; id < netlist.numCells(); ++id) {
        const Cell &cell = netlist.cell(id);
        pin_vals[id].resize(cell.inputs.size());
        for (size_t pin = 0; pin < cell.inputs.size(); ++pin)
            pin_vals[id][pin] = pre_edge[cell.inputs[pin]];
    }
    std::vector<uint8_t> sched = pre_edge;

    EventQueue queue;
    uint64_t sequence = 0;

    // Note: no clock-period cutoff here. Nets on dangling combinational
    // paths (which do not constrain the period) legitimately settle
    // after the edge, and the golden waveforms must end at the settled
    // values; consumers apply their own at-the-edge filtering.
    auto emit_net_event = [&](NetId net, double time, bool value) {
        out.netEvents[net].push_back({time, value});
        const Net &net_ref = netlist.net(net);
        for (uint32_t s = 0; s < net_ref.sinks.size(); ++s) {
            const Sink &sink = net_ref.sinks[s];
            const double arrive =
                time + delays->wireDelay(net_ref.firstWire + s);
            queue.push({arrive, sequence++, sink.cell, sink.pin,
                        value});
        }
    };

    // Sources transition to their post-edge values at clkToQ.
    for (NetId id = 0; id < netlist.numNets(); ++id) {
        const CellType driver = netlist.cell(netlist.net(id).driver).type;
        if (isSourceCell(driver) && post_edge[id] != pre_edge[id]) {
            sched[id] = post_edge[id];
            emit_net_event(id, delays->clkToQ(), post_edge[id] != 0);
        }
    }

    while (!queue.empty()) {
        const PinEvent event = queue.top();
        queue.pop();
        pin_vals[event.cell][event.pin] = event.value ? 1 : 0;
        const Cell &cell = netlist.cell(event.cell);
        if (!cellIsCombinational(cell.type))
            continue; // Endpoint pins just record their waveform (below).
        const bool new_out =
            evalFromPins(cell.type, pin_vals[event.cell].data());
        const NetId out_net = cell.outputs[0];
        if ((sched[out_net] != 0) == new_out)
            continue;
        sched[out_net] = new_out ? 1 : 0;
        emit_net_event(out_net, event.time + delays->cellDelay(event.cell),
                       new_out);
    }

    // Establish the sorted-waveform invariant at construction, so every
    // replaying consumer can cut its scan at the clock edge instead of
    // filtering the whole list per call. Emission order is already
    // time-sorted per net (one driver, monotone queue), so this is a
    // verification scan, not a sort.
    out.sortEvents();
}

void
TimedSimulator::simulateCone(const CycleWaveforms &golden, WireId injected,
                             double extra_delay, double period,
                             std::vector<LatchedPin> &latched) const
{
    const Netlist &netlist = *nl;
    latched.clear();

    std::vector<CellId> cone_cells;
    std::vector<StateElemId> reached;
    netlist.combCone(injected, cone_cells, reached);

    // Cone membership.
    std::vector<uint8_t> in_cone(netlist.numCells(), 0);
    for (CellId id : cone_cells)
        in_cone[id] = 1;

    // Latched endpoint tracking: last value arriving at or before the
    // edge wins. Endpoints keyed by (cell, pin); small per cone.
    struct Endpoint
    {
        CellId cell;
        uint16_t pin;
        uint8_t value;
    };
    std::vector<Endpoint> endpoints;
    auto endpoint_index = [&](CellId cell, uint16_t pin) -> size_t {
        for (size_t i = 0; i < endpoints.size(); ++i) {
            if (endpoints[i].cell == cell && endpoints[i].pin == pin)
                return i;
        }
        endpoints.push_back(
            {cell, pin,
             golden.preEdge[netlist.cell(cell).inputs[pin]]});
        return endpoints.size() - 1;
    };

    EventQueue queue;
    uint64_t sequence = 0;

    // Per-pin current values for cone cells; per-net scheduled values for
    // cone outputs.
    std::vector<std::vector<uint8_t>> pin_vals(netlist.numCells());
    std::vector<uint8_t> sched = golden.preEdge;
    for (CellId id : cone_cells) {
        const Cell &cell = netlist.cell(id);
        pin_vals[id].resize(cell.inputs.size());
        for (size_t pin = 0; pin < cell.inputs.size(); ++pin)
            pin_vals[id][pin] = golden.preEdge[cell.inputs[pin]];
    }

    // Replay a golden waveform into one sink pin, shifted by wire delay.
    // Events are time-sorted (CycleWaveforms invariant), so the first
    // arrival past the edge ends the replay.
    auto replay_boundary = [&](NetId net, CellId cell, uint16_t pin,
                               double wire_delay) {
        for (const NetEvent &event : golden.netEvents[net]) {
            const double arrive = event.time + wire_delay;
            if (arrive > period + kEps)
                break;
            queue.push({arrive, sequence++, cell, pin, event.value});
        }
    };

    // Boundary pins of cone cells (driver outside the cone), including
    // the faulted wire's own sink pin with the extra delay.
    const Wire &inj_wire = netlist.wire(injected);
    const Sink &inj_sink = netlist.wireSink(injected);
    for (CellId id : cone_cells) {
        const Cell &cell = netlist.cell(id);
        for (uint16_t pin = 0; pin < cell.inputs.size(); ++pin) {
            const NetId in_net = cell.inputs[pin];
            if (in_cone[netlist.net(in_net).driver])
                continue;
            double wire_delay =
                delays->wireDelay(netlist.inputWire(id, pin));
            if (in_net == inj_wire.net && id == inj_sink.cell
                && pin == inj_sink.pin) {
                wire_delay += extra_delay;
            }
            replay_boundary(in_net, id, pin, wire_delay);
        }
    }

    // The faulted wire may feed an endpoint directly.
    if (isEndpointCell(netlist.cell(inj_sink.cell).type)) {
        endpoint_index(inj_sink.cell, inj_sink.pin);
        replay_boundary(inj_wire.net, inj_sink.cell, inj_sink.pin,
                        delays->wireDelay(injected) + extra_delay);
    }

    // Register every endpoint pin reachable from the cone upfront: a pin
    // that receives no transition before the edge latches its pre-edge
    // value — which is precisely the mis-latch case the caller needs to
    // see, so silence must not make the pin disappear from the result.
    for (CellId id : cone_cells) {
        const Net &out_net = netlist.net(netlist.cell(id).outputs[0]);
        for (const Sink &sink : out_net.sinks) {
            if (isEndpointCell(netlist.cell(sink.cell).type))
                endpoint_index(sink.cell, sink.pin);
        }
    }

    while (!queue.empty()) {
        const PinEvent event = queue.top();
        queue.pop();
        const Cell &cell = netlist.cell(event.cell);
        if (!cellIsCombinational(cell.type)) {
            // Endpoint pin: record the latched value (events are in time
            // order, so the final write is the value at the edge).
            endpoints[endpoint_index(event.cell, event.pin)].value =
                event.value ? 1 : 0;
            continue;
        }
        pin_vals[event.cell][event.pin] = event.value ? 1 : 0;
        const bool new_out =
            evalFromPins(cell.type, pin_vals[event.cell].data());
        const NetId out_net = cell.outputs[0];
        if ((sched[out_net] != 0) == new_out)
            continue;
        sched[out_net] = new_out ? 1 : 0;
        const double out_time =
            event.time + delays->cellDelay(event.cell);
        if (out_time > period + kEps)
            continue;
        const Net &net_ref = netlist.net(out_net);
        for (uint32_t s = 0; s < net_ref.sinks.size(); ++s) {
            const Sink &sink = net_ref.sinks[s];
            const double arrive =
                out_time + delays->wireDelay(net_ref.firstWire + s);
            if (arrive > period + kEps)
                continue;
            if (!cellIsCombinational(netlist.cell(sink.cell).type)) {
                if (isEndpointCell(netlist.cell(sink.cell).type)) {
                    // Ensure the endpoint is tracked even before its
                    // event arrives; the event itself updates it.
                    endpoint_index(sink.cell, sink.pin);
                } else {
                    continue;
                }
            } else if (!in_cone[sink.cell]) {
                continue; // Outside the cone: cannot be affected.
            }
            queue.push({arrive, sequence++, sink.cell, sink.pin,
                        new_out});
        }
    }

    latched.reserve(endpoints.size());
    for (const Endpoint &endpoint : endpoints)
        latched.push_back(
            {endpoint.cell, endpoint.pin, endpoint.value != 0});
}

bool
goldenPinValueAtEdge(const DelayModel &delays, const CycleWaveforms &golden,
                     CellId cell, uint16_t pin, double period)
{
    const Netlist &netlist = delays.netlist();
    const NetId net = netlist.cell(cell).inputs[pin];
    const double wire_delay =
        delays.wireDelay(netlist.inputWire(cell, pin));
    bool value = golden.preEdge[net] != 0;
    for (const NetEvent &event : golden.netEvents[net]) {
        if (event.time + wire_delay > period + kEps)
            break; // Sorted waveform: nothing later can arrive in time.
        value = event.value;
    }
    return value;
}

} // namespace davf
