#include "netlist.hh"

#include <algorithm>
#include <deque>

#include "util/logging.hh"

namespace davf {

NetId
Netlist::addNet(std::string name)
{
    checkNotFinalized();
    const NetId id = static_cast<NetId>(nets.size());
    Net net;
    net.name = std::move(name);
    netByName.emplace(net.name, id);
    nets.push_back(std::move(net));
    return id;
}

CellId
Netlist::addCell(CellType type, std::string name,
                 std::span<const NetId> input_nets,
                 std::span<const NetId> output_nets, bool reset_value)
{
    checkNotFinalized();
    davf_assert(type != CellType::Behav,
                "use addBehavioral for behavioral cells");
    davf_assert(input_nets.size() == cellNumInputs(type),
                "cell ", name, ": wrong input count for ",
                cellTypeName(type));

    const unsigned expected_outputs =
        (type == CellType::Output) ? 0 : 1;
    davf_assert(output_nets.size() == expected_outputs,
                "cell ", name, ": wrong output count");

    const CellId id = static_cast<CellId>(cells.size());
    Cell cell;
    cell.type = type;
    cell.resetValue = reset_value;
    cell.name = std::move(name);
    cell.inputs.assign(input_nets.begin(), input_nets.end());
    cell.outputs.assign(output_nets.begin(), output_nets.end());

    for (NetId net_id : output_nets) {
        davf_assert(nets[net_id].driver == kInvalidId,
                    "net ", nets[net_id].name, " multiply driven");
        nets[net_id].driver = id;
        nets[net_id].driverPin = 0;
    }

    cellByName.emplace(cell.name, id);
    cells.push_back(std::move(cell));
    return id;
}

CellId
Netlist::addBehavioral(std::string name, BehavioralModelPtr model,
                       std::span<const NetId> input_nets,
                       std::span<const NetId> output_nets)
{
    checkNotFinalized();
    davf_assert(model, "null behavioral model");
    davf_assert(input_nets.size() == model->numInputs(),
                "behavioral ", name, ": input count mismatch");
    davf_assert(output_nets.size() == model->numOutputs(),
                "behavioral ", name, ": output count mismatch");

    const CellId id = static_cast<CellId>(cells.size());
    Cell cell;
    cell.type = CellType::Behav;
    cell.name = std::move(name);
    cell.inputs.assign(input_nets.begin(), input_nets.end());
    cell.outputs.assign(output_nets.begin(), output_nets.end());

    for (size_t pin = 0; pin < output_nets.size(); ++pin) {
        Net &net = nets[output_nets[pin]];
        davf_assert(net.driver == kInvalidId,
                    "net ", net.name, " multiply driven");
        net.driver = id;
        net.driverPin = static_cast<uint16_t>(pin);
    }

    cellByName.emplace(cell.name, id);
    cells.push_back(std::move(cell));
    behavModels.emplace(id, std::move(model));
    return id;
}

size_t
Netlist::sweepDeadLogic()
{
    checkNotFinalized();

    // Reverse reachability from sampled endpoints: a combinational cell
    // is live iff some endpoint consumes it (transitively). All
    // non-combinational cells are roots.
    std::vector<uint8_t> live(cells.size(), 0);
    std::vector<CellId> frontier;
    for (CellId id = 0; id < cells.size(); ++id) {
        if (!cellIsCombinational(cells[id].type)) {
            live[id] = 1;
            frontier.push_back(id);
        }
    }
    while (!frontier.empty()) {
        const CellId id = frontier.back();
        frontier.pop_back();
        for (NetId in : cells[id].inputs) {
            const CellId driver = nets[in].driver;
            davf_assert(driver != kInvalidId, "undriven net ",
                        nets[in].name, " during sweep");
            if (cellIsCombinational(cells[driver].type)
                && !live[driver]) {
                live[driver] = 1;
                frontier.push_back(driver);
            }
        }
    }

    // A net survives iff its driver survives.
    std::vector<uint8_t> net_live(nets.size(), 0);
    for (NetId id = 0; id < nets.size(); ++id) {
        const CellId driver = nets[id].driver;
        net_live[id] = driver == kInvalidId ? 0 : live[driver];
    }

    // Compact cells and nets, remapping references.
    std::vector<CellId> cell_map(cells.size(), kInvalidId);
    std::vector<NetId> net_map(nets.size(), kInvalidId);
    std::vector<Cell> new_cells;
    std::vector<Net> new_nets;
    new_cells.reserve(cells.size());
    new_nets.reserve(nets.size());
    for (NetId id = 0; id < nets.size(); ++id) {
        if (net_live[id]) {
            net_map[id] = static_cast<NetId>(new_nets.size());
            new_nets.push_back(std::move(nets[id]));
        }
    }
    size_t removed = 0;
    for (CellId id = 0; id < cells.size(); ++id) {
        if (!live[id]) {
            ++removed;
            behavModels.erase(id); // Defensive; behavs are always live.
            continue;
        }
        cell_map[id] = static_cast<CellId>(new_cells.size());
        new_cells.push_back(std::move(cells[id]));
    }
    for (Cell &cell : new_cells) {
        for (NetId &in : cell.inputs) {
            davf_assert(net_map[in] != kInvalidId,
                        "live cell consumes dead net");
            in = net_map[in];
        }
        for (NetId &out : cell.outputs)
            out = net_map[out];
    }
    for (Net &net : new_nets)
        net.driver = cell_map[net.driver];

    // Remap the side tables.
    std::unordered_map<CellId, BehavioralModelPtr> new_models;
    for (auto &[id, model] : behavModels)
        new_models.emplace(cell_map[id], std::move(model));
    behavModels = std::move(new_models);
    cellByName.clear();
    for (CellId id = 0; id < new_cells.size(); ++id)
        cellByName.emplace(new_cells[id].name, id);
    netByName.clear();
    for (NetId id = 0; id < new_nets.size(); ++id)
        netByName.emplace(new_nets[id].name, id);

    cells = std::move(new_cells);
    nets = std::move(new_nets);
    return removed;
}

void
Netlist::insertFanoutBuffers(unsigned max_fanout)
{
    checkNotFinalized();
    davf_assert(max_fanout >= 2, "fanout cap must be at least 2");

    // Iterate until every net is under the cap; each pass splits the
    // sinks of oversubscribed nets into buffered groups.
    for (bool changed = true; changed;) {
        changed = false;

        // Where each net is consumed: (cell, pin) references.
        std::vector<std::vector<Sink>> consumers(nets.size());
        for (CellId id = 0; id < cells.size(); ++id) {
            for (size_t pin = 0; pin < cells[id].inputs.size(); ++pin)
                consumers[cells[id].inputs[pin]].push_back(
                    {id, static_cast<uint16_t>(pin)});
        }

        const NetId num_nets = static_cast<NetId>(nets.size());
        for (NetId net_id = 0; net_id < num_nets; ++net_id) {
            const auto &sinks = consumers[net_id];
            if (sinks.size() <= max_fanout)
                continue;
            changed = true;

            const std::string base =
                cells[nets[net_id].driver].name + "_fbuf";
            size_t group_index = 0;
            for (size_t at = 0; at < sinks.size(); at += max_fanout) {
                const std::string suffix =
                    "." + std::to_string(nets.size()) + "_"
                    + std::to_string(group_index++);
                const NetId buffered = addNet(nets[net_id].name
                                              + suffix);
                addCell(CellType::Buf, base + suffix, {{net_id}},
                        {{buffered}});
                const size_t end =
                    std::min(sinks.size(), at + max_fanout);
                for (size_t s = at; s < end; ++s) {
                    cells[sinks[s].cell].inputs[sinks[s].pin] =
                        buffered;
                }
            }
        }
    }
}

void
Netlist::finalize()
{
    checkNotFinalized();

    // Build sink lists and categorize cells.
    for (CellId id = 0; id < cells.size(); ++id) {
        const Cell &cell = cells[id];
        for (size_t pin = 0; pin < cell.inputs.size(); ++pin)
            nets[cell.inputs[pin]].sinks.push_back(
                {id, static_cast<uint16_t>(pin)});
        switch (cell.type) {
          case CellType::Input:
            inputs.push_back(id);
            break;
          case CellType::Output:
            outputs.push_back(id);
            break;
          case CellType::Dff:
          case CellType::Dffe:
          case CellType::Behav:
            seqs.push_back(id);
            break;
          default:
            break;
        }
    }

    for (NetId id = 0; id < nets.size(); ++id) {
        davf_assert(nets[id].driver != kInvalidId,
                    "net ", nets[id].name, " has no driver");
    }

    // Enumerate wires: contiguous per net, in net order. Also record the
    // wire feeding each (cell, pin) for timing lookups.
    inWires.resize(cells.size());
    for (CellId id = 0; id < cells.size(); ++id)
        inWires[id].resize(cells[id].inputs.size(), kInvalidId);
    for (NetId id = 0; id < nets.size(); ++id) {
        nets[id].firstWire = static_cast<WireId>(wires.size());
        for (uint32_t s = 0; s < nets[id].sinks.size(); ++s) {
            const Sink &sink = nets[id].sinks[s];
            inWires[sink.cell][sink.pin] =
                static_cast<WireId>(wires.size());
            wires.push_back({id, s});
        }
    }

    // Enumerate state elements.
    for (CellId id = 0; id < cells.size(); ++id) {
        const Cell &cell = cells[id];
        if (cell.type == CellType::Dff || cell.type == CellType::Dffe) {
            flopElems.emplace(
                id, static_cast<StateElemId>(stateElems.size()));
            stateElems.push_back({StateElemKind::Flop, id, 0});
        } else if (cell.type == CellType::Behav) {
            for (uint16_t pin = 0; pin < cell.inputs.size(); ++pin) {
                pinElems.emplace(
                    (uint64_t{id} << 16) | pin,
                    static_cast<StateElemId>(stateElems.size()));
                stateElems.push_back(
                    {StateElemKind::BehavInput, id, pin});
            }
        } else if (cell.type == CellType::Output) {
            pinElems.emplace(
                uint64_t{id} << 16,
                static_cast<StateElemId>(stateElems.size()));
            stateElems.push_back({StateElemKind::OutputPort, id, 0});
        }
    }

    // Levelize combinational cells (Kahn's algorithm). Sources are nets
    // driven by sequential cells, inputs, and constants.
    levels.assign(cells.size(), 0);
    std::vector<unsigned> pending(cells.size(), 0);
    std::deque<CellId> ready;
    for (CellId id = 0; id < cells.size(); ++id) {
        const Cell &cell = cells[id];
        if (!cellIsCombinational(cell.type))
            continue;
        unsigned comb_fanin = 0;
        for (NetId in : cell.inputs) {
            if (cellIsCombinational(cells[nets[in].driver].type))
                ++comb_fanin;
        }
        pending[id] = comb_fanin;
        if (comb_fanin == 0)
            ready.push_back(id);
    }

    size_t num_comb = 0;
    for (const Cell &cell : cells) {
        if (cellIsCombinational(cell.type))
            ++num_comb;
    }

    while (!ready.empty()) {
        const CellId id = ready.front();
        ready.pop_front();
        topo.push_back(id);
        for (NetId out : cells[id].outputs) {
            for (const Sink &sink : nets[out].sinks) {
                if (!cellIsCombinational(cells[sink.cell].type))
                    continue;
                levels[sink.cell] =
                    std::max(levels[sink.cell], levels[id] + 1);
                if (--pending[sink.cell] == 0)
                    ready.push_back(sink.cell);
            }
        }
    }
    davf_assert(topo.size() == num_comb,
                "combinational loop detected (", num_comb - topo.size(),
                " cells unlevelized)");

    isFinalized = true;
}

const BehavioralModelPtr &
Netlist::behavModel(CellId id) const
{
    auto it = behavModels.find(id);
    davf_assert(it != behavModels.end(), "cell ", cells[id].name,
                " is not behavioral");
    return it->second;
}

std::string
Netlist::wireName(WireId id) const
{
    const Wire &w = wires[id];
    const Net &n = nets[w.net];
    const Sink &s = n.sinks[w.sinkIndex];
    return n.name + " -> " + cells[s.cell].name + "."
        + std::to_string(s.pin);
}

StateElemId
Netlist::flopStateElem(CellId id) const
{
    auto it = flopElems.find(id);
    davf_assert(it != flopElems.end(), "cell ", cells[id].name,
                " is not a flop");
    return it->second;
}

StateElemId
Netlist::pinStateElem(CellId id, uint16_t pin) const
{
    auto it = pinElems.find((uint64_t{id} << 16) | pin);
    davf_assert(it != pinElems.end(), "cell ", cells[id].name, " pin ",
                pin, " is not a sampled pin");
    return it->second;
}

std::string
Netlist::stateElemName(StateElemId id) const
{
    const StateElem &elem = stateElems[id];
    std::string name = cells[elem.cell].name;
    if (elem.kind == StateElemKind::BehavInput)
        name += ".in" + std::to_string(elem.pin);
    return name;
}

CellId
Netlist::findCell(const std::string &name) const
{
    auto it = cellByName.find(name);
    return it == cellByName.end() ? kInvalidId : it->second;
}

NetId
Netlist::findNet(const std::string &name) const
{
    auto it = netByName.find(name);
    return it == netByName.end() ? kInvalidId : it->second;
}

void
Netlist::combCone(WireId id, std::vector<CellId> &cone_cells,
                  std::vector<StateElemId> &reached) const
{
    cone_cells.clear();
    reached.clear();

    std::vector<bool> cell_seen(cells.size(), false);
    std::vector<bool> elem_seen(stateElems.size(), false);
    std::deque<Sink> frontier;
    frontier.push_back(wireSink(id));

    auto visit_sink = [&](const Sink &sink) {
        const Cell &cell = cells[sink.cell];
        switch (cell.type) {
          case CellType::Dff:
          case CellType::Dffe: {
            const StateElemId elem = flopStateElem(sink.cell);
            if (!elem_seen[elem]) {
                elem_seen[elem] = true;
                reached.push_back(elem);
            }
            break;
          }
          case CellType::Behav:
          case CellType::Output: {
            const StateElemId elem = pinStateElem(sink.cell, sink.pin);
            if (!elem_seen[elem]) {
                elem_seen[elem] = true;
                reached.push_back(elem);
            }
            break;
          }
          default:
            if (cellIsCombinational(cell.type) && !cell_seen[sink.cell]) {
                cell_seen[sink.cell] = true;
                cone_cells.push_back(sink.cell);
                for (NetId out : cell.outputs) {
                    for (const Sink &next : nets[out].sinks)
                        frontier.push_back(next);
                }
            }
            break;
        }
    };

    while (!frontier.empty()) {
        const Sink sink = frontier.front();
        frontier.pop_front();
        visit_sink(sink);
    }

    std::sort(cone_cells.begin(), cone_cells.end(),
              [&](CellId a, CellId b) { return levels[a] < levels[b]; });
}

std::vector<WireId>
Netlist::wiresByPrefix(const std::string &prefix) const
{
    std::vector<WireId> result;
    for (WireId id = 0; id < wires.size(); ++id) {
        const Cell &driver = cells[wireDriver(id)];
        if (driver.name.starts_with(prefix))
            result.push_back(id);
    }
    return result;
}

std::vector<CellId>
Netlist::cellsByPrefix(const std::string &prefix) const
{
    std::vector<CellId> result;
    for (CellId id = 0; id < cells.size(); ++id) {
        if (cells[id].name.starts_with(prefix))
            result.push_back(id);
    }
    return result;
}

std::vector<StateElemId>
Netlist::flopsByPrefix(const std::string &prefix) const
{
    std::vector<StateElemId> result;
    for (StateElemId id = 0; id < stateElems.size(); ++id) {
        const StateElem &elem = stateElems[id];
        if (elem.kind == StateElemKind::Flop
            && cells[elem.cell].name.starts_with(prefix)) {
            result.push_back(id);
        }
    }
    return result;
}

std::string
Netlist::toDot() const
{
    std::string out = "digraph netlist {\n  rankdir=LR;\n";
    for (CellId id = 0; id < cells.size(); ++id) {
        out += "  c" + std::to_string(id) + " [label=\"" + cells[id].name
            + "\\n" + std::string(cellTypeName(cells[id].type)) + "\"];\n";
    }
    for (const Net &net : nets) {
        for (const Sink &sink : net.sinks) {
            out += "  c" + std::to_string(net.driver) + " -> c"
                + std::to_string(sink.cell) + " [label=\"" + net.name
                + "\"];\n";
        }
    }
    out += "}\n";
    return out;
}

void
Netlist::checkNotFinalized() const
{
    davf_assert(!isFinalized, "netlist is finalized and immutable");
}

} // namespace davf
