#include "benchmarks.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "util/logging.hh"

namespace davf {

namespace {

/** Rotate left. */
uint32_t
rotl(uint32_t value, unsigned amount)
{
    return amount == 0 ? value
                       : (value << amount) | (value >> (32 - amount));
}

/** MD5 per-round shift amounts. */
constexpr unsigned kMd5Shifts[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
};

/** MD5 sine-derived constants. */
std::vector<uint32_t>
md5Constants()
{
    std::vector<uint32_t> k(64);
    for (unsigned i = 0; i < 64; ++i)
        k[i] = static_cast<uint32_t>(
            std::floor(std::fabs(std::sin(double(i) + 1.0)) * 4294967296.0));
    return k;
}

/** Pack a C string (with terminating NUL) into little-endian words. */
std::vector<uint32_t>
packString(const std::string &text)
{
    std::vector<uint32_t> words((text.size() + 1 + 3) / 4, 0);
    for (size_t i = 0; i < text.size(); ++i)
        words[i / 4] |= uint32_t{uint8_t(text[i])} << ((i % 4) * 8);
    return words;
}

/** Emit a .word directive for a list of values. */
void
emitWords(std::ostringstream &out, const std::vector<uint32_t> &words)
{
    for (size_t i = 0; i < words.size(); ++i) {
        if (i % 8 == 0)
            out << (i ? "\n" : "") << "  .word ";
        else
            out << ", ";
        out << "0x" << std::hex << words[i] << std::dec;
    }
    out << "\n";
}

/** Shared epilogue: t6 must hold the MMIO base. */
constexpr const char *kHaltEpilogue = R"(
  sw x0, 4(t6)
hang:
  j hang
)";

// ---------------------------------------------------------------------
// bubblesort
// ---------------------------------------------------------------------

BenchmarkProgram
makeBubblesort()
{
    const std::vector<uint32_t> data = {829, 12,  9999, 3,   77,  500,
                                        1,   250, 42,   613, 88,  4096};
    std::vector<uint32_t> sorted = data;
    std::sort(sorted.begin(), sorted.end());

    std::ostringstream out;
    out << R"(
# Beebs bubblesort: in-place sort of a word array, then print it.
main:
  la a0, array
  li a1, )" << data.size() << R"(
  addi t0, a1, -1        # i = n-1
outer:
  beqz t0, print
  li t1, 0               # j = 0
inner:
  bge t1, t0, outer_next
  slli t3, t1, 2
  add t3, t3, a0
  lw t4, 0(t3)
  lw t5, 4(t3)
  bleu t4, t5, noswap
  sw t5, 0(t3)
  sw t4, 4(t3)
noswap:
  addi t1, t1, 1
  j inner
outer_next:
  addi t0, t0, -1
  j outer
print:
  li t6, 0x10000
  li t1, 0
ploop:
  bge t1, a1, end
  slli t3, t1, 2
  add t3, t3, a0
  lw t4, 0(t3)
  sw t4, 0(t6)
  addi t1, t1, 1
  j ploop
end:)" << kHaltEpilogue << "array:\n";
    emitWords(out, data);

    return {"bubblesort", out.str(), sorted};
}

// ---------------------------------------------------------------------
// libfibcall
// ---------------------------------------------------------------------

BenchmarkProgram
makeFibcall()
{
    const unsigned n = 9;
    auto fib = [](auto &&self, unsigned v) -> uint32_t {
        return v < 2 ? v : self(self, v - 1) + self(self, v - 2);
    };

    std::ostringstream out;
    out << R"(
# Beebs libfibcall: naive recursive Fibonacci (exercises call stack).
main:
  li sp, 0xff00
  li a0, )" << n << R"(
  call fib
  li t6, 0x10000
  sw a0, 0(t6))" << kHaltEpilogue << R"(
fib:
  li t0, 2
  blt a0, t0, fib_base
  addi sp, sp, -12
  sw ra, 0(sp)
  sw s0, 4(sp)
  mv s0, a0
  addi a0, a0, -1
  call fib
  sw a0, 8(sp)
  addi a0, s0, -2
  call fib
  lw t0, 8(sp)
  add a0, a0, t0
  lw ra, 0(sp)
  lw s0, 4(sp)
  addi sp, sp, 12
  ret
fib_base:
  ret
)";
    return {"libfibcall", out.str(), {fib(fib, n)}};
}

// ---------------------------------------------------------------------
// libstrstr
// ---------------------------------------------------------------------

BenchmarkProgram
makeStrstr()
{
    const std::string text = "the small delay fault escaped the tester";
    const std::string pat1 = "delay";     // Present.
    const std::string pat2 = "particle";  // Absent.
    const std::string pat3 = "tester";    // Present near the end.

    auto naive = [](const std::string &haystack,
                    const std::string &needle) -> uint32_t {
        const size_t pos = haystack.find(needle);
        return pos == std::string::npos ? 0xffffffffu
                                        : static_cast<uint32_t>(pos);
    };

    std::ostringstream out;
    out << R"(
# Beebs libstrstr: naive substring search with byte loads.
main:
  li t6, 0x10000
  la a0, text
  la a1, pat1
  call strstr
  sw a0, 0(t6)
  la a0, text
  la a1, pat2
  call strstr
  sw a0, 0(t6)
  la a0, text
  la a1, pat3
  call strstr
  sw a0, 0(t6))" << kHaltEpilogue << R"(
strstr:                  # a0 = haystack, a1 = needle -> index or -1
  mv t0, a0
sloop:
  mv t2, t0
  mv t3, a1
mloop:
  lbu t4, 0(t3)
  beqz t4, found
  lbu t5, 0(t2)
  beqz t5, notfound
  bne t4, t5, snext
  addi t2, t2, 1
  addi t3, t3, 1
  j mloop
snext:
  lbu t5, 0(t0)
  beqz t5, notfound
  addi t0, t0, 1
  j sloop
found:
  sub a0, t0, a0
  ret
notfound:
  li a0, -1
  ret
text:
)";
    emitWords(out, packString(text));
    out << "pat1:\n";
    emitWords(out, packString(pat1));
    out << "pat2:\n";
    emitWords(out, packString(pat2));
    out << "pat3:\n";
    emitWords(out, packString(pat3));

    return {"libstrstr", out.str(),
            {naive(text, pat1), naive(text, pat2), naive(text, pat3)}};
}

// ---------------------------------------------------------------------
// matmult
// ---------------------------------------------------------------------

BenchmarkProgram
makeMatmult()
{
    constexpr unsigned n = 4;
    const uint32_t a[n][n] = {{3, 141, 59, 26},
                              {53, 58, 97, 93},
                              {23, 84, 62, 64},
                              {33, 83, 27, 95}};
    const uint32_t b[n][n] = {{2, 71, 82, 81},
                              {28, 45, 90, 45},
                              {23, 53, 60, 28},
                              {74, 71, 35, 66}};
    uint32_t c[n][n] = {};
    for (unsigned i = 0; i < n; ++i) {
        for (unsigned j = 0; j < n; ++j) {
            for (unsigned k = 0; k < n; ++k)
                c[i][j] += a[i][k] * b[k][j];
        }
    }
    std::vector<uint32_t> expected;
    uint32_t checksum = 0;
    for (unsigned i = 0; i < n; ++i)
        for (unsigned j = 0; j < n; ++j)
            checksum += c[i][j];
    expected.push_back(checksum);
    for (unsigned i = 0; i < n; ++i)
        expected.push_back(c[i][i]);

    std::vector<uint32_t> a_words;
    std::vector<uint32_t> b_words;
    for (unsigned i = 0; i < n; ++i) {
        for (unsigned j = 0; j < n; ++j) {
            a_words.push_back(a[i][j]);
            b_words.push_back(b[i][j]);
        }
    }

    std::ostringstream out;
    out << R"(
# Beebs matmult: integer matrix multiply with a software
# shift-and-add multiplier (the core has no M extension).
main:
  li sp, 0xff00
  la s8, mata
  la s9, matb
  la s10, matc
  li s11, )" << n << R"(
  li s2, 0               # i
iloop:
  bge s2, s11, report
  li s3, 0               # j
jloop:
  bge s3, s11, inext
  li s5, 0               # acc
  li s4, 0               # k
kloop:
  bge s4, s11, kdone
  # a0 = A[i][k]
  slli t0, s2, 2
  add t0, t0, s4
  slli t0, t0, 2
  add t0, t0, s8
  lw a0, 0(t0)
  # a1 = B[k][j]
  slli t0, s4, 2
  add t0, t0, s3
  slli t0, t0, 2
  add t0, t0, s9
  lw a1, 0(t0)
  call mul8
  add s5, s5, a0
  addi s4, s4, 1
  j kloop
kdone:
  # C[i][j] = acc
  slli t0, s2, 2
  add t0, t0, s3
  slli t0, t0, 2
  add t0, t0, s10
  sw s5, 0(t0)
  addi s3, s3, 1
  j jloop
inext:
  addi s2, s2, 1
  j iloop
report:
  li t6, 0x10000
  # checksum of all entries
  li t0, 0               # sum
  li t1, 0               # index
  li t2, )" << (n * n) << R"(
csum:
  bge t1, t2, diag
  slli t3, t1, 2
  add t3, t3, s10
  lw t4, 0(t3)
  add t0, t0, t4
  addi t1, t1, 1
  j csum
diag:
  sw t0, 0(t6)
  li t1, 0
dloop:
  bge t1, s11, end
  # word offset of C[t1][t1] = 4 * (n*t1 + t1), n = 4
  slli t3, t1, 2
  add t3, t3, t1
  slli t3, t3, 2
  add t3, t3, s10
  lw t4, 0(t3)
  sw t4, 0(t6)
  addi t1, t1, 1
  j dloop
end:)" << kHaltEpilogue << R"(
mul8:                    # a0 * a1 (a1 < 256) -> a0
  li t0, 0
  li t1, 8
mul_loop:
  andi t2, a1, 1
  beqz t2, mul_skip
  add t0, t0, a0
mul_skip:
  slli a0, a0, 1
  srli a1, a1, 1
  addi t1, t1, -1
  bnez t1, mul_loop
  mv a0, t0
  ret
mata:
)";
    emitWords(out, a_words);
    out << "matb:\n";
    emitWords(out, b_words);
    out << "matc:\n  .space " << (n * n * 4) << "\n";

    return {"matmult", out.str(), expected};
}

// ---------------------------------------------------------------------
// md5
// ---------------------------------------------------------------------

BenchmarkProgram
makeMd5()
{
    // A single pre-padded block holding the message "abc".
    std::vector<uint32_t> block(16, 0);
    block[0] = 0x80636261; // 'a' 'b' 'c' 0x80
    block[14] = 24;        // Message length in bits.

    const std::vector<uint32_t> expected = md5SingleBlock(block);
    const std::vector<uint32_t> k = md5Constants();
    std::vector<uint32_t> shifts(kMd5Shifts, kMd5Shifts + 64);

    std::ostringstream out;
    out << R"(
# Beebs md5: one MD5 compression block (highly irregular dataflow,
# the paper's high-toggle-rate workload).
main:
  la s5, ktab
  la s6, stab
  la s7, msg
  li s0, 0x67452301      # a
  li s1, 0xefcdab89      # b
  li s2, 0x98badcfe      # c
  li s3, 0x10325476      # d
  li s4, 0               # i
round:
  li t0, 16
  blt s4, t0, q0
  li t0, 32
  blt s4, t0, q1
  li t0, 48
  blt s4, t0, q2
  # q3: f = c ^ (b | ~d); g = (7*i) & 15
  not t1, s3
  or t1, s1, t1
  xor t1, s2, t1
  slli t2, s4, 3
  sub t2, t2, s4
  andi t2, t2, 15
  j rjoin
q0:
  # f = (b & c) | (~b & d); g = i
  and t1, s1, s2
  not t2, s1
  and t2, t2, s3
  or t1, t1, t2
  mv t2, s4
  j rjoin
q1:
  # f = (d & b) | (~d & c); g = (5*i + 1) & 15
  and t1, s3, s1
  not t2, s3
  and t2, t2, s2
  or t1, t1, t2
  slli t2, s4, 2
  add t2, t2, s4
  addi t2, t2, 1
  andi t2, t2, 15
  j rjoin
q2:
  # f = b ^ c ^ d; g = (3*i + 5) & 15
  xor t1, s1, s2
  xor t1, t1, s3
  slli t2, s4, 1
  add t2, t2, s4
  addi t2, t2, 5
  andi t2, t2, 15
rjoin:
  # F = f + a + K[i] + M[g]
  add t1, t1, s0
  slli t3, s4, 2
  add t3, t3, s5
  lw t3, 0(t3)
  add t1, t1, t3
  slli t3, t2, 2
  add t3, t3, s7
  lw t3, 0(t3)
  add t1, t1, t3
  # rotate left by S[i]
  slli t3, s4, 2
  add t3, t3, s6
  lw t3, 0(t3)
  sll t4, t1, t3
  li t5, 32
  sub t5, t5, t3
  srl t1, t1, t5
  or t1, t4, t1
  # (a, b, c, d) = (d, b + rot, b, c)
  mv t4, s3
  mv s3, s2
  mv s2, s1
  add s1, s1, t1
  mv s0, t4
  addi s4, s4, 1
  li t0, 64
  blt s4, t0, round
  # Add the initial chaining values and report.
  li t0, 0x67452301
  add s0, s0, t0
  li t0, 0xefcdab89
  add s1, s1, t0
  li t0, 0x98badcfe
  add s2, s2, t0
  li t0, 0x10325476
  add s3, s3, t0
  li t6, 0x10000
  sw s0, 0(t6)
  sw s1, 0(t6)
  sw s2, 0(t6)
  sw s3, 0(t6))" << kHaltEpilogue << "ktab:\n";
    emitWords(out, k);
    out << "stab:\n";
    emitWords(out, shifts);
    out << "msg:\n";
    emitWords(out, block);

    return {"md5", out.str(), expected};
}

// ---------------------------------------------------------------------
// crc32 (extension workload)
// ---------------------------------------------------------------------

BenchmarkProgram
makeCrc32()
{
    const std::string message = "delay faults corrupt silently";

    auto reference = [](const std::string &text) -> uint32_t {
        uint32_t crc = 0xffffffff;
        for (unsigned char c : text) {
            crc ^= c;
            for (int bit = 0; bit < 8; ++bit) {
                const uint32_t lsb = crc & 1;
                crc >>= 1;
                if (lsb)
                    crc ^= 0xedb88320;
            }
        }
        return ~crc;
    };

    std::ostringstream out;
    out << R"(
# crc32: bitwise CRC-32 of a NUL-terminated string.
main:
  la a0, text
  li a1, -1              # crc = 0xffffffff
  li a3, 0xedb88320
byte_loop:
  lbu t0, 0(a0)
  beqz t0, finish
  xor a1, a1, t0
  li t1, 8
bit_loop:
  andi t2, a1, 1
  srli a1, a1, 1
  beqz t2, no_poly
  xor a1, a1, a3
no_poly:
  addi t1, t1, -1
  bnez t1, bit_loop
  addi a0, a0, 1
  j byte_loop
finish:
  not a1, a1
  li t6, 0x10000
  sw a1, 0(t6))" << kHaltEpilogue << "text:\n";
    emitWords(out, packString(message));

    return {"crc32", out.str(), {reference(message)}};
}

// ---------------------------------------------------------------------
// popcount (extension workload)
// ---------------------------------------------------------------------

BenchmarkProgram
makePopcount()
{
    // Software popcount over a 16-bit Galois LFSR stream.
    constexpr unsigned kRounds = 24;
    uint32_t lfsr = 0xace1;
    uint32_t total = 0;
    for (unsigned round = 0; round < kRounds; ++round) {
        uint32_t value = lfsr;
        while (value) {
            total += value & 1;
            value >>= 1;
        }
        const uint32_t lsb = lfsr & 1;
        lfsr >>= 1;
        if (lsb)
            lfsr ^= 0xb400;
    }

    std::ostringstream out;
    out << R"(
# popcount: count set bits across a 16-bit LFSR stream.
main:
  li a0, 0xace1          # lfsr
  li a1, 0               # total
  li a2, )" << kRounds << R"(
  li a3, 0xb400
round:
  mv t0, a0              # value = lfsr
pop_loop:
  beqz t0, pop_done
  andi t1, t0, 1
  add a1, a1, t1
  srli t0, t0, 1
  j pop_loop
pop_done:
  andi t1, a0, 1
  srli a0, a0, 1
  beqz t1, no_tap
  xor a0, a0, a3
no_tap:
  addi a2, a2, -1
  bnez a2, round
  li t6, 0x10000
  sw a1, 0(t6))" << kHaltEpilogue;

    return {"popcount", out.str(), {total}};
}

} // namespace

std::vector<uint32_t>
md5SingleBlock(const std::vector<uint32_t> &block)
{
    davf_assert(block.size() == 16, "md5 block must be 16 words");
    const std::vector<uint32_t> k = md5Constants();
    uint32_t a = 0x67452301;
    uint32_t b = 0xefcdab89;
    uint32_t c = 0x98badcfe;
    uint32_t d = 0x10325476;
    for (unsigned i = 0; i < 64; ++i) {
        uint32_t f;
        unsigned g;
        if (i < 16) {
            f = (b & c) | (~b & d);
            g = i;
        } else if (i < 32) {
            f = (d & b) | (~d & c);
            g = (5 * i + 1) & 15;
        } else if (i < 48) {
            f = b ^ c ^ d;
            g = (3 * i + 5) & 15;
        } else {
            f = c ^ (b | ~d);
            g = (7 * i) & 15;
        }
        const uint32_t rotated = rotl(f + a + k[i] + block[g],
                                      kMd5Shifts[i]);
        a = d;
        d = c;
        c = b;
        b = b + rotated;
    }
    return {a + 0x67452301, b + 0xefcdab89, c + 0x98badcfe,
            d + 0x10325476};
}

const std::vector<BenchmarkProgram> &
beebsBenchmarks()
{
    static const std::vector<BenchmarkProgram> programs = {
        makeMd5(),      makeBubblesort(), makeStrstr(),
        makeFibcall(),  makeMatmult(),
    };
    return programs;
}

const std::vector<BenchmarkProgram> &
extraBenchmarks()
{
    static const std::vector<BenchmarkProgram> programs = {
        makeCrc32(),
        makePopcount(),
    };
    return programs;
}

const BenchmarkProgram &
beebsBenchmark(const std::string &name)
{
    for (const BenchmarkProgram &program : beebsBenchmarks()) {
        if (program.name == name)
            return program;
    }
    for (const BenchmarkProgram &program : extraBenchmarks()) {
        if (program.name == name)
            return program;
    }
    davf_throw(ErrorKind::NotFound, "unknown benchmark '", name, "'");
}

} // namespace davf
