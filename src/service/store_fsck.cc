#include "store_fsck.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.hh"
#include "service/result_store.hh"
#include "util/atomic_file.hh"
#include "util/crashpoint.hh"
#include "util/logging.hh"

namespace davf::service {

const char *const kFsckQuarantineDir = "quarantine";

namespace {

namespace fs = std::filesystem;

/** Fsck/compact metric handles (docs/OBSERVABILITY.md). */
struct FsckMetrics
{
    obs::Counter damageFound{"store.fsck_damage"};
    obs::Counter quarantined{"store.fsck_quarantined"};
    obs::Counter tmpsRemoved{"store.fsck_tmps_removed"};
    obs::Counter rehomed{"store.compact_rehomed"};
    obs::Counter duplicateLosers{"store.compact_duplicate_losers"};
};

FsckMetrics &
fsckMetrics()
{
    static FsckMetrics *const metrics = new FsckMetrics();
    return *metrics;
}

/** A classified entry plus what was parsed out of it (when valid). */
struct WalkedEntry
{
    StoreEntry entry;
    std::string key;     ///< Embedded key (Valid / Misplaced only).
    std::string payload; ///< Embedded payload (Valid / Misplaced only).
};

/**
 * Classify every regular file directly under @p dir, sorted by name.
 * Directories (including the quarantine sub-dir) are skipped. Throws
 * DavfError{Io} only if the directory itself cannot be enumerated.
 */
std::vector<WalkedEntry>
walkStore(const std::string &dir)
{
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) {
        davf_throw(ErrorKind::Io, "cannot enumerate store dir '", dir,
                   "': ", ec.message());
    }

    std::vector<WalkedEntry> walked;
    for (const fs::directory_entry &dirent : it) {
        if (!dirent.is_regular_file(ec))
            continue;
        WalkedEntry we;
        we.entry.name = dirent.path().filename().string();

        if (we.entry.name.find(".tmp.") != std::string::npos) {
            we.entry.kind = StoreEntryKind::OrphanTmp;
            we.entry.detail = "stale writer temporary";
            walked.push_back(std::move(we));
            continue;
        }
        if (we.entry.name.size() < 4
            || we.entry.name.rfind(".rec")
                != we.entry.name.size() - 4) {
            we.entry.kind = StoreEntryKind::Foreign;
            walked.push_back(std::move(we));
            continue;
        }

        std::ifstream file(dirent.path(), std::ios::binary);
        std::ostringstream contents;
        if (file)
            contents << file.rdbuf();
        const std::string text = contents.str();
        if (!file) {
            we.entry.kind = StoreEntryKind::Garbled;
            we.entry.detail = "unreadable";
            walked.push_back(std::move(we));
            continue;
        }

        auto parsed = ResultStore::parseRecord(text);
        if (parsed) {
            we.key = std::move(parsed.value().first);
            we.payload = std::move(parsed.value().second);
            const std::string canonical =
                ResultStore::recordFileName(we.key);
            if (we.entry.name == canonical) {
                we.entry.kind = StoreEntryKind::Valid;
            } else {
                we.entry.kind = StoreEntryKind::Misplaced;
                we.entry.detail = "canonical name is " + canonical;
            }
        } else if (text.size() < 4
                   || text.compare(text.size() - 4, 4, "end\n") != 0) {
            // No end sentinel: the write stopped mid-record.
            we.entry.kind = StoreEntryKind::Torn;
            we.entry.detail = parsed.error().what();
        } else {
            // Structurally complete but damaged: corruption, a stale
            // version, or hand-edited garbage.
            we.entry.kind = StoreEntryKind::Garbled;
            we.entry.detail = parsed.error().what();
        }
        walked.push_back(std::move(we));
    }
    std::sort(walked.begin(), walked.end(),
              [](const WalkedEntry &a, const WalkedEntry &b) {
                  return a.entry.name < b.entry.name;
              });
    return walked;
}

void
tally(FsckReport &report, const StoreEntry &entry)
{
    switch (entry.kind) {
      case StoreEntryKind::Valid:
        ++report.valid;
        break;
      case StoreEntryKind::Misplaced:
        ++report.misplaced;
        break;
      case StoreEntryKind::Torn:
        ++report.torn;
        fsckMetrics().damageFound.add(1);
        break;
      case StoreEntryKind::Garbled:
        ++report.garbled;
        fsckMetrics().damageFound.add(1);
        break;
      case StoreEntryKind::OrphanTmp:
        ++report.orphanTmps;
        break;
      case StoreEntryKind::Foreign:
        ++report.foreign;
        break;
    }
}

/**
 * Move a damaged record into the quarantine sub-dir (creating it on
 * demand). A failed move is warned about and left in place — the
 * report then stays un-clean, which is the honest answer.
 */
bool
quarantineEntry(const std::string &dir, const std::string &name)
{
    std::error_code ec;
    const fs::path qdir = fs::path(dir) / kFsckQuarantineDir;
    fs::create_directories(qdir, ec);
    if (ec) {
        davf_warn("cannot create '", qdir.string(),
                  "': ", ec.message());
        return false;
    }
    fs::rename(fs::path(dir) / name, qdir / name, ec);
    if (ec) {
        davf_warn("cannot quarantine '", name, "': ", ec.message());
        return false;
    }
    return true;
}

bool
removeEntry(const std::string &dir, const std::string &name)
{
    std::error_code ec;
    if (!fs::remove(fs::path(dir) / name, ec) || ec) {
        davf_warn("cannot remove '", name, "': ",
                  ec ? ec.message() : "no such file");
        return false;
    }
    return true;
}

/** The shared fsck walk; @p rehome additionally compacts misplaced. */
FsckReport
runFsck(const std::string &dir, bool repair, bool rehome)
{
    static const crashpoint::CrashPoint repair_point("fsck.repair");
    static const crashpoint::CrashPoint rewrite_point("compact.rewrite");

    FsckReport report;
    std::vector<WalkedEntry> walked = walkStore(dir);
    for (const WalkedEntry &we : walked) {
        tally(report, we.entry);
        report.entries.push_back(we.entry);
    }

    if (repair) {
        for (const WalkedEntry &we : walked) {
            switch (we.entry.kind) {
              case StoreEntryKind::Torn:
              case StoreEntryKind::Garbled:
                repair_point.fire();
                if (quarantineEntry(dir, we.entry.name)) {
                    ++report.quarantined;
                    fsckMetrics().quarantined.add(1);
                }
                break;
              case StoreEntryKind::OrphanTmp:
                repair_point.fire();
                if (removeEntry(dir, we.entry.name)) {
                    ++report.removedTmps;
                    fsckMetrics().tmpsRemoved.add(1);
                }
                break;
              default:
                break;
            }
        }
    }

    if (rehome) {
        // Re-home misplaced records (or drop them as duplicate-key
        // losers when their canonical slot is taken). Each step is one
        // atomic rewrite or unlink, so a kill mid-compact leaves a
        // store the next run finishes — and never fewer distinct keys
        // than it started with.
        for (const WalkedEntry &we : walked) {
            if (we.entry.kind != StoreEntryKind::Misplaced)
                continue;
            const std::string canonical =
                ResultStore::recordFileName(we.key);
            const fs::path canonical_path = fs::path(dir) / canonical;
            std::error_code ec;
            bool slot_taken = fs::exists(canonical_path, ec) && !ec;
            if (slot_taken) {
                rewrite_point.fire();
                if (removeEntry(dir, we.entry.name)) {
                    ++report.duplicateLosers;
                    fsckMetrics().duplicateLosers.add(1);
                }
            } else {
                rewrite_point.fire();
                try {
                    writeFileAtomic(
                        canonical_path.string(),
                        ResultStore::serializeRecord(we.key,
                                                     we.payload));
                } catch (const DavfError &error) {
                    davf_warn("cannot re-home '", we.entry.name,
                              "': ", error.what());
                    continue;
                }
                if (removeEntry(dir, we.entry.name)) {
                    ++report.rehomed;
                    fsckMetrics().rehomed.add(1);
                }
            }
        }
    }
    return report;
}

} // namespace

const char *
storeEntryKindName(StoreEntryKind kind)
{
    switch (kind) {
      case StoreEntryKind::Valid:
        return "valid";
      case StoreEntryKind::Misplaced:
        return "misplaced";
      case StoreEntryKind::Torn:
        return "torn";
      case StoreEntryKind::Garbled:
        return "garbled";
      case StoreEntryKind::OrphanTmp:
        return "orphan-tmp";
      case StoreEntryKind::Foreign:
        return "foreign";
    }
    return "foreign";
}

bool
FsckReport::clean() const
{
    return torn + garbled == quarantined
        && orphanTmps == removedTmps;
}

FsckReport
fsckStore(const std::string &dir, const FsckOptions &options)
{
    return runFsck(dir, options.repair, false);
}

FsckReport
compactStore(const std::string &dir)
{
    return runFsck(dir, true, true);
}

} // namespace davf::service
