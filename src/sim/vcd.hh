/**
 * @file
 * Value-change-dump (VCD) export for cycle-level simulations.
 *
 * Debugging a gate-level fault-injection flow without waveforms is
 * miserable; this writer records selected nets cycle by cycle from a
 * CycleSimulator and renders a standard VCD file (one timestep per
 * clock cycle) loadable in GTKWave & friends. Typical use: dump the
 * golden run and a faulty continuation side by side and diff them.
 */

#ifndef DAVF_SIM_VCD_HH
#define DAVF_SIM_VCD_HH

#include <string>
#include <vector>

#include "sim/cycle_sim.hh"

namespace davf {

/** Records net values per cycle and renders a VCD file. */
class VcdWriter
{
  public:
    /**
     * Track @p nets of @p netlist. Net names become the VCD signal
     * names ('/' mapped to '.').
     */
    VcdWriter(const Netlist &netlist, std::vector<NetId> nets);

    /** Track every net of the design (small designs only). */
    static VcdWriter allNets(const Netlist &netlist);

    /**
     * Record the tracked nets' current values as the sample for
     * @p sim's current cycle. Call once per cycle, in order.
     */
    void sample(const CycleSimulator &sim);

    /** Number of samples recorded. */
    size_t sampleCount() const { return samples; }

    /** Render the full VCD document. */
    std::string render(const std::string &design_name = "davf") const;

    /** Render and write to @p path; fatal on I/O failure. */
    void writeTo(const std::string &path,
                 const std::string &design_name = "davf") const;

  private:
    /** Printable short identifier for signal @p index. */
    static std::string identifier(size_t index);

    const Netlist *nl;
    std::vector<NetId> tracked;
    /** Change list per tracked net: (cycle, value). */
    std::vector<std::vector<std::pair<uint64_t, bool>>> changes;
    size_t samples = 0;
};

} // namespace davf

#endif // DAVF_SIM_VCD_HH
