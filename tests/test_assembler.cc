/**
 * @file
 * Tests for the RV32I assembler: encodings checked against hand-encoded
 * reference words, label resolution, pseudo-instruction expansion, and
 * data directives.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/isa/assembler.hh"
#include "src/util/error.hh"
#include "src/util/rng.hh"

namespace davf {
namespace {

uint32_t
one(const std::string &line)
{
    const auto image = assemble(line);
    EXPECT_EQ(image.size(), 1u);
    return image.at(0);
}

TEST(Assembler, RegisterNames)
{
    EXPECT_EQ(parseRegister("x0"), 0u);
    EXPECT_EQ(parseRegister("x31"), 31u);
    EXPECT_EQ(parseRegister("zero"), 0u);
    EXPECT_EQ(parseRegister("ra"), 1u);
    EXPECT_EQ(parseRegister("sp"), 2u);
    EXPECT_EQ(parseRegister("a0"), 10u);
    EXPECT_EQ(parseRegister("t6"), 31u);
    EXPECT_EQ(parseRegister("s11"), 27u);
    EXPECT_EQ(parseRegister("fp"), 8u);
}

TEST(Assembler, RTypeEncodings)
{
    EXPECT_EQ(one("add x1, x2, x3"), 0x003100b3u);
    EXPECT_EQ(one("sub x1, x2, x3"), 0x403100b3u);
    EXPECT_EQ(one("and a0, a1, a2"), 0x00c5f533u);
    EXPECT_EQ(one("or a0, a1, a2"), 0x00c5e533u);
    EXPECT_EQ(one("xor a0, a1, a2"), 0x00c5c533u);
    EXPECT_EQ(one("sll a0, a1, a2"), 0x00c59533u);
    EXPECT_EQ(one("srl a0, a1, a2"), 0x00c5d533u);
    EXPECT_EQ(one("sra a0, a1, a2"), 0x40c5d533u);
    EXPECT_EQ(one("slt a0, a1, a2"), 0x00c5a533u);
    EXPECT_EQ(one("sltu a0, a1, a2"), 0x00c5b533u);
}

TEST(Assembler, ITypeEncodings)
{
    EXPECT_EQ(one("addi x1, x2, -1"), 0xfff10093u);
    EXPECT_EQ(one("addi x1, x2, 2047"), 0x7ff10093u);
    EXPECT_EQ(one("andi a0, a1, 0xff"), 0x0ff5f513u);
    EXPECT_EQ(one("slli a0, a1, 4"), 0x00459513u);
    EXPECT_EQ(one("srli a0, a1, 4"), 0x0045d513u);
    EXPECT_EQ(one("srai a0, a1, 4"), 0x4045d513u);
    EXPECT_EQ(one("sltiu a0, a1, 1"), 0x0015b513u);
}

TEST(Assembler, LoadsAndStores)
{
    EXPECT_EQ(one("lw a0, 8(sp)"), 0x00812503u);
    EXPECT_EQ(one("lw a0, -4(sp)"), 0xffc12503u);
    EXPECT_EQ(one("lb a0, 0(a1)"), 0x00058503u);
    EXPECT_EQ(one("lbu a0, 3(a1)"), 0x0035c503u);
    EXPECT_EQ(one("sw a0, 8(sp)"), 0x00a12423u);
    EXPECT_EQ(one("sb a0, 5(a1)"), 0x00a582a3u);
}

TEST(Assembler, UTypeAndJumps)
{
    EXPECT_EQ(one("lui a0, 0x10"), 0x00010537u);
    EXPECT_EQ(one("auipc a0, 1"), 0x00001517u);
    // jal with explicit register to next instruction (offset 0... -> 4).
    const auto fwd = assemble("jal x1, target\nnop\ntarget: nop");
    EXPECT_EQ(fwd.at(0), 0x008000efu); // +8.
    EXPECT_EQ(one("jalr x0, 0(ra)"), 0x00008067u);
    EXPECT_EQ(one("ret"), 0x00008067u);
}

TEST(Assembler, BranchOffsets)
{
    // Backward branch to self: offset 0... target == pc.
    const auto image = assemble("loop: beq x1, x2, loop");
    EXPECT_EQ(image.at(0), 0x00208063u);
    const auto fwd = assemble("bne a0, a1, skip\nnop\nskip: nop");
    EXPECT_EQ(fwd.at(0), 0x00b51463u); // +8.
}

TEST(Assembler, PseudoInstructions)
{
    EXPECT_EQ(one("nop"), 0x00000013u);
    EXPECT_EQ(one("mv a0, a1"), 0x00058513u);
    EXPECT_EQ(one("not a0, a1"), 0xfff5c513u);
    EXPECT_EQ(one("neg a0, a1"), 0x40b00533u);
    EXPECT_EQ(one("seqz a0, a1"), 0x0015b513u);
    EXPECT_EQ(one("snez a0, a1"), 0x00b03533u);
    // j == jal x0.
    const auto jmp = assemble("j next\nnext: nop");
    EXPECT_EQ(jmp.at(0), 0x0040006fu);
}

TEST(Assembler, LiSmallAndLarge)
{
    // Small: single addi.
    EXPECT_EQ(one("li a0, 42"), 0x02a00513u);
    EXPECT_EQ(one("li a0, -1"), 0xfff00513u);
    // Large: lui + addi.
    const auto big = assemble("li a0, 0x12345678");
    ASSERT_EQ(big.size(), 2u);
    EXPECT_EQ(big[0], 0x12345537u);  // lui a0, 0x12345
    EXPECT_EQ(big[1], 0x67850513u);  // addi a0, a0, 0x678
    // Negative-low-half case needs the +0x800 compensation.
    const auto comp = assemble("li a0, 0x12345fff");
    ASSERT_EQ(comp.size(), 2u);
    EXPECT_EQ(comp[0], 0x12346537u);
    EXPECT_EQ(comp[1], 0xfff50513u);
}

TEST(Assembler, LaResolvesLabels)
{
    const auto image = assemble("la a0, data\nnop\ndata: .word 7");
    ASSERT_EQ(image.size(), 4u);
    // data is at byte 12: lui a0, 0 + addi a0, a0, 12.
    EXPECT_EQ(image[0], 0x00000537u);
    EXPECT_EQ(image[1], 0x00c50513u);
    EXPECT_EQ(image[3], 7u);
}

TEST(Assembler, WordAndSpaceDirectives)
{
    const auto image =
        assemble(".word 1, 2, 0xdeadbeef\n.space 8\n.word 9");
    ASSERT_EQ(image.size(), 6u);
    EXPECT_EQ(image[0], 1u);
    EXPECT_EQ(image[2], 0xdeadbeefu);
    EXPECT_EQ(image[3], 0u);
    EXPECT_EQ(image[4], 0u);
    EXPECT_EQ(image[5], 9u);
}

TEST(Assembler, CommentsAndLabels)
{
    const auto image = assemble(R"(
        # a comment
        start:           // another comment
        nop              # trailing
        second: third: nop
    )");
    EXPECT_EQ(image.size(), 2u);
}

TEST(Assembler, SwappedBranchPseudos)
{
    // bgt a, b == blt b, a.
    const auto bgt = assemble("bgt a0, a1, l\nl: nop");
    const auto blt = assemble("blt a1, a0, l\nl: nop");
    EXPECT_EQ(bgt[0], blt[0]);
    const auto bleu = assemble("bleu a0, a1, l\nl: nop");
    const auto bgeu = assemble("bgeu a1, a0, l\nl: nop");
    EXPECT_EQ(bleu[0], bgeu[0]);
}

// Malformed source is a recoverable user error: the assembler throws
// DavfError{BadInput} (with the offending line in the message) instead
// of aborting the process, so a campaign driver can catch and report it.
void
expectBadInput(const std::string &source, const std::string &needle)
{
    try {
        assemble(source);
        FAIL() << "expected DavfError for: " << source;
    } catch (const DavfError &error) {
        EXPECT_EQ(error.kind(), ErrorKind::BadInput);
        EXPECT_NE(std::string(error.what()).find(needle),
                  std::string::npos)
            << "message '" << error.what() << "' lacks '" << needle
            << "'";
    }
}

TEST(AssemblerErrors, RejectsHalfwordOps)
{
    expectBadInput("lh a0, 0(a1)", "halfword");
    expectBadInput("sh a0, 0(a1)", "halfword");
}

TEST(AssemblerErrors, RejectsUnknownMnemonic)
{
    expectBadInput("frobnicate a0", "unknown mnemonic");
}

TEST(AssemblerErrors, RejectsDuplicateLabel)
{
    expectBadInput("x: nop\nx: nop", "duplicate label");
}

TEST(AssemblerErrors, RejectsOutOfRangeImmediate)
{
    expectBadInput("addi a0, a1, 5000", "out of range");
}

TEST(AssemblerErrors, RejectsBadImmediateAndRegister)
{
    expectBadInput("addi a0, a1, 12junk", "bad immediate");
    expectBadInput("add a0, a1, q9", "unknown register");
    expectBadInput("lw a0, a1", "expected offset(reg)");
}

// A valid program used as the seed for the mutation corpus below.
const char *const kFuzzSeedProgram = R"(
start:
    li   a0, 0x1234
    la   a1, data
    addi a2, a0, -7
loop:
    lw   a3, 0(a1)
    add  a2, a2, a3
    addi a1, a1, 4
    bne  a1, a0, loop
    sw   a2, 8(a1)
    jal  ra, start
    beqz a2, done
    j    loop
done:
    ecall
data:
    .word 1, 2, 0xdeadbeef
    .space 16
)";

/** assemble() must either succeed or throw DavfError — never crash,
 *  never throw anything else. */
void
assembleMustNotCrash(const std::string &source)
{
    try {
        (void)assemble(source);
    } catch (const DavfError &) {
        // Rejection is fine; escaping with any other exception is not.
    }
}

TEST(AssemblerFuzz, TruncationsNeverCrash)
{
    const std::string seed = kFuzzSeedProgram;
    for (size_t n = 0; n <= seed.size(); ++n)
        assembleMustNotCrash(seed.substr(0, n));
}

TEST(AssemblerFuzz, MutationsNeverCrash)
{
    const std::string seed = kFuzzSeedProgram;
    Rng rng(0xa55e3b1e5);
    for (int round = 0; round < 600; ++round) {
        std::string mutated = seed;
        const unsigned edits = 1 + unsigned(rng.below(6));
        for (unsigned e = 0; e < edits && !mutated.empty(); ++e) {
            const size_t pos = size_t(rng.below(mutated.size()));
            switch (rng.below(4)) {
              case 0: // byte flip, full range incl. NUL and high bytes
                mutated[pos] = char(rng.below(256));
                break;
              case 1: // insertion
                mutated.insert(pos, 1, char(rng.below(256)));
                break;
              case 2: // deletion
                mutated.erase(pos, 1 + size_t(rng.below(12)));
                break;
              default: { // line splice: duplicate a random slice
                const size_t from = size_t(rng.below(mutated.size()));
                const size_t len =
                    std::min<size_t>(1 + size_t(rng.below(40)),
                                     mutated.size() - from);
                mutated.insert(pos, mutated.substr(from, len));
                break;
              }
            }
        }
        assembleMustNotCrash(mutated);
    }
}

TEST(AssemblerFuzz, GarbageNeverCrashes)
{
    Rng rng(0xdecafbad);
    for (int round = 0; round < 200; ++round) {
        std::string garbage;
        const size_t len = size_t(rng.below(300));
        for (size_t i = 0; i < len; ++i) {
            // Bias toward assembler-relevant characters so tokenizer
            // paths deeper than "unknown mnemonic" get exercised.
            static const char alphabet[] =
                "abcxyz0123456789 \t\n,:().-+#\"\\";
            if (rng.chance(0.8)) {
                garbage.push_back(
                    alphabet[rng.below(sizeof alphabet - 1)]);
            } else {
                garbage.push_back(char(rng.below(256)));
            }
        }
        assembleMustNotCrash(garbage);
    }
}

} // namespace
} // namespace davf
