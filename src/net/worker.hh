/**
 * @file
 * The remote campaign worker: the pipe worker's serve loop
 * (campaign/supervisor.hh runCampaignWorker) lifted onto a TCP
 * connection to a coordinator.
 *
 * A worker connects (with retries and exponential backoff, so it can
 * be started before its coordinator), introduces itself with the
 * versioned hello carrying its node name and workspace fingerprint,
 * and then serves "shard <spec>" requests exactly like a pipe worker:
 * one shard at a time, sampling.threads forced to 1, "hb" heartbeats
 * while computing, replies in the journal token grammar so results
 * aggregate bit-identically on the coordinator.
 *
 * A clean "quit" ends the worker with exit 0 — after its last reply
 * has been written, so a quit racing an in-flight result never loses
 * the result (the coordinator drains before closing; see
 * docs/DISTRIBUTED.md). A vanished coordinator ends it with exit 1.
 */

#ifndef DAVF_NET_WORKER_HH
#define DAVF_NET_WORKER_HH

#include <cstdint>
#include <string>

#include "core/vulnerability.hh"
#include "netlist/structure.hh"

namespace davf::net {

/** How a worker finds and introduces itself to its coordinator. */
struct NetWorkerOptions
{
    std::string host = "127.0.0.1";
    uint16_t port = 0;

    /** Self-chosen node name (shown in coordinator logs/metrics and
     *  matched by DAVF_TEST_NETFAULT); default node-<pid>. */
    std::string nodeName;

    /** Workspace build fingerprint sent in the hello; the coordinator
     *  rejects a mismatch instead of mixing results. */
    std::string fingerprint;

    /** Connect attempts beyond the first, with exponential backoff. */
    unsigned connectRetries = 30;

    /** Base of the connect backoff. */
    double backoffBaseMs = 200.0;

    /** Per-attempt connect timeout. */
    double connectTimeoutMs = 5000.0;
};

/**
 * Connect, handshake, and serve shards until quit (exit 0), a lost
 * coordinator (exit 1), or a rejected handshake (exit 2). Returns the
 * process exit code.
 */
int runNetWorker(VulnerabilityEngine &engine,
                 const StructureRegistry &registry,
                 const NetWorkerOptions &options);

} // namespace davf::net

#endif // DAVF_NET_WORKER_HH
