/**
 * @file
 * Tests for the davf_serve subsystem (src/service/):
 *
 *  - workspace specs and the netlist structural hash;
 *  - the persistent result store: record round trips, corruption
 *    tolerance (truncated / wrong-version / key-collision records all
 *    degrade to misses and are repaired by the next store), LRU
 *    eviction with disk fallback, concurrent writers, and a fuzz
 *    corpus over the record parser;
 *  - the client/server protocol: query-spec and frame round trips,
 *    malformed-input rejection, and a live Unix-socket frame exchange;
 *  - the query scheduler: cold queries compute and persist, warm
 *    queries are served entirely from the store with byte-identical
 *    reports, results match a direct engine evaluation bit-for-bit,
 *    concurrent identical queries simulate each shard once, and
 *    cancellation surfaces as a recoverable error.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/campaign/checkpoint.hh"
#include "src/core/report.hh"
#include "src/core/shard.hh"
#include "src/core/vulnerability.hh"
#include "src/service/protocol.hh"
#include "src/service/result_store.hh"
#include "src/service/scheduler.hh"
#include "src/service/workspace.hh"
#include "src/util/rng.hh"
#include "src/util/subprocess.hh"
#include "tests/helpers.hh"

namespace davf::service {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "davf_service_"
        + std::to_string(::getpid()) + "_" + name;
}

// ------------------------------------------------------------- workspace

TEST(WorkspaceSpecText, RoundTrips)
{
    WorkspaceSpec spec;
    spec.benchmark = "md5";
    spec.ecc = true;
    spec.staPeriod = false;
    const auto parsed = parseWorkspaceSpec(serializeWorkspaceSpec(spec));
    ASSERT_TRUE(parsed.ok()) << parsed.error().what();
    EXPECT_EQ(parsed.value(), spec);
}

TEST(WorkspaceSpecText, RejectsDamage)
{
    EXPECT_FALSE(parseWorkspaceSpec("").ok());
    EXPECT_FALSE(parseWorkspaceSpec("md5").ok());
    EXPECT_FALSE(parseWorkspaceSpec("md5 2 0").ok());
    EXPECT_FALSE(parseWorkspaceSpec("md5 1 0 extra").ok());
}

TEST(NetlistHash, StableAndDiscriminating)
{
    const auto a1 = test::makeRandomCircuit(5, 6, 24, 8);
    const auto a2 = test::makeRandomCircuit(5, 6, 24, 8);
    const auto b = test::makeRandomCircuit(6, 6, 24, 8);
    EXPECT_EQ(netlistHash(*a1.netlist), netlistHash(*a2.netlist));
    EXPECT_NE(netlistHash(*a1.netlist), netlistHash(*b.netlist));
}

// ------------------------------------------------------------ the store

TEST(ResultStoreRecord, RoundTrips)
{
    const std::string text =
        ResultStore::serializeRecord("some key", "payload 1 2 3");
    const auto parsed = ResultStore::parseRecord(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error().what();
    EXPECT_EQ(parsed.value().first, "some key");
    EXPECT_EQ(parsed.value().second, "payload 1 2 3");
}

TEST(ResultStoreRecord, RejectsDamage)
{
    const std::string good = ResultStore::serializeRecord("k", "p");
    EXPECT_TRUE(ResultStore::parseRecord(good).ok());

    EXPECT_FALSE(ResultStore::parseRecord("").ok());
    EXPECT_FALSE(ResultStore::parseRecord("davf-store v2\nkey k\n"
                                          "payload p\nend\n")
                     .ok());
    EXPECT_FALSE(ResultStore::parseRecord("davf-store v1\nkey k\n"
                                          "payload p\n")
                     .ok()); // missing end sentinel
    EXPECT_FALSE(
        ResultStore::parseRecord(good + "trailing garbage\n").ok());
    EXPECT_FALSE(ResultStore::parseRecord("davf-store v1\nkey \n"
                                          "payload p\nend\n")
                     .ok()); // empty key
}

TEST(ResultStore_, MemoryOnlyHitsAndMisses)
{
    ResultStore store({.dir = "", .memCapacity = 8});
    EXPECT_FALSE(store.lookup("k").has_value());
    store.store("k", "v");
    const auto hit = store.lookup("k");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "v");
    const StoreStats stats = store.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.memoryHits, 1u);
    EXPECT_EQ(stats.writes, 1u);
    EXPECT_EQ(store.recordPath("k"), "");
}

TEST(ResultStore_, PersistsAcrossInstances)
{
    const std::string dir = tempPath("persist");
    std::filesystem::remove_all(dir);
    {
        ResultStore store({.dir = dir, .memCapacity = 8});
        store.store("k one", "v 1");
    }
    ResultStore fresh({.dir = dir, .memCapacity = 8});
    const auto hit = fresh.lookup("k one");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "v 1");
    EXPECT_EQ(fresh.stats().diskHits, 1u);
    // A second lookup is served from the now-populated memory tier.
    fresh.lookup("k one");
    EXPECT_EQ(fresh.stats().memoryHits, 1u);
    std::filesystem::remove_all(dir);
}

TEST(ResultStore_, TruncatedRecordIsAMissAndIsRepaired)
{
    const std::string dir = tempPath("truncated");
    std::filesystem::remove_all(dir);
    ResultStore store({.dir = dir,
                       .memCapacity = 0, // no memory tier
                       .format = StoreFormat::Legacy});
    store.store("k", "v");

    const std::string path = store.recordPath("k");
    const std::string full = ResultStore::serializeRecord("k", "v");
    std::ofstream(path, std::ios::binary)
        << full.substr(0, full.size() / 2);

    EXPECT_FALSE(store.lookup("k").has_value());
    EXPECT_EQ(store.stats().corruptRecords, 1u);

    // The recompute-and-store path repairs the damaged record.
    store.store("k", "v");
    const auto hit = store.lookup("k");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "v");
    std::filesystem::remove_all(dir);
}

TEST(ResultStore_, WrongVersionRecordIsAMiss)
{
    // Too-old grammar: damage, counted as corrupt and unlinked so
    // fsck-less fleets stop re-parsing the file.
    const std::string dir = tempPath("version");
    std::filesystem::remove_all(dir);
    ResultStore store(
        {.dir = dir, .memCapacity = 0, .format = StoreFormat::Legacy});
    store.store("k", "v");
    std::ofstream(store.recordPath("k"), std::ios::binary)
        << "davf-store v1\nkey k\npayload v\nend\n";
    EXPECT_FALSE(store.lookup("k").has_value());
    EXPECT_EQ(store.stats().corruptRecords, 1u);
    EXPECT_EQ(store.stats().futureRecords, 0u);
    std::filesystem::remove_all(dir);
}

TEST(ResultStore_, FutureVersionRecordIsAMissButSurvives)
{
    // A record written by a newer binary sharing the directory is a
    // miss, not damage: tallied separately and never unlinked — the
    // newer writer still serves it.
    const std::string dir = tempPath("future");
    std::filesystem::remove_all(dir);
    ResultStore store(
        {.dir = dir, .memCapacity = 0, .format = StoreFormat::Legacy});
    store.store("k", "v");
    const std::string future =
        "davf-store v999\nkey k\npayload v\nnewfield x\nend\n";
    std::ofstream(store.recordPath("k"), std::ios::binary) << future;
    EXPECT_FALSE(store.lookup("k").has_value());
    EXPECT_EQ(store.stats().futureRecords, 1u);
    EXPECT_EQ(store.stats().corruptRecords, 0u);
    EXPECT_EQ(store.stats().repairUnlinks, 0u);
    std::ifstream kept(store.recordPath("k"), std::ios::binary);
    std::ostringstream contents;
    contents << kept.rdbuf();
    EXPECT_EQ(contents.str(), future);
    std::filesystem::remove_all(dir);
}

TEST(ResultStore_, EmbeddedKeyMismatchIsAMiss)
{
    const std::string dir = tempPath("collision");
    std::filesystem::remove_all(dir);
    ResultStore store(
        {.dir = dir, .memCapacity = 0, .format = StoreFormat::Legacy});
    // Simulate a filename-hash collision: the record file for "mine"
    // holds a record whose embedded key is someone else's.
    store.store("mine", "v");
    std::ofstream(store.recordPath("mine"), std::ios::binary)
        << ResultStore::serializeRecord("theirs", "w");
    EXPECT_FALSE(store.lookup("mine").has_value());
    EXPECT_EQ(store.stats().corruptRecords, 1u);
    std::filesystem::remove_all(dir);
}

TEST(ResultStore_, LruEvictionFallsBackToDisk)
{
    const std::string dir = tempPath("lru");
    std::filesystem::remove_all(dir);
    ResultStore store({.dir = dir, .memCapacity = 2});
    store.store("a", "1");
    store.store("b", "2");
    store.store("c", "3"); // evicts "a"
    EXPECT_EQ(store.stats().evictions, 1u);

    const auto hit = store.lookup("a");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "1");
    EXPECT_EQ(store.stats().diskHits, 1u);
    std::filesystem::remove_all(dir);
}

TEST(ResultStore_, LruEvictionWithoutDiskIsAMiss)
{
    ResultStore store({.dir = "", .memCapacity = 1});
    store.store("a", "1");
    store.store("b", "2");
    EXPECT_FALSE(store.lookup("a").has_value());
    ASSERT_TRUE(store.lookup("b").has_value());
}

TEST(ResultStore_, ConcurrentWritersAndReaders)
{
    const std::string dir = tempPath("concurrent");
    std::filesystem::remove_all(dir);
    ResultStore store({.dir = dir, .memCapacity = 16});

    constexpr unsigned kThreads = 8;
    constexpr unsigned kRounds = 40;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&store, t] {
            for (unsigned i = 0; i < kRounds; ++i) {
                // Half the keys are shared across threads, half private.
                const std::string key = i % 2 == 0
                    ? "shared " + std::to_string(i)
                    : "t" + std::to_string(t) + " " + std::to_string(i);
                const std::string value = "v " + std::to_string(i);
                store.store(key, value);
                const auto hit = store.lookup(key);
                EXPECT_TRUE(hit.has_value());
                if (hit) {
                    EXPECT_EQ(*hit, value);
                }
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    const StoreStats stats = store.stats();
    EXPECT_EQ(stats.writes, kThreads * kRounds);
    EXPECT_EQ(stats.corruptRecords, 0u);
    std::filesystem::remove_all(dir);
}

TEST(ResultStore_, FuzzedRecordParserNeverCrashes)
{
    const std::string base =
        ResultStore::serializeRecord("fp 0.5 spec tokens",
                                     "0x1.8p-1 12 34 end-like payload");
    // Every truncation point.
    for (size_t len = 0; len <= base.size(); ++len) {
        const auto parsed = ResultStore::parseRecord(base.substr(0, len));
        if (len == base.size()) {
            EXPECT_TRUE(parsed.ok());
        }
    }
    // Seeded random mutations: flips, inserts, erasures.
    Rng rng(20240806);
    for (int round = 0; round < 400; ++round) {
        std::string text = base;
        const unsigned edits = 1 + rng.below(4);
        for (unsigned e = 0; e < edits; ++e) {
            if (text.empty())
                break;
            const size_t pos = rng.below(text.size());
            switch (rng.below(3)) {
              case 0:
                text[pos] = static_cast<char>(rng.below(256));
                break;
              case 1:
                text.insert(pos, 1, static_cast<char>(rng.below(256)));
                break;
              default:
                text.erase(pos, 1);
                break;
            }
        }
        const auto parsed = ResultStore::parseRecord(text);
        if (parsed.ok()) {
            // A mutation that still parses must round-trip cleanly.
            EXPECT_TRUE(
                ResultStore::parseRecord(ResultStore::serializeRecord(
                                             parsed.value().first,
                                             parsed.value().second))
                    .ok());
        }
    }
}

// ------------------------------------------------------------- protocol

QuerySpec
sampleQuery()
{
    QuerySpec query;
    query.workspace.benchmark = "md5";
    query.workspace.ecc = true;
    query.structure = "Regfile";
    query.delays = {0.1, 0.1 + 0.2, 0.9}; // non-representable doubles
    query.runSavf = true;
    query.sampling.cycleFraction = 0.07;
    query.sampling.maxInjectionCycles = 5;
    query.sampling.maxWires = 123;
    query.sampling.maxFlops = 45;
    query.sampling.seed = 99;
    query.sampling.watchdogSlack = 111;
    query.sampling.injectionTimeoutMs = 250.5;
    query.sampling.maxFailureRate = 0.125;
    return query;
}

TEST(QuerySpecText, RoundTripsBitExactly)
{
    const QuerySpec query = sampleQuery();
    const auto parsed = parseQuerySpec(serializeQuerySpec(query));
    ASSERT_TRUE(parsed.ok()) << parsed.error().what();
    const QuerySpec &got = parsed.value();
    EXPECT_EQ(got.workspace, query.workspace);
    EXPECT_EQ(got.structure, query.structure);
    ASSERT_EQ(got.delays.size(), query.delays.size());
    for (size_t i = 0; i < query.delays.size(); ++i)
        EXPECT_EQ(got.delays[i], query.delays[i]); // bit-exact hexfloats
    EXPECT_EQ(got.runSavf, query.runSavf);
    EXPECT_EQ(got.sampling.cycleFraction, query.sampling.cycleFraction);
    EXPECT_EQ(got.sampling.maxWires, query.sampling.maxWires);
    EXPECT_EQ(got.sampling.seed, query.sampling.seed);
    EXPECT_EQ(got.sampling.maxFailureRate,
              query.sampling.maxFailureRate);
    // Serialization is canonical: re-serializing reproduces the bytes.
    EXPECT_EQ(serializeQuerySpec(got), serializeQuerySpec(query));
}

TEST(QuerySpecText, RejectsDamage)
{
    const std::string good = serializeQuerySpec(sampleQuery());
    EXPECT_FALSE(parseQuerySpec("").ok());
    EXPECT_FALSE(parseQuerySpec(good + " trailing").ok());
    EXPECT_FALSE(
        parseQuerySpec(good.substr(0, good.size() / 2)).ok());
    EXPECT_FALSE(parseQuerySpec("md5 9 0 ALU 0 0").ok());
}

TEST(ClientFrames, VerbsRoundTrip)
{
    const auto query = parseClientFrame(makeQueryFrame(sampleQuery()));
    ASSERT_TRUE(query.ok());
    EXPECT_EQ(query.value().verb, ClientFrame::Verb::Query);
    EXPECT_EQ(query.value().query.structure, "Regfile");

    for (const char *verb : {"cancel", "stats", "quit"})
        EXPECT_TRUE(parseClientFrame(verb).ok()) << verb;
    EXPECT_FALSE(parseClientFrame("").ok());
    EXPECT_FALSE(parseClientFrame("launch missiles").ok());
    EXPECT_FALSE(parseClientFrame("query not a spec").ok());
}

TEST(ServerReplies, RoundTrip)
{
    ServerReply ok;
    ok.ok = true;
    ok.tag = "report";
    ok.body = "{\"results\":[1, 2, 3]} with spaces";
    const auto ok_parsed = parseServerReply(serializeServerReply(ok));
    ASSERT_TRUE(ok_parsed.ok());
    EXPECT_TRUE(ok_parsed.value().ok);
    EXPECT_EQ(ok_parsed.value().tag, "report");
    EXPECT_EQ(ok_parsed.value().body, ok.body);

    ServerReply err;
    err.errorKind = "not-found";
    err.message = "unknown structure 'Bogus'";
    const auto err_parsed = parseServerReply(serializeServerReply(err));
    ASSERT_TRUE(err_parsed.ok());
    EXPECT_FALSE(err_parsed.value().ok);
    EXPECT_EQ(err_parsed.value().errorKind, "not-found");
    EXPECT_EQ(err_parsed.value().message, err.message);

    EXPECT_FALSE(parseServerReply("").ok());
    EXPECT_FALSE(parseServerReply("ok bogus-tag x").ok());
    EXPECT_FALSE(parseServerReply("maybe report x").ok());
}

TEST(UnixSocket, FramesCrossTheSocket)
{
    const std::string path = tempPath("sock");
    ::unlink(path.c_str());
    const int listen_fd = listenUnix(path);

    std::thread server([listen_fd] {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        ASSERT_GE(fd, 0);
        std::string payload;
        while (readFrameFd(fd, payload))
            writeFrameFd(fd, "echo " + payload);
        ::close(fd);
    });

    const int fd = connectUnix(path);
    writeFrameFd(fd, makeQueryFrame(sampleQuery()));
    std::string reply;
    ASSERT_TRUE(readFrameFd(fd, reply));
    EXPECT_EQ(reply, "echo " + makeQueryFrame(sampleQuery()));
    ::close(fd);
    server.join();
    ::close(listen_fd);
    ::unlink(path.c_str());
}

// ------------------------------------------------------------ scheduler

/** A cheap RandomCircuit engine + store + scheduler. */
class SchedulerFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        circuit = test::makeRandomCircuit(11, 8, 40, 12);
        engine = std::make_unique<VulnerabilityEngine>(
            *circuit.netlist, CellLibrary::defaultLibrary(),
            *circuit.workload);
        registry =
            std::make_unique<StructureRegistry>(*circuit.netlist);
        registry->add("Rnd", "rnd/");

        storeDir = tempPath("sched");
        std::filesystem::remove_all(storeDir);
        // Legacy per-file records: several tests below open a second
        // store over the same live directory, which the index format's
        // single-writer lock intentionally refuses.
        store = std::make_unique<ResultStore>(
            ResultStore::Options{.dir = storeDir,
                                 .memCapacity = 64,
                                 .format = StoreFormat::Legacy});

        QueryScheduler::Options options;
        options.benchmark = "rnd";
        options.threads = 2;
        scheduler = std::make_unique<QueryScheduler>(
            *engine, *registry, "test-fp", *store, options);
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(storeDir);
    }

    QuerySpec
    query() const
    {
        QuerySpec q;
        q.structure = "Rnd";
        q.delays = {0.3, 0.6};
        q.sampling.maxInjectionCycles = 4;
        q.sampling.seed = 7;
        return q;
    }

    size_t
    numShards(const QuerySpec &q) const
    {
        return q.delays.size()
            * engine->injectionCycles(q.sampling).size();
    }

    test::RandomCircuit circuit;
    std::unique_ptr<VulnerabilityEngine> engine;
    std::unique_ptr<StructureRegistry> registry;
    std::string storeDir;
    std::unique_ptr<ResultStore> store;
    std::unique_ptr<QueryScheduler> scheduler;
};

TEST_F(SchedulerFixture, ColdComputesWarmHitsByteIdentically)
{
    const QuerySpec q = query();
    const size_t shards = numShards(q);
    ASSERT_GT(shards, 0u);

    auto cold = scheduler->run(q);
    ASSERT_TRUE(cold.ok()) << cold.error().what();
    EXPECT_EQ(cold.value().storeMisses, shards);
    EXPECT_EQ(cold.value().storeHits, 0u);

    auto warm = scheduler->run(q);
    ASSERT_TRUE(warm.ok()) << warm.error().what();
    EXPECT_EQ(warm.value().storeHits, shards);
    EXPECT_EQ(warm.value().storeMisses, 0u);
    EXPECT_EQ(warm.value().reportJson, cold.value().reportJson);

    const SchedulerStats stats = scheduler->stats();
    EXPECT_EQ(stats.queries, 2u);
    EXPECT_EQ(stats.shardsComputed, shards);
    EXPECT_EQ(stats.shardHits, shards);
}

TEST_F(SchedulerFixture, MatchesADirectEngineEvaluation)
{
    QuerySpec q = query();
    q.runSavf = true;

    auto reply = scheduler->run(q);
    ASSERT_TRUE(reply.ok()) << reply.error().what();

    // The expected report, computed straight on the engine with the
    // same sampling (threads don't affect results).
    SamplingConfig sampling = q.sampling;
    sampling.threads = 1;
    std::vector<ReportRow> rows;
    for (double d : q.delays) {
        ReportRow row;
        row.kind = "davf";
        row.benchmark = "rnd";
        row.structure = "Rnd";
        row.delayFraction = d;
        row.davf =
            engine->delayAvf(*registry->find("Rnd"), d, sampling);
        rows.push_back(std::move(row));
    }
    ReportRow savf_row;
    savf_row.kind = "savf";
    savf_row.benchmark = "rnd";
    savf_row.structure = "Rnd";
    savf_row.savf = engine->savf(*registry->find("Rnd"), sampling);
    rows.push_back(std::move(savf_row));

    EXPECT_EQ(reply.value().reportJson, reportJson(rows));
}

TEST_F(SchedulerFixture, SavfShardIsCachedToo)
{
    QuerySpec q = query();
    q.delays.clear();
    q.runSavf = true;

    auto cold = scheduler->run(q);
    ASSERT_TRUE(cold.ok()) << cold.error().what();
    EXPECT_EQ(cold.value().storeMisses, 1u);

    auto warm = scheduler->run(q);
    ASSERT_TRUE(warm.ok()) << warm.error().what();
    EXPECT_EQ(warm.value().storeHits, 1u);
    EXPECT_EQ(warm.value().reportJson, cold.value().reportJson);
}

TEST_F(SchedulerFixture, ConcurrentIdenticalQueriesComputeEachShardOnce)
{
    const QuerySpec q = query();
    const size_t shards = numShards(q);

    std::string bodies[2];
    std::thread threads[2];
    std::atomic<bool> failed{false};
    for (int t = 0; t < 2; ++t) {
        threads[t] = std::thread([&, t] {
            auto reply = scheduler->run(q);
            if (reply.ok())
                bodies[t] = reply.value().reportJson;
            else
                failed = true;
        });
    }
    threads[0].join();
    threads[1].join();

    ASSERT_FALSE(failed.load());
    EXPECT_FALSE(bodies[0].empty());
    EXPECT_EQ(bodies[0], bodies[1]);

    // The in-flight dedupe: every shard was simulated exactly once;
    // the other client's copies came from the store — either as plain
    // hits or, when it raced the compute, as in-flight hits.
    const SchedulerStats stats = scheduler->stats();
    EXPECT_EQ(stats.shardsComputed, shards);
    EXPECT_EQ(stats.shardHits + stats.inFlightHits
                  + stats.shardsComputed,
              2 * shards);
}

TEST_F(SchedulerFixture, AFreshSchedulerServesFromThePersistedStore)
{
    const QuerySpec q = query();
    auto cold = scheduler->run(q);
    ASSERT_TRUE(cold.ok()) << cold.error().what();

    // New store + scheduler over the same directory and fingerprint:
    // everything is a (disk) hit and the bytes match.
    ResultStore fresh_store(
        ResultStore::Options{.dir = storeDir, .memCapacity = 64});
    QueryScheduler::Options options;
    options.benchmark = "rnd";
    options.threads = 2;
    QueryScheduler fresh(*engine, *registry, "test-fp", fresh_store,
                         options);
    auto warm = fresh.run(q);
    ASSERT_TRUE(warm.ok()) << warm.error().what();
    EXPECT_EQ(warm.value().storeHits, numShards(q));
    EXPECT_EQ(warm.value().reportJson, cold.value().reportJson);
    EXPECT_GT(fresh_store.stats().diskHits, 0u);
}

TEST_F(SchedulerFixture, ADifferentFingerprintMissesTheStore)
{
    const QuerySpec q = query();
    ASSERT_TRUE(scheduler->run(q).ok());

    QueryScheduler::Options options;
    options.benchmark = "rnd";
    QueryScheduler other(*engine, *registry, "other-fp", *store,
                         options);
    auto reply = other.run(q);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().storeHits, 0u);
    EXPECT_EQ(reply.value().storeMisses, numShards(q));
}

TEST_F(SchedulerFixture, CorruptRecordIsRecomputedAndRepaired)
{
    const QuerySpec q = query();
    auto cold = scheduler->run(q);
    ASSERT_TRUE(cold.ok());

    // Damage one shard record on disk and drop the memory tier by
    // using a fresh store over the same directory.
    ShardSpec spec;
    spec.kind = ShardSpec::Kind::Cycle;
    spec.structure = q.structure;
    spec.delayFraction = q.delays[0];
    spec.cycle = engine->injectionCycles(q.sampling)[0];
    spec.sampling = q.sampling;
    ResultStore fresh_store(
        ResultStore::Options{.dir = storeDir, .memCapacity = 64});
    QueryScheduler::Options options;
    options.benchmark = "rnd";
    options.threads = 2;
    QueryScheduler fresh(*engine, *registry, "test-fp", fresh_store,
                         options);
    const std::string path =
        fresh_store.recordPath(fresh.shardKey(spec));
    ASSERT_FALSE(path.empty());
    std::ofstream(path, std::ios::binary) << "davf-store v1\nkey trunc";

    auto warm = fresh.run(q);
    ASSERT_TRUE(warm.ok()) << warm.error().what();
    EXPECT_EQ(warm.value().storeMisses, 1u);
    EXPECT_EQ(warm.value().storeHits, numShards(q) - 1);
    EXPECT_EQ(warm.value().reportJson, cold.value().reportJson);
    // >= 1: the double-checked miss path may read (and tally) the
    // damaged record again under the compute lock before repairing it.
    EXPECT_GE(fresh_store.stats().corruptRecords, 1u);

    // The rewrite repaired the record: a second pass is all hits.
    auto repaired = fresh.run(q);
    ASSERT_TRUE(repaired.ok());
    EXPECT_EQ(repaired.value().storeHits, numShards(q));
}

TEST_F(SchedulerFixture, UnknownStructureIsNotFound)
{
    QuerySpec q = query();
    q.structure = "Bogus";
    auto reply = scheduler->run(q);
    ASSERT_FALSE(reply.ok());
    EXPECT_EQ(reply.error().kind(), ErrorKind::NotFound);
}

TEST_F(SchedulerFixture, CancelStopsTheQuery)
{
    const std::atomic<bool> cancel{true};
    auto reply = scheduler->run(query(), &cancel);
    ASSERT_FALSE(reply.ok());
    EXPECT_EQ(reply.error().kind(), ErrorKind::Timeout);
    EXPECT_GE(scheduler->stats().cancelled, 1u);
}

TEST_F(SchedulerFixture, StatsJsonCarriesTheCounters)
{
    ASSERT_TRUE(scheduler->run(query()).ok());
    const std::string json = scheduler->statsJson();
    EXPECT_NE(json.find("\"queries\":1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"shards_computed\":"), std::string::npos);
    EXPECT_NE(json.find("\"store\":{"), std::string::npos);
    EXPECT_NE(json.find("\"latency_ms\":{"), std::string::npos);
}

TEST_F(SchedulerFixture, ShardKeyEmbedsTheFingerprint)
{
    ShardSpec spec;
    spec.structure = "Rnd";
    const std::string key = scheduler->shardKey(spec);
    EXPECT_EQ(key.rfind("test-fp ", 0), 0u) << key;
}

// ----------------------------------------------------- report emitters

TEST(ReportJson, RowsCarryTheKindDiscriminator)
{
    ReportRow davf_row;
    davf_row.kind = "davf";
    davf_row.benchmark = "md5";
    davf_row.structure = "ALU";
    davf_row.delayFraction = 0.5;
    ReportRow savf_row;
    savf_row.kind = "savf";
    savf_row.benchmark = "md5";
    savf_row.structure = "ALU";

    const std::string json = reportJson({davf_row, savf_row});
    EXPECT_EQ(json.rfind("{\"schema\":\"davf-report/v1\",\"results\":[",
                         0),
              0u)
        << json;
    EXPECT_NE(json.find("{\"kind\":\"davf\",\"benchmark\":\"md5\""),
              std::string::npos);
    EXPECT_NE(json.find("{\"kind\":\"savf\",\"benchmark\":\"md5\""),
              std::string::npos);
    // Deterministic: equal rows, equal bytes.
    EXPECT_EQ(json, reportJson({davf_row, savf_row}));
}

} // namespace
} // namespace davf::service
