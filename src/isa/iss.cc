#include "iss.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace davf {

Iss::Iss(const std::vector<uint32_t> &image, uint32_t mem_bytes)
    : memBytes(mem_bytes)
{
    davf_assert(mem_bytes % 4 == 0 && isPowerOfTwo(mem_bytes),
                "RAM size must be a power-of-two word multiple");
    mem.assign(mem_bytes / 4, 0);
    davf_assert(image.size() <= mem.size(), "image larger than RAM");
    std::copy(image.begin(), image.end(), mem.begin());
}

uint32_t
Iss::memWord(uint32_t addr) const
{
    davf_assert(addr % 4 == 0 && addr < memBytes, "bad memWord address");
    return mem[addr / 4];
}

uint32_t
Iss::load(uint32_t addr, unsigned size_log2, bool sign_extend)
{
    if (addr >= memBytes)
        return 0; // MMIO and out-of-range reads return zero.
    const uint32_t word = mem[addr / 4];
    if (size_log2 == 2) {
        davf_assert(addr % 4 == 0, "misaligned LW at ", addr);
        return word;
    }
    davf_assert(size_log2 == 0, "unsupported load size");
    const uint32_t byte = (word >> ((addr & 3) * 8)) & 0xff;
    return sign_extend ? static_cast<uint32_t>(signExtend(byte, 8))
                       : byte;
}

void
Iss::store(uint32_t addr, uint32_t value, unsigned size_log2)
{
    if (addr >= memBytes) {
        // MMIO: only word stores are architecturally meaningful.
        if (addr == kMmioOut)
            output.push_back(value);
        else if (addr == kMmioHalt)
            isHalted = true;
        return;
    }
    if (size_log2 == 2) {
        davf_assert(addr % 4 == 0, "misaligned SW at ", addr);
        mem[addr / 4] = value;
        return;
    }
    davf_assert(size_log2 == 0, "unsupported store size");
    const unsigned shift = (addr & 3) * 8;
    mem[addr / 4] =
        (mem[addr / 4] & ~(0xffu << shift)) | ((value & 0xff) << shift);
}

void
Iss::step()
{
    if (isHalted)
        return;
    davf_assert(pcValue % 4 == 0 && pcValue < memBytes,
                "PC out of range: ", pcValue);
    const uint32_t instr = mem[pcValue / 4];
    const uint32_t opcode = bits(instr, 6, 0);
    const unsigned rd = bits(instr, 11, 7);
    const unsigned rs1 = bits(instr, 19, 15);
    const unsigned rs2 = bits(instr, 24, 20);
    const unsigned funct3 = bits(instr, 14, 12);
    const unsigned funct7 = bits(instr, 31, 25);
    const uint32_t a = regs[rs1];
    const uint32_t b = regs[rs2];

    uint32_t next_pc = pcValue + 4;
    uint32_t result = 0;
    bool write_rd = false;

    const auto imm_i = static_cast<uint32_t>(
        signExtend(bits(instr, 31, 20), 12));
    const auto imm_s = static_cast<uint32_t>(signExtend(
        (bits(instr, 31, 25) << 5) | bits(instr, 11, 7), 12));
    const auto imm_b = static_cast<uint32_t>(signExtend(
        (bit(instr, 31) << 12) | (bit(instr, 7) << 11)
            | (bits(instr, 30, 25) << 5) | (bits(instr, 11, 8) << 1),
        13));
    const uint32_t imm_u = instr & 0xfffff000u;
    const auto imm_j = static_cast<uint32_t>(signExtend(
        (bit(instr, 31) << 20) | (bits(instr, 19, 12) << 12)
            | (bit(instr, 20) << 11) | (bits(instr, 30, 21) << 1),
        21));

    auto alu = [&](unsigned f3, uint32_t operand, bool allow_sub,
                   bool alt) -> uint32_t {
        switch (f3) {
          case 0:
            return (allow_sub && alt) ? a - operand : a + operand;
          case 1:
            return a << (operand & 31);
          case 2:
            return static_cast<int32_t>(a)
                           < static_cast<int32_t>(operand)
                       ? 1
                       : 0;
          case 3:
            return a < operand ? 1 : 0;
          case 4:
            return a ^ operand;
          case 5:
            return alt ? static_cast<uint32_t>(
                       static_cast<int32_t>(a) >> (operand & 31))
                       : a >> (operand & 31);
          case 6:
            return a | operand;
          case 7:
            return a & operand;
        }
        return 0;
    };

    switch (opcode) {
      case 0x37: // LUI
        result = imm_u;
        write_rd = true;
        break;
      case 0x17: // AUIPC
        result = pcValue + imm_u;
        write_rd = true;
        break;
      case 0x6f: // JAL
        result = pcValue + 4;
        write_rd = true;
        next_pc = pcValue + imm_j;
        break;
      case 0x67: // JALR
        davf_assert(funct3 == 0, "bad JALR funct3");
        result = pcValue + 4;
        write_rd = true;
        next_pc = (a + imm_i) & ~1u;
        break;
      case 0x63: { // Branches
        bool taken = false;
        switch (funct3) {
          case 0: taken = a == b; break;
          case 1: taken = a != b; break;
          case 4:
            taken = static_cast<int32_t>(a) < static_cast<int32_t>(b);
            break;
          case 5:
            taken = static_cast<int32_t>(a) >= static_cast<int32_t>(b);
            break;
          case 6: taken = a < b; break;
          case 7: taken = a >= b; break;
          default: davf_fatal("bad branch funct3 at pc ", pcValue);
        }
        if (taken)
            next_pc = pcValue + imm_b;
        break;
      }
      case 0x03: // Loads
        switch (funct3) {
          case 0: result = load(a + imm_i, 0, true); break;
          case 2: result = load(a + imm_i, 2, false); break;
          case 4: result = load(a + imm_i, 0, false); break;
          default: davf_fatal("unsupported load funct3 ", funct3);
        }
        write_rd = true;
        break;
      case 0x23: // Stores
        switch (funct3) {
          case 0: store(a + imm_s, b, 0); break;
          case 2: store(a + imm_s, b, 2); break;
          default: davf_fatal("unsupported store funct3 ", funct3);
        }
        break;
      case 0x13: // ALU immediate
        result = alu(funct3, (funct3 == 1 || funct3 == 5) ? rs2 : imm_i,
                     false, funct7 == 0x20);
        write_rd = true;
        break;
      case 0x33: // ALU register (+ MUL from the M extension subset)
        if (funct7 == 0x01) {
            davf_assert(funct3 == 0,
                        "only MUL from the M extension is supported");
            result = a * b;
        } else {
            result = alu(funct3, b, true, funct7 == 0x20);
        }
        write_rd = true;
        break;
      default:
        davf_fatal("illegal instruction ", instr, " at pc ", pcValue);
    }

    if (write_rd && rd != 0)
        regs[rd] = result;
    pcValue = next_pc;
    ++instrCount;
}

bool
Iss::run(uint64_t max_instructions)
{
    for (uint64_t i = 0; i < max_instructions && !isHalted; ++i)
        step();
    return isHalted;
}

} // namespace davf
