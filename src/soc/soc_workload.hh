/**
 * @file
 * Workload adapter for IbexMini: program-visible behaviour is the MMIO
 * output trace plus the halt flag held in the behavioral memory, and the
 * architectural side state is the memory image (hashed incrementally).
 */

#ifndef DAVF_SOC_SOC_WORKLOAD_HH
#define DAVF_SOC_SOC_WORKLOAD_HH

#include "core/workload.hh"
#include "soc/ibex_mini.hh"
#include "util/logging.hh"

namespace davf {

/** Observes an IbexMini program through its behavioral memory. */
class SocWorkload : public Workload
{
  public:
    explicit SocWorkload(const IbexMini &soc, uint64_t max_cycles = 60000)
        : memCell(soc.netlist().findCell("mem")), maxCycles(max_cycles)
    {
        davf_assert(memCell != kInvalidId, "SoC has no memory cell");
    }

    bool
    done(const CycleSimulator &sim) const override
    {
        return memory(sim).halted();
    }

    std::vector<uint32_t>
    outputTrace(const CycleSimulator &sim) const override
    {
        return memory(sim).outputTrace();
    }

    uint64_t
    archHash(const CycleSimulator &sim) const override
    {
        return memory(sim).contentHash();
    }

    uint64_t maxGoldenCycles() const override { return maxCycles; }

    bool vectorizable() const override { return true; }

    bool
    done(const VecSimulator &sim, unsigned lane) const override
    {
        return memory(sim, lane).halted();
    }

    std::vector<uint32_t>
    outputTrace(const VecSimulator &sim, unsigned lane) const override
    {
        return memory(sim, lane).outputTrace();
    }

    uint64_t
    archHash(const VecSimulator &sim, unsigned lane) const override
    {
        return memory(sim, lane).contentHash();
    }

    /** The simulator-private memory instance. */
    const MemoryModel &
    memory(const CycleSimulator &sim) const
    {
        return static_cast<const MemoryModel &>(sim.behavModel(memCell));
    }

    /** One lane's private memory instance. */
    const MemoryModel &
    memory(const VecSimulator &sim, unsigned lane) const
    {
        return static_cast<const MemoryModel &>(
            sim.behavModel(memCell, lane));
    }

  private:
    CellId memCell;
    uint64_t maxCycles;
};

} // namespace davf

#endif // DAVF_SOC_SOC_WORKLOAD_HH
