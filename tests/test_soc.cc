/**
 * @file
 * Tests for the gate-level IbexMini core: co-simulation against the
 * reference ISS on all five Beebs benchmarks (output trace, register
 * file, data memory), the ECC-protected build, and randomized
 * constrained-random instruction co-simulation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/isa/assembler.hh"
#include "src/isa/benchmarks.hh"
#include "src/isa/iss.hh"
#include "src/soc/ibex_mini.hh"
#include "src/soc/soc_workload.hh"
#include "src/util/rng.hh"

namespace davf {
namespace {

struct SocRun
{
    std::vector<uint32_t> output;
    bool halted = false;
    uint64_t cycles = 0;
};

SocRun
runSoc(IbexMini &soc, CycleSimulator &sim, uint64_t max_cycles)
{
    SocWorkload workload(soc);
    while (!workload.done(sim) && sim.cycle() < max_cycles)
        sim.step();
    SocRun run;
    run.halted = workload.done(sim);
    run.output = workload.outputTrace(sim);
    run.cycles = sim.cycle();
    return run;
}

/** Full-architectural-state co-simulation of one program. */
void
cosimConfig(const std::string &source, const IbexMiniConfig &config,
            uint64_t max_cycles = 60000)
{
    const std::vector<uint32_t> image = assemble(source);

    Iss iss(image);
    ASSERT_TRUE(iss.run(max_cycles)) << "ISS did not halt";

    IbexMini soc(config, image);
    CycleSimulator sim(soc.netlist());
    const SocRun run = runSoc(soc, sim, max_cycles);
    ASSERT_TRUE(run.halted) << "core did not halt";

    EXPECT_EQ(run.output, iss.outputTrace());

    for (unsigned reg = 0; reg < 32; ++reg) {
        EXPECT_EQ(soc.readRegister(sim, reg), iss.reg(reg))
            << "x" << reg;
    }

    SocWorkload workload(soc);
    const MemoryModel &memory = workload.memory(sim);
    ASSERT_EQ(memory.words().size(), iss.memWords().size());
    for (size_t word = 0; word < memory.words().size(); ++word) {
        ASSERT_EQ(memory.words()[word], iss.memWords()[word])
            << "memory word " << word;
    }
}

void
cosim(const std::string &source, bool ecc, uint64_t max_cycles = 60000)
{
    IbexMiniConfig config;
    config.eccRegfile = ecc;
    cosimConfig(source, config, max_cycles);
}

TEST(IbexMini, BuildsWithPaperStructures)
{
    IbexMini soc({}, {});
    for (const char *name :
         {"ALU", "Decoder", "Regfile", "LSU", "Prefetch"}) {
        const Structure *structure = soc.structures().find(name);
        ASSERT_NE(structure, nullptr) << name;
        EXPECT_FALSE(structure->wires.empty()) << name;
    }
    // The ALU and decoder are logic-only structures (paper §VI-A).
    EXPECT_TRUE(soc.structures().find("ALU")->flops.empty());
    EXPECT_TRUE(soc.structures().find("Decoder")->flops.empty());
    // The register file is a flop array.
    EXPECT_EQ(soc.structures().find("Regfile")->flops.size(), 31u * 32u);
}

TEST(IbexMini, EccRegfileIsWider)
{
    IbexMini plain({}, {});
    IbexMiniConfig config;
    config.eccRegfile = true;
    IbexMini ecc(config, {});
    EXPECT_EQ(ecc.structures().find("Regfile")->flops.size(),
              31u * 38u);
    EXPECT_GT(ecc.structures().find("Regfile")->wires.size(),
              plain.structures().find("Regfile")->wires.size());
}

TEST(IbexMini, ExecutesMinimalProgram)
{
    cosim(R"(
  li a0, 123
  li t6, 0x10000
  sw a0, 0(t6)
  sw x0, 4(t6)
hang:
  j hang
)",
          false, 2000);
}

TEST(IbexMini, LoadsStoresAndBytes)
{
    cosim(R"(
  la a1, buf
  li a0, 0x11223344
  sw a0, 0(a1)
  lbu a2, 1(a1)
  li a0, 0x7f
  sb a0, 3(a1)
  lb a3, 3(a1)
  lw a4, 0(a1)
  li t6, 0x10000
  sw a2, 0(t6)
  sw a3, 0(t6)
  sw a4, 0(t6)
  sw x0, 4(t6)
hang:
  j hang
buf: .space 8
)",
          false, 2000);
}

TEST(IbexMini, BranchesTakenAndNotTaken)
{
    cosim(R"(
  li a0, 0
  li a1, 5
  li a2, 0
loop:
  add a0, a0, a2
  addi a2, a2, 1
  blt a2, a1, loop
  beq a0, a1, never     # 0+1+2+3+4 = 10 != 5: not taken
  addi a0, a0, 100
never:
  li t6, 0x10000
  sw a0, 0(t6)
  sw x0, 4(t6)
hang:
  j hang
)",
          false, 2000);
}

TEST(IbexMini, JalrAndCallStack)
{
    cosim(R"(
  li sp, 0xff00
  li a0, 3
  call triple
  li t6, 0x10000
  sw a0, 0(t6)
  sw x0, 4(t6)
hang:
  j hang
triple:
  add a1, a0, a0
  add a0, a1, a0
  ret
)",
          false, 2000);
}

class BeebsOnCore
    : public ::testing::TestWithParam<std::tuple<std::string, bool>>
{};

TEST_P(BeebsOnCore, MatchesIssArchitecturally)
{
    const auto &[name, ecc] = GetParam();
    const BenchmarkProgram &program = beebsBenchmark(name);
    cosim(program.source, ecc);
}

INSTANTIATE_TEST_SUITE_P(
    All, BeebsOnCore,
    ::testing::Combine(::testing::Values("md5", "bubblesort",
                                         "libstrstr", "libfibcall",
                                         "matmult"),
                       ::testing::Bool()),
    [](const auto &info) {
        return std::get<0>(info.param)
            + (std::get<1>(info.param) ? "_ecc" : "_plain");
    });

TEST(IbexMini, BenchmarkOutputsMatchGroundTruth)
{
    // Independent of the ISS: the gate-level core must reproduce the
    // C++-computed expected outputs.
    for (const BenchmarkProgram &program : beebsBenchmarks()) {
        IbexMini soc({}, assemble(program.source));
        CycleSimulator sim(soc.netlist());
        const SocRun run = runSoc(soc, sim, 60000);
        ASSERT_TRUE(run.halted) << program.name;
        EXPECT_EQ(run.output, program.expectedOutput) << program.name;
    }
}

/** Constrained-random straight-line program generator. */
std::string
randomProgram(uint64_t seed)
{
    Rng rng(seed);
    std::ostringstream out;
    out << "  li sp, 0xff00\n  li s0, 0x8000\n";
    // Working registers x16..x26 (leaving s0/sp/t6 untouched so memory
    // accesses stay within RAM and the MMIO protocol stays intact).
    const int lo = 16;
    const int hi = 26;
    for (int reg = lo; reg <= hi; ++reg) {
        out << "  li x" << reg << ", "
            << static_cast<int32_t>(rng.next32()) << "\n";
    }
    auto reg = [&]() { return lo + static_cast<int>(rng.below(hi - lo + 1)); };

    static const char *rr_ops[] = {"add", "sub", "and", "or",  "xor",
                                   "sll", "srl", "sra", "slt", "sltu"};
    static const char *ri_ops[] = {"addi", "andi", "ori",
                                   "xori", "slti", "sltiu"};
    static const char *sh_ops[] = {"slli", "srli", "srai"};

    int label = 0;
    for (int i = 0; i < 60; ++i) {
        switch (rng.below(6)) {
          case 0:
            out << "  " << rr_ops[rng.below(std::size(rr_ops))] << " x"
                << reg() << ", x" << reg() << ", x" << reg() << "\n";
            break;
          case 1:
            out << "  " << ri_ops[rng.below(std::size(ri_ops))] << " x"
                << reg() << ", x" << reg() << ", "
                << static_cast<int>(rng.below(4096)) - 2048 << "\n";
            break;
          case 2:
            out << "  " << sh_ops[rng.below(std::size(sh_ops))] << " x"
                << reg() << ", x" << reg() << ", " << rng.below(32)
                << "\n";
            break;
          case 3:
            out << "  sw x" << reg() << ", " << 4 * rng.below(16)
                << "(s0)\n";
            break;
          case 4:
            out << "  lw x" << reg() << ", " << 4 * rng.below(16)
                << "(s0)\n";
            break;
          default: {
            // Short forward branch over one instruction.
            const char *cond = rng.chance(0.5) ? "beq" : "bne";
            out << "  " << cond << " x" << reg() << ", x" << reg()
                << ", L" << label << "\n";
            out << "  addi x" << reg() << ", x" << reg() << ", 1\n";
            out << "L" << label << ":\n";
            ++label;
            break;
          }
        }
    }

    out << "  li t6, 0x10000\n";
    for (int r = lo; r <= hi; ++r)
        out << "  sw x" << r << ", 0(t6)\n";
    out << "  sw x0, 4(t6)\nhang:\n  j hang\n";
    return out.str();
}

class RandomCosim : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RandomCosim, CoreMatchesIss)
{
    cosim(randomProgram(GetParam()), false, 5000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCosim,
                         ::testing::Range<uint64_t>(1, 13));

TEST(RandomCosim, EccCoreMatchesIss)
{
    for (uint64_t seed = 100; seed < 103; ++seed)
        cosim(randomProgram(seed), true, 5000);
}

TEST(IbexMini, MulStructureOnlyWhenEnabled)
{
    IbexMini plain({}, {});
    EXPECT_EQ(plain.structures().find("MUL"), nullptr);

    IbexMiniConfig config;
    config.enableMul = true;
    IbexMini with_mul(config, {});
    const Structure *mul = with_mul.structures().find("MUL");
    ASSERT_NE(mul, nullptr);
    EXPECT_FALSE(mul->wires.empty());
    EXPECT_FALSE(mul->flops.empty()); // cnt/acc/mcand/mplier registers.
    // The option must not perturb the paper-configuration netlist.
    EXPECT_GT(with_mul.netlist().numCells(), plain.netlist().numCells());
}

TEST(IbexMini, HardwareMulMatchesIss)
{
    IbexMiniConfig config;
    config.enableMul = true;
    cosimConfig(R"(
  li a1, 1234
  li a2, 5678
  mul a0, a1, a2
  li a3, -7
  mul a4, a0, a3
  li a5, 0x10001
  mul a6, a5, a5
  li t6, 0x10000
  sw a0, 0(t6)
  sw a4, 0(t6)
  sw a6, 0(t6)
  sw x0, 4(t6)
hang:
  j hang
)",
                config, 4000);
}

TEST(IbexMini, HardwareMulLatencyIsIterative)
{
    IbexMiniConfig config;
    config.enableMul = true;
    const char *program = R"(
  li a1, 3
  li a2, 5
  mul a0, a1, a2
  li t6, 0x10000
  sw a0, 0(t6)
  sw x0, 4(t6)
hang:
  j hang
)";
    IbexMini soc(config, assemble(program));
    CycleSimulator sim(soc.netlist());
    const SocRun run = runSoc(soc, sim, 4000);
    ASSERT_TRUE(run.halted);
    EXPECT_EQ(run.output, (std::vector<uint32_t>{15}));
    // ~8 instructions, one taking 33 cycles.
    EXPECT_GT(run.cycles, 33u);
    EXPECT_LT(run.cycles, 80u);
}

TEST(IbexMini, RandomProgramsWithMul)
{
    Rng rng(2718);
    for (int trial = 0; trial < 4; ++trial) {
        std::ostringstream out;
        out << "  li t6, 0x10000\n";
        for (int reg = 16; reg <= 20; ++reg) {
            out << "  li x" << reg << ", "
                << static_cast<int32_t>(rng.next32()) << "\n";
        }
        for (int i = 0; i < 12; ++i) {
            const int rd = 16 + static_cast<int>(rng.below(5));
            const int rs1 = 16 + static_cast<int>(rng.below(5));
            const int rs2 = 16 + static_cast<int>(rng.below(5));
            const char *op = rng.chance(0.4) ? "mul"
                : rng.chance(0.5) ? "add"
                                  : "xor";
            out << "  " << op << " x" << rd << ", x" << rs1 << ", x"
                << rs2 << "\n";
        }
        for (int reg = 16; reg <= 20; ++reg)
            out << "  sw x" << reg << ", 0(t6)\n";
        out << "  sw x0, 4(t6)\nhang:\n  j hang\n";

        IbexMiniConfig config;
        config.enableMul = true;
        cosimConfig(out.str(), config, 4000);
    }
}

TEST(IbexMini, ExtraWorkloadsMatchIss)
{
    for (const BenchmarkProgram &program : extraBenchmarks())
        cosim(program.source, false);
}

TEST(IbexMini, CycleCountsAreReasonable)
{
    // Table II analogue: the 2-stage core should take roughly 1-3
    // cycles per instruction.
    for (const BenchmarkProgram &program : beebsBenchmarks()) {
        const std::vector<uint32_t> image = assemble(program.source);
        Iss iss(image);
        ASSERT_TRUE(iss.run(200000));

        IbexMini soc({}, image);
        CycleSimulator sim(soc.netlist());
        const SocRun run = runSoc(soc, sim, 80000);
        ASSERT_TRUE(run.halted);
        EXPECT_GT(run.cycles, iss.instructionsExecuted());
        EXPECT_LT(run.cycles, 4 * iss.instructionsExecuted());
    }
}

} // namespace
} // namespace davf
