#!/bin/sh
# Tier-1 CI gate: build the tree in the default (RelWithDebInfo)
# configuration and under address+undefined sanitizers, and run the
# full ctest suite in both. Any failure fails the script.
#
# Usage: tools/ci_check.sh [jobs]
set -eu

jobs="${1:-$(nproc 2>/dev/null || echo 4)}"
root="$(cd "$(dirname "$0")/.." && pwd)"

run_config() {
    build_dir="$1"
    shift
    echo "=== configure $build_dir ($*)" >&2
    cmake -B "$build_dir" -S "$root" "$@"
    echo "=== build $build_dir" >&2
    cmake --build "$build_dir" -j "$jobs"
    echo "=== test $build_dir" >&2
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

run_config "$root/build-ci-release" -DCMAKE_BUILD_TYPE=Release
run_config "$root/build-ci-asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDAVF_SANITIZE=address,undefined

echo "=== ci_check: all configurations passed" >&2
