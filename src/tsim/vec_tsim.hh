/**
 * @file
 * Lane-parallel event-driven cone simulation.
 *
 * Batches many faulted-wire re-simulations of the *same* injection cycle
 * against one shared golden CycleWaveforms, mirroring the bit-parallel
 * lane model of src/sim/vec_sim.hh: lane 0 carries the fault-free golden
 * run, lane i+1 simulates wire i with its delay increased by d, and every
 * event carries a (mask, values) pair of uint64_t words so one pass over
 * the merged event queue advances every lane at once.
 *
 * The merged simulation runs over the *union* of the per-lane fanout
 * cones. Two structural facts make per-lane results exact:
 *
 *  - A cell in the union but outside lane L's cone has all of its lane-L
 *    inputs following the golden waveforms (the lane's fault cannot reach
 *    it), so its recomputed lane-L output *is* the golden waveform of its
 *    net — delivering it downstream is identical to the scalar path's
 *    boundary replay of the recorded golden events, because both are the
 *    same chain of floating-point additions over the same event times.
 *  - Within a group of events at exactly equal times, the final pin
 *    values, the final scheduled value of every net, and therefore every
 *    latched endpoint value are invariant under reordering; only the
 *    (unobserved) intermediate emission order differs. Merging the lanes
 *    into one queue therefore cannot change what any lane latches.
 *
 * The per-lane faulted pin is handled by exclusion: deliveries along the
 * faulted wire mask out its lane, which instead receives its own replay
 * of the golden events shifted by wireDelay + d — exactly the scalar
 * simulateCone boundary treatment.
 *
 * Results are bit-identical to scalar TimedSimulator::simulateCone for
 * every lane: same LatchedPin sets, in the same order.
 */

#ifndef DAVF_TSIM_VEC_TSIM_HH
#define DAVF_TSIM_VEC_TSIM_HH

#include <cstdint>
#include <queue>
#include <span>
#include <unordered_map>
#include <vector>

#include "tsim/timed_sim.hh"

namespace davf {

/** Lane-parallel counterpart of TimedSimulator::simulateCone. */
class VecTimedSimulator
{
  public:
    /** Lanes per batch, including the golden lane 0. */
    static constexpr unsigned kMaxLanes = 64;

    explicit VecTimedSimulator(const DelayModel &delays);

    /** Largest number of faulted wires one batch accepts. */
    static constexpr size_t maxWiresPerBatch() { return kMaxLanes - 1; }

    /**
     * Re-simulate the fanout cones of up to 63 faulted wires at once,
     * each with its wire delay increased by @p extra_delay, replaying
     * @p golden at the cone boundaries.
     *
     * @param golden        waveforms from simulateCycle for the cycle
     *                      (must satisfy the sorted-events invariant).
     * @param wires         the faulted wires; lane i+1 simulates
     *                      wires[i]. Size in [1, maxWiresPerBatch()].
     * @param extra_delay   the SDF duration d (shared by the batch).
     * @param period        the clock period.
     * @param latched       resized to wires.size(); latched[i] receives
     *                      exactly what scalar simulateCone(golden,
     *                      wires[i], extra_delay, period) would.
     * @param golden_latched optional: the union endpoint set with the
     *                      value each pin latches in the *fault-free*
     *                      lane 0 — every entry must agree with
     *                      goldenPinValueAtEdge (test cross-check).
     */
    void simulateCones(const CycleWaveforms &golden,
                       std::span<const WireId> wires, double extra_delay,
                       double period,
                       std::vector<std::vector<LatchedPin>> &latched,
                       std::vector<LatchedPin> *golden_latched = nullptr);

    const DelayModel &delayModel() const { return *delays; }

  private:
    /** A (mask, values) word pair arriving at one input pin. */
    struct LaneEvent
    {
        double time;
        uint64_t sequence; ///< FIFO tie-break, as in the scalar queue.
        CellId cell;
        uint16_t pin;
        uint64_t mask;   ///< Lanes for which this delivery is real.
        uint64_t values; ///< Per-lane values (read under mask only).
    };

    struct LaneEventLater
    {
        bool
        operator()(const LaneEvent &a, const LaneEvent &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.sequence > b.sequence;
        }
    };

    /** One tracked endpoint pin of the union cone. */
    struct EndpointSlot
    {
        CellId cell;
        uint16_t pin;
        uint64_t word; ///< Per-lane latched value.
    };

    const DelayModel *delays;
    const Netlist *nl;

    std::priority_queue<LaneEvent, std::vector<LaneEvent>, LaneEventLater>
        queue;

    /** @name Per-batch scratch, persistent across calls */
    /// @{
    std::vector<uint64_t> pinWords;  ///< 3 words per cell.
    std::vector<uint64_t> schedWords;
    std::vector<uint8_t> inUnion;
    std::vector<uint64_t> excl; ///< Per-wire lane-exclusion masks.
    std::vector<WireId> exclTouched;
    std::vector<CellId> unionCells;
    std::vector<std::vector<CellId>> laneCones;
    std::vector<std::vector<uint32_t>> laneEndpoints;
    std::vector<EndpointSlot> endpoints;
    std::unordered_map<uint64_t, uint32_t> endpointIndex;
    std::vector<StateElemId> reachedScratch;
    /// @}
};

} // namespace davf

#endif // DAVF_TSIM_VEC_TSIM_HH
