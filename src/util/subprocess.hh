/**
 * @file
 * Child-process plumbing for the supervised campaign executor.
 *
 * A Subprocess is a fork/exec'd worker wired to the parent by two
 * pipes (parent->child on the child's stdin, child->parent on the
 * child's stdout; stderr is inherited). Messages travel as
 * **length-prefixed frames** (4-byte little-endian length + payload),
 * so a reader never sees a torn message and binary payloads are safe.
 *
 * The parent side reads with a wall-clock deadline (poll(2)), decodes
 * exit status vs. termination signal, captures rusage (peak RSS, CPU
 * time) from wait4(2), and can escalate SIGTERM -> SIGKILL on a wedged
 * child. spawn() can apply an address-space rlimit in the child so a
 * leaking worker dies with std::bad_alloc instead of OOM-killing the
 * machine.
 *
 * The free functions writeFrameFd()/readFrameFd() are the child-side
 * half of the protocol, usable on plain file descriptors.
 */

#ifndef DAVF_UTIL_SUBPROCESS_HH
#define DAVF_UTIL_SUBPROCESS_HH

#include <sys/types.h>

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace davf {

/** Largest accepted frame payload; bigger prefixes mean a corrupt or
 *  hostile stream and are rejected with DavfError{BadInput}. */
inline constexpr size_t kMaxFrameBytes = 64u << 20;

/** How Subprocess::spawn sets the child up. */
struct SpawnOptions
{
    /** RLIMIT_AS cap in MiB applied in the child; 0 = unlimited.
     *  Note: incompatible with AddressSanitizer's shadow mappings. */
    size_t memLimitMb = 0;
};

/** Decoded wait4() status plus resource usage. */
struct ExitStatus
{
    bool exited = false;   ///< Normal exit; @c code is valid.
    int code = 0;
    bool signaled = false; ///< Killed by a signal; @c signal is valid.
    int signal = 0;

    long maxRssKb = 0;     ///< Peak resident set (ru_maxrss).
    double userSec = 0.0;  ///< CPU seconds in user mode.
    double sysSec = 0.0;   ///< CPU seconds in kernel mode.

    /** Human-readable one-liner: "exited with code 3" etc. */
    std::string describe() const;
};

/** Append one length-prefixed frame to @p fd (throws DavfError{Io}). */
void writeFrameFd(int fd, std::string_view payload);

/**
 * Blocking child-side frame read from @p fd. Returns false on a clean
 * EOF before any frame byte; throws DavfError{BadInput} on a torn or
 * oversized frame and DavfError{Io} on a read error.
 */
bool readFrameFd(int fd, std::string &out);

/** A supervised child process (see file comment). */
class Subprocess
{
  public:
    Subprocess() = default;
    Subprocess(const Subprocess &) = delete;
    Subprocess &operator=(const Subprocess &) = delete;

    /** SIGKILLs and reaps a still-running child. */
    ~Subprocess();

    /** Absolute path of the running executable (/proc/self/exe). */
    static std::string selfExePath();

    /**
     * Fork/exec @p argv (argv[0] is the executable path; PATH is not
     * searched). Throws DavfError{Io} on failure. The child's stdin and
     * stdout become the IPC pipes; stderr is inherited.
     */
    void spawn(const std::vector<std::string> &argv,
               const SpawnOptions &options = {});

    /** A child has been spawned and not yet reaped. */
    bool running() const { return childPid > 0 && !status; }

    pid_t pid() const { return childPid; }

    /** Send one frame to the child (throws DavfError{Io} if it died). */
    void sendFrame(std::string_view payload);

    enum class ReadStatus : uint8_t {
        Frame,   ///< A complete frame was read into @c out.
        Eof,     ///< The child closed its end (it exited or crashed).
        Timeout, ///< No complete frame arrived before the deadline.
    };

    /**
     * Read one frame with a wall-clock budget of @p timeout_ms
     * (<= 0 polls once without blocking). Partial frame bytes are kept
     * across calls, so a Timeout does not lose data.
     */
    ReadStatus readFrame(std::string &out, double timeout_ms);

    /** Close the write end: EOF on the child's stdin. */
    void closeWrite();

    /** Blocking reap; returns the decoded status (cached once reaped). */
    ExitStatus wait();

    /**
     * SIGTERM, wait up to @p grace_ms for exit, then SIGKILL and reap.
     * No-op (returns the cached status) if already reaped.
     */
    ExitStatus terminate(double grace_ms);

  private:
    void closeFds();

    pid_t childPid = -1;
    int toChild = -1;
    int fromChild = -1;
    std::string rxBuffer; ///< Bytes read but not yet framed.
    std::optional<ExitStatus> status;
};

} // namespace davf

#endif // DAVF_UTIL_SUBPROCESS_HH
