/**
 * @file
 * Tests for result serialization (CSV and JSON reports).
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "src/core/report.hh"
#include "src/util/json.hh"

namespace davf {
namespace {

DelayAvfResult
sampleResult()
{
    DelayAvfResult result;
    result.delayAvf = 0.125;
    result.orDelayAvf = 0.0625;
    result.staticWireFraction = 0.75;
    result.dynamicWireFraction = 0.5;
    result.groupAceWireFraction = 0.25;
    result.injections = 800;
    result.staticInjections = 600;
    result.errorInjections = 200;
    result.multiBitInjections = 40;
    result.delayAceInjections = 100;
    result.sdc = 70;
    result.due = 30;
    result.aceInterference = 5;
    result.aceCompounding = 3;
    result.wiresInjected = 100;
    result.cyclesInjected = 8;
    return result;
}

TEST(Report, CsvHeaderAndRowFieldCountsMatch)
{
    const std::string header = delayAvfCsvHeader();
    const std::string row =
        delayAvfCsvRow("md5", "ALU", 0.5, sampleResult());
    const auto count_commas = [](const std::string &text) {
        return std::count(text.begin(), text.end(), ',');
    };
    EXPECT_EQ(count_commas(header), count_commas(row));
    EXPECT_NE(row.find("md5,ALU,0.5,0.125"), std::string::npos);
    EXPECT_NE(row.find(",70,30,"), std::string::npos); // sdc, due.
}

TEST(Report, SavfCsv)
{
    SavfResult savf;
    savf.savf = 0.25;
    savf.injections = 400;
    savf.aceInjections = 100;
    savf.sdc = 60;
    savf.due = 40;
    const std::string header = savfCsvHeader();
    const std::string row = savfCsvRow("bubblesort", "Regfile", savf);
    EXPECT_EQ(std::count(header.begin(), header.end(), ','),
              std::count(row.begin(), row.end(), ','));
    EXPECT_EQ(row, "bubblesort,Regfile,0.25,400,100,60,40");
}

TEST(Report, JsonIsWellFormedEnough)
{
    const std::string json =
        delayAvfJson("md5", "ALU", 0.5, sampleResult());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_NE(json.find("\"delayavf\":0.125"), std::string::npos);
    EXPECT_NE(json.find("\"sdc\":70"), std::string::npos);

    SavfResult savf;
    savf.savf = 1.0;
    savf.injections = 4;
    savf.aceInjections = 4;
    savf.sdc = 4;
    const std::string savf_json = savfJson("x", "y", savf);
    EXPECT_NE(savf_json.find("\"savf\":1"), std::string::npos);
}

TEST(Report, NonFiniteDoublesBecomeJsonNull)
{
    // Regression: ostream << NaN prints `nan` (or `-nan(ind)`), which
    // is not a JSON token and breaks every downstream consumer. The
    // JSON emitters now map any non-finite double to `null`.
    DelayAvfResult result = sampleResult();
    result.delayAvf = std::numeric_limits<double>::quiet_NaN();
    result.orDelayAvf = std::numeric_limits<double>::infinity();
    result.staticWireFraction = -std::numeric_limits<double>::infinity();

    const std::string json = delayAvfJson(
        "md5", "ALU", std::numeric_limits<double>::quiet_NaN(), result);
    EXPECT_NE(json.find("\"delayavf\":null"), std::string::npos) << json;
    EXPECT_NE(json.find("\"ordelayavf\":null"), std::string::npos);
    EXPECT_NE(json.find("\"static_frac\":null"), std::string::npos);
    EXPECT_NE(json.find("\"d\":null"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_EQ(json.find("inf"), std::string::npos);

    SavfResult savf;
    savf.savf = std::numeric_limits<double>::quiet_NaN();
    const std::string savf_json = savfJson("x", "y", savf);
    EXPECT_NE(savf_json.find("\"savf\":null"), std::string::npos);
}

TEST(Report, JsonWithNonFiniteFieldsStillParses)
{
    // Round trip through the strict validator: a report row poisoned
    // with every kind of non-finite value must still be valid JSON.
    ReportRow davf_row;
    davf_row.kind = "davf";
    davf_row.benchmark = "md5";
    davf_row.structure = "ALU";
    davf_row.delayFraction = std::numeric_limits<double>::infinity();
    davf_row.davf = sampleResult();
    davf_row.davf.delayAvf = std::numeric_limits<double>::quiet_NaN();
    davf_row.davf.dynamicWireFraction =
        -std::numeric_limits<double>::infinity();

    ReportRow savf_row;
    savf_row.kind = "savf";
    savf_row.benchmark = "md5";
    savf_row.structure = "ALU";
    savf_row.savf.savf = std::numeric_limits<double>::quiet_NaN();

    const std::string json = reportJson({davf_row, savf_row});
    const JsonCheck check = jsonValidate(json);
    EXPECT_TRUE(check.valid) << check.message << " at offset "
                             << check.offset << " in: " << json;

    // A well-formed report stays well-formed too (the guard must not
    // perturb finite values).
    const std::string clean =
        delayAvfJson("md5", "ALU", 0.5, sampleResult());
    EXPECT_TRUE(jsonValidate(clean));
    EXPECT_NE(clean.find("\"delayavf\":0.125"), std::string::npos);
}

TEST(Report, LabelsAreSanitized)
{
    // Labels with CSV metacharacters are quoted per RFC 4180: wrapped
    // in double quotes, internal quotes doubled, content preserved.
    const std::string row =
        savfCsvRow("evil,label", "str\"uct", SavfResult{});
    EXPECT_EQ(row.rfind("\"evil,label\",\"str\"\"uct\",", 0), 0u) << row;
    // Simple labels pass through byte-identical — no spurious quoting.
    const std::string plain = savfCsvRow("md5", "ALU", SavfResult{});
    EXPECT_EQ(plain.rfind("md5,ALU,", 0), 0u);
}

TEST(Report, CsvPreservesInstructionOperands)
{
    // Regression: the old escaper silently dropped commas and
    // newlines, so an instruction label like "lw x1, 8(x2)" came out
    // as "lw x1 8(x2)" — a different instruction. RFC 4180 quoting
    // keeps the operand list intact for any CSV reader.
    const std::string row =
        savfCsvRow("md5", "lw x1, 8(x2)", SavfResult{});
    EXPECT_NE(row.find("\"lw x1, 8(x2)\""), std::string::npos) << row;

    DelayAvfResult result = sampleResult();
    result.attrValid = true;
    DelayAvfResult::AttrRow attr;
    attr.pc = 0x24;
    attr.mnemonic = "lw x1, 8(x2)";
    attr.injections = 60;
    attr.delayAce = 2;
    attr.firstCorruptions = 2;
    attr.destinations["x1"] = 2;
    result.attribution.push_back(attr);

    const std::string attr_csv =
        attributionCsvRows("md5", "LSU", 0.5, result);
    EXPECT_NE(attr_csv.find("\"lw x1, 8(x2)\""), std::string::npos)
        << attr_csv;
    EXPECT_NE(attr_csv.find("0x00000024"), std::string::npos);
    EXPECT_NE(attr_csv.find("x1:2"), std::string::npos);
    const std::string header = attributionCsvHeader();
    const std::string first =
        attr_csv.substr(0, attr_csv.find('\n'));
    // The quoted mnemonic's internal comma must not add a column.
    EXPECT_EQ(std::count(header.begin(), header.end(), ','),
              std::count(first.begin(), first.end(), ',')
                  - 1 /* the comma inside the quoted operand */);

    // No table, no rows: callers append unconditionally.
    EXPECT_EQ(attributionCsvRows("md5", "LSU", 0.5, sampleResult()), "");
}

TEST(Report, JsonCarriesAttributionTable)
{
    DelayAvfResult result = sampleResult();
    result.attrValid = true;
    DelayAvfResult::AttrRow row;
    row.pc = 0x40;
    row.mnemonic = "addi x12, x12, -1";
    row.injections = 60;
    row.delayAce = 7;
    row.firstCorruptions = 7;
    row.destinations["x12"] = 6;
    row.destinations["mem"] = 1;
    result.attribution.push_back(row);

    const std::string json = delayAvfJson("popcount", "ALU", 0.5, result);
    const JsonCheck check = jsonValidate(json);
    EXPECT_TRUE(check.valid) << check.message << " in: " << json;
    EXPECT_NE(json.find("\"attribution\":[{\"pc\":\"0x00000040\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"mnemonic\":\"addi x12, x12, -1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"first_corruptions\":7"), std::string::npos);
    EXPECT_NE(json.find("\"destinations\":{\"mem\":1,\"x12\":6}"),
              std::string::npos);

    // Attribution off: the section is absent, bytes unchanged.
    const std::string plain =
        delayAvfJson("popcount", "ALU", 0.5, sampleResult());
    EXPECT_EQ(plain.find("attribution"), std::string::npos);
}

} // namespace
} // namespace davf
