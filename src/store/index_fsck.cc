#include "index_fsck.hh"

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <unordered_map>

#include <unistd.h>

#include "store/hash_index.hh"
#include "store/index_store.hh"
#include "store/layout.hh"
#include "store/migrate.hh"
#include "store/segment_file.hh"
#include "util/atomic_file.hh"
#include "util/crashpoint.hh"
#include "util/logging.hh"

namespace davf::store {

namespace {

namespace fs = std::filesystem;

/** A garbled frame found by classification (repair quarantines it). */
struct GarbledFrame
{
    uint64_t offset = 0;
    uint64_t bytes = 0; ///< Full padded frame length.
};

/** Everything one read-only classification pass learned. */
struct Classified
{
    IndexFsckReport report;
    std::vector<GarbledFrame> garbled;
    uint64_t tailOffset = 0; ///< Valid only when tornTailBytes > 0.
};

bool
isLegacyRecordName(const std::string &name)
{
    return name.rfind("r-", 0) == 0 && name.size() > 6
        && name.compare(name.size() - 4, 4, ".rec") == 0;
}

Classified
classify(const std::string &dir)
{
    Classified out;
    IndexFsckReport &report = out.report;

    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
        davf_throw(ErrorKind::Io, "store dir '", dir,
                   "' is not a directory");
    }
    bool haveIndexFile = false;
    bool haveDataFile = false;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        const std::string name = it->path().filename().string();
        if (!it->is_regular_file(ec)) {
            if (name != "quarantine")
                ++report.foreign;
            continue;
        }
        if (name == kIndexFileName)
            haveIndexFile = true;
        else if (name == kDataFileName)
            haveDataFile = true;
        else if (name == kSplitJournalName)
            report.tornSplit = true;
        else if (name == kLockFileName)
            ; // Infrastructure, not data.
        else if (isLegacyRecordName(name))
            ++report.legacyStrays;
        else
            ++report.foreign;
    }
    if (ec) {
        davf_throw(ErrorKind::Io, "cannot enumerate store dir '", dir,
                   "': ", ec.message());
    }
    if (report.tornSplit) {
        report.notes.push_back(
            "torn split: leftover " + std::string(kSplitJournalName)
            + " (process died mid-split; index must be rebuilt)");
    }

    // The index: load it the same way a reopen would. A leftover
    // journal already condemns it, so don't double-report.
    std::unordered_map<uint64_t, BucketSlot> byHash;
    HashIndex index;
    bool indexUsable = false;
    if (!haveIndexFile) {
        if (haveDataFile) {
            report.staleIndex = true;
            report.notes.push_back(
                "stale index: index.davf missing (rebuild required)");
        }
    } else if (!report.tornSplit) {
        auto loaded =
            index.load(dir, dir + "/" + std::string(kIndexFileName));
        if (loaded) {
            indexUsable = true;
            index.forEachSlot([&](const BucketSlot &slot) {
                byHash[slot.hash] = slot;
            });
        } else {
            report.staleIndex = true;
            report.notes.push_back(std::string("stale index: ")
                                   + loaded.error().what());
        }
    }

    // The segment file: full scan, cross-checked against the slots.
    std::unordered_map<uint64_t, uint64_t> matchedAt; // hash -> offset
    if (haveDataFile) {
        SegmentFile segments;
        segments.open(dir + "/" + std::string(kDataFileName));
        const SegmentFile::ScanStats scanned = segments.scan(
            0,
            [&](uint64_t offset, const FrameHeader &header,
                bool bodyValid) {
                if (!bodyValid) {
                    ++report.garbledFrames;
                    out.garbled.push_back(
                        {offset, frameBytes(header.size)});
                    report.notes.push_back(
                        "garbled frame at offset "
                        + std::to_string(offset));
                    return;
                }
                if (!indexUsable) {
                    ++report.validFrames;
                    return;
                }
                const auto slot = byHash.find(header.keyHash);
                if (slot != byHash.end()
                    && slot->second.offset == offset
                    && slot->second.size == header.size) {
                    ++report.validFrames;
                    matchedAt[header.keyHash] = offset;
                } else if (slot != byHash.end()) {
                    ++report.superseded;
                } else {
                    ++report.unindexed;
                }
            });
        if (scanned.tornTail) {
            report.tornTailBytes = segments.size() - scanned.tailOffset;
            out.tailOffset = scanned.tailOffset;
            report.notes.push_back(
                "torn tail: " + std::to_string(report.tornTailBytes)
                + " unframeable bytes at offset "
                + std::to_string(scanned.tailOffset));
        }
    }
    if (indexUsable) {
        index.forEachSlot([&](const BucketSlot &slot) {
            if (matchedAt.find(slot.hash) == matchedAt.end()) {
                ++report.staleEntries;
                report.notes.push_back(
                    "stale index entry: hash "
                    + std::to_string(slot.hash) + " -> offset "
                    + std::to_string(slot.offset)
                    + " holds no valid frame");
            }
        });
    }
    if (report.unindexed > 0) {
        report.notes.push_back(
            std::to_string(report.unindexed)
            + " valid frame(s) not reachable through the index "
              "(un-replayed tail; reopen or repair replays them)");
    }
    if (report.legacyStrays > 0) {
        report.notes.push_back(
            std::to_string(report.legacyStrays)
            + " legacy record file(s) alongside the index "
              "(served via fallback; 'davf_store migrate' absorbs "
              "them)");
    }
    index.close();
    std::sort(report.notes.begin(), report.notes.end());
    return out;
}

/** Move the split journal into quarantine (evidence, not deleted). */
uint64_t
quarantineJournal(const std::string &dir)
{
    const fs::path journal = fs::path(dir) / kSplitJournalName;
    std::error_code ec;
    if (!fs::exists(journal, ec))
        return 0;
    const fs::path qdir = fs::path(dir) / "quarantine";
    fs::create_directories(qdir, ec);
    fs::path target = qdir / kSplitJournalName;
    for (int n = 1; fs::exists(target, ec); ++n) {
        target = qdir
            / (std::string(kSplitJournalName) + "."
               + std::to_string(n));
    }
    fs::rename(journal, target, ec);
    if (ec) {
        davf_throw(ErrorKind::Io, "cannot quarantine '",
                   journal.string(), "': ", ec.message());
    }
    return 1;
}

/**
 * Quarantine then neutralize every garbled frame: the bytes move to
 * `quarantine/frame-<offset>.bin` as evidence, and the region is
 * zeroed so later scans resync past it instead of re-reporting it
 * (the dead space itself is reclaimed by compact).
 */
uint64_t
quarantineGarbledFrames(const std::string &dir,
                        const std::vector<GarbledFrame> &frames)
{
    if (frames.empty())
        return 0;
    uint64_t quarantined = 0;
    SegmentFile segments;
    segments.open(dir + "/" + std::string(kDataFileName));
    const std::string qdir = dir + "/quarantine";
    std::error_code ec;
    fs::create_directories(qdir, ec);
    if (ec) {
        davf_throw(ErrorKind::Io, "cannot create '", qdir, "': ",
                   ec.message());
    }
    for (const GarbledFrame &frame : frames) {
        auto bytes = segments.readRaw(frame.offset, frame.bytes);
        if (!bytes) {
            davf_warn("cannot read garbled frame at offset ",
                      frame.offset, " for quarantine: ",
                      bytes.error().what());
            continue;
        }
        writeFileAtomic(qdir + "/frame-" + std::to_string(frame.offset)
                            + ".bin",
                        bytes.value());
        segments.zeroRange(frame.offset, frame.bytes);
        ++quarantined;
    }
    return quarantined;
}

} // namespace

bool
IndexFsckReport::clean() const
{
    return !tornSplit && !staleIndex && staleEntries == 0
        && unindexed == 0 && garbledFrames == 0 && tornTailBytes == 0;
}

IndexFsckReport
fsckIndexStore(const std::string &dir, const IndexFsckOptions &options)
{
    static const crashpoint::CrashPoint repair_point("fsck.repair");

    Classified first = classify(dir);
    if (!options.repair || first.report.clean())
        return first.report;

    repair_point.fire();

    uint64_t quarantined = 0;
    quarantined += quarantineGarbledFrames(dir, first.garbled);
    bool rebuilt = false;
    if (first.report.tornSplit || first.report.staleIndex
        || first.report.staleEntries > 0) {
        // The index is derived data — the segment file is the
        // evidence — so condemning it costs nothing but a rebuild.
        quarantined += quarantineJournal(dir);
        const std::string indexPath =
            dir + "/" + std::string(kIndexFileName);
        if (::unlink(indexPath.c_str()) != 0 && errno != ENOENT) {
            davf_throw(ErrorKind::Io, "cannot remove stale index '",
                       indexPath, "'");
        }
        rebuilt = true;
    }
    const bool hadTornTail = first.report.tornTailBytes > 0;
    {
        // Opening the store performs the remaining repairs: rebuild
        // or tail replay, torn-tail quarantine + truncate, and a
        // clean checkpoint. It also takes the index lock, so repair
        // cannot race a live server.
        IndexStore store({.dir = dir});
        if (hadTornTail)
            ++quarantined; // The tail-<offset>.bin evidence file.
        rebuilt = rebuilt || store.stats().rebuilds > 0;
    }

    Classified after = classify(dir);
    after.report.quarantined = quarantined;
    after.report.rebuilt = rebuilt;
    return after.report;
}

IndexFsckReport
compactIndexStoreDir(const std::string &dir)
{
    // Absorb legacy strays first so the rewrite covers them, then
    // repair so the live set the rewrite keeps is sound.
    const MigrateReport migrated = migrateStore(dir);
    IndexFsckReport repaired = fsckIndexStore(dir, {.repair = true});

    uint64_t reclaimed = 0;
    {
        IndexStore store({.dir = dir});
        reclaimed = store.compact();
    }

    Classified final = classify(dir);
    final.report.migrated = migrated.migrated;
    final.report.quarantined =
        repaired.quarantined + migrated.quarantined;
    final.report.rebuilt = true;
    final.report.reclaimedBytes = reclaimed;
    return final.report;
}

} // namespace davf::store
