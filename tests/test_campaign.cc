/**
 * @file
 * Tests for the resilience layer:
 *
 *  - the recoverable error taxonomy (DavfError kinds, Result<T>,
 *    library errors that used to exit());
 *  - atomic file writes;
 *  - checkpoint serialization: bit-exact double round-trips, rejection
 *    of corrupt/mismatched journals;
 *  - campaign checkpoint/resume: an interrupted-then-resumed sweep
 *    reproduces the uninterrupted journal and CSV byte-for-byte, at a
 *    different thread count;
 *  - per-injection fault isolation: timeouts become skip accounting,
 *    excessive failure rates fail the cell but not the campaign;
 *  - the cooperative SIGINT/SIGTERM stop flag.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/campaign/campaign.hh"
#include "src/campaign/checkpoint.hh"
#include "src/campaign/stop.hh"
#include "src/core/vulnerability.hh"
#include "src/isa/benchmarks.hh"
#include "src/util/atomic_file.hh"
#include "src/util/error.hh"
#include "tests/helpers.hh"

namespace davf {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "davf_test_"
        + std::to_string(::getpid()) + "_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(file)) << path;
    std::ostringstream os;
    os << file.rdbuf();
    return os.str();
}

// ---------------------------------------------------------------- errors

TEST(ErrorTaxonomy, KindsHaveStableNames)
{
    EXPECT_EQ(errorKindName(ErrorKind::Timeout), "timeout");
    EXPECT_EQ(errorKindName(ErrorKind::NotFound), "not-found");
    EXPECT_EQ(errorKindName(ErrorKind::ExcessiveFailures),
              "excessive-failures");
}

TEST(ErrorTaxonomy, ResultCarriesValueOrError)
{
    const auto ok = Result<int>::Ok(42);
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.value(), 42);

    const auto err = Result<int>::Err(ErrorKind::Io, "disk on fire");
    EXPECT_FALSE(err.ok());
    EXPECT_EQ(err.error().kind(), ErrorKind::Io);
    EXPECT_THROW(err.value(), DavfError);
}

TEST(ErrorTaxonomy, UnknownBenchmarkThrowsNotFound)
{
    // Used to davf_fatal (uncatchable); a sweep driver must be able to
    // catch it.
    try {
        beebsBenchmark("no-such-benchmark");
        FAIL() << "expected DavfError";
    } catch (const DavfError &error) {
        EXPECT_EQ(error.kind(), ErrorKind::NotFound);
    }
}

TEST(ErrorTaxonomy, OutOfRangeDelayThrows)
{
    const auto circuit = test::makeRandomCircuit(3, 6, 24, 8);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");
    try {
        engine.delayAvf(structure, 5.0);
        FAIL() << "expected DavfError";
    } catch (const DavfError &error) {
        EXPECT_EQ(error.kind(), ErrorKind::OutOfRange);
    }
}

// ----------------------------------------------------------- atomic file

TEST(AtomicFile, WritesContentsAndLeavesNoTemporary)
{
    const std::string path = tempPath("atomic.txt");
    writeFileAtomic(path, "first");
    EXPECT_EQ(slurp(path), "first");
    writeFileAtomic(path, "second");
    EXPECT_EQ(slurp(path), "second");
    // The temporary is pid-suffixed; it must be gone after the rename.
    std::ifstream tmp(path + ".tmp." + std::to_string(::getpid()));
    EXPECT_FALSE(static_cast<bool>(tmp));
    std::remove(path.c_str());
}

TEST(AtomicFile, UnwritablePathThrowsIo)
{
    try {
        writeFileAtomic("/no-such-dir-davf/x.txt", "y");
        FAIL() << "expected DavfError";
    } catch (const DavfError &error) {
        EXPECT_EQ(error.kind(), ErrorKind::Io);
    }
}

// ------------------------------------------------------------ checkpoint

Checkpoint
sampleCheckpoint()
{
    Checkpoint checkpoint;
    checkpoint.configHash = "feedc0de";

    CheckpointCell davf_cell;
    davf_cell.key = {"davf", "md5", "ALU", canonicalDelay(1.0 / 3.0)};
    davf_cell.davf.delayAvf = 1.0 / 3.0;
    davf_cell.davf.orDelayAvf = 0.1;
    davf_cell.davf.staticWireFraction = 5e-324; // subnormal
    davf_cell.davf.dynamicWireFraction = 0.25;
    davf_cell.davf.injections = 1234;
    davf_cell.davf.sdc = 3;
    davf_cell.davf.skippedErrors = 2;
    davf_cell.davf.skipReasons = {{"timeout", 1}, {"exception", 1}};
    checkpoint.cells.push_back(davf_cell);

    CheckpointCell failed_cell;
    failed_cell.key = {"davf", "md5", "LSU", canonicalDelay(0.5)};
    failed_cell.failed = true;
    failed_cell.failReason = "structure 'LSU': too many failures";
    checkpoint.cells.push_back(failed_cell);

    CheckpointCell savf_cell;
    savf_cell.key = {"savf", "md5", "ALU", canonicalDelay(0.0)};
    savf_cell.savf.savf = 0.7;
    savf_cell.savf.injections = 64;
    savf_cell.savf.aceInjections = 44;
    checkpoint.cells.push_back(savf_cell);

    checkpoint.hasPartial = true;
    checkpoint.partialKey = {"davf", "md5", "Regfile",
                             canonicalDelay(0.7)};
    InjectionCycleOutcome outcome;
    outcome.cycle = 17;
    outcome.injections = 40;
    outcome.delayAce = 4;
    outcome.skippedErrors = 1;
    outcome.skipReasons = {{"timeout", 1}};
    outcome.wireDyn = {1, 0, 1, 1};
    outcome.wireAce = {0, 0, 1, 0};
    checkpoint.partialCycles.push_back(outcome);
    return checkpoint;
}

TEST(CheckpointFormat, RoundTripsBitExactly)
{
    const Checkpoint before = sampleCheckpoint();
    const std::string text = serializeCheckpoint(before);
    const Result<Checkpoint> parsed = parseCheckpoint(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error().what();
    const Checkpoint &after = parsed.value();

    EXPECT_EQ(after.configHash, before.configHash);
    ASSERT_EQ(after.cells.size(), before.cells.size());
    // Hexfloat serialization must be bit-exact, including subnormals.
    EXPECT_EQ(after.cells[0].davf.delayAvf, before.cells[0].davf.delayAvf);
    EXPECT_EQ(after.cells[0].davf.staticWireFraction, 5e-324);
    EXPECT_EQ(after.cells[0].davf.skipReasons,
              before.cells[0].davf.skipReasons);
    EXPECT_TRUE(after.cells[1].failed);
    EXPECT_EQ(after.cells[1].failReason, before.cells[1].failReason);
    EXPECT_EQ(after.cells[2].savf.aceInjections, 44u);
    ASSERT_TRUE(after.hasPartial);
    EXPECT_TRUE(after.partialKey == before.partialKey);
    ASSERT_EQ(after.partialCycles.size(), 1u);
    EXPECT_TRUE(after.partialCycles[0] == before.partialCycles[0]);

    // Serialization is deterministic.
    EXPECT_EQ(serializeCheckpoint(after), text);
}

TEST(CheckpointFormat, RejectsCorruptInput)
{
    EXPECT_FALSE(parseCheckpoint("").ok());
    EXPECT_FALSE(parseCheckpoint("davf-checkpoint v999\nend\n").ok());
    EXPECT_FALSE(
        parseCheckpoint("davf-checkpoint v1\nconfig abc\n").ok())
        << "truncated journal (no end record) must be rejected";
    EXPECT_FALSE(
        parseCheckpoint("davf-checkpoint v1\nconfig abc\nwat\nend\n")
            .ok());
    EXPECT_FALSE(
        parseCheckpoint(
            "davf-checkpoint v1\nconfig abc\ncell davf b s 0.1 ok\nend\n")
            .ok())
        << "cell with missing result fields must be rejected";
    EXPECT_FALSE(parseCheckpoint("davf-checkpoint v1\nend\n").ok())
        << "journal without a config record must be rejected";
}

TEST(CheckpointFormat, SaveLoadRoundTrips)
{
    const std::string path = tempPath("journal.ckpt");
    const Checkpoint before = sampleCheckpoint();
    saveCheckpoint(path, before);
    const Result<Checkpoint> loaded = loadCheckpoint(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(serializeCheckpoint(loaded.value()),
              serializeCheckpoint(before));
    std::remove(path.c_str());

    EXPECT_FALSE(loadCheckpoint(tempPath("absent.ckpt")).ok());
}

// -------------------------------------------------------------- campaign

struct CampaignFixture
{
    test::RandomCircuit circuit;
    std::unique_ptr<VulnerabilityEngine> engine;
    std::unique_ptr<StructureRegistry> registry;

    explicit CampaignFixture(uint64_t seed = 11)
        : circuit(test::makeRandomCircuit(seed, 8, 40, 12))
    {
        engine = std::make_unique<VulnerabilityEngine>(
            *circuit.netlist, CellLibrary::defaultLibrary(),
            *circuit.workload);
        registry = std::make_unique<StructureRegistry>(*circuit.netlist);
        registry->add("Rnd", "rnd/");
    }

    CampaignOptions options() const
    {
        CampaignOptions opts;
        opts.benchmark = "rndtrace";
        opts.structures = {"Rnd"};
        opts.delays = {0.3, 0.6, 0.9};
        opts.runSavf = true;
        opts.sampling.maxInjectionCycles = 4;
        opts.sampling.maxWires = 30;
        opts.sampling.maxFlops = 8;
        opts.sampling.seed = 5;
        return opts;
    }
};

TEST(Campaign, UnknownStructureThrowsNotFound)
{
    CampaignFixture fixture;
    CampaignOptions opts = fixture.options();
    opts.structures = {"NoSuchUnit"};
    Campaign campaign(*fixture.engine, *fixture.registry, opts);
    try {
        campaign.run();
        FAIL() << "expected DavfError";
    } catch (const DavfError &error) {
        EXPECT_EQ(error.kind(), ErrorKind::NotFound);
    }
}

TEST(Campaign, ResumeRejectsForeignJournal)
{
    CampaignFixture fixture;
    const std::string path = tempPath("foreign.ckpt");
    Checkpoint foreign;
    foreign.configHash = "0123456789abcdef"; // not this campaign's hash
    saveCheckpoint(path, foreign);

    CampaignOptions opts = fixture.options();
    opts.checkpointPath = path;
    opts.resume = true;
    Campaign campaign(*fixture.engine, *fixture.registry, opts);
    try {
        campaign.run();
        FAIL() << "expected DavfError";
    } catch (const DavfError &error) {
        EXPECT_EQ(error.kind(), ErrorKind::BadArgument);
    }
    std::remove(path.c_str());
}

TEST(Campaign, InterruptedResumeIsBitIdenticalAcrossThreadCounts)
{
    const std::string ref_ckpt = tempPath("ref.ckpt");
    const std::string ref_csv = tempPath("ref.csv");
    const std::string cut_ckpt = tempPath("cut.ckpt");
    const std::string cut_csv = tempPath("cut.csv");

    // Reference: uninterrupted, 1 thread.
    {
        CampaignFixture fixture;
        CampaignOptions opts = fixture.options();
        opts.sampling.threads = 1;
        opts.checkpointPath = ref_ckpt;
        opts.csvPath = ref_csv;
        Campaign campaign(*fixture.engine, *fixture.registry, opts);
        const CampaignSummary summary = campaign.run();
        EXPECT_FALSE(summary.interrupted);
        EXPECT_EQ(summary.cellsComputed, 4u); // 3 delays + sAVF
        EXPECT_EQ(summary.cellsFailed, 0u);
    }

    // Interrupted mid-sweep: raise the stop flag after a few journal
    // writes (journal writes happen after every injection cycle, so
    // this lands inside a cell).
    std::atomic<bool> stop{false};
    uint64_t saves = 0;
    {
        CampaignFixture fixture;
        CampaignOptions opts = fixture.options();
        opts.sampling.threads = 2;
        opts.checkpointPath = cut_ckpt;
        opts.csvPath = cut_csv;
        opts.stopFlag = &stop;
        opts.onCheckpointSaved = [&] {
            if (++saves == 3)
                stop.store(true);
        };
        Campaign campaign(*fixture.engine, *fixture.registry, opts);
        const CampaignSummary summary = campaign.run();
        EXPECT_TRUE(summary.interrupted);
        EXPECT_LT(summary.cellsComputed, 4u);
    }
    ASSERT_GE(saves, 3u);

    // Resume at a different thread count; result must be byte-identical
    // to the uninterrupted reference — journal and CSV.
    {
        CampaignFixture fixture;
        CampaignOptions opts = fixture.options();
        opts.sampling.threads = 3;
        opts.checkpointPath = cut_ckpt;
        opts.csvPath = cut_csv;
        opts.resume = true;
        Campaign campaign(*fixture.engine, *fixture.registry, opts);
        const CampaignSummary summary = campaign.run();
        EXPECT_FALSE(summary.interrupted);
        EXPECT_EQ(summary.cells.size(), 4u);
        EXPECT_GT(summary.cellsFromCheckpoint
                      + summary.cellsComputed, 0u);
    }

    EXPECT_EQ(slurp(cut_ckpt), slurp(ref_ckpt));
    EXPECT_EQ(slurp(cut_csv), slurp(ref_csv));

    // Resuming a fully complete journal recomputes nothing.
    {
        CampaignFixture fixture;
        CampaignOptions opts = fixture.options();
        opts.checkpointPath = ref_ckpt;
        opts.resume = true;
        Campaign campaign(*fixture.engine, *fixture.registry, opts);
        const CampaignSummary summary = campaign.run();
        EXPECT_EQ(summary.cellsComputed, 0u);
        EXPECT_EQ(summary.cellsFromCheckpoint, 4u);
    }

    for (const auto &path : {ref_ckpt, ref_csv, cut_ckpt, cut_csv})
        std::remove(path.c_str());
}

TEST(Campaign, TimeoutsBecomeSkipsNotCrashes)
{
    CampaignFixture fixture;
    CampaignOptions opts = fixture.options();
    opts.delays = {0.6};
    opts.runSavf = false;
    // An impossible per-injection budget: every continuation times out.
    opts.injectionTimeoutMs = 1e-6;
    opts.maxFailureRate = 1.0; // tolerate them all
    Campaign campaign(*fixture.engine, *fixture.registry, opts);
    const CampaignSummary summary = campaign.run();
    ASSERT_EQ(summary.cells.size(), 1u);
    const DelayAvfResult &result = summary.cells[0].davf;
    EXPECT_FALSE(summary.cells[0].failed);
    EXPECT_GT(result.skippedErrors, 0u);
    EXPECT_GT(result.skipReasons.count("timeout"), 0u);
    // Skipped injections leave the denominator.
    EXPECT_LE(result.skippedErrors, result.injections);
}

TEST(Campaign, ExcessiveFailuresFailTheCellNotTheCampaign)
{
    CampaignFixture fixture;
    CampaignOptions opts = fixture.options();
    opts.runSavf = false;
    opts.injectionTimeoutMs = 1e-6; // force a ~100% failure rate
    opts.maxFailureRate = 0.01;
    Campaign campaign(*fixture.engine, *fixture.registry, opts);
    const CampaignSummary summary = campaign.run();
    ASSERT_EQ(summary.cells.size(), 3u);
    EXPECT_EQ(summary.cellsFailed, 3u);
    for (const CampaignCellResult &cell : summary.cells) {
        EXPECT_TRUE(cell.failed);
        EXPECT_NE(cell.failReason.find("injections failed"),
                  std::string::npos)
            << cell.failReason;
    }
    EXPECT_FALSE(summary.interrupted)
        << "failed cells must not abort the sweep";
}

TEST(Campaign, PresetStopFlagInterruptsBeforeWork)
{
    CampaignFixture fixture;
    std::atomic<bool> stop{true};
    CampaignOptions opts = fixture.options();
    opts.stopFlag = &stop;
    Campaign campaign(*fixture.engine, *fixture.registry, opts);
    const CampaignSummary summary = campaign.run();
    EXPECT_TRUE(summary.interrupted);
    EXPECT_EQ(summary.cellsComputed, 0u);
}

TEST(StopFlag, SigintRaisesTheFlagCooperatively)
{
    const std::atomic<bool> &flag = installStopHandlers();
    resetStopFlag();
    EXPECT_FALSE(flag.load());
    ::raise(SIGINT); // first signal: cooperative, no process exit
    EXPECT_TRUE(flag.load());
    resetStopFlag();
    EXPECT_FALSE(flag.load());
}

} // namespace
} // namespace davf
