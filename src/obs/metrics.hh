/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and value
 * histograms with lock-free hot paths (docs/OBSERVABILITY.md).
 *
 * Design constraints, in priority order:
 *
 *  1. **Never perturb results.** Collection only ever writes to metric
 *     storage — reports, checkpoints, and store records are byte-identical
 *     with metrics on or off. The engine guards any bookkeeping that
 *     allocates behind MetricsRegistry::enabled().
 *  2. **Compiled-in but cheap.** Collection is disabled by default; a
 *     disabled Counter::add() is one relaxed atomic load. Enabled
 *     counters add with a relaxed fetch_add on a per-thread cache-line
 *     stripe, so hot loops never contend on a shared line and never
 *     take a lock.
 *  3. **Deterministic snapshots.** A snapshot's *content* (which metrics
 *     exist, and every count not derived from a clock) is identical
 *     across thread counts and across the scalar and vector engines.
 *     Only metrics whose name ends in `_ns` or `_ms` carry wall-time and
 *     are exempt (docs/OBSERVABILITY.md).
 *
 * Registration (name -> state) takes a mutex but happens once per metric
 * per process: call sites keep a static Counter/Gauge/ValueHistogram
 * handle and pay only the stripe add afterwards.
 */

#ifndef DAVF_OBS_METRICS_HH
#define DAVF_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace davf::obs {

/** Number of cache-line stripes each counter spreads its adds over. */
constexpr size_t kStripes = 16;

/** Number of power-of-two buckets in a ValueHistogram (bit widths 0..64). */
constexpr size_t kHistBuckets = 65;

namespace detail {

/** One cache line holding one stripe's partial sum. */
struct alignas(64) Stripe {
    std::atomic<uint64_t> value{0};
};

/** Index of the calling thread's stripe (stable for the thread's life). */
size_t threadStripe();

/** Striped monotonic sum. Stable address for the process lifetime. */
struct CounterState {
    std::array<Stripe, kStripes> stripes;

    void
    add(uint64_t delta)
    {
        stripes[threadStripe()].value.fetch_add(delta,
                                                std::memory_order_relaxed);
    }

    uint64_t total() const;
    void reset();
};

/** Last-writer-wins signed value. */
struct GaugeState {
    std::atomic<int64_t> value{0};
};

/** Power-of-two-bucket histogram of uint64 samples. */
struct HistogramState {
    std::array<std::atomic<uint64_t>, kHistBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};

    void observe(uint64_t sample);
    void reset();
};

} // namespace detail

/** Point-in-time copy of one histogram's buckets. */
struct HistogramSnapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, kHistBuckets> buckets{};
};

/**
 * Point-in-time copy of the whole registry, keyed by metric name.
 * std::map keeps iteration (and thus serialisation) order deterministic.
 */
struct MetricsSnapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /**
     * Serialise as a JSON object (schema `davf-metrics v1`). Histogram
     * buckets are emitted sparsely as [lo, hi, count) triples; non-finite
     * values cannot occur (everything is integral).
     */
    std::string toJson() const;
};

/** The process-wide registry. See the file comment for the contract. */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    /** Whether collection is on. One relaxed load; safe in hot loops. */
    static bool
    enabled()
    {
        return collecting.load(std::memory_order_relaxed);
    }

    /** Turn collection on or off process-wide. */
    static void setEnabled(bool on);

    /** Register (or look up) a metric by name. The pointer never moves. */
    detail::CounterState *counter(std::string_view name);
    detail::GaugeState *gauge(std::string_view name);
    detail::HistogramState *histogram(std::string_view name);

    /** Copy every registered metric's current value. */
    MetricsSnapshot snapshot() const;

    /**
     * Zero every registered value (registrations survive). Test support:
     * callers must guarantee no concurrent collection.
     */
    void reset();

  private:
    MetricsRegistry() = default;

    static std::atomic<bool> collecting;

    struct Impl;
    Impl &impl() const;
};

/**
 * A named counter handle. Construct once (typically as a function-local
 * static) and call add() from any thread.
 */
class Counter
{
  public:
    explicit Counter(std::string_view name)
        : state(MetricsRegistry::instance().counter(name))
    {}

    void
    add(uint64_t delta = 1) const
    {
        if (MetricsRegistry::enabled())
            state->add(delta);
    }

  private:
    detail::CounterState *state;
};

/** A named gauge handle (last-writer-wins signed value). */
class Gauge
{
  public:
    explicit Gauge(std::string_view name)
        : state(MetricsRegistry::instance().gauge(name))
    {}

    void
    set(int64_t value) const
    {
        if (MetricsRegistry::enabled())
            state->value.store(value, std::memory_order_relaxed);
    }

    void
    add(int64_t delta) const
    {
        if (MetricsRegistry::enabled())
            state->value.fetch_add(delta, std::memory_order_relaxed);
    }

  private:
    detail::GaugeState *state;
};

/** A named histogram handle over uint64 samples (power-of-two buckets). */
class ValueHistogram
{
  public:
    explicit ValueHistogram(std::string_view name)
        : state(MetricsRegistry::instance().histogram(name))
    {}

    void
    observe(uint64_t sample) const
    {
        if (MetricsRegistry::enabled())
            state->observe(sample);
    }

  private:
    detail::HistogramState *state;
};

/**
 * RAII phase timer: accumulates the scope's wall time (in nanoseconds)
 * into @p counter on destruction. The counter's name must end in `_ns`
 * so snapshot-determinism checks know to skip it. Costs one relaxed
 * load when collection is disabled.
 */
class ScopedTimeNs
{
  public:
    explicit ScopedTimeNs(const Counter &counter)
        : counter(counter), active(MetricsRegistry::enabled()),
          start_ns(active ? nowNs() : 0)
    {}

    ~ScopedTimeNs()
    {
        if (active)
            counter.add(nowNs() - start_ns);
    }

    ScopedTimeNs(const ScopedTimeNs &) = delete;
    ScopedTimeNs &operator=(const ScopedTimeNs &) = delete;

    /** Monotonic nanoseconds since an arbitrary process-stable origin. */
    static uint64_t nowNs();

  private:
    const Counter &counter;
    bool active;
    uint64_t start_ns;
};

} // namespace davf::obs

#endif // DAVF_OBS_METRICS_HH
