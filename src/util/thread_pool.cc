#include "thread_pool.hh"

#include <algorithm>

namespace davf {

void
parallelFor(size_t count, const std::function<void(size_t)> &body,
            unsigned num_threads)
{
    if (count == 0)
        return;
    if (num_threads == 0)
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    num_threads = static_cast<unsigned>(
        std::min<size_t>(num_threads, count));

    if (num_threads <= 1) {
        for (size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    std::atomic<size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const size_t index = next.fetch_add(1);
            if (index >= count)
                return;
            body(index);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(num_threads - 1);
    for (unsigned t = 0; t + 1 < num_threads; ++t)
        threads.emplace_back(worker);
    worker();
    for (auto &thread : threads)
        thread.join();
}

} // namespace davf
