/**
 * @file
 * The append-only segment data file backing the indexed result store
 * (`segments.davf`, see store/layout.hh for the frame grammar).
 *
 * This file is the single source of truth for an indexed store: the
 * hash index only accelerates locating frames inside it, and can
 * always be rebuilt from a sequential scan. Appends are pwrite()s at a
 * tracked logical offset (re-appending over a failed partial write is
 * self-healing), optionally made durable with fdatasync; reads are
 * safe from any number of threads concurrently with one appender.
 *
 * Reads of frames that existed when the file was opened are served
 * from a read-only MAP_SHARED mapping — no syscalls on the lookup hot
 * path; frames appended since (beyond the mapped length) fall back to
 * positional pread()s. Superseded mappings are retired, not unmapped,
 * until close, so a lock-free reader can never touch unmapped memory.
 *
 * The `index.append` crash point (util/crashpoint.hh) guards every
 * append with the same payload-damage contract as atomic_file.write:
 * `torn` publishes a frame prefix and dies, `garble` publishes a
 * flipped byte and dies, `enospc` stops mid-write and throws like a
 * full disk.
 */

#ifndef DAVF_STORE_SEGMENT_FILE_HH
#define DAVF_STORE_SEGMENT_FILE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "store/layout.hh"
#include "util/error.hh"

namespace davf::store {

/** Append-only framed record file (see file comment). */
class SegmentFile
{
  public:
    SegmentFile() = default;
    ~SegmentFile();

    SegmentFile(const SegmentFile &) = delete;
    SegmentFile &operator=(const SegmentFile &) = delete;

    /**
     * Open (creating if absent) the segment file at @p path. The
     * logical append offset starts at the current file size; callers
     * that discover a torn tail via scan() trim it with truncateTo().
     * Throws DavfError{Io} if the file cannot be opened.
     */
    void open(const std::string &path);

    bool isOpen() const { return fd >= 0; }

    /** Logical size: where the next frame will land. */
    uint64_t size() const { return appendOffset; }

    /**
     * Append one record (the v2 text form) framed and padded; returns
     * the frame's offset. Throws DavfError{Io} on a write failure (the
     * logical offset is not advanced, so the next append overwrites
     * the partial frame). Fires the `index.append` crash point.
     */
    uint64_t append(std::string_view record, uint64_t keyHash);

    /**
     * Read and fully verify the frame at @p offset: frame header
     * checks, body checksum, and (when nonzero) the expected record
     * size from the index slot. Err{BadInput} for any damage —
     * the caller treats it as a corrupt record, i.e. a miss.
     */
    Result<std::string> read(uint64_t offset, uint32_t expectSize) const;

    /**
     * Zero-copy variant of read(): the returned view points into the
     * mapping when the frame is covered by it (valid until the file is
     * closed), or into @p scratch after a pread fallback. Same
     * verification and errors as read().
     */
    Result<std::string_view> readView(uint64_t offset,
                                      uint32_t expectSize,
                                      std::string &scratch) const;

    /** What a sequential scan found. */
    struct ScanStats
    {
        uint64_t valid = 0;       ///< Frames with a valid body.
        uint64_t garbled = 0;     ///< Frames whose body checksum failed.
        uint64_t skippedBytes = 0; ///< Unframeable bytes resynced over.
        uint64_t tailOffset = 0;  ///< First byte not covered by a frame.
        bool tornTail = false;    ///< Unframeable bytes reach EOF.
    };

    /**
     * Scan frames from @p from (a frame boundary), calling
     * @p fn(offset, header, bodyValid) for each frame found. Damage in
     * the middle of the file is resynchronised over (frames are
     * 16-byte aligned and header-checksummed); damage that reaches EOF
     * is the torn tail, reported in the result. Never throws on
     * damage.
     */
    ScanStats scan(uint64_t from,
                   const std::function<void(uint64_t offset,
                                            const FrameHeader &header,
                                            bool bodyValid)> &fn) const;

    /**
     * Raw bytes [offset, offset+size) with no framing interpretation
     * (tail quarantining). Err{Io} if unreadable.
     */
    Result<std::string> readRaw(uint64_t offset, uint64_t size) const;

    /**
     * Overwrite [offset, offset+size) with zeros (fsck neutralizing a
     * quarantined garbled frame: zeros are unframeable, so later scans
     * resync past the region instead of re-reporting it as damage).
     */
    void zeroRange(uint64_t offset, uint64_t size);

    /** fdatasync the file (checkpoint barrier). */
    void sync() const;

    /**
     * Trim the logical and physical size to @p offset (torn-tail
     * repair; the caller quarantines the bytes first).
     */
    void truncateTo(uint64_t offset);

    /**
     * Round the logical append offset up to the frame alignment (used
     * when a torn tail could not be quarantined: later frames must
     * stay on the grid a resyncing scan walks).
     */
    void alignAppend();

    /** Per-append fdatasync (on by default; benches may disable). */
    bool syncAppends = true;

    void close();

  private:
    void mapFile(uint64_t size);
    void retireMap();

    int fd = -1;
    uint64_t appendOffset = 0;
    std::string path;

    /// Read-only mapping of the first @ref mapLen bytes (see file
    /// comment); null when the file was empty at open or mmap failed.
    const char *mapBase = nullptr;
    uint64_t mapLen = 0;
    /// Superseded mappings, kept alive for concurrent readers until
    /// close (same retirement discipline as HashIndex directories).
    std::vector<std::pair<void *, size_t>> retiredMaps;
};

} // namespace davf::store

#endif // DAVF_STORE_SEGMENT_FILE_HH
