/**
 * @file
 * Small bit-manipulation helpers shared across the library.
 */

#ifndef DAVF_UTIL_BITS_HH
#define DAVF_UTIL_BITS_HH

#include <cstdint>

namespace davf {

/** Extract bits [hi:lo] (inclusive, hi >= lo) of a 32-bit value. */
constexpr uint32_t
bits(uint32_t value, unsigned hi, unsigned lo)
{
    const uint32_t span = hi - lo + 1;
    const uint32_t mask = span >= 32 ? ~0u : ((1u << span) - 1u);
    return (value >> lo) & mask;
}

/** Extract a single bit of a 32-bit value. */
constexpr uint32_t
bit(uint32_t value, unsigned pos)
{
    return (value >> pos) & 1u;
}

/** Sign-extend the low @p width bits of @p value to 32 bits. */
constexpr int32_t
signExtend(uint32_t value, unsigned width)
{
    const unsigned shift = 32 - width;
    return static_cast<int32_t>(value << shift) >> shift;
}

/** Parity (XOR reduction) of a 32-bit value. */
constexpr uint32_t
parity32(uint32_t value)
{
    value ^= value >> 16;
    value ^= value >> 8;
    value ^= value >> 4;
    value ^= value >> 2;
    value ^= value >> 1;
    return value & 1u;
}

/** Ceiling of log2 for sizing address/select buses; clog2(1) == 0. */
constexpr unsigned
clog2(uint64_t value)
{
    unsigned result = 0;
    uint64_t capacity = 1;
    while (capacity < value) {
        capacity <<= 1;
        ++result;
    }
    return result;
}

/** True iff @p value is a power of two (zero excluded). */
constexpr bool
isPowerOfTwo(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

} // namespace davf

#endif // DAVF_UTIL_BITS_HH
