/**
 * @file
 * A minimal work-stealing-free thread pool with a parallel-for helper.
 *
 * The paper notes that DelayAVF's simulations are "heavily parallelizable
 * in practice" (§V-B); the vulnerability engine fans injection cycles out
 * across this pool.
 */

#ifndef DAVF_UTIL_THREAD_POOL_HH
#define DAVF_UTIL_THREAD_POOL_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace davf {

/**
 * Run @p body(index) for every index in [0, count) using up to
 * @p num_threads workers (0 means hardware concurrency). The calling
 * thread participates. Bodies must be independent.
 *
 * If a body throws, no further indices are scheduled, all workers are
 * joined, and the first exception is rethrown on the calling thread
 * (indices not yet started may therefore never run).
 */
void parallelFor(size_t count, const std::function<void(size_t)> &body,
                 unsigned num_threads = 0);

} // namespace davf

#endif // DAVF_UTIL_THREAD_POOL_HH
