#include "subprocess.hh"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/logging.hh"

namespace davf {

namespace {

uint64_t
steadyNowMs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
decodeRusage(const struct rusage &ru, ExitStatus &status)
{
    status.maxRssKb = ru.ru_maxrss;
    status.userSec = static_cast<double>(ru.ru_utime.tv_sec)
        + static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
    status.sysSec = static_cast<double>(ru.ru_stime.tv_sec)
        + static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
}

ExitStatus
decodeWait(int wstatus, const struct rusage &ru)
{
    ExitStatus status;
    if (WIFEXITED(wstatus)) {
        status.exited = true;
        status.code = WEXITSTATUS(wstatus);
    } else if (WIFSIGNALED(wstatus)) {
        status.signaled = true;
        status.signal = WTERMSIG(wstatus);
    }
    decodeRusage(ru, status);
    return status;
}

void
closeQuiet(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

std::string
ExitStatus::describe() const
{
    if (exited)
        return "exited with code " + std::to_string(code);
    if (signaled) {
        const char *name = ::strsignal(signal);
        return "killed by signal " + std::to_string(signal) + " ("
            + (name ? name : "?") + ")";
    }
    return "in unknown state";
}

void
writeFrameFd(int fd, std::string_view payload)
{
    davf_assert(payload.size() <= kMaxFrameBytes,
                "frame payload too large: ", payload.size());
    uint8_t header[4];
    const auto size = static_cast<uint32_t>(payload.size());
    header[0] = static_cast<uint8_t>(size);
    header[1] = static_cast<uint8_t>(size >> 8);
    header[2] = static_cast<uint8_t>(size >> 16);
    header[3] = static_cast<uint8_t>(size >> 24);

    std::string wire(reinterpret_cast<const char *>(header), 4);
    wire.append(payload);
    size_t sent = 0;
    while (sent < wire.size()) {
        const ssize_t n =
            ::write(fd, wire.data() + sent, wire.size() - sent);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            davf_throw(ErrorKind::Io, "frame write failed: ",
                       std::strerror(errno));
        }
        sent += static_cast<size_t>(n);
    }
}

namespace {

/** Decode a 4-byte little-endian length prefix. */
uint32_t
frameLength(const std::string &buffer)
{
    return static_cast<uint32_t>(static_cast<uint8_t>(buffer[0]))
        | static_cast<uint32_t>(static_cast<uint8_t>(buffer[1])) << 8
        | static_cast<uint32_t>(static_cast<uint8_t>(buffer[2])) << 16
        | static_cast<uint32_t>(static_cast<uint8_t>(buffer[3])) << 24;
}

/**
 * Pop one complete frame out of @p buffer if present. Throws
 * DavfError{BadInput} on an oversized length prefix.
 */
bool
popFrame(std::string &buffer, std::string &out)
{
    if (buffer.size() < 4)
        return false;
    const uint32_t length = frameLength(buffer);
    if (length > kMaxFrameBytes) {
        davf_throw(ErrorKind::BadInput, "frame length ", length,
                   " exceeds the ", kMaxFrameBytes, " byte limit");
    }
    if (buffer.size() < 4u + length)
        return false;
    out.assign(buffer, 4, length);
    buffer.erase(0, 4u + length);
    return true;
}

} // namespace

bool
readFrameFd(int fd, std::string &out)
{
    std::string buffer;
    char chunk[4096];
    for (;;) {
        if (popFrame(buffer, out))
            return true;
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            davf_throw(ErrorKind::Io, "frame read failed: ",
                       std::strerror(errno));
        }
        if (n == 0) {
            if (buffer.empty())
                return false;
            davf_throw(ErrorKind::BadInput,
                       "stream ended inside a frame (", buffer.size(),
                       " stray bytes)");
        }
        buffer.append(chunk, static_cast<size_t>(n));
    }
}

Subprocess::~Subprocess()
{
    if (running()) {
        ::kill(childPid, SIGKILL);
        wait();
    }
    closeFds();
}

std::string
Subprocess::selfExePath()
{
    char buffer[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
    if (n <= 0) {
        davf_throw(ErrorKind::Io, "cannot resolve /proc/self/exe: ",
                   std::strerror(errno));
    }
    return std::string(buffer, static_cast<size_t>(n));
}

void
Subprocess::closeFds()
{
    closeQuiet(toChild);
    closeQuiet(fromChild);
}

void
Subprocess::spawn(const std::vector<std::string> &argv,
                  const SpawnOptions &options)
{
    davf_assert(!running(), "spawn() while a child is still running");
    davf_assert(!argv.empty(), "spawn() needs an argv[0]");
    closeFds();
    status.reset();
    rxBuffer.clear();

    int down[2]; // parent -> child (child stdin)
    int up[2];   // child -> parent (child stdout)
    if (::pipe2(down, O_CLOEXEC) != 0) {
        davf_throw(ErrorKind::Io, "pipe2 failed: ",
                   std::strerror(errno));
    }
    if (::pipe2(up, O_CLOEXEC) != 0) {
        const int saved = errno;
        ::close(down[0]);
        ::close(down[1]);
        davf_throw(ErrorKind::Io, "pipe2 failed: ",
                   std::strerror(saved));
    }

    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &arg : argv)
        cargv.push_back(const_cast<char *>(arg.c_str()));
    cargv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        const int saved = errno;
        for (int fd : {down[0], down[1], up[0], up[1]})
            ::close(fd);
        davf_throw(ErrorKind::Io, "fork failed: ",
                   std::strerror(saved));
    }

    if (pid == 0) {
        // Child: pipes onto stdin/stdout (dup2 clears O_CLOEXEC), the
        // optional address-space cap, then exec. Only async-signal-safe
        // calls between fork and exec.
        if (::dup2(down[0], STDIN_FILENO) < 0
            || ::dup2(up[1], STDOUT_FILENO) < 0)
            ::_exit(127);
        if (options.memLimitMb != 0) {
            struct rlimit limit;
            limit.rlim_cur = limit.rlim_max =
                static_cast<rlim_t>(options.memLimitMb) << 20;
            ::setrlimit(RLIMIT_AS, &limit);
        }
        ::execv(cargv[0], cargv.data());
        ::_exit(127);
    }

    ::close(down[0]);
    ::close(up[1]);
    childPid = pid;
    toChild = down[1];
    fromChild = up[0];
}

void
Subprocess::sendFrame(std::string_view payload)
{
    davf_assert(toChild >= 0, "sendFrame() without a spawned child");
    writeFrameFd(toChild, payload);
}

Subprocess::ReadStatus
Subprocess::readFrame(std::string &out, double timeout_ms)
{
    davf_assert(fromChild >= 0, "readFrame() without a spawned child");
    if (popFrame(rxBuffer, out))
        return ReadStatus::Frame;

    const uint64_t deadline = steadyNowMs()
        + static_cast<uint64_t>(timeout_ms > 0.0 ? timeout_ms : 0.0);
    char chunk[4096];
    for (;;) {
        const uint64_t now = steadyNowMs();
        const int budget = now >= deadline
            ? 0
            : static_cast<int>(
                  std::min<uint64_t>(deadline - now, 1u << 30));
        struct pollfd pfd = {fromChild, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, budget);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            davf_throw(ErrorKind::Io, "poll failed: ",
                       std::strerror(errno));
        }
        if (ready == 0)
            return ReadStatus::Timeout;

        const ssize_t n = ::read(fromChild, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            davf_throw(ErrorKind::Io, "frame read failed: ",
                       std::strerror(errno));
        }
        if (n == 0)
            return ReadStatus::Eof;
        rxBuffer.append(chunk, static_cast<size_t>(n));
        if (popFrame(rxBuffer, out))
            return ReadStatus::Frame;
        if (steadyNowMs() >= deadline)
            return ReadStatus::Timeout;
    }
}

void
Subprocess::closeWrite()
{
    closeQuiet(toChild);
}

ExitStatus
Subprocess::wait()
{
    if (status)
        return *status;
    davf_assert(childPid > 0, "wait() without a spawned child");
    int wstatus = 0;
    struct rusage ru = {};
    for (;;) {
        const pid_t got = ::wait4(childPid, &wstatus, 0, &ru);
        if (got < 0 && errno == EINTR)
            continue;
        if (got < 0) {
            davf_throw(ErrorKind::Io, "wait4 failed: ",
                       std::strerror(errno));
        }
        break;
    }
    status = decodeWait(wstatus, ru);
    closeFds();
    return *status;
}

ExitStatus
Subprocess::terminate(double grace_ms)
{
    if (status)
        return *status;
    davf_assert(childPid > 0, "terminate() without a spawned child");

    ::kill(childPid, SIGTERM);
    const uint64_t deadline =
        steadyNowMs() + static_cast<uint64_t>(grace_ms > 0 ? grace_ms : 0);
    for (;;) {
        int wstatus = 0;
        struct rusage ru = {};
        const pid_t got = ::wait4(childPid, &wstatus, WNOHANG, &ru);
        if (got == childPid) {
            status = decodeWait(wstatus, ru);
            closeFds();
            return *status;
        }
        if (got < 0 && errno != EINTR) {
            davf_throw(ErrorKind::Io, "wait4 failed: ",
                       std::strerror(errno));
        }
        if (steadyNowMs() >= deadline)
            break;
        ::usleep(2000);
    }

    ::kill(childPid, SIGKILL);
    return wait();
}

} // namespace davf
