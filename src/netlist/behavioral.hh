/**
 * @file
 * Clocked behavioral blocks.
 *
 * The case study injects faults only into the wires of the core's
 * microarchitectural structures; the instruction/data memory backing the
 * core is outside the fault model (the paper's flow likewise keeps memory
 * in the Verilator testbench). A BehavioralModel is a clocked black box:
 * its outputs are registered (valid clkToQ after the edge, like a flip-flop
 * output) and at each clock edge it samples its input pins and updates its
 * internal state. This registration discipline is what lets the
 * timing-aware simulator treat behavioral outputs as stable cycle-start
 * values.
 */

#ifndef DAVF_NETLIST_BEHAVIORAL_HH
#define DAVF_NETLIST_BEHAVIORAL_HH

#include <cstdint>
#include <memory>
#include <vector>

namespace davf {

/** Interface for a clocked behavioral block embedded in a netlist. */
class BehavioralModel
{
  public:
    virtual ~BehavioralModel() = default;

    /**
     * Deep-copy this model. Every CycleSimulator clones the netlist's
     * prototype models at construction so that parallel fault-injection
     * runs own independent state.
     */
    virtual std::shared_ptr<BehavioralModel> clone() const = 0;

    /** Number of input pins. */
    virtual unsigned numInputs() const = 0;

    /** Number of output pins. */
    virtual unsigned numOutputs() const = 0;

    /**
     * Reset internal state and drive the initial output pin values.
     *
     * @param outputs numOutputs() values driven until the first clockEdge.
     */
    virtual void reset(std::vector<bool> &outputs) = 0;

    /**
     * Clock edge: consume the sampled input pin values and update state;
     * the freshly computed output pin values become visible next cycle.
     *
     * @param inputs  numInputs() sampled values.
     * @param outputs numOutputs() values to drive next cycle.
     */
    virtual void clockEdge(const std::vector<bool> &inputs,
                           std::vector<bool> &outputs) = 0;

    /** Opaque serialized internal state (for simulator snapshots). */
    virtual std::vector<uint64_t> snapshot() const = 0;

    /** Restore internal state from snapshot(). */
    virtual void restore(const std::vector<uint64_t> &data) = 0;
};

using BehavioralModelPtr = std::shared_ptr<BehavioralModel>;

} // namespace davf

#endif // DAVF_NETLIST_BEHAVIORAL_HH
