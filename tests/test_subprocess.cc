/**
 * @file
 * Tests for the length-prefixed frame protocol and the Subprocess
 * supervisor plumbing (spawn, deadline reads, exit/signal decode,
 * SIGTERM->SIGKILL escalation, rlimit caps, rusage capture).
 *
 * The binary re-executes itself: `--child-mode=<mode>` turns an
 * invocation into one of several tiny child behaviours (echo server,
 * crasher, hanger, allocator, ...), which is why this test has its own
 * main() instead of linking gtest_main.
 */

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "util/error.hh"
#include "util/subprocess.hh"

#if defined(__SANITIZE_ADDRESS__)
#define DAVF_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DAVF_ASAN 1
#endif
#endif

namespace davf::test {
namespace {

/** Child behaviours, selected by --child-mode=<name>. */
int
runChildMode(const std::string &mode)
{
    if (mode == "echo") {
        // Frame echo server: mirror every frame until EOF.
        std::string payload;
        while (readFrameFd(STDIN_FILENO, payload))
            writeFrameFd(STDOUT_FILENO, payload);
        return 0;
    }
    if (mode == "exit7")
        return 7;
    if (mode == "crash")
        abort();
    if (mode == "sleep") {
        // Announce readiness, then hang; dies to the default SIGTERM.
        writeFrameFd(STDOUT_FILENO, "ready");
        for (;;)
            pause();
    }
    if (mode == "stubborn") {
        // Ignores SIGTERM: only SIGKILL gets rid of it.
        signal(SIGTERM, SIG_IGN);
        writeFrameFd(STDOUT_FILENO, "ready");
        for (;;)
            pause();
    }
    if (mode == "alloc") {
        // Touch ~128 MiB; under a small RLIMIT_AS this raises
        // std::bad_alloc, which workers report as exit code 86.
        try {
            std::vector<std::vector<char>> blocks;
            for (int i = 0; i < 128; ++i) {
                blocks.emplace_back(1u << 20, '\1');
                blocks.back()[4096] = char(i);
            }
        } catch (const std::bad_alloc &) {
            _exit(86);
        }
        return 0;
    }
    if (mode == "reply-on-quit") {
        // Models a worker whose final result races the quit frame: on
        // quit it still writes one pipe-capacity-busting reply before
        // exiting cleanly. A parent that closes the pipe instead of
        // draining it leaves this child blocked in write() forever.
        std::string payload;
        while (readFrameFd(STDIN_FILENO, payload)) {
            if (payload == "quit") {
                writeFrameFd(STDOUT_FILENO, std::string(2u << 20, 'r'));
                return 0;
            }
            writeFrameFd(STDOUT_FILENO, payload);
        }
        return 0;
    }
    if (mode == "badframe") {
        // An absurd length prefix: the parent must reject it rather
        // than trying to buffer 4 GiB.
        const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0x7f};
        ssize_t n =
            write(STDOUT_FILENO, prefix, sizeof(prefix));
        (void)n;
        return 0;
    }
    fprintf(stderr, "unknown child mode '%s'\n", mode.c_str());
    return 125;
}

std::vector<std::string>
childArgv(const std::string &mode)
{
    return {Subprocess::selfExePath(), "--child-mode=" + mode};
}

TEST(FrameProtocol, RoundTripsBinaryPayloads)
{
    Subprocess child;
    child.spawn(childArgv("echo"));

    const std::string cases[] = {
        "hello",
        "",                                // empty frame is legal
        std::string("\0\n\r\xff binary \0", 16),
        std::string(1u << 16, 'x'),        // bigger than one pipe buf
    };
    std::string out;
    for (const std::string &payload : cases) {
        child.sendFrame(payload);
        ASSERT_EQ(child.readFrame(out, 5000.0),
                  Subprocess::ReadStatus::Frame);
        EXPECT_EQ(out, payload);
    }

    child.closeWrite();
    EXPECT_EQ(child.readFrame(out, 5000.0),
              Subprocess::ReadStatus::Eof);
    ExitStatus status = child.wait();
    EXPECT_TRUE(status.exited);
    EXPECT_EQ(status.code, 0);
}

TEST(FrameProtocol, OversizedPrefixIsRejectedNotBuffered)
{
    Subprocess child;
    child.spawn(childArgv("badframe"));
    std::string out;
    try {
        // May need a couple of reads before the bytes arrive.
        for (int i = 0; i < 50; ++i) {
            Subprocess::ReadStatus status =
                child.readFrame(out, 200.0);
            if (status == Subprocess::ReadStatus::Eof)
                FAIL() << "EOF before the bogus prefix was seen";
        }
        FAIL() << "oversized frame prefix was accepted";
    } catch (const DavfError &error) {
        EXPECT_EQ(error.kind(), ErrorKind::BadInput);
    }
    child.terminate(200.0);
}

TEST(Subprocess, DecodesExitCodes)
{
    Subprocess child;
    child.spawn(childArgv("exit7"));
    std::string out;
    EXPECT_EQ(child.readFrame(out, 5000.0),
              Subprocess::ReadStatus::Eof);
    ExitStatus status = child.wait();
    EXPECT_TRUE(status.exited);
    EXPECT_FALSE(status.signaled);
    EXPECT_EQ(status.code, 7);
    EXPECT_NE(status.describe().find("7"), std::string::npos);
}

TEST(Subprocess, DecodesFatalSignals)
{
    Subprocess child;
    child.spawn(childArgv("crash"));
    std::string out;
    EXPECT_EQ(child.readFrame(out, 5000.0),
              Subprocess::ReadStatus::Eof);
    ExitStatus status = child.wait();
    EXPECT_FALSE(status.exited);
    EXPECT_TRUE(status.signaled);
    EXPECT_EQ(status.signal, SIGABRT);
}

TEST(Subprocess, ReadDeadlineExpiresWithoutLosingTheChild)
{
    Subprocess child;
    child.spawn(childArgv("sleep"));
    std::string out;
    ASSERT_EQ(child.readFrame(out, 5000.0),
              Subprocess::ReadStatus::Frame);
    EXPECT_EQ(out, "ready");

    // Nothing further is coming: the deadline must fire...
    EXPECT_EQ(child.readFrame(out, 100.0),
              Subprocess::ReadStatus::Timeout);
    // ...and the child must still be alive and supervisable.
    EXPECT_TRUE(child.running());
    ExitStatus status = child.terminate(2000.0);
    EXPECT_TRUE(status.signaled);
    EXPECT_EQ(status.signal, SIGTERM);
}

TEST(Subprocess, TerminateEscalatesToSigkill)
{
    Subprocess child;
    child.spawn(childArgv("stubborn"));
    std::string out;
    // Wait for "ready" so the SIGTERM handler is installed before we
    // try to terminate; otherwise the test races the child's setup.
    ASSERT_EQ(child.readFrame(out, 5000.0),
              Subprocess::ReadStatus::Frame);
    ASSERT_EQ(out, "ready");

    ExitStatus status = child.terminate(200.0);
    EXPECT_TRUE(status.signaled);
    EXPECT_EQ(status.signal, SIGKILL);
}

TEST(Subprocess, CapturesRusage)
{
    Subprocess child;
    child.spawn(childArgv("alloc"));
    std::string out;
    EXPECT_EQ(child.readFrame(out, 30000.0),
              Subprocess::ReadStatus::Eof);
    ExitStatus status = child.wait();
    EXPECT_TRUE(status.exited);
    EXPECT_EQ(status.code, 0);
    // The allocator touched >= 128 MiB; rusage must reflect that.
    EXPECT_GT(status.maxRssKb, 64 * 1024);
}

TEST(Subprocess, MemLimitTurnsRunawayAllocationIntoBadAlloc)
{
#ifdef DAVF_ASAN
    GTEST_SKIP() << "RLIMIT_AS breaks ASan's shadow mappings";
#else
    Subprocess child;
    SpawnOptions options;
    options.memLimitMb = 48; // well under the 128 MiB the child wants
    child.spawn(childArgv("alloc"), options);
    std::string out;
    EXPECT_EQ(child.readFrame(out, 30000.0),
              Subprocess::ReadStatus::Eof);
    ExitStatus status = child.wait();
    EXPECT_TRUE(status.exited);
    EXPECT_EQ(status.code, 86); // the worker OOM convention
#endif
}

TEST(Subprocess, SendFrameToDeadChildThrowsIo)
{
    Subprocess child;
    child.spawn(childArgv("exit7"));
    std::string out;
    // The child is gone (EOF) but deliberately not reaped yet: this is
    // the supervisor's position when a worker dies mid-dispatch.
    EXPECT_EQ(child.readFrame(out, 5000.0),
              Subprocess::ReadStatus::Eof);
    // The pipe may absorb one frame into its buffer; writing a few
    // large frames must surface EPIPE as DavfError{Io}, not SIGPIPE.
    try {
        const std::string big(1u << 20, 'y');
        for (int i = 0; i < 8; ++i)
            child.sendFrame(big);
        FAIL() << "writes to a dead child never failed";
    } catch (const DavfError &error) {
        EXPECT_EQ(error.kind(), ErrorKind::Io);
    }
    ExitStatus status = child.wait();
    EXPECT_TRUE(status.exited);
    EXPECT_EQ(status.code, 7);
}

TEST(Subprocess, QuitRacingReplyIsDrainedNotKilled)
{
    // The shutdown discipline shared by the supervisor and the net
    // coordinator: after sending quit, drain the worker until EOF
    // instead of closing/terminating straight away. A worker blocked
    // writing a reply larger than the pipe capacity can then finish
    // its write and exit 0; anything else loses the in-flight result
    // and misreports a clean shutdown as a worker failure.
    Subprocess child;
    child.spawn(childArgv("reply-on-quit"));
    child.sendFrame("quit");

    std::string payload;
    size_t drained = 0;
    for (;;) {
        const Subprocess::ReadStatus status =
            child.readFrame(payload, 15000.0);
        ASSERT_NE(status, Subprocess::ReadStatus::Timeout);
        if (status != Subprocess::ReadStatus::Frame)
            break;
        ++drained;
        EXPECT_EQ(payload, std::string(2u << 20, 'r'));
    }
    EXPECT_EQ(drained, 1u);
    const ExitStatus status = child.wait();
    EXPECT_TRUE(status.exited) << status.describe();
    EXPECT_EQ(status.code, 0) << status.describe();
}

TEST(Subprocess, SelfExePathIsAbsoluteAndExists)
{
    const std::string path = Subprocess::selfExePath();
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), '/');
    EXPECT_EQ(access(path.c_str(), X_OK), 0);
}

} // namespace
} // namespace davf::test

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        constexpr const char *kFlag = "--child-mode=";
        if (strncmp(argv[i], kFlag, strlen(kFlag)) == 0)
            return davf::test::runChildMode(argv[i] + strlen(kFlag));
    }
    signal(SIGPIPE, SIG_IGN);
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
