#include "vec_tsim.hh"

#include <algorithm>

#include "util/logging.hh"

namespace davf {

namespace {

constexpr double kEps = 1e-9; // Matches timed_sim.cc.

bool
isEndpointCell(CellType type)
{
    return type == CellType::Dff || type == CellType::Dffe
        || type == CellType::Behav || type == CellType::Output;
}

uint64_t
broadcast(bool value)
{
    return value ? ~uint64_t{0} : uint64_t{0};
}

/** Word-parallel evalCell: one bit position per lane. */
uint64_t
evalCombWord(CellType type, uint64_t v0, uint64_t v1, uint64_t v2)
{
    switch (type) {
      case CellType::Buf:   return v0;
      case CellType::Inv:   return ~v0;
      case CellType::And2:  return v0 & v1;
      case CellType::Or2:   return v0 | v1;
      case CellType::Nand2: return ~(v0 & v1);
      case CellType::Nor2:  return ~(v0 | v1);
      case CellType::Xor2:  return v0 ^ v1;
      case CellType::Xnor2: return ~(v0 ^ v1);
      case CellType::Mux2:  return (v2 & v1) | (~v2 & v0);
      default:              return 0;
    }
}

} // namespace

VecTimedSimulator::VecTimedSimulator(const DelayModel &delay_model)
    : delays(&delay_model), nl(&delay_model.netlist())
{
    const Netlist &netlist = *nl;
    pinWords.resize(netlist.numCells() * 3);
    schedWords.resize(netlist.numNets());
    inUnion.assign(netlist.numCells(), 0);
    excl.assign(netlist.numWires(), 0);
    laneCones.resize(maxWiresPerBatch());
    laneEndpoints.resize(maxWiresPerBatch());
}

void
VecTimedSimulator::simulateCones(
    const CycleWaveforms &golden, std::span<const WireId> wires,
    double extra_delay, double period,
    std::vector<std::vector<LatchedPin>> &latched,
    std::vector<LatchedPin> *golden_latched)
{
    const Netlist &netlist = *nl;
    davf_assert(!wires.empty() && wires.size() <= maxWiresPerBatch(),
                "batch of ", wires.size(), " wires outside [1, ",
                maxWiresPerBatch(), "]");
    davf_assert(golden.netEvents.size() == netlist.numNets()
                    && golden.preEdge.size() == netlist.numNets(),
                "golden waveform size mismatch");
    const auto num_lanes = static_cast<unsigned>(wires.size()) + 1;
    const uint64_t active = num_lanes >= 64
        ? ~uint64_t{0}
        : (uint64_t{1} << num_lanes) - 1;

    // Per-lane cones and their union.
    unionCells.clear();
    for (size_t i = 0; i < wires.size(); ++i) {
        netlist.combCone(wires[i], laneCones[i], reachedScratch);
        for (CellId id : laneCones[i]) {
            if (!inUnion[id]) {
                inUnion[id] = 1;
                unionCells.push_back(id);
            }
        }
    }

    // Exclusion: deliveries along a faulted wire never reach its own
    // lane, which receives a dedicated +d replay of the wire instead.
    exclTouched.clear();
    for (size_t i = 0; i < wires.size(); ++i) {
        excl[wires[i]] |= uint64_t{1} << (i + 1);
        exclTouched.push_back(wires[i]);
    }

    // Union-cell pin and scheduled-output words start at the pre-edge
    // values, identically in every lane.
    for (CellId id : unionCells) {
        const Cell &cell = netlist.cell(id);
        for (size_t pin = 0; pin < cell.inputs.size(); ++pin) {
            pinWords[id * 3 + pin] =
                broadcast(golden.preEdge[cell.inputs[pin]] != 0);
        }
        schedWords[cell.outputs[0]] =
            broadcast(golden.preEdge[cell.outputs[0]] != 0);
    }

    // Endpoint registry: the union set (deterministic first-occurrence
    // order) plus, per lane, the indices of its endpoints in exactly the
    // scalar simulateCone registration order — direct endpoint sink of
    // the faulted wire first, then the endpoint sinks of the cone cells'
    // output nets in topological × sink order.
    endpoints.clear();
    endpointIndex.clear();
    auto union_endpoint = [&](CellId cell, uint16_t pin) -> uint32_t {
        const uint64_t key = (static_cast<uint64_t>(cell) << 16) | pin;
        auto [it, inserted] = endpointIndex.try_emplace(
            key, static_cast<uint32_t>(endpoints.size()));
        if (inserted) {
            endpoints.push_back(
                {cell, pin,
                 broadcast(
                     golden.preEdge[netlist.cell(cell).inputs[pin]]
                     != 0)});
        }
        return it->second;
    };
    for (size_t i = 0; i < wires.size(); ++i) {
        std::vector<uint32_t> &list = laneEndpoints[i];
        list.clear();
        auto lane_endpoint = [&](CellId cell, uint16_t pin) {
            const uint32_t index = union_endpoint(cell, pin);
            if (std::find(list.begin(), list.end(), index) == list.end())
                list.push_back(index);
        };
        const Sink &inj_sink = netlist.wireSink(wires[i]);
        if (isEndpointCell(netlist.cell(inj_sink.cell).type))
            lane_endpoint(inj_sink.cell, inj_sink.pin);
        for (CellId id : laneCones[i]) {
            const Net &out_net =
                netlist.net(netlist.cell(id).outputs[0]);
            for (const Sink &sink : out_net.sinks) {
                if (isEndpointCell(netlist.cell(sink.cell).type))
                    lane_endpoint(sink.cell, sink.pin);
            }
        }
    }

    uint64_t sequence = 0;
    // Replay a golden waveform into one pin, shifted by wire delay.
    // Sorted events (CycleWaveforms invariant) cut at the clock edge.
    auto replay = [&](NetId net, CellId cell, uint16_t pin,
                      double wire_delay, uint64_t mask) {
        for (const NetEvent &event : golden.netEvents[net]) {
            const double arrive = event.time + wire_delay;
            if (arrive > period + kEps)
                break;
            queue.push({arrive, sequence++, cell, pin, mask,
                        broadcast(event.value)});
        }
    };

    // Boundary pins of union cells (driver outside the union): every
    // lane sees the recorded golden waveform there, except a faulted
    // lane on its own wire.
    for (CellId id : unionCells) {
        const Cell &cell = netlist.cell(id);
        for (uint16_t pin = 0; pin < cell.inputs.size(); ++pin) {
            const NetId in_net = cell.inputs[pin];
            if (inUnion[netlist.net(in_net).driver])
                continue;
            const WireId wire = netlist.inputWire(id, pin);
            replay(in_net, id, pin, delays->wireDelay(wire),
                   active & ~excl[wire]);
        }
    }

    // Registered endpoint pins with an out-of-union driver likewise see
    // the golden waveform. Only the golden lane 0 and the non-faulted
    // lanes of a direct endpoint sink can observe these bits, and both
    // observe exactly the golden latched value, so this is exact.
    for (size_t e = 0; e < endpoints.size(); ++e) {
        const EndpointSlot slot = endpoints[e];
        const NetId in_net = netlist.cell(slot.cell).inputs[slot.pin];
        if (inUnion[netlist.net(in_net).driver])
            continue;
        const WireId wire = netlist.inputWire(slot.cell, slot.pin);
        replay(in_net, slot.cell, slot.pin, delays->wireDelay(wire),
               active & ~excl[wire]);
    }

    // The faulted replays: each lane's wire delivers the golden waveform
    // shifted by wireDelay + d into its sink pin, in that lane only —
    // the same float expression, in the same order, as the scalar path.
    for (size_t i = 0; i < wires.size(); ++i) {
        const Wire &inj_wire = netlist.wire(wires[i]);
        const Sink &inj_sink = netlist.wireSink(wires[i]);
        double faulted_delay = delays->wireDelay(wires[i]);
        faulted_delay += extra_delay;
        replay(inj_wire.net, inj_sink.cell, inj_sink.pin, faulted_delay,
               uint64_t{1} << (i + 1));
    }

    // The merged event loop: one pass advances every lane.
    while (!queue.empty()) {
        const LaneEvent event = queue.top();
        queue.pop();
        const Cell &cell = netlist.cell(event.cell);
        if (!cellIsCombinational(cell.type)) {
            // Endpoint pin: record the lanes' latched values (events are
            // in time order, so the final write is the value at the
            // edge).
            EndpointSlot &slot =
                endpoints[union_endpoint(event.cell, event.pin)];
            slot.word =
                (slot.word & ~event.mask) | (event.values & event.mask);
            continue;
        }
        uint64_t *pins = &pinWords[event.cell * 3];
        pins[event.pin] = (pins[event.pin] & ~event.mask)
            | (event.values & event.mask);
        const uint64_t out =
            evalCombWord(cell.type, pins[0], pins[1], pins[2]);
        const NetId out_net = cell.outputs[0];
        const uint64_t diff = (out ^ schedWords[out_net]) & active;
        // Mirror the scalar order: the scheduled value advances even
        // when the emission itself is cut at the edge below.
        schedWords[out_net] = out;
        if (diff == 0)
            continue;
        const double out_time =
            event.time + delays->cellDelay(event.cell);
        if (out_time > period + kEps)
            continue;
        const Net &net_ref = netlist.net(out_net);
        for (uint32_t s = 0; s < net_ref.sinks.size(); ++s) {
            const Sink &sink = net_ref.sinks[s];
            const double arrive =
                out_time + delays->wireDelay(net_ref.firstWire + s);
            if (arrive > period + kEps)
                continue;
            if (!cellIsCombinational(netlist.cell(sink.cell).type)) {
                if (!isEndpointCell(netlist.cell(sink.cell).type))
                    continue;
            } else if (!inUnion[sink.cell]) {
                continue; // Outside every cone: cannot be affected.
            }
            const uint64_t mask = diff & ~excl[net_ref.firstWire + s];
            if (mask == 0)
                continue;
            queue.push({arrive, sequence++, sink.cell, sink.pin, mask,
                        out});
        }
    }

    // Extraction, per lane, in the scalar registration order.
    latched.resize(wires.size());
    for (size_t i = 0; i < wires.size(); ++i) {
        std::vector<LatchedPin> &lane_out = latched[i];
        lane_out.clear();
        lane_out.reserve(laneEndpoints[i].size());
        for (uint32_t index : laneEndpoints[i]) {
            const EndpointSlot &slot = endpoints[index];
            lane_out.push_back({slot.cell, slot.pin,
                                ((slot.word >> (i + 1)) & 1) != 0});
        }
    }
    if (golden_latched) {
        golden_latched->clear();
        golden_latched->reserve(endpoints.size());
        for (const EndpointSlot &slot : endpoints) {
            golden_latched->push_back(
                {slot.cell, slot.pin, (slot.word & 1) != 0});
        }
    }

    // Reset the persistent scratch for the next batch.
    for (CellId id : unionCells)
        inUnion[id] = 0;
    for (WireId wire : exclTouched)
        excl[wire] = 0;
}

} // namespace davf
