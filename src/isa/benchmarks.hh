/**
 * @file
 * The Beebs-like benchmark workloads of the case study (§VI-A).
 *
 * The paper evaluates five applications from the Beebs embedded benchmark
 * suite: md5, bubblesort, libstrstr, libfibcall, and matmult. Each is
 * reimplemented here in RV32I assembly (see isa/assembler.hh), scaled so a
 * full execution takes on the order of a thousand cycles on the 2-stage
 * IbexMini core — the same order as the paper's Table II. Each program
 * writes its results to the MMIO output port and then halts; the output
 * trace is the program-visible behaviour that DelayAVF compares.
 *
 * Expected outputs are computed independently in C++ (e.g. md5 against a
 * from-scratch MD5 implementation), so ISS and gate-level runs are
 * validated against ground truth rather than against each other.
 */

#ifndef DAVF_ISA_BENCHMARKS_HH
#define DAVF_ISA_BENCHMARKS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace davf {

/** One benchmark program: source, plus its architecturally
 *  correct output trace. */
struct BenchmarkProgram
{
    std::string name;
    std::string source;
    std::vector<uint32_t> expectedOutput;
};

/** All five Beebs-like benchmarks, in the paper's order. */
const std::vector<BenchmarkProgram> &beebsBenchmarks();

/**
 * Additional workloads beyond the paper's five (extensions): crc32
 * (bitwise CRC-32 over a string) and popcount (software bit counting
 * over an LFSR stream). Useful for studying benchmark sensitivity
 * beyond the paper's suite.
 */
const std::vector<BenchmarkProgram> &extraBenchmarks();

/** Look up one benchmark by name (paper suite first, then extras);
 *  fatal if unknown. */
const BenchmarkProgram &beebsBenchmark(const std::string &name);

/**
 * Reference MD5 of a single pre-padded 64-byte block.
 *
 * @param block the 16 message words.
 * @return the four chaining words (A, B, C, D) after the block.
 */
std::vector<uint32_t> md5SingleBlock(const std::vector<uint32_t> &block);

} // namespace davf

#endif // DAVF_ISA_BENCHMARKS_HH
