/**
 * @file
 * Result serialization: CSV rows and JSON objects for DelayAVF / sAVF
 * results, so downstream tooling (plotting scripts, regression
 * dashboards) can consume engine output without scraping stdout.
 */

#ifndef DAVF_CORE_REPORT_HH
#define DAVF_CORE_REPORT_HH

#include <string>
#include <vector>

#include "core/vulnerability.hh"

namespace davf {

/**
 * One row of a structured report: a single DelayAVF or sAVF evaluation
 * with its labels. The shared currency of `davf_run --json`, the
 * davf_serve query service, and the CI smoke checks — all three emit
 * rows through reportJson(), so a served result can be compared
 * byte-for-byte against a cold CLI run.
 */
struct ReportRow
{
    std::string kind = "davf"; ///< "davf" or "savf".
    std::string benchmark;
    std::string structure; ///< Display label (may carry " (ECC)").
    double delayFraction = 0.0; ///< davf rows only.
    DelayAvfResult davf;        ///< Valid when kind == "davf".
    SavfResult savf;            ///< Valid when kind == "savf".
};

/** One row as a single-line JSON object. */
std::string reportRowJson(const ReportRow &row);

/**
 * A whole report as one line of JSON:
 * {"schema":"davf-report/v1","results":[<row>,...]}. Deterministic:
 * equal rows serialize to equal bytes.
 */
std::string reportJson(const std::vector<ReportRow> &rows);

/** Column header matching delayAvfCsvRow(). */
std::string delayAvfCsvHeader();

/**
 * One CSV row for a DelayAVF evaluation.
 *
 * @param benchmark workload label.
 * @param structure structure label.
 * @param delay_fraction the d used, as a fraction of the period.
 */
std::string delayAvfCsvRow(const std::string &benchmark,
                           const std::string &structure,
                           double delay_fraction,
                           const DelayAvfResult &result);

/** Column header matching attributionCsvRows(). */
std::string attributionCsvHeader();

/**
 * The per-instruction attribution table as CSV, one row per table
 * entry (destinations flattened as "dest:count" pairs joined with
 * '|'). Empty string when @p result carries no attribution table —
 * callers can append unconditionally.
 */
std::string attributionCsvRows(const std::string &benchmark,
                               const std::string &structure,
                               double delay_fraction,
                               const DelayAvfResult &result);

/** Column header matching savfCsvRow(). */
std::string savfCsvHeader();

/** One CSV row for an sAVF evaluation. */
std::string savfCsvRow(const std::string &benchmark,
                       const std::string &structure,
                       const SavfResult &result);

/** A JSON object (single line) for a DelayAVF evaluation. */
std::string delayAvfJson(const std::string &benchmark,
                         const std::string &structure,
                         double delay_fraction,
                         const DelayAvfResult &result);

/** A JSON object (single line) for an sAVF evaluation. */
std::string savfJson(const std::string &benchmark,
                     const std::string &structure,
                     const SavfResult &result);

} // namespace davf

#endif // DAVF_CORE_REPORT_HH
