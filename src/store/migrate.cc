#include "migrate.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/metrics.hh"
#include "store/index_store.hh"
#include "store/layout.hh"
#include "util/crashpoint.hh"
#include "util/logging.hh"

namespace davf::store {

namespace {

namespace fs = std::filesystem;

struct MigrateMetrics
{
    obs::Counter migrated{"store.index.migrated_records"};
    obs::Counter quarantined{"store.index.migrate_quarantined"};
    obs::Gauge remaining{"store.index.migrate_remaining"};
};

MigrateMetrics &
migrateMetrics()
{
    static MigrateMetrics *const metrics = new MigrateMetrics();
    return *metrics;
}

bool
isLegacyRecordName(const std::string &name)
{
    return name.rfind("r-", 0) == 0 && name.size() > 6
        && name.compare(name.size() - 4, 4, ".rec") == 0;
}

/** Move @p path into <dir>/quarantine/ without clobbering. */
void
quarantineFile(const std::string &dir, const fs::path &path)
{
    const fs::path qdir = fs::path(dir) / "quarantine";
    std::error_code ec;
    fs::create_directories(qdir, ec);
    if (ec) {
        davf_throw(ErrorKind::Io, "cannot create '", qdir.string(),
                   "': ", ec.message());
    }
    fs::path target = qdir / path.filename();
    for (int n = 1; fs::exists(target, ec); ++n) {
        target = qdir
            / (path.filename().string() + "." + std::to_string(n));
    }
    fs::rename(path, target, ec);
    if (ec) {
        davf_throw(ErrorKind::Io, "cannot quarantine '", path.string(),
                   "': ", ec.message());
    }
}

} // namespace

MigrateReport
migrateStore(const std::string &dir)
{
    static const crashpoint::CrashPoint migrate_point("index.migrate");

    MigrateReport report;
    std::vector<fs::path> candidates;
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (!it->is_regular_file(ec))
            continue;
        const std::string name = it->path().filename().string();
        if (isLegacyRecordName(name))
            candidates.push_back(it->path());
        else
            ++report.foreign;
    }
    if (ec) {
        davf_throw(ErrorKind::Io, "cannot enumerate store dir '", dir,
                   "': ", ec.message());
    }
    std::sort(candidates.begin(), candidates.end());

    // Opening the indexed tier creates it if absent (and replays /
    // rebuilds / tail-repairs as needed) — migration of an empty
    // legacy directory is just index creation.
    IndexStore store({.dir = dir});

    MigrateMetrics &metrics = migrateMetrics();
    metrics.remaining.set(static_cast<int64_t>(candidates.size()));

    for (const fs::path &path : candidates) {
        std::ifstream file(path, std::ios::binary);
        std::ostringstream contents;
        if (file)
            contents << file.rdbuf();
        auto parsed = parseRecordText(contents.str());
        if (!file || !parsed) {
            // Damaged legacy record: evidence, never deleted.
            quarantineFile(dir, path);
            ++report.quarantined;
            metrics.quarantined.add(1);
            metrics.remaining.add(-1);
            continue;
        }
        const std::string &key = parsed.value().first;
        const std::string &payload = parsed.value().second;

        // The record's legacy file may only disappear once the index
        // serves the key. If the index already does (an interrupted
        // earlier migration, or the key was re-stored since), the
        // legacy copy is shadowed and redundant either way.
        const auto looked = store.lookup(key);
        if (looked.status == IndexStore::LookupStatus::Hit) {
            ++report.alreadyIndexed;
        } else {
            migrate_point.fire();
            // Re-canonicalize: lenient legacy parsing admits cosmetic
            // variants, the segment file stores exactly one form. The
            // payload bytes — the part replies are built from — are
            // preserved verbatim.
            store.putRecord(key, serializeRecordText(key, payload));
            ++report.migrated;
            metrics.migrated.add(1);
        }
        // The append above is durable (fdatasync) before this unlink,
        // so a crash between the two only re-runs the skip branch.
        fs::remove(path, ec);
        if (ec) {
            davf_warn("cannot remove migrated legacy record '",
                      path.string(), "': ", ec.message());
        }
        metrics.remaining.add(-1);
    }
    store.checkpoint();
    return report;
}

} // namespace davf::store
