#include "thread_pool.hh"

#include <algorithm>
#include <exception>
#include <mutex>

namespace davf {

void
parallelFor(size_t count, const std::function<void(size_t)> &body,
            unsigned num_threads)
{
    if (count == 0)
        return;
    if (num_threads == 0)
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    num_threads = static_cast<unsigned>(
        std::min<size_t>(num_threads, count));

    if (num_threads <= 1) {
        for (size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto worker = [&]() {
        for (;;) {
            if (failed.load(std::memory_order_relaxed))
                return;
            const size_t index = next.fetch_add(1);
            if (index >= count)
                return;
            try {
                body(index);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(num_threads - 1);
    for (unsigned t = 0; t + 1 < num_threads; ++t)
        threads.emplace_back(worker);
    worker();
    for (auto &thread : threads)
        thread.join();

    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace davf
