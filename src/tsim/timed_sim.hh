/**
 * @file
 * Timing-aware event-driven simulation of a single clock cycle.
 *
 * This is Step #1 of the paper's two-step DelayACE computation (§V-B): the
 * only place sub-cycle timing matters is within the fault cycle itself, so
 * this simulator models exactly one clock period under a transport-delay
 * model and reports what every sampled endpoint pin latches at the edge.
 *
 * Two entry points mirror the optimization structure of §V-C:
 *
 *  - simulateCycle() runs the whole netlist fault-free for one cycle and
 *    records the transition waveform of every net. This is done once per
 *    injection cycle.
 *  - simulateCone() re-simulates only the fanout cone of one faulted wire,
 *    replaying the recorded golden waveforms at the cone boundary (the
 *    injected delay cannot change anything upstream of the wire), with the
 *    wire's delay increased by d. Comparing its latched endpoint values
 *    with the fault-free ones yields the dynamically reachable set.
 *
 * Model notes: transport delays (glitches propagate, which is what lets a
 * larger d occasionally re-latch a correct value, §VI-B); transitions
 * arriving after the clock edge are discarded (the SDF lasts one cycle and
 * the next cycle restarts from latched state); a transition arriving
 * exactly at the edge is latched (the nominal design meets timing with
 * zero slack on its critical path).
 */

#ifndef DAVF_TSIM_TIMED_SIM_HH
#define DAVF_TSIM_TIMED_SIM_HH

#include <cstdint>
#include <vector>

#include "timing/sta.hh"

namespace davf {

/** One transition on a net: the net takes @p value at @p time. */
struct NetEvent
{
    double time;
    bool value;
};

/** Per-net transition waveforms for one cycle (indexed by NetId);
 *  the value before the first event is the pre-edge net value.
 *
 *  Invariant: every per-net event list is sorted by time (ties keep
 *  emission order). simulateCycle() establishes it on construction, and
 *  every replay consumer (simulateCone, the vectorized cone simulator,
 *  goldenPinValueAtEdge) exploits it to stop scanning at the first
 *  event past the clock edge. Hand-built waveforms must call
 *  sortEvents() before being replayed. */
struct CycleWaveforms
{
    std::vector<std::vector<NetEvent>> netEvents;
    std::vector<uint8_t> preEdge;  ///< Net values just before the edge.

    /** (Re-)establish the sorted-by-time invariant. Cheap when already
     *  sorted (one is_sorted scan per net, no allocation). */
    void sortEvents();
};

/** A sampled endpoint pin and the value it latched at the clock edge. */
struct LatchedPin
{
    CellId cell;
    uint16_t pin;
    bool value;
};

/** Event-driven single-cycle timing simulator. */
class TimedSimulator
{
  public:
    explicit TimedSimulator(const DelayModel &delays);

    /**
     * Fault-free full-netlist simulation of one clock cycle.
     *
     * @param pre_edge  net values settled at the end of the previous cycle
     *                  (indexed by NetId).
     * @param post_edge net values after the clock edge; only source nets
     *                  (sequential outputs, primary inputs) are read —
     *                  they transition to their post-edge value at clkToQ.
     * @param period    the clock period.
     * @param out       receives all per-net waveforms.
     */
    void simulateCycle(const std::vector<uint8_t> &pre_edge,
                       const std::vector<uint8_t> &post_edge,
                       double period, CycleWaveforms &out) const;

    /**
     * Re-simulate the fanout cone of @p injected with its wire delay
     * increased by @p extra_delay, replaying @p golden waveforms at the
     * cone boundary.
     *
     * @param golden      waveforms from simulateCycle for the same cycle.
     * @param injected    the faulted wire.
     * @param extra_delay the SDF duration d.
     * @param period      the clock period.
     * @param latched     receives the latched value of every endpoint pin
     *                    reachable from the faulted wire.
     */
    void simulateCone(const CycleWaveforms &golden, WireId injected,
                      double extra_delay, double period,
                      std::vector<LatchedPin> &latched) const;

    const DelayModel &delayModel() const { return *delays; }

  private:
    const DelayModel *delays;
    const Netlist *nl;
};

/**
 * The value a sampled pin latches at the clock edge in the fault-free
 * cycle described by @p golden: the last transition of its driver net
 * that arrives at the pin (net event time + wire delay) no later than
 * the edge.
 */
bool goldenPinValueAtEdge(const DelayModel &delays,
                          const CycleWaveforms &golden, CellId cell,
                          uint16_t pin, double period);

} // namespace davf

#endif // DAVF_TSIM_TIMED_SIM_HH
