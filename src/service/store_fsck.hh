/**
 * @file
 * Offline integrity checking and compaction for a result-store
 * directory (service/result_store.hh), behind the `davf_store` CLI.
 *
 * fsckStore() walks one store directory and classifies every entry:
 *
 *  - **valid**     a well-formed record at its canonical file name;
 *  - **misplaced** a well-formed record whose file name is not the
 *                  canonical name for its embedded key — unreachable
 *                  by lookups, so dead weight (a renamed file, or the
 *                  loser of a hash collision);
 *  - **torn**      a record missing its end sentinel: a truncated
 *                  write (power cut reordered rename before data);
 *  - **garbled**   a record that is damaged any other way — bad
 *                  magic, stale version, checksum mismatch, trailing
 *                  garbage;
 *  - **orphan tmp** a `*.tmp.<pid>` sibling left by a writer that died
 *                  between open and rename;
 *  - **foreign**   anything else (ignored, counted).
 *
 * With `repair` set, damaged (torn/garbled) records are quarantined
 * into `<dir>/quarantine/` (never deleted: they are evidence), orphan
 * tmps are deleted, and misplaced records are left for compact. A
 * repaired store passes a subsequent fsck. Repair is idempotent and
 * crash-safe: every step is a single rename or unlink, and the
 * `fsck.repair` crash point (util/crashpoint.hh) lets the recovery
 * matrix kill it mid-flight and prove a rerun converges.
 *
 * compactStore() is repair plus space recovery: damaged records are
 * quarantined, orphan tmps deleted, and every misplaced record is
 * either re-homed to its canonical name (atomic rewrite) or — when a
 * record already lives there — dropped as a duplicate-key loser. The
 * `compact.rewrite` crash point guards each rewrite.
 */

#ifndef DAVF_SERVICE_STORE_FSCK_HH
#define DAVF_SERVICE_STORE_FSCK_HH

#include <cstdint>
#include <string>
#include <vector>

namespace davf::service {

/** Sub-directory of a store dir that fsck quarantines damage into. */
extern const char *const kFsckQuarantineDir;

/** How one store-directory entry was classified. */
enum class StoreEntryKind : uint8_t {
    Valid,
    Misplaced,
    Torn,
    Garbled,
    OrphanTmp,
    Foreign,
};

/** Stable lowercase name of @p kind (CLI output, tests). */
const char *storeEntryKindName(StoreEntryKind kind);

/** One classified entry (relative file name + why). */
struct StoreEntry
{
    std::string name;
    StoreEntryKind kind = StoreEntryKind::Foreign;
    std::string detail; ///< Parser/em error text for damaged entries.
};

/** What a fsck or compact pass found (and did). */
struct FsckReport
{
    uint64_t valid = 0;
    uint64_t misplaced = 0;
    uint64_t torn = 0;
    uint64_t garbled = 0;
    uint64_t orphanTmps = 0;
    uint64_t foreign = 0;

    uint64_t quarantined = 0;  ///< Damaged records moved aside.
    uint64_t removedTmps = 0;  ///< Orphan tmps deleted.
    uint64_t rehomed = 0;      ///< Misplaced records rewritten (compact).
    uint64_t duplicateLosers = 0; ///< Misplaced duplicates dropped.

    /** Every entry, sorted by name (deterministic CLI output). */
    std::vector<StoreEntry> entries;

    /**
     * No torn/garbled/misplaced records and no orphan tmps remain
     * un-repaired. After fsckStore(repair=true) or compactStore()
     * completes, this is true.
     */
    bool clean() const;
};

struct FsckOptions
{
    bool repair = false;
};

/**
 * Check (and with options.repair, repair) the store at @p dir. Throws
 * DavfError{Io} only if @p dir cannot be enumerated at all; per-entry
 * I/O trouble is classified, never thrown.
 */
FsckReport fsckStore(const std::string &dir,
                     const FsckOptions &options = {});

/**
 * Repair @p dir and recover space: quarantine damage, delete orphan
 * tmps, re-home or drop misplaced records. Crash-safe and idempotent —
 * killing it anywhere leaves a store a rerun (or plain fsck --repair)
 * finishes cleaning.
 */
FsckReport compactStore(const std::string &dir);

} // namespace davf::service

#endif // DAVF_SERVICE_STORE_FSCK_HH
