#include "assembler.hh"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "util/logging.hh"

namespace davf {

namespace {

/** A tokenized source line. */
struct Line
{
    int number = 0;
    std::vector<std::string> labels;
    std::string mnemonic;
    std::vector<std::string> operands;
};

std::string
trim(const std::string &text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(
                              text[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(
                              text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

/** Split a source string into logical lines with labels pre-peeled. */
std::vector<Line>
tokenize(const std::string &source)
{
    std::vector<Line> lines;
    std::istringstream stream(source);
    std::string raw;
    int number = 0;
    while (std::getline(stream, raw)) {
        ++number;
        // Strip comments.
        for (const char *marker : {"#", "//"}) {
            const size_t pos = raw.find(marker);
            if (pos != std::string::npos)
                raw.resize(pos);
        }
        std::string text = trim(raw);
        Line line;
        line.number = number;
        // Peel leading labels.
        for (;;) {
            const size_t colon = text.find(':');
            if (colon == std::string::npos)
                break;
            // Only treat as a label if everything before ':' is a name.
            const std::string head = trim(text.substr(0, colon));
            const bool is_name = !head.empty()
                && std::all_of(head.begin(), head.end(), [](char c) {
                       return std::isalnum(static_cast<unsigned char>(c))
                           || c == '_' || c == '.';
                   });
            if (!is_name)
                break;
            line.labels.push_back(head);
            text = trim(text.substr(colon + 1));
        }
        if (!text.empty()) {
            // Split mnemonic from operands.
            const size_t space = text.find_first_of(" \t");
            line.mnemonic = text.substr(0, space);
            std::transform(line.mnemonic.begin(), line.mnemonic.end(),
                           line.mnemonic.begin(), [](unsigned char c) {
                               return std::tolower(c);
                           });
            if (space != std::string::npos) {
                std::string rest = trim(text.substr(space + 1));
                std::string operand;
                for (char c : rest) {
                    if (c == ',') {
                        line.operands.push_back(trim(operand));
                        operand.clear();
                    } else {
                        operand += c;
                    }
                }
                operand = trim(operand);
                if (!operand.empty())
                    line.operands.push_back(operand);
            }
        }
        if (!line.labels.empty() || !line.mnemonic.empty())
            lines.push_back(std::move(line));
    }
    return lines;
}

int64_t
parseImmediate(const std::string &token, int line)
{
    std::string text = token;
    bool negative = false;
    if (!text.empty() && (text[0] == '-' || text[0] == '+')) {
        negative = text[0] == '-';
        text = text.substr(1);
    }
    if (text.empty())
        davf_fatal("line ", line, ": empty immediate");
    int64_t value = 0;
    try {
        size_t used = 0;
        if (text.size() > 2 && text[0] == '0'
            && (text[1] == 'x' || text[1] == 'X')) {
            value = static_cast<int64_t>(
                std::stoull(text.substr(2), &used, 16));
            used += 2;
        } else {
            value = static_cast<int64_t>(std::stoll(text, &used, 10));
        }
        if (used != text.size())
            davf_fatal("line ", line, ": bad immediate '", token, "'");
    } catch (const std::exception &) {
        davf_fatal("line ", line, ": bad immediate '", token, "'");
    }
    return negative ? -value : value;
}

/** Fixed mapping of ABI register names. */
const std::unordered_map<std::string, unsigned> &
abiRegisters()
{
    static const std::unordered_map<std::string, unsigned> map = {
        {"zero", 0}, {"ra", 1},  {"sp", 2},   {"gp", 3},  {"tp", 4},
        {"t0", 5},   {"t1", 6},  {"t2", 7},   {"s0", 8},  {"fp", 8},
        {"s1", 9},   {"a0", 10}, {"a1", 11},  {"a2", 12}, {"a3", 13},
        {"a4", 14},  {"a5", 15}, {"a6", 16},  {"a7", 17}, {"s2", 18},
        {"s3", 19},  {"s4", 20}, {"s5", 21},  {"s6", 22}, {"s7", 23},
        {"s8", 24},  {"s9", 25}, {"s10", 26}, {"s11", 27}, {"t3", 28},
        {"t4", 29},  {"t5", 30}, {"t6", 31},
    };
    return map;
}

/** Instruction encodings. */
uint32_t
encodeR(unsigned funct7, unsigned rs2, unsigned rs1, unsigned funct3,
        unsigned rd, unsigned opcode)
{
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12)
        | (rd << 7) | opcode;
}

uint32_t
encodeI(int32_t imm, unsigned rs1, unsigned funct3, unsigned rd,
        unsigned opcode, int line)
{
    if (imm < -2048 || imm > 2047)
        davf_fatal("line ", line, ": I-immediate out of range: ", imm);
    return (static_cast<uint32_t>(imm & 0xfff) << 20) | (rs1 << 15)
        | (funct3 << 12) | (rd << 7) | opcode;
}

uint32_t
encodeS(int32_t imm, unsigned rs2, unsigned rs1, unsigned funct3,
        unsigned opcode, int line)
{
    if (imm < -2048 || imm > 2047)
        davf_fatal("line ", line, ": S-immediate out of range: ", imm);
    const uint32_t uimm = static_cast<uint32_t>(imm & 0xfff);
    return ((uimm >> 5) << 25) | (rs2 << 20) | (rs1 << 15)
        | (funct3 << 12) | ((uimm & 0x1f) << 7) | opcode;
}

uint32_t
encodeB(int32_t offset, unsigned rs2, unsigned rs1, unsigned funct3,
        int line)
{
    if (offset < -4096 || offset > 4094 || (offset & 1) != 0)
        davf_fatal("line ", line, ": branch offset out of range: ",
                   offset);
    const uint32_t u = static_cast<uint32_t>(offset);
    return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3f) << 25)
        | (rs2 << 20) | (rs1 << 15) | (funct3 << 12)
        | (((u >> 1) & 0xf) << 8) | (((u >> 11) & 1) << 7) | 0x63;
}

uint32_t
encodeU(uint32_t imm_31_12, unsigned rd, unsigned opcode)
{
    return (imm_31_12 << 12) | (rd << 7) | opcode;
}

uint32_t
encodeJ(int32_t offset, unsigned rd, int line)
{
    if (offset < -(1 << 20) || offset >= (1 << 20)
        || (offset & 1) != 0) {
        davf_fatal("line ", line, ": jump offset out of range: ",
                   offset);
    }
    const uint32_t u = static_cast<uint32_t>(offset);
    return (((u >> 20) & 1) << 31) | (((u >> 1) & 0x3ff) << 21)
        | (((u >> 11) & 1) << 20) | (((u >> 12) & 0xff) << 12)
        | (rd << 7) | 0x6f;
}

/** Split "offset(reg)" into its parts. */
void
parseMemOperand(const std::string &operand, int line, int64_t &offset,
                unsigned &base_reg)
{
    const size_t open = operand.find('(');
    const size_t close = operand.rfind(')');
    if (open == std::string::npos || close == std::string::npos
        || close <= open) {
        davf_fatal("line ", line, ": expected offset(reg), got '",
                   operand, "'");
    }
    const std::string off = trim(operand.substr(0, open));
    offset = off.empty() ? 0 : parseImmediate(off, line);
    base_reg = parseRegister(trim(
        operand.substr(open + 1, close - open - 1)));
}

/** li expansion: 1 word if the value fits in a signed 12-bit, else 2. */
unsigned
liLength(int64_t value)
{
    return (value >= -2048 && value <= 2047) ? 1 : 2;
}

/** Number of words a line assembles to (pass 1). */
unsigned
lineLength(const Line &line)
{
    const std::string &m = line.mnemonic;
    if (m.empty())
        return 0;
    if (m == ".word")
        return static_cast<unsigned>(line.operands.size());
    if (m == ".space") {
        if (line.operands.empty())
            davf_fatal("line ", line.number, ": missing operand");
        const int64_t bytes = parseImmediate(line.operands[0],
                                             line.number);
        if (bytes < 0 || bytes > (1 << 26))
            davf_fatal("line ", line.number, ": bad .space size ",
                       bytes);
        return static_cast<unsigned>((bytes + 3) / 4);
    }
    if (m == "li") {
        if (line.operands.size() < 2)
            davf_fatal("line ", line.number, ": missing operand");
        return liLength(parseImmediate(line.operands[1], line.number));
    }
    if (m == "la" || m == "call")
        return m == "la" ? 2 : 1;
    return 1;
}

} // namespace

unsigned
parseRegister(const std::string &token)
{
    if (token.size() >= 2 && (token[0] == 'x' || token[0] == 'X')) {
        bool numeric = true;
        for (size_t i = 1; i < token.size(); ++i)
            numeric = numeric
                && std::isdigit(static_cast<unsigned char>(token[i]));
        if (numeric) {
            unsigned index = 32; // huge numerals overflow stoul
            try {
                index =
                    static_cast<unsigned>(std::stoul(token.substr(1)));
            } catch (const std::exception &) {
            }
            if (index >= 32)
                davf_fatal("bad register ", token);
            return index;
        }
    }
    auto it = abiRegisters().find(token);
    if (it == abiRegisters().end())
        davf_fatal("unknown register '", token, "'");
    return it->second;
}

std::vector<uint32_t>
assemble(const std::string &source, uint32_t base)
{
    davf_assert(base % 4 == 0, "base address must be word aligned");
    const std::vector<Line> lines = tokenize(source);

    // Pass 1: label addresses.
    std::unordered_map<std::string, uint32_t> labels;
    uint32_t pc = base;
    for (const Line &line : lines) {
        for (const std::string &label : line.labels) {
            if (labels.contains(label)) {
                davf_fatal("line ", line.number, ": duplicate label '",
                           label, "'");
            }
            labels[label] = pc;
        }
        pc += 4 * lineLength(line);
    }

    auto resolve = [&](const std::string &token, int line) -> int64_t {
        auto it = labels.find(token);
        if (it != labels.end())
            return it->second;
        return parseImmediate(token, line);
    };

    // Pass 2: encoding.
    std::vector<uint32_t> image;
    pc = base;
    auto emit = [&](uint32_t word) {
        image.push_back(word);
        pc += 4;
    };

    struct AluOp
    {
        unsigned funct3;
        unsigned funct7;
    };
    static const std::unordered_map<std::string, AluOp> r_ops = {
        {"add", {0, 0x00}},  {"sub", {0, 0x20}},  {"sll", {1, 0x00}},
        {"slt", {2, 0x00}},  {"sltu", {3, 0x00}}, {"xor", {4, 0x00}},
        {"srl", {5, 0x00}},  {"sra", {5, 0x20}},  {"or", {6, 0x00}},
        {"and", {7, 0x00}},  {"mul", {0, 0x01}},
    };
    static const std::unordered_map<std::string, unsigned> i_ops = {
        {"addi", 0}, {"slti", 2}, {"sltiu", 3}, {"xori", 4},
        {"ori", 6},  {"andi", 7},
    };
    static const std::unordered_map<std::string, AluOp> shift_ops = {
        {"slli", {1, 0x00}}, {"srli", {5, 0x00}}, {"srai", {5, 0x20}},
    };
    static const std::unordered_map<std::string, unsigned> branch_ops = {
        {"beq", 0}, {"bne", 1}, {"blt", 4}, {"bge", 5},
        {"bltu", 6}, {"bgeu", 7},
    };

    for (const Line &line : lines) {
        const std::string &m = line.mnemonic;
        const auto &ops = line.operands;
        const int ln = line.number;
        if (m.empty())
            continue;

        auto reg = [&](size_t index) {
            if (index >= ops.size())
                davf_fatal("line ", ln, ": missing operand");
            return parseRegister(ops[index]);
        };
        auto arg = [&](size_t index) -> const std::string & {
            if (index >= ops.size())
                davf_fatal("line ", ln, ": missing operand");
            return ops[index];
        };

        if (m == ".word") {
            for (const std::string &op : ops)
                emit(static_cast<uint32_t>(resolve(op, ln)));
        } else if (m == ".space") {
            const unsigned words = lineLength(line);
            for (unsigned i = 0; i < words; ++i)
                emit(0);
        } else if (r_ops.contains(m)) {
            const AluOp &op = r_ops.at(m);
            emit(encodeR(op.funct7, reg(2), reg(1), op.funct3, reg(0),
                         0x33));
        } else if (i_ops.contains(m)) {
            emit(encodeI(static_cast<int32_t>(resolve(arg(2), ln)),
                         reg(1), i_ops.at(m), reg(0), 0x13, ln));
        } else if (shift_ops.contains(m)) {
            const AluOp &op = shift_ops.at(m);
            const int64_t amount = parseImmediate(arg(2), ln);
            if (amount < 0 || amount >= 32)
                davf_fatal("line ", ln, ": bad shift amount");
            emit(encodeR(op.funct7, static_cast<unsigned>(amount),
                         reg(1), op.funct3, reg(0), 0x13));
        } else if (branch_ops.contains(m)) {
            const int64_t target = resolve(arg(2), ln);
            emit(encodeB(static_cast<int32_t>(target - pc), reg(1),
                         reg(0), branch_ops.at(m), ln));
        } else if (m == "bgt" || m == "ble" || m == "bgtu"
                   || m == "bleu") {
            // Swapped-operand pseudo branches.
            const unsigned funct3 =
                (m == "bgt") ? 4 : (m == "ble") ? 5 : (m == "bgtu") ? 6
                                                                    : 7;
            const int64_t target = resolve(arg(2), ln);
            emit(encodeB(static_cast<int32_t>(target - pc), reg(0),
                         reg(1), funct3, ln));
        } else if (m == "beqz" || m == "bnez") {
            const int64_t target = resolve(arg(1), ln);
            emit(encodeB(static_cast<int32_t>(target - pc), 0, reg(0),
                         m == "beqz" ? 0 : 1, ln));
        } else if (m == "lw" || m == "lb" || m == "lbu") {
            int64_t offset;
            unsigned base_reg;
            parseMemOperand(arg(1), ln, offset, base_reg);
            const unsigned funct3 = (m == "lw") ? 2 : (m == "lb") ? 0 : 4;
            emit(encodeI(static_cast<int32_t>(offset), base_reg, funct3,
                         reg(0), 0x03, ln));
        } else if (m == "sw" || m == "sb") {
            int64_t offset;
            unsigned base_reg;
            parseMemOperand(arg(1), ln, offset, base_reg);
            emit(encodeS(static_cast<int32_t>(offset), reg(0), base_reg,
                         m == "sw" ? 2 : 0, 0x23, ln));
        } else if (m == "lh" || m == "lhu" || m == "sh") {
            davf_fatal("line ", ln,
                       ": halfword memory ops are unsupported");
        } else if (m == "lui") {
            emit(encodeU(static_cast<uint32_t>(resolve(arg(1), ln))
                             & 0xfffff,
                         reg(0), 0x37));
        } else if (m == "auipc") {
            emit(encodeU(static_cast<uint32_t>(resolve(arg(1), ln))
                             & 0xfffff,
                         reg(0), 0x17));
        } else if (m == "jal") {
            // "jal label" or "jal rd, label".
            if (ops.size() == 1) {
                const int64_t target = resolve(arg(0), ln);
                emit(encodeJ(static_cast<int32_t>(target - pc), 1, ln));
            } else {
                const int64_t target = resolve(arg(1), ln);
                emit(encodeJ(static_cast<int32_t>(target - pc), reg(0),
                             ln));
            }
        } else if (m == "j") {
            const int64_t target = resolve(arg(0), ln);
            emit(encodeJ(static_cast<int32_t>(target - pc), 0, ln));
        } else if (m == "call") {
            const int64_t target = resolve(arg(0), ln);
            emit(encodeJ(static_cast<int32_t>(target - pc), 1, ln));
        } else if (m == "jalr") {
            // "jalr rd, offset(rs1)" or "jalr rs1".
            if (ops.size() == 1) {
                emit(encodeI(0, reg(0), 0, 1, 0x67, ln));
            } else {
                int64_t offset;
                unsigned base_reg;
                parseMemOperand(arg(1), ln, offset, base_reg);
                emit(encodeI(static_cast<int32_t>(offset), base_reg, 0,
                             reg(0), 0x67, ln));
            }
        } else if (m == "ret") {
            emit(encodeI(0, 1, 0, 0, 0x67, ln));
        } else if (m == "nop") {
            emit(encodeI(0, 0, 0, 0, 0x13, ln));
        } else if (m == "mv") {
            emit(encodeI(0, reg(1), 0, reg(0), 0x13, ln));
        } else if (m == "not") {
            emit(encodeI(-1, reg(1), 4, reg(0), 0x13, ln));
        } else if (m == "neg") {
            emit(encodeR(0x20, reg(1), 0, 0, reg(0), 0x33));
        } else if (m == "seqz") {
            emit(encodeI(1, reg(1), 3, reg(0), 0x13, ln)); // sltiu rd,rs,1
        } else if (m == "snez") {
            emit(encodeR(0, reg(1), 0, 3, reg(0), 0x33)); // sltu rd,x0,rs
        } else if (m == "li") {
            const int64_t value = resolve(arg(1), ln);
            const auto u = static_cast<uint32_t>(value);
            if (liLength(value) == 1) {
                emit(encodeI(static_cast<int32_t>(value), 0, 0, reg(0),
                             0x13, ln));
            } else {
                // lui + addi with sign-compensated upper part.
                const uint32_t upper = (u + 0x800) >> 12;
                const auto lower =
                    static_cast<int32_t>(u & 0xfff)
                    - ((u & 0x800) ? 0x1000 : 0);
                emit(encodeU(upper & 0xfffff, reg(0), 0x37));
                emit(encodeI(lower, reg(0), 0, reg(0), 0x13, ln));
            }
        } else if (m == "la") {
            const int64_t value = resolve(arg(1), ln);
            const auto u = static_cast<uint32_t>(value);
            const uint32_t upper = (u + 0x800) >> 12;
            const auto lower = static_cast<int32_t>(u & 0xfff)
                - ((u & 0x800) ? 0x1000 : 0);
            emit(encodeU(upper & 0xfffff, reg(0), 0x37));
            emit(encodeI(lower, reg(0), 0, reg(0), 0x13, ln));
        } else {
            davf_fatal("line ", ln, ": unknown mnemonic '", m, "'");
        }
    }
    return image;
}

} // namespace davf
