#include "scheduler.hh"

#include <chrono>
#include <sstream>

#include "campaign/checkpoint.hh"
#include "campaign/supervisor.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace davf::service {

namespace {

using Clock = std::chrono::steady_clock;

/** Scheduler metric handles, mirroring SchedulerStats. */
struct SchedulerMetrics
{
    obs::Counter queries{"service.queries"};
    obs::Counter shardHits{"service.shard_hits"};
    obs::Counter inFlightHits{"service.in_flight_hits"};
    obs::Counter shardsComputed{"service.shards_computed"};
    obs::Counter cancelled{"service.cancelled"};
    obs::Counter queryNs{"service.time.query_ns"};
};

SchedulerMetrics &
schedulerMetrics()
{
    static SchedulerMetrics *const metrics = new SchedulerMetrics();
    return *metrics;
}

double
elapsedMs(Clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - since)
        .count();
}

/** Parse a stored outcome payload; any damage or trailing junk fails. */
bool
parseOutcomePayload(const std::string &payload,
                    InjectionCycleOutcome &outcome)
{
    std::istringstream is(payload);
    if (!parseOutcomeFields(is, outcome))
        return false;
    std::string trailing;
    return !(is >> trailing);
}

bool
parseSavfPayload(const std::string &payload, SavfResult &result)
{
    std::istringstream is(payload);
    if (!parseSavfFields(is, result))
        return false;
    std::string trailing;
    return !(is >> trailing);
}

std::string
histogramJson(const Histogram &h)
{
    std::ostringstream os;
    os << "{\"count\":" << h.count() << ",\"bins\":[";
    bool first = true;
    for (size_t i = 0; i < h.bins().size(); ++i) {
        if (h.bins()[i] == 0)
            continue;
        if (!first)
            os << ',';
        first = false;
        os << "{\"lo\":" << h.binLo(i) << ",\"hi\":" << h.binHi(i)
           << ",\"n\":" << h.bins()[i] << '}';
    }
    os << "]}";
    return os.str();
}

} // namespace

QueryScheduler::QueryScheduler(VulnerabilityEngine &the_engine,
                               const StructureRegistry &the_registry,
                               std::string the_fingerprint,
                               ResultStore &the_store, Options the_options)
    : engine(&the_engine), registry(&the_registry),
      fingerprint(std::move(the_fingerprint)), store(&the_store),
      options(std::move(the_options)), lookupMs(0.0, 50.0, 25),
      computeMs(0.0, 5000.0, 25), aggregateMs(0.0, 50.0, 25)
{
    if (!options.workerArgv.empty()) {
        SupervisorOptions sup;
        sup.workerArgv = options.workerArgv;
        sup.workers = options.workers;
        sup.maxRetries = options.maxRetries;
        sup.workerMemMb = options.workerMemMb;
        sup.configHash = fingerprint;
        sup.benchmark = options.benchmark;
        supervisor = std::make_unique<Supervisor>(std::move(sup));
    }
}

QueryScheduler::~QueryScheduler() = default;

std::string
shardStoreKey(const std::string &fingerprint, const ShardSpec &spec)
{
    return fingerprint + " " + serializeShardSpec(spec);
}

std::string
QueryScheduler::shardKey(const ShardSpec &spec) const
{
    return shardStoreKey(fingerprint, spec);
}

void
QueryScheduler::storeOutcome(ShardSpec spec,
                             const InjectionCycleOutcome &outcome)
{
    spec.cycle = outcome.cycle;
    // Attribution-bearing payloads carry the v3 grammar extension;
    // plain outcomes keep writing v2 so old readers stay compatible.
    store->store(shardKey(spec), serializeOutcomeFields(outcome),
                 outcome.attr.valid ? 3 : 2);
}

Result<DelayAvfResult>
QueryScheduler::runDavfCell(const Structure &structure,
                            const QuerySpec &query, double d,
                            const std::atomic<bool> *cancel,
                            QueryReply &reply)
{
    using R = Result<DelayAvfResult>;

    SamplingConfig sampling = query.sampling;
    sampling.threads = options.threads;
    sampling.stopFlag = cancel;

    // The spec prototype that, with a cycle filled in, keys one shard.
    // Its sampling is the query's verbatim (threads and stop flag are
    // operational and not serialized), so every process pointed at the
    // same store derives the same keys.
    ShardSpec spec;
    spec.kind = ShardSpec::Kind::Cycle;
    spec.structure = query.structure;
    spec.delayFraction = d;
    spec.sampling = query.sampling;

    const std::vector<uint64_t> cycles = engine->injectionCycles(sampling);

    DelayAvfProgress progress;
    std::vector<uint64_t> missing;
    const Clock::time_point lookup_start = Clock::now();
    for (uint64_t cycle : cycles) {
        spec.cycle = cycle;
        bool hit = false;
        if (auto payload = store->lookup(shardKey(spec))) {
            InjectionCycleOutcome outcome;
            if (parseOutcomePayload(*payload, outcome)) {
                progress.completed.push_back(std::move(outcome));
                hit = true;
            } else {
                davf_warn("store payload for cycle ", cycle,
                          " unparseable; recomputing");
            }
        }
        if (hit) {
            ++reply.storeHits;
            schedulerMetrics().shardHits.add(1);
            const std::lock_guard<std::mutex> stats_lock(statsMutex);
            ++counters.shardHits;
        } else {
            missing.push_back(cycle);
        }
    }
    {
        const std::lock_guard<std::mutex> stats_lock(statsMutex);
        lookupMs.add(elapsedMs(lookup_start));
    }

    const std::lock_guard<std::mutex> engine_lock(engineMutex);

    if (!missing.empty()) {
        // Double-check under the compute lock: a concurrent client may
        // have computed (and stored) these shards while we waited. This
        // is the in-flight dedupe — identical concurrent queries cost
        // one simulation.
        std::vector<uint64_t> still;
        for (uint64_t cycle : missing) {
            spec.cycle = cycle;
            InjectionCycleOutcome outcome;
            if (auto payload = store->lookup(shardKey(spec));
                payload && parseOutcomePayload(*payload, outcome)) {
                progress.completed.push_back(std::move(outcome));
                ++reply.storeHits;
                schedulerMetrics().shardHits.add(1);
                schedulerMetrics().inFlightHits.add(1);
                const std::lock_guard<std::mutex> stats_lock(statsMutex);
                ++counters.shardHits;
                ++counters.inFlightHits;
            } else {
                still.push_back(cycle);
            }
        }
        missing = std::move(still);
    }

    if (!missing.empty() && supervisor) {
        // Process-isolated compute: ship the missing cycles to the
        // worker pool; each completed outcome is persisted on arrival.
        // (Cancellation takes effect between cells in this mode.)
        const Clock::time_point compute_start = Clock::now();
        const std::vector<WireId> wires =
            engine->sampledWires(structure, sampling);
        const Supervisor::DavfCellResult cell = supervisor->runDavfCell(
            query.structure, d, missing, wires, query.sampling, {},
            [&](const InjectionCycleOutcome &outcome) {
                storeOutcome(spec, outcome);
                progress.completed.push_back(outcome);
                ++reply.storeMisses;
                schedulerMetrics().shardsComputed.add(1);
                const std::lock_guard<std::mutex> stats_lock(statsMutex);
                ++counters.shardsComputed;
            });
        {
            const std::lock_guard<std::mutex> stats_lock(statsMutex);
            computeMs.add(elapsedMs(compute_start));
        }
        if (cell.stopped)
            return R::Err(ErrorKind::Timeout, "query cancelled");
        if (cell.failed) {
            return R::Err(ErrorKind::Internal,
                          "isolated cell failed: " + cell.failReason);
        }
        missing.clear();
    }

    if (!missing.empty()) {
        // In-process compute: delayAvf() simulates exactly the cycles
        // absent from progress.completed on the engine thread pool and
        // aggregates everything — the checkpoint-resume path, so the
        // result is bit-identical to a cold run.
        progress.onCycleDone = [&](const InjectionCycleOutcome &outcome) {
            storeOutcome(spec, outcome);
            ++reply.storeMisses;
            schedulerMetrics().shardsComputed.add(1);
            const std::lock_guard<std::mutex> stats_lock(statsMutex);
            ++counters.shardsComputed;
        };
        const Clock::time_point compute_start = Clock::now();
        DelayAvfResult result =
            engine->delayAvf(structure, d, sampling, &progress);
        {
            const std::lock_guard<std::mutex> stats_lock(statsMutex);
            computeMs.add(elapsedMs(compute_start));
        }
        if (result.stopped)
            return R::Err(ErrorKind::Timeout, "query cancelled");
        return R::Ok(std::move(result));
    }

    // Aggregation only: every cycle came from the store (or the worker
    // pool). No stop flag — nothing simulates, so nothing can hang.
    SamplingConfig agg_sampling = sampling;
    agg_sampling.stopFlag = nullptr;
    progress.onCycleDone = nullptr;
    const Clock::time_point agg_start = Clock::now();
    DelayAvfResult result =
        engine->delayAvf(structure, d, agg_sampling, &progress);
    {
        const std::lock_guard<std::mutex> stats_lock(statsMutex);
        aggregateMs.add(elapsedMs(agg_start));
    }
    return R::Ok(std::move(result));
}

Result<SavfResult>
QueryScheduler::runSavfCell(const Structure &structure,
                            const QuerySpec &query,
                            const std::atomic<bool> *cancel,
                            QueryReply &reply)
{
    using R = Result<SavfResult>;

    ShardSpec spec;
    spec.kind = ShardSpec::Kind::Savf;
    spec.structure = query.structure;
    spec.sampling = query.sampling;
    const std::string key = shardKey(spec);

    const Clock::time_point lookup_start = Clock::now();
    auto tryLookup = [&]() -> std::optional<SavfResult> {
        SavfResult result;
        if (auto payload = store->lookup(key);
            payload && parseSavfPayload(*payload, result)) {
            return result;
        }
        return std::nullopt;
    };
    std::optional<SavfResult> hit = tryLookup();
    {
        const std::lock_guard<std::mutex> stats_lock(statsMutex);
        lookupMs.add(elapsedMs(lookup_start));
    }
    if (hit) {
        ++reply.storeHits;
        schedulerMetrics().shardHits.add(1);
        const std::lock_guard<std::mutex> stats_lock(statsMutex);
        ++counters.shardHits;
        return R::Ok(std::move(*hit));
    }

    const std::lock_guard<std::mutex> engine_lock(engineMutex);
    if ((hit = tryLookup())) {
        ++reply.storeHits;
        schedulerMetrics().shardHits.add(1);
        schedulerMetrics().inFlightHits.add(1);
        const std::lock_guard<std::mutex> stats_lock(statsMutex);
        ++counters.shardHits;
        ++counters.inFlightHits;
        return R::Ok(std::move(*hit));
    }

    const Clock::time_point compute_start = Clock::now();
    SavfResult result;
    if (supervisor) {
        const Supervisor::SavfCellResult cell =
            supervisor->runSavfCell(query.structure, query.sampling);
        if (cell.failed) {
            return R::Err(ErrorKind::Internal,
                          "isolated sAVF cell failed: " + cell.failReason);
        }
        result = cell.savf;
    } else {
        SamplingConfig sampling = query.sampling;
        sampling.threads = options.threads;
        sampling.stopFlag = cancel;
        result = engine->savf(structure, sampling);
    }
    schedulerMetrics().shardsComputed.add(1);
    {
        const std::lock_guard<std::mutex> stats_lock(statsMutex);
        computeMs.add(elapsedMs(compute_start));
        ++counters.shardsComputed;
    }
    if (result.stopped)
        return R::Err(ErrorKind::Timeout, "query cancelled");
    store->store(key, serializeSavfFields(result));
    ++reply.storeMisses;
    return R::Ok(std::move(result));
}

Result<QueryScheduler::QueryReply>
QueryScheduler::run(const QuerySpec &query,
                    const std::atomic<bool> *cancel)
{
    using R = Result<QueryReply>;
    const obs::Span query_span("service.query",
                               &schedulerMetrics().queryNs);
    try {
        const Structure *structure = registry->find(query.structure);
        if (!structure) {
            return R::Err(ErrorKind::NotFound, "unknown structure '"
                                                   + query.structure
                                                   + "'");
        }

        QueryReply reply;
        std::vector<ReportRow> rows;
        for (double d : query.delays) {
            Result<DelayAvfResult> cell =
                runDavfCell(*structure, query, d, cancel, reply);
            if (!cell) {
                if (cell.error().kind() == ErrorKind::Timeout) {
                    schedulerMetrics().cancelled.add(1);
                    const std::lock_guard<std::mutex> lock(statsMutex);
                    ++counters.cancelled;
                }
                return R::Err(cell.error());
            }
            ReportRow row;
            row.kind = "davf";
            row.benchmark = options.benchmark;
            row.structure = query.structure + options.structureLabel;
            row.delayFraction = d;
            row.davf = std::move(cell.value());
            rows.push_back(std::move(row));
        }

        if (query.runSavf) {
            Result<SavfResult> cell =
                runSavfCell(*structure, query, cancel, reply);
            if (!cell) {
                if (cell.error().kind() == ErrorKind::Timeout) {
                    schedulerMetrics().cancelled.add(1);
                    const std::lock_guard<std::mutex> lock(statsMutex);
                    ++counters.cancelled;
                }
                return R::Err(cell.error());
            }
            ReportRow row;
            row.kind = "savf";
            row.benchmark = options.benchmark;
            row.structure = query.structure + options.structureLabel;
            row.savf = std::move(cell.value());
            rows.push_back(std::move(row));
        }

        reply.reportJson = reportJson(rows);
        schedulerMetrics().queries.add(1);
        {
            const std::lock_guard<std::mutex> lock(statsMutex);
            ++counters.queries;
        }
        return R::Ok(std::move(reply));
    } catch (const DavfError &error) {
        return R::Err(error);
    }
}

SchedulerStats
QueryScheduler::stats() const
{
    const std::lock_guard<std::mutex> lock(statsMutex);
    return counters;
}

std::string
QueryScheduler::statsJson() const
{
    const StoreStats store_stats = store->stats();
    const std::lock_guard<std::mutex> lock(statsMutex);
    std::ostringstream os;
    os << "{\"queries\":" << counters.queries
       << ",\"shard_hits\":" << counters.shardHits
       << ",\"in_flight_hits\":" << counters.inFlightHits
       << ",\"shards_computed\":" << counters.shardsComputed
       << ",\"cancelled\":" << counters.cancelled
       << ",\"store\":{\"memory_hits\":" << store_stats.memoryHits
       << ",\"disk_hits\":" << store_stats.diskHits
       << ",\"misses\":" << store_stats.misses
       << ",\"evictions\":" << store_stats.evictions
       << ",\"corrupt_records\":" << store_stats.corruptRecords
       << ",\"future_records\":" << store_stats.futureRecords
       << ",\"writes\":" << store_stats.writes
       << ",\"write_failures\":" << store_stats.writeFailures
       << ",\"repair_unlinks\":" << store_stats.repairUnlinks
       << ",\"lru_entries\":" << store_stats.lruEntries
       << ",\"lru_bytes\":" << store_stats.lruBytes;
    if (const auto index_stats = store->indexStats()) {
        os << ",\"index\":{\"lookups\":" << index_stats->lookups
           << ",\"hits\":" << index_stats->hits
           << ",\"corrupt_records\":" << index_stats->corrupt
           << ",\"future_records\":" << index_stats->future
           << ",\"collisions\":" << index_stats->collisions
           << ",\"appends\":" << index_stats->appends
           << ",\"replayed_frames\":" << index_stats->replayed
           << ",\"rebuilds\":" << index_stats->rebuilds
           << ",\"tail_repairs\":" << index_stats->tailRepairs
           << ",\"checkpoints\":" << index_stats->checkpoints
           << ",\"checkpoint_failures\":"
           << index_stats->checkpointFailures
           << ",\"keys\":" << index_stats->keys
           << ",\"buckets\":" << index_stats->buckets
           << ",\"depth\":" << index_stats->depth
           << ",\"splits\":" << index_stats->splits
           << ",\"segment_bytes\":" << index_stats->segmentBytes
           << '}';
    }
    os << "},\"latency_ms\":{\"lookup\":" << histogramJson(lookupMs)
       << ",\"compute\":" << histogramJson(computeMs)
       << ",\"aggregate\":" << histogramJson(aggregateMs)
       << "},\"registry\":"
       << obs::MetricsRegistry::instance().snapshot().toJson() << '}';
    return os.str();
}

} // namespace davf::service
