#!/bin/sh
# Tier-1 CI gate: build the tree in the default (RelWithDebInfo)
# configuration and under address+undefined sanitizers, and run the
# full ctest suite in both. Any failure fails the script.
#
# Usage: tools/ci_check.sh [jobs]
set -eu

jobs="${1:-$(nproc 2>/dev/null || echo 4)}"
root="$(cd "$(dirname "$0")/.." && pwd)"

run_config() {
    build_dir="$1"
    shift
    echo "=== configure $build_dir ($*)" >&2
    cmake -B "$build_dir" -S "$root" "$@"
    echo "=== build $build_dir" >&2
    cmake --build "$build_dir" -j "$jobs"
    echo "=== test $build_dir" >&2
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

# Process-isolation smoke: run a tiny campaign with worker processes
# and the deterministic crash hook armed. The supervisor must retry,
# bisect the crash down to one injection, quarantine it, and still
# complete with exit 0 — under sanitizers, so the worker protocol and
# the bisection path get ASan/UBSan coverage on every CI run.
# RLIMIT_AS (--worker-mem-mb) is incompatible with ASan's shadow
# mappings and is deliberately not passed here.
isolation_smoke() {
    build_dir="$1"
    smoke_dir="$build_dir/isolation-smoke"
    rm -rf "$smoke_dir"
    mkdir -p "$smoke_dir"
    echo "=== isolation smoke $build_dir" >&2
    DAVF_TEST_FAULT='crash@ALU:*:3' \
        "$build_dir/tools/davf_run" \
        --benchmark popcount --structure ALU --delays 0.5:0.9:0.4 \
        --cycles 2 --wires 12 --isolate process --workers 2 \
        --max-retries 1 --backoff-ms 1 --max-failure-rate 0.5 \
        --quarantine-dir "$smoke_dir/quarantine" \
        --shard-metrics-csv "$smoke_dir/shards.csv" \
        --checkpoint "$smoke_dir/journal.ckpt" \
        --csv "$smoke_dir/davf.csv"
    quarantined=$(ls "$smoke_dir/quarantine"/*.qr 2>/dev/null | wc -l)
    if [ "$quarantined" -eq 0 ]; then
        echo "isolation smoke: no quarantine records written" >&2
        exit 1
    fi
    for f in shards.csv journal.ckpt davf.csv; do
        if [ ! -s "$smoke_dir/$f" ]; then
            echo "isolation smoke: missing $f" >&2
            exit 1
        fi
    done
    echo "=== isolation smoke ok ($quarantined quarantined)" >&2
}

# Vector smoke: the bit-parallel GroupACE path must be invisible in
# the output — run the same cheap sweep with the vectorized engine
# (the default) and with --no-vector, in-process and with worker
# processes, and require every `davf_run --json` report byte-identical
# (docs/PERFORMANCE.md). Runs under both configs so the lane batching
# gets ASan/UBSan coverage on every CI run.
vector_smoke() {
    build_dir="$1"
    smoke_dir="$build_dir/vector-smoke"
    rm -rf "$smoke_dir"
    mkdir -p "$smoke_dir"
    echo "=== vector smoke $build_dir" >&2
    sweep() {
        "$build_dir/tools/davf_run" --json \
            --benchmark popcount --structure ALU --delays 0.5:0.9:0.2 \
            --cycles 3 --wires 24 "$@"
    }
    sweep > "$smoke_dir/vector.json"
    sweep --no-vector > "$smoke_dir/scalar.json"
    sweep --isolate process --workers 2 \
        > "$smoke_dir/vector-isolated.json"
    sweep --no-vector --isolate process --workers 2 \
        > "$smoke_dir/scalar-isolated.json"
    for f in scalar.json vector-isolated.json scalar-isolated.json; do
        if ! cmp -s "$smoke_dir/vector.json" "$smoke_dir/$f"; then
            echo "vector smoke: $f differs from vector.json" >&2
            exit 1
        fi
    done
    echo "=== vector smoke ok (reports bit-identical)" >&2
}

# Observability smoke: metrics and tracing must never perturb results
# (docs/OBSERVABILITY.md). Run the same cheap sweep with and without
# --metrics-json/--trace-json, require the two --json reports
# byte-identical, and require every emitted JSON artifact — report,
# metric snapshot, Chrome trace — to pass the strict davf_jsonlint
# validator. Runs under both configs so the striped counters and span
# buffers get ASan/UBSan coverage on every CI run.
obs_smoke() {
    build_dir="$1"
    smoke_dir="$build_dir/obs-smoke"
    rm -rf "$smoke_dir"
    mkdir -p "$smoke_dir"
    echo "=== obs smoke $build_dir" >&2
    sweep() {
        "$build_dir/tools/davf_run" --json \
            --benchmark popcount --structure ALU --delays 0.5:0.9:0.2 \
            --cycles 3 --wires 24 "$@"
    }
    sweep > "$smoke_dir/plain.json"
    sweep --metrics-json "$smoke_dir/metrics.json" \
        --trace-json "$smoke_dir/trace.json" \
        > "$smoke_dir/observed.json"
    if ! cmp -s "$smoke_dir/plain.json" "$smoke_dir/observed.json"; then
        echo "obs smoke: report differs with metrics enabled" >&2
        exit 1
    fi
    "$build_dir/tools/davf_jsonlint" \
        "$smoke_dir/plain.json" "$smoke_dir/metrics.json" \
        "$smoke_dir/trace.json"
    if ! grep -q '"engine.cycles_computed":[1-9]' \
        "$smoke_dir/metrics.json"; then
        echo "obs smoke: no engine phase counters in snapshot:" >&2
        cat "$smoke_dir/metrics.json" >&2
        exit 1
    fi
    if ! grep -q '"name":"engine.cycle"' "$smoke_dir/trace.json"; then
        echo "obs smoke: no engine.cycle spans in trace" >&2
        exit 1
    fi
    echo "=== obs smoke ok (report bit-identical, JSON valid)" >&2
}

# Timed-simulator smoke: lane-parallel cone batching and cross-delay
# sweep reuse must be invisible in the output — run the same cheap
# sweep with the default engine and with --no-vector-tsim, in-process
# and with worker processes, and require every `davf_run --json`
# report byte-identical (docs/PERFORMANCE.md). Runs under both configs
# so the merged event queue and the reuse caches get ASan/UBSan
# coverage on every CI run.
tsim_smoke() {
    build_dir="$1"
    smoke_dir="$build_dir/tsim-smoke"
    rm -rf "$smoke_dir"
    mkdir -p "$smoke_dir"
    echo "=== tsim smoke $build_dir" >&2
    sweep() {
        "$build_dir/tools/davf_run" --json \
            --benchmark popcount --structure ALU --delays 0.5:0.9:0.2 \
            --cycles 3 --wires 24 "$@"
    }
    sweep > "$smoke_dir/vector.json"
    sweep --no-vector-tsim > "$smoke_dir/scalar.json"
    sweep --tsim-lanes 4 > "$smoke_dir/lanes4.json"
    sweep --isolate process --workers 2 \
        > "$smoke_dir/vector-isolated.json"
    sweep --no-vector-tsim --isolate process --workers 2 \
        > "$smoke_dir/scalar-isolated.json"
    for f in scalar.json lanes4.json vector-isolated.json \
        scalar-isolated.json; do
        if ! cmp -s "$smoke_dir/vector.json" "$smoke_dir/$f"; then
            echo "tsim smoke: $f differs from vector.json" >&2
            exit 1
        fi
    done
    echo "=== tsim smoke ok (reports bit-identical)" >&2
}

# Timed-simulator speedup artifact: the Step-1 counterpart of
# groupace_bench, Release config only. perf_engine exits non-zero if
# the lane-parallel sweep's report is not byte-identical to the
# scalar, sweep-blind one.
tsim_bench() {
    build_dir="$1"
    echo "=== tsim bench $build_dir" >&2
    DAVF_BENCH_TSIM_JSON="$root/BENCH_tsim.json" \
        "$build_dir/bench/perf_engine" \
        --benchmark_filter=TsimAluSweep
    if [ ! -s "$root/BENCH_tsim.json" ]; then
        echo "tsim bench: BENCH_tsim.json not written" >&2
        exit 1
    fi
    echo "=== tsim bench ok" >&2
}

# GroupACE speedup artifact: run the end-to-end ALU sweep benchmark in
# the Release config only (sanitizer timings are meaningless) and keep
# the measured scalar-vs-vector speedup at the repo root. perf_engine
# exits non-zero if the two sweeps' reports are not byte-identical.
groupace_bench() {
    build_dir="$1"
    echo "=== groupace bench $build_dir" >&2
    DAVF_BENCH_JSON="$root/BENCH_groupace.json" \
        "$build_dir/bench/perf_engine" \
        --benchmark_filter=GroupAceAluSweep
    if [ ! -s "$root/BENCH_groupace.json" ]; then
        echo "groupace bench: BENCH_groupace.json not written" >&2
        exit 1
    fi
    echo "=== groupace bench ok" >&2
}

# Serve smoke: start davf_serve with a persistent store, issue the
# same query twice and then from two concurrent clients, and require
# (a) every reply byte-identical, (b) the reply byte-identical to a
# cold `davf_run --json` of the same query (the cache-identity
# guarantee, docs/SERVICE.md), and (c) a non-zero store hit count in
# the server stats. Runs under both configs so the socket/framing and
# scheduler paths get sanitizer coverage.
serve_smoke() {
    build_dir="$1"
    smoke_dir="$build_dir/serve-smoke"
    rm -rf "$smoke_dir"
    mkdir -p "$smoke_dir"
    echo "=== serve smoke $build_dir" >&2
    sock="$smoke_dir/davf.sock"

    "$build_dir/tools/davf_serve" --socket "$sock" \
        --store-dir "$smoke_dir/store" --benchmark popcount \
        2> "$smoke_dir/serve.log" &
    serve_pid=$!
    trap 'kill "$serve_pid" 2>/dev/null || true' EXIT

    # The server binds the socket only once the workspace is built.
    waited=0
    while [ ! -S "$sock" ]; do
        if ! kill -0 "$serve_pid" 2>/dev/null; then
            echo "serve smoke: server died during startup" >&2
            cat "$smoke_dir/serve.log" >&2
            exit 1
        fi
        if [ "$waited" -ge 300 ]; then
            echo "serve smoke: server never bound $sock" >&2
            exit 1
        fi
        sleep 1
        waited=$((waited + 1))
    done

    query() {
        "$build_dir/tools/davf_client" --socket "$sock" \
            --benchmark popcount --structure ALU --delays 0.5:0.9:0.4 \
            --cycles 2 --wires 12 2>> "$smoke_dir/client.log"
    }
    query > "$smoke_dir/cold.json"
    query > "$smoke_dir/warm.json"
    query > "$smoke_dir/conc1.json" &
    pid1=$!
    query > "$smoke_dir/conc2.json" &
    pid2=$!
    wait "$pid1" "$pid2"

    "$build_dir/tools/davf_run" --json \
        --benchmark popcount --structure ALU --delays 0.5:0.9:0.4 \
        --cycles 2 --wires 12 > "$smoke_dir/run.json"

    for f in warm.json conc1.json conc2.json run.json; do
        if ! cmp -s "$smoke_dir/cold.json" "$smoke_dir/$f"; then
            echo "serve smoke: $f differs from cold.json" >&2
            exit 1
        fi
    done

    # --raw: the sed below keys on the unformatted "key":value shape.
    "$build_dir/tools/davf_client" --socket "$sock" --stats --raw \
        > "$smoke_dir/stats.json" 2>> "$smoke_dir/client.log"
    hits=$(sed -n 's/.*"shard_hits":\([0-9]*\).*/\1/p' \
        "$smoke_dir/stats.json")
    if [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
        echo "serve smoke: expected store hits, stats were:" >&2
        cat "$smoke_dir/stats.json" >&2
        exit 1
    fi

    kill "$serve_pid" 2>/dev/null || true
    wait "$serve_pid" 2>/dev/null || true
    trap - EXIT
    echo "=== serve smoke ok ($hits shard hits)" >&2
}

# Crash soak: the durability model against the real binaries
# (docs/ROBUSTNESS.md). Phase 1 kill -9s davf_run at every registered
# crash point (env-armed via DAVF_TEST_CRASHPOINT, iterating the list
# `davf_store crashpoints` prints), resumes from whatever the kill
# left behind, and requires the final --json report byte-identical to
# an undisturbed run — plus targeted torn/enospc cases on the journal
# write. Phase 2 tears a result-store record inside a crashing
# davf_serve, requires `davf_store fsck` to find and repair the
# damage, and requires a restarted server to converge on the exact
# cold-run reply. Runs under both configs so the recovery paths get
# ASan/UBSan coverage on every CI run.
crash_soak() {
    build_dir="$1"
    soak_dir="$build_dir/crash-soak"
    rm -rf "$soak_dir"
    mkdir -p "$soak_dir"
    echo "=== crash soak $build_dir" >&2

    sweep() {
        "$build_dir/tools/davf_run" --json \
            --benchmark popcount --structure ALU --delays 0.5:0.9:0.4 \
            --cycles 2 --wires 12 "$@"
    }
    sweep --checkpoint "$soak_dir/ref.ckpt" > "$soak_dir/ref.json"

    # One kill per registered point (hit 2, so at least one journal
    # write can land first when the point sits on the write path),
    # plus the two damage shapes on the journal write itself.
    specs=$("$build_dir/tools/davf_store" crashpoints \
            | sed 's/$/:2=kill/')
    specs="$specs atomic_file.write=torn atomic_file.write:2=enospc"
    for spec in $specs; do
        tag=$(echo "$spec" | tr ':=' '__')
        wdir="$soak_dir/$tag"
        mkdir -p "$wdir"
        rc=0
        env DAVF_TEST_CRASHPOINT="$spec" \
            "$build_dir/tools/davf_run" --json \
            --benchmark popcount --structure ALU \
            --delays 0.5:0.9:0.4 --cycles 2 --wires 12 \
            --checkpoint "$wdir/ck.ckpt" \
            > "$wdir/out.json" 2> "$wdir/run.log" || rc=$?
        if [ "$rc" -ne 0 ]; then
            # The point fired fatally: recover in a fresh process,
            # resuming if the crash left a (possibly torn) journal.
            resume_args=""
            [ -f "$wdir/ck.ckpt" ] \
                && resume_args="--resume $wdir/ck.ckpt"
            # shellcheck disable=SC2086
            sweep $resume_args --checkpoint "$wdir/ck.ckpt" \
                > "$wdir/out.json" 2>> "$wdir/run.log"
        fi
        if ! cmp -s "$soak_dir/ref.json" "$wdir/out.json"; then
            echo "crash soak: $spec: report differs after recovery" >&2
            cat "$wdir/run.log" >&2
            exit 1
        fi
        if ! cmp -s "$soak_dir/ref.ckpt" "$wdir/ck.ckpt"; then
            echo "crash soak: $spec: journal differs after recovery" >&2
            exit 1
        fi
    done

    # Phase 2: a torn store record. The armed server publishes a
    # truncated record and dies mid-campaign; fsck must classify and
    # quarantine it, and a clean restart must serve the exact cold
    # reply.
    # --store-format legacy: this phase exercises the per-file record
    # tier, whose publishes go through atomic_file.write (an indexed
    # store appends to the segment file and the point never fires; the
    # index tier's own kill matrix lives in store_index_smoke and
    # tests/test_store.cc).
    store_dir="$soak_dir/store"
    sock="$soak_dir/davf.sock"
    env DAVF_TEST_CRASHPOINT='atomic_file.write=torn' \
        "$build_dir/tools/davf_serve" --socket "$sock" \
        --store-dir "$store_dir" --store-format legacy \
        --benchmark popcount \
        2> "$soak_dir/serve-armed.log" &
    serve_pid=$!
    trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
    waited=0
    while [ ! -S "$sock" ]; do
        if ! kill -0 "$serve_pid" 2>/dev/null; then
            echo "crash soak: armed server died during startup" >&2
            cat "$soak_dir/serve-armed.log" >&2
            exit 1
        fi
        if [ "$waited" -ge 300 ]; then
            echo "crash soak: armed server never bound $sock" >&2
            exit 1
        fi
        sleep 1
        waited=$((waited + 1))
    done
    "$build_dir/tools/davf_client" --socket "$sock" \
        --benchmark popcount --structure ALU --delays 0.5:0.9:0.4 \
        --cycles 2 --wires 12 \
        > /dev/null 2>> "$soak_dir/serve-armed.log" || true
    wait "$serve_pid" 2>/dev/null || true
    trap - EXIT

    if "$build_dir/tools/davf_store" fsck "$store_dir" \
        2> "$soak_dir/fsck.log"; then
        echo "crash soak: fsck missed the torn record:" >&2
        cat "$soak_dir/fsck.log" >&2
        exit 1
    fi
    "$build_dir/tools/davf_store" fsck --repair "$store_dir" \
        2>> "$soak_dir/fsck.log"
    "$build_dir/tools/davf_store" fsck "$store_dir" \
        2>> "$soak_dir/fsck.log"
    if [ ! -d "$store_dir/quarantine" ]; then
        echo "crash soak: repair left no quarantine evidence" >&2
        exit 1
    fi

    rm -f "$sock"
    "$build_dir/tools/davf_serve" --socket "$sock" \
        --store-dir "$store_dir" --benchmark popcount \
        2> "$soak_dir/serve.log" &
    serve_pid=$!
    trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
    waited=0
    while [ ! -S "$sock" ]; do
        if ! kill -0 "$serve_pid" 2>/dev/null; then
            echo "crash soak: server died during restart" >&2
            cat "$soak_dir/serve.log" >&2
            exit 1
        fi
        if [ "$waited" -ge 300 ]; then
            echo "crash soak: restarted server never bound $sock" >&2
            exit 1
        fi
        sleep 1
        waited=$((waited + 1))
    done
    "$build_dir/tools/davf_client" --socket "$sock" \
        --benchmark popcount --structure ALU --delays 0.5:0.9:0.4 \
        --cycles 2 --wires 12 > "$soak_dir/served.json" \
        2>> "$soak_dir/serve.log"
    kill "$serve_pid" 2>/dev/null || true
    wait "$serve_pid" 2>/dev/null || true
    trap - EXIT
    if ! cmp -s "$soak_dir/ref.json" "$soak_dir/served.json"; then
        echo "crash soak: served reply differs from cold run" >&2
        exit 1
    fi
    echo "=== crash soak ok ($(echo "$specs" | wc -w) specs," \
        "store repaired)" >&2
}

# Store index smoke: the indexed result-store tier end to end against
# the real binaries (docs/SERVICE.md, docs/ROBUSTNESS.md). A served
# query seeds a legacy-format store and its warm reply is captured;
# then every way the store can change shape — `davf_store migrate`,
# a kill -9 mid-bucket-split followed by fsck repair, and a full
# compact — must leave a restarted server producing that exact reply,
# byte for byte. Runs under both configs so the segment file, hash
# index, and recovery paths get ASan/UBSan coverage on every CI run.
store_index_smoke() {
    build_dir="$1"
    smoke_dir="$build_dir/store-index-smoke"
    rm -rf "$smoke_dir"
    mkdir -p "$smoke_dir"
    echo "=== store index smoke $build_dir" >&2
    store_dir="$smoke_dir/store"
    sock="$smoke_dir/davf.sock"

    start_server() {
        rm -f "$sock"
        "$build_dir/tools/davf_serve" --socket "$sock" \
            --store-dir "$store_dir" --benchmark popcount "$@" \
            2>> "$smoke_dir/serve.log" &
        serve_pid=$!
        trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
        waited=0
        while [ ! -S "$sock" ]; do
            if ! kill -0 "$serve_pid" 2>/dev/null; then
                echo "store index smoke: server died during startup" >&2
                cat "$smoke_dir/serve.log" >&2
                exit 1
            fi
            if [ "$waited" -ge 300 ]; then
                echo "store index smoke: server never bound $sock" >&2
                exit 1
            fi
            sleep 1
            waited=$((waited + 1))
        done
    }
    stop_server() {
        kill "$serve_pid" 2>/dev/null || true
        wait "$serve_pid" 2>/dev/null || true
        trap - EXIT
    }
    query() {
        "$build_dir/tools/davf_client" --socket "$sock" \
            --benchmark popcount --structure ALU --delays 0.5:0.9:0.4 \
            --cycles 2 --wires 12 2>> "$smoke_dir/client.log"
    }
    expect_reply() {
        start_server
        query > "$smoke_dir/$1"
        stop_server
        if ! cmp -s "$smoke_dir/warm-legacy.json" "$smoke_dir/$1"; then
            echo "store index smoke: $1 differs from the legacy warm" \
                "reply" >&2
            exit 1
        fi
    }

    # Seed a legacy-format store through a real served query and
    # capture the warm (store-served) reply every later stage must
    # reproduce.
    start_server --store-format legacy
    query > /dev/null
    query > "$smoke_dir/warm-legacy.json"
    stop_server
    if ! ls "$store_dir"/r-*.rec > /dev/null 2>&1; then
        echo "store index smoke: no legacy records were published" >&2
        exit 1
    fi

    # Ballast so the migrated index is one bulk insert away from
    # bucket splits (the kill target below).
    "$build_dir/tools/davf_store" populate --format legacy \
        "$store_dir" 120 2>> "$smoke_dir/store.log"

    "$build_dir/tools/davf_store" migrate "$store_dir" \
        2>> "$smoke_dir/store.log"
    if ls "$store_dir"/r-*.rec > /dev/null 2>&1; then
        echo "store index smoke: migrate left legacy records behind" >&2
        exit 1
    fi
    if [ ! -f "$store_dir/index.davf" ]; then
        echo "store index smoke: migrate built no index" >&2
        exit 1
    fi
    expect_reply warm-migrated.json

    # kill -9 mid-split: an armed bulk insert dies while applying a
    # bucket split, leaving the split journal behind. Plain fsck must
    # refuse the store, repair must converge, and the repaired store
    # must still serve the exact reply.
    rc=0
    env DAVF_TEST_CRASHPOINT='index.split_apply=kill' \
        "$build_dir/tools/davf_store" populate "$store_dir" 400 \
        2>> "$smoke_dir/store.log" || rc=$?
    if [ "$rc" -eq 0 ]; then
        echo "store index smoke: armed populate survived its split" >&2
        exit 1
    fi
    if "$build_dir/tools/davf_store" fsck "$store_dir" \
        2> "$smoke_dir/fsck.log"; then
        echo "store index smoke: fsck missed the torn split:" >&2
        cat "$smoke_dir/fsck.log" >&2
        exit 1
    fi
    "$build_dir/tools/davf_store" fsck --repair "$store_dir" \
        2>> "$smoke_dir/fsck.log"
    if ! "$build_dir/tools/davf_store" fsck "$store_dir" \
        2>> "$smoke_dir/fsck.log"; then
        echo "store index smoke: store still dirty after repair:" >&2
        cat "$smoke_dir/fsck.log" >&2
        exit 1
    fi
    expect_reply warm-repaired.json

    "$build_dir/tools/davf_store" compact "$store_dir" \
        2>> "$smoke_dir/store.log"
    expect_reply warm-compacted.json
    echo "=== store index smoke ok (replies byte-identical across" \
        "migrate, split-kill repair, compact)" >&2
}

# Attribution smoke: per-instruction root-cause attribution end to end
# against the real binaries (docs/ANALYSIS.md). The attributed report
# must be byte-identical across thread counts, worker processes, a
# three-node net fleet with one node kill -9'd mid-campaign, and a
# journal resume; stripping the attribution arrays must reproduce the
# attribution-off report exactly (the walks ride outside the counted
# simulations); and every JSON artifact must pass davf_jsonlint. Runs
# under both configs so the lockstep tables and divergence walks get
# ASan/UBSan coverage on every CI run.
attr_smoke() {
    build_dir="$1"
    smoke_dir="$build_dir/attr-smoke"
    rm -rf "$smoke_dir"
    mkdir -p "$smoke_dir"
    echo "=== attr smoke $build_dir" >&2

    sweep_args="--benchmark popcount --structure ALU
        --delays 0.5:0.9:0.4 --cycles 4 --wires 24"

    # Reference: attributed, in-process, single-threaded.
    # shellcheck disable=SC2086
    "$build_dir/tools/davf_run" --json --threads 1 --attribution \
        $sweep_args --checkpoint "$smoke_dir/ref.ckpt" \
        > "$smoke_dir/ref.json"
    "$build_dir/tools/davf_jsonlint" "$smoke_dir/ref.json"
    if ! grep -q '"attribution":\[{"pc":' "$smoke_dir/ref.json"; then
        echo "attr smoke: no attribution tables in the report" >&2
        exit 1
    fi

    # Thread-count and process-isolation identity.
    # shellcheck disable=SC2086
    "$build_dir/tools/davf_run" --json --threads 4 --attribution \
        $sweep_args > "$smoke_dir/threads4.json"
    # shellcheck disable=SC2086
    "$build_dir/tools/davf_run" --json --attribution \
        --isolate process --workers 2 $sweep_args \
        > "$smoke_dir/isolated.json"

    # Resuming the completed journal recomputes nothing and must
    # reproduce both the report and the journal byte-for-byte.
    cp "$smoke_dir/ref.ckpt" "$smoke_dir/resume.ckpt"
    # shellcheck disable=SC2086
    "$build_dir/tools/davf_run" --json --attribution $sweep_args \
        --checkpoint "$smoke_dir/resume.ckpt" \
        --resume "$smoke_dir/resume.ckpt" > "$smoke_dir/resumed.json"
    if ! cmp -s "$smoke_dir/ref.ckpt" "$smoke_dir/resume.ckpt"; then
        echo "attr smoke: journal differs after resume" >&2
        exit 1
    fi

    # Net: three loopback workers, one kill -9'd mid-campaign (the
    # net_smoke choreography: a stalled node pins the campaign long
    # enough for the kill to land mid-run).
    port_file="$smoke_dir/port"
    # shellcheck disable=SC2086
    "$build_dir/tools/davf_run" --json --attribution $sweep_args \
        --isolate net --listen 127.0.0.1:0 --port-file "$port_file" \
        --min-nodes 3 --node-wait-ms 60000 \
        --shard-timeout-ms 2000 --backoff-ms 1 \
        > "$smoke_dir/net.json" 2> "$smoke_dir/run.log" &
    run_pid=$!
    trap 'kill "$run_pid" $w1 $w2 $w3 2>/dev/null || true' EXIT
    waited=0
    while [ ! -s "$port_file" ]; do
        if ! kill -0 "$run_pid" 2>/dev/null; then
            echo "attr smoke: coordinator died during startup" >&2
            cat "$smoke_dir/run.log" >&2
            exit 1
        fi
        if [ "$waited" -ge 300 ]; then
            echo "attr smoke: coordinator never wrote $port_file" >&2
            exit 1
        fi
        sleep 1
        waited=$((waited + 1))
    done
    port=$(cat "$port_file")
    worker() {
        env DAVF_TEST_NETFAULT="$2" \
            "$build_dir/tools/davf_worker" \
            --connect "127.0.0.1:$port" --benchmark popcount \
            --node "$1" 2>> "$smoke_dir/workers.log"
    }
    worker w1 '' &
    w1=$!
    worker w2 '' &
    w2=$!
    worker w3 'stall@w3' &
    w3=$!
    waited=0
    while ! grep -q '3 node(s) connected' "$smoke_dir/run.log"; do
        if ! kill -0 "$run_pid" 2>/dev/null; then
            echo "attr smoke: coordinator exited before the fleet" >&2
            cat "$smoke_dir/run.log" "$smoke_dir/workers.log" >&2
            exit 1
        fi
        if [ "$waited" -ge 300 ]; then
            echo "attr smoke: fleet never assembled" >&2
            cat "$smoke_dir/run.log" "$smoke_dir/workers.log" >&2
            exit 1
        fi
        sleep 1
        waited=$((waited + 1))
    done
    kill -9 "$w1" 2>/dev/null || true
    if ! wait "$run_pid"; then
        echo "attr smoke: net coordinator run failed" >&2
        cat "$smoke_dir/run.log" "$smoke_dir/workers.log" >&2
        exit 1
    fi
    trap - EXIT

    for f in threads4.json isolated.json resumed.json net.json; do
        if ! cmp -s "$smoke_dir/ref.json" "$smoke_dir/$f"; then
            echo "attr smoke: $f differs from ref.json" >&2
            exit 1
        fi
    done

    # Attribution must not perturb anything else: stripping the
    # attribution arrays from the attributed report reproduces the
    # attribution-off report byte for byte.
    # shellcheck disable=SC2086
    "$build_dir/tools/davf_run" --json $sweep_args \
        > "$smoke_dir/plain.json"
    sed 's/,"attribution":\[[^]]*\]//g' "$smoke_dir/ref.json" \
        > "$smoke_dir/stripped.json"
    if ! cmp -s "$smoke_dir/plain.json" "$smoke_dir/stripped.json"; then
        echo "attr smoke: attribution perturbed the base report" >&2
        exit 1
    fi

    # The journal pretty-printer sees the tables.
    "$build_dir/tools/davf_trace" attr \
        --checkpoint "$smoke_dir/ref.ckpt" > "$smoke_dir/trace.txt"
    if ! grep -q 'instruction' "$smoke_dir/trace.txt"; then
        echo "attr smoke: davf_trace attr printed no tables" >&2
        cat "$smoke_dir/trace.txt" >&2
        exit 1
    fi
    echo "=== attr smoke ok (tables bit-identical across threads," \
        "process, net, resume)" >&2
}

# Net smoke: the distributed fabric under fire (docs/DISTRIBUTED.md).
# A coordinator sweep dispatches to three loopback davf_worker nodes;
# one node is armed with a deterministic stall netfault (caught by the
# shard deadline), and one healthy node is kill -9'd mid-campaign. The
# final --json report must still be byte-identical to the same sweep
# computed in-process single-threaded, and the metrics snapshot must
# show the fleet connected, a node lost, and at least one re-dispatch.
# Runs under both configs so the socket transport, coordinator, and
# worker serve loop get ASan/UBSan coverage on every CI run.
net_smoke() {
    build_dir="$1"
    smoke_dir="$build_dir/net-smoke"
    rm -rf "$smoke_dir"
    mkdir -p "$smoke_dir"
    echo "=== net smoke $build_dir" >&2

    sweep_args="--benchmark popcount --structure ALU
        --delays 0.5:0.9:0.4 --cycles 4 --wires 24"

    # Reference: the identical sweep, in-process, single-threaded.
    # shellcheck disable=SC2086
    "$build_dir/tools/davf_run" --json --threads 1 $sweep_args \
        > "$smoke_dir/ref.json"

    port_file="$smoke_dir/port"
    # shellcheck disable=SC2086
    "$build_dir/tools/davf_run" --json $sweep_args \
        --isolate net --listen 127.0.0.1:0 --port-file "$port_file" \
        --min-nodes 3 --node-wait-ms 60000 \
        --shard-timeout-ms 2000 --backoff-ms 1 \
        --metrics-json "$smoke_dir/metrics.json" \
        > "$smoke_dir/net.json" 2> "$smoke_dir/run.log" &
    run_pid=$!
    trap 'kill "$run_pid" $w1 $w2 $w3 2>/dev/null || true' EXIT

    waited=0
    while [ ! -s "$port_file" ]; do
        if ! kill -0 "$run_pid" 2>/dev/null; then
            echo "net smoke: coordinator died during startup" >&2
            cat "$smoke_dir/run.log" >&2
            exit 1
        fi
        if [ "$waited" -ge 300 ]; then
            echo "net smoke: coordinator never wrote $port_file" >&2
            exit 1
        fi
        sleep 1
        waited=$((waited + 1))
    done
    port=$(cat "$port_file")

    worker() {
        env DAVF_TEST_NETFAULT="$2" \
            "$build_dir/tools/davf_worker" \
            --connect "127.0.0.1:$port" --benchmark popcount \
            --node "$1" 2>> "$smoke_dir/workers.log"
    }
    worker w1 '' &
    w1=$!
    worker w2 '' &
    w2=$!
    worker w3 'stall@w3' &
    w3=$!

    # Once the whole fleet has joined, the campaign is running and the
    # stalled node pins it for at least the shard deadline — a window
    # in which killing a healthy node is genuinely mid-campaign.
    waited=0
    while ! grep -q '3 node(s) connected' "$smoke_dir/run.log"; do
        if ! kill -0 "$run_pid" 2>/dev/null; then
            echo "net smoke: coordinator exited before the fleet" >&2
            cat "$smoke_dir/run.log" "$smoke_dir/workers.log" >&2
            exit 1
        fi
        if [ "$waited" -ge 300 ]; then
            echo "net smoke: fleet never assembled" >&2
            cat "$smoke_dir/run.log" "$smoke_dir/workers.log" >&2
            exit 1
        fi
        sleep 1
        waited=$((waited + 1))
    done
    kill -9 "$w1" 2>/dev/null || true

    if ! wait "$run_pid"; then
        echo "net smoke: coordinator run failed" >&2
        cat "$smoke_dir/run.log" "$smoke_dir/workers.log" >&2
        exit 1
    fi
    trap - EXIT

    if ! cmp -s "$smoke_dir/ref.json" "$smoke_dir/net.json"; then
        echo "net smoke: net.json differs from in-process ref.json" >&2
        exit 1
    fi
    connected=$(sed -n 's/.*"net\.nodes_connected":\([0-9]*\).*/\1/p' \
        "$smoke_dir/metrics.json")
    lost=$(sed -n 's/.*"net\.nodes_lost":\([0-9]*\).*/\1/p' \
        "$smoke_dir/metrics.json")
    redispatched=$(sed -n 's/.*"net\.redispatches":\([0-9]*\).*/\1/p' \
        "$smoke_dir/metrics.json")
    if [ "${connected:-0}" -ne 3 ] || [ "${lost:-0}" -eq 0 ] \
        || [ "${redispatched:-0}" -eq 0 ]; then
        echo "net smoke: unexpected fleet metrics" \
            "(connected=$connected lost=$lost" \
            "redispatches=$redispatched):" >&2
        cat "$smoke_dir/metrics.json" >&2
        exit 1
    fi
    echo "=== net smoke ok (report bit-identical," \
        "$lost node(s) lost, $redispatched re-dispatch(es))" >&2
}

run_config "$root/build-ci-release" -DCMAKE_BUILD_TYPE=Release
isolation_smoke "$root/build-ci-release"
vector_smoke "$root/build-ci-release"
tsim_smoke "$root/build-ci-release"
obs_smoke "$root/build-ci-release"
serve_smoke "$root/build-ci-release"
store_index_smoke "$root/build-ci-release"
net_smoke "$root/build-ci-release"
attr_smoke "$root/build-ci-release"
crash_soak "$root/build-ci-release"
groupace_bench "$root/build-ci-release"
tsim_bench "$root/build-ci-release"
run_config "$root/build-ci-asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDAVF_SANITIZE=address,undefined
isolation_smoke "$root/build-ci-asan"
vector_smoke "$root/build-ci-asan"
tsim_smoke "$root/build-ci-asan"
obs_smoke "$root/build-ci-asan"
serve_smoke "$root/build-ci-asan"
store_index_smoke "$root/build-ci-asan"
net_smoke "$root/build-ci-asan"
attr_smoke "$root/build-ci-asan"
crash_soak "$root/build-ci-asan"

echo "=== ci_check: all configurations passed" >&2
