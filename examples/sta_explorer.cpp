/**
 * @file
 * Static-timing exploration of the IbexMini core: the OpenSTA-style
 * facts the DelayAVF flow consumes. Prints the design's critical path
 * parameters, per-structure path-length statistics, and — for a chosen
 * wire — the statically reachable set as the SDF duration grows
 * (Definition 2's d-dependence).
 *
 *   $ ./examples/sta_explorer
 */

#include <algorithm>
#include <cstdio>

#include "soc/ibex_mini.hh"
#include "timing/sta.hh"
#include "util/stats.hh"

using namespace davf;

int
main()
{
    IbexMini soc({}, {});
    const Netlist &netlist = soc.netlist();
    DelayModel delays(netlist, CellLibrary::defaultLibrary());
    Sta sta(delays);
    const double period = sta.maxPath();

    std::printf("IbexMini: %zu cells, %zu nets, %zu wires, %zu state "
                "elements\n",
                netlist.numCells(), netlist.numNets(),
                netlist.numWires(), netlist.numStateElems());
    std::printf("STA worst register-to-register path: %.1f ps\n\n",
                period);

    // Per-structure path statistics.
    std::printf("%-12s %8s %10s %10s %10s\n", "structure", "wires",
                "p50/period", "p95/period", "max/period");
    for (const Structure &structure : soc.structures().all()) {
        std::vector<double> paths;
        for (WireId wire : structure.wires) {
            const double through = sta.longestPathThrough(wire);
            if (through > 0)
                paths.push_back(through / period);
        }
        std::sort(paths.begin(), paths.end());
        auto pct = [&](double q) {
            return paths.empty()
                ? 0.0
                : paths[static_cast<size_t>(q * (paths.size() - 1))];
        };
        std::printf("%-12s %8zu %10.3f %10.3f %10.3f\n",
                    structure.name.c_str(), structure.wires.size(),
                    pct(0.5), pct(0.95), pct(1.0));
    }

    // Static reachability growth for the most critical ALU wire.
    const Structure &alu = *soc.structures().find("ALU");
    WireId critical = alu.wires.front();
    double best = 0.0;
    for (WireId wire : alu.wires) {
        const double through = sta.longestPathThrough(wire);
        if (through > best) {
            best = through;
            critical = wire;
        }
    }
    std::printf("\nmost critical ALU wire: %s (path %.1f ps = %.3f of "
                "the period)\n",
                netlist.wireName(critical).c_str(), best, best / period);
    std::printf("statically reachable set size vs d:\n");
    std::vector<StateElemId> reachable;
    for (double fraction : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8}) {
        sta.staticallyReachable(critical, fraction * period, period,
                                reachable);
        std::printf("  d = %4.0f%%: %zu state elements\n",
                    100 * fraction, reachable.size());
    }
    return 0;
}
