/**
 * @file
 * Protection planning: the paper's motivating use case ("identify
 * structures which are particularly vulnerable to SDFs, helping to
 * guide targeted protections", §I) taken one level deeper — rank the
 * individual *wires* of a structure by how often they are DelayACE, and
 * show how concentrated the vulnerability is (what fraction of the
 * structure's DelayAVF the hottest wires account for).
 *
 *   $ ./examples/protection_planner [benchmark] [structure]
 *
 * Defaults: md5, ALU.
 */

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>

#include "core/vulnerability.hh"
#include "isa/assembler.hh"
#include "isa/benchmarks.hh"
#include "soc/ibex_mini.hh"
#include "soc/soc_workload.hh"

using namespace davf;

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "md5";
    const std::string structure_name = argc > 2 ? argv[2] : "ALU";

    const BenchmarkProgram &program = beebsBenchmark(benchmark);
    IbexMini soc({}, assemble(program.source));
    SocWorkload workload(soc);
    EngineOptions options;
    options.periodMode =
        EngineOptions::PeriodMode::ObservedMaxPlusMargin;
    VulnerabilityEngine engine(soc.netlist(),
                               CellLibrary::defaultLibrary(), workload,
                               options);

    const Structure *structure =
        soc.structures().find(structure_name);
    if (!structure) {
        std::fprintf(stderr, "unknown structure '%s'\n",
                     structure_name.c_str());
        return 1;
    }

    SamplingConfig config;
    config.maxInjectionCycles = 10;
    config.maxWires = 500;
    config.recordPerWire = true;

    std::printf("ranking %s wires under %s (d = 60%% of the period)"
                "...\n\n",
                structure_name.c_str(), benchmark.c_str());
    const DelayAvfResult result =
        engine.delayAvf(*structure, 0.6, config);

    // Rank wires by DelayACE frequency.
    std::vector<size_t> order(result.injectedWires.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return result.perWireAce[a] > result.perWireAce[b];
    });

    std::printf("structure DelayAVF: %.5f over %zu wires x %u cycles\n",
                result.delayAvf, result.wiresInjected,
                result.cyclesInjected);

    std::printf("\nhottest wires (DelayACE cycles / sampled cycles):\n");
    for (size_t rank = 0; rank < 15 && rank < order.size(); ++rank) {
        const size_t index = order[rank];
        if (result.perWireAce[index] == 0)
            break;
        std::printf("  %2zu. %-52s %u/%u\n", rank + 1,
                    soc.netlist()
                        .wireName(result.injectedWires[index])
                        .c_str(),
                    result.perWireAce[index], result.cyclesInjected);
    }

    // Vulnerability concentration: cumulative DelayACE coverage.
    const uint64_t total = std::accumulate(result.perWireAce.begin(),
                                           result.perWireAce.end(),
                                           uint64_t{0});
    if (total == 0) {
        std::printf("\nno DelayACE wires in this sample — try a larger "
                    "d or more wires.\n");
        return 0;
    }
    std::printf("\nvulnerability concentration (protect the hottest X%% "
                "of wires -> remove Y%% of DelayAVF):\n");
    uint64_t covered = 0;
    size_t emitted = 0;
    for (size_t rank = 0; rank < order.size(); ++rank) {
        covered += result.perWireAce[order[rank]];
        const double wire_pct =
            100.0 * static_cast<double>(rank + 1)
            / static_cast<double>(order.size());
        const double ace_pct = 100.0 * static_cast<double>(covered)
            / static_cast<double>(total);
        if (wire_pct >= 1.0 * static_cast<double>(emitted + 1)
            && emitted < 10) {
            std::printf("  top %5.1f%% of wires -> %5.1f%% of "
                        "DelayACE mass\n",
                        wire_pct, ace_pct);
            ++emitted;
        }
        if (ace_pct >= 100.0)
            break;
    }
    return 0;
}
