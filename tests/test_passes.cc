/**
 * @file
 * Tests for the synthesis-style netlist passes (dead-logic sweep,
 * high-fanout buffering), the VCD writer, and the timing-library
 * corners — functionality layered on the base netlist model.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>

#include "src/builder/builder.hh"
#include "src/sim/cycle_sim.hh"
#include "src/sim/vcd.hh"
#include "src/timing/sta.hh"

namespace davf {
namespace {

TEST(SweepDeadLogic, RemovesUnobservedCells)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId in = b.input("in");
    const NetId live = b.inv(in);
    b.output("o", live);
    // A dead chain: drives nothing observable.
    NetId dead = b.inv(in);
    for (int i = 0; i < 5; ++i)
        dead = b.inv(dead);

    const size_t removed = nl.sweepDeadLogic();
    nl.finalize();
    EXPECT_EQ(removed, 6u);
    // input cell + live inv + output cell remain.
    EXPECT_EQ(nl.numCells(), 3u);
}

TEST(SweepDeadLogic, KeepsLogicFeedingFlopsAndBehavs)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId in = b.input("in");
    const NetId to_flop = b.inv(in);
    const NetId q = b.dff(to_flop);
    (void)q; // Flop output itself unobserved; the flop is still a root.

    EXPECT_EQ(nl.sweepDeadLogic(), 0u);
    nl.finalize();
    EXPECT_EQ(nl.topoOrder().size(), 1u);
}

TEST(SweepDeadLogic, PreservesSimulationBehaviour)
{
    // Build a circuit with interleaved dead logic; sweeping must not
    // change what the observable part computes.
    auto build = [](bool sweep) {
        auto nl = std::make_unique<Netlist>();
        ModuleBuilder b(*nl);
        const NetId d = b.freshNet("d");
        const NetId q = b.dff(d);
        b.connect(d, b.inv(q));
        const NetId dead = b.xor2(q, b.inv(q));
        (void)dead;
        const NetId obs = b.and2(q, b.constant(true));
        b.output("o", obs);
        if (sweep)
            nl->sweepDeadLogic();
        nl->finalize();
        return nl;
    };

    auto plain = build(false);
    auto swept = build(true);
    EXPECT_LT(swept->numCells(), plain->numCells());

    CycleSimulator sim_plain(*plain);
    CycleSimulator sim_swept(*swept);
    const NetId o_plain = plain->cell(plain->findCell("o.out")).inputs[0];
    const NetId o_swept = swept->cell(swept->findCell("o.out")).inputs[0];
    for (int cycle = 0; cycle < 8; ++cycle) {
        EXPECT_EQ(sim_plain.value(o_plain), sim_swept.value(o_swept));
        sim_plain.step();
        sim_swept.step();
    }
}

TEST(FanoutBuffers, CapsEveryNet)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId in = b.input("in");
    const NetId hub = b.inv(in);
    for (int i = 0; i < 100; ++i)
        b.output("o" + std::to_string(i), b.buf(hub));

    nl.insertFanoutBuffers(8);
    nl.finalize();
    for (NetId id = 0; id < nl.numNets(); ++id)
        EXPECT_LE(nl.fanout(id), 8u) << nl.net(id).name;
}

TEST(FanoutBuffers, PreservesFunction)
{
    auto build = [](bool buffered) {
        auto nl = std::make_unique<Netlist>();
        ModuleBuilder b(*nl);
        const NetId in = b.input("in");
        const NetId hub = b.inv(in);
        Bus taps;
        for (int i = 0; i < 40; ++i)
            taps.push_back(b.xor2(hub, b.constant(i % 2 == 0)));
        b.output("o", b.reduceXor(taps));
        if (buffered)
            nl->insertFanoutBuffers(4);
        nl->finalize();
        return nl;
    };

    auto plain = build(false);
    auto buffered = build(true);
    CycleSimulator sim_plain(*plain);
    CycleSimulator sim_buffered(*buffered);
    const NetId in_plain = plain->findNet("in");
    const NetId in_buffered = buffered->findNet("in");
    const NetId o_plain = plain->cell(plain->findCell("o.out")).inputs[0];
    const NetId o_buffered =
        buffered->cell(buffered->findCell("o.out")).inputs[0];
    for (bool value : {false, true, false}) {
        sim_plain.setInput(in_plain, value);
        sim_buffered.setInput(in_buffered, value);
        EXPECT_EQ(sim_plain.value(o_plain),
                  sim_buffered.value(o_buffered));
    }
}

TEST(FanoutBuffers, BuffersInheritDriverScope)
{
    Netlist nl;
    ModuleBuilder b(nl);
    b.pushScope("alu");
    const NetId src = b.inv(b.constant(false));
    b.popScope();
    for (int i = 0; i < 30; ++i)
        b.output("o" + std::to_string(i), b.buf(src));
    nl.insertFanoutBuffers(4);
    nl.finalize();
    // All inserted buffers for the alu-driven net carry the alu/ prefix.
    size_t alu_bufs = 0;
    for (CellId id = 0; id < nl.numCells(); ++id) {
        if (nl.cell(id).name.find("_fbuf") != std::string::npos) {
            EXPECT_TRUE(nl.cell(id).name.starts_with("alu/"));
            ++alu_bufs;
        }
    }
    EXPECT_GT(alu_bufs, 0u);
}

TEST(FanoutBuffers, ReducesWorstWireDelay)
{
    auto worst_wire = [](bool buffered) {
        auto nl = std::make_unique<Netlist>();
        ModuleBuilder b(*nl);
        const NetId in = b.input("in");
        const NetId hub = b.inv(in);
        for (int i = 0; i < 200; ++i)
            b.output("o" + std::to_string(i), b.buf(hub));
        if (buffered)
            nl->insertFanoutBuffers(8);
        nl->finalize();
        DelayModel delays(*nl, CellLibrary::defaultLibrary());
        double worst = 0.0;
        for (WireId w = 0; w < nl->numWires(); ++w)
            worst = std::max(worst, delays.wireDelay(w));
        return worst;
    };
    EXPECT_LT(worst_wire(true), worst_wire(false) / 4.0);
}

TEST(Vcd, RecordsAndRendersChanges)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId d = b.freshNet("d");
    const NetId q = b.dff(d, false, "toggler");
    b.connect(d, b.inv(q));
    nl.finalize();

    CycleSimulator sim(nl);
    VcdWriter vcd(nl, {q});
    for (int cycle = 0; cycle < 4; ++cycle) {
        vcd.sample(sim);
        sim.step();
    }
    EXPECT_EQ(vcd.sampleCount(), 4u);

    const std::string text = vcd.render("tb");
    EXPECT_NE(text.find("$timescale"), std::string::npos);
    EXPECT_NE(text.find("$var wire 1 ! "), std::string::npos);
    // Toggler: 0 at cycle 0, 1 at 1, 0 at 2, 1 at 3 -> four timestamps.
    EXPECT_NE(text.find("#0"), std::string::npos);
    EXPECT_NE(text.find("#1"), std::string::npos);
    EXPECT_NE(text.find("#3"), std::string::npos);
    EXPECT_NE(text.find("0!"), std::string::npos);
    EXPECT_NE(text.find("1!"), std::string::npos);
}

TEST(Vcd, OnlyChangesAreEmitted)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId constant = b.buf(b.constant(true));
    b.output("o", constant);
    nl.finalize();

    CycleSimulator sim(nl);
    VcdWriter vcd(nl, {constant});
    for (int cycle = 0; cycle < 6; ++cycle) {
        vcd.sample(sim);
        sim.step();
    }
    const std::string text = vcd.render();
    // One initial change, then silence.
    EXPECT_NE(text.find("#0"), std::string::npos);
    EXPECT_EQ(text.find("#1\n"), std::string::npos);
}

TEST(Vcd, WritesFileToDisk)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId d = b.freshNet("d");
    const NetId q = b.dff(d);
    b.connect(d, b.inv(q));
    nl.finalize();

    CycleSimulator sim(nl);
    VcdWriter vcd(nl, {q});
    for (int i = 0; i < 3; ++i) {
        vcd.sample(sim);
        sim.step();
    }
    const std::string path =
        ::testing::TempDir() + "davf_vcd_test.vcd";
    vcd.writeTo(path, "unit");
    std::ifstream file(path);
    ASSERT_TRUE(file.good());
    std::stringstream content;
    content << file.rdbuf();
    EXPECT_NE(content.str().find("$scope module unit"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(Vcd, AllNetsFactory)
{
    Netlist nl;
    ModuleBuilder b(nl);
    b.output("o", b.inv(b.constant(false)));
    nl.finalize();
    VcdWriter vcd = VcdWriter::allNets(nl);
    CycleSimulator sim(nl);
    vcd.sample(sim);
    EXPECT_FALSE(vcd.render().empty());
}

TEST(Vcd, ManySignalsGetDistinctIdentifiers)
{
    // More than 94 tracked nets forces multi-character identifiers;
    // each $var line must still be unique.
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId in = b.input("in");
    std::vector<NetId> nets;
    NetId chain = in;
    for (int i = 0; i < 120; ++i) {
        chain = b.inv(chain);
        nets.push_back(chain);
    }
    b.output("o", chain);
    nl.finalize();

    CycleSimulator sim(nl);
    VcdWriter vcd(nl, nets);
    vcd.sample(sim);
    const std::string text = vcd.render();

    std::set<std::string> identifiers;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.rfind("$var wire 1 ", 0) == 0) {
            const size_t start = std::strlen("$var wire 1 ");
            const size_t end = line.find(' ', start);
            identifiers.insert(line.substr(start, end - start));
        }
    }
    EXPECT_EQ(identifiers.size(), 120u);
}

TEST(LibraryCorners, UniformScalingScalesMaxPath)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId in = b.input("in");
    NetId chain = b.inv(in);
    for (int i = 0; i < 6; ++i)
        chain = b.inv(chain);
    const NetId q = b.dff(chain);
    (void)q;
    nl.finalize();

    DelayModel typical(nl, CellLibrary::defaultLibrary());
    DelayModel slow(nl, CellLibrary::slowCorner());
    Sta sta_typical(typical);
    Sta sta_slow(slow);
    EXPECT_NEAR(sta_slow.maxPath(), 1.3 * sta_typical.maxPath(), 1e-6);
}

TEST(LibraryCorners, WireDominatedSkewsOnlyWires)
{
    const CellLibrary typical = CellLibrary::defaultLibrary();
    const CellLibrary wire_heavy = CellLibrary::wireDominatedCorner();
    EXPECT_DOUBLE_EQ(wire_heavy.timing(CellType::Inv).intrinsic,
                     typical.timing(CellType::Inv).intrinsic);
    EXPECT_DOUBLE_EQ(wire_heavy.timing(CellType::Inv).loadSlope,
                     2.5 * typical.timing(CellType::Inv).loadSlope);
    EXPECT_DOUBLE_EQ(wire_heavy.wireBase, 2.5 * typical.wireBase);
}

} // namespace
} // namespace davf
