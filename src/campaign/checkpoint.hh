/**
 * @file
 * The campaign journal: a versioned, human-readable checkpoint of a
 * sweep's progress, written atomically (tmp + rename) after every
 * completed cell and every completed injection cycle of the in-flight
 * cell.
 *
 * Contents (see docs/ROBUSTNESS.md for the line grammar):
 *  - a version stamp and the campaign's config hash (a resume against a
 *    different configuration is rejected);
 *  - one record per completed (kind, benchmark, structure, delay) cell
 *    with its full aggregate result — doubles are serialized as C
 *    hexfloats ("%a"), so a resumed campaign reproduces aggregates
 *    bit-identically without re-simulation;
 *  - at most one partial cell: the per-injection-cycle outcomes that
 *    completed before the interruption. Cycles are mutually independent
 *    in the engine, so adopting them on resume is exact.
 */

#ifndef DAVF_CAMPAIGN_CHECKPOINT_HH
#define DAVF_CAMPAIGN_CHECKPOINT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/vulnerability.hh"
#include "util/error.hh"

namespace davf {

/** Identity of one campaign cell. @c delay is canonicalDelay() text. */
struct CheckpointKey
{
    std::string kind; ///< "davf" or "savf".
    std::string benchmark;
    std::string structure;
    std::string delay;

    bool operator==(const CheckpointKey &) const = default;
};

/** One completed (or permanently failed) cell. */
struct CheckpointCell
{
    CheckpointKey key;
    bool failed = false;
    std::string failReason;     ///< Only when failed.
    DelayAvfResult davf;        ///< Valid when kind == "davf" && !failed.
    SavfResult savf;            ///< Valid when kind == "savf" && !failed.
};

/** The whole journal. */
struct Checkpoint
{
    static constexpr uint32_t kVersion = 1;

    std::string configHash;
    std::vector<CheckpointCell> cells;

    bool hasPartial = false;
    CheckpointKey partialKey;
    std::vector<InjectionCycleOutcome> partialCycles;

    const CheckpointCell *find(const CheckpointKey &key) const;
};

/**
 * What lenient parsing repaired. The journal is written atomically, so
 * at most the final line can be torn (interrupted copy, crashed
 * filesystem); passing a stats object to parseCheckpoint() tolerates
 * exactly that — the damaged tail line is dropped with a note here
 * instead of failing the whole resume. Damage anywhere else is still an
 * error.
 */
struct CheckpointLoadStats
{
    bool truncatedTail = false; ///< A torn final line was dropped.
    bool missingEnd = false;    ///< The "end" sentinel never arrived.
    std::string droppedLine;    ///< The dropped text, for the warning.
};

/** Canonical exact text form of a delay fraction (C hexfloat). */
std::string canonicalDelay(double delay);

/** Serialize to the journal text form. */
std::string serializeCheckpoint(const Checkpoint &checkpoint);

/**
 * Parse journal text; corrupt or version-mismatched input is an Err.
 * With @p stats, a damaged *final* line is skipped and reported there
 * instead (see CheckpointLoadStats).
 */
Result<Checkpoint> parseCheckpoint(const std::string &text,
                                   CheckpointLoadStats *stats = nullptr);

/** Atomically write @p checkpoint to @p path (DavfError{Io} on failure). */
void saveCheckpoint(const std::string &path, const Checkpoint &checkpoint);

/** Load and parse @p path, lenient about a torn tail when @p stats. */
Result<Checkpoint> loadCheckpoint(const std::string &path,
                                  CheckpointLoadStats *stats = nullptr);

/**
 * @name Field-level forms shared with the process-isolation protocol
 * The same space-separated hexfloat-exact token grammar the journal
 * uses for cycle outcomes and sAVF results, without the record tag, so
 * worker replies aggregate and journal bit-identically.
 */
/// @{
std::string serializeOutcomeFields(const InjectionCycleOutcome &outcome);
bool parseOutcomeFields(std::istream &is, InjectionCycleOutcome &outcome);
std::string serializeSavfFields(const SavfResult &result);
bool parseSavfFields(std::istream &is, SavfResult &result);
/// @}

} // namespace davf

#endif // DAVF_CAMPAIGN_CHECKPOINT_HH
