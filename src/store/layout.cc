#include "layout.hh"

#include <cstring>
#include <sstream>

namespace davf::store {

const char *const kIndexFileName = "index.davf";
const char *const kDataFileName = "segments.davf";
const char *const kSplitJournalName = "split.journal";
const char *const kLockFileName = "index.lock";

namespace {

const char kIndexMagic[8] = {'D', 'A', 'V', 'F', 'H', 'I', 'X', '1'};

void
putU32(std::string &out, uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
}

uint32_t
getU32(std::string_view bytes, size_t at)
{
    uint32_t value = 0;
    for (int i = 3; i >= 0; --i)
        value = (value << 8) | static_cast<unsigned char>(bytes[at + i]);
    return value;
}

uint64_t
getU64(std::string_view bytes, size_t at)
{
    uint64_t value = 0;
    for (int i = 7; i >= 0; --i)
        value = (value << 8) | static_cast<unsigned char>(bytes[at + i]);
    return value;
}

} // namespace

uint64_t
fnv1a64Extend(uint64_t hash, std::string_view bytes)
{
    for (const char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

uint64_t
fnv1a64(std::string_view bytes)
{
    return fnv1a64Extend(kFnv1a64Seed, bytes);
}

std::string
fnv1a64Hex(std::string_view bytes)
{
    std::ostringstream os;
    os << std::hex << fnv1a64(bytes);
    return os.str();
}

namespace {

/**
 * Parse a "davf-store v<N>" header line; 0 if the line is not a
 * well-formed header (a version needs 1..9 digits, no sign, no junk).
 */
uint32_t
recordHeaderVersion(std::string_view line)
{
    constexpr std::string_view magic = "davf-store v";
    if (line.substr(0, magic.size()) != magic)
        return 0;
    const std::string_view digits = line.substr(magic.size());
    if (digits.empty() || digits.size() > 9)
        return 0;
    uint32_t version = 0;
    for (const char c : digits) {
        if (c < '0' || c > '9')
            return 0;
        version = version * 10 + static_cast<uint32_t>(c - '0');
    }
    return version;
}

} // namespace

std::string
serializeRecordText(const std::string &key, const std::string &payload,
                    uint32_t version)
{
    std::ostringstream os;
    os << "davf-store v" << version << "\nkey " << key << "\npayload "
       << payload << "\nsum " << fnv1a64Hex(key + '\n' + payload)
       << "\nend\n";
    return os.str();
}

bool
recordTextFutureVersion(std::string_view text)
{
    const size_t eol = text.find('\n');
    const std::string_view line =
        eol == std::string_view::npos ? text : text.substr(0, eol);
    return recordHeaderVersion(line) > kRecordTextVersionMax;
}

Result<std::pair<std::string, std::string>>
parseRecordText(const std::string &text)
{
    using R = Result<std::pair<std::string, std::string>>;
    std::istringstream is(text);
    std::string line;

    if (!std::getline(is, line)) {
        return R::Err(ErrorKind::BadInput,
                      "store record: bad header: " + line.substr(0, 60));
    }
    const uint32_t version = recordHeaderVersion(line);
    if (version < kRecordTextVersion) {
        return R::Err(ErrorKind::BadInput,
                      "store record: bad header: " + line.substr(0, 60));
    }
    if (version > kRecordTextVersionMax) {
        return R::Err(ErrorKind::BadInput,
                      "store record: future version: "
                          + line.substr(0, 60));
    }
    if (!std::getline(is, line) || line.rfind("key ", 0) != 0
        || line.size() == 4) {
        return R::Err(ErrorKind::BadInput,
                      "store record: missing key record");
    }
    std::string key = line.substr(4);
    if (!std::getline(is, line) || line.rfind("payload ", 0) != 0
        || line.size() == 8) {
        return R::Err(ErrorKind::BadInput,
                      "store record: missing payload record");
    }
    std::string payload = line.substr(8);
    // The checksum catches in-place corruption (a flipped bit in the
    // key or payload) that would otherwise parse as a valid record.
    if (!std::getline(is, line) || (version < 3 && line.rfind("sum ", 0) != 0)) {
        return R::Err(ErrorKind::BadInput,
                      "store record: missing sum record");
    }
    // v3 forward compatibility: unknown extension lines between the
    // payload and the sum are skipped, not fatal — a future grammar
    // that adds fields degrades this binary to a recompute, never to a
    // quarantine.
    while (line.rfind("sum ", 0) != 0) {
        if (line == "end" || !std::getline(is, line)) {
            return R::Err(ErrorKind::BadInput,
                          "store record: missing sum record");
        }
    }
    if (line.substr(4) != fnv1a64Hex(key + '\n' + payload)) {
        return R::Err(ErrorKind::BadInput,
                      "store record: checksum mismatch (garbled)");
    }
    // The end sentinel proves the sum line was not truncated
    // mid-write; without it the record is torn and must be recomputed.
    if (!std::getline(is, line) || line != "end") {
        return R::Err(ErrorKind::BadInput,
                      "store record: missing end sentinel");
    }
    if (std::getline(is, line) && !line.empty()) {
        return R::Err(ErrorKind::BadInput,
                      "store record: trailing garbage");
    }
    return R::Ok({std::move(key), std::move(payload)});
}

bool
splitCanonicalRecord(std::string_view record, std::string_view &key,
                     std::string_view &payload)
{
    constexpr std::string_view headV2 = "davf-store v2\nkey ";
    constexpr std::string_view headV3 = "davf-store v3\nkey ";
    constexpr std::string_view payloadTag = "payload ";
    constexpr std::string_view sumTag = "sum ";
    constexpr std::string_view tail = "end\n";
    size_t at = 0;
    if (record.substr(0, headV2.size()) == headV2)
        at = headV2.size();
    else if (record.substr(0, headV3.size()) == headV3)
        at = headV3.size();
    else
        return false;
    const size_t keyEnd = record.find('\n', at);
    if (keyEnd == std::string_view::npos || keyEnd == at)
        return false;
    key = record.substr(at, keyEnd - at);
    at = keyEnd + 1;
    if (record.substr(at, payloadTag.size()) != payloadTag)
        return false;
    at += payloadTag.size();
    const size_t payloadEnd = record.find('\n', at);
    if (payloadEnd == std::string_view::npos || payloadEnd == at)
        return false;
    payload = record.substr(at, payloadEnd - at);
    at = payloadEnd + 1;
    if (record.substr(at, sumTag.size()) != sumTag)
        return false;
    at += sumTag.size();
    const size_t sumEnd = record.find('\n', at);
    if (sumEnd == std::string_view::npos)
        return false;
    const std::string_view sum = record.substr(at, sumEnd - at);
    if (record.substr(sumEnd + 1) != tail)
        return false;
    // Verify sum == fnv1a64Hex(key + '\n' + payload) without
    // materializing the concatenation or formatting hex (this runs on
    // the lookup hot path): chain the hash over the pieces and parse
    // the stored digits, rejecting anything the canonical emitter
    // would not produce (empty, over-long, uppercase, leading zeros).
    uint64_t expected = fnv1a64Extend(kFnv1a64Seed, key);
    expected = fnv1a64Extend(expected, std::string_view("\n", 1));
    expected = fnv1a64Extend(expected, payload);
    if (sum.empty() || sum.size() > 16
        || (sum.size() > 1 && sum[0] == '0')) {
        return false;
    }
    uint64_t stored = 0;
    for (const char c : sum) {
        uint64_t digit = 0;
        if (c >= '0' && c <= '9')
            digit = static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<uint64_t>(c - 'a') + 10;
        else
            return false;
        stored = stored << 4 | digit;
    }
    return stored == expected;
}

std::string
legacyRecordFileName(const std::string &key)
{
    return "r-" + fnv1a64Hex(key) + ".rec";
}

std::string
serializeIndexHeader(const IndexHeader &header)
{
    std::string page;
    page.reserve(kPageSize);
    page.append(kIndexMagic, sizeof(kIndexMagic));
    putU32(page, header.version);
    putU32(page, header.pageSize);
    putU32(page, header.slotsPerBucket);
    putU32(page, header.globalDepth);
    putU64(page, header.bucketPages);
    putU64(page, header.keyCount);
    putU64(page, header.dataCommitted);
    putU32(page, header.clean ? 1 : 0);
    putU32(page, 0);
    putU64(page, fnv1a64(page));
    page.resize(kPageSize, '\0');
    return page;
}

Result<IndexHeader>
parseIndexHeader(std::string_view page)
{
    using R = Result<IndexHeader>;
    if (page.size() < 64)
        return R::Err(ErrorKind::BadInput, "index header: short page");
    if (std::memcmp(page.data(), kIndexMagic, sizeof(kIndexMagic)) != 0)
        return R::Err(ErrorKind::BadInput, "index header: bad magic");
    if (getU64(page, 56) != fnv1a64(page.substr(0, 56))) {
        return R::Err(ErrorKind::BadInput,
                      "index header: checksum mismatch");
    }
    IndexHeader header;
    header.version = getU32(page, 8);
    header.pageSize = getU32(page, 12);
    header.slotsPerBucket = getU32(page, 16);
    header.globalDepth = getU32(page, 20);
    header.bucketPages = getU64(page, 24);
    header.keyCount = getU64(page, 32);
    header.dataCommitted = getU64(page, 40);
    header.clean = getU32(page, 48) != 0;
    if (header.version != kLayoutVersion) {
        return R::Err(ErrorKind::BadInput,
                      "index header: unknown version "
                          + std::to_string(header.version));
    }
    if (header.pageSize != kPageSize
        || header.slotsPerBucket != kSlotsPerBucket) {
        return R::Err(ErrorKind::BadInput,
                      "index header: geometry mismatch");
    }
    if (header.globalDepth > 31 || header.bucketPages > (1ull << 32))
        return R::Err(ErrorKind::BadInput, "index header: insane shape");
    return R::Ok(std::move(header));
}

std::string
serializeBucketPage(const BucketImage &bucket)
{
    std::string page;
    page.reserve(kPageSize);
    putU64(page, bucket.prefix);
    putU32(page, bucket.localDepth);
    putU32(page, bucket.count);
    putU64(page, 0); // Checksum placeholder, patched below.
    for (uint32_t i = 0; i < kSlotsPerBucket; ++i) {
        const BucketSlot &slot = bucket.slots[i];
        putU64(page, slot.hash);
        putU64(page, slot.offset);
        putU32(page, slot.size);
        putU32(page, slot.reserved);
    }
    page.resize(kPageSize, '\0');
    const uint64_t sum = fnv1a64(page);
    std::string patched;
    putU64(patched, sum);
    page.replace(16, 8, patched);
    return page;
}

Result<BucketImage>
parseBucketPage(std::string_view page)
{
    using R = Result<BucketImage>;
    if (page.size() != kPageSize)
        return R::Err(ErrorKind::BadInput, "bucket page: wrong size");
    std::string zeroed(page);
    zeroed.replace(16, 8, 8, '\0');
    if (getU64(page, 16) != fnv1a64(zeroed)) {
        return R::Err(ErrorKind::BadInput,
                      "bucket page: checksum mismatch");
    }
    BucketImage bucket;
    bucket.prefix = getU64(page, 0);
    bucket.localDepth = getU32(page, 8);
    bucket.count = getU32(page, 12);
    if (bucket.localDepth > 63
        || bucket.count > kSlotsPerBucket
        || (bucket.localDepth < 64
            && bucket.localDepth > 0
            && (bucket.prefix >> bucket.localDepth) != 0)
        || (bucket.localDepth == 0 && bucket.prefix != 0)) {
        return R::Err(ErrorKind::BadInput, "bucket page: insane shape");
    }
    size_t at = 24;
    for (uint32_t i = 0; i < kSlotsPerBucket; ++i) {
        BucketSlot &slot = bucket.slots[i];
        slot.hash = getU64(page, at);
        slot.offset = getU64(page, at + 8);
        slot.size = getU32(page, at + 16);
        slot.reserved = getU32(page, at + 20);
        at += sizeof(BucketSlot);
    }
    return R::Ok(std::move(bucket));
}

std::string
serializeFrameHeader(const FrameHeader &header)
{
    std::string bytes;
    bytes.reserve(kFrameHeaderBytes);
    putU32(bytes, kFrameMagic);
    putU32(bytes, header.size);
    putU64(bytes, header.keyHash);
    putU64(bytes, header.bodySum);
    putU64(bytes, fnv1a64(bytes));
    return bytes;
}

Result<FrameHeader>
parseFrameHeader(std::string_view bytes)
{
    using R = Result<FrameHeader>;
    if (bytes.size() < kFrameHeaderBytes)
        return R::Err(ErrorKind::BadInput, "frame header: short read");
    if (getU32(bytes, 0) != kFrameMagic)
        return R::Err(ErrorKind::BadInput, "frame header: bad magic");
    if (getU64(bytes, 24) != fnv1a64(bytes.substr(0, 24))) {
        return R::Err(ErrorKind::BadInput,
                      "frame header: checksum mismatch");
    }
    FrameHeader header;
    header.size = getU32(bytes, 4);
    header.keyHash = getU64(bytes, 8);
    header.bodySum = getU64(bytes, 16);
    if (header.size == 0 || header.size > kMaxRecordBytes)
        return R::Err(ErrorKind::BadInput, "frame header: insane size");
    return R::Ok(std::move(header));
}

} // namespace davf::store
