#include "shard.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace davf {

namespace {

std::string
hexDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%a", value);
    return buffer;
}

bool
readDouble(std::istream &is, double &out)
{
    std::string text;
    if (!(is >> text))
        return false;
    const char *begin = text.c_str();
    char *end = nullptr;
    out = std::strtod(begin, &end);
    return end == begin + text.size() && !text.empty();
}

} // namespace

std::string
serializeShardSpec(const ShardSpec &spec)
{
    std::ostringstream os;
    os << (spec.kind == ShardSpec::Kind::Cycle ? "cycle" : "savf") << ' '
       << spec.structure;
    if (spec.kind == ShardSpec::Kind::Cycle) {
        os << ' ' << hexDouble(spec.delayFraction) << ' ' << spec.cycle
           << ' ' << spec.wireBegin << ' ' << spec.wireEnd;
        os << ' ' << spec.quarantined.size();
        for (size_t index : spec.quarantined)
            os << ' ' << index;
    }
    const SamplingConfig &sampling = spec.sampling;
    os << ' ' << hexDouble(sampling.cycleFraction) << ' '
       << sampling.maxInjectionCycles << ' ' << sampling.maxWires << ' '
       << sampling.maxFlops << ' ' << sampling.seed << ' '
       << sampling.watchdogSlack << ' '
       << hexDouble(sampling.injectionTimeoutMs) << ' '
       << hexDouble(sampling.maxFailureRate);
    // Append-only extension, written only when set: attribution-off
    // specs — and thus store keys and worker frames — stay byte-equal
    // to releases that predate the flag.
    if (sampling.attribution)
        os << " attr";
    return os.str();
}

Result<ShardSpec>
parseShardSpec(const std::string &text)
{
    using R = Result<ShardSpec>;
    std::istringstream is(text);
    ShardSpec spec;

    std::string kind;
    if (!(is >> kind >> spec.structure))
        return R::Err(ErrorKind::BadInput,
                      "shard spec: missing kind/structure: " + text);
    if (kind == "cycle") {
        spec.kind = ShardSpec::Kind::Cycle;
        size_t quarantine_count = 0;
        if (!readDouble(is, spec.delayFraction)
            || !(is >> spec.cycle >> spec.wireBegin >> spec.wireEnd
                    >> quarantine_count)
            || quarantine_count > 1u << 20) {
            return R::Err(ErrorKind::BadInput,
                          "shard spec: bad cycle fields: " + text);
        }
        spec.quarantined.resize(quarantine_count);
        for (size_t &index : spec.quarantined) {
            if (!(is >> index))
                return R::Err(ErrorKind::BadInput,
                              "shard spec: bad quarantine list: " + text);
        }
    } else if (kind == "savf") {
        spec.kind = ShardSpec::Kind::Savf;
    } else {
        return R::Err(ErrorKind::BadInput,
                      "shard spec: unknown kind '" + kind + "'");
    }

    SamplingConfig &sampling = spec.sampling;
    if (!readDouble(is, sampling.cycleFraction)
        || !(is >> sampling.maxInjectionCycles >> sampling.maxWires
                >> sampling.maxFlops >> sampling.seed
                >> sampling.watchdogSlack)
        || !readDouble(is, sampling.injectionTimeoutMs)
        || !readDouble(is, sampling.maxFailureRate)) {
        return R::Err(ErrorKind::BadInput,
                      "shard spec: bad sampling fields: " + text);
    }
    std::string extension;
    if (is >> extension) {
        if (extension != "attr")
            return R::Err(ErrorKind::BadInput,
                          "shard spec: trailing tokens: " + text);
        sampling.attribution = true;
        if (is >> extension)
            return R::Err(ErrorKind::BadInput,
                          "shard spec: trailing tokens: " + text);
    }
    return R::Ok(std::move(spec));
}

} // namespace davf
