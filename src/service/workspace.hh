/**
 * @file
 * The shared design-under-analysis loader.
 *
 * Every front end that evaluates DelayAVF on IbexMini — the davf_run
 * CLI, the bench harnesses, the davf_serve query service and its
 * campaign workers — needs the same expensive setup: assemble the
 * benchmark, build the SoC netlist (with or without the ECC register
 * file), and run the golden capture. A Workspace performs that setup
 * exactly once from a small declarative spec, so the serve and CLI
 * paths cannot drift, and derives the **build fingerprint** that keys
 * the persistent result store: a hash over the finalized netlist
 * structure, the engine options, and the workload identity (benchmark
 * name, golden length, golden output). Two processes with equal
 * fingerprints compute bit-identical shard outcomes, which is the
 * store's cache-identity guarantee (docs/SERVICE.md).
 */

#ifndef DAVF_SERVICE_WORKSPACE_HH
#define DAVF_SERVICE_WORKSPACE_HH

#include <memory>
#include <string>

#include "analysis/attribution.hh"
#include "core/vulnerability.hh"
#include "soc/ibex_mini.hh"
#include "soc/soc_workload.hh"
#include "util/error.hh"

namespace davf::service {

/** Everything that identifies one buildable design + workload. */
struct WorkspaceSpec
{
    std::string benchmark = "libstrstr";

    /** Protect the register file with SEC ECC. */
    bool ecc = false;

    /**
     * Clock period source: STA longest path (the paper's setting) when
     * true, otherwise the observed-max timing-closure emulation that
     * davf_run and the bench harnesses default to.
     */
    bool staPeriod = false;

    bool operator==(const WorkspaceSpec &) const = default;
};

/** Canonical one-line text form (protocol + cache key component). */
std::string serializeWorkspaceSpec(const WorkspaceSpec &spec);

/** Parse a serializeWorkspaceSpec() line; malformed input is an Err. */
Result<WorkspaceSpec> parseWorkspaceSpec(const std::string &text);

/**
 * Structural hash of a finalized netlist: cell types, names, reset
 * values, and full pin connectivity, plus the wire and state-element
 * counts. Equal hashes mean the injection-site index spaces (WireId,
 * StateElemId) and all simulation semantics coincide.
 */
uint64_t netlistHash(const Netlist &netlist);

/** One built SoC + golden-captured engine (see file comment). */
class Workspace
{
  public:
    /**
     * Assemble, build, and golden-run @p spec. Throws DavfError for an
     * unknown benchmark; panics if the golden output disagrees with
     * the benchmark's expected output (the build is then miscompiled —
     * an invariant, not an input error).
     */
    explicit Workspace(const WorkspaceSpec &spec);

    const WorkspaceSpec &spec() const { return wsSpec; }
    IbexMini &soc() { return *socPtr; }
    VulnerabilityEngine &engine() { return *enginePtr; }
    const StructureRegistry &structures() const
    {
        return socPtr->structures();
    }

    /** Structure by name; DavfError{NotFound} for an unknown name. */
    const Structure &structure(const std::string &name) const;

    /**
     * The build fingerprint (see file comment). Stable across
     * processes and runs; changes whenever the netlist, the engine
     * options, or the workload change.
     */
    const std::string &fingerprint() const { return fp; }

    /**
     * The ISS/gate lockstep attribution tap, pre-installed on the
     * engine. Construction is free (its lockstep tables build lazily on
     * the first attribution query), so every workspace carries one;
     * nothing runs unless a SamplingConfig sets the attribution flag.
     * Note the tap is deliberately *outside* the fingerprint: the
     * attribution knob keys results through the shard-spec grammar
     * instead, so attribution-off store keys match earlier releases.
     */
    analysis::SocAttribution &attribution() { return *attrPtr; }

  private:
    WorkspaceSpec wsSpec;
    std::unique_ptr<IbexMini> socPtr;
    std::unique_ptr<SocWorkload> workloadPtr;
    std::unique_ptr<VulnerabilityEngine> enginePtr;
    std::unique_ptr<analysis::SocAttribution> attrPtr;
    std::string fp;
};

} // namespace davf::service

#endif // DAVF_SERVICE_WORKSPACE_HH
