/**
 * @file
 * Deterministic crash/fault injection at named persistence points.
 *
 * Every durable write path in this repo (util/atomic_file, the
 * campaign checkpoint journal, result-store record publishes,
 * supervisor quarantine records, net-mode shared-store writes, and the
 * davf_store fsck/compact rewrites) passes through a named
 * **crash point**. With nothing armed, a crash point costs a single
 * relaxed atomic load — cheap enough to leave compiled into release
 * builds, which is the point: the recovery tests exercise the exact
 * binaries users run.
 *
 * Arming happens through the environment,
 *
 *   DAVF_TEST_CRASHPOINT=<name>[:<hit-count>]=<action>
 *
 * or programmatically via arm()/disarm() (in-process tests). The spec
 * names one registered point (see knownPoints()), an optional 1-based
 * hit count (the Nth time execution reaches the point; default 1), and
 * what happens when it fires:
 *
 *  - kill    raise(SIGKILL): the process dies instantly, no unwinding,
 *            no buffer flushes — the kill -9 / power-cut case;
 *  - throw   throw DavfError{Io} as if the syscall under the point had
 *            failed — the EIO case;
 *  - enospc  at a payload point: write only a deterministic prefix of
 *            the data, then fail with a "no space left on device"
 *            DavfError{Io} — the full-disk-mid-write case. At a
 *            non-payload point it degrades to `throw`;
 *  - torn    at a payload point: truncate the payload at a
 *            deterministic byte offset (tornOffset()), *publish the
 *            damaged bytes anyway*, then SIGKILL — simulating the
 *            rename-reordered-before-data power cut that produces a
 *            torn record even under the tmp+rename discipline. At a
 *            non-payload point it degrades to `kill`;
 *  - garble  like torn, but the payload is bit-flipped at the offset
 *            instead of truncated — the media-corruption case.
 *
 * A fired point never fires again in the same process (hit counting is
 * monotonic), so a recovery run with the same environment but a fresh
 * process re-arms deterministically at the same instant.
 *
 * Like DAVF_TEST_NETFAULT, parsing is test-only and lenient: a
 * malformed spec warns and arms nothing — the hook must never break a
 * real run.
 */

#ifndef DAVF_UTIL_CRASHPOINT_HH
#define DAVF_UTIL_CRASHPOINT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace davf::crashpoint {

/** What an armed crash point does when execution reaches it. */
enum class Action : uint8_t {
    None,   ///< Nothing armed (or the spec names another point).
    Kill,   ///< SIGKILL at the point.
    Throw,  ///< DavfError{Io} at the point.
    Enospc, ///< Partial write + DavfError{Io} (ENOSPC text).
    Torn,   ///< Publish a truncated payload, then SIGKILL.
    Garble, ///< Publish a bit-flipped payload, then SIGKILL.
};

/** Stable lowercase name of @p action (spec grammar / logs). */
const char *actionName(Action action);

/** One parsed DAVF_TEST_CRASHPOINT spec. */
struct Spec
{
    std::string point;     ///< Registered point name; "" = nothing.
    uint64_t hitCount = 1; ///< Fires on the Nth hit (1-based).
    Action action = Action::None;
};

/**
 * Parse @p text (the env value). nullptr/empty yields an unarmed Spec;
 * malformed input warns and yields an unarmed Spec.
 */
Spec parseSpec(const char *text);

/**
 * Arm @p spec process-wide (replacing any armed spec and resetting the
 * hit counter). A spec whose action is None disarms. Not thread-safe
 * against concurrent fire(): arm from a quiesced test harness only.
 */
void arm(const Spec &spec);

/** Disarm; subsequent hits cost one relaxed load again. */
void disarm();

/**
 * Arm from the DAVF_TEST_CRASHPOINT environment variable if it is set.
 * Called lazily by the first fire(); idempotent.
 */
void armFromEnvironment();

/** Every crash-point name compiled into this binary, sorted. */
const std::vector<std::string> &knownPoints();

/**
 * The deterministic damage offset for a @p size byte payload: the
 * byte index where `torn` truncates and `garble` flips. Chosen so the
 * damage is mid-record (never offset 0 for a non-empty payload, never
 * the full size), making the damaged artifact distinguishable from
 * both a missing and a complete record.
 */
size_t damageOffset(size_t size);

/**
 * SIGKILL the process at @p point. Payload sites call this after
 * *publishing* the damage a Torn/Garble action asked for — the torn
 * record must land on disk before the process dies, or the crash
 * would be indistinguishable from a clean pre-write kill.
 */
[[noreturn]] void killProcess(const char *point);

/**
 * A named crash point. Construct once (function-local static) so
 * registration and the name lookup happen off the hot path; fire on
 * every pass through the guarded site.
 */
class CrashPoint
{
  public:
    /** @p name must appear in knownPoints() (asserted). */
    explicit CrashPoint(const char *name);

    /**
     * A **simple** (non-payload) site: nothing to write here, only a
     * place to die. Kill/Torn/Garble SIGKILL the process; Throw/Enospc
     * throw DavfError{Io}. Returns normally iff the point is not
     * armed, names another point, or the hit count has not been
     * reached.
     */
    void fire() const;

    /**
     * A **payload** site guarding a write of @p size bytes. Kill
     * SIGKILLs and Throw throws as with fire(); Enospc, Torn, and
     * Garble are returned for the caller to apply to the payload (see
     * the file comment for their contracts). Returns Action::None when
     * the point does not fire.
     */
    Action firePayload(size_t size) const;

  private:
    const char *name;
};

} // namespace davf::crashpoint

#endif // DAVF_UTIL_CRASHPOINT_HH
