/**
 * @file
 * Tests for the bit-parallel 64-lane simulator (src/sim/vec_sim.hh).
 *
 * The load-bearing property is lane equivalence: a VecSimulator lane
 * stepped with the same stimulus, forces, and flop flips as a scalar
 * CycleSimulator must hold bit-identical net values and behavioral
 * state every cycle — that is what makes the engine's vector path a
 * pure speed knob. The suite checks it directly (per-gate truth tables,
 * snapshot fan-out, per-lane faults) and by randomized property test,
 * and fuzzes the lane-retirement mask bookkeeping the engine's batch
 * loop relies on.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/builder/builder.hh"
#include "src/core/workload.hh"
#include "src/sim/cycle_sim.hh"
#include "src/sim/vec_sim.hh"
#include "src/util/rng.hh"
#include "tests/helpers.hh"

namespace davf {
namespace {

/** Compare one lane of @p vec against @p scalar on every net. */
void
expectLaneMatches(const VecSimulator &vec, unsigned lane,
                  const CycleSimulator &scalar, const std::string &what)
{
    const Netlist &nl = vec.netlist();
    for (NetId id = 0; id < nl.numNets(); ++id) {
        ASSERT_EQ(vec.value(id, lane), scalar.value(id))
            << what << ": lane " << lane << " net " << nl.net(id).name;
    }
}

TEST(VecSim, GateTruthTablesAcrossLanes)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId a = b.input("a");
    const NetId c = b.input("c");
    const NetId s = b.input("s");
    const NetId g_buf = b.buf(a);
    const NetId g_inv = b.inv(a);
    const NetId g_and = b.and2(a, c);
    const NetId g_or = b.or2(a, c);
    const NetId g_nand = b.nand2(a, c);
    const NetId g_nor = b.nor2(a, c);
    const NetId g_xor = b.xor2(a, c);
    const NetId g_xnor = b.xnor2(a, c);
    const NetId g_mux = b.mux(s, a, c);
    const NetId g_one = b.constant(true);
    const NetId g_zero = b.constant(false);
    nl.finalize();

    // Lane l drives a = l&1, c = l&2, s = l&4: all eight input
    // combinations live simultaneously, repeated over the 64 lanes.
    uint64_t a_bits = 0;
    uint64_t c_bits = 0;
    uint64_t s_bits = 0;
    for (unsigned l = 0; l < 64; ++l) {
        a_bits |= uint64_t{(l >> 0) & 1} << l;
        c_bits |= uint64_t{(l >> 1) & 1} << l;
        s_bits |= uint64_t{(l >> 2) & 1} << l;
    }
    VecSimulator vec(nl);
    vec.setInput(a, a_bits);
    vec.setInput(c, c_bits);
    vec.setInput(s, s_bits);

    for (unsigned l = 0; l < 64; ++l) {
        const bool av = (l >> 0) & 1;
        const bool cv = (l >> 1) & 1;
        const bool sv = (l >> 2) & 1;
        EXPECT_EQ(vec.value(g_buf, l), av) << "lane " << l;
        EXPECT_EQ(vec.value(g_inv, l), !av) << "lane " << l;
        EXPECT_EQ(vec.value(g_and, l), av && cv) << "lane " << l;
        EXPECT_EQ(vec.value(g_or, l), av || cv) << "lane " << l;
        EXPECT_EQ(vec.value(g_nand, l), !(av && cv)) << "lane " << l;
        EXPECT_EQ(vec.value(g_nor, l), !(av || cv)) << "lane " << l;
        EXPECT_EQ(vec.value(g_xor, l), av != cv) << "lane " << l;
        EXPECT_EQ(vec.value(g_xnor, l), av == cv) << "lane " << l;
        EXPECT_EQ(vec.value(g_mux, l), sv ? cv : av) << "lane " << l;
        EXPECT_TRUE(vec.value(g_one, l)) << "lane " << l;
        EXPECT_FALSE(vec.value(g_zero, l)) << "lane " << l;
    }

    // The scalar simulator agrees on every combination.
    CycleSimulator scalar(nl);
    for (unsigned l = 0; l < 8; ++l) {
        scalar.setInput(a, (l >> 0) & 1);
        scalar.setInput(c, (l >> 1) & 1);
        scalar.setInput(s, (l >> 2) & 1);
        expectLaneMatches(vec, l, scalar, "truth table");
    }
}

TEST(VecSim, ResetMatchesScalarReset)
{
    const auto circuit = test::makeRandomCircuit(11, 10, 60, 16);
    VecSimulator vec(*circuit.netlist);
    CycleSimulator scalar(*circuit.netlist);
    EXPECT_EQ(vec.cycle(), 0u);
    EXPECT_EQ(vec.lanes(), VecSimulator::kMaxLanes);
    for (unsigned l = 0; l < vec.lanes(); ++l)
        expectLaneMatches(vec, l, scalar, "reset");
}

TEST(VecSim, SnapshotFanOutSeedsEveryLane)
{
    const auto circuit = test::makeRandomCircuit(12, 10, 60, 16);
    CycleSimulator scalar(*circuit.netlist);
    for (int i = 0; i < 5; ++i)
        scalar.step();
    const CycleSimulator::Snapshot snap = scalar.snapshot();

    VecSimulator vec(*circuit.netlist);
    vec.seed(snap, 64);
    EXPECT_EQ(vec.cycle(), snap.cycle);
    EXPECT_EQ(vec.lanes(), 64u);
    EXPECT_EQ(vec.allLanes(), ~uint64_t{0});
    for (unsigned l = 0; l < 64; ++l)
        expectLaneMatches(vec, l, scalar, "seed");

    // Unfaulted lanes keep tracking the scalar run, including the
    // behavioral trace sink.
    for (int i = 0; i < 4; ++i) {
        vec.step();
        scalar.step();
        for (unsigned l = 0; l < 64; ++l)
            expectLaneMatches(vec, l, scalar, "post-seed step");
    }
    const auto &scalar_sink = static_cast<const TraceSinkModel &>(
        scalar.behavModel(circuit.sinkCell));
    for (unsigned l = 0; l < 64; ++l) {
        const auto &lane_sink = static_cast<const TraceSinkModel &>(
            vec.behavModel(circuit.sinkCell, l));
        EXPECT_EQ(lane_sink.trace(), scalar_sink.trace())
            << "lane " << l;
    }
}

TEST(VecSim, PartialSeedUsesNarrowMask)
{
    const auto circuit = test::makeRandomCircuit(13, 8, 40, 12);
    CycleSimulator scalar(*circuit.netlist);
    scalar.step();
    VecSimulator vec(*circuit.netlist);
    vec.seed(scalar.snapshot(), 5);
    EXPECT_EQ(vec.lanes(), 5u);
    EXPECT_EQ(vec.allLanes(), uint64_t{0x1f});
}

TEST(VecSim, PerLaneForcesMatchIndependentScalarRuns)
{
    const auto circuit = test::makeRandomCircuit(14, 10, 60, 16);
    const auto &flops = circuit.flops;
    ASSERT_GE(flops.size(), 4u);

    CycleSimulator golden(*circuit.netlist);
    for (int i = 0; i < 3; ++i)
        golden.step();
    const CycleSimulator::Snapshot snap = golden.snapshot();

    // Lane 0 unfaulted; lanes 1..7 each force a distinct (flop, value)
    // at the same edge.
    const unsigned lanes = 8;
    std::vector<VecSimulator::LaneForce> lane_forces;
    std::vector<std::vector<CycleSimulator::Force>> scalar_forces(lanes);
    Rng rng(77);
    for (unsigned l = 1; l < lanes; ++l) {
        const StateElemId elem = flops[rng.below(flops.size())];
        const bool value = rng.chance(0.5);
        lane_forces.push_back(
            {static_cast<uint8_t>(l), elem, value});
        scalar_forces[l].push_back({elem, value});
        if (rng.chance(0.5)) { // Sometimes a two-element error set.
            const StateElemId extra = flops[rng.below(flops.size())];
            lane_forces.push_back(
                {static_cast<uint8_t>(l), extra, !value});
            scalar_forces[l].push_back({extra, !value});
        }
    }

    VecSimulator vec(*circuit.netlist);
    vec.seed(snap, lanes);
    vec.step(lane_forces);

    for (unsigned l = 0; l < lanes; ++l) {
        CycleSimulator scalar(*circuit.netlist);
        scalar.restore(snap);
        scalar.step(scalar_forces[l]);
        expectLaneMatches(vec, l, scalar, "forced edge");

        // Divergent continuations stay lane-exact afterwards.
        CycleSimulator cont(*circuit.netlist);
        cont.restore(snap);
        cont.step(scalar_forces[l]);
        VecSimulator vec_cont(*circuit.netlist);
        vec_cont.seed(snap, lanes);
        vec_cont.step(lane_forces);
        for (int i = 0; i < 5; ++i) {
            vec_cont.step();
            cont.step();
        }
        expectLaneMatches(vec_cont, l, cont, "forced continuation");
    }
}

TEST(VecSim, FlipFlopTouchesSelectedLanesOnly)
{
    const auto circuit = test::makeRandomCircuit(15, 10, 60, 16);
    const auto &flops = circuit.flops;
    ASSERT_FALSE(flops.empty());

    CycleSimulator golden(*circuit.netlist);
    for (int i = 0; i < 4; ++i)
        golden.step();
    const CycleSimulator::Snapshot snap = golden.snapshot();

    const StateElemId victim = flops[flops.size() / 2];
    const VecSimulator::LaneMask mask = (uint64_t{1} << 2)
        | (uint64_t{1} << 5);

    VecSimulator vec(*circuit.netlist);
    vec.seed(snap, 8);
    vec.flipFlop(victim, mask);

    CycleSimulator flipped(*circuit.netlist);
    flipped.restore(snap);
    flipped.flipFlop(victim);
    CycleSimulator untouched(*circuit.netlist);
    untouched.restore(snap);

    for (unsigned l = 0; l < 8; ++l) {
        const CycleSimulator &want =
            (mask >> l) & 1 ? flipped : untouched;
        expectLaneMatches(vec, l, want, "flip");
    }

    // And the difference propagates correctly through later cycles.
    for (int i = 0; i < 4; ++i) {
        vec.step();
        flipped.step();
        untouched.step();
    }
    for (unsigned l = 0; l < 8; ++l) {
        const CycleSimulator &want =
            (mask >> l) & 1 ? flipped : untouched;
        expectLaneMatches(vec, l, want, "flip continuation");
    }
}

TEST(VecSim, BehavLaneMaskFreezesRetiredModels)
{
    const auto circuit = test::makeRandomCircuit(16, 8, 50, 16);
    CycleSimulator golden(*circuit.netlist);
    golden.step();
    const CycleSimulator::Snapshot snap = golden.snapshot();

    VecSimulator vec(*circuit.netlist);
    vec.seed(snap, 4);

    auto trace_of = [&](unsigned lane) {
        return static_cast<const TraceSinkModel &>(
                   vec.behavModel(circuit.sinkCell, lane))
            .trace();
    };
    const size_t seeded_len = trace_of(2).size();

    // Retire lane 2: its sink must stop recording while the live lanes
    // keep matching the scalar run.
    const VecSimulator::LaneMask live = 0b1011;
    CycleSimulator scalar(*circuit.netlist);
    scalar.restore(snap);
    for (int i = 0; i < 3; ++i) {
        vec.step({}, live);
        scalar.step();
        EXPECT_EQ(trace_of(2).size(), seeded_len) << "step " << i;
        for (unsigned l : {0u, 1u, 3u})
            EXPECT_EQ(trace_of(l), static_cast<const TraceSinkModel &>(
                                       scalar.behavModel(circuit.sinkCell))
                                       .trace())
                << "lane " << l;
    }
}

class VecSimRandom : public ::testing::TestWithParam<uint64_t>
{};

/**
 * The headline property: under fully random stimulus — per-lane input
 * bits, per-lane edge forces, per-lane flop flips — every lane of one
 * VecSimulator matches an independent scalar CycleSimulator fed the
 * same per-lane history, on every net, every cycle.
 */
TEST_P(VecSimRandom, EveryLaneMatchesScalar)
{
    const uint64_t seed = GetParam();
    const auto circuit = test::makeRandomCircuit(seed, 8, 50, 16, 3);
    const Netlist &nl = *circuit.netlist;
    const auto &flops = circuit.flops;
    Rng rng(seed * 31337);

    const unsigned lanes = 2 + rng.below(VecSimulator::kMaxLanes - 1);
    VecSimulator vec(nl, lanes);
    std::vector<std::unique_ptr<CycleSimulator>> scalars;
    for (unsigned l = 0; l < lanes; ++l)
        scalars.push_back(std::make_unique<CycleSimulator>(nl));

    for (int t = 0; t < 12; ++t) {
        // Random per-lane stimulus on each primary input.
        for (NetId in : circuit.inputs) {
            const uint64_t bits = rng.next();
            vec.setInput(in, bits);
            for (unsigned l = 0; l < lanes; ++l)
                scalars[l]->setInput(in, (bits >> l) & 1);
        }

        // Occasional per-lane flop flips.
        if (rng.chance(0.3)) {
            const StateElemId victim = flops[rng.below(flops.size())];
            const uint64_t mask = rng.next();
            vec.flipFlop(victim, mask);
            for (unsigned l = 0; l < lanes; ++l) {
                if ((mask >> l) & 1)
                    scalars[l]->flipFlop(victim);
            }
        }

        // Random per-lane forces at this edge.
        std::vector<VecSimulator::LaneForce> lane_forces;
        std::vector<std::vector<CycleSimulator::Force>> forces(lanes);
        for (unsigned l = 0; l < lanes; ++l) {
            while (rng.chance(0.2)) {
                const StateElemId elem = flops[rng.below(flops.size())];
                const bool value = rng.chance(0.5);
                lane_forces.push_back(
                    {static_cast<uint8_t>(l), elem, value});
                forces[l].push_back({elem, value});
            }
        }

        vec.step(lane_forces);
        for (unsigned l = 0; l < lanes; ++l)
            scalars[l]->step(forces[l]);

        for (unsigned l = 0; l < lanes; ++l)
            expectLaneMatches(vec, l, *scalars[l], "random step");
    }

    for (unsigned l = 0; l < lanes; ++l) {
        EXPECT_EQ(static_cast<const TraceSinkModel &>(
                      vec.behavModel(circuit.sinkCell, l))
                      .trace(),
                  static_cast<const TraceSinkModel &>(
                      scalars[l]->behavModel(circuit.sinkCell))
                      .trace())
            << "lane " << l;
    }
}

/**
 * Lane-retirement fuzz: retire lanes in random monotonic order (the
 * only order the engine's batch loop produces) and assert a retired
 * lane's behavioral state is frozen at its retirement point forever,
 * while live lanes keep matching their scalar references exactly.
 */
TEST_P(VecSimRandom, MonotonicRetirementFreezesLanes)
{
    const uint64_t seed = GetParam();
    const auto circuit = test::makeRandomCircuit(seed + 500, 8, 50, 16);
    const Netlist &nl = *circuit.netlist;
    const auto &flops = circuit.flops;
    Rng rng(seed * 7919 + 3);

    const unsigned lanes = 4 + rng.below(13); // 4..16.
    CycleSimulator golden(nl);
    golden.step();
    const CycleSimulator::Snapshot snap = golden.snapshot();

    VecSimulator vec(nl, VecSimulator::kMaxLanes);
    vec.seed(snap, lanes);
    // Distinct fault per lane so the lanes actually diverge.
    for (unsigned l = 1; l < lanes; ++l)
        vec.flipFlop(flops[l % flops.size()], uint64_t{1} << l);

    std::vector<std::unique_ptr<CycleSimulator>> scalars;
    for (unsigned l = 0; l < lanes; ++l) {
        scalars.push_back(std::make_unique<CycleSimulator>(nl));
        scalars[l]->restore(snap);
        if (l > 0)
            scalars[l]->flipFlop(flops[l % flops.size()]);
    }

    auto trace_of = [&](unsigned lane) {
        return static_cast<const TraceSinkModel &>(
                   vec.behavModel(circuit.sinkCell, lane))
            .trace();
    };

    VecSimulator::LaneMask live =
        lanes >= 64 ? ~uint64_t{0} : (uint64_t{1} << lanes) - 1;
    std::vector<std::vector<uint32_t>> frozen(lanes);
    for (int t = 0; t < 20 && live != 0; ++t) {
        // Maybe retire one random live lane (mask shrinks, never grows).
        if (rng.chance(0.4)) {
            std::vector<unsigned> live_lanes;
            for (unsigned l = 0; l < lanes; ++l) {
                if ((live >> l) & 1)
                    live_lanes.push_back(l);
            }
            const unsigned victim =
                live_lanes[rng.below(live_lanes.size())];
            live &= ~(uint64_t{1} << victim);
            frozen[victim] = trace_of(victim);
        }

        vec.step({}, live);
        for (unsigned l = 0; l < lanes; ++l) {
            if ((live >> l) & 1) {
                scalars[l]->step();
                expectLaneMatches(vec, l, *scalars[l], "live lane");
            } else {
                EXPECT_EQ(trace_of(l), frozen[l])
                    << "retired lane " << l << " trace moved";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VecSimRandom,
                         ::testing::Range<uint64_t>(1, 9));

} // namespace
} // namespace davf
