/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() is for internal invariant violations (bugs in this library):
 * it prints a location-stamped message and aborts. fatal() is for user
 * errors (bad configuration, malformed input): it throws a catchable
 * DavfError (util/error.hh) so long-running campaigns can skip the
 * offending unit of work instead of dying; a CLI entry point that wants
 * the classic print-and-exit behaviour catches it at main() (see
 * guardedMain below). davf_throw() is fatal() with an explicit
 * ErrorKind.
 */

#ifndef DAVF_UTIL_LOGGING_HH
#define DAVF_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "util/error.hh"

namespace davf {

/** Formats a message from stream-style arguments. */
template <typename... Args>
std::string
formatMessage(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] inline void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char *file, int line, const std::string &msg)
{
    throw DavfError(ErrorKind::BadInput, msg, file, line);
}

inline void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

/**
 * Run a CLI body, converting an escaped DavfError into the classic
 * "fatal: message" + nonzero exit. Keeps tools' observable behaviour
 * while the library itself stays exception-based.
 */
template <typename Fn>
int
guardedMain(Fn &&body)
{
    try {
        return body();
    } catch (const DavfError &error) {
        std::fprintf(stderr, "fatal: %s\n", error.what());
        return 1;
    }
}

} // namespace davf

/** Abort with a message: an internal invariant of the library is broken. */
#define davf_panic(...) \
    ::davf::panicImpl(__FILE__, __LINE__, ::davf::formatMessage(__VA_ARGS__))

/** Throw a DavfError: the user supplied invalid input or configuration. */
#define davf_fatal(...) \
    ::davf::fatalImpl(__FILE__, __LINE__, ::davf::formatMessage(__VA_ARGS__))

/** Throw a DavfError with an explicit ErrorKind. */
#define davf_throw(kind, ...)                                               \
    throw ::davf::DavfError((kind),                                         \
                            ::davf::formatMessage(__VA_ARGS__), __FILE__,   \
                            __LINE__)

/** Print a non-fatal warning. */
#define davf_warn(...) \
    ::davf::warnImpl(__FILE__, __LINE__, ::davf::formatMessage(__VA_ARGS__))

/** Assert an internal invariant; active in all build types. */
#define davf_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::davf::panicImpl(__FILE__, __LINE__,                           \
                ::davf::formatMessage("assertion failed: " #cond " ",      \
                                      ##__VA_ARGS__));                     \
        }                                                                   \
    } while (0)

#endif // DAVF_UTIL_LOGGING_HH
