#include "report.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace davf {

namespace {

/**
 * One CSV field per RFC 4180: a field containing a comma, quote, CR or
 * LF is wrapped in double quotes with internal quotes doubled; simple
 * labels pass through byte-identical. (The old escaper silently dropped
 * commas and newlines, which corrupts operand strings like
 * "lw x1, 8(x2)".)
 */
std::string
csvField(const std::string &text)
{
    if (text.find_first_of(",\"\r\n") == std::string::npos)
        return text;
    std::string out;
    out.reserve(text.size() + 2);
    out += '"';
    for (char c : text) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/**
 * The body of a JSON string literal for @p text: quotes and backslashes
 * escaped, control characters as \uXXXX. Commas are legal inside JSON
 * strings and pass through unchanged.
 */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

/**
 * Append @p value as a JSON number. JSON has no NaN/Infinity tokens —
 * streaming them raw would make the whole report unparseable — so
 * non-finite values degrade to `null`. Finite values go through the
 * stream's default formatting, byte-identical to a plain `out << value`.
 */
std::ostream &
jsonDouble(std::ostream &out, double value)
{
    if (std::isfinite(value))
        out << value;
    else
        out << "null";
    return out;
}

std::string
hexPc(uint64_t pc)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%08llx",
                  static_cast<unsigned long long>(pc));
    return buf;
}

/**
 * The attribution table as a JSON array. Row order is the aggregation
 * order (sorted by PC then mnemonic) and destination maps are sorted,
 * so equal tables serialize to equal bytes — the property the
 * cross-isolation byte-identity checks lean on.
 */
void
attributionJson(std::ostream &out, const DelayAvfResult &result)
{
    out << ",\"attribution\":[";
    for (size_t i = 0; i < result.attribution.size(); ++i) {
        const DelayAvfResult::AttrRow &row = result.attribution[i];
        if (i > 0)
            out << ',';
        out << "{\"pc\":\"" << hexPc(row.pc) << "\",\"mnemonic\":\""
            << jsonEscape(row.mnemonic)
            << "\",\"injections\":" << row.injections
            << ",\"delay_ace\":" << row.delayAce
            << ",\"first_corruptions\":" << row.firstCorruptions
            << ",\"destinations\":{";
        bool first = true;
        for (const auto &[dest, count] : row.destinations) {
            if (!first)
                out << ',';
            first = false;
            out << '"' << jsonEscape(dest) << "\":" << count;
        }
        out << "}}";
    }
    out << ']';
}

} // namespace

std::string
attributionCsvHeader()
{
    return "benchmark,structure,d,pc,mnemonic,injections,delay_ace,"
           "first_corruptions,destinations";
}

std::string
attributionCsvRows(const std::string &benchmark,
                   const std::string &structure, double delay_fraction,
                   const DelayAvfResult &result)
{
    if (!result.attrValid)
        return "";
    std::ostringstream out;
    for (const DelayAvfResult::AttrRow &row : result.attribution) {
        std::string dests;
        for (const auto &[dest, count] : row.destinations) {
            if (!dests.empty())
                dests += '|';
            dests += dest + ':' + std::to_string(count);
        }
        out << csvField(benchmark) << ',' << csvField(structure) << ','
            << delay_fraction << ',' << hexPc(row.pc) << ','
            << csvField(row.mnemonic) << ',' << row.injections << ','
            << row.delayAce << ',' << row.firstCorruptions << ','
            << csvField(dests) << '\n';
    }
    return out.str();
}

std::string
delayAvfCsvHeader()
{
    return "benchmark,structure,d,delayavf,ordelayavf,static_frac,"
           "dynamic_frac,groupace_frac,injections,static_inj,error_inj,"
           "multibit,sdc,due,interference,compounding,wires,cycles";
}

std::string
delayAvfCsvRow(const std::string &benchmark, const std::string &structure,
               double delay_fraction, const DelayAvfResult &result)
{
    std::ostringstream out;
    out << csvField(benchmark) << ',' << csvField(structure) << ','
        << delay_fraction << ',' << result.delayAvf << ','
        << result.orDelayAvf << ',' << result.staticWireFraction << ','
        << result.dynamicWireFraction << ','
        << result.groupAceWireFraction << ',' << result.injections
        << ',' << result.staticInjections << ','
        << result.errorInjections << ',' << result.multiBitInjections
        << ',' << result.sdc << ',' << result.due << ','
        << result.aceInterference << ',' << result.aceCompounding << ','
        << result.wiresInjected << ',' << result.cyclesInjected;
    return out.str();
}

std::string
savfCsvHeader()
{
    return "benchmark,structure,savf,injections,ace,sdc,due";
}

std::string
savfCsvRow(const std::string &benchmark, const std::string &structure,
           const SavfResult &result)
{
    std::ostringstream out;
    out << csvField(benchmark) << ',' << csvField(structure) << ','
        << result.savf << ',' << result.injections << ','
        << result.aceInjections << ',' << result.sdc << ','
        << result.due;
    return out.str();
}

std::string
delayAvfJson(const std::string &benchmark, const std::string &structure,
             double delay_fraction, const DelayAvfResult &result)
{
    std::ostringstream out;
    out << "{\"benchmark\":\"" << jsonEscape(benchmark)
        << "\",\"structure\":\"" << jsonEscape(structure) << "\",\"d\":";
    jsonDouble(out, delay_fraction) << ",\"delayavf\":";
    jsonDouble(out, result.delayAvf) << ",\"ordelayavf\":";
    jsonDouble(out, result.orDelayAvf) << ",\"static_frac\":";
    jsonDouble(out, result.staticWireFraction) << ",\"dynamic_frac\":";
    jsonDouble(out, result.dynamicWireFraction) << ",\"groupace_frac\":";
    jsonDouble(out, result.groupAceWireFraction)
        << ",\"injections\":" << result.injections
        << ",\"error_injections\":" << result.errorInjections
        << ",\"multibit\":" << result.multiBitInjections
        << ",\"sdc\":" << result.sdc << ",\"due\":" << result.due
        << ",\"interference\":" << result.aceInterference
        << ",\"compounding\":" << result.aceCompounding;
    if (result.attrValid)
        attributionJson(out, result);
    out << "}";
    return out.str();
}

std::string
reportRowJson(const ReportRow &row)
{
    const std::string body = row.kind == "savf"
        ? savfJson(row.benchmark, row.structure, row.savf)
        : delayAvfJson(row.benchmark, row.structure, row.delayFraction,
                       row.davf);
    // Prefix the kind discriminator into the per-kind object.
    return "{\"kind\":\"" + jsonEscape(row.kind) + "\"," + body.substr(1);
}

std::string
reportJson(const std::vector<ReportRow> &rows)
{
    std::ostringstream out;
    out << "{\"schema\":\"davf-report/v1\",\"results\":[";
    for (size_t i = 0; i < rows.size(); ++i) {
        if (i > 0)
            out << ',';
        out << reportRowJson(rows[i]);
    }
    out << "]}";
    return out.str();
}

std::string
savfJson(const std::string &benchmark, const std::string &structure,
         const SavfResult &result)
{
    std::ostringstream out;
    out << "{\"benchmark\":\"" << jsonEscape(benchmark)
        << "\",\"structure\":\"" << jsonEscape(structure) << "\",\"savf\":";
    jsonDouble(out, result.savf)
        << ",\"injections\":" << result.injections
        << ",\"ace\":" << result.aceInjections << ",\"sdc\":"
        << result.sdc << ",\"due\":" << result.due << "}";
    return out.str();
}

} // namespace davf
