/**
 * @file
 * Tests for the reference ISS: per-instruction semantics, MMIO output /
 * halt behaviour, and full validation of all five Beebs-like benchmark
 * programs against independently computed expected outputs (including
 * MD5 of "abc" against its published digest).
 */

#include <gtest/gtest.h>

#include "src/isa/assembler.hh"
#include "src/isa/benchmarks.hh"
#include "src/isa/iss.hh"

namespace davf {
namespace {

/** Assemble, run to halt, and return the ISS. */
Iss
runProgram(const std::string &source, uint64_t max_instructions = 200000)
{
    Iss iss(assemble(source));
    EXPECT_TRUE(iss.run(max_instructions)) << "program did not halt";
    return iss;
}

const char *kEpilogue = R"(
  li t6, 0x10000
  sw a0, 0(t6)
  sw x0, 4(t6)
)";

uint32_t
evalToA0(const std::string &body)
{
    const Iss iss = runProgram(body + kEpilogue);
    EXPECT_EQ(iss.outputTrace().size(), 1u);
    return iss.outputTrace().at(0);
}

TEST(Iss, Arithmetic)
{
    EXPECT_EQ(evalToA0("li a0, 5\nli a1, 7\nadd a0, a0, a1"), 12u);
    EXPECT_EQ(evalToA0("li a0, 5\nli a1, 7\nsub a0, a0, a1"),
              static_cast<uint32_t>(-2));
    EXPECT_EQ(evalToA0("li a0, 0xf0\nli a1, 0x0f\nor a0, a0, a1"),
              0xffu);
    EXPECT_EQ(evalToA0("li a0, 0xff\nli a1, 0x0f\nand a0, a0, a1"),
              0x0fu);
    EXPECT_EQ(evalToA0("li a0, 0xff\nli a1, 0x0f\nxor a0, a0, a1"),
              0xf0u);
}

TEST(Iss, ShiftsAndCompares)
{
    EXPECT_EQ(evalToA0("li a0, 1\nslli a0, a0, 31"), 0x80000000u);
    EXPECT_EQ(evalToA0("li a0, -16\nsrai a0, a0, 2"),
              static_cast<uint32_t>(-4));
    EXPECT_EQ(evalToA0("li a0, -16\nsrli a0, a0, 28"), 0xfu);
    EXPECT_EQ(evalToA0("li a0, -1\nli a1, 1\nslt a0, a0, a1"), 1u);
    EXPECT_EQ(evalToA0("li a0, -1\nli a1, 1\nsltu a0, a0, a1"), 0u);
    EXPECT_EQ(evalToA0("li a0, 3\nli a1, 5\nsll a0, a1, a0"), 40u);
}

TEST(Iss, LuiAuipc)
{
    EXPECT_EQ(evalToA0("lui a0, 0xabcde"), 0xabcde000u);
    // auipc at pc 0.
    EXPECT_EQ(evalToA0("auipc a0, 1"), 0x1000u);
}

TEST(Iss, MemoryWordAndByte)
{
    const uint32_t got = evalToA0(R"(
  la a1, buf
  li a0, 0x11223344
  sw a0, 0(a1)
  lbu a2, 1(a1)      # 0x33
  li a0, 0x55
  sb a0, 2(a1)
  lw a0, 0(a1)       # 0x11553344
  add a0, a0, a2
  j done
buf: .space 8
done:
)");
    EXPECT_EQ(got, 0x11553344u + 0x33u);
}

TEST(Iss, SignedByteLoad)
{
    EXPECT_EQ(evalToA0(R"(
  la a1, buf
  li a0, 0x80
  sb a0, 0(a1)
  lb a0, 0(a1)
  j done
buf: .space 4
done:
)"),
              static_cast<uint32_t>(-128));
}

TEST(Iss, BranchesAndLoops)
{
    // Sum 1..10 with a loop.
    EXPECT_EQ(evalToA0(R"(
  li a0, 0
  li a1, 1
loop:
  add a0, a0, a1
  addi a1, a1, 1
  li a2, 10
  ble a1, a2, loop
)"),
              55u);
}

TEST(Iss, CallAndReturn)
{
    EXPECT_EQ(evalToA0(R"(
  li sp, 0x8000
  li a0, 20
  call double_it
  j done
double_it:
  add a0, a0, a0
  ret
done:
)"),
              40u);
}

TEST(Iss, X0IsHardwiredZero)
{
    EXPECT_EQ(evalToA0("li a0, 7\naddi x0, a0, 1\nmv a0, x0"), 0u);
}

TEST(Iss, OutputTraceOrderAndHalt)
{
    Iss iss = runProgram(R"(
  li t6, 0x10000
  li a0, 1
  sw a0, 0(t6)
  li a0, 2
  sw a0, 0(t6)
  li a0, 3
  sw a0, 0(t6)
  sw x0, 4(t6)
  li a0, 4          # Never reached... actually reached but post-halt.
)",
                        100);
    const std::vector<uint32_t> want = {1, 2, 3};
    EXPECT_EQ(iss.outputTrace(), want);
    EXPECT_TRUE(iss.halted());
}

TEST(Iss, Md5ReferenceMatchesPublishedDigest)
{
    // MD5("abc") = 900150983cd24fb0d6963f7d28e17f72; the four chaining
    // words, little-endian, are:
    std::vector<uint32_t> block(16, 0);
    block[0] = 0x80636261;
    block[14] = 24;
    const auto words = md5SingleBlock(block);
    EXPECT_EQ(words[0], 0x98500190u);
    EXPECT_EQ(words[1], 0xb04fd23cu);
    EXPECT_EQ(words[2], 0x7d3f96d6u);
    EXPECT_EQ(words[3], 0x727fe128u);
}

class BeebsOnIss : public ::testing::TestWithParam<std::string>
{};

TEST_P(BeebsOnIss, ProducesExpectedOutput)
{
    const BenchmarkProgram &program = beebsBenchmark(GetParam());
    Iss iss(assemble(program.source));
    ASSERT_TRUE(iss.run(500000)) << program.name << " did not halt";
    EXPECT_EQ(iss.outputTrace(), program.expectedOutput);
}

INSTANTIATE_TEST_SUITE_P(All, BeebsOnIss,
                         ::testing::Values("md5", "bubblesort",
                                           "libstrstr", "libfibcall",
                                           "matmult"));

TEST(Beebs, AllFiveRegistered)
{
    EXPECT_EQ(beebsBenchmarks().size(), 5u);
}

class ExtrasOnIss : public ::testing::TestWithParam<std::string>
{};

TEST_P(ExtrasOnIss, ProducesExpectedOutput)
{
    const BenchmarkProgram &program = beebsBenchmark(GetParam());
    Iss iss(assemble(program.source));
    ASSERT_TRUE(iss.run(500000)) << program.name << " did not halt";
    EXPECT_EQ(iss.outputTrace(), program.expectedOutput);
}

INSTANTIATE_TEST_SUITE_P(All, ExtrasOnIss,
                         ::testing::Values("crc32", "popcount"));

TEST(Beebs, Crc32MatchesKnownVector)
{
    // Validate the C++ reference itself: CRC-32 of "123456789" is the
    // classic check value 0xcbf43926 — recompute with the same
    // algorithm the benchmark generator uses.
    auto crc32 = [](const std::string &text) {
        uint32_t crc = 0xffffffff;
        for (unsigned char c : text) {
            crc ^= c;
            for (int bit = 0; bit < 8; ++bit) {
                const uint32_t lsb = crc & 1;
                crc >>= 1;
                if (lsb)
                    crc ^= 0xedb88320;
            }
        }
        return ~crc;
    };
    EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
}

} // namespace
} // namespace davf
