/**
 * @file
 * TCP plumbing for the distributed campaign fabric.
 *
 * The wire format is exactly the campaign worker pipe protocol lifted
 * onto a socket: 4-byte little-endian length-prefixed frames with the
 * same kMaxFrameBytes ceiling (util/subprocess.hh), so a reader never
 * sees a torn message and an oversized or hostile length prefix is
 * rejected *before* any allocation.
 *
 * On top of the frames sits a versioned handshake. A connecting worker
 * introduces itself first:
 *
 *   worker -> coordinator   "davf-net v1 hello <node> <fingerprint>"
 *   coordinator -> worker   "davf-net v1 welcome"
 *                         | "davf-net v1 reject <reason>"
 *
 * The fingerprint is the workspace build fingerprint
 * (service::Workspace::fingerprint()): two processes with equal
 * fingerprints compute bit-identical shard outcomes, so the coordinator
 * refuses nodes built from a different design/workload instead of
 * silently mixing results. A garbage or wrong-version hello is rejected
 * and the connection closed.
 *
 * See docs/DISTRIBUTED.md for the full frame grammar.
 */

#ifndef DAVF_NET_FRAME_HH
#define DAVF_NET_FRAME_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "util/error.hh"

namespace davf::net {

/** Handshake magic + protocol version, checked verbatim. */
inline constexpr std::string_view kNetMagic = "davf-net";
inline constexpr std::string_view kNetVersion = "v1";

/** A bound, listening TCP socket. */
struct ListenSocket
{
    int fd = -1;
    uint16_t port = 0; ///< The bound port (resolved when asked for 0).
};

/**
 * Bind + listen on @p host:@p port (throws DavfError{Io}). Port 0 binds
 * an ephemeral port; the resolved number is returned in the result.
 */
ListenSocket listenTcp(const std::string &host, uint16_t port);

/** Accept one connection (retries EINTR; throws DavfError{Io}). */
int acceptTcp(int listen_fd);

/**
 * Connect to @p host:@p port with a wall-clock budget of
 * @p timeout_ms (<= 0 means the OS default). Throws DavfError{Io} on
 * refusal, timeout, or an unresolvable host.
 */
int connectTcp(const std::string &host, uint16_t port,
               double timeout_ms);

/**
 * connectTcp with up to @p retries additional attempts, backing off
 * exponentially from @p backoff_base_ms between attempts — a worker
 * started before (or across a restart of) its coordinator rides the
 * ECONNREFUSED window out instead of dying on the first one.
 */
int connectTcpRetry(const std::string &host, uint16_t port,
                    double timeout_ms, unsigned retries,
                    double backoff_base_ms);

/** Split "host:port" (throws DavfError{BadArgument} on bad input). */
void parseHostPort(const std::string &text, std::string &host,
                   uint16_t &port);

/**
 * One framed stream connection. Owns the fd; reads buffer partial
 * frames across calls (a Timeout loses nothing), writes retry short
 * writes and EINTR (util/subprocess writeFrameFd). Not thread-safe:
 * callers that write from several threads share a mutex.
 */
class FrameConn
{
  public:
    FrameConn() = default;
    explicit FrameConn(int the_fd) : fd(the_fd) {}
    ~FrameConn() { close(); }

    FrameConn(const FrameConn &) = delete;
    FrameConn &operator=(const FrameConn &) = delete;
    FrameConn(FrameConn &&other) noexcept { *this = std::move(other); }
    FrameConn &
    operator=(FrameConn &&other) noexcept
    {
        if (this != &other) {
            close();
            fd = other.fd;
            rxBuffer = std::move(other.rxBuffer);
            other.fd = -1;
            other.rxBuffer.clear();
        }
        return *this;
    }

    bool open() const { return fd >= 0; }

    /** Send one frame (throws DavfError{Io} if the peer vanished). */
    void send(std::string_view payload);

    enum class ReadStatus : uint8_t {
        Frame,   ///< A complete frame was read into @c out.
        Eof,     ///< The peer closed the connection cleanly.
        Timeout, ///< No complete frame arrived before the deadline.
    };

    /**
     * Read one frame with a wall-clock budget of @p timeout_ms (<= 0
     * polls once without blocking). Throws DavfError{BadInput} on a
     * torn or oversized frame (rejected before allocating) and
     * DavfError{Io} on a read error.
     */
    ReadStatus read(std::string &out, double timeout_ms);

    /** Close the connection (idempotent). */
    void close();

  private:
    int fd = -1;
    std::string rxBuffer; ///< Bytes read but not yet framed.
};

/** A parsed worker hello. */
struct Hello
{
    std::string node;        ///< Worker's self-chosen node name.
    std::string fingerprint; ///< Its workspace build fingerprint.
};

/** The "davf-net v1 hello <node> <fingerprint>" frame text. */
std::string makeHello(const std::string &node,
                      const std::string &fingerprint);

/** Parse a hello frame; wrong magic/version/shape is an Err. */
Result<Hello> parseHello(const std::string &payload);

/** The "davf-net v1 welcome" frame text. */
std::string makeWelcome();

/** The "davf-net v1 reject <reason>" frame text. */
std::string makeReject(const std::string &reason);

/**
 * Classify a handshake reply: Ok(true) for welcome, Ok(false) with
 * @p reason filled for reject, Err for anything else.
 */
Result<bool> parseHandshakeReply(const std::string &payload,
                                 std::string &reason);

} // namespace davf::net

#endif // DAVF_NET_FRAME_HH
