#include "report.hh"

#include <cmath>
#include <sstream>

namespace davf {

namespace {

/** Escape a string for embedding in CSV/JSON (labels are simple, but
 *  never trust a label). */
std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == ',' || c == '\n')
            continue;
        out += c;
    }
    return out;
}

/**
 * Append @p value as a JSON number. JSON has no NaN/Infinity tokens —
 * streaming them raw would make the whole report unparseable — so
 * non-finite values degrade to `null`. Finite values go through the
 * stream's default formatting, byte-identical to a plain `out << value`.
 */
std::ostream &
jsonDouble(std::ostream &out, double value)
{
    if (std::isfinite(value))
        out << value;
    else
        out << "null";
    return out;
}

} // namespace

std::string
delayAvfCsvHeader()
{
    return "benchmark,structure,d,delayavf,ordelayavf,static_frac,"
           "dynamic_frac,groupace_frac,injections,static_inj,error_inj,"
           "multibit,sdc,due,interference,compounding,wires,cycles";
}

std::string
delayAvfCsvRow(const std::string &benchmark, const std::string &structure,
               double delay_fraction, const DelayAvfResult &result)
{
    std::ostringstream out;
    out << escape(benchmark) << ',' << escape(structure) << ','
        << delay_fraction << ',' << result.delayAvf << ','
        << result.orDelayAvf << ',' << result.staticWireFraction << ','
        << result.dynamicWireFraction << ','
        << result.groupAceWireFraction << ',' << result.injections
        << ',' << result.staticInjections << ','
        << result.errorInjections << ',' << result.multiBitInjections
        << ',' << result.sdc << ',' << result.due << ','
        << result.aceInterference << ',' << result.aceCompounding << ','
        << result.wiresInjected << ',' << result.cyclesInjected;
    return out.str();
}

std::string
savfCsvHeader()
{
    return "benchmark,structure,savf,injections,ace,sdc,due";
}

std::string
savfCsvRow(const std::string &benchmark, const std::string &structure,
           const SavfResult &result)
{
    std::ostringstream out;
    out << escape(benchmark) << ',' << escape(structure) << ','
        << result.savf << ',' << result.injections << ','
        << result.aceInjections << ',' << result.sdc << ','
        << result.due;
    return out.str();
}

std::string
delayAvfJson(const std::string &benchmark, const std::string &structure,
             double delay_fraction, const DelayAvfResult &result)
{
    std::ostringstream out;
    out << "{\"benchmark\":\"" << escape(benchmark)
        << "\",\"structure\":\"" << escape(structure) << "\",\"d\":";
    jsonDouble(out, delay_fraction) << ",\"delayavf\":";
    jsonDouble(out, result.delayAvf) << ",\"ordelayavf\":";
    jsonDouble(out, result.orDelayAvf) << ",\"static_frac\":";
    jsonDouble(out, result.staticWireFraction) << ",\"dynamic_frac\":";
    jsonDouble(out, result.dynamicWireFraction) << ",\"groupace_frac\":";
    jsonDouble(out, result.groupAceWireFraction)
        << ",\"injections\":" << result.injections
        << ",\"error_injections\":" << result.errorInjections
        << ",\"multibit\":" << result.multiBitInjections
        << ",\"sdc\":" << result.sdc << ",\"due\":" << result.due
        << ",\"interference\":" << result.aceInterference
        << ",\"compounding\":" << result.aceCompounding << "}";
    return out.str();
}

std::string
reportRowJson(const ReportRow &row)
{
    const std::string body = row.kind == "savf"
        ? savfJson(row.benchmark, row.structure, row.savf)
        : delayAvfJson(row.benchmark, row.structure, row.delayFraction,
                       row.davf);
    // Prefix the kind discriminator into the per-kind object.
    return "{\"kind\":\"" + escape(row.kind) + "\"," + body.substr(1);
}

std::string
reportJson(const std::vector<ReportRow> &rows)
{
    std::ostringstream out;
    out << "{\"schema\":\"davf-report/v1\",\"results\":[";
    for (size_t i = 0; i < rows.size(); ++i) {
        if (i > 0)
            out << ',';
        out << reportRowJson(rows[i]);
    }
    out << "]}";
    return out.str();
}

std::string
savfJson(const std::string &benchmark, const std::string &structure,
         const SavfResult &result)
{
    std::ostringstream out;
    out << "{\"benchmark\":\"" << escape(benchmark)
        << "\",\"structure\":\"" << escape(structure) << "\",\"savf\":";
    jsonDouble(out, result.savf)
        << ",\"injections\":" << result.injections
        << ",\"ace\":" << result.aceInjections << ",\"sdc\":"
        << result.sdc << ",\"due\":" << result.due << "}";
    return out.str();
}

} // namespace davf
