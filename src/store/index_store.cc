#include "index_store.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <vector>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/metrics.hh"
#include "util/atomic_file.hh"
#include "util/crashpoint.hh"
#include "util/logging.hh"

namespace davf::store {

namespace {

/** Same name the legacy fsck uses; damage evidence shares one home. */
const char *const kQuarantineDirName = "quarantine";

/** In-progress compaction rewrite target (segments.davf + this). */
const char *const kCompactSuffix = ".compact";

/** fsync a directory so a rename inside it survives a power cut. */
void
fsyncDir(const std::string &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
        davf_throw(ErrorKind::Io, "cannot open dir '", dir, "': ",
                   std::strerror(errno));
    }
    const int rc = ::fsync(fd);
    const int saved = errno;
    ::close(fd);
    if (rc != 0 && saved != EINVAL && saved != ENOTSUP) {
        davf_throw(ErrorKind::Io, "cannot fsync dir '", dir, "': ",
                   std::strerror(saved));
    }
}

/** store.index.* metric handles (docs/OBSERVABILITY.md). */
struct IndexMetrics
{
    obs::Counter lookups{"store.index.lookups"};
    obs::Counter hits{"store.index.hits"};
    obs::Counter corrupt{"store.index.corrupt_records"};
    obs::Counter future{"store.index.future_records"};
    obs::Counter collisions{"store.index.collisions"};
    obs::Counter appends{"store.index.appends"};
    obs::Counter replayed{"store.index.replayed_frames"};
    obs::Counter rebuilds{"store.index.rebuilds"};
    obs::Counter tailRepairs{"store.index.tail_repairs"};
    obs::Counter checkpoints{"store.index.checkpoints"};
    obs::Counter checkpointFailures{
        "store.index.checkpoint_failures"};
    obs::Gauge keys{"store.index.keys"};
    obs::Gauge buckets{"store.index.buckets"};
    obs::Gauge depth{"store.index.depth"};
    obs::Gauge splits{"store.index.splits"};
    obs::Gauge segmentBytes{"store.index.segment_bytes"};
    obs::ValueHistogram probesPerLookup{
        "store.index.probes_per_lookup"};
};

IndexMetrics &
indexMetrics()
{
    static IndexMetrics *const metrics = new IndexMetrics();
    return *metrics;
}

} // namespace

bool
IndexStore::present(const std::string &dir)
{
    struct stat st{};
    const std::string path = dir + "/" + kIndexFileName;
    return ::stat(path.c_str(), &st) == 0;
}

IndexStore::IndexStore(Options the_options)
    : options(std::move(the_options)), storeDir(options.dir)
{
    davf_assert(!storeDir.empty(), "IndexStore needs a directory");
    std::error_code ec;
    std::filesystem::create_directories(storeDir, ec);
    if (ec) {
        davf_throw(ErrorKind::Io, "cannot create store dir '", storeDir,
                   "': ", ec.message());
    }

    const std::string lockPath = storeDir + "/" + kLockFileName;
    lockFd = ::open(lockPath.c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                    0644);
    if (lockFd < 0) {
        davf_throw(ErrorKind::Io, "cannot open index lock '", lockPath,
                   "': ", std::strerror(errno));
    }
    if (::flock(lockFd, LOCK_EX | LOCK_NB) != 0) {
        const int saved = errno;
        ::close(lockFd);
        lockFd = -1;
        davf_throw(ErrorKind::Io, "index lock '", lockPath,
                   "' is held by another process: ",
                   std::strerror(saved));
    }

    try {
        // A leftover compaction rewrite never finished (its rename is
        // the commit point), so it holds only copies of frames still
        // present in the real segment file.
        const std::string staleCompact =
            storeDir + "/" + kDataFileName + kCompactSuffix;
        if (::unlink(staleCompact.c_str()) == 0) {
            davf_warn("removed unfinished compaction rewrite '",
                      staleCompact, "'");
        }
        segments.open(storeDir + "/" + kDataFileName);
        segments.syncAppends = options.syncAppends;
        openOrRecover();
    } catch (...) {
        segments.close();
        index.close();
        ::close(lockFd);
        lockFd = -1;
        throw;
    }
}

IndexStore::~IndexStore()
{
    try {
        checkpoint();
    } catch (const DavfError &error) {
        davf_warn("index checkpoint on close failed for '", storeDir,
                  "' (next open replays the tail): ", error.what());
    }
    segments.close();
    index.close();
    if (lockFd >= 0)
        ::close(lockFd);
}

void
IndexStore::openOrRecover()
{
    const std::string indexPath = storeDir + "/" + kIndexFileName;
    auto loaded = index.load(storeDir, indexPath);
    bool mutated = false;
    if (loaded) {
        if (loaded.value().dataCommitted > segments.size()) {
            // The data file shrank behind the watermark (external
            // truncation): nothing the watermark vouches for can be
            // trusted.
            davf_warn("index watermark past segment EOF in '", storeDir,
                      "'; rebuilding");
            rebuild();
            mutated = true;
        } else {
            const uint64_t replayed =
                replayTail(loaded.value().dataCommitted);
            mutated = replayed > 0 || !loaded.value().clean;
        }
    } else {
        const bool fresh =
            !std::filesystem::exists(indexPath) && segments.size() == 0;
        if (!fresh) {
            davf_warn("index unusable in '", storeDir, "' (",
                      loaded.error().what(), "); rebuilding");
        }
        rebuild();
        mutated = true;
    }
    if (mutated || !loaded || !loaded.value().clean) {
        try {
            checkpointLockedFree();
        } catch (const DavfError &error) {
            const std::lock_guard<std::mutex> lock(statsMutex);
            ++counters.checkpointFailures;
            indexMetrics().checkpointFailures.add(1);
            davf_warn("index checkpoint after open failed for '",
                      storeDir, "': ", error.what());
        }
    }
    refreshShapeGauges();
}

void
IndexStore::rebuild()
{
    if (segments.size() > 0 || IndexStore::present(storeDir)) {
        const std::lock_guard<std::mutex> lock(statsMutex);
        ++counters.rebuilds;
        indexMetrics().rebuilds.add(1);
    }
    index.create(storeDir, storeDir + "/" + kIndexFileName);
    replayTail(0);
}

uint64_t
IndexStore::replayTail(uint64_t from)
{
    uint64_t replayed = 0;
    const SegmentFile::ScanStats scanned = segments.scan(
        from,
        [&](uint64_t offset, const FrameHeader &header, bool bodyValid) {
            if (!bodyValid)
                return; // Garbled frame: skippable; fsck quarantines.
            index.insert(header.keyHash, offset, header.size);
            ++replayed;
        });
    if (scanned.tornTail)
        repairTornTail(scanned.tailOffset, segments.size());
    if (replayed > 0) {
        const std::lock_guard<std::mutex> lock(statsMutex);
        counters.replayed += replayed;
        indexMetrics().replayed.add(replayed);
    }
    return replayed;
}

void
IndexStore::repairTornTail(uint64_t offset, uint64_t end)
{
    static const crashpoint::CrashPoint repair_point(
        "index.tail_repair");
    try {
        repair_point.fire();
        auto bytes = segments.readRaw(offset, end - offset);
        if (!bytes)
            davf_throw(ErrorKind::Io, bytes.error().what());
        const std::string qdir =
            storeDir + "/" + kQuarantineDirName;
        std::error_code ec;
        std::filesystem::create_directories(qdir, ec);
        if (ec) {
            davf_throw(ErrorKind::Io, "cannot create '", qdir, "': ",
                       ec.message());
        }
        // Quarantine-not-delete: the torn bytes are evidence; only
        // after they are safely copied does the tail get truncated.
        writeFileAtomic(qdir + "/tail-" + std::to_string(offset)
                            + ".bin",
                        bytes.value());
        segments.truncateTo(offset);
        const std::lock_guard<std::mutex> lock(statsMutex);
        ++counters.tailRepairs;
        indexMetrics().tailRepairs.add(1);
    } catch (const DavfError &error) {
        // Leave the tail in place but realign the append offset so
        // future frames stay on the 16-byte grid a scan can resync on.
        davf_warn("cannot quarantine torn segment tail in '", storeDir,
                  "' (leaving in place): ", error.what());
        segments.alignAppend();
    }
}

IndexStore::LookupResult
IndexStore::lookup(const std::string &key)
{
    LookupResult result;
    const uint64_t hash = fnv1a64(key);
    uint32_t probes = 0;
    const auto candidate = index.lookup(hash, &probes);
    indexMetrics().lookups.add(1);
    indexMetrics().probesPerLookup.observe(probes);
    if (!candidate) {
        const std::lock_guard<std::mutex> lock(statsMutex);
        ++counters.lookups;
        return result;
    }

    std::string scratch;
    auto record =
        segments.readView(candidate->offset, candidate->size, scratch);
    std::string_view recordKey, payload;
    if (record
        && !splitCanonicalRecord(record.value(), recordKey, payload)
        && recordTextFutureVersion(record.value())) {
        // A record written by a newer binary sharing this store: not
        // damage. Keep the slot (the writer can still serve it) and
        // report a distinct miss so the caller recomputes.
        result.status = LookupStatus::Future;
        indexMetrics().future.add(1);
        const std::lock_guard<std::mutex> lock(statsMutex);
        ++counters.lookups;
        ++counters.future;
        return result;
    }
    if (!record
        || !splitCanonicalRecord(record.value(), recordKey, payload)) {
        // Damaged frame or record: degrade to a miss and drop the
        // slot so readers stop re-verifying it; the bytes stay in the
        // segment file for fsck/compact to quarantine.
        index.remove(hash, candidate->offset);
        result.status = LookupStatus::Corrupt;
        indexMetrics().corrupt.add(1);
        const std::lock_guard<std::mutex> lock(statsMutex);
        ++counters.lookups;
        ++counters.corrupt;
        return result;
    }
    if (recordKey != key) {
        // A full 64-bit hash collision: the record is some other
        // key's valid result. Deliberately kept (legacy semantics) —
        // serving it would poison the cache, dropping it would hurt
        // the owner.
        result.status = LookupStatus::Collision;
        indexMetrics().collisions.add(1);
        const std::lock_guard<std::mutex> lock(statsMutex);
        ++counters.lookups;
        ++counters.collisions;
        return result;
    }
    result.status = LookupStatus::Hit;
    result.payload.assign(payload);
    indexMetrics().hits.add(1);
    const std::lock_guard<std::mutex> lock(statsMutex);
    ++counters.lookups;
    ++counters.hits;
    return result;
}

void
IndexStore::put(const std::string &key, const std::string &payload)
{
    putRecord(key, serializeRecordText(key, payload));
}

void
IndexStore::putRecord(const std::string &key,
                      const std::string &record)
{
    const std::lock_guard<std::mutex> lock(writerMutex);
    putLocked(key, record);
}

void
IndexStore::putLocked(const std::string &key,
                      const std::string &record)
{
    const uint64_t hash = fnv1a64(key);
    const uint64_t offset = segments.append(record, hash);
    index.insert(hash, offset,
                 static_cast<uint32_t>(record.size()));
    {
        const std::lock_guard<std::mutex> lock(statsMutex);
        ++counters.appends;
    }
    indexMetrics().appends.add(1);
    ++appendsSinceCheckpoint;
    maybeCheckpointLocked();
    refreshShapeGauges();
}

void
IndexStore::maybeCheckpointLocked()
{
    if (appendsSinceCheckpoint < options.checkpointInterval)
        return;
    try {
        checkpointLockedFree();
    } catch (const DavfError &error) {
        // The appended record is durable and indexed in memory; a
        // failed checkpoint only means the next open replays more
        // tail. Count it, keep serving.
        const std::lock_guard<std::mutex> lock(statsMutex);
        ++counters.checkpointFailures;
        indexMetrics().checkpointFailures.add(1);
        davf_warn("index checkpoint failed for '", storeDir,
                  "' (continuing): ", error.what());
    }
}

void
IndexStore::checkpoint()
{
    const std::lock_guard<std::mutex> lock(writerMutex);
    checkpointLockedFree();
}

void
IndexStore::checkpointLockedFree()
{
    segments.sync();
    index.checkpoint(segments.size());
    appendsSinceCheckpoint = 0;
    const std::lock_guard<std::mutex> lock(statsMutex);
    ++counters.checkpoints;
    indexMetrics().checkpoints.add(1);
}

uint64_t
IndexStore::compact()
{
    static const crashpoint::CrashPoint rewrite_point(
        "compact.rewrite");

    const std::lock_guard<std::mutex> lock(writerMutex);
    const uint64_t before = segments.size();

    // The index's live slots are exactly the survivors: the newest
    // valid frame per key. Rewriting in offset order keeps append
    // order (and thus the newest-wins replay invariant) intact.
    std::vector<BucketSlot> live;
    index.forEachSlot(
        [&](const BucketSlot &slot) { live.push_back(slot); });
    std::sort(live.begin(), live.end(),
              [](const BucketSlot &a, const BucketSlot &b) {
                  return a.offset < b.offset;
              });

    rewrite_point.fire();

    const std::string dataPath = storeDir + "/" + kDataFileName;
    const std::string tmpPath = dataPath + kCompactSuffix;
    {
        SegmentFile out;
        out.open(tmpPath);
        out.truncateTo(0);
        out.syncAppends = false;
        for (const BucketSlot &slot : live) {
            auto record = segments.read(slot.offset, slot.size);
            if (!record) {
                // Damaged since indexing: compaction drops it (the
                // bytes stay quarantinable in the pre-compact file
                // until the rename; fsck quarantines such frames
                // before compact is the documented order).
                davf_warn("compaction dropping damaged frame at offset ",
                          slot.offset, " in '", dataPath, "'");
                continue;
            }
            out.append(record.value(), slot.hash);
        }
        out.sync();
    }

    // Commit protocol: the index describes pre-compact offsets, so it
    // must die before the rename. Whatever instant this process is
    // killed at, reopen finds either (old data, no index) or (new
    // data, no index) and rebuilds correctly from a scan.
    index.close();
    if (::unlink((storeDir + "/" + kIndexFileName).c_str()) != 0
        && errno != ENOENT) {
        davf_throw(ErrorKind::Io, "cannot remove stale index in '",
                   storeDir, "': ", std::strerror(errno));
    }
    fsyncDir(storeDir);
    if (::rename(tmpPath.c_str(), dataPath.c_str()) != 0) {
        davf_throw(ErrorKind::Io, "cannot commit compaction rename '",
                   tmpPath, "' -> '", dataPath, "': ",
                   std::strerror(errno));
    }
    fsyncDir(storeDir);

    segments.close();
    segments.open(dataPath);
    segments.syncAppends = options.syncAppends;
    rebuild();
    checkpointLockedFree();
    refreshShapeGauges();
    const uint64_t after = segments.size();
    return before > after ? before - after : 0;
}

void
IndexStore::forEachSlot(
    const std::function<void(const BucketSlot &)> &fn) const
{
    index.forEachSlot(fn);
}

void
IndexStore::refreshShapeGauges()
{
    IndexMetrics &metrics = indexMetrics();
    metrics.keys.set(static_cast<int64_t>(index.keyCount()));
    metrics.buckets.set(static_cast<int64_t>(index.bucketCount()));
    metrics.depth.set(static_cast<int64_t>(index.globalDepth()));
    metrics.splits.set(static_cast<int64_t>(index.splits()));
    metrics.segmentBytes.set(static_cast<int64_t>(segments.size()));
}

IndexStoreStats
IndexStore::stats() const
{
    IndexStoreStats snapshot;
    {
        const std::lock_guard<std::mutex> lock(statsMutex);
        snapshot = counters;
    }
    snapshot.keys = index.keyCount();
    snapshot.buckets = index.bucketCount();
    snapshot.depth = index.globalDepth();
    snapshot.splits = index.splits();
    snapshot.segmentBytes = segments.size();
    return snapshot;
}

} // namespace davf::store
