#include "supervisor.hh"

#include <signal.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "campaign/checkpoint.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/atomic_file.hh"
#include "util/crashpoint.hh"
#include "util/logging.hh"

namespace davf {

namespace {

constexpr double kHeartbeatIntervalMs = 200.0;
constexpr double kQuitGraceMs = 2000.0;
constexpr double kKillGraceMs = 500.0;

std::string
hexDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%a", value);
    return buffer;
}

bool
textToDouble(const std::string &text, double &out)
{
    const char *begin = text.c_str();
    char *end = nullptr;
    out = std::strtod(begin, &end);
    return end == begin + text.size() && !text.empty();
}

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

uint64_t
fnv1a(const std::string &text, uint64_t hash = 0xcbf29ce484222325ull)
{
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/**
 * Supervisor metric handles (docs/OBSERVABILITY.md). In `--isolate
 * process` mode the engine's own counters live in the worker processes;
 * these cover the parent's view of shard lifecycle, retries, and
 * recovery churn.
 */
struct SupervisorMetrics
{
    obs::Counter workersSpawned{"supervisor.workers_spawned"};
    obs::Counter workersRetired{"supervisor.workers_retired"};
    obs::Counter dispatches{"supervisor.dispatches"};
    obs::Counter retries{"supervisor.retries"};
    obs::Counter heartbeats{"supervisor.heartbeats"};
    obs::Counter backoffWaits{"supervisor.backoff_waits"};
    obs::Counter bisectProbes{"supervisor.bisect_probes"};
    obs::Counter quarantines{"supervisor.quarantines"};
    obs::Counter quarantineWriteFailures{
        "supervisor.quarantine_write_failures"};
    obs::Counter quarantineSkippedRecords{
        "supervisor.quarantine_skipped_records"};
    obs::Counter dispatchNs{"supervisor.time.dispatch_ns"};
    obs::Counter backoffNs{"supervisor.time.backoff_ns"};
    obs::ValueHistogram shardWallUs{"supervisor.shard_wall_us"};
};

SupervisorMetrics &
supervisorMetrics()
{
    static SupervisorMetrics *const metrics = new SupervisorMetrics();
    return *metrics;
}

/** Per-outcome attempt tallies, registered once each. */
obs::Counter &
outcomeCounter(std::string_view name)
{
    static std::mutex mutex;
    static std::map<std::string, obs::Counter, std::less<>> counters;
    const std::lock_guard<std::mutex> lock(mutex);
    auto it = counters.find(name);
    if (it == counters.end()) {
        it = counters
                 .emplace(std::string(name),
                          obs::Counter("supervisor.outcome."
                                       + std::string(name)))
                 .first;
    }
    return it->second;
}

} // namespace

std::string
serializeQuarantineRecord(const QuarantineRecord &record)
{
    std::ostringstream os;
    os << "davf-quarantine v1 " << record.configHash << ' '
       << record.benchmark << ' ' << record.structure << ' '
       << hexDouble(record.delayFraction) << ' ' << record.cycle << ' '
       << record.wireIndex << ' ' << record.wire << ' ' << record.seed
       << ' ' << record.reason;
    return os.str();
}

Result<QuarantineRecord>
parseQuarantineRecord(const std::string &text)
{
    using R = Result<QuarantineRecord>;
    std::istringstream is(text);
    std::string magic, version, delay;
    QuarantineRecord record;
    if (!(is >> magic >> version) || magic != "davf-quarantine"
        || version != "v1") {
        return R::Err(ErrorKind::BadInput,
                      "quarantine record: bad header: " + text);
    }
    if (!(is >> record.configHash >> record.benchmark >> record.structure
             >> delay >> record.cycle >> record.wireIndex >> record.wire
             >> record.seed)
        || !textToDouble(delay, record.delayFraction)) {
        return R::Err(ErrorKind::BadInput,
                      "quarantine record: bad fields: " + text);
    }
    std::getline(is, record.reason);
    if (!record.reason.empty() && record.reason.front() == ' ')
        record.reason.erase(0, 1);
    return R::Ok(std::move(record));
}

void
saveQuarantineRecord(const std::string &dir,
                     const QuarantineRecord &record)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        davf_throw(ErrorKind::Io, "cannot create quarantine dir '", dir,
                   "': ", ec.message());
    }
    // A deterministic name keeps reruns from piling up duplicates; the
    // delay lives in the hash so every (cell, injection) gets its own
    // file.
    std::ostringstream name;
    name << "q-" << record.structure << "-c" << record.cycle << "-w"
         << record.wireIndex << "-" << std::hex
         << fnv1a(record.configHash + ':' + record.benchmark + ':'
                  + hexDouble(record.delayFraction))
         << ".qr";
    const std::filesystem::path path =
        std::filesystem::path(dir) / name.str();
    static const crashpoint::CrashPoint save_point("quarantine.save");
    save_point.fire();
    writeFileAtomic(path.string(),
                    serializeQuarantineRecord(record) + "\n");
}

std::vector<QuarantineRecord>
loadQuarantineRecords(const std::string &dir)
{
    std::vector<QuarantineRecord> records;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
        return records;
    for (const std::filesystem::directory_entry &entry : it) {
        if (!entry.is_regular_file(ec))
            continue;
        // Resume must never die on quarantine damage: an unreadable,
        // empty, torn, or garbled record is skipped with a warning and
        // a counter — the worst consequence is re-bisecting (and
        // re-quarantining) the injection it described.
        std::ifstream file(entry.path(), std::ios::binary);
        std::string line;
        if (!file || !std::getline(file, line)) {
            supervisorMetrics().quarantineSkippedRecords.add(1);
            davf_warn("skipping unreadable or empty quarantine record "
                      "'", entry.path().string(), "'");
            continue;
        }
        Result<QuarantineRecord> parsed = parseQuarantineRecord(line);
        if (!parsed) {
            supervisorMetrics().quarantineSkippedRecords.add(1);
            davf_warn("skipping torn or garbled quarantine record '",
                      entry.path().string(),
                      "': ", parsed.error().what());
            continue;
        }
        records.push_back(std::move(parsed.value()));
    }
    std::sort(records.begin(), records.end(),
              [](const QuarantineRecord &a, const QuarantineRecord &b) {
                  return std::tie(a.structure, a.delayFraction, a.cycle,
                                  a.wireIndex)
                      < std::tie(b.structure, b.delayFraction, b.cycle,
                                 b.wireIndex);
              });
    return records;
}

// ---------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------

struct Supervisor::Slot
{
    std::unique_ptr<Subprocess> proc;
    bool ready = false; ///< The worker said hello and is idle.
};

struct Supervisor::Attempt
{
    enum class Outcome : uint8_t {
        Ok,        ///< A well-formed reply arrived.
        Crash,     ///< The worker died (signal or nonzero exit).
        Timeout,   ///< Heartbeat or shard deadline expired; killed.
        Oom,       ///< The worker exceeded its memory cap.
        BadOutput, ///< The worker replied with something unparseable.
        Error,     ///< The worker reported a deterministic DavfError.
        Stopped,   ///< The cooperative stop flag interrupted us.
    };

    Outcome outcome = Outcome::Error;
    std::string detail;
    InjectionCycleOutcome cycleOutcome; ///< Valid for Ok davf shards.
    SavfResult savfOutcome;             ///< Valid for Ok savf shards.
    double wallMs = 0.0;
    long rssKb = 0;
    double userSec = 0.0;
    double sysSec = 0.0;

    bool retryable() const
    {
        return outcome == Outcome::Crash || outcome == Outcome::Timeout
            || outcome == Outcome::Oom || outcome == Outcome::BadOutput;
    }

    const char *outcomeName() const
    {
        switch (outcome) {
        case Outcome::Ok: return "ok";
        case Outcome::Crash: return "crash";
        case Outcome::Timeout: return "timeout";
        case Outcome::Oom: return "oom";
        case Outcome::BadOutput: return "bad-output";
        case Outcome::Error: return "error";
        case Outcome::Stopped: return "stopped";
        }
        return "?";
    }
};

struct Supervisor::CellState
{
    std::mutex mutex;
    size_t next = 0; ///< Next undispatched job index (under mutex).
    std::vector<QuarantineRecord> quarantined;
    bool failed = false;
    std::string failReason;
    bool stopped = false;
};

Supervisor::Supervisor(SupervisorOptions the_options)
    : options(std::move(the_options))
{
    davf_assert(!options.workerArgv.empty(),
                "supervisor needs a worker command line");
    if (options.workers == 0)
        options.workers = 1;
    // A dead worker surfaces as EPIPE on write, not a process-fatal
    // SIGPIPE.
    ::signal(SIGPIPE, SIG_IGN);
    for (unsigned i = 0; i < options.workers; ++i)
        slots.push_back(std::make_unique<Slot>());
}

Supervisor::~Supervisor()
{
    try {
        shutdown();
    } catch (...) {
        // Destructors stay silent; Subprocess cleans up regardless.
    }
}

bool
Supervisor::stopRequested() const
{
    return options.stopFlag
        && options.stopFlag->load(std::memory_order_relaxed);
}

void
Supervisor::retireWorker(Slot &slot, double grace_ms)
{
    if (!slot.proc)
        return;
    supervisorMetrics().workersRetired.add(1);
    if (slot.proc->running())
        slot.proc->terminate(grace_ms);
    slot.proc.reset();
    slot.ready = false;
}

void
Supervisor::ensureWorker(Slot &slot)
{
    if (slot.proc && slot.proc->running() && slot.ready)
        return;
    retireWorker(slot, 0.0);

    slot.proc = std::make_unique<Subprocess>();
    SpawnOptions spawn;
    spawn.memLimitMb = options.workerMemMb;
    slot.proc->spawn(options.workerArgv, spawn);
    supervisorMetrics().workersSpawned.add(1);

    // The hello covers the worker's whole engine build (golden run
    // included), so it gets its own generous budget.
    std::string frame;
    const Subprocess::ReadStatus st =
        slot.proc->readFrame(frame, options.startTimeoutMs);
    if (st != Subprocess::ReadStatus::Frame || frame != "hello") {
        std::string detail;
        if (st == Subprocess::ReadStatus::Timeout) {
            detail = "no hello within "
                + std::to_string(options.startTimeoutMs) + " ms";
            retireWorker(slot, kKillGraceMs);
        } else if (st == Subprocess::ReadStatus::Eof) {
            detail = slot.proc->wait().describe();
            slot.proc.reset();
        } else {
            detail = "unexpected first frame '" + frame + "'";
            retireWorker(slot, kKillGraceMs);
        }
        davf_throw(ErrorKind::Io, "campaign worker failed to start (",
                   detail, "); command: ", options.workerArgv[0]);
    }
    slot.ready = true;
}

Supervisor::Attempt
Supervisor::dispatchOnce(Slot &slot, const ShardSpec &spec)
{
    const obs::Span span("supervisor.dispatch",
                         &supervisorMetrics().dispatchNs);
    supervisorMetrics().dispatches.add(1);

    Attempt attempt;
    const double started = nowMs();
    auto finish = [&](Attempt::Outcome outcome, std::string detail) {
        attempt.outcome = outcome;
        attempt.detail = std::move(detail);
        attempt.wallMs = nowMs() - started;
        outcomeCounter(attempt.outcomeName()).add(1);
        supervisorMetrics().shardWallUs.observe(
            static_cast<uint64_t>(attempt.wallMs * 1000.0));
        return attempt;
    };
    auto absorbStatus = [&](const ExitStatus &status) {
        attempt.rssKb = status.maxRssKb;
        attempt.userSec = status.userSec;
        attempt.sysSec = status.sysSec;
    };

    try {
        ensureWorker(slot);
    } catch (const DavfError &error) {
        // A worker that cannot even start is indistinguishable from a
        // startup crash; the retry path respawns it.
        return finish(Attempt::Outcome::Crash, error.what());
    }

    try {
        slot.proc->sendFrame("shard " + serializeShardSpec(spec));
    } catch (const DavfError &) {
        const ExitStatus status = slot.proc->terminate(kKillGraceMs);
        slot.proc.reset();
        slot.ready = false;
        absorbStatus(status);
        if (status.exited && status.code == 86)
            return finish(Attempt::Outcome::Oom, status.describe());
        return finish(Attempt::Outcome::Crash, status.describe());
    }

    const double shard_deadline = options.shardTimeoutMs > 0.0
        ? started + options.shardTimeoutMs
        : 0.0;
    std::string frame;
    for (;;) {
        double budget = options.heartbeatTimeoutMs;
        if (shard_deadline > 0.0) {
            const double remaining = shard_deadline - nowMs();
            if (remaining <= 0.0) {
                const ExitStatus status =
                    slot.proc->terminate(kKillGraceMs);
                slot.proc.reset();
                slot.ready = false;
                absorbStatus(status);
                return finish(Attempt::Outcome::Timeout,
                              "shard exceeded its "
                                  + std::to_string(options.shardTimeoutMs)
                                  + " ms budget");
            }
            budget = std::min(budget, remaining);
        }

        Subprocess::ReadStatus st;
        try {
            st = slot.proc->readFrame(frame, budget);
        } catch (const DavfError &error) {
            // Torn stream or read failure: the worker is unusable.
            const ExitStatus status = slot.proc->terminate(kKillGraceMs);
            slot.proc.reset();
            slot.ready = false;
            absorbStatus(status);
            return finish(Attempt::Outcome::BadOutput, error.what());
        }

        if (st == Subprocess::ReadStatus::Eof) {
            const ExitStatus status = slot.proc->wait();
            slot.proc.reset();
            slot.ready = false;
            absorbStatus(status);
            if (status.exited && status.code == 86)
                return finish(Attempt::Outcome::Oom, status.describe());
            return finish(Attempt::Outcome::Crash, status.describe());
        }
        if (st == Subprocess::ReadStatus::Timeout) {
            if (shard_deadline > 0.0 && nowMs() < shard_deadline)
                continue; // The heartbeat window is rearmed per frame.
            const ExitStatus status = slot.proc->terminate(kKillGraceMs);
            slot.proc.reset();
            slot.ready = false;
            absorbStatus(status);
            return finish(Attempt::Outcome::Timeout,
                          shard_deadline > 0.0
                              ? "shard exceeded its "
                                  + std::to_string(options.shardTimeoutMs)
                                  + " ms budget"
                              : "no heartbeat within "
                                  + std::to_string(
                                        options.heartbeatTimeoutMs)
                                  + " ms");
        }

        if (frame == "hb") {
            supervisorMetrics().heartbeats.add(1);
            continue;
        }

        std::istringstream is(frame);
        std::string tag;
        is >> tag;
        if (tag == "err") {
            std::string kind;
            is >> kind;
            std::string message;
            std::getline(is, message);
            if (!message.empty() && message.front() == ' ')
                message.erase(0, 1);
            return finish(Attempt::Outcome::Error,
                          kind + ": " + message);
        }
        if (tag == "ok") {
            std::string what;
            is >> what;
            bool ok = false;
            if (what == "davf" && spec.kind == ShardSpec::Kind::Cycle)
                ok = parseOutcomeFields(is, attempt.cycleOutcome);
            else if (what == "savf" && spec.kind == ShardSpec::Kind::Savf)
                ok = parseSavfFields(is, attempt.savfOutcome);
            std::string rss_tag;
            if (ok && (is >> rss_tag) && rss_tag == "rss")
                is >> attempt.rssKb >> attempt.userSec
                    >> attempt.sysSec;
            if (ok)
                return finish(Attempt::Outcome::Ok, "");
        }
        // Anything else is protocol corruption: retire the worker so
        // the retry starts from a clean process.
        retireWorker(slot, kKillGraceMs);
        return finish(Attempt::Outcome::BadOutput,
                      "unparseable reply: " + frame.substr(0, 120));
    }
}

void
Supervisor::backoff(const ShardSpec &spec, unsigned attempt) const
{
    if (options.backoffBaseMs <= 0.0)
        return;
    double delay_ms =
        options.backoffBaseMs * static_cast<double>(1u << attempt);
    // Deterministic jitter: no shared clock or RNG state, yet distinct
    // shards desynchronize their retries.
    const uint64_t jitter_seed = fnv1a(
        spec.structure + ':' + std::to_string(spec.cycle) + ':'
        + std::to_string(attempt) + ':' + std::to_string(options.seed));
    delay_ms +=
        static_cast<double>(jitter_seed % 1000) / 1000.0
        * options.backoffBaseMs;
    SupervisorMetrics &sm = supervisorMetrics();
    sm.backoffWaits.add(1);
    const obs::Span span("supervisor.backoff", &sm.backoffNs);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
}

void
Supervisor::recordMetrics(const ShardSpec &spec, unsigned attempt,
                          const Attempt &outcome)
{
    if (options.metricsCsvPath.empty())
        return;
    const std::lock_guard<std::mutex> lock(metricsMutex);
    const bool fresh = !std::filesystem::exists(options.metricsCsvPath);
    std::ofstream file(options.metricsCsvPath, std::ios::app);
    if (!file)
        return;
    if (fresh) {
        file << "structure,kind,cycle,wire_begin,wire_end,attempt,"
                "outcome,wall_ms,max_rss_kb,user_s,sys_s\n";
    }
    char wall[32], user[32], sys[32];
    std::snprintf(wall, sizeof wall, "%.3f", outcome.wallMs);
    std::snprintf(user, sizeof user, "%.3f", outcome.userSec);
    std::snprintf(sys, sizeof sys, "%.3f", outcome.sysSec);
    file << spec.structure << ','
         << (spec.kind == ShardSpec::Kind::Cycle ? "davf" : "savf")
         << ',' << spec.cycle << ',' << spec.wireBegin << ','
         << (spec.wireEnd == SIZE_MAX ? std::string("-")
                                      : std::to_string(spec.wireEnd))
         << ',' << attempt << ',' << outcome.outcomeName() << ','
         << wall << ',' << outcome.rssKb << ',' << user << ',' << sys
         << '\n';
}

Supervisor::Attempt
Supervisor::dispatchWithRetries(Slot &slot, const ShardSpec &spec)
{
    Attempt attempt;
    for (unsigned n = 0;; ++n) {
        if (stopRequested()) {
            attempt.outcome = Attempt::Outcome::Stopped;
            attempt.detail = "stop requested";
            return attempt;
        }
        attempt = dispatchOnce(slot, spec);
        recordMetrics(spec, n, attempt);
        if (!attempt.retryable() || n >= options.maxRetries)
            return attempt;
        supervisorMetrics().retries.add(1);
        davf_warn("shard ", spec.structure, " cycle ", spec.cycle,
                  " attempt ", n, " failed (", attempt.detail,
                  "); retrying");
        backoff(spec, n);
    }
}

Supervisor::Attempt
Supervisor::bisectAndQuarantine(Slot &slot, ShardSpec spec,
                                const std::vector<WireId> &wires,
                                CellState &cell)
{
    // Probe one wire-index sub-range with a single attempt; bisection
    // only needs a fails/passes signal, and probe outcomes are always
    // discarded (per-cycle memoization makes sub-range counters
    // non-additive).
    auto probe_fails = [&](size_t begin, size_t end,
                           Attempt &last) -> bool {
        ShardSpec probe = spec;
        probe.wireBegin = begin;
        probe.wireEnd = end;
        supervisorMetrics().bisectProbes.add(1);
        last = dispatchOnce(slot, probe);
        recordMetrics(probe, 0, last);
        return last.retryable();
    };

    Attempt last;
    for (;;) {
        if (stopRequested()) {
            last.outcome = Attempt::Outcome::Stopped;
            last.detail = "stop requested";
            return last;
        }
        {
            const std::lock_guard<std::mutex> lock(cell.mutex);
            if (cell.quarantined.size() >= options.maxQuarantinePerCell) {
                last.outcome = Attempt::Outcome::Crash;
                last.detail = "quarantine budget ("
                    + std::to_string(options.maxQuarantinePerCell)
                    + " per cell) exhausted";
                return last;
            }
        }

        // Binary descent: keep the failing half. The full range is
        // known to fail, so if the left half passes the culprit is on
        // the right.
        size_t lo = 0;
        size_t hi = wires.size();
        while (hi - lo > 1) {
            const size_t mid = lo + (hi - lo) / 2;
            if (probe_fails(lo, mid, last))
                hi = mid;
            else
                lo = mid;
            if (stopRequested()) {
                last.outcome = Attempt::Outcome::Stopped;
                last.detail = "stop requested";
                return last;
            }
        }

        if (hi - lo != 1 || !probe_fails(lo, hi, last)) {
            // The failure does not reproduce on any single injection —
            // flaky hardware, or a crash that needs cross-wire state.
            last.outcome = Attempt::Outcome::Crash;
            last.detail = "crash did not bisect to a single injection";
            return last;
        }

        QuarantineRecord record;
        record.configHash = options.configHash;
        record.benchmark = options.benchmark;
        record.structure = spec.structure;
        record.delayFraction = spec.delayFraction;
        record.cycle = spec.cycle;
        record.wireIndex = lo;
        record.wire = lo < wires.size() ? wires[lo] : 0;
        record.seed = spec.sampling.seed;
        record.reason = last.detail;
        if (!options.quarantineDir.empty()) {
            // A quarantine record is an optimization (it pre-excludes
            // the injection on the next run); failing to persist one —
            // full disk, armed crash point — must not kill the
            // campaign that just survived the crash it describes.
            try {
                saveQuarantineRecord(options.quarantineDir, record);
            } catch (const DavfError &error) {
                supervisorMetrics().quarantineWriteFailures.add(1);
                davf_warn("cannot persist quarantine record (campaign "
                          "continues): ",
                          error.what());
            }
        }
        supervisorMetrics().quarantines.add(1);
        {
            const std::lock_guard<std::mutex> lock(cell.mutex);
            cell.quarantined.push_back(record);
        }
        davf_warn("quarantined injection: structure ", spec.structure,
                  " cycle ", spec.cycle, " wire index ", lo, " (",
                  last.detail, ")");

        spec.quarantined.push_back(lo);
        std::sort(spec.quarantined.begin(), spec.quarantined.end());

        // Re-run the whole cycle with the exclusion; more culprits send
        // us around the loop (budget permitting).
        last = dispatchWithRetries(slot, spec);
        if (!last.retryable())
            return last;
    }
}

Supervisor::DavfCellResult
Supervisor::runDavfCell(
    const std::string &structure, double delay_fraction,
    const std::vector<uint64_t> &cycles, const std::vector<WireId> &wires,
    const SamplingConfig &sampling,
    const std::vector<QuarantineRecord> &prior,
    const std::function<void(const InjectionCycleOutcome &)>
        &on_cycle_done)
{
    DavfCellResult result;
    if (cycles.empty())
        return result;

    // Exclusions apply per cycle: a quarantined injection names one
    // (cycle, wire index) pair.
    std::vector<std::vector<size_t>> exclusions(cycles.size());
    for (const QuarantineRecord &record : prior) {
        if (record.structure != structure
            || record.delayFraction != delay_fraction)
            continue;
        for (size_t i = 0; i < cycles.size(); ++i) {
            if (cycles[i] == record.cycle)
                exclusions[i].push_back(record.wireIndex);
        }
    }
    for (std::vector<size_t> &list : exclusions)
        std::sort(list.begin(), list.end());

    CellState cell;
    auto drain = [&](Slot &slot) {
        for (;;) {
            size_t job;
            {
                const std::lock_guard<std::mutex> lock(cell.mutex);
                if (cell.failed || cell.stopped
                    || cell.next >= cycles.size())
                    return;
                job = cell.next++;
            }
            if (stopRequested()) {
                const std::lock_guard<std::mutex> lock(cell.mutex);
                cell.stopped = true;
                return;
            }

            ShardSpec spec;
            spec.kind = ShardSpec::Kind::Cycle;
            spec.structure = structure;
            spec.delayFraction = delay_fraction;
            spec.cycle = cycles[job];
            spec.quarantined = exclusions[job];
            spec.sampling = sampling;

            Attempt attempt = dispatchWithRetries(slot, spec);
            if (attempt.retryable())
                attempt = bisectAndQuarantine(slot, spec, wires, cell);

            const std::lock_guard<std::mutex> lock(cell.mutex);
            if (attempt.outcome == Attempt::Outcome::Ok) {
                if (on_cycle_done)
                    on_cycle_done(attempt.cycleOutcome);
            } else if (attempt.outcome == Attempt::Outcome::Stopped) {
                cell.stopped = true;
            } else if (!cell.failed) {
                cell.failed = true;
                cell.failReason = "cycle "
                    + std::to_string(cycles[job]) + ": "
                    + std::string(attempt.outcomeName()) + " ("
                    + attempt.detail + ")";
            }
        }
    };

    const size_t pool =
        std::min<size_t>(options.workers, cycles.size());
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (size_t i = 1; i < pool; ++i)
        threads.emplace_back([&, i] { drain(*slots[i]); });
    drain(*slots[0]);
    for (std::thread &thread : threads)
        thread.join();

    result.quarantined = std::move(cell.quarantined);
    result.failed = cell.failed;
    result.failReason = std::move(cell.failReason);
    result.stopped = cell.stopped;
    return result;
}

Supervisor::SavfCellResult
Supervisor::runSavfCell(const std::string &structure,
                        const SamplingConfig &sampling)
{
    SavfCellResult result;
    ShardSpec spec;
    spec.kind = ShardSpec::Kind::Savf;
    spec.structure = structure;
    spec.sampling = sampling;

    const Attempt attempt = dispatchWithRetries(*slots[0], spec);
    if (attempt.outcome == Attempt::Outcome::Ok) {
        result.savf = attempt.savfOutcome;
    } else if (attempt.outcome == Attempt::Outcome::Stopped) {
        result.stopped = true;
    } else {
        result.failed = true;
        result.failReason = std::string(attempt.outcomeName())
            + " (" + attempt.detail + ")";
    }
    return result;
}

void
Supervisor::shutdown()
{
    for (const std::unique_ptr<Slot> &slot : slots) {
        if (!slot->proc || !slot->proc->running())
            continue;
        try {
            slot->proc->sendFrame("quit");
            slot->proc->closeWrite();
        } catch (const DavfError &) {
            // Already dead; terminate() below reaps it.
        }
    }
    // Drain each worker's stream until its EOF (within the quit
    // grace) before terminating: a reply frame racing the quit is
    // consumed here instead of being misread as a failure, and a
    // worker blocked flushing that reply into a full pipe can finish
    // writing and exit cleanly instead of being killed mid-write.
    const double deadline = nowMs() + kQuitGraceMs;
    for (const std::unique_ptr<Slot> &slot : slots) {
        if (!slot->proc || !slot->proc->running())
            continue;
        try {
            std::string frame;
            for (;;) {
                const double remaining = deadline - nowMs();
                if (remaining <= 0.0)
                    break;
                if (slot->proc->readFrame(frame, remaining)
                    != Subprocess::ReadStatus::Frame)
                    break; // EOF (clean exit) or a hung worker.
            }
        } catch (const DavfError &) {
            // A torn tail at shutdown is not worth reporting.
        }
    }
    for (const std::unique_ptr<Slot> &slot : slots) {
        if (slot->proc && slot->proc->running())
            slot->proc->terminate(kQuitGraceMs);
        slot->proc.reset();
        slot->ready = false;
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

namespace {

/**
 * Sends "hb" frames while a shard computes, so the supervisor can tell
 * a slow shard from a dead worker. Frame writes from this thread and
 * the main reply path share one mutex: frames must never interleave.
 */
class Heartbeat
{
  public:
    Heartbeat(std::mutex &the_mutex) : writeMutex(the_mutex)
    {
        thread = std::thread([this] { run(); });
    }

    ~Heartbeat()
    {
        done.store(true, std::memory_order_relaxed);
        thread.join();
    }

  private:
    void run()
    {
        double last_beat = nowMs();
        while (!done.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            if (nowMs() - last_beat < kHeartbeatIntervalMs)
                continue;
            last_beat = nowMs();
            try {
                const std::lock_guard<std::mutex> lock(writeMutex);
                writeFrameFd(STDOUT_FILENO, "hb");
            } catch (const DavfError &) {
                return; // The supervisor hung up; stop beating.
            }
        }
    }

    std::mutex &writeMutex;
    std::atomic<bool> done{false};
    std::thread thread;
};

std::string
selfRusageSuffix()
{
    struct rusage ru = {};
    ::getrusage(RUSAGE_SELF, &ru);
    char buffer[96];
    std::snprintf(buffer, sizeof buffer, " rss %ld %.3f %.3f",
                  ru.ru_maxrss,
                  static_cast<double>(ru.ru_utime.tv_sec)
                      + static_cast<double>(ru.ru_utime.tv_usec) * 1e-6,
                  static_cast<double>(ru.ru_stime.tv_sec)
                      + static_cast<double>(ru.ru_stime.tv_usec) * 1e-6);
    return buffer;
}

} // namespace

int
runCampaignWorker(VulnerabilityEngine &engine,
                  const StructureRegistry &registry)
{
    ::signal(SIGPIPE, SIG_IGN);
    std::mutex write_mutex;
    auto send = [&](const std::string &payload) {
        const std::lock_guard<std::mutex> lock(write_mutex);
        writeFrameFd(STDOUT_FILENO, payload);
    };

    try {
        send("hello");
        std::string frame;
        while (readFrameFd(STDIN_FILENO, frame)) {
            if (frame == "quit")
                break;
            if (frame.rfind("shard ", 0) != 0) {
                send("err bad-input unknown frame");
                continue;
            }
            Result<ShardSpec> parsed = parseShardSpec(frame.substr(6));
            if (!parsed) {
                send(std::string("err bad-input ")
                     + parsed.error().what());
                continue;
            }
            const ShardSpec &spec = parsed.value();
            const Structure *structure = registry.find(spec.structure);
            if (!structure) {
                send("err not-found unknown structure '" + spec.structure
                     + "'");
                continue;
            }

            // Workers compute one shard at a time; inner threading
            // would multiply processes times threads.
            SamplingConfig sampling = spec.sampling;
            sampling.threads = 1;

            std::string reply;
            try {
                const Heartbeat heartbeat(write_mutex);
                if (spec.kind == ShardSpec::Kind::Cycle) {
                    const InjectionCycleOutcome out = engine.delayAvfCycle(
                        *structure, spec.delayFraction, spec.cycle,
                        sampling, spec.wireBegin, spec.wireEnd,
                        spec.quarantined);
                    reply = "ok davf " + serializeOutcomeFields(out);
                } else {
                    const SavfResult out =
                        engine.savf(*structure, sampling);
                    reply = "ok savf " + serializeSavfFields(out);
                }
                reply += selfRusageSuffix();
            } catch (const std::bad_alloc &) {
                // The conventional OOM exit: the supervisor reads exit
                // code 86 as "memory cap tripped", distinct from a
                // crash.
                ::_exit(86);
            } catch (const DavfError &error) {
                reply = std::string("err ")
                    + std::string(errorKindName(error.kind())) + " "
                    + error.what();
            } catch (const std::exception &error) {
                reply = std::string("err exception ") + error.what();
            }
            send(reply);
        }
    } catch (const DavfError &error) {
        std::fprintf(stderr, "campaign worker: fatal: %s\n",
                     error.what());
        return 1;
    }
    return 0;
}

} // namespace davf
