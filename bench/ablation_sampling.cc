/**
 * @file
 * Ablation bench (beyond the paper's tables): estimator convergence
 * under statistical sampling. The paper evaluates DelayAVF with
 * temporal sampling (4% of cycles, equally spaced) and §V-C endorses
 * sampling as the first-line cost reduction; this bench quantifies how
 * the DelayAVF estimate for ALU + md5 moves as the number of injection
 * cycles and the wire sample grow, so users can pick a budget
 * deliberately.
 */

#include <cstdio>

#include "bench/common.hh"

using namespace davf;
using namespace davf::bench;

int
main()
{
    std::printf("Ablation: sampling convergence (ALU + md5, "
                "d = 60%%)\n\n");

    BenchLab lab;
    BenchContext &ctx = lab.context("md5", false);
    const Structure &alu = ctx.structure("ALU");

    std::printf("Sweep 1: injection cycles (wires fixed at 300)\n");
    printHeader("cycles", {"DelayAVF", "DynReach", "GroupSims"});
    for (unsigned cycles : {2u, 4u, 8u, 16u}) {
        SamplingConfig config;
        config.maxInjectionCycles = cycles;
        config.maxWires = 300;
        config.seed = 7;
        const DelayAvfResult result =
            ctx.engine->delayAvf(alu, 0.6, config);
        printRow(std::to_string(result.cyclesInjected),
                 {result.delayAvf, result.dynamicWireFraction,
                  static_cast<double>(result.uniqueGroupSims)},
                 4);
    }

    std::printf("\nSweep 2: wire sample size (cycles fixed at 8)\n");
    printHeader("wires", {"DelayAVF", "DynReach", "GroupSims"});
    for (size_t wires : {100u, 200u, 400u, 800u}) {
        SamplingConfig config;
        config.maxInjectionCycles = 8;
        config.maxWires = wires;
        config.seed = 7;
        const DelayAvfResult result =
            ctx.engine->delayAvf(alu, 0.6, config);
        printRow(std::to_string(result.wiresInjected),
                 {result.delayAvf, result.dynamicWireFraction,
                  static_cast<double>(result.uniqueGroupSims)},
                 4);
    }

    std::printf("\nSweep 3: seed stability (8 cycles, 300 wires)\n");
    printHeader("seed", {"DelayAVF"});
    for (uint64_t seed : {1u, 2u, 3u, 4u}) {
        SamplingConfig config;
        config.maxInjectionCycles = 8;
        config.maxWires = 300;
        config.seed = seed;
        printRow(std::to_string(seed),
                 {ctx.engine->delayAvf(alu, 0.6, config).delayAvf}, 4);
    }
    return 0;
}
