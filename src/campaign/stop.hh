/**
 * @file
 * Cooperative SIGINT/SIGTERM handling for long campaigns.
 *
 * The first signal sets a stop flag that the engine checks between
 * injections (SamplingConfig::stopFlag); the campaign then flushes its
 * checkpoint and partial CSV and exits cleanly. A second signal while
 * stopping force-exits (status 130), so a wedged run can still be
 * killed with a double Ctrl-C.
 */

#ifndef DAVF_CAMPAIGN_STOP_HH
#define DAVF_CAMPAIGN_STOP_HH

#include <atomic>

namespace davf {

/**
 * Install SIGINT/SIGTERM handlers that set the cooperative stop flag;
 * returns the flag. Idempotent.
 */
const std::atomic<bool> &installStopHandlers();

/** The cooperative stop flag (settable by tests and handlers). */
std::atomic<bool> &stopFlag();

/** Clear the flag (between campaigns, and in tests). */
void resetStopFlag();

} // namespace davf

#endif // DAVF_CAMPAIGN_STOP_HH
