/**
 * @file
 * Result-store disk-tier benchmark: legacy per-file records vs the
 * extendible-hash index (src/store/), the numbers behind the index
 * subsystem's "warm indexed lookups >= 5x legacy at 100k records"
 * acceptance line.
 *
 * For each record count and thread count it measures, with the memory
 * tier disabled so every lookup exercises the disk structures:
 *
 *  - populate throughput (records/s) for each tier;
 *  - a **cold** pass: a fresh ResultStore handle looks every key up
 *    once, in per-thread shuffled order (index load / first directory
 *    touch included);
 *  - a **warm** pass: the same handle does it again.
 *
 * Every lookup's payload is compared against the expected bytes; any
 * mismatch between tiers or against the generator fails the run with
 * a nonzero exit — byte-identity is the property the store exists for.
 *
 * The results are written to --out (default BENCH_store.json) as one
 * `davf-bench-store/v1` JSON object. Legacy runs are capped at
 * --legacy-cap records (default 100000: a million 4 KiB-block files
 * with an fsync each is an inode bonfire, not a measurement); capped
 * sizes carry index entries only and the cap is recorded in the
 * artifact rather than silently shrinking coverage.
 *
 * Usage:
 *   perf_store [--records 1000,100000,1000000] [--threads 1,8]
 *              [--dir /tmp/davf_perf_store] [--legacy-cap 100000]
 *              [--out BENCH_store.json]
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iomanip>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/result_store.hh"
#include "store/index_store.hh"
#include "util/atomic_file.hh"
#include "util/error.hh"
#include "util/json.hh"
#include "util/logging.hh"

using namespace davf;

namespace {

struct Options
{
    std::vector<uint64_t> records = {1000, 100000, 1000000};
    std::vector<unsigned> threads = {1, 8};
    std::string dir = "/tmp/davf_perf_store";
    uint64_t legacyCap = 100000;
    std::string out = "BENCH_store.json";
};

std::string
benchKey(uint64_t i)
{
    return "bench-fp0123abcd shard ALU d=0.5 cyc=8 w=" + std::to_string(i);
}

std::string
benchPayload(uint64_t i)
{
    // The hexfloat token shape real shard outcomes use.
    return "0x1.91eb851eb851fp-1 0x1.0p-3 inj=3200 err="
        + std::to_string(i % 97) + " idx=" + std::to_string(i);
}

std::vector<uint64_t>
parseU64List(const char *text)
{
    std::vector<uint64_t> values;
    std::stringstream stream{std::string(text)};
    std::string item;
    while (std::getline(stream, item, ',')) {
        if (item.empty())
            continue;
        values.push_back(std::strtoull(item.c_str(), nullptr, 10));
        if (values.back() == 0)
            davf_throw(ErrorKind::BadInput, "bad list entry '", item,
                       "'");
    }
    if (values.empty())
        davf_throw(ErrorKind::BadInput, "empty list '", text, "'");
    return values;
}

double
seconds(std::chrono::steady_clock::time_point from)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - from)
        .count();
}

struct PassResult
{
    double lookupsPerSec = 0.0;
    double p99Us = 0.0;
};

/**
 * Look every key up once across @p threads threads (keys sharded
 * round-robin, each shard shuffled), verifying payload bytes.
 * @p mismatches counts byte diffs; latencies feed the p99.
 */
PassResult
lookupPass(service::ResultStore &store, uint64_t records,
           unsigned threads, std::atomic<uint64_t> &mismatches)
{
    std::vector<std::vector<uint32_t>> latencies(threads);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            std::vector<uint64_t> mine;
            for (uint64_t i = t; i < records; i += threads)
                mine.push_back(i);
            std::shuffle(mine.begin(), mine.end(),
                         std::mt19937_64(t + 1));
            latencies[t].reserve(mine.size());
            for (const uint64_t i : mine) {
                const auto t0 = std::chrono::steady_clock::now();
                const auto hit = store.lookup(benchKey(i));
                const auto ns =
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                latencies[t].push_back(static_cast<uint32_t>(
                    std::min<int64_t>(ns, UINT32_MAX)));
                if (!hit.has_value() || *hit != benchPayload(i))
                    mismatches.fetch_add(1);
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();
    const double elapsed = seconds(start);

    std::vector<uint32_t> merged;
    for (const auto &shard : latencies)
        merged.insert(merged.end(), shard.begin(), shard.end());
    PassResult result;
    result.lookupsPerSec =
        elapsed > 0.0 ? static_cast<double>(records) / elapsed : 0.0;
    if (!merged.empty()) {
        const size_t at = merged.size() * 99 / 100;
        std::nth_element(merged.begin(), merged.begin() + at,
                         merged.end());
        result.p99Us = merged[at] / 1000.0;
    }
    return result;
}

struct Entry
{
    std::string tier; ///< "legacy" | "index"
    uint64_t records = 0;
    unsigned threads = 0;
    double populatePerSec = 0.0;
    PassResult cold;
    PassResult warm;
};

double
populateLegacy(const std::string &dir, uint64_t records)
{
    service::ResultStore store(
        {dir, 0, service::StoreFormat::Legacy});
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < records; ++i)
        store.store(benchKey(i), benchPayload(i));
    return static_cast<double>(records) / seconds(start);
}

double
populateIndex(const std::string &dir, uint64_t records)
{
    // Bulk load: per-append fdatasync off, one durability barrier at
    // the end — the posture a migration or backfill would use.
    store::IndexStore::Options options;
    options.dir = dir;
    options.syncAppends = false;
    store::IndexStore store(options);
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < records; ++i)
        store.put(benchKey(i), benchPayload(i));
    store.checkpoint();
    return static_cast<double>(records) / seconds(start);
}

void
appendEntryJson(std::ostringstream &os, const Entry &entry, bool first)
{
    if (!first)
        os << ",";
    os << "{\"tier\":\"" << entry.tier << "\""
       << ",\"records\":" << entry.records
       << ",\"threads\":" << entry.threads << std::fixed
       << std::setprecision(1) << ",\"populate_per_sec\":"
       << entry.populatePerSec
       << ",\"cold_lookups_per_sec\":" << entry.cold.lookupsPerSec
       << ",\"warm_lookups_per_sec\":" << entry.warm.lookupsPerSec
       << std::setprecision(3) << ",\"cold_p99_us\":" << entry.cold.p99Us
       << ",\"warm_p99_us\":" << entry.warm.p99Us << "}";
}

int
run(const Options &opts)
{
    namespace fs = std::filesystem;
    std::vector<Entry> entries;
    std::atomic<uint64_t> mismatches{0};

    for (const uint64_t records : opts.records) {
        for (const std::string tier : {"legacy", "index"}) {
            if (tier == "legacy" && records > opts.legacyCap) {
                std::fprintf(stderr,
                             "perf_store: skipping legacy at %llu "
                             "records (over --legacy-cap %llu)\n",
                             static_cast<unsigned long long>(records),
                             static_cast<unsigned long long>(
                                 opts.legacyCap));
                continue;
            }
            const std::string dir =
                opts.dir + "/" + tier + "-" + std::to_string(records);
            fs::remove_all(dir);
            std::fprintf(stderr,
                         "perf_store: %s %llu records: populating...\n",
                         tier.c_str(),
                         static_cast<unsigned long long>(records));
            const double populatePerSec =
                tier == "legacy" ? populateLegacy(dir, records)
                                 : populateIndex(dir, records);
            for (const unsigned threads : opts.threads) {
                Entry entry;
                entry.tier = tier;
                entry.records = records;
                entry.threads = threads;
                entry.populatePerSec = populatePerSec;
                // A fresh handle per thread count: the cold pass pays
                // the open (index load or first directory touch).
                service::ResultStore store({dir, 0});
                entry.cold =
                    lookupPass(store, records, threads, mismatches);
                entry.warm =
                    lookupPass(store, records, threads, mismatches);
                std::fprintf(
                    stderr,
                    "perf_store: %s n=%llu t=%u cold=%.0f/s "
                    "warm=%.0f/s p99=%.1fus\n",
                    tier.c_str(),
                    static_cast<unsigned long long>(records), threads,
                    entry.cold.lookupsPerSec, entry.warm.lookupsPerSec,
                    entry.warm.p99Us);
                entries.push_back(entry);
            }
            fs::remove_all(dir);
        }
    }

    // Warm single-thread speedup per size where both tiers ran — the
    // acceptance number is the 100000-record row.
    std::ostringstream os;
    os << "{\"schema\":\"davf-bench-store/v1\",\"legacy_cap\":"
       << opts.legacyCap << ",\"byte_identical\":"
       << (mismatches.load() == 0 ? "true" : "false")
       << ",\"entries\":[";
    for (size_t i = 0; i < entries.size(); ++i)
        appendEntryJson(os, entries[i], i == 0);
    os << "],\"speedups\":[";
    bool firstSpeedup = true;
    for (const uint64_t records : opts.records) {
        const Entry *legacy = nullptr;
        const Entry *index = nullptr;
        for (const Entry &entry : entries) {
            if (entry.records != records || entry.threads != 1)
                continue;
            (entry.tier == "legacy" ? legacy : index) = &entry;
        }
        if (legacy == nullptr || index == nullptr
            || legacy->warm.lookupsPerSec <= 0.0)
            continue;
        if (!firstSpeedup)
            os << ",";
        firstSpeedup = false;
        os << "{\"records\":" << records << std::fixed
           << std::setprecision(2) << ",\"warm_index_over_legacy\":"
           << index->warm.lookupsPerSec / legacy->warm.lookupsPerSec
           << "}";
    }
    os << "]}";

    const std::string json = os.str();
    const JsonCheck check = jsonValidate(json);
    if (!check) {
        std::fprintf(stderr, "perf_store: emitted invalid JSON: %s\n",
                     check.message.c_str());
        return 2;
    }
    writeFileAtomic(opts.out, json + "\n");
    std::fprintf(stderr, "perf_store: wrote %s\n", opts.out.c_str());

    if (mismatches.load() != 0) {
        std::fprintf(stderr,
                     "perf_store: %llu payload mismatches — the tiers "
                     "are NOT byte-identical\n",
                     static_cast<unsigned long long>(mismatches.load()));
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return guardedMain([&] {
        Options opts;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto need = [&]() -> const char * {
                if (i + 1 >= argc)
                    davf_throw(ErrorKind::BadInput, arg,
                               " expects a value");
                return argv[++i];
            };
            if (arg == "--records")
                opts.records = parseU64List(need());
            else if (arg == "--threads") {
                opts.threads.clear();
                for (const uint64_t t : parseU64List(need()))
                    opts.threads.push_back(static_cast<unsigned>(t));
            } else if (arg == "--dir")
                opts.dir = need();
            else if (arg == "--legacy-cap")
                opts.legacyCap =
                    std::strtoull(need(), nullptr, 10);
            else if (arg == "--out")
                opts.out = need();
            else
                davf_throw(ErrorKind::BadInput, "unknown flag '", arg,
                           "'");
        }
        return run(opts);
    });
}
