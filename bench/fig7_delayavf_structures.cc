/**
 * @file
 * Figure 7 reproduction: normalized geometric-mean DelayAVF across the
 * Beebs benchmarks for the ALU, decoder, and register file, for SDF
 * durations d = 10% .. 90% of the clock period.
 *
 * Expected shape (paper Observation 1): the ALU has the highest
 * DelayAVF at almost every d (upwards of 5x the register file), the
 * decoder sits in between, and DelayAVF generally grows with d. Values
 * are normalized to the largest geomean observed (as in the paper's
 * figure, which normalizes "to facilitate comparison between
 * structures"); the raw geomeans are printed alongside.
 */

#include <cstdio>

#include "bench/common.hh"
#include "util/stats.hh"

using namespace davf;
using namespace davf::bench;

int
main()
{
    std::printf("Figure 7: normalized geomean DelayAVF per structure\n");
    std::printf("(geometric mean over the Beebs benchmarks; normalized "
                "to the overall maximum)\n\n");

    BenchLab lab;
    AvfTable table(lab);

    // geomean[structure][d]
    std::map<std::string, std::vector<double>> geomeans;
    double overall_max = 0.0;
    for (const std::string &structure : kFig7Structures) {
        for (double d : kDelayFractions) {
            std::vector<double> values;
            for (const std::string &benchmark : kBenchmarks) {
                values.push_back(
                    table.delayAvf(benchmark, false, structure, d)
                        .delayAvf);
            }
            const double gm = geomean(values, 1e-6);
            geomeans[structure].push_back(gm);
            overall_max = std::max(overall_max, gm);
        }
    }

    std::vector<std::string> headers;
    for (double d : kDelayFractions)
        headers.push_back(std::to_string(static_cast<int>(d * 100))
                          + "%");

    std::printf("Normalized geomean DelayAVF:\n");
    printHeader("Structure \\ d", headers);
    for (const std::string &structure : kFig7Structures) {
        std::vector<double> row;
        for (double gm : geomeans[structure])
            row.push_back(overall_max > 0 ? gm / overall_max : 0.0);
        printRow(structure, row, 3);
    }

    std::printf("\nRaw geomean DelayAVF (injection-space fraction):\n");
    printHeader("Structure \\ d", headers);
    for (const std::string &structure : kFig7Structures)
        printRow(structure, geomeans[structure], 5);

    // Observation 1 headline: ALU / Regfile ratio at each d.
    std::printf("\nALU : Regfile DelayAVF ratio per d "
                "(paper: upwards of 5x):\n");
    printHeader("", headers);
    std::vector<double> ratios;
    for (size_t i = 0; i < kDelayFractions.size(); ++i) {
        const double rf = geomeans["Regfile"][i];
        ratios.push_back(rf > 0 ? geomeans["ALU"][i] / rf : 0.0);
    }
    printRow("ALU/Regfile", ratios, 2);
    return 0;
}
