#include "atomic_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "util/logging.hh"

namespace davf {

void
writeFileAtomic(const std::string &path, std::string_view contents)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());

    std::FILE *file = std::fopen(tmp.c_str(), "wb");
    if (!file) {
        davf_throw(ErrorKind::Io, "cannot open '", tmp,
                   "' for writing: ", std::strerror(errno));
    }

    bool ok = contents.empty()
        || std::fwrite(contents.data(), 1, contents.size(), file)
            == contents.size();
    ok = std::fflush(file) == 0 && ok;
    // Persist the data before the rename publishes it.
    ok = ::fsync(::fileno(file)) == 0 && ok;
    ok = std::fclose(file) == 0 && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        davf_throw(ErrorKind::Io, "short write to '", tmp,
                   "': ", std::strerror(errno));
    }

    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int saved = errno;
        std::remove(tmp.c_str());
        davf_throw(ErrorKind::Io, "cannot rename '", tmp, "' to '", path,
                   "': ", std::strerror(saved));
    }
}

} // namespace davf
