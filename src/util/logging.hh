/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() is for internal invariant violations (bugs in this library);
 * fatal() is for user errors (bad configuration, malformed input). Both
 * print a location-stamped message; panic() aborts, fatal() exits.
 */

#ifndef DAVF_UTIL_LOGGING_HH
#define DAVF_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace davf {

/** Formats a message from stream-style arguments. */
template <typename... Args>
std::string
formatMessage(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] inline void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

inline void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

} // namespace davf

/** Abort with a message: an internal invariant of the library is broken. */
#define davf_panic(...) \
    ::davf::panicImpl(__FILE__, __LINE__, ::davf::formatMessage(__VA_ARGS__))

/** Exit with a message: the user supplied invalid input or configuration. */
#define davf_fatal(...) \
    ::davf::fatalImpl(__FILE__, __LINE__, ::davf::formatMessage(__VA_ARGS__))

/** Print a non-fatal warning. */
#define davf_warn(...) \
    ::davf::warnImpl(__FILE__, __LINE__, ::davf::formatMessage(__VA_ARGS__))

/** Assert an internal invariant; active in all build types. */
#define davf_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::davf::panicImpl(__FILE__, __LINE__,                           \
                ::davf::formatMessage("assertion failed: " #cond " ",      \
                                      ##__VA_ARGS__));                     \
        }                                                                   \
    } while (0)

#endif // DAVF_UTIL_LOGGING_HH
