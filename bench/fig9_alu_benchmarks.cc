/**
 * @file
 * Figure 9 reproduction: normalized DelayAVF of the ALU for each Beebs
 * benchmark across SDF durations d = 10% .. 90% of the clock period.
 *
 * Expected shape (paper Observation 3): strong benchmark dependence,
 * with md5's highly random dataflow (high ALU toggle rates) yielding
 * the highest DelayAVF, and regular-data benchmarks like libstrstr much
 * lower.
 */

#include <cstdio>

#include "bench/common.hh"

using namespace davf;
using namespace davf::bench;

int
main()
{
    std::printf("Figure 9: normalized DelayAVF of the ALU per "
                "benchmark\n\n");

    BenchLab lab;
    AvfTable table(lab);

    std::map<std::string, std::vector<double>> rows;
    double overall_max = 0.0;
    for (const std::string &benchmark : kBenchmarks) {
        for (double d : kDelayFractions) {
            const double avf =
                table.delayAvf(benchmark, false, "ALU", d).delayAvf;
            rows[benchmark].push_back(avf);
            overall_max = std::max(overall_max, avf);
        }
    }

    std::vector<std::string> headers;
    for (double d : kDelayFractions)
        headers.push_back(std::to_string(static_cast<int>(d * 100))
                          + "%");

    std::printf("Normalized DelayAVF:\n");
    printHeader("Benchmark \\ d", headers);
    for (const std::string &benchmark : kBenchmarks) {
        std::vector<double> normalized;
        for (double value : rows[benchmark])
            normalized.push_back(
                overall_max > 0 ? value / overall_max : 0.0);
        printRow(benchmark, normalized, 3);
    }

    std::printf("\nRaw DelayAVF:\n");
    printHeader("Benchmark \\ d", headers);
    for (const std::string &benchmark : kBenchmarks)
        printRow(benchmark, rows[benchmark], 5);

    // SDC/DUE split at d = 90% (extension beyond the paper's figure).
    std::printf("\nFailure classification at d = 90%%:\n");
    printHeader("Benchmark", {"SDC", "DUE"});
    for (const std::string &benchmark : kBenchmarks) {
        const DelayAvfResult &result =
            table.delayAvf(benchmark, false, "ALU", 0.9);
        printRow(benchmark,
                 {static_cast<double>(result.sdc),
                  static_cast<double>(result.due)},
                 0);
    }
    return 0;
}
