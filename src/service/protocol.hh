/**
 * @file
 * The davf_serve client/server protocol.
 *
 * Transport: a Unix-domain stream socket carrying the same 4-byte
 * little-endian length-prefixed frames as the campaign worker pipes
 * (util/subprocess's writeFrameFd/readFrameFd work on any fd), so a
 * reader never sees a torn message.
 *
 * Frame grammar (payloads are single-line text; see docs/SERVICE.md):
 *
 *   client -> server
 *     "query <query-spec>"   evaluate a DelayAVF/sAVF query
 *     "cancel"               cooperatively stop this connection's
 *                            in-flight query
 *     "stats"                report store/scheduler counters
 *     "quit"                 close the connection
 *
 *   server -> client
 *     "ok report <json>"     the query's structured report
 *                            (core/report reportJson — byte-identical
 *                            to `davf_run --json` for the same query)
 *     "ok stats <json>"      QueryScheduler::statsJson()
 *     "ok bye"               quit acknowledged
 *     "err <kind> <message>" recoverable failure (errorKindName text)
 *
 * A query spec names the workspace (benchmark, ECC, period mode), the
 * structure, the delay list, the sAVF switch, and the sampling knobs —
 * everything that affects results, nothing operational (threads,
 * paths), mirroring the campaign config-hash discipline.
 */

#ifndef DAVF_SERVICE_PROTOCOL_HH
#define DAVF_SERVICE_PROTOCOL_HH

#include <string>
#include <vector>

#include "core/vulnerability.hh"
#include "service/workspace.hh"
#include "util/error.hh"

namespace davf::service {

/** One client query: a (structure × delays [× sAVF]) evaluation. */
struct QuerySpec
{
    WorkspaceSpec workspace;
    std::string structure = "ALU";
    std::vector<double> delays;
    bool runSavf = false;

    /** Engine sampling; threads/stopFlag are server-managed. */
    SamplingConfig sampling;
};

/** Canonical one-line text form of @p query. */
std::string serializeQuerySpec(const QuerySpec &query);

/** Parse a serializeQuerySpec() line; malformed input is an Err. */
Result<QuerySpec> parseQuerySpec(const std::string &text);

/** A decoded client frame. */
struct ClientFrame
{
    enum class Verb : uint8_t { Query, Cancel, Stats, Quit };

    Verb verb = Verb::Quit;
    QuerySpec query; ///< Valid for Verb::Query.
};

/** Frame text for a query. */
std::string makeQueryFrame(const QuerySpec &query);

/** Parse one client frame payload; malformed input is an Err. */
Result<ClientFrame> parseClientFrame(const std::string &payload);

/** A decoded server reply. */
struct ServerReply
{
    bool ok = false;
    std::string tag;       ///< "report", "stats", or "bye" when ok.
    std::string body;      ///< Report/stats JSON when ok.
    std::string errorKind; ///< errorKindName text when !ok.
    std::string message;   ///< Error detail when !ok.
};

std::string serializeServerReply(const ServerReply &reply);

/** Parse one server reply payload; malformed input is an Err. */
Result<ServerReply> parseServerReply(const std::string &payload);

/**
 * @name Unix-domain socket plumbing
 * Both throw DavfError{Io} on failure and return an owned fd.
 */
/// @{

/** Bind + listen on @p path (an existing socket file is replaced). */
int listenUnix(const std::string &path);

/** Connect to the server at @p path. */
int connectUnix(const std::string &path);

/// @}

} // namespace davf::service

#endif // DAVF_SERVICE_PROTOCOL_HH
