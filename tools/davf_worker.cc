/**
 * @file
 * The remote campaign worker node (see docs/DISTRIBUTED.md).
 *
 * One davf_worker builds the same workspace as its coordinator —
 * benchmark, ECC switch, clock model — then connects, introduces itself
 * with the versioned hello carrying the workspace build fingerprint,
 * and serves shards until told to quit. A coordinator built from a
 * different design/workload rejects the hello instead of silently
 * mixing results, so the only configuration that must agree here is
 * the workspace spec; every sampling knob arrives per-shard.
 *
 * Usage:
 *   davf_worker --connect HOST:PORT [options]
 *     --benchmark NAME        workload to build (default libstrstr);
 *                             must match the coordinator's
 *     --ecc                   protect the register file with SEC ECC
 *     --sta-period            use the STA longest path as the clock
 *     --node NAME             self-chosen node name shown in
 *                             coordinator logs (default node-<pid>)
 *     --connect-retries N     extra connect attempts with exponential
 *                             backoff (default 30) — a worker started
 *                             before its coordinator waits for it
 *     --backoff-ms X          base of the connect backoff (default 200)
 *     --connect-timeout-ms X  per-attempt connect timeout (default 5000)
 *     --no-vector             scalar faulty continuations
 *     --vector-lanes N        lanes per vector batch, 2..64 (default 64)
 *     --no-vector-tsim        scalar faulted-cone re-simulation
 *     --tsim-lanes N          lanes per timed-simulator batch, 1..64
 *
 * Exit codes: 0 after a clean quit, 1 for a lost/unreachable
 * coordinator, 2 for a rejected handshake.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "isa/benchmarks.hh"
#include "net/frame.hh"
#include "net/worker.hh"
#include "service/workspace.hh"
#include "util/logging.hh"
#include "util/parse.hh"

using namespace davf;

namespace {

struct Options
{
    std::string connect;
    std::string benchmark = "libstrstr";
    bool ecc = false;
    bool sta_period = false;
    std::string node;
    net::NetWorkerOptions net;
    bool no_vector = false;
    unsigned vector_lanes = 64;
    bool no_vector_tsim = false;
    unsigned tsim_lanes = 64;
};

void
printUsage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --connect HOST:PORT [--benchmark N] [--ecc]"
                 " [--sta-period]\n"
                 "          [--node NAME] [--connect-retries N] "
                 "[--backoff-ms X]\n"
                 "          [--connect-timeout-ms X] [--no-vector] "
                 "[--vector-lanes N]\n"
                 "          [--no-vector-tsim] [--tsim-lanes N]\n",
                 argv0);
}

[[noreturn]] void
usageError(const char *argv0, const std::string &detail)
{
    printUsage(argv0);
    std::fprintf(stderr, "error: %s\n", detail.c_str());
    std::exit(2);
}

uint64_t
parseU64(const char *argv0, const std::string &flag, const char *text)
{
    try {
        return parseU64Strict(text, flag);
    } catch (const DavfError &error) {
        usageError(argv0, error.what());
    }
}

double
parseDouble(const char *argv0, const std::string &flag, const char *text)
{
    try {
        return parseDoubleStrict(text, flag);
    } catch (const DavfError &error) {
        usageError(argv0, error.what());
    }
}

bool
knownBenchmark(const std::string &name)
{
    for (const auto &program : beebsBenchmarks()) {
        if (program.name == name)
            return true;
    }
    for (const auto &program : extraBenchmarks()) {
        if (program.name == name)
            return true;
    }
    return false;
}

Options
parse(int argc, char **argv)
{
    Options opts;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            usageError(argv[0], std::string(argv[i])
                                    + " expects a value");
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--connect") {
            opts.connect = need(i);
        } else if (arg == "--benchmark") {
            opts.benchmark = need(i);
        } else if (arg == "--ecc") {
            opts.ecc = true;
        } else if (arg == "--sta-period") {
            opts.sta_period = true;
        } else if (arg == "--node") {
            opts.node = need(i);
        } else if (arg == "--connect-retries") {
            opts.net.connectRetries =
                static_cast<unsigned>(parseU64(argv[0], arg, need(i)));
        } else if (arg == "--backoff-ms") {
            opts.net.backoffBaseMs = parseDouble(argv[0], arg, need(i));
            if (opts.net.backoffBaseMs < 0.0)
                usageError(argv[0], "--backoff-ms must be >= 0");
        } else if (arg == "--connect-timeout-ms") {
            opts.net.connectTimeoutMs =
                parseDouble(argv[0], arg, need(i));
            if (opts.net.connectTimeoutMs < 0.0)
                usageError(argv[0], "--connect-timeout-ms must be >= 0");
        } else if (arg == "--no-vector") {
            opts.no_vector = true;
        } else if (arg == "--no-vector-tsim") {
            opts.no_vector_tsim = true;
        } else if (arg == "--vector-lanes") {
            opts.vector_lanes =
                static_cast<unsigned>(parseU64(argv[0], arg, need(i)));
            if (opts.vector_lanes < 2 || opts.vector_lanes > 64)
                usageError(argv[0], "--vector-lanes must lie in [2, 64]");
        } else if (arg == "--tsim-lanes") {
            opts.tsim_lanes =
                static_cast<unsigned>(parseU64(argv[0], arg, need(i)));
            if (opts.tsim_lanes < 1 || opts.tsim_lanes > 64)
                usageError(argv[0], "--tsim-lanes must lie in [1, 64]");
        } else {
            usageError(argv[0], "unknown flag '" + arg + "'");
        }
    }

    if (opts.connect.empty())
        usageError(argv[0], "--connect HOST:PORT is required");
    if (!knownBenchmark(opts.benchmark)) {
        usageError(argv[0], "--benchmark: unknown benchmark '"
                                + opts.benchmark + "'");
    }
    return opts;
}

int
runTool(int argc, char **argv)
{
    const Options opts = parse(argc, argv);
    net::NetWorkerOptions net = opts.net;
    net::parseHostPort(opts.connect, net.host, net.port);
    net.nodeName = opts.node;

    service::WorkspaceSpec ws_spec;
    ws_spec.benchmark = opts.benchmark;
    ws_spec.ecc = opts.ecc;
    ws_spec.staPeriod = opts.sta_period;
    std::fprintf(stderr,
                 "worker: building IbexMini (%s regfile), assembling "
                 "%s, running golden capture...\n",
                 opts.ecc ? "ECC" : "plain", opts.benchmark.c_str());
    service::Workspace workspace(ws_spec);

    VulnerabilityEngine &engine = workspace.engine();
    engine.setVectorMode(!opts.no_vector, opts.vector_lanes);
    engine.setTsimVectorMode(!opts.no_vector_tsim, opts.tsim_lanes);
    net.fingerprint = workspace.fingerprint();

    std::fprintf(stderr, "worker: connecting to %s:%u\n",
                 net.host.c_str(), net.port);
    return net::runNetWorker(engine, workspace.structures(), net);
}

} // namespace

int
main(int argc, char **argv)
{
    return guardedMain([&] { return runTool(argc, argv); });
}
