/**
 * @file
 * The behavioral instruction/data memory backing the IbexMini core.
 *
 * The paper's flow keeps memory in the (Verilator) testbench and injects
 * faults only into the core's structures; this model plays that role as a
 * clocked BehavioralModel with two synchronous ports:
 *
 *  - Instruction port: `iaddr` sampled at the edge, `idata` valid the next
 *    cycle.
 *  - Data port: `daddr`/`dwdata`/`dwe`/`dben[4]` sampled at the edge;
 *    `drdata` (the word at daddr) valid the next cycle; writes apply the
 *    byte enables.
 *
 * The data address space is word-addressed with one extra high bit
 * selecting MMIO: word 0 of the MMIO page is the output port (each write
 * appends the stored word to the program's output trace) and word 1 is
 * the halt port (any write sets the sticky `halted` output). The output
 * trace plus the halt status *is* the program-visible behaviour that
 * DelayAVF's GroupACE step compares (§V-B); because it lives inside the
 * model it is captured by simulator snapshots.
 *
 * Because delayed signals in the LSU can corrupt what the memory samples,
 * the model's input pins are state elements of the design (see
 * netlist/netlist.hh); the model additionally maintains an incrementally
 * updated content hash so the vulnerability engine can cheaply test
 * whether a faulty run's memory has converged back to the golden image.
 */

#ifndef DAVF_SOC_MEMORY_HH
#define DAVF_SOC_MEMORY_HH

#include <cstdint>
#include <vector>

#include "netlist/behavioral.hh"

namespace davf {

/** Behavioral dual-port memory + MMIO for the IbexMini SoC. */
class MemoryModel : public BehavioralModel
{
  public:
    /**
     * @param mem_words_log2 log2 of the RAM size in words.
     * @param image          initial contents (also restored by reset()).
     */
    MemoryModel(unsigned mem_words_log2,
                const std::vector<uint32_t> &image);

    /** @name Pin layout */
    /// @{
    unsigned iaddrBits() const { return memWordsLog2; }
    unsigned daddrBits() const { return memWordsLog2 + 1; }
    unsigned numInputs() const override
    {
        return iaddrBits() + daddrBits() + 32 + 1 + 4;
    }
    unsigned numOutputs() const override { return 32 + 32 + 1; }
    /// @}

    std::shared_ptr<BehavioralModel> clone() const override
    {
        return std::make_shared<MemoryModel>(*this);
    }

    void reset(std::vector<bool> &outputs) override;
    void clockEdge(const std::vector<bool> &inputs,
                   std::vector<bool> &outputs) override;
    std::vector<uint64_t> snapshot() const override;
    void restore(const std::vector<uint64_t> &data) override;

    /** @name Architectural observation */
    /// @{

    /** Words written to the MMIO output port, in order. */
    const std::vector<uint32_t> &outputTrace() const { return outputLog; }

    /** True once the program has written the halt port. */
    bool halted() const { return isHalted; }

    /** Incrementally maintained hash of the RAM contents. */
    uint64_t contentHash() const { return hash; }

    /** RAM word at byte address @p addr. */
    uint32_t word(uint32_t addr) const { return mem[addr / 4]; }

    /** All RAM words. */
    const std::vector<uint32_t> &words() const { return mem; }

    /// @}

    /** @name Lockstep hashing
     * The content hash is an order-independent XOR of mix(index, word)
     * over every RAM word. Exposed so architectural observers (the
     * src/analysis lockstep tap) can reproduce and incrementally track
     * contentHash() from an ISS memory image without a model instance.
     */
    /// @{

    /** The hash contribution of RAM word @p index holding @p value. */
    static uint64_t mix(uint64_t index, uint64_t value);

    /** contentHash() of a RAM holding exactly @p words. */
    static uint64_t imageHash(const std::vector<uint32_t> &words);

    /// @}

  private:
    void writeWord(uint32_t index, uint32_t value);

    unsigned memWordsLog2;
    std::vector<uint32_t> image;
    std::vector<uint32_t> mem;
    std::vector<uint32_t> outputLog;
    bool isHalted = false;
    uint64_t hash = 0;
    uint32_t idata = 0;
    uint32_t drdata = 0;
};

} // namespace davf

#endif // DAVF_SOC_MEMORY_HH
