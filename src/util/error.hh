/**
 * @file
 * The recoverable error taxonomy.
 *
 * Two failure classes exist in this library (see docs/ROBUSTNESS.md):
 *
 *  - **Invariant bugs** — the library's own state is broken. These go
 *    through davf_panic()/davf_assert() (logging.hh) and abort(): there
 *    is nothing a caller can do, and a core dump is the right artifact.
 *  - **Recoverable errors** — bad user input or environment trouble
 *    (unknown structure name, malformed workload text, out-of-range
 *    delay, unwritable file, an injection exceeding its wall-clock
 *    budget). These throw DavfError, carrying a machine-readable
 *    ErrorKind, so a campaign can skip the offending unit of work and
 *    keep going instead of losing hours of sweep to exit(1).
 *
 * Result<T> is the non-throwing companion for paths where an error is
 * an expected outcome rather than an exception — e.g. parsing a
 * checkpoint file that may be from an older version.
 */

#ifndef DAVF_UTIL_ERROR_HH
#define DAVF_UTIL_ERROR_HH

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace davf {

/** Machine-readable classification of a recoverable error. */
enum class ErrorKind : uint8_t {
    BadArgument,       ///< Malformed flag/config/API argument.
    NotFound,          ///< Unknown benchmark/structure/file name.
    BadInput,          ///< Malformed user-supplied input text.
    OutOfRange,        ///< Numeric parameter outside the valid domain.
    Io,                ///< File open/read/write failure.
    Timeout,           ///< Work exceeded its wall-clock budget.
    ExcessiveFailures, ///< Too many injections failed; result untrusted.
    Internal,          ///< Escaped lower-level failure, wrapped.
};

/** Stable lowercase name of @p kind (used in skip tallies and logs). */
std::string_view errorKindName(ErrorKind kind);

/** A recoverable library error. See the file comment for the taxonomy. */
class DavfError : public std::runtime_error
{
  public:
    DavfError(ErrorKind kind, const std::string &message,
              const char *file = nullptr, int line = 0)
        : std::runtime_error(decorate(message, file, line)), errKind(kind)
    {}

    ErrorKind kind() const noexcept { return errKind; }

  private:
    static std::string
    decorate(const std::string &message, const char *file, int line)
    {
        if (!file)
            return message;
        return message + " (" + file + ":" + std::to_string(line) + ")";
    }

    ErrorKind errKind;
};

/**
 * Value-or-error, for paths where failure is an expected outcome.
 * Construct with Result<T>::Ok(value) or Result<T>::Err(kind, message).
 */
template <typename T>
class Result
{
  public:
    static Result
    Ok(T value)
    {
        Result result;
        result.val = std::move(value);
        return result;
    }

    static Result
    Err(ErrorKind kind, std::string message)
    {
        Result result;
        result.err.emplace(kind, std::move(message));
        return result;
    }

    static Result
    Err(const DavfError &error)
    {
        Result result;
        result.err.emplace(error);
        return result;
    }

    bool ok() const { return val.has_value(); }
    explicit operator bool() const { return ok(); }

    /** The held value; throws the stored (or an Internal) error if !ok(). */
    T &
    value()
    {
        if (!val)
            throw err ? *err
                      : DavfError(ErrorKind::Internal,
                                  "value() on an empty Result");
        return *val;
    }

    const T &
    value() const
    {
        return const_cast<Result *>(this)->value();
    }

    /** The held error (Internal placeholder if ok()). */
    const DavfError &
    error() const
    {
        static const DavfError none(ErrorKind::Internal, "no error");
        return err ? *err : none;
    }

  private:
    Result() = default;

    std::optional<T> val;
    std::optional<DavfError> err;
};

} // namespace davf

#endif // DAVF_UTIL_ERROR_HH
