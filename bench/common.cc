#include "common.hh"

#include <cstdlib>

#include "util/atomic_file.hh"
#include "util/logging.hh"

namespace davf::bench {

const Structure &
BenchContext::structure(const std::string &name) const
{
    // "Regfile (ECC)" refers to the Regfile structure of the ECC build.
    const std::string lookup =
        name == "Regfile (ECC)" ? "Regfile" : name;
    const Structure *found = soc->structures().find(lookup);
    davf_assert(found != nullptr, "unknown structure ", name);
    return *found;
}

void
BenchLab::buildContext(const std::string &benchmark, bool ecc)
{
    auto &slot = cache[{benchmark, ecc}];
    if (slot)
        return;
    slot = std::make_unique<BenchContext>();
    // The shared Workspace loader: same assemble/build/golden-capture
    // (and golden-output assert) as davf_run and davf_serve. The
    // default spec keeps the observed-max timing-closure clock.
    service::WorkspaceSpec spec;
    spec.benchmark = benchmark;
    spec.ecc = ecc;
    slot->workspace = std::make_unique<service::Workspace>(spec);
    slot->soc = &slot->workspace->soc();
    slot->engine = &slot->workspace->engine();
}

BenchContext &
BenchLab::context(const std::string &benchmark, bool ecc)
{
    // One clock per design build: on first touch of a flavor, build
    // every paper benchmark's engine and give them all the slowest
    // observed critical arrival (the clock a designer would close
    // timing at across the whole suite).
    if (!flavorReady[ecc ? 1 : 0]) {
        flavorReady[ecc ? 1 : 0] = true;
        for (const std::string &name : kBenchmarks)
            buildContext(name, ecc);
        double worst = 0.0;
        for (auto &[key, ctx] : cache) {
            if (key.second == ecc)
                worst = std::max(worst, ctx->engine->clockPeriod());
        }
        for (auto &[key, ctx] : cache) {
            if (key.second == ecc)
                ctx->engine->setClockPeriod(worst);
        }
    }
    buildContext(benchmark, ecc);
    return *cache.at({benchmark, ecc});
}

SamplingConfig
BenchLab::sampling()
{
    SamplingConfig config;
    config.maxInjectionCycles = 8;
    config.maxWires = 400;
    config.maxFlops = 192;
    config.seed = 2024;
    if (const char *wires = std::getenv("DAVF_BENCH_WIRES"))
        config.maxWires = std::strtoull(wires, nullptr, 10);
    if (const char *cycles = std::getenv("DAVF_BENCH_CYCLES"))
        config.maxInjectionCycles =
            static_cast<unsigned>(std::strtoul(cycles, nullptr, 10));
    return config;
}

AvfTable::~AvfTable()
{
    const char *path = std::getenv("DAVF_BENCH_JSON");
    if (path == nullptr || *path == '\0' || rows.empty())
        return;
    try {
        writeFileAtomic(path, reportJson(rows) + "\n");
    } catch (const DavfError &error) {
        std::fprintf(stderr, "DAVF_BENCH_JSON write failed: %s\n",
                     error.what());
    }
}

const DelayAvfResult &
AvfTable::delayAvf(const std::string &benchmark, bool ecc,
                   const std::string &structure, double delay_fraction)
{
    char key[128];
    std::snprintf(key, sizeof(key), "%s/%d/%s/%.3f", benchmark.c_str(),
                  ecc ? 1 : 0, structure.c_str(), delay_fraction);
    auto it = delayCache.find(key);
    if (it == delayCache.end()) {
        BenchContext &ctx = lab->context(benchmark, ecc);
        it = delayCache
                 .emplace(key, ctx.engine->delayAvf(
                                   ctx.structure(structure),
                                   delay_fraction, BenchLab::sampling()))
                 .first;
        ReportRow row;
        row.kind = "davf";
        row.benchmark = benchmark;
        row.structure = structure;
        row.delayFraction = delay_fraction;
        row.davf = it->second;
        rows.push_back(std::move(row));
    }
    return it->second;
}

const SavfResult &
AvfTable::savf(const std::string &benchmark, bool ecc,
               const std::string &structure)
{
    const std::string key = benchmark + "/" + (ecc ? "1" : "0") + "/"
        + structure;
    auto it = savfCache.find(key);
    if (it == savfCache.end()) {
        BenchContext &ctx = lab->context(benchmark, ecc);
        // Particle-strike runs cannot be cone-restricted or memoized
        // the way SDF runs can (every flip is a fresh trajectory), so
        // sample them a little more coarsely than the SDF sweeps.
        SamplingConfig config = BenchLab::sampling();
        config.maxInjectionCycles =
            std::min(config.maxInjectionCycles, 6u);
        if (config.maxFlops == 0 || config.maxFlops > 96)
            config.maxFlops = 96;
        it = savfCache
                 .emplace(key, ctx.engine->savf(ctx.structure(structure),
                                                config))
                 .first;
        ReportRow row;
        row.kind = "savf";
        row.benchmark = benchmark;
        row.structure = structure;
        row.savf = it->second;
        rows.push_back(std::move(row));
    }
    return it->second;
}

void
printRule(size_t width)
{
    std::printf("%s", std::string(22 + 12 * width, '-').c_str());
    std::printf("\n");
}

void
printHeader(const std::string &first,
            const std::vector<std::string> &columns)
{
    std::printf("%-22s", first.c_str());
    for (const std::string &column : columns)
        std::printf("%12s", column.c_str());
    std::printf("\n");
    printRule(columns.size());
}

void
printRow(const std::string &label, const std::vector<double> &values,
         int precision)
{
    std::printf("%-22s", label.c_str());
    for (double value : values)
        std::printf("%12.*f", precision, value);
    std::printf("\n");
}

} // namespace davf::bench
