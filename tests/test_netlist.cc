/**
 * @file
 * Unit tests for the netlist graph: construction, wire/state-element
 * enumeration, levelization, cone traversal, and structure queries.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "src/builder/builder.hh"
#include "src/netlist/netlist.hh"
#include "src/netlist/structure.hh"

namespace davf {
namespace {

/** Figure-2-style circuit: x,y -> AND -> A(dff); z -> B(dff). */
struct Fig2Circuit
{
    Netlist nl;
    NetId x, y, z, and_out;
    CellId and_cell, ff_a, ff_b;

    Fig2Circuit()
    {
        x = nl.addNet("x");
        y = nl.addNet("y");
        z = nl.addNet("z");
        and_out = nl.addNet("and_out");
        const NetId qa = nl.addNet("qa");
        const NetId qb = nl.addNet("qb");

        nl.addCell(CellType::Input, "x.in", {}, {{x}});
        nl.addCell(CellType::Input, "y.in", {}, {{y}});
        nl.addCell(CellType::Input, "z.in", {}, {{z}});
        and_cell = nl.addCell(CellType::And2, "div/and", {{x, y}},
                              {{and_out}});
        ff_a = nl.addCell(CellType::Dff, "div/A", {{and_out}}, {{qa}});
        ff_b = nl.addCell(CellType::Dff, "div/B", {{z}}, {{qb}});
        nl.addCell(CellType::Output, "qa.out", {{qa}}, {});
        nl.addCell(CellType::Output, "qb.out", {{qb}}, {});
        nl.finalize();
    }
};

TEST(Netlist, CountsAndWires)
{
    Fig2Circuit c;
    // Wires: x->and, y->and, and->A, z->B, qa->out, qb->out = 6.
    EXPECT_EQ(c.nl.numWires(), 6u);
    // State elements: 2 flops + 2 output ports.
    EXPECT_EQ(c.nl.numStateElems(), 4u);
    EXPECT_EQ(c.nl.seqCells().size(), 2u);
    EXPECT_EQ(c.nl.inputCells().size(), 3u);
    EXPECT_EQ(c.nl.outputCells().size(), 2u);
}

TEST(Netlist, WireEndpoints)
{
    Fig2Circuit c;
    // The wire x -> and gate.
    const WireId wx = c.nl.net(c.x).firstWire;
    EXPECT_EQ(c.nl.wireDriver(wx), c.nl.net(c.x).driver);
    EXPECT_EQ(c.nl.wireSink(wx).cell, c.and_cell);
    EXPECT_FALSE(c.nl.wireName(wx).empty());
}

TEST(Netlist, InputWireLookup)
{
    Fig2Circuit c;
    const WireId w0 = c.nl.inputWire(c.and_cell, 0);
    const WireId w1 = c.nl.inputWire(c.and_cell, 1);
    EXPECT_EQ(c.nl.wire(w0).net, c.x);
    EXPECT_EQ(c.nl.wire(w1).net, c.y);
}

TEST(Netlist, CombConeFromInputWire)
{
    Fig2Circuit c;
    std::vector<CellId> cone;
    std::vector<StateElemId> reached;
    // Cone from x->AND: the AND cell, reaching flop A only.
    c.nl.combCone(c.nl.inputWire(c.and_cell, 0), cone, reached);
    ASSERT_EQ(cone.size(), 1u);
    EXPECT_EQ(cone[0], c.and_cell);
    ASSERT_EQ(reached.size(), 1u);
    EXPECT_EQ(reached[0], c.nl.flopStateElem(c.ff_a));
}

TEST(Netlist, CombConeDirectToFlop)
{
    Fig2Circuit c;
    std::vector<CellId> cone;
    std::vector<StateElemId> reached;
    // z drives flop B directly: empty cone, one endpoint.
    c.nl.combCone(c.nl.inputWire(c.ff_b, 0), cone, reached);
    EXPECT_TRUE(cone.empty());
    ASSERT_EQ(reached.size(), 1u);
    EXPECT_EQ(reached[0], c.nl.flopStateElem(c.ff_b));
}

TEST(Netlist, DffeEnablePinMapsToFlopElem)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId d = b.input("d");
    const NetId en_raw = b.input("en");
    const NetId en = b.buf(en_raw); // Combinational hop to the EN pin.
    const NetId q = b.dffe(d, en);
    b.output("o", q);
    nl.finalize();

    // A cone entered through the EN path must reach the flop's (single)
    // state element, same as through the D path.
    const CellId flop = nl.net(q).driver;
    std::vector<CellId> cone;
    std::vector<StateElemId> reached;
    nl.combCone(nl.inputWire(nl.net(en).driver, 0), cone, reached);
    ASSERT_EQ(reached.size(), 1u);
    EXPECT_EQ(reached[0], nl.flopStateElem(flop));
}

TEST(Netlist, ConeReachesBehavioralInputs)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId in = b.input("in");
    const NetId gated = b.and2(in, b.constant(true));
    class NullModel : public BehavioralModel
    {
      public:
        std::shared_ptr<BehavioralModel> clone() const override
        {
            return std::make_shared<NullModel>(*this);
        }
        unsigned numInputs() const override { return 1; }
        unsigned numOutputs() const override { return 0; }
        void reset(std::vector<bool> &outs) override { outs.clear(); }
        void clockEdge(const std::vector<bool> &,
                       std::vector<bool> &outs) override
        {
            outs.clear();
        }
        std::vector<uint64_t> snapshot() const override { return {}; }
        void restore(const std::vector<uint64_t> &) override {}
    };
    const CellId behav = nl.addBehavioral(
        "blk", std::make_shared<NullModel>(), {{gated}}, {});
    nl.finalize();

    std::vector<CellId> cone;
    std::vector<StateElemId> reached;
    const CellId and_cell = nl.net(gated).driver;
    nl.combCone(nl.inputWire(and_cell, 0), cone, reached);
    ASSERT_EQ(reached.size(), 1u);
    EXPECT_EQ(reached[0], nl.pinStateElem(behav, 0));
    EXPECT_EQ(nl.stateElemName(reached[0]), "blk.in0");
}

TEST(Netlist, PrefixQueries)
{
    Fig2Circuit c;
    const auto cells = c.nl.cellsByPrefix("div/");
    EXPECT_EQ(cells.size(), 3u);
    const auto flops = c.nl.flopsByPrefix("div/");
    EXPECT_EQ(flops.size(), 2u);
    // Wires driven by div/ cells: and->A, qa->out, qb->out... qa/qb are
    // driven by the flops (div/A, div/B), and_out by div/and.
    const auto wires = c.nl.wiresByPrefix("div/");
    EXPECT_EQ(wires.size(), 3u);
}

TEST(Netlist, FindByName)
{
    Fig2Circuit c;
    EXPECT_EQ(c.nl.findCell("div/and"), c.and_cell);
    EXPECT_EQ(c.nl.findCell("nope"), kInvalidId);
    EXPECT_EQ(c.nl.findNet("x"), c.x);
    EXPECT_EQ(c.nl.findNet("nope"), kInvalidId);
}

TEST(Netlist, StateElemNames)
{
    Fig2Circuit c;
    EXPECT_EQ(c.nl.stateElemName(c.nl.flopStateElem(c.ff_a)), "div/A");
}

TEST(Netlist, DotExport)
{
    Fig2Circuit c;
    const std::string dot = c.nl.toDot();
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("div/and"), std::string::npos);
}

TEST(Netlist, LevelizationOrdersByDependency)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId in = b.input("a");
    const NetId n1 = b.inv(in);
    const NetId n2 = b.inv(n1);
    const NetId n3 = b.and2(n1, n2);
    b.output("o", n3);
    nl.finalize();

    const auto &topo = nl.topoOrder();
    ASSERT_EQ(topo.size(), 3u);
    // Each cell must appear after its combinational fanin.
    std::vector<size_t> position(nl.numCells(), 0);
    for (size_t i = 0; i < topo.size(); ++i)
        position[topo[i]] = i;
    for (CellId id : topo) {
        for (NetId net : nl.cell(id).inputs) {
            const CellId driver = nl.net(net).driver;
            if (cellIsCombinational(nl.cell(driver).type))
                EXPECT_LT(position[driver], position[id]);
        }
    }
    EXPECT_GT(nl.level(nl.net(n3).driver), nl.level(nl.net(n1).driver));
}

TEST(NetlistDeath, CombinationalLoop)
{
    ASSERT_DEATH(
        {
            Netlist nl;
            const NetId a = nl.addNet("a");
            const NetId b = nl.addNet("b");
            nl.addCell(CellType::Inv, "i1", {{a}}, {{b}});
            nl.addCell(CellType::Inv, "i2", {{b}}, {{a}});
            nl.finalize();
        },
        "combinational loop");
}

TEST(NetlistDeath, UndrivenNet)
{
    ASSERT_DEATH(
        {
            Netlist nl;
            const NetId a = nl.addNet("a");
            nl.addCell(CellType::Output, "o", {{a}}, {});
            nl.finalize();
        },
        "no driver");
}

TEST(NetlistDeath, DoubleDriver)
{
    ASSERT_DEATH(
        {
            Netlist nl;
            const NetId a = nl.addNet("a");
            nl.addCell(CellType::Const0, "c0", {}, {{a}});
            nl.addCell(CellType::Const1, "c1", {}, {{a}});
        },
        "multiply driven");
}

TEST(Structure, RegistryBuildsMembership)
{
    Fig2Circuit c;
    StructureRegistry registry(c.nl);
    const Structure &div = registry.add("Divider", "div/");
    EXPECT_EQ(div.cells.size(), 3u);
    EXPECT_EQ(div.flops.size(), 2u);
    EXPECT_EQ(div.wires.size(), 3u);
    EXPECT_EQ(registry.find("Divider"), &registry.all()[0]);
    EXPECT_EQ(registry.find("nope"), nullptr);
}

TEST(CellLibrary, DefaultsAreSane)
{
    const CellLibrary lib = CellLibrary::defaultLibrary();
    EXPECT_GT(lib.timing(CellType::Inv).intrinsic, 0.0);
    EXPECT_GT(lib.timing(CellType::Xor2).intrinsic,
              lib.timing(CellType::Nand2).intrinsic);
    EXPECT_GT(lib.clkToQ, 0.0);
    EXPECT_GT(lib.wireBase, 0.0);
}

TEST(Cell, EvalTruthTables)
{
    EXPECT_TRUE(evalCell(CellType::And2, true, true));
    EXPECT_FALSE(evalCell(CellType::And2, true, false));
    EXPECT_TRUE(evalCell(CellType::Nand2, true, false));
    EXPECT_TRUE(evalCell(CellType::Or2, false, true));
    EXPECT_FALSE(evalCell(CellType::Nor2, false, true));
    EXPECT_TRUE(evalCell(CellType::Xor2, true, false));
    EXPECT_TRUE(evalCell(CellType::Xnor2, true, true));
    EXPECT_FALSE(evalCell(CellType::Inv, true));
    EXPECT_TRUE(evalCell(CellType::Buf, true));
    // Mux2: s ? b : a.
    EXPECT_TRUE(evalCell(CellType::Mux2, false, true, true));
    EXPECT_FALSE(evalCell(CellType::Mux2, false, true, false));
}

} // namespace
} // namespace davf
