/**
 * @file
 * Figure 8 reproduction: the components of DelayAVF for selected
 * (structure, benchmark) pairs, versus SDF duration d:
 *
 *   Static Reach  — % of delayed wires with >= 1 statically reachable
 *                   state element (pure STA, Definition 2);
 *   Dynamic Reach — % of delayed wires causing >= 1 state element error
 *                   in some sampled cycle (Definition 3);
 *   GroupACE      — % of delayed wires causing >= 1 program-visible
 *                   failure (Definition 4).
 *
 * Pairs as in the paper: a) ALU + libstrstr, b) Regfile + libstrstr,
 * c) ALU + md5. Expected shapes: static reach rises steeply with d and
 * upper-bounds everything; the register file has high static reach but
 * low dynamic reach (low toggle rates, §VI-B Observation 1); md5's
 * random dataflow gives the ALU much higher dynamic reach than
 * libstrstr's regular data (Observation 3).
 *
 * Also reports the multi-bit state-element-error statistics quoted in
 * §VI-B (~21% multi-bit at d = 10%, ~50% at larger d).
 */

#include <cstdio>

#include "bench/common.hh"

using namespace davf;
using namespace davf::bench;

int
main()
{
    std::printf("Figure 8: DelayAVF components per (structure, "
                "benchmark)\n\n");

    BenchLab lab;
    AvfTable table(lab);

    const std::vector<std::pair<std::string, std::string>> pairs = {
        {"ALU", "libstrstr"},
        {"Regfile", "libstrstr"},
        {"ALU", "md5"},
    };

    for (const auto &[structure, benchmark] : pairs) {
        std::printf("%s + %s\n", structure.c_str(), benchmark.c_str());
        printHeader("d (%% of period)", {"StaticReach", "DynReach",
                                         "GroupACE"});
        for (double d : kDelayFractions) {
            const DelayAvfResult &result =
                table.delayAvf(benchmark, false, structure, d);
            printRow(std::to_string(static_cast<int>(d * 100)) + "%",
                     {100.0 * result.staticWireFraction,
                      100.0 * result.dynamicWireFraction,
                      100.0 * result.groupAceWireFraction},
                     2);
        }
        std::printf("\n");
    }

    // Multi-bit error statistics (aggregated over the pairs above).
    std::printf("Multi-bit state element errors (%% of injections with "
                ">= 1 error that have >= 2):\n");
    printHeader("d (%% of period)", {"multi-bit %%"});
    for (double d : kDelayFractions) {
        uint64_t multi = 0;
        uint64_t errors = 0;
        for (const auto &[structure, benchmark] : pairs) {
            const DelayAvfResult &result =
                table.delayAvf(benchmark, false, structure, d);
            multi += result.multiBitInjections;
            errors += result.errorInjections;
        }
        printRow(std::to_string(static_cast<int>(d * 100)) + "%",
                 {errors ? 100.0 * static_cast<double>(multi)
                         / static_cast<double>(errors)
                         : 0.0},
                 2);
    }
    return 0;
}
