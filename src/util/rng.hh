/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic choices in the library (cycle sampling, randomized tests,
 * synthetic workload generation) flow through this xoshiro256** generator
 * so that every run is reproducible from a seed.
 */

#ifndef DAVF_UTIL_RNG_HH
#define DAVF_UTIL_RNG_HH

#include <cstdint>

namespace davf {

/** A small, fast, seedable PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        uint64_t x = seed;
        for (auto &word : state) {
            // splitmix64 step.
            x += 0x9e3779b97f4a7c15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next 64 uniformly random bits. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state[1] * 5, 7) * 9;
        const uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        // Rejection sampling to avoid modulo bias.
        const uint64_t threshold = -bound % bound;
        for (;;) {
            const uint64_t sample = next();
            if (sample >= threshold)
                return sample % bound;
        }
    }

    /** Uniform 32-bit value. */
    uint32_t next32() { return static_cast<uint32_t>(next() >> 32); }

    /** Bernoulli draw with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
    }

    /** Uniform double in [0, 1). */
    double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  private:
    static constexpr uint64_t
    rotl(uint64_t value, int amount)
    {
        return (value << amount) | (value >> (64 - amount));
    }

    uint64_t state[4];
};

} // namespace davf

#endif // DAVF_UTIL_RNG_HH
